package streamrule

import (
	"crypto/tls"
	"fmt"
	"time"

	"streamrule/internal/asp/ast"
	"streamrule/internal/asp/parser"
	"streamrule/internal/asp/solve"
	"streamrule/internal/atomdep"
	"streamrule/internal/core"
	"streamrule/internal/dfp"
	"streamrule/internal/rdf"
	"streamrule/internal/reasoner"
	"streamrule/internal/transport"
)

// Triple is an RDF statement <subject, predicate, object>.
type Triple = rdf.Triple

// AnswerSet is a set of ground atoms produced by the reasoner.
type AnswerSet = solve.AnswerSet

// Output is the result of reasoning over one window, including the latency
// breakdown (Convert / Ground / Solve / Partition / Combine, wall-clock
// Total, and the multi-core CriticalPath).
type Output = reasoner.Output

// Delta is the change of a window relative to the previously processed one,
// as reported by sliding windowers. Engines that receive deltas maintain
// their grounding incrementally across overlapping windows.
type Delta = reasoner.Delta

// Plan is a partitioning plan: the mapping from input predicates to the
// partitions their items are routed to.
type Plan = core.Plan

// Accuracy computes the answer accuracy of §III of the paper: the mean over
// produced answers of the best recall against any reference answer.
func Accuracy(got, ref []*AnswerSet) float64 { return reasoner.Accuracy(got, ref) }

// Program is a logic program together with its input predicates.
type Program struct {
	// AST is the parsed rule set.
	AST *ast.Program
	// Inpre lists the input predicates (inpre(P) in the paper).
	Inpre  []string
	source string
}

// LoadProgram parses an ASP rule set and attaches its input predicates. The
// program is checked for safety and every input predicate must occur in it.
func LoadProgram(src string, inpre []string) (*Program, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("streamrule: parse: %w", err)
	}
	if len(inpre) == 0 {
		return nil, fmt.Errorf("streamrule: no input predicates given")
	}
	return &Program{AST: prog, Inpre: inpre, source: src}, nil
}

// Source returns the original program text.
func (p *Program) Source() string { return p.source }

// Analyze runs the design-time input dependency analysis: extended
// dependency graph, input dependency graph, and partitioning plan.
func (p *Program) Analyze(resolution float64) (*core.Analysis, error) {
	return core.Analyze(p.AST, p.Inpre, resolution)
}

// MemoryStats surfaces the memory metrics of a budgeted engine: the
// configured budget and a snapshot of its interning table (live/peak
// entries, rotations, cumulative remap time).
type MemoryStats = reasoner.MemoryStats

// SolveStats is the solver's per-window work profile (Output.SolveStats):
// whether the window rode the stratified fast path, and — for residual
// windows — branching decisions, propagated assignments, stability checks,
// rules visited by propagation, worklist pushes, and support-source
// repairs. The rule-visit count is the headline metric of the solver's
// event-driven propagation engine; compare it against WithNaivePropagation.
// Under WithCDNL the conflict-driven counters are live too: conflicts hit,
// clauses learned, non-chronological backjumps, loop nogoods derived by
// unfounded-set detection, and learned clauses reused from earlier windows
// of the same stream (cross-window carry).
type SolveStats = solve.Stats

// options carries the functional options of the engine constructors.
type options struct {
	outputs          []string
	resolution       float64
	randomK          int
	randomSeed       int64
	maxModels        int
	atomFanout       int
	memoryBudget     int
	memoryBudgetB    int64
	naivePropagation bool
	cdnl             bool
	stragglerTimeout time.Duration
	maxInFlight      int
	adaptive         *reasoner.RebalanceOptions
	dialer           transport.DialFunc
	tlsConf          *tls.Config
	heartbeat        time.Duration
	heartbeatTimeout time.Duration
	breaker          reasoner.BreakerOptions
}

// Option customizes engine construction.
type Option func(*options)

// WithOutputPredicates restricts answers to the given predicates (the events
// the downstream query consumes). Default: all derived predicates.
func WithOutputPredicates(preds ...string) Option {
	return func(o *options) { o.outputs = preds }
}

// WithResolution sets the Louvain resolution used when the input dependency
// graph is connected (default 1.0, as in the paper).
func WithResolution(r float64) Option {
	return func(o *options) { o.resolution = r }
}

// WithRandomPartitioning replaces the dependency-based partitioner with the
// k-way random partitioner (the PR_Ran_k baseline of the evaluation).
func WithRandomPartitioning(k int, seed int64) Option {
	return func(o *options) { o.randomK = k; o.randomSeed = seed }
}

// WithMaxModels limits the number of answer sets computed per partition.
func WithMaxModels(n int) Option {
	return func(o *options) { o.maxModels = n }
}

// WithMemoryBudget bounds the engine's interned-atom table for unbounded
// streams. When set (> 0) the engine owns a private interning table and
// rotates it — evicting atoms, symbols, and structured terms that no live
// state references — whenever the table holds more than maxAtoms atoms
// after a window. Required for streams that mint fresh constants every
// window (timestamps, unique event IDs), whose table would otherwise grow
// without bound; answers are unchanged by eviction. Inspect the effect via
// Stats().
//
// Lifetime of returned answers: budgeted windows materialize their answer
// sets eagerly, so the atoms, keys, and key-based operations of sets
// retained across windows stay valid indefinitely. The sets' raw interned
// IDs (AnswerSet.IDs) are valid only until the next window — a later
// rotation renumbers the table underneath them.
func WithMemoryBudget(maxAtoms int) Option {
	return func(o *options) { o.memoryBudget = maxAtoms }
}

// WithMemoryBudgetBytes bounds the engine's interning table by approximate
// retained BYTES instead of entry count — the successor of WithMemoryBudget,
// with identical rotation semantics and answer guarantees. Entry counts are
// a poor proxy for heap: N atoms over long symbols blow a real memory budget
// that N short ones never approach. Both knobs may be combined; the table
// rotates when either is exceeded. Inspect the effect via Stats() (the table
// snapshot reports its approximate bytes).
func WithMemoryBudgetBytes(maxBytes int64) Option {
	return func(o *options) { o.memoryBudgetB = maxBytes }
}

// WithNaivePropagation selects the solver's legacy rescan-to-fixpoint
// propagator instead of the counter/worklist engine — the ablation baseline
// the residual benchmarks compare against. The full answer-set enumeration
// is identical either way; only the work profile (Output.SolveStats)
// differs. Under WithMaxModels the engines may return different subsets of
// that enumeration, because they branch in different orders. There is no
// reason to set this outside benchmarks and differential tests.
func WithNaivePropagation() Option {
	return func(o *options) { o.naivePropagation = true }
}

// WithCDNL selects the solver's conflict-driven engine: 1UIP conflict
// analysis with non-chronological backjumping, activity-driven branching,
// unfounded-set detection that turns positive loops into loop nogoods
// during propagation (so non-disjunctive candidates skip the reduct-based
// stability check entirely), and a learned-clause database that survives
// across overlapping windows — clauses are tagged with the ground rules
// they were derived from and replayed in later windows whose programs
// still contain those rules, remapped or dropped when memory-budget
// rotation renumbers atoms. The answer sets are identical to the default
// engine's; only the work profile (Output.SolveStats: Conflicts, Learned,
// Backjumps, LoopNogoods, ReusedClauses) and its scaling differ. Mutually
// exclusive with WithNaivePropagation, which wins if both are set.
func WithCDNL() Option {
	return func(o *options) { o.cdnl = true }
}

// WithAtomPartitioning enables the atom-level extension (the paper's §VI
// future work): communities whose rules join on a single key are further
// hash-split into m sub-partitions by key value, multiplying parallelism
// beyond the number of predicate-level components. Communities the analysis
// cannot prove splittable stay whole, so answers remain exact.
func WithAtomPartitioning(m int) Option {
	return func(o *options) { o.atomFanout = m }
}

func buildOptions(opts []Option) options {
	o := options{resolution: 1.0}
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

func (p *Program) config(o options) reasoner.Config {
	cfg := reasoner.Config{Program: p.AST, Inpre: p.Inpre, OutputPreds: o.outputs}
	if len(cfg.OutputPreds) == 0 && len(p.AST.Shows) > 0 {
		// #show declarations in the program define the default projection.
		for _, s := range p.AST.Shows {
			cfg.OutputPreds = append(cfg.OutputPreds, s.Pred)
		}
	}
	cfg.SolveOpts.MaxModels = o.maxModels
	cfg.SolveOpts.NaivePropagation = o.naivePropagation
	cfg.SolveOpts.CDNL = o.cdnl && !o.naivePropagation
	cfg.MemoryBudget = o.memoryBudget
	cfg.MemoryBudgetBytes = o.memoryBudgetB
	return cfg
}

// Engine is the baseline reasoner R: one grounder+solver pass over the whole
// window.
type Engine struct {
	r *reasoner.R
}

// NewEngine builds the baseline engine for the program.
func NewEngine(p *Program, opts ...Option) (*Engine, error) {
	o := buildOptions(opts)
	r, err := reasoner.NewR(p.config(o))
	if err != nil {
		return nil, err
	}
	return &Engine{r: r}, nil
}

// Reason processes one window of triples, grounding from scratch.
func (e *Engine) Reason(window []Triple) (*Output, error) { return e.r.Process(window) }

// ReasonDelta processes one window given its delta relative to the previous
// window (nil when unknown). For programs the incremental grounder supports
// (stratified, no choice/disjunction/aggregates), consecutive overlapping
// windows are maintained under the delta instead of re-grounded — the big
// latency lever for sliding windows; everything else falls back to Reason
// semantics automatically and produces identical answers either way.
func (e *Engine) ReasonDelta(window []Triple, d *Delta) (*Output, error) {
	return e.r.ProcessDelta(window, d)
}

// Stats returns the engine's memory metrics (see WithMemoryBudget).
func (e *Engine) Stats() MemoryStats { return e.r.Stats() }

// ParallelEngine is the partitioned reasoner PR of the extended StreamRule
// framework. By default it partitions by the dependency plan derived from
// the program; WithRandomPartitioning switches to the random baseline.
type ParallelEngine struct {
	pr   *reasoner.PR
	plan *Plan
}

// buildPartitioner constructs the partitioner the options select — random,
// atom-level, or (default) the dependency plan — running the design-time
// analysis where needed. Shared by the parallel and distributed engines.
func buildPartitioner(p *Program, o options) (reasoner.Partitioner, *Plan, error) {
	if o.randomK > 0 {
		if o.adaptive != nil {
			return nil, nil, fmt.Errorf("streamrule: adaptive rebalancing needs the dependency partitioner, not random partitioning")
		}
		return reasoner.NewRandomPartitioner(o.randomK, o.randomSeed), nil, nil
	}
	a, err := p.Analyze(o.resolution)
	if err != nil {
		return nil, nil, err
	}
	plan := a.Plan
	if o.adaptive != nil {
		arities, err := dfp.InferArities(p.AST, p.Inpre)
		if err != nil {
			return nil, nil, err
		}
		keys := atomdep.Analyze(p.AST, plan)
		return reasoner.NewAdaptivePartitioner(plan, keys, arities), plan, nil
	}
	if o.atomFanout > 0 {
		arities, err := dfp.InferArities(p.AST, p.Inpre)
		if err != nil {
			return nil, nil, err
		}
		keys := atomdep.Analyze(p.AST, plan)
		part, err := reasoner.NewAtomPartitioner(plan, keys, arities, o.atomFanout)
		if err != nil {
			return nil, nil, err
		}
		return part, plan, nil
	}
	return reasoner.NewPlanPartitioner(plan), plan, nil
}

// NewParallelEngine builds a parallel engine, running the dependency
// analysis at construction (design) time.
func NewParallelEngine(p *Program, opts ...Option) (*ParallelEngine, error) {
	o := buildOptions(opts)
	part, plan, err := buildPartitioner(p, o)
	if err != nil {
		return nil, err
	}
	pr, err := reasoner.NewPR(p.config(o), part)
	if err != nil {
		return nil, err
	}
	return &ParallelEngine{pr: pr, plan: plan}, nil
}

// Plan returns the dependency partitioning plan, or nil when random
// partitioning is configured.
func (e *ParallelEngine) Plan() *Plan { return e.plan }

// Partitions returns the number of parallel partitions.
func (e *ParallelEngine) Partitions() int { return e.pr.NumPartitions() }

// Reason processes one window of triples: partition, reason in parallel,
// combine.
func (e *ParallelEngine) Reason(window []Triple) (*Output, error) { return e.pr.Process(window) }

// ReasonDelta is the incremental Reason for overlapping windows: every
// partition reasoner maintains its grounding across windows (deriving its
// own partition-level delta), with automatic fallback to from-scratch
// grounding where incremental maintenance does not apply.
func (e *ParallelEngine) ReasonDelta(window []Triple, d *Delta) (*Output, error) {
	return e.pr.ProcessDelta(window, d)
}

// Stats returns the engine's memory metrics (see WithMemoryBudget). All
// partition reasoners share one interning table, so one snapshot covers
// them all.
func (e *ParallelEngine) Stats() MemoryStats { return e.pr.Stats() }
