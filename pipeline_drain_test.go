package streamrule

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"testing"

	"streamrule/internal/testleak"
	"streamrule/internal/workload"
)

// startTestWorkers launches n loopback worker servers and returns their
// addresses plus a function closing all of them. The caller defers the close
// AFTER registering any goroutine-leak check so the accept loops are gone by
// the time the check runs.
func startTestWorkers(t *testing.T, n int) ([]string, func()) {
	t.Helper()
	addrs := make([]string, n)
	servers := make([]*WorkerServer, n)
	for i := range addrs {
		ws, err := NewWorkerServer("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go ws.Serve()
		servers[i] = ws
		addrs[i] = ws.Addr()
	}
	return addrs, func() {
		for _, ws := range servers {
			ws.Close()
		}
	}
}

// windowSig renders a window's answers in a canonical comparable form.
func windowSig(out *Output) string {
	sigs := make([]string, len(out.Answers))
	for i, a := range out.Answers {
		keys := a.Keys()
		sort.Strings(keys)
		sigs[i] = fmt.Sprint(keys)
	}
	sort.Strings(sigs)
	return fmt.Sprint(sigs)
}

// TestPipelinedErrorDrainsInFlight is the regression test for the orphaned
// in-flight legs bug: a handler error mid-pipeline (depth 3) used to return
// with windows still submitted-but-uncollected, so the next Run on the same
// DistributedEngine collected stale results and desynced. The pipeline must
// drain every in-flight leg on the error path, leaving the engine reusable.
func TestPipelinedErrorDrainsInFlight(t *testing.T) {
	defer testleak.Check(t)()
	addrs, closeWorkers := startTestWorkers(t, 2)
	defer closeWorkers()

	p, err := LoadProgram(testProgramP, testInpre)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewDistributedEngine(p, addrs, WithMaxInFlight(3))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	gen, err := workload.NewGenerator(11, workload.PaperTraffic())
	if err != nil {
		t.Fatal(err)
	}
	source := gen.Window(3000) // 6 windows of 500

	boom := errors.New("handler failure at window 3")
	seen := 0
	pl := &Pipeline{Source: source, WindowSize: 500, Reasoner: eng}
	err = pl.Run(context.Background(), func(win []Triple, out *Output) error {
		seen++
		if seen == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("pipeline error = %v, want the handler's", err)
	}
	if n := eng.InFlight(); n != 0 {
		t.Fatalf("after a handler error %d legs are still in flight; the pipeline must drain them", n)
	}

	// Reuse the engine on a fresh stream: its windows must agree with a
	// fresh engine run over the same stream.
	oracle, err := NewDistributedEngine(p, addrs, WithMaxInFlight(3))
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()

	gen2, err := workload.NewGenerator(12, workload.PaperTraffic())
	if err != nil {
		t.Fatal(err)
	}
	source2 := gen2.Window(2000)
	runSigs := func(r Reasoner) []string {
		var sigs []string
		pl := &Pipeline{Source: source2, WindowSize: 400, WindowStep: 100, Reasoner: r}
		if err := pl.Run(context.Background(), func(win []Triple, out *Output) error {
			sigs = append(sigs, windowSig(out))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return sigs
	}
	got, want := runSigs(eng), runSigs(oracle)
	if len(got) != len(want) {
		t.Fatalf("reused engine produced %d windows, fresh engine %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("window %d: reused engine diverged from fresh engine\nreused: %s\nfresh:  %s", i, got[i], want[i])
		}
	}
}

// TestPipelinedTailErrorDrains covers the end-of-stream error path: once the
// source is exhausted, the pipeline drains the remaining queued windows — a
// handler error during THAT loop must also retire the legs still in flight.
func TestPipelinedTailErrorDrains(t *testing.T) {
	defer testleak.Check(t)()
	addrs, closeWorkers := startTestWorkers(t, 1)
	defer closeWorkers()

	p, err := LoadProgram(testProgramP, testInpre)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewDistributedEngine(p, addrs, WithMaxInFlight(3))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	gen, err := workload.NewGenerator(13, workload.PaperTraffic())
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("handler failure in the tail drain")
	seen := 0
	// 6 windows at depth 3: windows 1-3 are handled while streaming, 4-6 in
	// the tail drain. Failing at window 5 leaves window 6 in flight.
	pl := &Pipeline{Source: gen.Window(3000), WindowSize: 500, Reasoner: eng}
	err = pl.Run(context.Background(), func(win []Triple, out *Output) error {
		seen++
		if seen == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("pipeline error = %v, want the handler's", err)
	}
	if n := eng.InFlight(); n != 0 {
		t.Fatalf("after a tail-drain error %d legs are still in flight", n)
	}
}
