// Fleet: non-monotonic dispatch planning over a request stream, showcasing
// the extended ASP engine — aggregates, choice rules with cardinality
// bounds, constraints, #show projection, and multiple answer sets per
// window (the non-determinism the paper's combining handler is defined for).
//
// Service requests arrive tagged with a zone. A zone with at least three
// open requests in the window is "hot". For every hot zone the program must
// dispatch exactly one unit, from the north or the south depot (a choice
// rule), but never more than two units from the same depot per window (a
// first-order capacity constraint); zones under a road block get an alert
// instead. Each answer set is one admissible dispatch plan.
//
// Run with: go run ./examples/fleet [-window 4000] [-seed 1] [-plans 3]
package main

import (
	"flag"
	"fmt"
	"log"

	"streamrule"
	"streamrule/internal/workload"
)

const program = `
zone(Z)     :- request(_, Z).
hot_zone(Z) :- zone(Z), #count{ R : request(R, Z) } >= 300.

% Exactly one responding depot per reachable hot zone.
1 { dispatch(Z, north) ; dispatch(Z, south) } 1 :- hot_zone(Z), not blocked(Z).

% A depot can cover at most two zones per window (no three distinct zones
% may share a depot). Aggregates range over the deterministic strata only,
% so capacity over chosen atoms is written first-order.
:- dispatch(Z1, D), dispatch(Z2, D), dispatch(Z3, D), Z1 < Z2, Z2 < Z3.

alert(Z) :- hot_zone(Z), blocked(Z).

#show dispatch/2.
#show alert/1.
`

func main() {
	windowSize := flag.Int("window", 4000, "window size")
	seed := flag.Int64("seed", 1, "workload seed")
	plans := flag.Int("plans", 3, "maximum dispatch plans (answer sets) to compute")
	flag.Parse()

	prog, err := streamrule.LoadProgram(program, []string{"request", "blocked"})
	if err != nil {
		log.Fatal(err)
	}
	// #show in the program projects the answers; MaxModels caps the plans.
	eng, err := streamrule.NewEngine(prog, streamrule.WithMaxModels(*plans))
	if err != nil {
		log.Fatal(err)
	}

	// Background load spreads over ~25 zones; a surge doubles down on two
	// hotspot zones, which are the only ones to cross the hot threshold.
	// Road blocks are rare and may hit a hotspot (alert) or an irrelevant
	// zone.
	req := workload.Entity("req", 1)
	specs := []workload.TripleSpec{
		{Pred: "request", S: req, O: workload.Entity("zone", 150), Weight: 20},
		{Pred: "request", S: req, O: workload.Choice("zone0", "zone1"), Weight: 20},
		{Pred: "blocked", S: workload.Choice("zone1", "zone999"), Weight: 1},
	}
	gen, err := workload.NewGenerator(*seed, specs)
	if err != nil {
		log.Fatal(err)
	}
	window := gen.Window(*windowSize)

	out, err := eng.Reason(window)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("window of %d items -> %d dispatch plan(s), latency %v\n",
		len(window), len(out.Answers), out.Latency.Total)
	if len(out.Answers) == 0 {
		fmt.Println("no admissible plan (constraints unsatisfiable: too many hot zones per depot)")
		return
	}
	for i, plan := range out.Answers {
		fmt.Printf("plan %d:\n", i+1)
		for _, a := range plan.Atoms() {
			fmt.Printf("  %s\n", a)
		}
	}
}
