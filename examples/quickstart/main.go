// Quickstart: load the paper's traffic program (Listing 1), reason over the
// motivating window of §II-A with both the whole-window reasoner R and the
// dependency-partitioned reasoner PR, and show that PR detects exactly the
// right events — the car fire in dangan, and no spurious traffic jam in
// newcastle (the jam is suppressed by the traffic_light fact, which the
// dependency plan keeps together with the speed and car-count readings).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"streamrule"
)

const program = `
very_slow_speed(X) :- average_speed(X,Y), Y < 20.
many_cars(X)       :- car_number(X,Y), Y > 40.
traffic_jam(X)     :- very_slow_speed(X), many_cars(X), not traffic_light(X).
car_fire(X)        :- car_in_smoke(C, high), car_speed(C, 0), car_location(C, X).
give_notification(X) :- traffic_jam(X).
give_notification(X) :- car_fire(X).
`

func main() {
	inpre := []string{
		"average_speed", "car_number", "traffic_light",
		"car_in_smoke", "car_speed", "car_location",
	}
	prog, err := streamrule.LoadProgram(program, inpre)
	if err != nil {
		log.Fatal(err)
	}

	// The window W of the paper's motivating example (§II-A).
	window := []streamrule.Triple{
		{S: "newcastle", P: "average_speed", O: "10"},
		{S: "newcastle", P: "car_number", O: "55"},
		{S: "newcastle", P: "traffic_light", O: "true"},
		{S: "car1", P: "car_in_smoke", O: "high"},
		{S: "car1", P: "car_speed", O: "0"},
		{S: "car1", P: "car_location", O: "dangan"},
	}

	// Baseline: one reasoner over the whole window.
	r, err := streamrule.NewEngine(prog)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := r.Reason(window)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reasoner R (whole window):")
	fmt.Printf("  answer: %s\n", ref.Answers[0])

	// Parallel reasoner with dependency-based partitioning. The input
	// dependency graph of this program has two components, so the window is
	// split in two without any duplication.
	pr, err := streamrule.NewParallelEngine(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreasoner PR partitioning plan:\n%s", pr.Plan())
	out, err := pr.Reason(window)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  answer: %s\n", out.Answers[0])
	fmt.Printf("  accuracy vs R: %.2f\n", streamrule.Accuracy(out.Answers, ref.Answers))
	fmt.Printf("  latency: total=%v critical-path=%v\n", out.Latency.Total, out.Latency.CriticalPath)

	if out.Answers[0].Contains("traffic_jam(newcastle)") {
		log.Fatal("BUG: spurious jam — dependency partitioning must prevent this")
	}
	fmt.Println("\ncar_fire(dangan) detected, traffic_jam(newcastle) correctly suppressed.")
}
