// Traffic: the paper's city-monitoring scenario as a continuous pipeline.
//
// A synthetic sensor stream (the workload of §IV) is filtered, batched into
// tuple-based windows, and reasoned over by three systems side by side:
//
//   - R        — the whole-window reasoner,
//   - PR_Dep   — dependency-based partitioning (the paper's contribution),
//   - PR_Ran_3 — random 3-way partitioning (the baseline of [12]).
//
// For every window the example prints the critical-path latency of each
// system and the accuracy of the two partitioned systems against R,
// demonstrating the paper's headline result live: PR_Dep roughly halves the
// latency at accuracy 1.0, while random partitioning is fast but loses
// answers.
//
// Run with: go run ./examples/traffic [-window 10000] [-windows 4] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"

	"streamrule"
	"streamrule/internal/bench"
	"streamrule/internal/workload"
)

func main() {
	windowSize := flag.Int("window", 10000, "tuple-based window size")
	numWindows := flag.Int("windows", 4, "number of windows to stream")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	prog, err := streamrule.LoadProgram(bench.ProgramP, bench.Inpre)
	if err != nil {
		log.Fatal(err)
	}
	outputs := streamrule.WithOutputPredicates("traffic_jam", "car_fire", "give_notification")

	r, err := streamrule.NewEngine(prog, outputs)
	if err != nil {
		log.Fatal(err)
	}
	dep, err := streamrule.NewParallelEngine(prog, outputs)
	if err != nil {
		log.Fatal(err)
	}
	ran, err := streamrule.NewParallelEngine(prog, outputs, streamrule.WithRandomPartitioning(3, *seed))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("dependency plan (input graph has %d components):\n%s\n", dep.Partitions(), dep.Plan())

	gen, err := workload.NewGenerator(*seed, workload.PaperTraffic())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-8s %12s %12s %12s %10s %10s\n",
		"window", "R(ms)", "PR_Dep(ms)", "PR_Ran3(ms)", "acc(Dep)", "acc(Ran3)")
	for w := 1; w <= *numWindows; w++ {
		window := gen.Window(*windowSize)

		ref, err := r.Reason(window)
		if err != nil {
			log.Fatal(err)
		}
		outDep, err := dep.Reason(window)
		if err != nil {
			log.Fatal(err)
		}
		outRan, err := ran.Reason(window)
		if err != nil {
			log.Fatal(err)
		}

		ms := func(o *streamrule.Output) float64 {
			return float64(o.Latency.CriticalPath.Microseconds()) / 1000
		}
		fmt.Printf("%-8d %12.1f %12.1f %12.1f %10.3f %10.3f\n",
			w, ms(ref), ms(outDep), ms(outRan),
			streamrule.Accuracy(outDep.Answers, ref.Answers),
			streamrule.Accuracy(outRan.Answers, ref.Answers))

		// Show a few of the events R detected in this window.
		shown := 0
		for _, a := range ref.Answers[0].Atoms() {
			if a.Pred == "give_notification" && shown < 3 {
				fmt.Printf("         event: %s\n", a)
				shown++
			}
		}
	}
	fmt.Println("\nPR_Dep keeps accuracy 1.0 at roughly half of R's latency;")
	fmt.Println("random partitioning is faster still but misses events.")
}
