// Distributed: run the paper's traffic program with the sharded reasoner
// DPR — a coordinator plus two loopback worker processes-in-miniature
// (in-process worker servers on ephemeral localhost ports, exactly what a
// remote worker runs behind `streamrule -worker :7070`).
//
// The example streams a synthetic traffic mix through a sliding window
// pipeline, reasons over every window on the workers, and then prints the
// wire economics: after the first windows the per-worker symbol
// dictionaries are warm, so steady-state responses ship no new symbols and
// the dictionary hit rate climbs above 90%.
//
// Run with: go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"streamrule"
)

const program = `
very_slow_speed(X) :- average_speed(X,Y), Y < 20.
many_cars(X)       :- car_number(X,Y), Y > 40.
traffic_jam(X)     :- very_slow_speed(X), many_cars(X), not traffic_light(X).
car_fire(X)        :- car_in_smoke(C, high), car_speed(C, 0), car_location(C, X).
give_notification(X) :- traffic_jam(X).
give_notification(X) :- car_fire(X).
`

func main() {
	inpre := []string{
		"average_speed", "car_number", "traffic_light",
		"car_in_smoke", "car_speed", "car_location",
	}
	prog, err := streamrule.LoadProgram(program, inpre)
	if err != nil {
		log.Fatal(err)
	}

	// Two loopback workers. A real deployment starts these as separate
	// processes (`streamrule -worker :7070`) on other machines; the
	// coordinator below only ever sees their addresses.
	var workers []string
	for i := 0; i < 2; i++ {
		w, err := streamrule.NewWorkerServer("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go w.Serve()
		defer w.Close()
		workers = append(workers, w.Addr())
	}

	// The coordinator: same construction as NewParallelEngine, plus the
	// worker fleet. The dependency analysis still runs here, at design
	// time; the workers receive the program in their session handshakes.
	eng, err := streamrule.NewDistributedEngine(prog, workers)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	fmt.Printf("partitions: %d over %d workers (%v)\n", eng.Partitions(), len(workers), workers)

	// A deterministic synthetic stream in the paper's traffic shape: a
	// bounded set of locations and vehicles recurring across windows.
	rnd := rand.New(rand.NewSource(1))
	var source []streamrule.Triple
	for i := 0; i < 6000; i++ {
		loc := fmt.Sprintf("l%d", rnd.Intn(8))
		car := fmt.Sprintf("v%d", rnd.Intn(12))
		switch v := rnd.Intn(12); {
		case v < 4:
			source = append(source, streamrule.Triple{S: loc, P: "average_speed", O: fmt.Sprint(rnd.Intn(60))})
		case v < 8:
			source = append(source, streamrule.Triple{S: loc, P: "car_number", O: fmt.Sprint(rnd.Intn(80))})
		case v < 9:
			source = append(source, streamrule.Triple{S: "l7", P: "traffic_light", O: "true"})
		case v < 10:
			source = append(source, streamrule.Triple{S: car, P: "car_in_smoke", O: "high"})
		case v < 11:
			source = append(source, streamrule.Triple{S: car, P: "car_speed", O: fmt.Sprint(rnd.Intn(3))})
		default:
			source = append(source, streamrule.Triple{S: car, P: "car_location", O: loc})
		}
	}

	// The run-time pipeline: sliding count windows, incremental on the
	// workers (each session maintains its partition's grounding under the
	// window-to-window delta).
	pl := &streamrule.Pipeline{
		Source:     source,
		Filter:     streamrule.PredicateFilter(inpre...),
		WindowSize: 1500,
		WindowStep: 500,
		Reasoner:   eng,
	}
	n := 0
	err = pl.Run(context.Background(), func(win []streamrule.Triple, out *streamrule.Output) error {
		n++
		mode := "scratch"
		if out.Incremental {
			mode = "incremental"
		}
		atoms := 0
		if len(out.Answers) > 0 {
			atoms = out.Answers[0].Len()
		}
		fmt.Printf("window %2d: %4d items -> %d answer(s), %d atoms, %s, critical-path %v\n",
			n, len(win), len(out.Answers), atoms, mode, out.Latency.CriticalPath)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// The wire economics of the run: every symbol crossed the wire exactly
	// once per session, everything after that is dictionary hits.
	ts := eng.TransportStats()
	fmt.Printf("\ntransport: %d remote partition-windows, %d local fallbacks, %d redials\n",
		ts.RemoteWindows, ts.LocalFallbacks, ts.Redials)
	fmt.Printf("wire:      %d B sent, %d B received\n", ts.BytesSent, ts.BytesReceived)
	fmt.Printf("dict:      %d refs, %d entries shipped, hit rate %.1f%%\n",
		ts.DictRefs, ts.DictShipped, 100*ts.DictHitRate())
}
