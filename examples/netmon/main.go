// Netmon: input dependency analysis on a different domain — network
// monitoring — showing the full decomposing process on a program whose input
// dependency graph is CONNECTED (like the paper's P'), so the plan needs
// Louvain community detection and predicate duplication.
//
// The rule set correlates per-host probes (rtt, loss, maintenance) with
// per-link telemetry (link_util, link_of):
//
//	high_latency(H) :- rtt(H,T), T > 200.
//	lossy(H)        :- loss(H,L), L > 5.
//	degraded(H)     :- high_latency(H), lossy(H), not maintenance(H).
//	congested(L)    :- link_util(L,U), U > 90.
//	overloaded(L)   :- congested(L), link_of(H,L), lossy(H).
//	alert(H)        :- degraded(H).
//	alert(L)        :- overloaded(L).
//
// The overloaded rule joins the link clique with the host side through the
// single input predicate loss (via lossy), so the input graph is one
// connected component; the decomposing process finds a host community and a
// link community and duplicates the smaller exnodes side — the same shape as
// §II-B duplicating car_number in program P'.
//
// Run with: go run ./examples/netmon [-window 8000] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"

	"streamrule"
	"streamrule/internal/workload"
)

const program = `
high_latency(H) :- rtt(H,T), T > 200.
lossy(H)        :- loss(H,L), L > 5.
degraded(H)     :- high_latency(H), lossy(H), not maintenance(H).
congested(L)    :- link_util(L,U), U > 90.
overloaded(L)   :- congested(L), link_of(H,L), lossy(H).
alert(H)        :- degraded(H).
alert(L)        :- overloaded(L).
`

var inpre = []string{"rtt", "loss", "maintenance", "link_util", "link_of"}

func main() {
	windowSize := flag.Int("window", 8000, "window size")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	prog, err := streamrule.LoadProgram(program, inpre)
	if err != nil {
		log.Fatal(err)
	}

	// Design time: inspect the dependency analysis.
	analysis, err := prog.Analyze(1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("input dependency graph edges:")
	for _, e := range analysis.Input.G.Edges() {
		fmt.Printf("  (%s, %s)\n", e[0], e[1])
	}
	fmt.Printf("connected: %v\n\n", analysis.Input.G.IsConnected())
	fmt.Printf("partitioning plan:\n%s\n", analysis.Plan)

	// Run time: synthetic telemetry with hosts and links.
	host := workload.Entity("host", 8)
	link := workload.Entity("link", 16)
	specs := []workload.TripleSpec{
		{Pred: "rtt", S: host, O: workload.NumRange(0, 400)},
		{Pred: "loss", S: host, O: workload.NumRange(0, 20)},
		{Pred: "maintenance", S: host, Weight: 1},
		{Pred: "link_util", S: link, O: workload.NumRange(0, 100), Weight: 2},
		{Pred: "link_of", S: host, O: link, Weight: 2},
	}
	gen, err := workload.NewGenerator(*seed, specs)
	if err != nil {
		log.Fatal(err)
	}
	window := gen.Window(*windowSize)

	r, err := streamrule.NewEngine(prog, streamrule.WithOutputPredicates("alert", "overloaded", "degraded"))
	if err != nil {
		log.Fatal(err)
	}
	pr, err := streamrule.NewParallelEngine(prog, streamrule.WithOutputPredicates("alert", "overloaded", "degraded"))
	if err != nil {
		log.Fatal(err)
	}

	ref, err := r.Reason(window)
	if err != nil {
		log.Fatal(err)
	}
	out, err := pr.Reason(window)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("R:      %d alerts, latency %v\n", ref.Answers[0].Len(), ref.Latency.Total)
	fmt.Printf("PR_Dep: %d alerts, critical-path %v, duplication share %.1f%%\n",
		out.Answers[0].Len(), out.Latency.CriticalPath,
		100*out.DuplicationShare(len(window)))
	fmt.Printf("accuracy: %.3f\n", streamrule.Accuracy(out.Answers, ref.Answers))

	shown := 0
	for _, a := range ref.Answers[0].Atoms() {
		if a.Pred == "alert" && shown < 5 {
			fmt.Printf("  %s\n", a)
			shown++
		}
	}
}
