// Benchmarks regenerating the paper's evaluation (one family per figure) and
// the design-choice ablations called out in DESIGN.md.
//
// Figures 7/9 plot reasoning latency and Figures 8/10 answer accuracy over
// window sizes 5k-40k for the systems R, PR_Dep, and PR_Ran_k (k=2..5). The
// benchmark variants here sweep a representative subset of sizes so that
// `go test -bench=.` completes in minutes; `cmd/benchfig` runs the full
// sweep and emits the CSV series for each figure.
//
// Latency benchmarks report two extra metrics per op: "cp-ms" is the
// critical-path (parallel) latency the paper plots, and accuracy benchmarks
// report "accuracy" against the whole-window reasoner R.
package streamrule

import (
	"fmt"
	"testing"

	"streamrule/internal/asp/ground"
	"streamrule/internal/asp/intern"
	"streamrule/internal/asp/parser"
	"streamrule/internal/asp/solve"
	"streamrule/internal/bench"
	"streamrule/internal/core"
	"streamrule/internal/reasoner"
	"streamrule/internal/workload"
)

var benchSizes = []int{5000, 10000, 20000, 40000}

func benchWindow(b *testing.B, seed int64, size int) []Triple {
	b.Helper()
	gen, err := workload.NewGenerator(seed, workload.PaperTraffic())
	if err != nil {
		b.Fatal(err)
	}
	return gen.Window(size)
}

func benchProgram(b *testing.B, src string) *Program {
	b.Helper()
	p, err := LoadProgram(src, bench.Inpre)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// systems builds the benchmarked reasoners: R, PR_Dep, PR_Ran_k2..k5.
func systems(b *testing.B, src string) map[string]Reasoner {
	b.Helper()
	p := benchProgram(b, src)
	out := make(map[string]Reasoner)
	eng, err := NewEngine(p, WithOutputPredicates(bench.Outputs...))
	if err != nil {
		b.Fatal(err)
	}
	out["R"] = eng
	dep, err := NewParallelEngine(p, WithOutputPredicates(bench.Outputs...))
	if err != nil {
		b.Fatal(err)
	}
	out["PR_Dep"] = dep
	for _, k := range []int{2, 3, 4, 5} {
		ran, err := NewParallelEngine(p, WithOutputPredicates(bench.Outputs...),
			WithRandomPartitioning(k, int64(k)))
		if err != nil {
			b.Fatal(err)
		}
		out[fmt.Sprintf("PR_Ran_k%d", k)] = ran
	}
	return out
}

var systemOrder = []string{"R", "PR_Dep", "PR_Ran_k2", "PR_Ran_k3", "PR_Ran_k4", "PR_Ran_k5"}

// benchLatencyFigure runs a latency figure (7 or 9): every system at every
// size, reporting the critical-path latency alongside the wall time.
func benchLatencyFigure(b *testing.B, src string) {
	sys := systems(b, src)
	for _, name := range systemOrder {
		for _, size := range benchSizes {
			b.Run(fmt.Sprintf("%s/w%dk", name, size/1000), func(b *testing.B) {
				b.ReportAllocs()
				window := benchWindow(b, int64(size), size)
				b.ResetTimer()
				var cpTotal float64
				for i := 0; i < b.N; i++ {
					out, err := sys[name].Reason(window)
					if err != nil {
						b.Fatal(err)
					}
					cpTotal += float64(out.Latency.CriticalPath.Microseconds()) / 1000
				}
				b.ReportMetric(cpTotal/float64(b.N), "cp-ms")
			})
		}
	}
}

// benchAccuracyFigure runs an accuracy figure (8 or 10): every partitioned
// system at every size, reporting accuracy against R on the same window.
func benchAccuracyFigure(b *testing.B, src string) {
	sys := systems(b, src)
	for _, name := range systemOrder {
		if name == "R" {
			continue
		}
		for _, size := range benchSizes {
			b.Run(fmt.Sprintf("%s/w%dk", name, size/1000), func(b *testing.B) {
				b.ReportAllocs()
				window := benchWindow(b, int64(size), size)
				ref, err := sys["R"].Reason(window)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				var accTotal float64
				for i := 0; i < b.N; i++ {
					out, err := sys[name].Reason(window)
					if err != nil {
						b.Fatal(err)
					}
					accTotal += Accuracy(out.Answers, ref.Answers)
				}
				b.ReportMetric(accTotal/float64(b.N), "accuracy")
			})
		}
	}
}

// BenchmarkFig7 reproduces Figure 7: reasoning latency on program P.
func BenchmarkFig7(b *testing.B) { benchLatencyFigure(b, bench.ProgramP) }

// BenchmarkFig8 reproduces Figure 8: answer accuracy on program P.
func BenchmarkFig8(b *testing.B) { benchAccuracyFigure(b, bench.ProgramP) }

// BenchmarkFig9 reproduces Figure 9: reasoning latency on program P', whose
// connected input dependency graph forces duplication of car_number.
func BenchmarkFig9(b *testing.B) { benchLatencyFigure(b, bench.ProgramPPrime) }

// BenchmarkFig10 reproduces Figure 10: answer accuracy on program P'.
func BenchmarkFig10(b *testing.B) { benchAccuracyFigure(b, bench.ProgramPPrime) }

// BenchmarkFig7Residual is the residual-workload figure this repository
// adds on top of the paper: bench.ProgramResidual (P plus an
// incident-response layer of even loops, a bounded dispatch choice, and
// three free sensor-health loops) over workload.ResidualTraffic, so every
// window leaves the solver a large residual program explored through a real
// search tree (8 answer sets). The "worklist" variant is the counter-based
// event-driven propagation engine; "naive" is the legacy rescan-to-fixpoint
// propagator it replaced. Compare "solve-ms" (the solver's share of the
// critical path) and "rule-visits" (propagation work per window).
func BenchmarkFig7Residual(b *testing.B) {
	p := benchProgram(b, bench.ProgramResidual)
	for _, variant := range []struct {
		name string
		opts []Option
	}{
		{"worklist", nil},
		{"naive", []Option{WithNaivePropagation()}},
	} {
		for _, sys := range []string{"R", "PR_Dep"} {
			for _, size := range []int{5000, 10000} {
				b.Run(fmt.Sprintf("%s/%s/w%dk", sys, variant.name, size/1000), func(b *testing.B) {
					b.ReportAllocs()
					var eng Reasoner
					var err error
					if sys == "R" {
						eng, err = NewEngine(p, variant.opts...)
					} else {
						eng, err = NewParallelEngine(p, variant.opts...)
					}
					if err != nil {
						b.Fatal(err)
					}
					gen, err := workload.NewGenerator(int64(size), workload.ResidualTraffic())
					if err != nil {
						b.Fatal(err)
					}
					window := gen.Window(size)
					b.ResetTimer()
					var cpTotal, solveTotal, visits float64
					for i := 0; i < b.N; i++ {
						out, err := eng.Reason(window)
						if err != nil {
							b.Fatal(err)
						}
						if out.SolveStats.FastPath {
							b.Fatal("residual workload took the fast path")
						}
						cpTotal += float64(out.Latency.CriticalPath.Microseconds()) / 1000
						solveTotal += float64(out.Latency.Solve.Microseconds()) / 1000
						visits += float64(out.SolveStats.RuleVisits)
					}
					b.ReportMetric(cpTotal/float64(b.N), "cp-ms")
					b.ReportMetric(solveTotal/float64(b.N), "solve-ms")
					b.ReportMetric(visits/float64(b.N), "rule-visits")
				})
			}
		}
	}
}

// BenchmarkFig7Sliding measures the latency lever this repository adds on
// top of the paper: with sliding windows at Step = Size/5, consecutive
// windows share 80% of their items, and the incremental grounding path
// maintains the previous window's grounding under the delta instead of
// re-grounding from scratch. The "scratch" variant is the paper's R
// (re-ground every window); "incremental" is R fed the windower's deltas.
// Both process the identical window sequence; compare cp-ms.
func BenchmarkFig7Sliding(b *testing.B) {
	prog, err := parser.Parse(bench.ProgramP)
	if err != nil {
		b.Fatal(err)
	}
	cfg := reasoner.Config{Program: prog, Inpre: bench.Inpre, OutputPreds: bench.Outputs}
	for _, size := range []int{5000, 10000} {
		step := size / 5
		gen, err := workload.NewGenerator(int64(size), workload.PaperTraffic())
		if err != nil {
			b.Fatal(err)
		}
		// Precompute ~40 sliding emissions over one long stream.
		stream := gen.Window(size + step*40)
		type emission struct {
			window, added, retracted []Triple
			incremental              bool
		}
		var emissions []emission
		for at := 0; at+size <= len(stream); at += step {
			e := emission{window: stream[at : at+size]}
			if at > 0 {
				e.incremental = true
				e.added = stream[at+size-step : at+size]
				e.retracted = stream[at-step : at]
			}
			emissions = append(emissions, e)
		}
		for _, variant := range []string{"scratch", "incremental"} {
			b.Run(fmt.Sprintf("R/%s/w%dk", variant, size/1000), func(b *testing.B) {
				b.ReportAllocs()
				r, err := reasoner.NewR(cfg)
				if err != nil {
					b.Fatal(err)
				}
				process := func(e emission) (*reasoner.Output, error) {
					if variant == "scratch" {
						return r.Process(e.window)
					}
					var d *reasoner.Delta
					if e.incremental {
						d = &reasoner.Delta{Added: e.added, Retracted: e.retracted}
					}
					return r.ProcessDelta(e.window, d)
				}
				// Warm both variants to the steady state (first windows
				// seed interning tables and, for incremental, supports).
				for _, e := range emissions[:3] {
					if _, err := process(e); err != nil {
						b.Fatal(err)
					}
				}
				b.ResetTimer()
				var cpTotal float64
				incWindows := 0
				for i := 0; i < b.N; i++ {
					e := emissions[3+i%(len(emissions)-3)]
					if i%(len(emissions)-3) == 0 && i > 0 {
						// The cycle wrapped: the stored delta does not
						// relate this window to the previous one.
						e.incremental = false
					}
					out, err := process(e)
					if err != nil {
						b.Fatal(err)
					}
					cpTotal += float64(out.Latency.CriticalPath.Microseconds()) / 1000
					if out.Incremental {
						incWindows++
					}
				}
				b.ReportMetric(cpTotal/float64(b.N), "cp-ms")
				b.ReportMetric(float64(incWindows)/float64(b.N), "inc-share")
			})
		}
	}
}

// BenchmarkFig7SoakEviction measures what intern-table eviction costs on the
// workload it exists for: sliding windows over a stream whose location and
// vehicle constants churn ("timestamped" streams), which grow the table
// without bound. The "no-evict" variant runs on a frozen private table (the
// paper's assumption of a bounded vocabulary); "budget20k" rotates the table
// whenever it exceeds 20k atoms, evicting constants the live window no
// longer references. Compare cp-ms for the rotation overhead and the
// "live-atoms" gauge for the memory effect.
func BenchmarkFig7SoakEviction(b *testing.B) {
	prog, err := parser.Parse(bench.ProgramP)
	if err != nil {
		b.Fatal(err)
	}
	const size = 5000
	step := size / 5
	stream := bench.FreshTraffic(int64(size), size+step*40)
	type emission struct {
		window, added, retracted []Triple
		incremental              bool
	}
	var emissions []emission
	for at := 0; at+size <= len(stream); at += step {
		e := emission{window: stream[at : at+size]}
		if at > 0 {
			e.incremental = true
			e.added = stream[at+size-step : at+size]
			e.retracted = stream[at-step : at]
		}
		emissions = append(emissions, e)
	}
	for _, variant := range []struct {
		name   string
		budget int
	}{
		{"no-evict", 0},
		{"budget20k", 20000},
	} {
		b.Run(fmt.Sprintf("R/%s/w%dk", variant.name, size/1000), func(b *testing.B) {
			b.ReportAllocs()
			cfg := reasoner.Config{
				Program: prog, Inpre: bench.Inpre, OutputPreds: bench.Outputs,
				MemoryBudget: variant.budget,
			}
			if variant.budget == 0 {
				// A private frozen table: the fresh constants must not
				// pollute the process-wide default table.
				cfg.GroundOpts.Intern = intern.NewTable()
			}
			r, err := reasoner.NewR(cfg)
			if err != nil {
				b.Fatal(err)
			}
			process := func(e emission) (*reasoner.Output, error) {
				var d *reasoner.Delta
				if e.incremental {
					d = &reasoner.Delta{Added: e.added, Retracted: e.retracted}
				}
				return r.ProcessDelta(e.window, d)
			}
			for _, e := range emissions[:3] {
				if _, err := process(e); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			var cpTotal float64
			for i := 0; i < b.N; i++ {
				e := emissions[3+i%(len(emissions)-3)]
				if i%(len(emissions)-3) == 0 && i > 0 {
					e.incremental = false
				}
				out, err := process(e)
				if err != nil {
					b.Fatal(err)
				}
				cpTotal += float64(out.Latency.CriticalPath.Microseconds()) / 1000
			}
			b.ReportMetric(cpTotal/float64(b.N), "cp-ms")
			st := r.Stats()
			b.ReportMetric(float64(st.Table.Atoms), "live-atoms")
			b.ReportMetric(float64(st.Table.Rotations), "rotations")
		})
	}
}

// BenchmarkGroundIndex is the grounder ablation: per-argument indexes on
// (the default) versus full-scan joins.
func BenchmarkGroundIndex(b *testing.B) {
	prog, err := parser.Parse(bench.ProgramP)
	if err != nil {
		b.Fatal(err)
	}
	for _, variant := range []struct {
		name string
		opts ground.Options
	}{
		{"indexed", ground.Options{}},
		{"noindex", ground.Options{NoIndex: true}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			b.ReportAllocs()
			window := benchWindow(b, 42, 10000)
			cfg := reasoner.Config{Program: prog, Inpre: bench.Inpre, GroundOpts: variant.opts}
			rr, err := reasoner.NewR(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rr.Process(window); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolverPaths contrasts the stratified fast path (the paper's
// programs) with the DPLL search on a non-stratified choice program.
func BenchmarkSolverPaths(b *testing.B) {
	b.Run("stratified-fastpath", func(b *testing.B) {
		b.ReportAllocs()
		prog, err := parser.Parse(bench.ProgramP)
		if err != nil {
			b.Fatal(err)
		}
		r, err := reasoner.NewR(reasoner.Config{Program: prog, Inpre: bench.Inpre})
		if err != nil {
			b.Fatal(err)
		}
		window := benchWindow(b, 7, 10000)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := r.Process(window)
			if err != nil {
				b.Fatal(err)
			}
			if !out.SolveStats.FastPath {
				b.Fatal("expected fast path")
			}
		}
	})
	b.Run("search-choices", func(b *testing.B) {
		b.ReportAllocs()
		// 10 independent even loops: 1024 answer sets, enumerated.
		src := ""
		for i := 0; i < 10; i++ {
			src += fmt.Sprintf("a%d :- not b%d.\nb%d :- not a%d.\n", i, i, i, i)
		}
		prog, err := parser.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		gp, err := ground.Ground(prog, nil, ground.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := solve.Solve(gp, solve.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Models) != 1024 {
				b.Fatalf("models = %d", len(res.Models))
			}
		}
	})
}

// BenchmarkDuplication is the duplication ablation on P': the paper's
// smaller-exnodes duplication versus a stripped plan with no duplication
// (faster but lossy — the accuracy metric shows the loss).
func BenchmarkDuplication(b *testing.B) {
	prog, err := parser.Parse(bench.ProgramPPrime)
	if err != nil {
		b.Fatal(err)
	}
	a, err := core.Analyze(prog, bench.Inpre, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	cfg := reasoner.Config{Program: prog, Inpre: bench.Inpre, OutputPreds: bench.Outputs}
	ref, err := reasoner.NewR(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, variant := range []struct {
		name string
		plan *core.Plan
	}{
		{"duplicate-smaller-exnodes", a.Plan},
		{"no-duplication", core.StripDuplicates(a.Plan)},
	} {
		b.Run(variant.name, func(b *testing.B) {
			b.ReportAllocs()
			pr, err := reasoner.NewPR(cfg, reasoner.NewPlanPartitioner(variant.plan))
			if err != nil {
				b.Fatal(err)
			}
			window := benchWindow(b, 3, 10000)
			refOut, err := ref.Process(window)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var cp, acc float64
			for i := 0; i < b.N; i++ {
				out, err := pr.Process(window)
				if err != nil {
					b.Fatal(err)
				}
				cp += float64(out.Latency.CriticalPath.Microseconds()) / 1000
				acc += reasoner.Accuracy(out.Answers, refOut.Answers)
			}
			b.ReportMetric(cp/float64(b.N), "cp-ms")
			b.ReportMetric(acc/float64(b.N), "accuracy")
		})
	}
}

// BenchmarkResolution sweeps the Louvain resolution used by the decomposing
// process on P' (footnote 8 fixes 1.0; this shows the sensitivity).
func BenchmarkResolution(b *testing.B) {
	prog, err := parser.Parse(bench.ProgramPPrime)
	if err != nil {
		b.Fatal(err)
	}
	for _, res := range []float64{0.5, 1.0, 2.0, 4.0} {
		b.Run(fmt.Sprintf("res%.1f", res), func(b *testing.B) {
			b.ReportAllocs()
			var parts float64
			for i := 0; i < b.N; i++ {
				a, err := core.Analyze(prog, bench.Inpre, res)
				if err != nil {
					b.Fatal(err)
				}
				parts += float64(a.Plan.NumPartitions())
			}
			b.ReportMetric(parts/float64(b.N), "partitions")
		})
	}
}

// BenchmarkPartitioners isolates the partitioning handler itself (Algorithm
// 1 versus random chunking) on a 40k window.
func BenchmarkPartitioners(b *testing.B) {
	prog, err := parser.Parse(bench.ProgramP)
	if err != nil {
		b.Fatal(err)
	}
	a, err := core.Analyze(prog, bench.Inpre, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	window := benchWindow(b, 1, 40000)
	b.Run("plan", func(b *testing.B) {
		b.ReportAllocs()
		p := reasoner.NewPlanPartitioner(a.Plan)
		for i := 0; i < b.N; i++ {
			p.Partition(window)
		}
	})
	b.Run("random_k4", func(b *testing.B) {
		b.ReportAllocs()
		p := reasoner.NewRandomPartitioner(4, 1)
		for i := 0; i < b.N; i++ {
			p.Partition(window)
		}
	})
}

// BenchmarkAtomLevel measures the future-work extension (§VI): atom-level
// hash partitioning inside splittable communities. On program P the
// predicate-level plan caps parallelism at 2 partitions; atom fan-out m
// raises it to 2*m while keeping accuracy 1.0 (reported per op).
func BenchmarkAtomLevel(b *testing.B) {
	p := benchProgram(b, bench.ProgramP)
	ref, err := NewEngine(p, WithOutputPredicates(bench.Outputs...))
	if err != nil {
		b.Fatal(err)
	}
	window := benchWindow(b, 19, 20000)
	refOut, err := ref.Reason(window)
	if err != nil {
		b.Fatal(err)
	}
	variants := []struct {
		name string
		opts []Option
	}{
		{"PR_Dep", []Option{WithOutputPredicates(bench.Outputs...)}},
		{"PR_Atom_m2", []Option{WithOutputPredicates(bench.Outputs...), WithAtomPartitioning(2)}},
		{"PR_Atom_m4", []Option{WithOutputPredicates(bench.Outputs...), WithAtomPartitioning(4)}},
		{"PR_Atom_m8", []Option{WithOutputPredicates(bench.Outputs...), WithAtomPartitioning(8)}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			eng, err := NewParallelEngine(p, v.opts...)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var cp, acc float64
			for i := 0; i < b.N; i++ {
				out, err := eng.Reason(window)
				if err != nil {
					b.Fatal(err)
				}
				cp += float64(out.Latency.CriticalPath.Microseconds()) / 1000
				acc += Accuracy(out.Answers, refOut.Answers)
			}
			b.ReportMetric(cp/float64(b.N), "cp-ms")
			b.ReportMetric(acc/float64(b.N), "accuracy")
		})
	}
}

// BenchmarkAnalyze measures the design-time cost of the full input
// dependency analysis (it runs once per program, not per window).
func BenchmarkAnalyze(b *testing.B) {
	b.ReportAllocs()
	prog, err := parser.Parse(bench.ProgramPPrime)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := core.Analyze(prog, bench.Inpre, 1.0); err != nil {
			b.Fatal(err)
		}
	}
}
