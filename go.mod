module streamrule

go 1.24
