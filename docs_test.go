package streamrule

// The docs gate: the markdown doc set must exist, its Go code blocks must
// be syntactically valid gofmt-able Go, the examples must stay gofmt-clean,
// and every exported symbol of the facade package must carry a doc comment.
// CI runs this alongside vet/build (which compile the examples themselves).

import (
	"go/ast"
	"go/format"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var docFiles = []string{"README.md", "ARCHITECTURE.md", "docs/OPERATIONS.md"}

// goBlocks extracts the ```go fenced code blocks of a markdown file.
func goBlocks(t *testing.T, path string) []string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	var blocks []string
	lines := strings.Split(string(data), "\n")
	for i := 0; i < len(lines); i++ {
		if strings.TrimSpace(lines[i]) != "```go" {
			continue
		}
		var b []string
		for i++; i < len(lines) && strings.TrimSpace(lines[i]) != "```"; i++ {
			b = append(b, lines[i])
		}
		blocks = append(blocks, strings.Join(b, "\n"))
	}
	return blocks
}

// parseFragment accepts a whole file, a set of declarations, or a statement
// list — the shapes code blocks in prose take.
func parseFragment(src string) error {
	wrappers := []string{
		"%s",                                 // complete file
		"package p\n%s",                      // declarations
		"package p\nfunc _() {\n%s\n}\n",     // statements
		"package p\nvar _ = func() {\n%s\n}", // expressions in context
	}
	var firstErr error
	for _, w := range wrappers {
		wrapped := strings.Replace(w, "%s", src, 1)
		if _, err := parser.ParseFile(token.NewFileSet(), "block.go", wrapped, 0); err == nil {
			return nil
		} else if firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// TestDocsGoBlocksParse gates the prose: every ```go block in the doc set
// must be valid Go (so examples in the docs cannot rot silently).
func TestDocsGoBlocksParse(t *testing.T) {
	for _, f := range docFiles {
		blocks := goBlocks(t, f)
		if f == "README.md" && len(blocks) == 0 {
			t.Errorf("%s: no Go code blocks found; the quickstart is gone", f)
		}
		for i, b := range blocks {
			if err := parseFragment(b); err != nil {
				t.Errorf("%s: Go block %d does not parse: %v\n%s", f, i+1, err, b)
			}
		}
	}
}

// TestDocsExist pins the acceptance criterion: the architecture and
// operations docs are part of the build.
func TestDocsExist(t *testing.T) {
	for _, f := range docFiles {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if st.Size() < 1024 {
			t.Errorf("%s: suspiciously small (%d bytes)", f, st.Size())
		}
	}
}

// TestExamplesGofmt keeps the runnable examples gofmt-clean (CI formats the
// whole tree too; this makes the examples' status visible in go test).
func TestExamplesGofmt(t *testing.T) {
	err := filepath.WalkDir("examples", func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		formatted, err := format.Source(src)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			return nil
		}
		if string(formatted) != string(src) {
			t.Errorf("%s: not gofmt-formatted", path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFacadeExportedSymbolsDocumented walks the root package and requires a
// doc comment on every exported type, function, method, and field-free
// value declaration — the satellite contract that `go doc streamrule`
// reads coherently.
func TestFacadeExportedSymbolsDocumented(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["streamrule"]
	if !ok {
		t.Fatal("package streamrule not found")
	}
	report := func(pos token.Pos, kind, name string) {
		t.Errorf("%s: exported %s %s has no doc comment", fset.Position(pos), kind, name)
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc == nil {
					kind := "function"
					if d.Recv != nil {
						kind = "method"
					}
					report(d.Pos(), kind, d.Name.Name)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							report(s.Pos(), "type", s.Name.Name)
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
								report(s.Pos(), "value", n.Name)
							}
						}
					}
				}
			}
		}
	}
}
