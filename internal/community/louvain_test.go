package community

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// paperGraph builds the input dependency graph of program P' (Figure 4):
// two triangles bridged by three edges incident to car_number, plus the
// self-loop on traffic_light.
func paperGraph() *Graph {
	g := NewGraph()
	tri := func(a, b, c string) {
		g.AddEdge(a, b, 1)
		g.AddEdge(b, c, 1)
		g.AddEdge(a, c, 1)
	}
	tri("average_speed", "car_number", "traffic_light")
	tri("car_in_smoke", "car_speed", "car_location")
	g.AddEdge("traffic_light", "traffic_light", 1)
	for _, n := range []string{"car_in_smoke", "car_speed", "car_location"} {
		g.AddEdge("car_number", n, 1)
	}
	return g
}

func TestLouvainPaperGraph(t *testing.T) {
	res, err := Louvain(paperGraph(), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumCommunities() != 2 {
		t.Fatalf("expected 2 communities, got %d: %v", res.NumCommunities(), res.Members())
	}
	c := res.Communities
	// The two driving cliques must stay together.
	if c["average_speed"] != c["traffic_light"] {
		t.Errorf("average_speed and traffic_light split: %v", res.Members())
	}
	if c["car_in_smoke"] != c["car_speed"] || c["car_speed"] != c["car_location"] {
		t.Errorf("car_* clique split: %v", res.Members())
	}
	if c["average_speed"] == c["car_in_smoke"] {
		t.Errorf("the two cliques must be distinct communities: %v", res.Members())
	}
	if res.Modularity <= 0 {
		t.Errorf("modularity = %v, want > 0", res.Modularity)
	}
}

func TestLouvainDeterministic(t *testing.T) {
	a, err := Louvain(paperGraph(), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Louvain(paperGraph(), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for n, c := range a.Communities {
		if b.Communities[n] != c {
			t.Fatalf("non-deterministic assignment for %s", n)
		}
	}
}

func TestLouvainTwoCliquesWithBridge(t *testing.T) {
	g := NewGraph()
	clique := func(prefix string, n int) {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				g.AddEdge(fmt.Sprintf("%s%d", prefix, i), fmt.Sprintf("%s%d", prefix, j), 1)
			}
		}
	}
	clique("a", 5)
	clique("b", 5)
	g.AddEdge("a0", "b0", 1)
	res, err := Louvain(g, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumCommunities() != 2 {
		t.Fatalf("expected 2 communities, got %v", res.Members())
	}
	for i := 1; i < 5; i++ {
		if res.Communities[fmt.Sprintf("a%d", i)] != res.Communities["a0"] {
			t.Errorf("a-clique split")
		}
		if res.Communities[fmt.Sprintf("b%d", i)] != res.Communities["b0"] {
			t.Errorf("b-clique split")
		}
	}
}

func TestLouvainHighResolutionSplits(t *testing.T) {
	// At very high resolution each node prefers isolation.
	g := NewGraph()
	g.AddEdge("a", "b", 1)
	g.AddEdge("c", "d", 1)
	low, err := Louvain(g, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	high, err := Louvain(g, 100.0)
	if err != nil {
		t.Fatal(err)
	}
	if low.NumCommunities() > high.NumCommunities() {
		t.Errorf("higher resolution should not merge communities: %d vs %d",
			low.NumCommunities(), high.NumCommunities())
	}
}

func TestLouvainEdgeCases(t *testing.T) {
	empty := NewGraph()
	res, err := Louvain(empty, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Communities) != 0 {
		t.Error("empty graph should yield no communities")
	}

	single := NewGraph()
	single.AddNode("only")
	res, err = Louvain(single, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Communities["only"] != 0 || res.NumCommunities() != 1 {
		t.Errorf("single node: %v", res.Communities)
	}

	noEdges := NewGraph()
	noEdges.AddNode("x")
	noEdges.AddNode("y")
	res, err = Louvain(noEdges, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumCommunities() != 2 {
		t.Errorf("isolated nodes must be separate communities: %v", res.Communities)
	}

	if _, err := Louvain(paperGraph(), 0); err == nil {
		t.Error("resolution 0 must be rejected")
	}
	if _, err := Louvain(paperGraph(), -1); err == nil {
		t.Error("negative resolution must be rejected")
	}
}

func TestModularityKnownValue(t *testing.T) {
	// Two disconnected edges, each its own community:
	// m = 2, per community: in = 2*1, tot = 2 -> Q = 2*(2/4 - (2/4)^2) = 0.5.
	g := NewGraph()
	g.AddEdge("a", "b", 1)
	g.AddEdge("c", "d", 1)
	comm := map[string]int{"a": 0, "b": 0, "c": 1, "d": 1}
	q := Modularity(g, comm, 1.0)
	if q < 0.499 || q > 0.501 {
		t.Errorf("Q = %v, want 0.5", q)
	}
	// Everything in one community: Q = 2/4... in=2*2=4? in/2m=1, tot=4 ->
	// 4/4 - (4/4)^2 = 0 for one community... compute: in = 4, m2 = 4,
	// tot = 4 -> Q = 1 - 1 = 0.
	one := map[string]int{"a": 0, "b": 0, "c": 0, "d": 0}
	if q := Modularity(g, one, 1.0); q > 1e-9 || q < -1e-9 {
		t.Errorf("single community Q = %v, want 0", q)
	}
}

// Property: Louvain's assignment always has modularity >= the trivial
// one-community assignment and the all-singletons assignment.
func TestQuickLouvainBeatsTrivial(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph()
		n := 3 + rng.Intn(10)
		for i := 0; i < n; i++ {
			g.AddNode(fmt.Sprintf("n%02d", i))
		}
		for e := 0; e < 2*n; e++ {
			a := fmt.Sprintf("n%02d", rng.Intn(n))
			b := fmt.Sprintf("n%02d", rng.Intn(n))
			g.AddEdge(a, b, 1)
		}
		res, err := Louvain(g, 1.0)
		if err != nil {
			return false
		}
		all := make(map[string]int)
		single := make(map[string]int)
		for i := 0; i < n; i++ {
			all[fmt.Sprintf("n%02d", i)] = 0
			single[fmt.Sprintf("n%02d", i)] = i
		}
		eps := 1e-9
		return res.Modularity >= Modularity(g, all, 1.0)-eps &&
			res.Modularity >= Modularity(g, single, 1.0)-eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: community ids form a contiguous range starting at 0 and cover
// every node.
func TestQuickLouvainValidPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph()
		n := 1 + rng.Intn(12)
		for i := 0; i < n; i++ {
			g.AddNode(fmt.Sprintf("n%02d", i))
		}
		for e := 0; e < n+rng.Intn(2*n+1); e++ {
			g.AddEdge(fmt.Sprintf("n%02d", rng.Intn(n)), fmt.Sprintf("n%02d", rng.Intn(n)), 1)
		}
		res, err := Louvain(g, 1.0)
		if err != nil {
			return false
		}
		if len(res.Communities) != n {
			return false
		}
		seen := make(map[int]bool)
		for _, c := range res.Communities {
			if c < 0 {
				return false
			}
			seen[c] = true
		}
		for i := 0; i < len(seen); i++ {
			if !seen[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
