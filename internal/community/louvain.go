// Package community implements the Louvain method for community detection
// (Blondel, Guillaume, Lambiotte, Lefebvre 2008) with the resolution
// parameter of Lambiotte, Delvenne, Barahona 2008 — the algorithm the paper
// uses (with resolution = 1.0, footnote 8) to decompose a connected input
// dependency graph into communities.
//
// The implementation is deterministic: nodes are visited in sorted order, so
// the same graph always yields the same communities.
package community

import (
	"fmt"
	"sort"
)

// Graph is a weighted undirected graph with optional self-loops.
type Graph struct {
	names []string
	index map[string]int
	adj   []map[int]float64 // adj[i][j] = edge weight, i != j
	self  []float64         // self-loop weight per node
	total float64           // sum of all edge weights (each edge once)
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{index: make(map[string]int)}
}

// AddNode inserts a node (no-op if present) and returns its id.
func (g *Graph) AddNode(name string) int {
	if i, ok := g.index[name]; ok {
		return i
	}
	i := len(g.names)
	g.index[name] = i
	g.names = append(g.names, name)
	g.adj = append(g.adj, make(map[int]float64))
	g.self = append(g.self, 0)
	return i
}

// AddEdge adds w to the weight of the undirected edge {a,b}; a == b adds a
// self-loop.
func (g *Graph) AddEdge(a, b string, w float64) {
	ia, ib := g.AddNode(a), g.AddNode(b)
	if ia == ib {
		g.self[ia] += w
		g.total += w
		return
	}
	g.adj[ia][ib] += w
	g.adj[ib][ia] += w
	g.total += w
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.names) }

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() float64 { return g.total }

// degree is the weighted degree of node i: neighbors plus twice the
// self-loop, the standard convention for modularity.
func (g *Graph) degree(i int) float64 {
	d := 2 * g.self[i]
	for _, w := range g.adj[i] {
		d += w
	}
	return d
}

// Result is a community assignment.
type Result struct {
	// Communities maps node name -> community id in [0, NumCommunities).
	// Ids are assigned in order of each community's smallest member name.
	Communities map[string]int
	// Modularity is the modularity Q of the assignment at the given
	// resolution.
	Modularity float64
}

// NumCommunities returns the number of distinct communities.
func (r *Result) NumCommunities() int {
	seen := make(map[int]bool)
	for _, c := range r.Communities {
		seen[c] = true
	}
	return len(seen)
}

// Members returns the sorted member names of each community, indexed by
// community id.
func (r *Result) Members() [][]string {
	out := make([][]string, r.NumCommunities())
	for n, c := range r.Communities {
		out[c] = append(out[c], n)
	}
	for _, m := range out {
		sort.Strings(m)
	}
	return out
}

// Louvain detects communities at the given resolution (1.0 is the classic
// modularity; higher values produce more, smaller communities).
func Louvain(g *Graph, resolution float64) (*Result, error) {
	if resolution <= 0 {
		return nil, fmt.Errorf("resolution must be positive, got %v", resolution)
	}
	n := g.NumNodes()
	if n == 0 {
		return &Result{Communities: map[string]int{}}, nil
	}
	if g.total == 0 {
		// No edges: every node is its own community.
		res := &Result{Communities: make(map[string]int, n)}
		names := append([]string(nil), g.names...)
		sort.Strings(names)
		for i, name := range names {
			res.Communities[name] = i
		}
		return res, nil
	}

	// level state: current aggregated graph and, for each original node,
	// its node id in the aggregated graph.
	cur := g
	assign := make([]int, n) // original node -> aggregated node id
	for i := range assign {
		assign[i] = i
	}

	for {
		comm, moved := localMove(cur, resolution)
		if !moved && cur != g {
			break
		}
		// Re-map original nodes through this level's communities.
		for i := range assign {
			assign[i] = comm[assign[i]]
		}
		if !moved {
			break
		}
		next := aggregate(cur, comm)
		if next.NumNodes() == cur.NumNodes() {
			break
		}
		cur = next
	}

	// Renumber communities by smallest member name.
	groups := make(map[int][]string)
	for i, name := range g.names {
		groups[assign[i]] = append(groups[assign[i]], name)
	}
	type grp struct {
		min     string
		members []string
	}
	var ordered []grp
	for _, members := range groups {
		sort.Strings(members)
		ordered = append(ordered, grp{min: members[0], members: members})
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].min < ordered[j].min })
	res := &Result{Communities: make(map[string]int, n)}
	for id, gr := range ordered {
		for _, m := range gr.members {
			res.Communities[m] = id
		}
	}
	res.Modularity = Modularity(g, res.Communities, resolution)
	return res, nil
}

// localMove runs phase one of Louvain on the graph: nodes greedily move to
// the neighboring community with the highest modularity gain until no move
// improves. It returns the community id per node and whether any node moved.
func localMove(g *Graph, resolution float64) (comm []int, moved bool) {
	n := g.NumNodes()
	comm = make([]int, n)
	sigmaTot := make([]float64, n)
	deg := make([]float64, n)
	for i := 0; i < n; i++ {
		comm[i] = i
		deg[i] = g.degree(i)
		sigmaTot[i] = deg[i]
	}
	m2 := 2 * g.total

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return g.names[order[a]] < g.names[order[b]] })

	for pass := 0; pass < 1000; pass++ {
		passMoved := false
		for _, i := range order {
			cur := comm[i]
			// Weights from i into each neighboring community.
			wTo := make(map[int]float64)
			for j, w := range g.adj[i] {
				wTo[comm[j]] += w
			}
			// Remove i from its community.
			sigmaTot[cur] -= deg[i]
			// Gain of joining community c: wTo[c] - γ·Σtot_c·k_i/(2m).
			best := cur
			bestGain := wTo[cur] - resolution*sigmaTot[cur]*deg[i]/m2
			// Deterministic tie-breaking: consider communities in sorted id
			// order, require a strict improvement to move.
			cands := make([]int, 0, len(wTo))
			for c := range wTo {
				cands = append(cands, c)
			}
			sort.Ints(cands)
			for _, c := range cands {
				if c == cur {
					continue
				}
				gain := wTo[c] - resolution*sigmaTot[c]*deg[i]/m2
				if gain > bestGain+1e-12 {
					bestGain = gain
					best = c
				}
			}
			comm[i] = best
			sigmaTot[best] += deg[i]
			if best != cur {
				passMoved = true
				moved = true
			}
		}
		if !passMoved {
			break
		}
	}
	// Compact community ids.
	remap := make(map[int]int)
	for _, i := range order {
		if _, ok := remap[comm[i]]; !ok {
			remap[comm[i]] = len(remap)
		}
	}
	for i := range comm {
		comm[i] = remap[comm[i]]
	}
	return comm, moved
}

// aggregate builds the level-two graph: one node per community, edge weights
// summed, intra-community weight folded into self-loops.
func aggregate(g *Graph, comm []int) *Graph {
	next := NewGraph()
	nc := 0
	for _, c := range comm {
		if c+1 > nc {
			nc = c + 1
		}
	}
	name := func(c int) string { return fmt.Sprintf("c%06d", c) }
	for c := 0; c < nc; c++ {
		next.AddNode(name(c))
	}
	for i := 0; i < g.NumNodes(); i++ {
		if g.self[i] > 0 {
			next.AddEdge(name(comm[i]), name(comm[i]), g.self[i])
		}
		for j, w := range g.adj[i] {
			if i < j {
				next.AddEdge(name(comm[i]), name(comm[j]), w)
			}
		}
	}
	return next
}

// Modularity computes Q = Σ_c [ Σin_c/(2m) − γ(Σtot_c/(2m))² ] for a given
// assignment of node names to communities.
func Modularity(g *Graph, communities map[string]int, resolution float64) float64 {
	if g.total == 0 {
		return 0
	}
	m2 := 2 * g.total
	in := make(map[int]float64)  // 2 * intra-community weight
	tot := make(map[int]float64) // Σ degrees
	for i, name := range g.names {
		c := communities[name]
		tot[c] += g.degree(i)
		in[c] += 2 * g.self[i]
		for j, w := range g.adj[i] {
			if communities[g.names[j]] == c {
				in[c] += w // each intra edge visited from both ends
			}
		}
	}
	q := 0.0
	for c := range tot {
		q += in[c]/m2 - resolution*(tot[c]/m2)*(tot[c]/m2)
	}
	return q
}
