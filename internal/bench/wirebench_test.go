package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
)

// TestWireBenchSmoke runs the wire benchmark at a toy scale and checks the
// shape of the rows: every figure × system cell present, latencies measured,
// wire metrics populated exactly on the DPR rows, and the pipelined run
// actually keeping more than one window in flight.
func TestWireBenchSmoke(t *testing.T) {
	rows, err := RunWireBench(WireBenchConfig{WindowSize: 600, WindowStep: 200, Windows: 5})
	if err != nil {
		t.Fatal(err)
	}
	byCell := make(map[string]WireRow)
	for _, r := range rows {
		byCell[r.Figure+"/"+r.System] = r
	}
	for _, fig := range []string{"Fig7", "Fig7Residual"} {
		for _, sys := range []string{"R", "PR_Dep", "DPR_serial", "DPR_pipelined"} {
			r, ok := byCell[fig+"/"+sys]
			if !ok {
				t.Fatalf("missing row %s/%s", fig, sys)
			}
			if r.CPMs <= 0 || r.Windows == 0 {
				t.Errorf("%s/%s: degenerate row %+v", fig, sys, r)
			}
			remote := strings.HasPrefix(sys, "DPR")
			if remote && (r.ReqBytesPerWindow <= 0 || r.RespBytesPerWindow <= 0 || r.Rounds <= 0) {
				t.Errorf("%s/%s: wire metrics missing: %+v", fig, sys, r)
			}
			if !remote && (r.ReqBytesPerWindow != 0 || r.Rounds != 0) {
				t.Errorf("%s/%s: in-process system reports wire metrics: %+v", fig, sys, r)
			}
		}
		if p := byCell[fig+"/DPR_pipelined"]; p.MeanInFlight <= 1.0 {
			t.Errorf("%s/DPR_pipelined: mean in-flight %.2f, the pipeline never filled", fig, p.MeanInFlight)
		}
	}
}

// TestWireBenchArtifact emits BENCH_6.json (the recorded-replay perf
// trajectory for the wire path) when BENCH6_OUT names the destination; `make
// bench6` wraps exactly this.
func TestWireBenchArtifact(t *testing.T) {
	out := os.Getenv("BENCH6_OUT")
	if out == "" {
		t.Skip("set BENCH6_OUT=/path/BENCH_6.json (or run `make bench6`) to emit the artifact")
	}
	cfg := WireBenchConfig{}
	rows, err := RunWireBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.fill()
	artifact := struct {
		Name   string          `json:"name"`
		Config WireBenchConfig `json:"config"`
		Rows   []WireRow       `json:"rows"`
	}{Name: "BENCH_6 wire-path trajectory", Config: cfg, Rows: rows}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d rows)", out, len(rows))
}

// reqBytesBaselinePath holds the committed steady-state request bytes/window
// snapshot of serial DPR on repeating-constant traffic — the wire-economics
// regression gate CI enforces.
const reqBytesBaselinePath = "testdata/reqbytes_baseline.txt"

// TestRequestBytesBudget fails when steady-state request traffic grows more
// than 10% over the committed baseline — a regression gate for the
// delta-shipping request path (a broken delta diff or dictionary would show
// up here as windows silently going back to full shipping). Regenerate the
// snapshot after an intended protocol change with UPDATE_REQBYTES_BASELINE=1.
func TestRequestBytesBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("wire benchmark: skipped in -short")
	}
	got, err := SteadyStateRequestBytes(1, 2000, 400, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if os.Getenv("UPDATE_REQBYTES_BASELINE") != "" {
		if err := os.WriteFile(reqBytesBaselinePath, []byte(fmt.Sprintf("%d\n", got)), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("baseline updated: %d request bytes/window", got)
		return
	}
	raw, err := os.ReadFile(reqBytesBaselinePath)
	if err != nil {
		t.Fatalf("missing baseline snapshot (run with UPDATE_REQBYTES_BASELINE=1): %v", err)
	}
	baseline, err := strconv.ParseInt(strings.TrimSpace(string(raw)), 10, 64)
	if err != nil {
		t.Fatalf("corrupt baseline snapshot %q: %v", raw, err)
	}
	limit := baseline + baseline/10
	if got > limit {
		t.Errorf("steady-state request traffic %dB/window exceeds baseline %dB +10%% (%dB)", got, baseline, limit)
	}
	t.Logf("steady-state request bytes/window: %d (baseline %d)", got, baseline)
}
