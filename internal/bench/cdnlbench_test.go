package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"streamrule/internal/asp/parser"
	"streamrule/internal/asp/solve"
	"streamrule/internal/reasoner"
	"streamrule/internal/workload"
)

// BenchmarkSolverCDNL extends the residual solver comparison to the
// conflict-driven engine: the same ground program re-solved per iteration
// under rescan, counter/worklist, and CDNL. The cdnl variant keeps one
// CarryState across iterations, so its steady-state cost includes clause
// replay — the shape a reasoner sees on overlapping windows. The headline is
// "stability-checks": CDNL's unfounded-set detection replaces the candidate
// reduct tests the propagation engines pay for.
func BenchmarkSolverCDNL(b *testing.B) {
	for _, size := range []int{2000, 5000} {
		gp := residualGround(b, size)
		for _, variant := range []struct {
			name string
			opts solve.Options
		}{
			{"naive", solve.Options{NaivePropagation: true}},
			{"worklist", solve.Options{}},
			{"cdnl", solve.Options{CDNL: true}},
		} {
			b.Run(fmt.Sprintf("%s/w%dk", variant.name, size/1000), func(b *testing.B) {
				b.ReportAllocs()
				carry := &solve.CarryState{}
				var conflicts, learned, reused, checks float64
				for i := 0; i < b.N; i++ {
					res, err := solve.SolveCarry(gp, variant.opts, carry)
					if err != nil {
						b.Fatal(err)
					}
					if len(res.Models) != 8 {
						b.Fatalf("models = %d", len(res.Models))
					}
					conflicts += float64(res.Stats.Conflicts)
					learned += float64(res.Stats.Learned)
					reused += float64(res.Stats.ReusedClauses)
					checks += float64(res.Stats.StabilityChecks)
				}
				b.ReportMetric(conflicts/float64(b.N), "conflicts")
				b.ReportMetric(learned/float64(b.N), "learned")
				b.ReportMetric(reused/float64(b.N), "reused-clauses")
				b.ReportMetric(checks/float64(b.N), "stability-checks")
			})
		}
	}
}

// TestCDNLSolverAcceptance pins the headline claim of the solver rewrite on
// the acceptance workload (residual ground program at w5k): CDNL returns
// exactly the models of the naive oracle while solving faster than the
// worklist engine, with strictly fewer stability checks. Timing is best-of-5
// per engine to shrug off scheduler noise.
func TestCDNLSolverAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison: skipped in -short")
	}
	gp := residualGround(t, 5000)
	naive, err := solve.Solve(gp, solve.Options{NaivePropagation: true})
	if err != nil {
		t.Fatal(err)
	}
	best := func(opts solve.Options) (time.Duration, *solve.Result) {
		var bestD time.Duration
		var res *solve.Result
		for i := 0; i < 5; i++ {
			start := time.Now()
			r, err := solve.Solve(gp, opts)
			if err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); res == nil || d < bestD {
				bestD, res = d, r
			}
		}
		return bestD, res
	}
	wlD, wl := best(solve.Options{})
	cdnlD, cdnl := best(solve.Options{CDNL: true})

	if len(cdnl.Models) != len(naive.Models) {
		t.Fatalf("models: cdnl %d, naive %d", len(cdnl.Models), len(naive.Models))
	}
	for i, m := range cdnl.Models {
		found := false
		for _, n := range naive.Models {
			if m.Equal(n) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("cdnl model %d not among naive models", i)
		}
	}
	if cdnl.Stats.StabilityChecks >= wl.Stats.StabilityChecks {
		t.Errorf("stability checks: cdnl %d, worklist %d — unfounded-set detection should eliminate reduct tests",
			cdnl.Stats.StabilityChecks, wl.Stats.StabilityChecks)
	}
	if cdnlD >= wlD {
		t.Errorf("solve time: cdnl %v, worklist %v — CDNL should win on the residual workload", cdnlD, wlD)
	}
	t.Logf("w5k solve: cdnl %v (checks %d) vs worklist %v (checks %d), %d models",
		cdnlD, cdnl.Stats.StabilityChecks, wlD, wl.Stats.StabilityChecks, len(cdnl.Models))
}

// TestCDNLBenchSmoke runs the solver-engine benchmark at a toy scale and
// checks the shape of the rows: every figure × engine cell present (which
// also certifies the internal per-window answer cross-check passed), the
// stratified figure staying conflict-free on every engine, and the residual
// figure showing CDNL's stability-check elimination against the oracles.
func TestCDNLBenchSmoke(t *testing.T) {
	rows, err := RunCDNLBench(CDNLBenchConfig{WindowSize: 600, WindowStep: 200, Windows: 5})
	if err != nil {
		t.Fatal(err)
	}
	byCell := make(map[string]CDNLRow)
	for _, r := range rows {
		byCell[r.Figure+"/"+r.Engine] = r
	}
	for _, fig := range []string{"Fig7", "Fig7Residual"} {
		for _, eng := range []string{"naive", "worklist", "cdnl"} {
			r, ok := byCell[fig+"/"+eng]
			if !ok {
				t.Fatalf("missing row %s/%s", fig, eng)
			}
			if r.CPMs <= 0 || r.Windows == 0 {
				t.Errorf("%s/%s: degenerate row %+v", fig, eng, r)
			}
			if eng != "cdnl" && (r.Conflicts != 0 || r.Learned != 0 || r.ReusedClauses != 0) {
				t.Errorf("%s/%s: oracle engine reports CDNL counters: %+v", fig, eng, r)
			}
		}
		if r := byCell[fig+"/cdnl"]; r.Conflicts != 0 {
			// Both figures' programs are conflict-free under propagation;
			// conflicts here would mean the engine is searching blind.
			t.Errorf("%s/cdnl: unexpected conflicts: %+v", fig, r)
		}
	}
	cdnl, wl := byCell["Fig7Residual/cdnl"], byCell["Fig7Residual/worklist"]
	if cdnl.StabilityChecks >= wl.StabilityChecks {
		t.Errorf("Fig7Residual stability checks: cdnl %d, worklist %d — want strictly fewer",
			cdnl.StabilityChecks, wl.StabilityChecks)
	}
}

// TestCDNLBenchArtifact emits BENCH_8.json (the recorded-replay perf
// trajectory for the solver engines) when BENCH8_OUT names the destination;
// `make bench8` wraps exactly this.
func TestCDNLBenchArtifact(t *testing.T) {
	out := os.Getenv("BENCH8_OUT")
	if out == "" {
		t.Skip("set BENCH8_OUT=/path/BENCH_8.json (or run `make bench8`) to emit the artifact")
	}
	cfg := CDNLBenchConfig{}
	rows, err := RunCDNLBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.fill()
	artifact := struct {
		Name   string          `json:"name"`
		Config CDNLBenchConfig `json:"config"`
		Rows   []CDNLRow       `json:"rows"`
	}{Name: "BENCH_8 solver-engine trajectory", Config: cfg, Rows: rows}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d rows)", out, len(rows))
}

// cdnlResidualBaselinePath holds the committed allocs/op snapshot of the
// Fig7Residual R path solved by the CDNL engine (with cross-window carry) at
// w2k — the alloc-regression gate for the conflict-driven solver.
const cdnlResidualBaselinePath = "testdata/cdnlresidual_allocs.txt"

// TestCDNLResidualAllocBudget fails when the CDNL-solved Fig7Residual R path
// allocates more than 10% above the committed baseline — premise recording
// and clause replay must stay amortized, not regrow per window. Regenerate
// the snapshot after an intended change with UPDATE_CDNL_BASELINE=1.
func TestCDNLResidualAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation benchmark: skipped in -short")
	}
	prog, err := parser.Parse(ProgramResidual)
	if err != nil {
		t.Fatal(err)
	}
	cfg := reasoner.Config{Program: prog, Inpre: Inpre}
	cfg.SolveOpts.CDNL = true
	r, err := reasoner.NewR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(2000, workload.ResidualTraffic())
	if err != nil {
		t.Fatal(err)
	}
	window := gen.Window(2000)
	// Warm the interning table, grounding scratch, and the clause carry so
	// the measurement is the steady-state per-window cost including replay.
	for i := 0; i < 2; i++ {
		if _, err := r.Process(window); err != nil {
			t.Fatal(err)
		}
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := r.Process(window); err != nil {
				b.Fatal(err)
			}
		}
	})
	got := res.AllocsPerOp()

	if os.Getenv("UPDATE_CDNL_BASELINE") != "" {
		if err := os.WriteFile(cdnlResidualBaselinePath, []byte(fmt.Sprintf("%d\n", got)), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("baseline updated: %d allocs/op", got)
		return
	}
	raw, err := os.ReadFile(cdnlResidualBaselinePath)
	if err != nil {
		t.Fatalf("missing baseline snapshot (run with UPDATE_CDNL_BASELINE=1): %v", err)
	}
	baseline, err := strconv.ParseInt(strings.TrimSpace(string(raw)), 10, 64)
	if err != nil {
		t.Fatalf("corrupt baseline snapshot %q: %v", raw, err)
	}
	limit := baseline + baseline/10
	if got > limit {
		t.Errorf("CDNL Fig7Residual R/w2k allocates %d allocs/op, > committed baseline %d +10%% (%d)",
			got, baseline, limit)
	}
	t.Logf("allocs/op: %d (baseline %d, limit %d)", got, baseline, limit)
}
