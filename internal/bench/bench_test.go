package bench

import (
	"strings"
	"testing"
)

// small returns a fast configuration for unit tests.
func small(src string) Config {
	return Config{
		ProgramSrc:  src,
		Sizes:       []int{500, 1000},
		RandomKs:    []int{2, 3},
		Seed:        7,
		Repetitions: 2,
	}
}

func TestRunShapeProgramP(t *testing.T) {
	res, err := Run(small(ProgramP))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Systems) != 4 { // R, PR_Dep, PR_Ran_k2, PR_Ran_k3
		t.Fatalf("systems = %v", res.Systems)
	}
	if got := res.Sizes(); len(got) != 2 || got[0] != 500 || got[1] != 1000 {
		t.Fatalf("sizes = %v", got)
	}
	for _, size := range res.Sizes() {
		r, ok := res.point("R", size)
		if !ok || r.Accuracy != 1 {
			t.Errorf("R accuracy at %d = %v", size, r.Accuracy)
		}
		dep, ok := res.point("PR_Dep", size)
		if !ok || dep.Accuracy < 0.9999 {
			t.Errorf("PR_Dep accuracy at %d = %v, want 1.0", size, dep.Accuracy)
		}
		ran, ok := res.point("PR_Ran_k3", size)
		if !ok || ran.Accuracy >= dep.Accuracy {
			t.Errorf("random accuracy %v should trail dependency accuracy %v", ran.Accuracy, dep.Accuracy)
		}
		if r.Latency <= 0 || dep.Latency <= 0 {
			t.Error("latencies must be measured")
		}
		if dep.DuplicationShare != 0 {
			t.Errorf("P has a disconnected input graph: duplication share = %v", dep.DuplicationShare)
		}
	}
}

func TestRunProgramPPrimeDuplication(t *testing.T) {
	res, err := Run(small(ProgramPPrime))
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range res.Sizes() {
		dep, ok := res.point("PR_Dep", size)
		if !ok {
			t.Fatal("missing PR_Dep point")
		}
		if dep.Accuracy < 0.9999 {
			t.Errorf("PR_Dep on P' accuracy = %v, want 1.0", dep.Accuracy)
		}
		if dep.DuplicationShare <= 0 {
			t.Error("P' requires duplication; share must be positive")
		}
	}
}

func TestNoDuplicationAblationLosesAccuracy(t *testing.T) {
	cfg := small(ProgramPPrime)
	cfg.Sizes = []int{2000}
	cfg.NoDuplication = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dep, _ := res.point("PR_Dep", 2000)
	if dep.DuplicationShare != 0 {
		t.Errorf("stripped plan must not duplicate, share = %v", dep.DuplicationShare)
	}
	if dep.Accuracy >= 0.9999 {
		t.Errorf("without duplication accuracy should drop below 1, got %v", dep.Accuracy)
	}
}

func TestCSVAndMarkdown(t *testing.T) {
	res, err := Run(Config{
		ProgramSrc: ProgramP, Sizes: []int{300}, RandomKs: []int{2},
		Seed: 1, Repetitions: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	csv := res.CSV("latency_ms")
	if !strings.HasPrefix(csv, "window_size,R,PR_Dep,PR_Ran_k2\n300,") {
		t.Errorf("csv = %q", csv)
	}
	if lines := strings.Count(csv, "\n"); lines != 2 {
		t.Errorf("csv lines = %d", lines)
	}
	acc := res.CSV("accuracy")
	if !strings.Contains(acc, "1.0000") {
		t.Errorf("accuracy csv = %q", acc)
	}
	md := res.Markdown("accuracy", "Figure 8")
	if !strings.Contains(md, "### Figure 8") || !strings.Contains(md, "| 0k |") {
		t.Errorf("markdown = %q", md)
	}
}

func TestFigurePresets(t *testing.T) {
	for _, n := range []int{7, 8} {
		cfg, err := Figure(n)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.ProgramSrc != ProgramP {
			t.Errorf("figure %d should use P", n)
		}
	}
	for _, n := range []int{9, 10} {
		cfg, err := Figure(n)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.ProgramSrc != ProgramPPrime {
			t.Errorf("figure %d should use P'", n)
		}
	}
	if _, err := Figure(1); err == nil {
		t.Error("unknown figure must be rejected")
	}
}

// TestPaperShapes is the headline reproduction check at reduced scale:
// PR_Dep is substantially faster than R, and random partitioning loses
// accuracy while PR_Dep keeps 1.0.
func TestPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("shape check uses a 10k window")
	}
	cfg := Config{
		ProgramSrc:  ProgramP,
		Sizes:       []int{10000},
		RandomKs:    []int{2, 5},
		Seed:        11,
		Repetitions: 2,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := res.point("R", 10000)
	dep, _ := res.point("PR_Dep", 10000)
	ran2, _ := res.point("PR_Ran_k2", 10000)
	ran5, _ := res.point("PR_Ran_k5", 10000)

	if dep.Latency >= r.Latency*8/10 {
		t.Errorf("PR_Dep latency %v should be well below R %v", dep.Latency, r.Latency)
	}
	if dep.Accuracy < 0.9999 {
		t.Errorf("PR_Dep accuracy = %v", dep.Accuracy)
	}
	if ran2.Accuracy > 0.95 || ran5.Accuracy > ran2.Accuracy {
		t.Errorf("random accuracy should degrade with k: k2=%v k5=%v", ran2.Accuracy, ran5.Accuracy)
	}
	if ran5.Latency >= r.Latency {
		t.Errorf("random partitioning should be faster than R: %v vs %v", ran5.Latency, r.Latency)
	}
}
