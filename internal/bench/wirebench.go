// Wire-path benchmark: the recorded-replay trajectory for the distributed
// reasoner's wire economics. RunWireBench drives the same sliding stream
// through R, PR_Dep, serial DPR, and pipelined DPR (loopback workers,
// in-process) and reports the headline numbers of the wire path — mean
// critical-path latency, request/response bytes per window, rounds, and the
// realized pipeline depth — as one row per figure × system. `make bench6`
// snapshots the rows into BENCH_6.json.

package bench

import (
	"fmt"
	"time"

	"streamrule/internal/asp/parser"
	"streamrule/internal/core"
	"streamrule/internal/rdf"
	"streamrule/internal/reasoner"
	"streamrule/internal/stream"
	"streamrule/internal/transport"
	"streamrule/internal/workload"
)

// WireRow is one measured cell of the wire benchmark.
type WireRow struct {
	// Figure names the workload: "Fig7" (program P, paper traffic) or
	// "Fig7Residual" (residual program, hostile traffic).
	Figure string `json:"figure"`
	// System is R, PR_Dep, DPR_serial, or DPR_pipelined.
	System string `json:"system"`
	// CPMs is the mean critical-path latency in milliseconds.
	CPMs float64 `json:"cp_ms"`
	// ReqBytesPerWindow / RespBytesPerWindow are the mean wire bytes shipped
	// per window, request and response side (0 for in-process systems).
	ReqBytesPerWindow  int64 `json:"req_bytes_per_window"`
	RespBytesPerWindow int64 `json:"resp_bytes_per_window"`
	// Rounds is the total number of request/response rounds issued.
	Rounds int64 `json:"rounds"`
	// MeanInFlight is the mean pipeline depth observed at submit time
	// (1.0 under lockstep).
	MeanInFlight float64 `json:"mean_in_flight"`
	// Windows is the number of window emissions processed.
	Windows int `json:"windows"`
}

// WireBenchConfig parameterizes one wire-benchmark run.
type WireBenchConfig struct {
	// Seed drives workload generation (default 1).
	Seed int64
	// WindowSize / WindowStep shape the sliding window (defaults 5000/1000).
	WindowSize, WindowStep int
	// Windows is the number of emissions per system (default 12).
	Windows int
	// Depth is the pipelined run's MaxInFlight (default 2).
	Depth int
	// Workers is the number of loopback workers (default 2).
	Workers int
}

func (c *WireBenchConfig) fill() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.WindowSize == 0 {
		c.WindowSize = 5000
	}
	if c.WindowStep == 0 {
		c.WindowStep = 1000
	}
	if c.Windows == 0 {
		c.Windows = 12
	}
	if c.Depth == 0 {
		c.Depth = 2
	}
	if c.Workers == 0 {
		c.Workers = 2
	}
}

// slidingEmissions replays triples through a sliding count window, returning
// every emission with its delta (the stream the pipeline would deliver).
func slidingEmissions(triples []rdf.Triple, size, step int) []stream.WindowDelta {
	w := &stream.SlidingCountWindow{Size: size, Step: step}
	base := time.Unix(0, 0)
	var out []stream.WindowDelta
	for i, tr := range triples {
		if wd := w.AddDelta(stream.Item{Triple: tr, At: base.Add(time.Duration(i) * time.Millisecond)}); wd != nil {
			out = append(out, *wd)
		}
	}
	return out
}

// deltaProcessor is the shared incremental surface of R, PR, and DPR.
type deltaProcessor interface {
	ProcessDelta(window []rdf.Triple, d *reasoner.Delta) (*reasoner.Output, error)
}

// driveSerial feeds every emission through ProcessDelta, returning the mean
// critical path.
func driveSerial(sys deltaProcessor, emissions []stream.WindowDelta) (time.Duration, error) {
	var cp time.Duration
	for wi, wd := range emissions {
		var d *reasoner.Delta
		if wd.Incremental {
			d = &reasoner.Delta{Added: wd.Added, Retracted: wd.Retracted}
		}
		out, err := sys.ProcessDelta(wd.Window, d)
		if err != nil {
			return 0, fmt.Errorf("window %d: %w", wi, err)
		}
		cp += out.Latency.CriticalPath
	}
	return cp / time.Duration(len(emissions)), nil
}

// drivePipelined feeds the emissions submit-ahead at the DPR's configured
// depth, returning the mean critical path.
func drivePipelined(dpr *reasoner.DPR, emissions []stream.WindowDelta) (time.Duration, error) {
	depth := dpr.MaxInFlight()
	var cp time.Duration
	inFlight := 0
	collect := func() error {
		out, err := dpr.Collect()
		if err != nil {
			return err
		}
		cp += out.Latency.CriticalPath
		inFlight--
		return nil
	}
	for wi, wd := range emissions {
		var d *reasoner.Delta
		if wd.Incremental {
			d = &reasoner.Delta{Added: wd.Added, Retracted: wd.Retracted}
		}
		if err := dpr.Submit(wd.Window, d); err != nil {
			return 0, fmt.Errorf("window %d: %w", wi, err)
		}
		inFlight++
		if inFlight == depth {
			if err := collect(); err != nil {
				return 0, err
			}
		}
	}
	for inFlight > 0 {
		if err := collect(); err != nil {
			return 0, err
		}
	}
	return cp / time.Duration(len(emissions)), nil
}

// startLoopbackWorkers spins up n in-process workers and returns their
// addresses plus a shutdown func.
func startLoopbackWorkers(n int) ([]string, func(), error) {
	addrs := make([]string, 0, n)
	var srvs []*transport.Server
	stop := func() {
		for _, s := range srvs {
			s.Close()
		}
	}
	for i := 0; i < n; i++ {
		srv, err := transport.NewServer("127.0.0.1:0", reasoner.NewWorkerHandler(), transport.ServerOptions{})
		if err != nil {
			stop()
			return nil, nil, err
		}
		go srv.Serve()
		srvs = append(srvs, srv)
		addrs = append(addrs, srv.Addr())
	}
	return addrs, stop, nil
}

// RunWireBench executes the wire benchmark: Fig7 and Fig7Residual, each
// through R, PR_Dep, serial DPR, and pipelined DPR over the same sliding
// emissions, against fresh loopback workers per DPR run.
func RunWireBench(cfg WireBenchConfig) ([]WireRow, error) {
	cfg.fill()
	figures := []struct {
		name    string
		src     string
		traffic []workload.TripleSpec
	}{
		{"Fig7", ProgramP, workload.PaperTraffic()},
		{"Fig7Residual", ProgramResidual, workload.ResidualTraffic()},
	}
	var rows []WireRow
	for _, fig := range figures {
		prog, err := parser.Parse(fig.src)
		if err != nil {
			return nil, err
		}
		rcfg := reasoner.Config{Program: prog, Inpre: Inpre, OutputPreds: Outputs}
		analysis, err := core.Analyze(prog, Inpre, 1.0)
		if err != nil {
			return nil, err
		}
		gen, err := workload.NewGenerator(cfg.Seed, fig.traffic)
		if err != nil {
			return nil, err
		}
		total := cfg.WindowSize + cfg.WindowStep*(cfg.Windows-1)
		emissions := slidingEmissions(gen.Window(total), cfg.WindowSize, cfg.WindowStep)
		if len(emissions) == 0 {
			return nil, fmt.Errorf("bench: no emissions for window %d step %d", cfg.WindowSize, cfg.WindowStep)
		}
		row := func(system string, cp time.Duration, ts *reasoner.TransportStats) WireRow {
			r := WireRow{
				Figure:  fig.name,
				System:  system,
				CPMs:    float64(cp.Microseconds()) / 1000,
				Windows: len(emissions),
			}
			if ts != nil && ts.Windows > 0 {
				r.ReqBytesPerWindow = ts.BytesSent / ts.Windows
				r.RespBytesPerWindow = ts.BytesReceived / ts.Windows
				r.Rounds = ts.Rounds
				r.MeanInFlight = ts.MeanInFlight()
			}
			return r
		}

		r, err := reasoner.NewR(rcfg)
		if err != nil {
			return nil, err
		}
		cp, err := driveSerial(r, emissions)
		if err != nil {
			return nil, fmt.Errorf("%s/R: %w", fig.name, err)
		}
		rows = append(rows, row("R", cp, nil))

		pr, err := reasoner.NewPR(rcfg, reasoner.NewPlanPartitioner(analysis.Plan))
		if err != nil {
			return nil, err
		}
		cp, err = driveSerial(pr, emissions)
		if err != nil {
			return nil, fmt.Errorf("%s/PR_Dep: %w", fig.name, err)
		}
		rows = append(rows, row("PR_Dep", cp, nil))

		for _, mode := range []struct {
			system string
			depth  int
		}{
			{"DPR_serial", 1},
			{"DPR_pipelined", cfg.Depth},
		} {
			addrs, stopWorkers, err := startLoopbackWorkers(cfg.Workers)
			if err != nil {
				return nil, err
			}
			dpr, err := reasoner.NewDPR(rcfg, reasoner.NewPlanPartitioner(analysis.Plan), reasoner.DPROptions{
				Workers:          addrs,
				ProgramSource:    fig.src,
				StragglerTimeout: 30 * time.Second,
				MaxInFlight:      mode.depth,
			})
			if err != nil {
				stopWorkers()
				return nil, err
			}
			if mode.depth > 1 {
				cp, err = drivePipelined(dpr, emissions)
			} else {
				cp, err = driveSerial(dpr, emissions)
			}
			if err != nil {
				dpr.Close()
				stopWorkers()
				return nil, fmt.Errorf("%s/%s: %w", fig.name, mode.system, err)
			}
			ts := dpr.TransportStats()
			if ts.LocalFallbacks > 0 {
				dpr.Close()
				stopWorkers()
				return nil, fmt.Errorf("%s/%s: %d local fallbacks on loopback workers", fig.name, mode.system, ts.LocalFallbacks)
			}
			rows = append(rows, row(mode.system, cp, &ts))
			dpr.Close()
			stopWorkers()
		}
	}
	return rows, nil
}

// SteadyStateRequestBytes measures the request-side wire cost of serial DPR
// on repeating-constant traffic (program P, the paper's workload), returning
// mean request bytes per window after skipping warmup windows. The
// measurement is deterministic for a given configuration — the regression
// gate snapshots it.
func SteadyStateRequestBytes(seed int64, size, step, windows, warmup int) (int64, error) {
	prog, err := parser.Parse(ProgramP)
	if err != nil {
		return 0, err
	}
	rcfg := reasoner.Config{Program: prog, Inpre: Inpre, OutputPreds: Outputs}
	analysis, err := core.Analyze(prog, Inpre, 1.0)
	if err != nil {
		return 0, err
	}
	gen, err := workload.NewGenerator(seed, workload.PaperTraffic())
	if err != nil {
		return 0, err
	}
	emissions := slidingEmissions(gen.Window(size+step*(windows-1)), size, step)
	if len(emissions) <= warmup {
		return 0, fmt.Errorf("bench: only %d emissions for %d warmup windows", len(emissions), warmup)
	}
	addrs, stopWorkers, err := startLoopbackWorkers(2)
	if err != nil {
		return 0, err
	}
	defer stopWorkers()
	dpr, err := reasoner.NewDPR(rcfg, reasoner.NewPlanPartitioner(analysis.Plan), reasoner.DPROptions{
		Workers:          addrs,
		ProgramSource:    ProgramP,
		StragglerTimeout: 30 * time.Second,
	})
	if err != nil {
		return 0, err
	}
	defer dpr.Close()
	var sentWarm int64
	for wi, wd := range emissions {
		var d *reasoner.Delta
		if wd.Incremental {
			d = &reasoner.Delta{Added: wd.Added, Retracted: wd.Retracted}
		}
		if _, err := dpr.ProcessDelta(wd.Window, d); err != nil {
			return 0, fmt.Errorf("window %d: %w", wi, err)
		}
		if wi == warmup-1 {
			sentWarm = dpr.TransportStats().BytesSent
		}
	}
	ts := dpr.TransportStats()
	if ts.LocalFallbacks > 0 {
		return 0, fmt.Errorf("bench: %d local fallbacks on loopback workers", ts.LocalFallbacks)
	}
	return (ts.BytesSent - sentWarm) / int64(len(emissions)-warmup), nil
}
