package bench

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"streamrule/internal/asp/intern"
	"streamrule/internal/asp/parser"
	"streamrule/internal/rdf"
	"streamrule/internal/reasoner"
	"streamrule/internal/serve"
	"streamrule/internal/stream"
	"streamrule/internal/workload"
)

// TenantBenchConfig sizes the many-tenant serving benchmark: N concurrent
// small pipelines — each with a tenant-private entity vocabulary — over one
// shared fleet.
type TenantBenchConfig struct {
	// Tenants is the number of concurrent pipelines (default 500).
	Tenants int
	// FleetWorkers is the shared executor count (default 4).
	FleetWorkers int
	// WindowSize/WindowStep shape each tenant's sliding window (default
	// 30/10).
	WindowSize, WindowStep int
	// Items is each tenant's stream length in triples (default 90).
	Items int
	// Budget is the per-tenant intern-table budget in entries (default 512).
	Budget int
	// Seed varies the tenant streams.
	Seed int64
	// Oracle additionally runs every tenant's stream through a solo
	// reasoner and counts answer mismatches (slower; the correctness gate).
	Oracle bool
}

func (c *TenantBenchConfig) fill() {
	if c.Tenants <= 0 {
		c.Tenants = 500
	}
	if c.FleetWorkers <= 0 {
		c.FleetWorkers = 4
	}
	if c.WindowSize <= 0 {
		c.WindowSize = 30
	}
	if c.WindowStep <= 0 {
		c.WindowStep = 10
	}
	if c.Items <= 0 {
		c.Items = 90
	}
	if c.Budget <= 0 {
		c.Budget = 512
	}
}

// TenantBenchResult reports one serving round.
type TenantBenchResult struct {
	Tenants      int
	FleetWorkers int
	// Windows is the total processed across all tenants; WindowsPerSec is
	// Windows over the serving wall time (push start to drain end).
	Windows       uint64
	Elapsed       time.Duration
	WindowsPerSec float64
	// P50/P99 are per-tenant window latencies (enqueue to delivered)
	// aggregated across all tenants' sample rings.
	P50, P99 time.Duration
	// Shed and Errors sum the per-tenant counters (both must be zero in a
	// correctly sized run).
	Shed, Errors uint64
	// Mismatches counts tenant windows whose answers differed from the
	// tenant's solo run (Oracle mode only).
	Mismatches int
	// DefaultTableDelta is the growth of the process-wide default intern
	// table over the round — any nonzero value is a cross-tenant leak.
	DefaultTableDelta int
}

func (r *TenantBenchResult) String() string {
	return fmt.Sprintf("%d tenants / %d workers: %d windows in %v (%.0f windows/sec), p50 %v p99 %v, shed %d, mismatches %d, default-table delta %d",
		r.Tenants, r.FleetWorkers, r.Windows, r.Elapsed.Round(time.Millisecond),
		r.WindowsPerSec, r.P50, r.P99, r.Shed, r.Mismatches, r.DefaultTableDelta)
}

// tenantSig renders one window's answers in canonical comparable form.
func tenantSig(out *reasoner.Output) string {
	sigs := make([]string, len(out.Answers))
	for i, a := range out.Answers {
		keys := a.Keys()
		sort.Strings(keys)
		sigs[i] = fmt.Sprint(keys)
	}
	sort.Strings(sigs)
	return fmt.Sprint(sigs)
}

// RunManyTenants serves cfg.Tenants concurrent pipelines of the paper
// program — each over its own tenant-prefixed traffic — on one shared
// fleet, drains, and reports throughput, latency percentiles, and the
// isolation counters.
func RunManyTenants(cfg TenantBenchConfig) (*TenantBenchResult, error) {
	cfg.fill()
	defaultBefore := intern.Default().Stats()

	srv := serve.NewServer(serve.Config{Workers: cfg.FleetWorkers})
	defer srv.Close()

	type tenantRun struct {
		id      string
		triples []rdf.Triple
		mu      sync.Mutex
		sigs    []string
	}
	runs := make([]*tenantRun, cfg.Tenants)
	// Queue depth: every emission of the stream may be waiting at once.
	depth := cfg.Items/cfg.WindowStep + 2
	for i := range runs {
		tr := &tenantRun{id: fmt.Sprintf("t%d", i)}
		gen, err := workload.NewGenerator(cfg.Seed+int64(i), workload.TenantTraffic(tr.id))
		if err != nil {
			return nil, err
		}
		tr.triples = gen.Window(cfg.Items)
		err = srv.AddTenant(tr.id, serve.TenantConfig{
			Program: ProgramP, Inpre: Inpre,
			WindowSize: cfg.WindowSize, WindowStep: cfg.WindowStep,
			MemoryBudget: cfg.Budget,
			QueueDepth:   depth,
			Handle: func(_ []rdf.Triple, out *reasoner.Output) {
				s := tenantSig(out)
				tr.mu.Lock()
				tr.sigs = append(tr.sigs, s)
				tr.mu.Unlock()
			},
		})
		if err != nil {
			return nil, err
		}
		runs[i] = tr
	}

	start := time.Now()
	var wg sync.WaitGroup
	errc := make(chan error, cfg.Tenants)
	for _, tr := range runs {
		wg.Add(1)
		go func(tr *tenantRun) {
			defer wg.Done()
			for _, triple := range tr.triples {
				if err := srv.Push(tr.id, triple); err != nil {
					errc <- fmt.Errorf("%s: %w", tr.id, err)
					return
				}
			}
		}(tr)
	}
	wg.Wait()
	select {
	case err := <-errc:
		return nil, err
	default:
	}
	if err := srv.DrainAll(); err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	st := srv.Stats()
	res := &TenantBenchResult{
		Tenants: cfg.Tenants, FleetWorkers: cfg.FleetWorkers,
		Windows: st.TotalWindows, Elapsed: elapsed,
		WindowsPerSec: float64(st.TotalWindows) / elapsed.Seconds(),
		P50:           st.P50, P99: st.P99,
		Shed: st.TotalShed, Errors: st.TotalErrors,
	}

	if cfg.Oracle {
		for _, tr := range runs {
			want, err := soloTenantSigs(cfg, tr.triples)
			if err != nil {
				return nil, fmt.Errorf("%s oracle: %w", tr.id, err)
			}
			tr.mu.Lock()
			got := tr.sigs
			tr.mu.Unlock()
			if len(got) != len(want) {
				res.Mismatches += len(want)
				continue
			}
			for i := range got {
				if got[i] != want[i] {
					res.Mismatches++
				}
			}
		}
	}

	defaultAfter := intern.Default().Stats()
	res.DefaultTableDelta = (defaultAfter.Atoms - defaultBefore.Atoms) +
		(defaultAfter.Syms - defaultBefore.Syms) +
		(defaultAfter.Terms - defaultBefore.Terms) +
		(defaultAfter.Preds - defaultBefore.Preds)
	return res, nil
}

// soloTenantSigs runs one tenant's stream through a fresh private reasoner
// with the exact windowing the server applies — the per-tenant ground truth.
func soloTenantSigs(cfg TenantBenchConfig, triples []rdf.Triple) ([]string, error) {
	prog, err := parser.Parse(ProgramP)
	if err != nil {
		return nil, err
	}
	r, err := reasoner.NewR(reasoner.Config{
		Program: prog, Inpre: Inpre, MemoryBudget: cfg.Budget,
	})
	if err != nil {
		return nil, err
	}
	w := &stream.SlidingCountWindow{Size: cfg.WindowSize, Step: cfg.WindowStep}
	var sigs []string
	process := func(win []rdf.Triple, d *reasoner.Delta) error {
		out, err := r.ProcessDelta(win, d)
		if err != nil {
			return err
		}
		sigs = append(sigs, tenantSig(out))
		return nil
	}
	for i, tr := range triples {
		item := stream.Item{Triple: tr, At: time.Unix(0, int64(i)*int64(time.Millisecond))}
		if wd := w.AddDelta(item); wd != nil {
			var d *reasoner.Delta
			if wd.Incremental {
				d = &reasoner.Delta{Added: wd.Added, Retracted: wd.Retracted}
			}
			if err := process(wd.Window, d); err != nil {
				return nil, err
			}
		}
	}
	if rest := w.Flush(); len(rest) > 0 {
		if err := process(rest, nil); err != nil {
			return nil, err
		}
	}
	return sigs, nil
}
