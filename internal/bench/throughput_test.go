package bench

import (
	"fmt"
	"strings"
	"testing"
)

func TestThroughputShape(t *testing.T) {
	// The shape assertions compare wall-clock rates, so a noisy or loaded
	// host can invert PR vs R on any single run; require the shape to hold
	// on one of a few attempts rather than flaking.
	const attempts = 4
	var res *ThroughputResult
	for attempt := 1; attempt <= attempts; attempt++ {
		r, err := RunThroughput(ThroughputConfig{
			ProgramSrc:  ProgramP,
			Sizes:       []int{1000, 2000},
			Seed:        5,
			Repetitions: 2,
			AtomFanout:  4,
		})
		if err != nil {
			t.Fatal(err)
		}
		res = r
		if msg := throughputShapeIssue(t, res); msg != "" {
			if attempt == attempts {
				t.Error(msg)
			} else {
				t.Logf("attempt %d: %s (retrying)", attempt, msg)
			}
			continue
		}
		break
	}
	csv := res.CSV()
	if !strings.HasPrefix(csv, "window_size,R,PR_Dep,PR_Atom_m4\n") {
		t.Errorf("csv = %q", csv)
	}
	if lines := strings.Count(csv, "\n"); lines != 3 {
		t.Errorf("csv lines = %d", lines)
	}
}

// throughputShapeIssue checks the expected rate ordering and returns a
// description of the first violation, or "" when the shape holds.
func throughputShapeIssue(t *testing.T, res *ThroughputResult) string {
	t.Helper()
	if len(res.Systems) != 3 {
		t.Fatalf("systems = %v", res.Systems)
	}
	find := func(sys string, size int) ThroughputPoint {
		for _, p := range res.Points {
			if p.System == sys && p.WindowSize == size {
				return p
			}
		}
		t.Fatalf("missing point %s/%d", sys, size)
		return ThroughputPoint{}
	}
	for _, size := range []int{1000, 2000} {
		r := find("R", size)
		dep := find("PR_Dep", size)
		atom := find("PR_Atom_m4", size)
		if r.MaxRate <= 0 || dep.MaxRate <= 0 || atom.MaxRate <= 0 {
			t.Fatalf("non-positive rates at %d", size)
		}
		// Partitioning must raise the sustainable rate.
		if dep.MaxRate <= r.MaxRate {
			return fmt.Sprintf("PR_Dep rate %.0f should beat R %.0f at %d", dep.MaxRate, r.MaxRate, size)
		}
		if atom.MaxRate <= dep.MaxRate*0.8 {
			return fmt.Sprintf("PR_Atom rate %.0f should be at least comparable to PR_Dep %.0f", atom.MaxRate, dep.MaxRate)
		}
	}
	return ""
}

func TestThroughputDefaults(t *testing.T) {
	res, err := RunThroughput(ThroughputConfig{
		ProgramSrc:  ProgramP,
		Sizes:       []int{500},
		Repetitions: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Systems) != 2 {
		t.Errorf("systems = %v (no atom system without fanout)", res.Systems)
	}
}

func TestThroughputBadProgram(t *testing.T) {
	if _, err := RunThroughput(ThroughputConfig{ProgramSrc: "p(X) :-"}); err == nil {
		t.Error("parse error must propagate")
	}
}
