package bench

import (
	"runtime"
	"testing"
	"time"

	"streamrule/internal/asp/intern"
	"streamrule/internal/asp/parser"
	"streamrule/internal/reasoner"
	"streamrule/internal/stream"
)

// TestSoakBoundedMemoryEviction runs hundreds of sliding windows of a
// fresh-constants stream under a MemoryBudget and asserts that the live
// intern-table entries and the heap stay within a window-count-independent
// bound — the "fast forever" property rotation exists for. A control without
// the budget proves the assertions bite: its table grows past the bound on
// the same stream prefix.
func TestSoakBoundedMemoryEviction(t *testing.T) {
	windows := 520
	if testing.Short() {
		windows = 60
	}
	const size, step, budget = 60, 20, 400
	// Between windows the table may exceed the budget by at most one
	// window's worth of fresh atoms (rotation runs after each window).
	const headroom = 300

	prog, err := parser.Parse(ProgramP)
	if err != nil {
		t.Fatal(err)
	}
	cfg := reasoner.Config{
		Program: prog, Inpre: Inpre, OutputPreds: Outputs,
		MemoryBudget: budget,
	}
	r, err := reasoner.NewR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	triples := FreshTraffic(9, size+step*windows)

	w := &stream.SlidingCountWindow{Size: size, Step: step}
	processed, maxLive := 0, 0
	var heapMid uint64
	readHeap := func() uint64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}
	for i, tr := range triples {
		wd := w.AddDelta(stream.Item{Triple: tr, At: time.Unix(0, int64(i))})
		if wd == nil {
			continue
		}
		var d *reasoner.Delta
		if wd.Incremental {
			d = &reasoner.Delta{Added: wd.Added, Retracted: wd.Retracted}
		}
		if _, err := r.ProcessDelta(wd.Window, d); err != nil {
			t.Fatalf("window %d: %v", processed, err)
		}
		processed++
		if live := r.Stats().Table.Atoms; live > maxLive {
			maxLive = live
		}
		if processed == windows/2 {
			heapMid = readHeap()
		}
		if processed >= windows {
			break
		}
	}
	if processed < windows {
		t.Fatalf("stream exhausted after %d of %d windows", processed, windows)
	}
	heapEnd := readHeap()

	st := r.Stats()
	if st.Table.Rotations < 2 {
		t.Errorf("only %d rotations over %d fresh-constant windows", st.Table.Rotations, windows)
	}
	if maxLive > budget+headroom {
		t.Errorf("live intern entries peaked at %d, want <= %d (budget %d + headroom %d)",
			maxLive, budget+headroom, budget, headroom)
	}
	if st.Table.Atoms > budget+headroom {
		t.Errorf("final live entries = %d, want <= %d", st.Table.Atoms, budget+headroom)
	}
	// The heap must not scale with the number of windows processed: from the
	// midpoint to the end it may wiggle (GC, map growth) but not grow by
	// anything near another half-stream of atoms.
	if heapEnd > heapMid && heapEnd-heapMid > 8<<20 {
		t.Errorf("heap grew %d bytes between window %d and window %d", heapEnd-heapMid, windows/2, windows)
	}

	// Burst and recovery: a few giant windows blow the table far past its
	// steady state, then normal-sized windows resume. Rotation must not only
	// evict the burst's entries but rebuild the peak-sized containers — the
	// Shrinks counter ticks and the heap actually falls back down. (Go maps
	// never release their buckets, so without the rebuild the burst's
	// footprint would be permanent no matter how much rotation evicts.)
	burst := FreshTraffic(11, 18000)
	for i := 0; i+6000 <= len(burst); i += 6000 {
		if _, err := r.Process(burst[i : i+6000]); err != nil {
			t.Fatalf("burst window at %d: %v", i, err)
		}
	}
	heapBurst := readHeap()
	recovery := FreshTraffic(13, 2400)
	for i := 0; i+size <= len(recovery); i += size {
		if _, err := r.Process(recovery[i : i+size]); err != nil {
			t.Fatalf("recovery window at %d: %v", i, err)
		}
	}
	heapRecovered := readHeap()
	st = r.Stats()
	if st.Table.Shrinks < 1 {
		t.Errorf("rotation never shrank the peak-sized containers after the burst (live %d, rotations %d)",
			st.Table.Atoms, st.Table.Rotations)
	}
	if heapRecovered+1<<20 > heapBurst {
		t.Errorf("heap did not fall after the burst: %d bytes at burst peak, %d after recovery",
			heapBurst, heapRecovered)
	}
	if maxLive := st.Table.Atoms; maxLive > budget+headroom {
		t.Errorf("live entries settled at %d after the burst, want <= %d", maxLive, budget+headroom)
	}

	// Control: the identical reasoner without a budget (private table, so
	// the default table is not polluted) exceeds the bound on the same
	// stream — the assertions above are not vacuous.
	ctrlCfg := cfg
	ctrlCfg.MemoryBudget = 0
	ctrlCfg.GroundOpts.Intern = intern.NewTable()
	ctrl, err := reasoner.NewR(ctrlCfg)
	if err != nil {
		t.Fatal(err)
	}
	cw := &stream.SlidingCountWindow{Size: size, Step: step}
	ctrlWindows := 0
	for i, tr := range triples {
		wd := cw.AddDelta(stream.Item{Triple: tr, At: time.Unix(0, int64(i))})
		if wd == nil {
			continue
		}
		var d *reasoner.Delta
		if wd.Incremental {
			d = &reasoner.Delta{Added: wd.Added, Retracted: wd.Retracted}
		}
		if _, err := ctrl.ProcessDelta(wd.Window, d); err != nil {
			t.Fatal(err)
		}
		ctrlWindows++
		if ctrlWindows >= windows {
			break
		}
	}
	if got := ctrl.Stats().Table.Atoms; got <= budget+headroom {
		t.Errorf("control table holds %d atoms after %d windows; bound %d is vacuous",
			got, ctrlWindows, budget+headroom)
	}
	if got := ctrl.Stats().Table.Rotations; got != 0 {
		t.Errorf("control rotated %d times without a budget", got)
	}
}
