package bench

import (
	"encoding/json"
	"os"
	"testing"
)

// TestSkewBenchSmoke runs the skew benchmark at a toy scale and checks the
// shape of the rows: both systems present and oracle-verified, zero
// fallbacks, and the adaptive run's elastic join and leave accounted.
func TestSkewBenchSmoke(t *testing.T) {
	rows, err := RunSkewBench(SkewBenchConfig{
		WindowSize: 600, WindowStep: 300, Windows: 6, Workers: 2, MaxFanout: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	bysys := make(map[string]SkewRow)
	for _, r := range rows {
		bysys[r.System] = r
	}
	for _, sys := range []string{"DPR_static", "DPR_adaptive"} {
		r, ok := bysys[sys]
		if !ok {
			t.Fatalf("missing row %s", sys)
		}
		if r.CPMs <= 0 || r.Windows == 0 || r.Partitions == 0 {
			t.Errorf("%s: degenerate row %+v", sys, r)
		}
		if r.Fallbacks != 0 {
			t.Errorf("%s: %d local fallbacks on loopback workers", sys, r.Fallbacks)
		}
	}
	st, ad := bysys["DPR_static"], bysys["DPR_adaptive"]
	if st.Moves+st.Splits+st.PlanRefines+st.Joins+st.Leaves != 0 {
		t.Errorf("static run reports rebalancing: %+v", st)
	}
	if ad.Joins != 1 || ad.Leaves != 1 {
		t.Errorf("adaptive run joins/leaves = %d/%d, want 1/1", ad.Joins, ad.Leaves)
	}
}

// TestSkewBenchAdaptiveBeatsStatic is the PR's acceptance benchmark: on the
// skewed+bursty workload with 4 workers, the adaptive DPR must at least
// double the static DPR's modeled critical-path throughput (see
// SkewRow.CPMs — the loopback fleet shares one machine, so per-partition
// worker compute, not wall clock, is what the layout controls) while staying exact
// (every window of both runs is verified against R inside RunSkewBench),
// with at least two layout migrations plus the worker join and leave, and
// zero dropped or fallen-back windows.
func TestSkewBenchAdaptiveBeatsStatic(t *testing.T) {
	if testing.Short() {
		t.Skip("skew benchmark: skipped in -short")
	}
	// The cp-ms numbers come from worker-reported compute times, so a loaded
	// host adds noise to both systems; allow a couple of attempts for the
	// >= 2x margin before declaring the layout loop broken.
	const attempts = 3
	var st, ad SkewRow
	for attempt := 1; attempt <= attempts; attempt++ {
		rows, err := RunSkewBench(SkewBenchConfig{})
		if err != nil {
			t.Fatal(err)
		}
		bysys := make(map[string]SkewRow)
		for _, r := range rows {
			bysys[r.System] = r
		}
		st, ad = bysys["DPR_static"], bysys["DPR_adaptive"]
		if st.CPMs <= 0 || ad.CPMs <= 0 {
			t.Fatalf("degenerate rows: %+v / %+v", st, ad)
		}
		ratio := st.CPMs / ad.CPMs
		if ratio >= 2 {
			break
		}
		if attempt == attempts {
			t.Errorf("adaptive speedup %.2fx over static, want >= 2x (static %.2f cp-ms, adaptive %.2f cp-ms)",
				ratio, st.CPMs, ad.CPMs)
		} else {
			t.Logf("attempt %d: speedup %.2fx < 2x (retrying)", attempt, ratio)
		}
	}
	if migrations := ad.Moves + ad.Splits + ad.PlanRefines; migrations < 2 {
		t.Errorf("only %d layout migrations (moves %d, splits %d, refines %d), want >= 2",
			migrations, ad.Moves, ad.Splits, ad.PlanRefines)
	}
	if ad.Joins != 1 || ad.Leaves != 1 {
		t.Errorf("joins/leaves = %d/%d, want 1/1", ad.Joins, ad.Leaves)
	}
	if st.Fallbacks != 0 || ad.Fallbacks != 0 {
		t.Errorf("fallbacks: static %d, adaptive %d, want 0/0", st.Fallbacks, ad.Fallbacks)
	}
	if ad.Partitions <= st.Partitions {
		t.Errorf("adaptive finished with %d partitions, static %d — nothing was split", ad.Partitions, st.Partitions)
	}
	t.Logf("static %.2f cp-ms, adaptive %.2f cp-ms (%.2fx); adaptive: %d moves, %d splits, %d refines, %d refused, %d partitions",
		st.CPMs, ad.CPMs, st.CPMs/ad.CPMs, ad.Moves, ad.Splits, ad.PlanRefines, ad.RefusedSplits, ad.Partitions)
}

// TestSkewBenchArtifact emits BENCH_7.json (the static vs adaptive
// speedup-vs-k curve on the skewed+bursty workload) when BENCH7_OUT names
// the destination; `make bench7` wraps exactly this.
func TestSkewBenchArtifact(t *testing.T) {
	out := os.Getenv("BENCH7_OUT")
	if out == "" {
		t.Skip("set BENCH7_OUT=/path/BENCH_7.json (or run `make bench7`) to emit the artifact")
	}
	fleets := []int{2, 4, 8}
	var rows []SkewRow
	var cfg SkewBenchConfig
	for _, k := range fleets {
		kcfg := SkewBenchConfig{Workers: k}
		krows, err := RunSkewBench(kcfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", k, err)
		}
		rows = append(rows, krows...)
		cfg = kcfg
	}
	cfg.fill()
	artifact := struct {
		Name   string          `json:"name"`
		Config SkewBenchConfig `json:"config"`
		Fleets []int           `json:"fleets"`
		Rows   []SkewRow       `json:"rows"`
	}{Name: "BENCH_7 static vs adaptive partitioning under skew", Config: cfg, Fleets: fleets, Rows: rows}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d rows)", out, len(rows))
}
