package bench

import (
	"testing"
)

// TestManyTenants is the multi-tenant serving gate: at least 500 concurrent
// small pipelines on one shared 4-worker fleet, every tenant's answers equal
// to its solo run, zero shed, zero errors, zero growth of the process-wide
// default intern table, and a reported per-tenant p99 window latency.
func TestManyTenants(t *testing.T) {
	cfg := TenantBenchConfig{Tenants: 500, FleetWorkers: 4, Seed: 7, Oracle: true}
	if testing.Short() {
		cfg.Tenants = 60
	}
	res, err := RunManyTenants(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
	wantWindows := uint64(cfg.Tenants) * 7 // 90 items, size 30 step 10: emissions at 30,40,...,90
	if res.Windows != wantWindows {
		t.Errorf("windows = %d, want %d", res.Windows, wantWindows)
	}
	if res.Mismatches != 0 {
		t.Errorf("%d tenant windows differ from their solo run", res.Mismatches)
	}
	if res.Shed != 0 || res.Errors != 0 {
		t.Errorf("shed = %d, errors = %d, want 0/0", res.Shed, res.Errors)
	}
	if res.DefaultTableDelta != 0 {
		t.Errorf("default intern table grew by %d entries across tenants", res.DefaultTableDelta)
	}
	if res.P99 <= 0 || res.P50 <= 0 || res.P99 < res.P50 {
		t.Errorf("implausible latency percentiles: p50 %v p99 %v", res.P50, res.P99)
	}
}

// BenchmarkManyTenants pins the many-tenant serving numbers: ~1k concurrent
// pipelines over a shared 4-worker fleet, reporting total windows/sec and
// per-tenant p50/p99 window latency.
func BenchmarkManyTenants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunManyTenants(TenantBenchConfig{
			Tenants: 1000, FleetWorkers: 4, Seed: int64(100 + i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Shed != 0 || res.Errors != 0 || res.DefaultTableDelta != 0 {
			b.Fatalf("unhealthy round: %s", res)
		}
		b.ReportMetric(res.WindowsPerSec, "windows/sec")
		b.ReportMetric(float64(res.P50.Nanoseconds()), "p50-ns")
		b.ReportMetric(float64(res.P99.Nanoseconds()), "p99-ns")
	}
}
