// Package bench is the experiment harness that regenerates the evaluation of
// the paper (§IV): reasoning latency and answer accuracy as a function of
// window size, for the whole-window reasoner R, the dependency-partitioned
// reasoner PR_Dep, and the random-partitioning baselines PR_Ran_k.
//
// Figures 7/8 use program P (Listing 1); Figures 9/10 use program P' (P plus
// rule r7, whose input dependency graph is connected and requires predicate
// duplication). Each figure is a set of series over window sizes 5k..40k —
// exactly the axes of the paper's plots.
package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"streamrule/internal/asp/parser"
	"streamrule/internal/core"
	"streamrule/internal/rdf"
	"streamrule/internal/reasoner"
	"streamrule/internal/workload"
)

// ProgramP is Listing 1 of the paper.
const ProgramP = `
very_slow_speed(X) :- average_speed(X,Y), Y < 20.
many_cars(X) :- car_number(X,Y), Y > 40.
traffic_jam(X) :- very_slow_speed(X), many_cars(X), not traffic_light(X).
car_fire(X) :- car_in_smoke(C, high), car_speed(C, 0), car_location(C, X).
give_notification(X) :- traffic_jam(X).
give_notification(X) :- car_fire(X).
`

// ProgramPPrime is P extended with rule r7 (§II-B), which connects the input
// dependency graph.
const ProgramPPrime = ProgramP + `
traffic_jam(X) :- car_fire(X), many_cars(X).
`

// ProgramResidual is P extended with an incident-response layer that the
// grounder cannot evaluate away: an even negation loop per traffic jam
// (investigate/dismiss, pinned deterministic by the constraint), a tight
// 1{..}1 dispatch choice per car fire, and three genuinely free even loops
// over the health of the sensor, radar, and camera feeds, each gating its
// own response rules. Every jam and fire atom in a window therefore
// contributes residual rules the solver must propagate through, and the
// free loops give each window exactly eight answer sets reached through a
// real search tree (15 propagate calls per window) — the shape that
// separates event-driven propagation from the rescan baseline, which
// re-walks the whole program on every branch. Pair it with
// workload.ResidualTraffic.
const ProgramResidual = ProgramP + `
investigate(X) :- traffic_jam(X), not dismiss(X).
dismiss(X) :- traffic_jam(X), not investigate(X).
:- dismiss(X).
1 { dispatch(X) } 1 :- car_fire(X).
escalate(X) :- dispatch(X), many_cars(X).
sensors_degraded :- not sensors_ok.
sensors_ok :- not sensors_degraded.
recheck(X) :- investigate(X), sensors_degraded.
radar_degraded :- not radar_ok.
radar_ok :- not radar_degraded.
manual_count(X) :- escalate(X), radar_degraded.
camera_degraded :- not camera_ok.
camera_ok :- not camera_degraded.
patrol(X) :- dispatch(X), camera_degraded.
`

// Inpre is inpre(P) = inpre(P').
var Inpre = []string{
	"average_speed", "car_number", "traffic_light",
	"car_in_smoke", "car_speed", "car_location",
}

// Outputs are the event predicates the scenario reports downstream; accuracy
// is measured on these.
var Outputs = []string{"traffic_jam", "car_fire", "give_notification"}

// FreshTraffic generates a ProgramP-shaped stream whose location and vehicle
// constants advance with the stream position (~9 and ~13 triples per
// constant) and never recur once the stream has moved on — the
// "timestamped" input shape (unique event IDs, rolling sensor identifiers)
// that grows an interning table without bound. It backs the eviction soak
// test and BenchmarkFig7SoakEviction.
func FreshTraffic(seed int64, n int) []rdf.Triple {
	rnd := rand.New(rand.NewSource(seed))
	out := make([]rdf.Triple, 0, n)
	for i := 0; i < n; i++ {
		loc := fmt.Sprintf("l%d", i/9)
		car := fmt.Sprintf("v%d", i/13)
		switch rnd.Intn(6) {
		case 0:
			out = append(out, rdf.Triple{S: loc, P: "average_speed", O: fmt.Sprint(rnd.Intn(60))})
		case 1:
			out = append(out, rdf.Triple{S: loc, P: "car_number", O: fmt.Sprint(rnd.Intn(80))})
		case 2:
			out = append(out, rdf.Triple{S: loc, P: "traffic_light", O: "true"})
		case 3:
			out = append(out, rdf.Triple{S: car, P: "car_in_smoke", O: "high"})
		case 4:
			out = append(out, rdf.Triple{S: car, P: "car_speed", O: fmt.Sprint(rnd.Intn(3))})
		default:
			out = append(out, rdf.Triple{S: car, P: "car_location", O: loc})
		}
	}
	return out
}

// Config parameterizes one experiment run.
type Config struct {
	// ProgramSrc is the rule set (ProgramP or ProgramPPrime).
	ProgramSrc string
	// Inpre / Outputs default to the paper's sets when empty.
	Inpre   []string
	Outputs []string
	// Sizes are the window sizes; default 5k..40k in 5k steps (the x-axis
	// of Figures 7-10).
	Sizes []int
	// RandomKs are the random-partitioning fan-outs; default 2..5.
	RandomKs []int
	// Seed drives workload generation and random partitioning.
	Seed int64
	// Repetitions averages each point over this many fresh windows
	// (default 3).
	Repetitions int
	// Resolution is the Louvain resolution (default 1.0).
	Resolution float64
	// NoDuplication strips duplicated predicates from the dependency plan
	// (ablation).
	NoDuplication bool
}

func (c *Config) fill() {
	if len(c.Inpre) == 0 {
		c.Inpre = Inpre
	}
	if len(c.Outputs) == 0 {
		c.Outputs = Outputs
	}
	if len(c.Sizes) == 0 {
		c.Sizes = []int{5000, 10000, 15000, 20000, 25000, 30000, 35000, 40000}
	}
	if len(c.RandomKs) == 0 {
		c.RandomKs = []int{2, 3, 4, 5}
	}
	if c.Repetitions <= 0 {
		c.Repetitions = 3
	}
	if c.Resolution == 0 {
		c.Resolution = 1.0
	}
}

// Point is one measured cell: a system at a window size.
type Point struct {
	System     string
	WindowSize int
	// Latency is the parallel (critical-path) latency — the quantity the
	// paper plots. Wall is the single-host wall-clock time.
	Latency time.Duration
	Wall    time.Duration
	// Accuracy is relative to R's answers on the same window (R itself
	// scores 1 by definition).
	Accuracy float64
	// DuplicationShare is the fraction of routed items that were duplicated
	// copies (dependency plans on connected graphs only).
	DuplicationShare float64
}

// Result is a full experiment: all systems at all sizes.
type Result struct {
	Name    string
	Systems []string
	Points  []Point
}

// Run executes the experiment.
func Run(cfg Config) (*Result, error) {
	cfg.fill()
	prog, err := parser.Parse(cfg.ProgramSrc)
	if err != nil {
		return nil, err
	}
	rcfg := reasoner.Config{Program: prog, Inpre: cfg.Inpre, OutputPreds: cfg.Outputs}

	r, err := reasoner.NewR(rcfg)
	if err != nil {
		return nil, err
	}
	analysis, err := core.Analyze(prog, cfg.Inpre, cfg.Resolution)
	if err != nil {
		return nil, err
	}
	plan := analysis.Plan
	if cfg.NoDuplication {
		plan = core.StripDuplicates(plan)
	}
	prDep, err := reasoner.NewPR(rcfg, reasoner.NewPlanPartitioner(plan))
	if err != nil {
		return nil, err
	}
	prRan := make(map[int]*reasoner.PR, len(cfg.RandomKs))
	for _, k := range cfg.RandomKs {
		pr, err := reasoner.NewPR(rcfg, reasoner.NewRandomPartitioner(k, cfg.Seed+int64(k)))
		if err != nil {
			return nil, err
		}
		prRan[k] = pr
	}

	res := &Result{Name: "latency/accuracy sweep"}
	res.Systems = append(res.Systems, "R", "PR_Dep")
	for _, k := range cfg.RandomKs {
		res.Systems = append(res.Systems, fmt.Sprintf("PR_Ran_k%d", k))
	}

	type acc struct {
		lat, wall time.Duration
		accuracy  float64
		dup       float64
	}
	for _, size := range cfg.Sizes {
		sums := make(map[string]*acc)
		for _, sys := range res.Systems {
			sums[sys] = &acc{}
		}
		for rep := 0; rep < cfg.Repetitions; rep++ {
			gen, err := workload.NewGenerator(cfg.Seed+int64(size)*31+int64(rep), workload.PaperTraffic())
			if err != nil {
				return nil, err
			}
			window := gen.Window(size)

			ref, err := r.Process(window)
			if err != nil {
				return nil, err
			}
			record := func(sys string, out *reasoner.Output) {
				s := sums[sys]
				s.lat += out.Latency.CriticalPath
				s.wall += out.Latency.Total
				s.accuracy += reasoner.Accuracy(out.Answers, ref.Answers)
				s.dup += out.DuplicationShare(len(window))
			}
			record("R", ref)

			dep, err := prDep.Process(window)
			if err != nil {
				return nil, err
			}
			record("PR_Dep", dep)

			for _, k := range cfg.RandomKs {
				out, err := prRan[k].Process(window)
				if err != nil {
					return nil, err
				}
				record(fmt.Sprintf("PR_Ran_k%d", k), out)
			}
		}
		n := time.Duration(cfg.Repetitions)
		for _, sys := range res.Systems {
			s := sums[sys]
			res.Points = append(res.Points, Point{
				System:           sys,
				WindowSize:       size,
				Latency:          s.lat / n,
				Wall:             s.wall / n,
				Accuracy:         s.accuracy / float64(cfg.Repetitions),
				DuplicationShare: s.dup / float64(cfg.Repetitions),
			})
		}
	}
	return res, nil
}

// point looks up a cell.
func (r *Result) point(sys string, size int) (Point, bool) {
	for _, p := range r.Points {
		if p.System == sys && p.WindowSize == size {
			return p, true
		}
	}
	return Point{}, false
}

// Sizes returns the distinct window sizes in ascending order.
func (r *Result) Sizes() []int {
	seen := make(map[int]bool)
	var out []int
	for _, p := range r.Points {
		if !seen[p.WindowSize] {
			seen[p.WindowSize] = true
			out = append(out, p.WindowSize)
		}
	}
	sort.Ints(out)
	return out
}

// CSV renders one metric ("latency_ms", "wall_ms", "accuracy", "dup_share")
// as a window-size × system table in CSV.
func (r *Result) CSV(metric string) string {
	var b strings.Builder
	b.WriteString("window_size")
	for _, sys := range r.Systems {
		b.WriteByte(',')
		b.WriteString(sys)
	}
	b.WriteByte('\n')
	for _, size := range r.Sizes() {
		fmt.Fprintf(&b, "%d", size)
		for _, sys := range r.Systems {
			p, ok := r.point(sys, size)
			b.WriteByte(',')
			if !ok {
				continue
			}
			switch metric {
			case "latency_ms":
				fmt.Fprintf(&b, "%.2f", float64(p.Latency.Microseconds())/1000)
			case "wall_ms":
				fmt.Fprintf(&b, "%.2f", float64(p.Wall.Microseconds())/1000)
			case "accuracy":
				fmt.Fprintf(&b, "%.4f", p.Accuracy)
			case "dup_share":
				fmt.Fprintf(&b, "%.4f", p.DuplicationShare)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Markdown renders one metric as a markdown table (for EXPERIMENTS.md).
func (r *Result) Markdown(metric, title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s\n\n| window |", title)
	for _, sys := range r.Systems {
		fmt.Fprintf(&b, " %s |", sys)
	}
	b.WriteString("\n|---|")
	for range r.Systems {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, size := range r.Sizes() {
		fmt.Fprintf(&b, "| %dk |", size/1000)
		for _, sys := range r.Systems {
			p, _ := r.point(sys, size)
			switch metric {
			case "latency_ms":
				fmt.Fprintf(&b, " %.1f |", float64(p.Latency.Microseconds())/1000)
			case "accuracy":
				fmt.Fprintf(&b, " %.3f |", p.Accuracy)
			case "dup_share":
				fmt.Fprintf(&b, " %.3f |", p.DuplicationShare)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Figure returns the preset configuration for a paper figure number:
// 7 and 8 run program P; 9 and 10 run program P'. (7/9 read the latency
// columns, 8/10 the accuracy columns of the same run.)
func Figure(n int) (Config, error) {
	switch n {
	case 7, 8:
		return Config{ProgramSrc: ProgramP, Seed: 1}, nil
	case 9, 10:
		return Config{ProgramSrc: ProgramPPrime, Seed: 1}, nil
	default:
		return Config{}, fmt.Errorf("no preset for figure %d (supported: 7, 8, 9, 10)", n)
	}
}
