package bench

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"streamrule/internal/asp/ground"
	"streamrule/internal/asp/parser"
	"streamrule/internal/asp/solve"
	"streamrule/internal/dfp"
	"streamrule/internal/reasoner"
	"streamrule/internal/workload"
)

// residualGround grounds ProgramResidual over a ResidualTraffic window and
// returns the ground program the solver benchmarks re-solve.
func residualGround(tb testing.TB, size int) *ground.Program {
	tb.Helper()
	prog, err := parser.Parse(ProgramResidual)
	if err != nil {
		tb.Fatal(err)
	}
	inst, err := ground.NewInstantiator(prog, ground.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	ar, err := dfp.InferArities(prog, Inpre)
	if err != nil {
		tb.Fatal(err)
	}
	gen, err := workload.NewGenerator(int64(size), workload.ResidualTraffic())
	if err != nil {
		tb.Fatal(err)
	}
	ids, _ := dfp.InternFacts(inst.Table(), gen.Window(size), ar, nil)
	gp, err := inst.Ground(ids)
	if err != nil {
		tb.Fatal(err)
	}
	if len(gp.RuleIDs) == 0 {
		tb.Fatal("residual workload grounded away — nothing for the solver to do")
	}
	return gp
}

// TestResidualWorkloadShape pins the premises of the residual benchmarks:
// the workload leaves the solver a real residual program (hundreds of rules
// at w2k), the solver leaves the fast path, both propagation engines return
// the program's eight answer sets, and the counter engine visits at least 10x
// fewer rules than the rescan baseline while agreeing on every model.
func TestResidualWorkloadShape(t *testing.T) {
	gp := residualGround(t, 2000)
	if len(gp.RuleIDs) < 200 {
		t.Errorf("residual rules = %d, want a substantial program (>= 200)", len(gp.RuleIDs))
	}
	worklist, err := solve.Solve(gp, solve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := solve.Solve(gp, solve.Options{NaivePropagation: true})
	if err != nil {
		t.Fatal(err)
	}
	if worklist.Stats.FastPath || naive.Stats.FastPath {
		t.Fatal("residual program took the fast path")
	}
	if len(worklist.Models) != 8 || len(naive.Models) != 8 {
		t.Fatalf("models: worklist %d, naive %d, want 8 each", len(worklist.Models), len(naive.Models))
	}
	for i, m := range worklist.Models {
		found := false
		for _, n := range naive.Models {
			if m.Equal(n) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("worklist model %d not among naive models", i)
		}
	}
	if naive.Stats.RuleVisits < 10*worklist.Stats.RuleVisits {
		t.Errorf("rule visits: naive %d vs worklist %d — event-driven propagation should visit >= 10x fewer rules",
			naive.Stats.RuleVisits, worklist.Stats.RuleVisits)
	}
	if worklist.Stats.QueuePushes == 0 || worklist.Stats.SourceRepairs == 0 {
		t.Errorf("counter engine idle: pushes=%d repairs=%d", worklist.Stats.QueuePushes, worklist.Stats.SourceRepairs)
	}
}

// BenchmarkSolverResidual isolates the solver on the residual workload's
// ground programs: the same program is re-solved per iteration, comparing
// the counter/worklist engine against the NaivePropagation rescan baseline.
// "rule-visits" is the per-op propagation work; the ratio between the two
// variants is the headline of the event-driven rewrite.
func BenchmarkSolverResidual(b *testing.B) {
	for _, size := range []int{2000, 5000} {
		gp := residualGround(b, size)
		for _, variant := range []struct {
			name string
			opts solve.Options
		}{
			{"worklist", solve.Options{}},
			{"naive", solve.Options{NaivePropagation: true}},
		} {
			b.Run(fmt.Sprintf("%s/w%dk", variant.name, size/1000), func(b *testing.B) {
				b.ReportAllocs()
				var visits, pushes, repairs float64
				for i := 0; i < b.N; i++ {
					res, err := solve.Solve(gp, variant.opts)
					if err != nil {
						b.Fatal(err)
					}
					if len(res.Models) != 8 {
						b.Fatalf("models = %d", len(res.Models))
					}
					visits += float64(res.Stats.RuleVisits)
					pushes += float64(res.Stats.QueuePushes)
					repairs += float64(res.Stats.SourceRepairs)
				}
				b.ReportMetric(visits/float64(b.N), "rule-visits")
				b.ReportMetric(pushes/float64(b.N), "queue-pushes")
				b.ReportMetric(repairs/float64(b.N), "source-repairs")
			})
		}
	}
}

// fig7ResidualBaselinePath holds the committed allocs/op snapshot of the
// Fig7Residual R path (reasoner.R over ProgramResidual x ResidualTraffic at
// w2k), the regression gate CI enforces.
const fig7ResidualBaselinePath = "testdata/fig7residual_allocs.txt"

// TestFig7ResidualAllocBudget fails when the Fig7Residual R path allocates
// more than 10% above the committed baseline snapshot — the alloc-regression
// gate for the residual solver. Regenerate the snapshot (after an intended
// change) by running the test with UPDATE_RESIDUAL_BASELINE=1.
func TestFig7ResidualAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation benchmark: skipped in -short")
	}
	prog, err := parser.Parse(ProgramResidual)
	if err != nil {
		t.Fatal(err)
	}
	cfg := reasoner.Config{Program: prog, Inpre: Inpre}
	r, err := reasoner.NewR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(2000, workload.ResidualTraffic())
	if err != nil {
		t.Fatal(err)
	}
	window := gen.Window(2000)
	// Warm the interning table and grounding scratch so the measurement is
	// the steady-state per-window cost, as in the Fig7Residual benchmark.
	for i := 0; i < 2; i++ {
		if _, err := r.Process(window); err != nil {
			t.Fatal(err)
		}
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := r.Process(window); err != nil {
				b.Fatal(err)
			}
		}
	})
	got := res.AllocsPerOp()

	if os.Getenv("UPDATE_RESIDUAL_BASELINE") != "" {
		if err := os.WriteFile(fig7ResidualBaselinePath, []byte(fmt.Sprintf("%d\n", got)), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("baseline updated: %d allocs/op", got)
		return
	}
	raw, err := os.ReadFile(fig7ResidualBaselinePath)
	if err != nil {
		t.Fatalf("missing baseline snapshot (run with UPDATE_RESIDUAL_BASELINE=1): %v", err)
	}
	baseline, err := strconv.ParseInt(strings.TrimSpace(string(raw)), 10, 64)
	if err != nil {
		t.Fatalf("corrupt baseline snapshot %q: %v", raw, err)
	}
	limit := baseline + baseline/10
	if got > limit {
		t.Errorf("Fig7Residual R/w2k allocates %d allocs/op, > committed baseline %d +10%% (%d)",
			got, baseline, limit)
	}
	t.Logf("allocs/op: %d (baseline %d, limit %d)", got, baseline, limit)
}
