// Skew benchmark: static vs adaptive partitioning under a skewed, bursty
// stream. RunSkewBench drives the residual program over the canned
// skewed+bursty workload (car-heavy, burst, then the skew inverted) through
// a statically partitioned DPR and an adaptive DPR on the same loopback
// fleet. The static layout is stuck with the design-time communities — one
// partition holds ~80% of every window and the other workers idle — while
// the adaptive run observes the imbalance, hash-splits the hot community,
// migrates partitions, and rides out a worker join and leave mid-run. Every
// window of both systems is checked against the monolithic R, so the curve
// only ever reports exact configurations. `make bench7` snapshots the
// speedup-vs-k rows into BENCH_7.json.

package bench

import (
	"fmt"
	"time"

	"streamrule/internal/asp/parser"
	"streamrule/internal/asp/solve"
	"streamrule/internal/atomdep"
	"streamrule/internal/core"
	"streamrule/internal/dfp"
	"streamrule/internal/reasoner"
	"streamrule/internal/workload"
)

// SkewRow is one measured cell of the skew benchmark.
type SkewRow struct {
	// Figure names the workload ("SkewedBursty").
	Figure string `json:"figure"`
	// System is DPR_static or DPR_adaptive.
	System string `json:"system"`
	// Workers is the fleet size the run started with.
	Workers int `json:"workers"`
	// CPMs is the mean modeled critical-path latency in milliseconds:
	// partitioning + the slowest partition's worker-side compute + the
	// cross-worker combine, i.e. the window latency of a cluster that
	// gives every partition its own executor (the paper's deployment).
	// The wall-clock CriticalPath is not used because the loopback fleet
	// shares one machine: there, every "parallel" leg serializes onto the
	// same cores and the measurement reflects the box, not the layout.
	CPMs float64 `json:"cp_ms"`
	// Windows is the number of window emissions processed.
	Windows int `json:"windows"`
	// Moves/Splits/PlanRefines/RefusedSplits are the rebalancer's decision
	// counters (zero for the static run).
	Moves         int64 `json:"moves"`
	Splits        int64 `json:"splits"`
	PlanRefines   int64 `json:"plan_refines"`
	RefusedSplits int64 `json:"refused_splits"`
	// Joins/Leaves count elastic fleet changes during the run.
	Joins  int64 `json:"joins"`
	Leaves int64 `json:"leaves"`
	// Partitions is the final partition count (the static run keeps the
	// design-time plan's).
	Partitions int `json:"partitions"`
	// Fallbacks counts partition windows that fell back to local
	// processing (zero on healthy loopback workers).
	Fallbacks int64 `json:"fallbacks"`
}

// SkewBenchConfig parameterizes one skew-benchmark run.
type SkewBenchConfig struct {
	// Seed drives workload generation (default 11).
	Seed int64
	// WindowSize / WindowStep shape the sliding window (defaults 3000/1000).
	WindowSize, WindowStep int
	// Windows is the number of emissions per system (default 30 — long
	// enough that the adaptive run's warmup and migration reships
	// amortize; adaptation only pays off under sustained skew).
	Windows int
	// Workers is the starting fleet size (default 4). The adaptive run
	// additionally joins a fifth worker a third of the way in and removes
	// one of the original workers at two thirds.
	Workers int
	// MaxFanout caps the adaptive run's per-community hash fan-out
	// (default 8).
	MaxFanout int
	// SkipOracle disables the per-window answer check against the
	// monolithic R (the check dominates small runs).
	SkipOracle bool
}

func (c *SkewBenchConfig) fill() {
	if c.Seed == 0 {
		c.Seed = 11
	}
	if c.WindowSize == 0 {
		c.WindowSize = 3000
	}
	if c.WindowStep == 0 {
		c.WindowStep = 1000
	}
	if c.Windows == 0 {
		c.Windows = 30
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.MaxFanout == 0 {
		c.MaxFanout = 8
	}
}

// RunSkewBench executes the skew benchmark for one fleet size: the residual
// program over the skewed+bursty stream, static DPR vs adaptive DPR, both
// verified window-by-window against R unless SkipOracle is set.
func RunSkewBench(cfg SkewBenchConfig) ([]SkewRow, error) {
	cfg.fill()
	prog, err := parser.Parse(ProgramResidual)
	if err != nil {
		return nil, err
	}
	rcfg := reasoner.Config{Program: prog, Inpre: Inpre, OutputPreds: Outputs}
	analysis, err := core.Analyze(prog, Inpre, 1.0)
	if err != nil {
		return nil, err
	}
	arities, err := dfp.InferArities(prog, Inpre)
	if err != nil {
		return nil, err
	}
	keys := atomdep.Analyze(prog, analysis.Plan)

	total := cfg.WindowSize + cfg.WindowStep*(cfg.Windows-1)
	triples, err := workload.SkewedBurstyStream(cfg.Seed, total)
	if err != nil {
		return nil, err
	}
	emissions := slidingEmissions(triples, cfg.WindowSize, cfg.WindowStep)
	if len(emissions) == 0 {
		return nil, fmt.Errorf("bench: no emissions for window %d step %d", cfg.WindowSize, cfg.WindowStep)
	}

	// Reference answers, once: both systems must match R on every window.
	var refs [][]*solve.AnswerSet
	if !cfg.SkipOracle {
		r, err := reasoner.NewR(rcfg)
		if err != nil {
			return nil, err
		}
		for wi, wd := range emissions {
			out, err := r.Process(wd.Window)
			if err != nil {
				return nil, fmt.Errorf("oracle window %d: %w", wi, err)
			}
			refs = append(refs, out.Answers)
		}
	}

	// drive runs one DPR serially (rebalancing happens between windows, so
	// lockstep gives the adaptive loop a decision point per window), joining
	// and leaving workers at the given indexes (-1 = never).
	drive := func(system string, dpr *reasoner.DPR, joinAt, leaveAt int, joinAddr, leaveAddr string) (SkewRow, error) {
		var cp time.Duration
		for wi, wd := range emissions {
			if wi == joinAt {
				if err := dpr.AddWorker(joinAddr); err != nil {
					return SkewRow{}, fmt.Errorf("%s window %d: AddWorker: %w", system, wi, err)
				}
			}
			if wi == leaveAt {
				if err := dpr.RemoveWorker(leaveAddr); err != nil {
					return SkewRow{}, fmt.Errorf("%s window %d: RemoveWorker: %w", system, wi, err)
				}
			}
			var d *reasoner.Delta
			if wd.Incremental {
				d = &reasoner.Delta{Added: wd.Added, Retracted: wd.Retracted}
			}
			out, err := dpr.ProcessDelta(wd.Window, d)
			if err != nil {
				return SkewRow{}, fmt.Errorf("%s window %d: %w", system, wi, err)
			}
			// Modeled critical path (see SkewRow.CPMs): the slowest
			// partition's own compute bounds the window on a fleet where
			// partitions run on separate executors. PartitionLoads holds
			// the rows of the window just processed even when a
			// post-window rebalance already changed the layout.
			var maxPart time.Duration
			for _, pl := range dpr.PartitionLoads() {
				if pl.CP > maxPart {
					maxPart = pl.CP
				}
			}
			cp += out.Latency.Partition + maxPart + out.Latency.Combine
			if refs != nil {
				if a, b := reasoner.Accuracy(out.Answers, refs[wi]), reasoner.Accuracy(refs[wi], out.Answers); a < 0.9999 || b < 0.9999 {
					return SkewRow{}, fmt.Errorf("%s window %d: answers diverge from R (recall %.4f / %.4f)", system, wi, a, b)
				}
			}
		}
		ts := dpr.TransportStats()
		rs := dpr.RebalanceStats()
		return SkewRow{
			Figure:        "SkewedBursty",
			System:        system,
			Workers:       cfg.Workers,
			CPMs:          float64((cp / time.Duration(len(emissions))).Microseconds()) / 1000,
			Windows:       len(emissions),
			Moves:         rs.Moves,
			Splits:        rs.Splits,
			PlanRefines:   rs.PlanRefines,
			RefusedSplits: rs.RefusedSplits,
			Joins:         rs.Joins,
			Leaves:        rs.Leaves,
			Partitions:    dpr.NumPartitions(),
			Fallbacks:     ts.LocalFallbacks,
		}, nil
	}

	var rows []SkewRow

	// Static: the design-time plan, fixed fleet.
	addrs, stopWorkers, err := startLoopbackWorkers(cfg.Workers)
	if err != nil {
		return nil, err
	}
	dpr, err := reasoner.NewDPR(rcfg, reasoner.NewPlanPartitioner(analysis.Plan), reasoner.DPROptions{
		Workers:          addrs,
		ProgramSource:    ProgramResidual,
		StragglerTimeout: 30 * time.Second,
	})
	if err != nil {
		stopWorkers()
		return nil, err
	}
	row, err := drive("DPR_static", dpr, -1, -1, "", "")
	dpr.Close()
	stopWorkers()
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)

	// Adaptive: same starting fleet plus one spare for the mid-run join;
	// one of the original workers leaves at two thirds.
	addrs, stopWorkers, err = startLoopbackWorkers(cfg.Workers + 1)
	if err != nil {
		return nil, err
	}
	dpr, err = reasoner.NewDPR(rcfg, reasoner.NewAdaptivePartitioner(analysis.Plan, keys, arities), reasoner.DPROptions{
		Workers:          addrs[:cfg.Workers],
		ProgramSource:    ProgramResidual,
		StragglerTimeout: 30 * time.Second,
		Rebalance: &reasoner.RebalanceOptions{
			SkewThreshold: 1.3,
			Sustain:       1,
			Cooldown:      1,
			MaxFanout:     cfg.MaxFanout,
		},
	})
	if err != nil {
		stopWorkers()
		return nil, err
	}
	row, err = drive("DPR_adaptive", dpr, len(emissions)/3, 2*len(emissions)/3, addrs[cfg.Workers], addrs[0])
	dpr.Close()
	stopWorkers()
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)
	return rows, nil
}
