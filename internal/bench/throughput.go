package bench

import (
	"fmt"
	"strings"
	"time"

	"streamrule/internal/asp/parser"
	"streamrule/internal/atomdep"
	"streamrule/internal/core"
	"streamrule/internal/dfp"
	"streamrule/internal/reasoner"
	"streamrule/internal/workload"
)

// Throughput is the derived experiment behind the paper's motivation (§I):
// "the reasoning component needs to return results faster than when new
// input arrives in order to maintain the stability of the whole system."
// For a tuple window of n items arriving at rate r items/second, the window
// fills every n/r seconds; the pipeline is stable iff the reasoner finishes
// a window within that budget. The maximum sustainable rate is therefore
//
//	r_max(n) = n / latency(n)
//
// and partitioned reasoning raises it exactly as much as it lowers latency.

// ThroughputPoint is the sustainable rate of one system at one window size.
type ThroughputPoint struct {
	System     string
	WindowSize int
	// Latency is the critical-path latency per window.
	Latency time.Duration
	// MaxRate is the maximum sustainable arrival rate in items/second.
	MaxRate float64
}

// ThroughputResult is a full throughput sweep.
type ThroughputResult struct {
	Systems []string
	Points  []ThroughputPoint
}

// ThroughputConfig parameterizes the sweep.
type ThroughputConfig struct {
	ProgramSrc  string
	Inpre       []string
	Outputs     []string
	Sizes       []int
	Seed        int64
	Repetitions int
	// AtomFanout adds a PR_Atom_m<F> system using atom-level partitioning
	// (0 disables).
	AtomFanout int
}

// RunThroughput measures the sustainable rate of R, PR_Dep, and (optionally)
// the atom-level partitioner over the window sizes.
func RunThroughput(cfg ThroughputConfig) (*ThroughputResult, error) {
	if len(cfg.Inpre) == 0 {
		cfg.Inpre = Inpre
	}
	if len(cfg.Outputs) == 0 {
		cfg.Outputs = Outputs
	}
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = []int{5000, 10000, 20000, 40000}
	}
	if cfg.Repetitions <= 0 {
		cfg.Repetitions = 3
	}
	prog, err := parser.Parse(cfg.ProgramSrc)
	if err != nil {
		return nil, err
	}
	rcfg := reasoner.Config{Program: prog, Inpre: cfg.Inpre, OutputPreds: cfg.Outputs}

	r, err := reasoner.NewR(rcfg)
	if err != nil {
		return nil, err
	}
	analysis, err := core.Analyze(prog, cfg.Inpre, 1.0)
	if err != nil {
		return nil, err
	}
	prDep, err := reasoner.NewPR(rcfg, reasoner.NewPlanPartitioner(analysis.Plan))
	if err != nil {
		return nil, err
	}
	var prAtom *reasoner.PR
	res := &ThroughputResult{Systems: []string{"R", "PR_Dep"}}
	if cfg.AtomFanout > 0 {
		keys := atomdep.Analyze(prog, analysis.Plan)
		arities, err := dfp.InferArities(prog, cfg.Inpre)
		if err != nil {
			return nil, err
		}
		part, err := reasoner.NewAtomPartitioner(analysis.Plan, keys, arities, cfg.AtomFanout)
		if err != nil {
			return nil, err
		}
		prAtom, err = reasoner.NewPR(rcfg, part)
		if err != nil {
			return nil, err
		}
		res.Systems = append(res.Systems, fmt.Sprintf("PR_Atom_m%d", cfg.AtomFanout))
	}

	for _, size := range cfg.Sizes {
		lat := map[string]time.Duration{}
		for rep := 0; rep < cfg.Repetitions; rep++ {
			gen, err := workload.NewGenerator(cfg.Seed+int64(size)*17+int64(rep), workload.PaperTraffic())
			if err != nil {
				return nil, err
			}
			window := gen.Window(size)
			outR, err := r.Process(window)
			if err != nil {
				return nil, err
			}
			lat["R"] += outR.Latency.CriticalPath
			outDep, err := prDep.Process(window)
			if err != nil {
				return nil, err
			}
			lat["PR_Dep"] += outDep.Latency.CriticalPath
			if prAtom != nil {
				outAtom, err := prAtom.Process(window)
				if err != nil {
					return nil, err
				}
				lat[res.Systems[2]] += outAtom.Latency.CriticalPath
			}
		}
		for _, sys := range res.Systems {
			avg := lat[sys] / time.Duration(cfg.Repetitions)
			res.Points = append(res.Points, ThroughputPoint{
				System:     sys,
				WindowSize: size,
				Latency:    avg,
				MaxRate:    float64(size) / avg.Seconds(),
			})
		}
	}
	return res, nil
}

// CSV renders the sustainable rates (items/second) as a window x system
// table.
func (r *ThroughputResult) CSV() string {
	var b strings.Builder
	b.WriteString("window_size")
	for _, sys := range r.Systems {
		fmt.Fprintf(&b, ",%s", sys)
	}
	b.WriteByte('\n')
	sizes := []int{}
	seen := map[int]bool{}
	for _, p := range r.Points {
		if !seen[p.WindowSize] {
			seen[p.WindowSize] = true
			sizes = append(sizes, p.WindowSize)
		}
	}
	for _, size := range sizes {
		fmt.Fprintf(&b, "%d", size)
		for _, sys := range r.Systems {
			for _, p := range r.Points {
				if p.System == sys && p.WindowSize == size {
					fmt.Fprintf(&b, ",%.0f", p.MaxRate)
				}
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
