// Solver-engine benchmark: the recorded-replay trajectory for the solver
// rewrite. RunCDNLBench drives the same sliding stream through reasoner.R
// three times — naive rescan, counter/worklist, and conflict-driven (CDNL)
// with cross-window clause carry — and reports the per-window solve cost
// next to the conflict-driven counters (conflicts, learned, reused clauses,
// stability checks). Answer sets are cross-checked window by window inside
// the run: a row is only emitted when every engine agreed on every window.
// `make bench8` snapshots the rows into BENCH_8.json.

package bench

import (
	"fmt"
	"slices"
	"strings"
	"time"

	"streamrule/internal/asp/parser"
	"streamrule/internal/asp/solve"
	"streamrule/internal/reasoner"
	"streamrule/internal/workload"
)

// CDNLRow is one measured cell of the solver-engine benchmark.
type CDNLRow struct {
	// Figure names the workload: "Fig7" (program P, paper traffic; rides the
	// stratified fast path, so all engines should tie) or "Fig7Residual"
	// (residual program, hostile traffic; the search-bound case).
	Figure string `json:"figure"`
	// Engine is naive, worklist, or cdnl.
	Engine string `json:"engine"`
	// SolveMs is the mean per-window solver latency in milliseconds.
	SolveMs float64 `json:"solve_ms"`
	// CPMs is the mean per-window critical-path latency in milliseconds.
	CPMs float64 `json:"cp_ms"`
	// StabilityChecks / Conflicts / Learned / Backjumps / ReusedClauses are
	// the cumulative solver counters over all windows. Only the CDNL engine
	// populates the conflict-driven ones.
	StabilityChecks int64 `json:"stability_checks"`
	Conflicts       int64 `json:"conflicts"`
	Learned         int64 `json:"learned"`
	Backjumps       int64 `json:"backjumps"`
	ReusedClauses   int64 `json:"reused_clauses"`
	// Windows is the number of window emissions processed.
	Windows int `json:"windows"`
}

// CDNLBenchConfig parameterizes one solver-engine benchmark run.
type CDNLBenchConfig struct {
	// Seed drives workload generation (default 1).
	Seed int64
	// WindowSize / WindowStep shape the sliding window (defaults 5000/1000 —
	// the w5k shape of the acceptance comparison).
	WindowSize, WindowStep int
	// Windows is the number of emissions per engine (default 12).
	Windows int
}

func (c *CDNLBenchConfig) fill() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.WindowSize == 0 {
		c.WindowSize = 5000
	}
	if c.WindowStep == 0 {
		c.WindowStep = 1000
	}
	if c.Windows == 0 {
		c.Windows = 12
	}
}

// cdnlEngines enumerates the three solver engines in oracle order.
var cdnlEngines = []struct {
	Name string
	Opts solve.Options
}{
	{"naive", solve.Options{NaivePropagation: true}},
	{"worklist", solve.Options{}},
	{"cdnl", solve.Options{CDNL: true}},
}

// RunCDNLBench executes the solver-engine benchmark: Fig7 and Fig7Residual,
// each through R under all three engines over the same sliding emissions,
// cross-checking the answers of every window across engines.
func RunCDNLBench(cfg CDNLBenchConfig) ([]CDNLRow, error) {
	cfg.fill()
	figures := []struct {
		name    string
		src     string
		traffic []workload.TripleSpec
	}{
		{"Fig7", ProgramP, workload.PaperTraffic()},
		{"Fig7Residual", ProgramResidual, workload.ResidualTraffic()},
	}
	var rows []CDNLRow
	for _, fig := range figures {
		prog, err := parser.Parse(fig.src)
		if err != nil {
			return nil, err
		}
		gen, err := workload.NewGenerator(cfg.Seed, fig.traffic)
		if err != nil {
			return nil, err
		}
		total := cfg.WindowSize + cfg.WindowStep*(cfg.Windows-1)
		emissions := slidingEmissions(gen.Window(total), cfg.WindowSize, cfg.WindowStep)
		if len(emissions) == 0 {
			return nil, fmt.Errorf("bench: no emissions for window %d step %d", cfg.WindowSize, cfg.WindowStep)
		}
		// sigs[engine][window] — table-independent answer signatures for the
		// cross-engine check.
		sigs := make([][][]string, len(cdnlEngines))
		for ei, eng := range cdnlEngines {
			rcfg := reasoner.Config{Program: prog, Inpre: Inpre, OutputPreds: Outputs}
			rcfg.SolveOpts = eng.Opts
			r, err := reasoner.NewR(rcfg)
			if err != nil {
				return nil, err
			}
			row := CDNLRow{Figure: fig.name, Engine: eng.Name, Windows: len(emissions)}
			var solveT, cpT time.Duration
			for wi, wd := range emissions {
				var d *reasoner.Delta
				if wd.Incremental {
					d = &reasoner.Delta{Added: wd.Added, Retracted: wd.Retracted}
				}
				out, err := r.ProcessDelta(wd.Window, d)
				if err != nil {
					return nil, fmt.Errorf("%s/%s window %d: %w", fig.name, eng.Name, wi, err)
				}
				solveT += out.Latency.Solve
				cpT += out.Latency.CriticalPath
				row.StabilityChecks += int64(out.SolveStats.StabilityChecks)
				row.Conflicts += int64(out.SolveStats.Conflicts)
				row.Learned += int64(out.SolveStats.Learned)
				row.Backjumps += int64(out.SolveStats.Backjumps)
				row.ReusedClauses += int64(out.SolveStats.ReusedClauses)
				ws := make([]string, len(out.Answers))
				for i, a := range out.Answers {
					ws[i] = strings.Join(a.Keys(), ";")
				}
				slices.Sort(ws)
				sigs[ei] = append(sigs[ei], ws)
				if ei > 0 && !slices.EqualFunc(sigs[0][wi], ws, func(a, b string) bool { return a == b }) {
					return nil, fmt.Errorf("%s window %d: %s diverges from %s", fig.name, wi, eng.Name, cdnlEngines[0].Name)
				}
			}
			n := float64(len(emissions))
			row.SolveMs = float64(solveT.Microseconds()) / 1000 / n
			row.CPMs = float64(cpT.Microseconds()) / 1000 / n
			rows = append(rows, row)
		}
	}
	return rows, nil
}
