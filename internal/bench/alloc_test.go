package bench

import (
	"fmt"
	"testing"

	"streamrule/internal/asp/parser"
	"streamrule/internal/core"
	"streamrule/internal/rdf"
	"streamrule/internal/reasoner"
	"streamrule/internal/workload"
)

// windowProcessor is the shared surface of reasoner.R and reasoner.PR.
type windowProcessor interface {
	Process(window []rdf.Triple) (*reasoner.Output, error)
}

// TestIncrementalSteadyStateAllocs is the allocation budget of the
// incremental window path: with the fact delta empty (a fully overlapping
// window), processing must not allocate proportionally to the window — the
// pooled index buckets, reused stores, and reused certain-atom scratch keep
// the per-window allocation count small and independent of window size.
func TestIncrementalSteadyStateAllocs(t *testing.T) {
	prog, err := parser.Parse(ProgramP)
	if err != nil {
		t.Fatal(err)
	}
	cfg := reasoner.Config{Program: prog, Inpre: Inpre, OutputPreds: Outputs}
	budgets := []struct {
		size   int
		budget float64
	}{
		{500, 64},
		{4000, 64}, // same budget: allocation must not scale with the window
	}
	for _, tc := range budgets {
		r, err := reasoner.NewR(cfg)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := workload.NewGenerator(int64(tc.size), workload.PaperTraffic())
		if err != nil {
			t.Fatal(err)
		}
		window := gen.Window(tc.size)
		// Warm: seed the incremental state, then reach the steady state.
		for i := 0; i < 3; i++ {
			out, err := r.ProcessAuto(window)
			if err != nil {
				t.Fatal(err)
			}
			if i > 0 && !out.Incremental {
				t.Fatalf("w%d: warmup window %d not incremental", tc.size, i)
			}
		}
		allocs := testing.AllocsPerRun(20, func() {
			if _, err := r.ProcessAuto(window); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > tc.budget {
			t.Errorf("w%d: steady-state incremental window allocates %.0f objects, budget %.0f",
				tc.size, allocs, tc.budget)
		}
	}
}

// BenchmarkWindowAllocs tracks the allocation footprint of the full
// Convert -> Ground -> Solve window path, the metric the interned-atom-ID
// refactor targets: with stores, indexes, and answer sets keyed by dense IDs
// (and the interning table warm from prior windows), the steady-state window
// should allocate an order of magnitude less than the string-keyed engine
// did. Run with -benchmem, or rely on the ReportAllocs here, and compare
// allocs/op across revisions.
func BenchmarkWindowAllocs(b *testing.B) {
	prog, err := parser.Parse(ProgramP)
	if err != nil {
		b.Fatal(err)
	}
	cfg := reasoner.Config{Program: prog, Inpre: Inpre, OutputPreds: Outputs}

	newR := func(b *testing.B) windowProcessor {
		r, err := reasoner.NewR(cfg)
		if err != nil {
			b.Fatal(err)
		}
		return r
	}
	newDep := func(b *testing.B) windowProcessor {
		a, err := core.Analyze(prog, Inpre, 1.0)
		if err != nil {
			b.Fatal(err)
		}
		pr, err := reasoner.NewPR(cfg, reasoner.NewPlanPartitioner(a.Plan))
		if err != nil {
			b.Fatal(err)
		}
		return pr
	}

	for _, v := range []struct {
		name  string
		build func(b *testing.B) windowProcessor
	}{
		{"R", newR},
		{"PR_Dep", newDep},
	} {
		for _, size := range []int{1000, 5000} {
			b.Run(fmt.Sprintf("%s/w%d", v.name, size), func(b *testing.B) {
				b.ReportAllocs()
				gen, err := workload.NewGenerator(int64(size), workload.PaperTraffic())
				if err != nil {
					b.Fatal(err)
				}
				window := gen.Window(size)
				sys := v.build(b)
				// Warm the interning table and scratch stores: steady-state
				// windows, not the first ever seen, are the hot path.
				if _, err := sys.Process(window); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := sys.Process(window); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
