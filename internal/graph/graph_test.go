package graph

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestDirectedBasics(t *testing.T) {
	g := NewDirected()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.AddNode("d")
	if !g.HasEdge("a", "b") || g.HasEdge("b", "a") {
		t.Error("edge direction wrong")
	}
	if !g.HasNode("d") || g.HasNode("e") {
		t.Error("node membership wrong")
	}
	if got := g.Succ("a"); len(got) != 1 || got[0] != "b" {
		t.Errorf("Succ(a) = %v", got)
	}
	if got := g.Pred("c"); len(got) != 1 || got[0] != "b" {
		t.Errorf("Pred(c) = %v", got)
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
	// Duplicate edges are deduplicated.
	g.AddEdge("a", "b")
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges after dup = %d", g.NumEdges())
	}
}

func TestReachable(t *testing.T) {
	g := NewDirected()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.AddEdge("c", "a") // cycle
	g.AddEdge("x", "y")
	r := g.Reachable("a")
	for _, n := range []string{"a", "b", "c"} {
		if !r[n] {
			t.Errorf("%s should be reachable from a", n)
		}
	}
	if r["x"] || r["y"] {
		t.Error("x,y should not be reachable from a")
	}
	if len(g.Reachable("zzz")) != 0 {
		t.Error("reachable from non-node should be empty")
	}
}

func TestSCCsSimple(t *testing.T) {
	g := NewDirected()
	// Two cycles joined by a bridge: {a,b} -> {c,d}, plus isolated e.
	g.AddEdge("a", "b")
	g.AddEdge("b", "a")
	g.AddEdge("b", "c")
	g.AddEdge("c", "d")
	g.AddEdge("d", "c")
	g.AddNode("e")
	comps := g.SCCs()
	if len(comps) != 3 {
		t.Fatalf("got %d components: %v", len(comps), comps)
	}
	pos := make(map[string]int)
	for i, c := range comps {
		for _, n := range c {
			pos[n] = i
		}
	}
	if pos["a"] != pos["b"] || pos["c"] != pos["d"] || pos["a"] == pos["c"] {
		t.Errorf("component assignment wrong: %v", comps)
	}
	// Dependencies first: {c,d} (the sink of the condensation edge b->c)
	// must appear before {a,b}.
	if pos["c"] > pos["a"] {
		t.Errorf("expected {c,d} before {a,b}: %v", comps)
	}
}

func TestSCCsSelfLoopAndChain(t *testing.T) {
	g := NewDirected()
	g.AddEdge("a", "a")
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	comps := g.SCCs()
	if len(comps) != 3 {
		t.Fatalf("got %v", comps)
	}
	// Chain order: c, then b, then a.
	if comps[0][0] != "c" || comps[1][0] != "b" || comps[2][0] != "a" {
		t.Errorf("order = %v", comps)
	}
}

// naiveSCC computes SCCs by pairwise mutual reachability.
func naiveSCC(g *Directed) map[string]string {
	reach := make(map[string]map[string]bool)
	for _, n := range g.Nodes() {
		reach[n] = g.Reachable(n)
	}
	rep := make(map[string]string)
	for _, n := range g.Nodes() {
		best := n
		for _, m := range g.Nodes() {
			if reach[n][m] && reach[m][n] && m < best {
				best = m
			}
		}
		rep[n] = best
	}
	return rep
}

func TestQuickSCCAgainstNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewDirected()
		n := 2 + rng.Intn(9)
		names := make([]string, n)
		for i := range names {
			names[i] = string(rune('a' + i))
			g.AddNode(names[i])
		}
		edges := rng.Intn(3 * n)
		for i := 0; i < edges; i++ {
			g.AddEdge(names[rng.Intn(n)], names[rng.Intn(n)])
		}
		want := naiveSCC(g)
		got := make(map[string]string)
		for _, comp := range g.SCCs() {
			for _, m := range comp {
				got[m] = comp[0]
			}
		}
		for _, node := range g.Nodes() {
			if got[node] != want[node] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: SCC output order is a valid reverse-topological order of the
// condensation (every inter-component edge points to an earlier component).
func TestQuickSCCTopoOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewDirected()
		n := 2 + rng.Intn(10)
		for i := 0; i < 2*n; i++ {
			a := string(rune('a' + rng.Intn(n)))
			b := string(rune('a' + rng.Intn(n)))
			g.AddEdge(a, b)
		}
		pos := make(map[string]int)
		for i, comp := range g.SCCs() {
			for _, m := range comp {
				pos[m] = i
			}
		}
		for _, a := range g.Nodes() {
			for _, b := range g.Succ(a) {
				if pos[a] < pos[b] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUndirectedBasics(t *testing.T) {
	g := NewUndirected()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.AddEdge("t", "t") // self-loop
	g.AddNode("z")
	if !g.HasEdge("a", "b") || !g.HasEdge("b", "a") {
		t.Error("undirected edge must be symmetric")
	}
	if !g.SelfLoop("t") || g.SelfLoop("a") {
		t.Error("self-loop bookkeeping wrong")
	}
	if !g.HasEdge("t", "t") {
		t.Error("HasEdge must see self-loops")
	}
	if g.NumEdges() != 3 {
		t.Errorf("NumEdges = %d, want 3", g.NumEdges())
	}
	if d := g.Degree("b"); d != 2 {
		t.Errorf("Degree(b) = %d", d)
	}
	if d := g.Degree("t"); d != 1 {
		t.Errorf("Degree(t) = %d", d)
	}
	edges := g.Edges()
	want := [][2]string{{"a", "b"}, {"b", "c"}, {"t", "t"}}
	if len(edges) != len(want) {
		t.Fatalf("Edges = %v", edges)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("Edges = %v, want %v", edges, want)
		}
	}
}

func TestConnectedComponents(t *testing.T) {
	g := NewUndirected()
	g.AddEdge("average_speed", "car_number")
	g.AddEdge("average_speed", "traffic_light")
	g.AddEdge("car_number", "traffic_light")
	g.AddEdge("car_in_smoke", "car_speed")
	g.AddEdge("car_in_smoke", "car_location")
	g.AddEdge("car_speed", "car_location")
	comps := g.ConnectedComponents()
	if len(comps) != 2 {
		t.Fatalf("got %d components", len(comps))
	}
	if g.IsConnected() {
		t.Error("graph should not be connected")
	}
	g.AddEdge("car_number", "car_in_smoke")
	if !g.IsConnected() {
		t.Error("graph should now be connected")
	}
}

func TestSubgraph(t *testing.T) {
	g := NewUndirected()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.AddEdge("a", "a")
	sub := g.Subgraph(map[string]bool{"a": true, "b": true})
	if !sub.HasEdge("a", "b") || sub.HasNode("c") {
		t.Error("subgraph wrong")
	}
	if !sub.SelfLoop("a") {
		t.Error("subgraph must preserve self-loops")
	}
	if sub.NumEdges() != 2 {
		t.Errorf("NumEdges = %d", sub.NumEdges())
	}
}

// Property: components partition the node set.
func TestQuickComponentsPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewUndirected()
		n := 1 + rng.Intn(12)
		for i := 0; i < n; i++ {
			g.AddNode(string(rune('a' + i)))
		}
		for i := 0; i < 2*n; i++ {
			g.AddEdge(string(rune('a'+rng.Intn(n))), string(rune('a'+rng.Intn(n))))
		}
		var all []string
		for _, c := range g.ConnectedComponents() {
			all = append(all, c...)
		}
		sort.Strings(all)
		nodes := g.Nodes()
		if len(all) != len(nodes) {
			return false
		}
		for i := range nodes {
			if all[i] != nodes[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: two nodes are in the same component iff connected by some path;
// verify against a union-find oracle.
func TestQuickComponentsAgainstUnionFind(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewUndirected()
		n := 2 + rng.Intn(10)
		parent := make(map[string]string)
		var find func(string) string
		find = func(x string) string {
			if parent[x] == x {
				return x
			}
			parent[x] = find(parent[x])
			return parent[x]
		}
		for i := 0; i < n; i++ {
			name := string(rune('a' + i))
			g.AddNode(name)
			parent[name] = name
		}
		for i := 0; i < 2*n; i++ {
			a := string(rune('a' + rng.Intn(n)))
			b := string(rune('a' + rng.Intn(n)))
			g.AddEdge(a, b)
			parent[find(a)] = find(b)
		}
		comp := make(map[string]int)
		for i, c := range g.ConnectedComponents() {
			for _, m := range c {
				comp[m] = i
			}
		}
		for _, a := range g.Nodes() {
			for _, b := range g.Nodes() {
				if (find(a) == find(b)) != (comp[a] == comp[b]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
