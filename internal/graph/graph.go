// Package graph provides the small set of graph algorithms the reproduction
// needs: directed graphs with Tarjan strongly-connected components and
// condensation topological order (used by the grounder), and undirected
// graphs with connected components and self-loops (used by the input
// dependency analysis). Nodes are strings; edge sets are deduplicated.
package graph

import "sort"

// Directed is a directed graph over string nodes. The zero value is not
// ready to use; call NewDirected.
type Directed struct {
	nodes map[string]bool
	succ  map[string]map[string]bool
	pred  map[string]map[string]bool
}

// NewDirected returns an empty directed graph.
func NewDirected() *Directed {
	return &Directed{
		nodes: make(map[string]bool),
		succ:  make(map[string]map[string]bool),
		pred:  make(map[string]map[string]bool),
	}
}

// AddNode inserts a node (no-op if present).
func (g *Directed) AddNode(n string) { g.nodes[n] = true }

// AddEdge inserts the edge from -> to, adding both endpoints.
func (g *Directed) AddEdge(from, to string) {
	g.AddNode(from)
	g.AddNode(to)
	if g.succ[from] == nil {
		g.succ[from] = make(map[string]bool)
	}
	g.succ[from][to] = true
	if g.pred[to] == nil {
		g.pred[to] = make(map[string]bool)
	}
	g.pred[to][from] = true
}

// HasNode reports node membership.
func (g *Directed) HasNode(n string) bool { return g.nodes[n] }

// HasEdge reports edge membership.
func (g *Directed) HasEdge(from, to string) bool { return g.succ[from][to] }

// Nodes returns the sorted node list.
func (g *Directed) Nodes() []string { return sortedSet(g.nodes) }

// Succ returns the sorted successors of n.
func (g *Directed) Succ(n string) []string { return sortedSet(g.succ[n]) }

// Pred returns the sorted predecessors of n.
func (g *Directed) Pred(n string) []string { return sortedSet(g.pred[n]) }

// NumEdges returns the number of directed edges.
func (g *Directed) NumEdges() int {
	n := 0
	for _, s := range g.succ {
		n += len(s)
	}
	return n
}

// Reachable returns the set of nodes reachable from start by directed edges,
// including start itself (if it is a node of the graph).
func (g *Directed) Reachable(start string) map[string]bool {
	out := make(map[string]bool)
	if !g.nodes[start] {
		return out
	}
	stack := []string{start}
	out[start] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for m := range g.succ[n] {
			if !out[m] {
				out[m] = true
				stack = append(stack, m)
			}
		}
	}
	return out
}

// SCCs computes the strongly connected components of the graph using
// Tarjan's algorithm. Components are returned in reverse topological order
// of the condensation: every edge between distinct components goes from a
// later component to an earlier one. Node order inside each component is
// sorted; the traversal itself is order-independent.
func (g *Directed) SCCs() [][]string {
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var comps [][]string
	next := 0

	type frame struct {
		node  string
		succs []string
		i     int
	}

	var visit func(root string)
	visit = func(root string) {
		frames := []frame{{node: root, succs: g.Succ(root)}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.i < len(f.succs) {
				w := f.succs[f.i]
				f.i++
				if _, seen := index[w]; !seen {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{node: w, succs: g.Succ(w)})
				} else if onStack[w] {
					if index[w] < low[f.node] {
						low[f.node] = index[w]
					}
				}
				continue
			}
			// Pop the frame.
			v := f.node
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[v] < low[parent.node] {
					low[parent.node] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []string
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sort.Strings(comp)
				comps = append(comps, comp)
			}
		}
	}

	for _, n := range g.Nodes() {
		if _, seen := index[n]; !seen {
			visit(n)
		}
	}
	return comps
}

// TopoComponents returns the SCCs in topological order of the condensation:
// every edge between distinct components goes from an earlier component to a
// later one. With edges read as "source must be evaluated before target"
// (body predicate -> head predicate), this is the bottom-up evaluation order
// a grounder wants.
func (g *Directed) TopoComponents() [][]string {
	comps := g.SCCs()
	for i, j := 0, len(comps)-1; i < j; i, j = i+1, j-1 {
		comps[i], comps[j] = comps[j], comps[i]
	}
	return comps
}

// Undirected is an undirected graph over string nodes; self-loops are
// allowed and reported by SelfLoop.
type Undirected struct {
	nodes map[string]bool
	adj   map[string]map[string]bool
	loops map[string]bool
}

// NewUndirected returns an empty undirected graph.
func NewUndirected() *Undirected {
	return &Undirected{
		nodes: make(map[string]bool),
		adj:   make(map[string]map[string]bool),
		loops: make(map[string]bool),
	}
}

// AddNode inserts a node (no-op if present).
func (g *Undirected) AddNode(n string) { g.nodes[n] = true }

// AddEdge inserts the undirected edge {a,b}; a == b records a self-loop.
func (g *Undirected) AddEdge(a, b string) {
	g.AddNode(a)
	g.AddNode(b)
	if a == b {
		g.loops[a] = true
		return
	}
	if g.adj[a] == nil {
		g.adj[a] = make(map[string]bool)
	}
	g.adj[a][b] = true
	if g.adj[b] == nil {
		g.adj[b] = make(map[string]bool)
	}
	g.adj[b][a] = true
}

// HasNode reports node membership.
func (g *Undirected) HasNode(n string) bool { return g.nodes[n] }

// HasEdge reports whether {a,b} is an edge (or a recorded self-loop when
// a == b).
func (g *Undirected) HasEdge(a, b string) bool {
	if a == b {
		return g.loops[a]
	}
	return g.adj[a][b]
}

// SelfLoop reports whether n has a self-loop.
func (g *Undirected) SelfLoop(n string) bool { return g.loops[n] }

// Nodes returns the sorted node list.
func (g *Undirected) Nodes() []string { return sortedSet(g.nodes) }

// Neighbors returns the sorted neighbors of n (excluding n itself).
func (g *Undirected) Neighbors(n string) []string { return sortedSet(g.adj[n]) }

// Degree returns the number of distinct neighbors of n (self-loops add one).
func (g *Undirected) Degree(n string) int {
	d := len(g.adj[n])
	if g.loops[n] {
		d++
	}
	return d
}

// NumEdges returns the number of undirected edges, counting self-loops.
func (g *Undirected) NumEdges() int {
	n := 0
	for _, s := range g.adj {
		n += len(s)
	}
	return n/2 + len(g.loops)
}

// Edges returns all undirected edges as sorted [2]string pairs with
// pair[0] <= pair[1]; self-loops appear as {n,n}.
func (g *Undirected) Edges() [][2]string {
	var out [][2]string
	for a, s := range g.adj {
		for b := range s {
			if a <= b {
				out = append(out, [2]string{a, b})
			}
		}
	}
	for n := range g.loops {
		out = append(out, [2]string{n, n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// ConnectedComponents returns the connected components, each sorted, ordered
// by their smallest node.
func (g *Undirected) ConnectedComponents() [][]string {
	seen := make(map[string]bool)
	var comps [][]string
	for _, start := range g.Nodes() {
		if seen[start] {
			continue
		}
		var comp []string
		stack := []string{start}
		seen[start] = true
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, n)
			for m := range g.adj[n] {
				if !seen[m] {
					seen[m] = true
					stack = append(stack, m)
				}
			}
		}
		sort.Strings(comp)
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	return comps
}

// IsConnected reports whether the graph has at most one connected component.
func (g *Undirected) IsConnected() bool {
	return len(g.ConnectedComponents()) <= 1
}

// Subgraph returns the induced subgraph on the given node set, preserving
// self-loops.
func (g *Undirected) Subgraph(nodes map[string]bool) *Undirected {
	sub := NewUndirected()
	for n := range nodes {
		if g.nodes[n] {
			sub.AddNode(n)
			if g.loops[n] {
				sub.AddEdge(n, n)
			}
		}
	}
	for a := range nodes {
		for b := range g.adj[a] {
			if nodes[b] && a < b {
				sub.AddEdge(a, b)
			}
		}
	}
	return sub
}

func sortedSet(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
