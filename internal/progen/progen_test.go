package progen

import (
	"math/rand"
	"testing"

	"streamrule/internal/asp/ground"
	"streamrule/internal/asp/intern"
	"streamrule/internal/asp/parser"
	"streamrule/internal/asp/solve"
	"streamrule/internal/dfp"
)

// Every generated program must parse, be safe, and respect the requested
// eligibility for incremental grounding.
func TestGeneratedProgramsParseAndClassify(t *testing.T) {
	cfgs := []struct {
		name     string
		cfg      Config
		eligible bool
	}{
		{"default", Config{}, true},
		{"recursive", Config{Recursion: true}, true},
		{"constraints", Config{Derived: 4, Constraints: true}, true},
		{"ineligible", Config{Ineligible: true}, false},
		{"residual", Config{Residual: true}, false},
		{"residual-constraints", Config{Residual: true, Constraints: true}, false},
		{"disjunctive", Config{Disjunctive: true}, false},
	}
	for _, tc := range cfgs {
		for seed := int64(0); seed < 20; seed++ {
			rnd := rand.New(rand.NewSource(seed))
			p := New(rnd, tc.cfg)
			prog, err := parser.Parse(p.Src)
			if err != nil {
				t.Fatalf("%s seed %d: parse: %v\n%s", tc.name, seed, err, p.Src)
			}
			inst, err := ground.NewInstantiator(prog, ground.Options{Intern: intern.NewTable()})
			if err != nil {
				t.Fatalf("%s seed %d: instantiator: %v\n%s", tc.name, seed, err, p.Src)
			}
			if got := inst.SupportsIncremental(); got != tc.eligible {
				t.Errorf("%s seed %d: SupportsIncremental = %v, want %v\n%s", tc.name, seed, got, tc.eligible, p.Src)
			}
		}
	}
}

// Residual programs must leave rules for the solver (no fast path) and
// have exactly two answer sets — the free even loop's two branches — no
// matter what the stream contains. That bound is what lets differential
// harnesses compare full enumerations, even through a partitioned
// reasoner's combination cap.
func TestResidualProgramsHaveTwoAnswerSets(t *testing.T) {
	cfg := Config{Residual: true}
	for seed := int64(0); seed < 10; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		p := New(rnd, cfg)
		prog, err := parser.Parse(p.Src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v\n%s", seed, err, p.Src)
		}
		tab := intern.NewTable()
		inst, err := ground.NewInstantiator(prog, ground.Options{Intern: tab})
		if err != nil {
			t.Fatalf("seed %d: instantiator: %v", seed, err)
		}
		window := p.Stream(rnd, cfg, 80)
		ids, _ := dfp.InternFacts(tab, window, dfp.Arities(p.Arities), nil)
		gp, err := inst.Ground(ids)
		if err != nil {
			t.Fatalf("seed %d: ground: %v", seed, err)
		}
		if len(gp.RuleIDs) == 0 {
			t.Fatalf("seed %d: residual program grounded away (no residual rules)\n%s", seed, p.Src)
		}
		res, err := solve.Solve(gp, solve.Options{})
		if err != nil {
			t.Fatalf("seed %d: solve: %v", seed, err)
		}
		if res.Stats.FastPath {
			t.Errorf("seed %d: residual program took the fast path", seed)
		}
		if len(res.Models) != 2 {
			t.Errorf("seed %d: %d answer sets, want exactly 2\n%s", seed, len(res.Models), p.Src)
		}
	}
}

func TestStreamCoversInputs(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	cfg := Config{UnaryInputs: 2, BinaryInputs: 2}
	p := New(rnd, cfg)
	triples := p.Stream(rnd, cfg, 500)
	if len(triples) != 500 {
		t.Fatalf("stream length = %d", len(triples))
	}
	seen := map[string]bool{}
	for _, tr := range triples {
		if p.Arities[tr.P] == 0 {
			t.Fatalf("triple predicate %q is not an input predicate", tr.P)
		}
		seen[tr.P] = true
	}
	for _, pred := range p.Inpre {
		if !seen[pred] {
			t.Errorf("input predicate %s never appears in a 500-item stream", pred)
		}
	}
}

// StreamFresh must mint subjects that never recur across calls (the
// unbounded-vocabulary property the eviction machinery is tested against)
// while keeping a recurring share so derivations still fire.
func TestStreamFreshMintsUniqueConstants(t *testing.T) {
	rnd := rand.New(rand.NewSource(2))
	cfg := Config{UnaryInputs: 1, BinaryInputs: 1, Fresh: 0.6}
	p := New(rnd, cfg)
	seq := 0
	seenFresh := map[string]bool{}
	fresh, recurring := 0, 0
	for call := 0; call < 10; call++ {
		for _, tr := range p.StreamFresh(rnd, cfg, 100, &seq) {
			if len(tr.S) > 0 && tr.S[0] == 'u' {
				if seenFresh[tr.S] {
					t.Fatalf("fresh constant %s recurred", tr.S)
				}
				seenFresh[tr.S] = true
				fresh++
			} else {
				recurring++
			}
		}
	}
	if fresh != seq {
		t.Errorf("minted %d fresh constants but seq advanced to %d", fresh, seq)
	}
	if fresh == 0 || recurring == 0 {
		t.Errorf("stream should mix fresh (%d) and recurring (%d) subjects", fresh, recurring)
	}
	if got := float64(fresh) / float64(fresh+recurring); got < 0.4 || got > 0.8 {
		t.Errorf("fresh share = %.2f, want ≈ 0.6", got)
	}
}
