// Package progen generates random-but-safe logic programs and matching
// triple streams. It backs the differential test harnesses that compare
// incremental window processing against from-scratch oracles, and is meant
// to be reused by future property tests: generated programs are always safe
// (every head/negated/compared variable is bound by a positive body
// literal), cover stratified negation, comparisons, positive recursion, and
// constraints, and can optionally include constructs that are ineligible for
// incremental grounding (choice rules, unstratified negation) to exercise
// fallback paths.
package progen

import (
	"fmt"
	"math/rand"
	"strings"

	"streamrule/internal/rdf"
)

// Config bounds the shape of generated programs.
type Config struct {
	// UnaryInputs / BinaryInputs are the input predicate counts (at least 1
	// each is forced). Binary inputs alternate symbolic and numeric objects.
	UnaryInputs  int
	BinaryInputs int
	// Derived is the number of derived predicates (default 4).
	Derived int
	// Consts is the size of the constant universe (default 6).
	Consts int
	// NumRange bounds numeric objects (default 20).
	NumRange int
	// Recursion adds a transitive-closure component over a binary input.
	Recursion bool
	// Constraints adds integrity constraints over derived predicates.
	Constraints bool
	// Ineligible adds a construct (choice rule or unstratified loop) that
	// forces from-scratch grounding, exercising fallback paths.
	Ineligible bool
	// Residual appends a residual component that survives grounding and
	// exercises the solver's search machinery end to end: per-predicate
	// even negation loops pinned deterministic by integrity constraints, a
	// tight 1{..}1 choice the bounds propagation must resolve, and one free
	// propositional even loop. Unlike Ineligible (one random construct,
	// fallback-focused), the residual component scales with the base
	// program while keeping the answer-set count at exactly 2, so
	// differential harnesses can compare full enumerations cheaply — even
	// through a partitioned reasoner's combination cap.
	Residual bool
	// Disjunctive appends a genuinely disjunctive rule (unpinned head
	// disjunction over a unary input), whose answer sets require the
	// solver's minimal-model search. The answer-set count grows as 2^k with
	// the distinct matching subjects, so pair it with a small constant
	// universe and compare full enumerations only on unpartitioned
	// reasoners.
	Disjunctive bool
	// Fresh is the share (0..1] of StreamFresh triples whose subject is a
	// globally unique, never-repeating constant — the "timestamped" stream
	// shape that grows an interning table without bound. 0 selects the
	// default of 0.5 (half fresh, half recurring, so derived predicates
	// still fire across windows).
	Fresh float64
}

func (c *Config) fill() {
	if c.UnaryInputs < 1 {
		c.UnaryInputs = 1
	}
	if c.BinaryInputs < 1 {
		c.BinaryInputs = 1
	}
	if c.Derived <= 0 {
		c.Derived = 4
	}
	if c.Consts <= 0 {
		c.Consts = 6
	}
	if c.NumRange <= 0 {
		c.NumRange = 20
	}
}

// Program is a generated logic program with its input signature.
type Program struct {
	Src   string
	Inpre []string
	// Arities maps each input predicate to 1 or 2.
	Arities map[string]int
	// numeric records binary input predicates whose objects are numbers.
	numeric map[string]bool
}

// New generates a random program. The same (rand state, config) pair always
// yields the same program.
func New(r *rand.Rand, cfg Config) Program {
	cfg.fill()
	p := Program{Arities: map[string]int{}, numeric: map[string]bool{}}
	var uin, bin []string
	for i := 0; i < cfg.UnaryInputs; i++ {
		name := fmt.Sprintf("iu%d", i)
		uin = append(uin, name)
		p.Inpre = append(p.Inpre, name)
		p.Arities[name] = 1
	}
	for i := 0; i < cfg.BinaryInputs; i++ {
		name := fmt.Sprintf("ib%d", i)
		bin = append(bin, name)
		p.Inpre = append(p.Inpre, name)
		p.Arities[name] = 2
		if i%2 == 0 {
			p.numeric[name] = true
		}
	}

	var b strings.Builder
	// Derived predicates are generated in layers: the body of a rule for
	// d<i> draws positively on inputs and lower layers, and negatively on
	// strictly lower layers only, so the program is stratified by
	// construction.
	var derived []string
	for i := 0; i < cfg.Derived; i++ {
		name := fmt.Sprintf("d%d", i)
		nRules := 1 + r.Intn(2)
		for k := 0; k < nRules; k++ {
			var body []string
			// One binder: a literal that binds X.
			switch {
			case len(derived) > 0 && r.Intn(3) == 0:
				body = append(body, derived[r.Intn(len(derived))]+"(X)")
			case r.Intn(2) == 0:
				body = append(body, uin[r.Intn(len(uin))]+"(X)")
			default:
				ib := bin[r.Intn(len(bin))]
				body = append(body, ib+"(X, Y)")
				if p.numeric[ib] && r.Intn(2) == 0 {
					op := []string{"<", ">", "<=", ">="}[r.Intn(4)]
					body = append(body, fmt.Sprintf("Y %s %d", op, r.Intn(cfg.NumRange)))
				}
			}
			// Optional extra positive literal over X.
			if r.Intn(2) == 0 {
				if len(derived) > 0 && r.Intn(2) == 0 {
					body = append(body, derived[r.Intn(len(derived))]+"(X)")
				} else {
					body = append(body, uin[r.Intn(len(uin))]+"(X)")
				}
			}
			// Optional stratified negation on a strictly lower layer.
			if r.Intn(2) == 0 {
				if len(derived) > 0 && r.Intn(2) == 0 {
					body = append(body, "not "+derived[r.Intn(len(derived))]+"(X)")
				} else {
					body = append(body, "not "+uin[r.Intn(len(uin))]+"(X)")
				}
			}
			fmt.Fprintf(&b, "%s(X) :- %s.\n", name, strings.Join(body, ", "))
		}
		derived = append(derived, name)
	}

	if cfg.Recursion {
		e := bin[r.Intn(len(bin))]
		fmt.Fprintf(&b, "reach(X, Y) :- %s(X, Y).\n", e)
		fmt.Fprintf(&b, "reach(X, Z) :- %s(X, Y), reach(Y, Z).\n", e)
		fmt.Fprintf(&b, "looped(X) :- reach(X, X).\n")
		if len(derived) > 0 {
			fmt.Fprintf(&b, "quiet(X) :- %s(X), not looped(X).\n", derived[r.Intn(len(derived))])
		}
	}
	if cfg.Constraints && len(derived) >= 2 {
		a := derived[r.Intn(len(derived))]
		c := derived[r.Intn(len(derived))]
		fmt.Fprintf(&b, ":- %s(X), %s(X), %s(X).\n", a, c, uin[r.Intn(len(uin))])
	}
	if cfg.Ineligible {
		if r.Intn(2) == 0 {
			fmt.Fprintf(&b, "{ pick(X) } :- %s(X).\n", uin[0])
		} else {
			fmt.Fprintf(&b, "flip(X) :- %s(X), not flop(X).\n", uin[0])
			fmt.Fprintf(&b, "flop(X) :- %s(X), not flip(X).\n", uin[0])
		}
	}
	if cfg.Residual {
		bases := []string{uin[r.Intn(len(uin))]}
		if len(derived) > 0 {
			bases = append(bases, derived[r.Intn(len(derived))])
		}
		for k, base := range bases {
			// Even negation loop over base, pinned deterministic by the
			// constraint: propagation alone must conclude keep and refute
			// drop for every base atom.
			fmt.Fprintf(&b, "keep%d(X) :- %s(X), not drop%d(X).\n", k, base, k)
			fmt.Fprintf(&b, "drop%d(X) :- %s(X), not keep%d(X).\n", k, base, k)
			fmt.Fprintf(&b, ":- drop%d(X).\n", k)
		}
		// A tight choice: lower == upper == 1 on a single head, so bounds
		// propagation must pin it rather than search.
		fmt.Fprintf(&b, "1 { act(X) } 1 :- keep0(X).\n")
		// One genuinely free even loop doubles the answer sets (to exactly
		// 2) and gives the search a real branch to take.
		fmt.Fprintf(&b, "night :- not day.\nday :- not night.\n")
		fmt.Fprintf(&b, "audit(X) :- act(X), night.\n")
	}
	if cfg.Disjunctive {
		fmt.Fprintf(&b, "odd(X) | even(X) :- %s(X).\n", uin[r.Intn(len(uin))])
	}
	p.Src = b.String()
	return p
}

// Stream generates n random triples over the program's input predicates,
// with enough repetition (small constant universe) that sliding windows
// retract and re-add the same facts.
func (p Program) Stream(r *rand.Rand, cfg Config, n int) []rdf.Triple {
	return p.stream(r, cfg, n, nil)
}

// StreamFresh generates n triples like Stream, but a cfg.Fresh share of
// subjects are globally unique constants that never recur (timestamps,
// unique event IDs). seq is the fresh-constant counter, advanced in place so
// consecutive calls — e.g. one per generated window — keep minting new
// constants instead of re-using earlier ones. Such streams grow an interning
// table without bound and are the input shape the eviction machinery
// (intern-table rotation) exists for.
func (p Program) StreamFresh(r *rand.Rand, cfg Config, n int, seq *int) []rdf.Triple {
	return p.stream(r, cfg, n, seq)
}

func (p Program) stream(r *rand.Rand, cfg Config, n int, seq *int) []rdf.Triple {
	cfg.fill()
	fresh := cfg.Fresh
	if fresh <= 0 {
		fresh = 0.5
	}
	out := make([]rdf.Triple, 0, n)
	for i := 0; i < n; i++ {
		pred := p.Inpre[r.Intn(len(p.Inpre))]
		var s string
		if seq != nil && r.Float64() < fresh {
			s = fmt.Sprintf("u%d", *seq)
			*seq++
		} else {
			s = fmt.Sprintf("c%d", r.Intn(cfg.Consts))
		}
		o := "true"
		if p.Arities[pred] == 2 {
			if p.numeric[pred] {
				o = fmt.Sprintf("%d", r.Intn(cfg.NumRange))
			} else {
				o = fmt.Sprintf("c%d", r.Intn(cfg.Consts))
			}
		}
		out = append(out, rdf.Triple{S: s, P: pred, O: o})
	}
	return out
}
