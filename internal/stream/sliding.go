package stream

import (
	"time"

	"streamrule/internal/rdf"
)

// SlidingCountWindow emits a window of the last Size items every Step items
// (Step <= Size; Step == Size degenerates to CountWindow). It is the
// count-based sliding window of CQL-style stream processors; StreamRule's
// evaluation uses tumbling windows, but the reasoner is windowing-agnostic.
type SlidingCountWindow struct {
	Size int
	Step int
	buf  []rdf.Triple
	seen int
}

// Add implements Windower.
func (w *SlidingCountWindow) Add(it Item) []rdf.Triple {
	step := w.Step
	if step <= 0 || step > w.Size {
		step = w.Size
	}
	w.buf = append(w.buf, it.Triple)
	if len(w.buf) > w.Size {
		w.buf = w.buf[len(w.buf)-w.Size:]
	}
	w.seen++
	if w.seen >= w.Size && (w.seen-w.Size)%step == 0 {
		out := make([]rdf.Triple, len(w.buf))
		copy(out, w.buf)
		return out
	}
	return nil
}

// Flush implements Windower: the remaining partial content (only when no
// full window was ever emitted over it).
func (w *SlidingCountWindow) Flush() []rdf.Triple {
	if w.seen >= w.Size {
		w.buf = nil
		return nil
	}
	out := w.buf
	w.buf = nil
	return out
}

// SlidingTimeWindow emits, on every arriving item, nothing — and on items
// that cross a Step boundary, the content of the last Span of stream time.
type SlidingTimeWindow struct {
	Span time.Duration
	Step time.Duration
	buf  []Item
	next time.Time
}

// Add implements Windower.
func (w *SlidingTimeWindow) Add(it Item) []rdf.Triple {
	step := w.Step
	if step <= 0 || step > w.Span {
		step = w.Span
	}
	if w.next.IsZero() {
		w.next = it.At.Add(w.Span)
	}
	w.buf = append(w.buf, it)
	// Evict items older than Span relative to the newest.
	cutoff := it.At.Add(-w.Span)
	start := 0
	for start < len(w.buf) && !w.buf[start].At.After(cutoff) {
		start++
	}
	w.buf = w.buf[start:]
	if it.At.Before(w.next) {
		return nil
	}
	w.next = w.next.Add(step)
	out := make([]rdf.Triple, len(w.buf))
	for i, b := range w.buf {
		out[i] = b.Triple
	}
	return out
}

// Flush implements Windower.
func (w *SlidingTimeWindow) Flush() []rdf.Triple {
	if len(w.buf) == 0 {
		return nil
	}
	out := make([]rdf.Triple, len(w.buf))
	for i, b := range w.buf {
		out[i] = b.Triple
	}
	w.buf = nil
	w.next = time.Time{}
	return out
}
