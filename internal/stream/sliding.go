package stream

import (
	"time"

	"streamrule/internal/rdf"
)

// SlidingCountWindow emits a window of the last Size items every Step items
// (Step <= Size; Step == Size degenerates to CountWindow). It is the
// count-based sliding window of CQL-style stream processors.
//
// SlidingCountWindow implements DeltaWindower: from the second emission on,
// each window reports the Step items that entered and the Step items that
// left relative to the previous emission, enabling incremental re-grounding
// downstream (with Step < Size, consecutive windows share Size-Step items).
type SlidingCountWindow struct {
	Size int
	Step int
	buf  []rdf.Triple
	seen int
	// prev is the previously emitted window (the emitted copy, so deltas
	// can alias it); sinceEmit counts items arrived after that emission.
	prev      []rdf.Triple
	sinceEmit int
}

// step returns the effective step (Step clamped into 1..Size).
func (w *SlidingCountWindow) step() int {
	if w.Step <= 0 || w.Step > w.Size {
		return w.Size
	}
	return w.Step
}

// Add implements Windower.
func (w *SlidingCountWindow) Add(it Item) []rdf.Triple {
	if wd := w.AddDelta(it); wd != nil {
		return wd.Window
	}
	return nil
}

// AddDelta implements DeltaWindower. The Added/Retracted slices alias the
// emitted window copies and must not be modified.
func (w *SlidingCountWindow) AddDelta(it Item) *WindowDelta {
	step := w.step()
	w.buf = append(w.buf, it.Triple)
	if len(w.buf) > w.Size {
		w.buf = w.buf[len(w.buf)-w.Size:]
	}
	w.seen++
	w.sinceEmit++
	if w.seen < w.Size || (w.seen-w.Size)%step != 0 {
		return nil
	}
	out := make([]rdf.Triple, len(w.buf))
	copy(out, w.buf)
	wd := &WindowDelta{Window: out}
	if w.prev != nil {
		// The previous emission covered items (seen-step-Size, seen-step];
		// this one covers (seen-Size, seen]. The delta is exact: step items
		// in, the step oldest items of the previous window out.
		wd.Incremental = true
		wd.Added = out[len(out)-step:]
		wd.Retracted = w.prev[:step]
	} else {
		wd.Added = out
	}
	w.prev = out
	w.sinceEmit = 0
	return wd
}

// Flush implements Windower: it returns the items that arrived after the
// last emitted window (the tail no emission ever covered), or the whole
// partial buffer when no full window was ever emitted, and resets the
// window state. Flushing never re-delivers items already covered by an
// emitted window.
func (w *SlidingCountWindow) Flush() []rdf.Triple {
	var out []rdf.Triple
	switch {
	case w.seen == 0:
		out = nil
	case w.prev == nil:
		out = w.buf
	case w.sinceEmit > 0:
		// The tail items all sit at the end of buf: sinceEmit < Step <= Size.
		tail := w.buf[len(w.buf)-w.sinceEmit:]
		out = make([]rdf.Triple, len(tail))
		copy(out, tail)
	}
	w.buf = nil
	w.prev = nil
	w.seen = 0
	w.sinceEmit = 0
	return out
}

// SlidingTimeWindow emits, on every arriving item, nothing — and on items
// that cross a Step boundary, the content of the last Span of stream time.
//
// SlidingTimeWindow implements DeltaWindower: consecutive emissions report
// the items that entered and left the span, computed from arrival indexes
// (items that both arrived and expired between two emissions appear in
// neither delta nor window, keeping the delta exact).
type SlidingTimeWindow struct {
	Span time.Duration
	Step time.Duration
	buf  []Item
	next time.Time
	// arrived counts all items ever offered; prevStart is the arrival index
	// of prev[0].
	arrived   int
	prev      []rdf.Triple
	prevStart int
}

// Add implements Windower.
func (w *SlidingTimeWindow) Add(it Item) []rdf.Triple {
	if wd := w.AddDelta(it); wd != nil {
		return wd.Window
	}
	return nil
}

// AddDelta implements DeltaWindower.
func (w *SlidingTimeWindow) AddDelta(it Item) *WindowDelta {
	step := w.Step
	if step <= 0 || step > w.Span {
		step = w.Span
	}
	if w.next.IsZero() {
		w.next = it.At.Add(w.Span)
	}
	w.buf = append(w.buf, it)
	w.arrived++
	// Evict items older than Span relative to the newest.
	cutoff := it.At.Add(-w.Span)
	start := 0
	for start < len(w.buf) && !w.buf[start].At.After(cutoff) {
		start++
	}
	w.buf = w.buf[start:]
	if it.At.Before(w.next) {
		return nil
	}
	w.next = w.next.Add(step)
	out := make([]rdf.Triple, len(w.buf))
	for i, b := range w.buf {
		out[i] = b.Triple
	}
	curStart := w.arrived - len(w.buf)
	wd := &WindowDelta{Window: out}
	if w.prev != nil {
		prevEnd := w.prevStart + len(w.prev) // exclusive arrival index
		wd.Incremental = true
		if n := curStart - w.prevStart; n < len(w.prev) {
			wd.Retracted = w.prev[:n]
		} else {
			wd.Retracted = w.prev
		}
		// prevEnd < arrived always (the triggering item arrived after the
		// previous emission), so some suffix of out is new.
		if from := prevEnd - curStart; from > 0 {
			wd.Added = out[from:]
		} else {
			wd.Added = out
		}
	} else {
		wd.Added = out
	}
	w.prev = out
	w.prevStart = curStart
	return wd
}

// Flush implements Windower: like SlidingCountWindow, it returns only the
// items no emission ever covered — the buffered items that arrived after the
// last emitted window, or the whole buffer when nothing was emitted — and
// resets the window state.
func (w *SlidingTimeWindow) Flush() []rdf.Triple {
	buf := w.buf
	if w.prev != nil {
		prevEnd := w.prevStart + len(w.prev)
		if covered := prevEnd - (w.arrived - len(w.buf)); covered > 0 {
			if covered >= len(buf) {
				buf = nil
			} else {
				buf = buf[covered:]
			}
		}
	}
	var out []rdf.Triple
	if len(buf) > 0 {
		out = make([]rdf.Triple, len(buf))
		for i, b := range buf {
			out[i] = b.Triple
		}
	}
	w.buf = nil
	w.next = time.Time{}
	w.arrived = 0
	w.prev = nil
	w.prevStart = 0
	return out
}
