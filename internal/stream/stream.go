// Package stream provides the stream-processing layer of the pipeline:
// sources of timestamped RDF triples, a pluggable filter standing in for the
// continuous query processor (CQELS in the original StreamRule), and window
// operators that batch the filtered stream into the input windows the
// reasoner processes per computation.
package stream

import (
	"context"
	"time"

	"streamrule/internal/rdf"
)

// Item is a stream element: a triple plus its arrival timestamp.
type Item struct {
	Triple rdf.Triple
	At     time.Time
}

// Source produces stream items on a channel until the context is cancelled
// or the source is exhausted.
type Source interface {
	// Run sends items to out, closing it when done. It returns the first
	// error encountered (context cancellation is not an error).
	Run(ctx context.Context, out chan<- Item) error
}

// SliceSource replays a fixed slice of triples, optionally paced at a fixed
// rate (triples per second; 0 = as fast as possible).
type SliceSource struct {
	Triples []rdf.Triple
	Rate    int
	// Start is the timestamp assigned to the first item; zero means
	// time.Now at Run time.
	Start time.Time
}

// Run implements Source.
func (s *SliceSource) Run(ctx context.Context, out chan<- Item) error {
	defer close(out)
	start := s.Start
	if start.IsZero() {
		start = time.Now()
	}
	var tick <-chan time.Time
	var ticker *time.Ticker
	if s.Rate > 0 {
		ticker = time.NewTicker(time.Second / time.Duration(s.Rate))
		defer ticker.Stop()
		tick = ticker.C
	}
	for i, t := range s.Triples {
		if tick != nil {
			select {
			case <-ctx.Done():
				return nil
			case <-tick:
			}
		}
		item := Item{Triple: t, At: start.Add(time.Duration(i) * time.Millisecond)}
		select {
		case <-ctx.Done():
			return nil
		case out <- item:
		}
	}
	return nil
}

// Filter is the stand-in for the stream query processor: it selects (and may
// rewrite) the semantic data elements forwarded to the reasoning layer. A
// nil Filter forwards everything.
type Filter func(rdf.Triple) (rdf.Triple, bool)

// PredicateFilter keeps only triples whose predicate is in the given set —
// the typical shape of the paper's filtered stream, where every forwarded
// triple belongs to inpre(P).
func PredicateFilter(preds []string) Filter {
	set := make(map[string]bool, len(preds))
	for _, p := range preds {
		set[p] = true
	}
	return func(t rdf.Triple) (rdf.Triple, bool) { return t, set[t.P] }
}

// Windower batches items into windows.
type Windower interface {
	// Add offers an item; a non-nil return is a completed window.
	Add(Item) []rdf.Triple
	// Flush returns the current partial window (possibly empty).
	Flush() []rdf.Triple
}

// WindowDelta is a completed window together with its change relative to the
// previously emitted window. When Incremental is true, the new window equals
// the previous window minus Retracted plus Added (as multisets of triples);
// downstream reasoners can then maintain their grounding incrementally
// instead of reprocessing the full window. The first emission of a stream,
// and emissions of windowers that cannot relate consecutive windows, carry
// Incremental == false with Added == Window.
type WindowDelta struct {
	Window    []rdf.Triple
	Added     []rdf.Triple
	Retracted []rdf.Triple
	// Incremental reports whether Added/Retracted are valid relative to the
	// previous emission.
	Incremental bool
}

// DeltaWindower is implemented by windowers that report per-emission deltas
// (the sliding windows). AddDelta is the delta-aware Add: a non-nil return is
// a completed window with its delta.
type DeltaWindower interface {
	Windower
	AddDelta(Item) *WindowDelta
}

// CountWindow is the tuple-based window of the paper: every Size items form
// one window.
type CountWindow struct {
	Size int
	buf  []rdf.Triple
}

// Add implements Windower.
func (w *CountWindow) Add(it Item) []rdf.Triple {
	w.buf = append(w.buf, it.Triple)
	if w.Size > 0 && len(w.buf) >= w.Size {
		out := w.buf
		w.buf = make([]rdf.Triple, 0, w.Size)
		return out
	}
	return nil
}

// Flush implements Windower.
func (w *CountWindow) Flush() []rdf.Triple {
	out := w.buf
	w.buf = nil
	return out
}

// TimeWindow batches items into fixed, non-overlapping wall-time spans based
// on item timestamps.
type TimeWindow struct {
	Span  time.Duration
	buf   []rdf.Triple
	start time.Time
}

// Add implements Windower.
func (w *TimeWindow) Add(it Item) []rdf.Triple {
	if w.start.IsZero() {
		w.start = it.At
	}
	if it.At.Sub(w.start) >= w.Span && len(w.buf) > 0 {
		out := w.buf
		w.buf = []rdf.Triple{it.Triple}
		w.start = it.At
		return out
	}
	w.buf = append(w.buf, it.Triple)
	return nil
}

// Flush implements Windower.
func (w *TimeWindow) Flush() []rdf.Triple {
	out := w.buf
	w.buf = nil
	w.start = time.Time{}
	return out
}

// Windows runs source -> filter -> windower and invokes handle for every
// completed window (including the final partial window, if non-empty).
// It propagates the source error and stops early if handle returns an error.
func Windows(ctx context.Context, src Source, filter Filter, w Windower, handle func([]rdf.Triple) error) error {
	return WindowsDelta(ctx, src, filter, w, func(wd WindowDelta) error {
		return handle(wd.Window)
	})
}

// WindowsDelta is Windows with delta-aware delivery: when the windower
// implements DeltaWindower, each completed window carries the added/retracted
// triples relative to the previous emission; otherwise every window is
// delivered as a non-incremental delta (Added == Window).
func WindowsDelta(ctx context.Context, src Source, filter Filter, w Windower, handle func(WindowDelta) error) error {
	items := make(chan Item, 1024)
	errc := make(chan error, 1)
	go func() { errc <- src.Run(ctx, items) }()
	dw, _ := w.(DeltaWindower)
	for it := range items {
		if filter != nil {
			t, ok := filter(it.Triple)
			if !ok {
				continue
			}
			it.Triple = t
		}
		var wd *WindowDelta
		if dw != nil {
			wd = dw.AddDelta(it)
		} else if win := w.Add(it); win != nil {
			wd = &WindowDelta{Window: win, Added: win}
		}
		if wd != nil {
			if err := handle(*wd); err != nil {
				// Drain the source to unblock it.
				cancelDrain(items)
				<-errc
				return err
			}
		}
	}
	if err := <-errc; err != nil {
		return err
	}
	if rest := w.Flush(); len(rest) > 0 {
		return handle(WindowDelta{Window: rest, Added: rest})
	}
	return nil
}

func cancelDrain(items <-chan Item) {
	go func() {
		for range items {
		}
	}()
}
