package stream

import (
	"context"
	"fmt"
	"testing"
	"time"

	"streamrule/internal/rdf"
)

func triples(n int) []rdf.Triple {
	out := make([]rdf.Triple, n)
	for i := range out {
		out[i] = rdf.Triple{S: fmt.Sprintf("s%d", i), P: "p", O: "o"}
	}
	return out
}

func TestCountWindow(t *testing.T) {
	w := &CountWindow{Size: 3}
	var windows [][]rdf.Triple
	now := time.Now()
	for i, tr := range triples(7) {
		if win := w.Add(Item{Triple: tr, At: now.Add(time.Duration(i))}); win != nil {
			windows = append(windows, win)
		}
	}
	if len(windows) != 2 {
		t.Fatalf("got %d full windows", len(windows))
	}
	for _, win := range windows {
		if len(win) != 3 {
			t.Errorf("window size = %d", len(win))
		}
	}
	rest := w.Flush()
	if len(rest) != 1 || rest[0].S != "s6" {
		t.Errorf("flush = %v", rest)
	}
	if w.Flush() != nil {
		t.Error("second flush should be empty")
	}
}

func TestTimeWindow(t *testing.T) {
	w := &TimeWindow{Span: 10 * time.Millisecond}
	base := time.Now()
	var wins [][]rdf.Triple
	for i := 0; i < 30; i++ {
		it := Item{Triple: rdf.Triple{S: fmt.Sprintf("s%d", i), P: "p", O: "o"},
			At: base.Add(time.Duration(i) * time.Millisecond)}
		if win := w.Add(it); win != nil {
			wins = append(wins, win)
		}
	}
	if len(wins) != 2 {
		t.Fatalf("got %d windows: %v", len(wins), wins)
	}
	if len(wins[0]) != 10 {
		t.Errorf("first window size = %d, want 10", len(wins[0]))
	}
	if rest := w.Flush(); len(rest) != 10 {
		t.Errorf("flush size = %d", len(rest))
	}
}

func TestSliceSource(t *testing.T) {
	src := &SliceSource{Triples: triples(5)}
	out := make(chan Item, 16)
	if err := src.Run(context.Background(), out); err != nil {
		t.Fatal(err)
	}
	var got []Item
	for it := range out {
		got = append(got, it)
	}
	if len(got) != 5 {
		t.Fatalf("got %d items", len(got))
	}
	if !got[1].At.After(got[0].At) {
		t.Error("timestamps must increase")
	}
}

func TestSliceSourceCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	src := &SliceSource{Triples: triples(1000)}
	out := make(chan Item) // unbuffered: forces the select
	done := make(chan error)
	go func() { done <- src.Run(ctx, out) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("source did not stop on cancellation")
	}
}

func TestPredicateFilter(t *testing.T) {
	f := PredicateFilter([]string{"keep"})
	if _, ok := f(rdf.Triple{P: "keep"}); !ok {
		t.Error("keep predicate filtered out")
	}
	if _, ok := f(rdf.Triple{P: "drop"}); ok {
		t.Error("drop predicate passed")
	}
}

func TestWindowsPipeline(t *testing.T) {
	var in []rdf.Triple
	for i := 0; i < 10; i++ {
		in = append(in, rdf.Triple{S: fmt.Sprintf("s%d", i), P: "keep", O: "o"})
		in = append(in, rdf.Triple{S: fmt.Sprintf("n%d", i), P: "noise", O: "o"})
	}
	src := &SliceSource{Triples: in}
	var windows [][]rdf.Triple
	err := Windows(context.Background(), src, PredicateFilter([]string{"keep"}),
		&CountWindow{Size: 4}, func(w []rdf.Triple) error {
			windows = append(windows, w)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	// 10 kept items -> 2 full windows of 4 + flush of 2.
	if len(windows) != 3 {
		t.Fatalf("got %d windows", len(windows))
	}
	if len(windows[2]) != 2 {
		t.Errorf("final partial window size = %d", len(windows[2]))
	}
	for _, w := range windows {
		for _, tr := range w {
			if tr.P != "keep" {
				t.Errorf("noise triple leaked: %v", tr)
			}
		}
	}
}

func TestWindowsHandlerError(t *testing.T) {
	src := &SliceSource{Triples: triples(100)}
	wantErr := fmt.Errorf("boom")
	calls := 0
	err := Windows(context.Background(), src, nil, &CountWindow{Size: 10},
		func(w []rdf.Triple) error {
			calls++
			return wantErr
		})
	if err != wantErr {
		t.Errorf("err = %v, want %v", err, wantErr)
	}
	if calls != 1 {
		t.Errorf("handler called %d times, want 1", calls)
	}
}
