package stream

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"streamrule/internal/rdf"
)

func feedCount(w Windower, n int) [][]rdf.Triple {
	var wins [][]rdf.Triple
	base := time.Now()
	for i := 0; i < n; i++ {
		it := Item{Triple: rdf.Triple{S: fmt.Sprintf("s%d", i), P: "p", O: "o"},
			At: base.Add(time.Duration(i) * time.Millisecond)}
		if win := w.Add(it); win != nil {
			wins = append(wins, win)
		}
	}
	return wins
}

func TestSlidingCountWindowOverlap(t *testing.T) {
	w := &SlidingCountWindow{Size: 4, Step: 2}
	wins := feedCount(w, 10)
	// Full windows at items 4, 6, 8, 10.
	if len(wins) != 4 {
		t.Fatalf("windows = %d", len(wins))
	}
	for _, win := range wins {
		if len(win) != 4 {
			t.Errorf("window size = %d", len(win))
		}
	}
	// Consecutive windows overlap by Size-Step items.
	if wins[0][2] != wins[1][0] || wins[0][3] != wins[1][1] {
		t.Errorf("windows do not overlap: %v then %v", wins[0], wins[1])
	}
	if w.Flush() != nil {
		t.Error("flush after full windows must be empty")
	}
}

func TestSlidingCountDegeneratesToTumbling(t *testing.T) {
	slide := &SlidingCountWindow{Size: 3, Step: 3}
	tumble := &CountWindow{Size: 3}
	ws := feedCount(slide, 9)
	wt := feedCount(tumble, 9)
	if len(ws) != len(wt) {
		t.Fatalf("%d vs %d windows", len(ws), len(wt))
	}
	for i := range ws {
		if len(ws[i]) != len(wt[i]) {
			t.Fatalf("window %d sizes differ", i)
		}
		for j := range ws[i] {
			if ws[i][j] != wt[i][j] {
				t.Errorf("window %d item %d: %v vs %v", i, j, ws[i][j], wt[i][j])
			}
		}
	}
}

func TestSlidingCountPartialFlush(t *testing.T) {
	w := &SlidingCountWindow{Size: 10, Step: 5}
	wins := feedCount(w, 4)
	if len(wins) != 0 {
		t.Fatalf("no full window expected")
	}
	if rest := w.Flush(); len(rest) != 4 {
		t.Errorf("flush = %d items", len(rest))
	}
}

func TestSlidingTimeWindow(t *testing.T) {
	w := &SlidingTimeWindow{Span: 10 * time.Millisecond, Step: 5 * time.Millisecond}
	base := time.Now()
	var wins [][]rdf.Triple
	for i := 0; i < 30; i++ {
		it := Item{Triple: rdf.Triple{S: fmt.Sprintf("s%d", i), P: "p", O: "o"},
			At: base.Add(time.Duration(i) * time.Millisecond)}
		if win := w.Add(it); win != nil {
			wins = append(wins, win)
		}
	}
	if len(wins) < 3 {
		t.Fatalf("windows = %d", len(wins))
	}
	// Every emitted window covers at most Span of stream time: <= 11 items
	// at 1 item/ms (cutoff is exclusive at the old end).
	for _, win := range wins {
		if len(win) > 11 {
			t.Errorf("window too wide: %d items", len(win))
		}
	}
}

// applyDelta replays a WindowDelta onto a multiset of triples and reports
// whether the result matches the emitted window.
func applyDelta(t *testing.T, cur map[rdf.Triple]int, wd WindowDelta) {
	t.Helper()
	for _, tr := range wd.Retracted {
		cur[tr]--
		if cur[tr] < 0 {
			t.Fatalf("retracted triple %v not present", tr)
		}
		if cur[tr] == 0 {
			delete(cur, tr)
		}
	}
	for _, tr := range wd.Added {
		cur[tr]++
	}
	want := map[rdf.Triple]int{}
	for _, tr := range wd.Window {
		want[tr]++
	}
	if len(cur) != len(want) {
		t.Fatalf("delta-maintained window has %d distinct triples, emitted %d", len(cur), len(want))
	}
	for tr, n := range want {
		if cur[tr] != n {
			t.Fatalf("triple %v: delta count %d, window count %d", tr, cur[tr], n)
		}
	}
}

// Property: replaying the reported deltas reconstructs every emitted window
// exactly, for all Step/Size combinations.
func TestSlidingCountWindowDeltas(t *testing.T) {
	for size := 1; size <= 6; size++ {
		for step := 1; step <= size; step++ {
			w := &SlidingCountWindow{Size: size, Step: step}
			cur := map[rdf.Triple]int{}
			base := time.Unix(0, 0)
			emitted := 0
			for i := 0; i < 40; i++ {
				// Repeating subjects exercise multiset deltas.
				it := Item{Triple: rdf.Triple{S: fmt.Sprintf("s%d", i%7), P: "p", O: "o"},
					At: base.Add(time.Duration(i))}
				wd := w.AddDelta(it)
				if wd == nil {
					continue
				}
				emitted++
				if emitted == 1 {
					if wd.Incremental {
						t.Fatal("first emission must not be incremental")
					}
				} else {
					if !wd.Incremental {
						t.Fatalf("size=%d step=%d: emission %d not incremental", size, step, emitted)
					}
					if len(wd.Added) != step || len(wd.Retracted) != step {
						t.Fatalf("size=%d step=%d: |added|=%d |retracted|=%d, want %d",
							size, step, len(wd.Added), len(wd.Retracted), step)
					}
				}
				applyDelta(t, cur, *wd)
			}
			if emitted == 0 && size <= 40 {
				t.Fatalf("size=%d step=%d: no emissions", size, step)
			}
		}
	}
}

func TestSlidingTimeWindowDeltas(t *testing.T) {
	w := &SlidingTimeWindow{Span: 10 * time.Millisecond, Step: 3 * time.Millisecond}
	cur := map[rdf.Triple]int{}
	base := time.Unix(0, 0)
	emitted := 0
	for i := 0; i < 60; i++ {
		it := Item{Triple: rdf.Triple{S: fmt.Sprintf("s%d", i%5), P: "p", O: "o"},
			At: base.Add(time.Duration(i) * time.Millisecond)}
		wd := w.AddDelta(it)
		if wd == nil {
			continue
		}
		emitted++
		if emitted > 1 && !wd.Incremental {
			t.Fatalf("emission %d not incremental", emitted)
		}
		applyDelta(t, cur, *wd)
	}
	if emitted < 3 {
		t.Fatalf("emissions = %d", emitted)
	}
}

// Flush contract: the tail items no emission ever covered — the whole
// partial buffer when nothing was emitted, nil when the last emission
// covered everything.
func TestSlidingCountWindowFlushContract(t *testing.T) {
	cases := []struct {
		name       string
		size, step int
		items      int
		wantFlush  int
	}{
		{"never-emitted partial", 10, 5, 4, 4},
		{"exact emission boundary", 4, 2, 8, 0},
		{"uncovered tail", 4, 2, 9, 1},
		{"step one", 3, 1, 5, 0},        // emits every item once full
		{"step one warmup", 3, 1, 2, 2}, // never full
		{"tumbling step=size", 3, 3, 7, 1},
		{"size one", 1, 1, 5, 0},
		{"empty", 4, 2, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := &SlidingCountWindow{Size: tc.size, Step: tc.step}
			feedCount(w, tc.items)
			got := w.Flush()
			if len(got) != tc.wantFlush {
				t.Fatalf("flush = %d items, want %d", len(got), tc.wantFlush)
			}
			// Flush resets: the windower is reusable afterwards.
			if w.seen != 0 || w.prev != nil || len(w.buf) != 0 {
				t.Fatal("flush must reset the window state")
			}
		})
	}
}

// The time window honors the same Flush contract: only items no emission
// ever covered are delivered.
func TestSlidingTimeWindowFlushContract(t *testing.T) {
	w := &SlidingTimeWindow{Span: 10 * time.Millisecond, Step: 4 * time.Millisecond}
	base := time.Unix(0, 0)
	feed := func(from, to int) (emitted int, lastWin []rdf.Triple) {
		for i := from; i < to; i++ {
			it := Item{Triple: rdf.Triple{S: fmt.Sprintf("s%d", i), P: "p", O: "o"},
				At: base.Add(time.Duration(i) * time.Millisecond)}
			if wd := w.AddDelta(it); wd != nil {
				emitted++
				lastWin = wd.Window
			}
		}
		return emitted, lastWin
	}
	// No emission yet: Flush returns the whole partial buffer.
	if n, _ := feed(0, 5); n != 0 {
		t.Fatalf("unexpected emission after 5 items")
	}
	if rest := w.Flush(); len(rest) != 5 {
		t.Fatalf("pre-emission flush = %d items, want 5", len(rest))
	}
	// After an emission: only the items that arrived after it come back.
	n, lastWin := feed(0, 15)
	if n == 0 {
		t.Fatal("expected at least one emission")
	}
	rest := w.Flush()
	for _, tr := range rest {
		for _, covered := range lastWin {
			if tr == covered {
				t.Fatalf("flush re-delivered %v, already covered by the last window", tr)
			}
		}
	}
}

// Property: sliding count windows always contain the most recent Size items
// in arrival order.
func TestQuickSlidingCountRecency(t *testing.T) {
	f := func(seed int64, szRaw, stepRaw uint8) bool {
		size := int(szRaw%8) + 2
		step := int(stepRaw%uint8(size)) + 1
		w := &SlidingCountWindow{Size: size, Step: step}
		base := time.Unix(0, 0)
		count := 0
		ok := true
		for i := 0; i < 40; i++ {
			it := Item{Triple: rdf.Triple{S: fmt.Sprintf("s%d", i), P: "p", O: "o"},
				At: base.Add(time.Duration(i))}
			count++
			if win := w.Add(it); win != nil {
				if len(win) != size {
					return false
				}
				for j, tr := range win {
					want := fmt.Sprintf("s%d", count-size+j)
					if tr.S != want {
						ok = false
					}
				}
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
