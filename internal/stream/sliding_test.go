package stream

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"streamrule/internal/rdf"
)

func feedCount(w Windower, n int) [][]rdf.Triple {
	var wins [][]rdf.Triple
	base := time.Now()
	for i := 0; i < n; i++ {
		it := Item{Triple: rdf.Triple{S: fmt.Sprintf("s%d", i), P: "p", O: "o"},
			At: base.Add(time.Duration(i) * time.Millisecond)}
		if win := w.Add(it); win != nil {
			wins = append(wins, win)
		}
	}
	return wins
}

func TestSlidingCountWindowOverlap(t *testing.T) {
	w := &SlidingCountWindow{Size: 4, Step: 2}
	wins := feedCount(w, 10)
	// Full windows at items 4, 6, 8, 10.
	if len(wins) != 4 {
		t.Fatalf("windows = %d", len(wins))
	}
	for _, win := range wins {
		if len(win) != 4 {
			t.Errorf("window size = %d", len(win))
		}
	}
	// Consecutive windows overlap by Size-Step items.
	if wins[0][2] != wins[1][0] || wins[0][3] != wins[1][1] {
		t.Errorf("windows do not overlap: %v then %v", wins[0], wins[1])
	}
	if w.Flush() != nil {
		t.Error("flush after full windows must be empty")
	}
}

func TestSlidingCountDegeneratesToTumbling(t *testing.T) {
	slide := &SlidingCountWindow{Size: 3, Step: 3}
	tumble := &CountWindow{Size: 3}
	ws := feedCount(slide, 9)
	wt := feedCount(tumble, 9)
	if len(ws) != len(wt) {
		t.Fatalf("%d vs %d windows", len(ws), len(wt))
	}
	for i := range ws {
		if len(ws[i]) != len(wt[i]) {
			t.Fatalf("window %d sizes differ", i)
		}
		for j := range ws[i] {
			if ws[i][j] != wt[i][j] {
				t.Errorf("window %d item %d: %v vs %v", i, j, ws[i][j], wt[i][j])
			}
		}
	}
}

func TestSlidingCountPartialFlush(t *testing.T) {
	w := &SlidingCountWindow{Size: 10, Step: 5}
	wins := feedCount(w, 4)
	if len(wins) != 0 {
		t.Fatalf("no full window expected")
	}
	if rest := w.Flush(); len(rest) != 4 {
		t.Errorf("flush = %d items", len(rest))
	}
}

func TestSlidingTimeWindow(t *testing.T) {
	w := &SlidingTimeWindow{Span: 10 * time.Millisecond, Step: 5 * time.Millisecond}
	base := time.Now()
	var wins [][]rdf.Triple
	for i := 0; i < 30; i++ {
		it := Item{Triple: rdf.Triple{S: fmt.Sprintf("s%d", i), P: "p", O: "o"},
			At: base.Add(time.Duration(i) * time.Millisecond)}
		if win := w.Add(it); win != nil {
			wins = append(wins, win)
		}
	}
	if len(wins) < 3 {
		t.Fatalf("windows = %d", len(wins))
	}
	// Every emitted window covers at most Span of stream time: <= 11 items
	// at 1 item/ms (cutoff is exclusive at the old end).
	for _, win := range wins {
		if len(win) > 11 {
			t.Errorf("window too wide: %d items", len(win))
		}
	}
}

// Property: sliding count windows always contain the most recent Size items
// in arrival order.
func TestQuickSlidingCountRecency(t *testing.T) {
	f := func(seed int64, szRaw, stepRaw uint8) bool {
		size := int(szRaw%8) + 2
		step := int(stepRaw%uint8(size)) + 1
		w := &SlidingCountWindow{Size: size, Step: step}
		base := time.Unix(0, 0)
		count := 0
		ok := true
		for i := 0; i < 40; i++ {
			it := Item{Triple: rdf.Triple{S: fmt.Sprintf("s%d", i), P: "p", O: "o"},
				At: base.Add(time.Duration(i))}
			count++
			if win := w.Add(it); win != nil {
				if len(win) != size {
					return false
				}
				for j, tr := range win {
					want := fmt.Sprintf("s%d", count-size+j)
					if tr.S != want {
						ok = false
					}
				}
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
