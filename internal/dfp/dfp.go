// Package dfp is the data format processor of the StreamRule architecture
// (Figure 1): it translates between the RDF triples flowing through the
// stream layer and the ASP facts the reasoner consumes. The paper stresses
// that this conversion time is part of the reasoner's latency, so the
// conversion functions are deliberately the only place where triples become
// atoms and back.
package dfp

import (
	"fmt"
	"strconv"

	"streamrule/internal/asp/ast"
	"streamrule/internal/rdf"
)

// Arities maps an input predicate name to its arity (1 or 2). A triple
// <s, p, o> becomes p(s, o) for arity 2 and p(s) for arity 1.
type Arities map[string]int

// InferArities extracts the arity of each input predicate from the program's
// rule bodies. It returns an error if an input predicate is used with two
// different arities or does not occur in the program.
func InferArities(p *ast.Program, inpre []string) (Arities, error) {
	want := make(map[string]bool, len(inpre))
	for _, name := range inpre {
		want[name] = true
	}
	out := make(Arities, len(inpre))
	record := func(a ast.Atom) error {
		if !want[a.Pred] {
			return nil
		}
		if prev, ok := out[a.Pred]; ok && prev != a.Arity() {
			return fmt.Errorf("input predicate %s used with arities %d and %d", a.Pred, prev, a.Arity())
		}
		out[a.Pred] = a.Arity()
		return nil
	}
	for _, r := range p.Rules {
		for _, h := range r.Head {
			if err := record(h); err != nil {
				return nil, err
			}
		}
		for _, l := range r.Body {
			if l.Kind != ast.AtomLiteral {
				continue
			}
			if err := record(l.Atom); err != nil {
				return nil, err
			}
		}
	}
	for name := range want {
		if _, ok := out[name]; !ok {
			return nil, fmt.Errorf("input predicate %s does not occur in the program", name)
		}
	}
	return out, nil
}

// term converts an RDF node to an ASP term: decimal integers become number
// terms, everything else a symbol.
func term(s string) ast.Term {
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return ast.Num(n)
	}
	return ast.Sym(s)
}

// ToFacts converts a window of triples to ground ASP facts. Triples whose
// predicate is not in the arity map are skipped and counted (they belong to
// no input predicate of the program); the reasoner reports the count.
func ToFacts(window []rdf.Triple, ar Arities) (facts []ast.Atom, skipped int) {
	facts = make([]ast.Atom, 0, len(window))
	for _, t := range window {
		arity, ok := ar[t.P]
		if !ok {
			skipped++
			continue
		}
		switch arity {
		case 1:
			facts = append(facts, ast.NewAtom(t.P, term(t.S)))
		case 2:
			facts = append(facts, ast.NewAtom(t.P, term(t.S), term(t.O)))
		default:
			skipped++
		}
	}
	return facts, skipped
}

// FromAtoms converts derived atoms back into triples for the output stream:
// p(s, o) becomes <s, p, o>; p(s) becomes <s, p, true>; atoms of other
// arities are rendered with the remaining arguments joined into the object.
func FromAtoms(atoms []ast.Atom) []rdf.Triple {
	out := make([]rdf.Triple, 0, len(atoms))
	for _, a := range atoms {
		switch a.Arity() {
		case 0:
			out = append(out, rdf.Triple{S: a.Pred, P: a.Pred, O: "true"})
		case 1:
			out = append(out, rdf.Triple{S: a.Args[0].String(), P: a.Pred, O: "true"})
		case 2:
			out = append(out, rdf.Triple{S: a.Args[0].String(), P: a.Pred, O: a.Args[1].String()})
		default:
			obj := ""
			for i, t := range a.Args[1:] {
				if i > 0 {
					obj += ","
				}
				obj += t.String()
			}
			out = append(out, rdf.Triple{S: a.Args[0].String(), P: a.Pred, O: obj})
		}
	}
	return out
}
