// Package dfp is the data format processor of the StreamRule architecture
// (Figure 1): it translates between the RDF triples flowing through the
// stream layer and the ASP facts the reasoner consumes. The paper stresses
// that this conversion time is part of the reasoner's latency, so the
// conversion functions are deliberately the only place where triples become
// atoms and back.
package dfp

import (
	"fmt"
	"strconv"

	"streamrule/internal/asp/ast"
	"streamrule/internal/asp/intern"
	"streamrule/internal/rdf"
)

// Arities maps an input predicate name to its arity (1 or 2). A triple
// <s, p, o> becomes p(s, o) for arity 2 and p(s) for arity 1.
type Arities map[string]int

// InferArities extracts the arity of each input predicate from the program's
// rule bodies. It returns an error if an input predicate is used with two
// different arities or does not occur in the program.
func InferArities(p *ast.Program, inpre []string) (Arities, error) {
	want := make(map[string]bool, len(inpre))
	for _, name := range inpre {
		want[name] = true
	}
	out := make(Arities, len(inpre))
	record := func(a ast.Atom) error {
		if !want[a.Pred] {
			return nil
		}
		if prev, ok := out[a.Pred]; ok && prev != a.Arity() {
			return fmt.Errorf("input predicate %s used with arities %d and %d", a.Pred, prev, a.Arity())
		}
		out[a.Pred] = a.Arity()
		return nil
	}
	for _, r := range p.Rules {
		for _, h := range r.Head {
			if err := record(h); err != nil {
				return nil, err
			}
		}
		for _, l := range r.Body {
			if l.Kind != ast.AtomLiteral {
				continue
			}
			if err := record(l.Atom); err != nil {
				return nil, err
			}
		}
	}
	for name := range want {
		if _, ok := out[name]; !ok {
			return nil, fmt.Errorf("input predicate %s does not occur in the program", name)
		}
	}
	return out, nil
}

// term converts an RDF node to an ASP term: decimal integers become number
// terms, everything else a symbol.
func term(s string) ast.Term {
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return ast.Num(n)
	}
	return ast.Sym(s)
}

// ToFacts converts a window of triples to ground ASP facts. Triples whose
// predicate is not in the arity map are skipped and counted (they belong to
// no input predicate of the program); the reasoner reports the count.
func ToFacts(window []rdf.Triple, ar Arities) (facts []ast.Atom, skipped int) {
	facts = make([]ast.Atom, 0, len(window))
	for _, t := range window {
		arity, ok := ar[t.P]
		if !ok {
			skipped++
			continue
		}
		switch arity {
		case 1:
			facts = append(facts, ast.NewAtom(t.P, term(t.S)))
		case 2:
			facts = append(facts, ast.NewAtom(t.P, term(t.S), term(t.O)))
		default:
			skipped++
		}
	}
	return facts, skipped
}

// nodeCode encodes an RDF node as a term code with exactly the semantics of
// term: decimal integers (including '+'-signed and out-of-inline-range ones)
// become number terms, everything else an interned symbol.
func nodeCode(tab *intern.Table, s string) intern.Code {
	if len(s) > 0 && (s[0] == '-' || s[0] == '+' || (s[0] >= '0' && s[0] <= '9')) {
		if n, err := strconv.ParseInt(s, 10, 64); err == nil {
			if c, ok := intern.CodeNum(n); ok {
				return c
			}
			// Outside the inline range: intern the number term itself so the
			// atom coincides with the one ToFacts would produce.
			c, _ := tab.CodeOf(ast.Num(n))
			return c
		}
	}
	return intern.CodeSym(tab.Sym(s))
}

// InternFacts converts a window of triples straight to interned ground-atom
// IDs, appending to dst (pass nil, or a reused buffer, to avoid the
// allocation). Triples whose predicate is not in the arity map are skipped
// and counted, exactly as in ToFacts. In the steady state of a sliding
// window — where most triples repeat atoms already interned — this performs
// no allocation at all.
func InternFacts(tab *intern.Table, window []rdf.Triple, ar Arities, dst []intern.AtomID) (ids []intern.AtomID, skipped int) {
	ids = dst
	// The arity map is tiny; cache the interned predicates per call so each
	// triple costs map probes on ints, not strings.
	type predEntry struct {
		pid   intern.PredID
		arity int
	}
	var cache [8]struct {
		name string
		predEntry
	}
	n := 0
	lookup := func(name string) (predEntry, bool) {
		for i := 0; i < n; i++ {
			if cache[i].name == name {
				return cache[i].predEntry, true
			}
		}
		arity, ok := ar[name]
		if !ok || (arity != 1 && arity != 2) {
			return predEntry{}, false
		}
		e := predEntry{pid: tab.Pred(name, arity), arity: arity}
		if n < len(cache) {
			cache[n].name = name
			cache[n].predEntry = e
			n++
		}
		return e, true
	}
	for _, t := range window {
		e, ok := lookup(t.P)
		if !ok {
			skipped++
			continue
		}
		switch e.arity {
		case 1:
			ids = append(ids, tab.InternAtom1(e.pid, nodeCode(tab, t.S)))
		case 2:
			ids = append(ids, tab.InternAtom2(e.pid, nodeCode(tab, t.S), nodeCode(tab, t.O)))
		}
	}
	return ids, skipped
}

// InternDelta interns a window delta (the triples that entered and left a
// sliding window between consecutive emissions) straight to interned atom
// IDs, appending to the dst buffers. skippedDelta is the net change to the
// window's skipped-item count: triples of unknown predicates that entered,
// minus those that left. In the steady state of an overlapping window this
// touches only the delta — O(step), not O(window size).
func InternDelta(tab *intern.Table, added, retracted []rdf.Triple, ar Arities, addDst, retDst []intern.AtomID) (addIDs, retIDs []intern.AtomID, skippedDelta int) {
	var sa, sr int
	addIDs, sa = InternFacts(tab, added, ar, addDst)
	retIDs, sr = InternFacts(tab, retracted, ar, retDst)
	return addIDs, retIDs, sa - sr
}

// FromAtoms converts derived atoms back into triples for the output stream:
// p(s, o) becomes <s, p, o>; p(s) becomes <s, p, true>; atoms of other
// arities are rendered with the remaining arguments joined into the object.
func FromAtoms(atoms []ast.Atom) []rdf.Triple {
	out := make([]rdf.Triple, 0, len(atoms))
	for _, a := range atoms {
		switch a.Arity() {
		case 0:
			out = append(out, rdf.Triple{S: a.Pred, P: a.Pred, O: "true"})
		case 1:
			out = append(out, rdf.Triple{S: a.Args[0].String(), P: a.Pred, O: "true"})
		case 2:
			out = append(out, rdf.Triple{S: a.Args[0].String(), P: a.Pred, O: a.Args[1].String()})
		default:
			obj := ""
			for i, t := range a.Args[1:] {
				if i > 0 {
					obj += ","
				}
				obj += t.String()
			}
			out = append(out, rdf.Triple{S: a.Args[0].String(), P: a.Pred, O: obj})
		}
	}
	return out
}
