package dfp

import (
	"testing"

	"streamrule/internal/asp/ast"
	"streamrule/internal/asp/intern"
	"streamrule/internal/asp/parser"
	"streamrule/internal/rdf"
)

const programP = `
very_slow_speed(X) :- average_speed(X,Y), Y < 20.
many_cars(X) :- car_number(X,Y), Y > 40.
traffic_jam(X) :- very_slow_speed(X), many_cars(X), not traffic_light(X).
car_fire(X) :- car_in_smoke(C, high), car_speed(C, 0), car_location(C, X).
give_notification(X) :- traffic_jam(X).
give_notification(X) :- car_fire(X).
`

var inpreP = []string{
	"average_speed", "car_number", "traffic_light",
	"car_in_smoke", "car_speed", "car_location",
}

func TestInferArities(t *testing.T) {
	prog, err := parser.Parse(programP)
	if err != nil {
		t.Fatal(err)
	}
	ar, err := InferArities(prog, inpreP)
	if err != nil {
		t.Fatal(err)
	}
	want := Arities{
		"average_speed": 2, "car_number": 2, "traffic_light": 1,
		"car_in_smoke": 2, "car_speed": 2, "car_location": 2,
	}
	for k, v := range want {
		if ar[k] != v {
			t.Errorf("arity(%s) = %d, want %d", k, ar[k], v)
		}
	}
}

func TestInferAritiesErrors(t *testing.T) {
	prog, err := parser.Parse("p :- q(X, Y).\nr :- q(X).")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := InferArities(prog, []string{"q"}); err == nil {
		t.Error("conflicting arity must be rejected")
	}
	if _, err := InferArities(prog, []string{"missing"}); err == nil {
		t.Error("unknown input predicate must be rejected")
	}
}

func TestToFacts(t *testing.T) {
	ar := Arities{"average_speed": 2, "traffic_light": 1}
	window := []rdf.Triple{
		{S: "city1", P: "average_speed", O: "10"},
		{S: "city1", P: "traffic_light", O: "true"},
		{S: "x", P: "unknown_pred", O: "y"},
		{S: "car1", P: "car_in_smoke", O: "high"},
	}
	facts, skipped := ToFacts(window, ar)
	if skipped != 2 {
		t.Errorf("skipped = %d, want 2", skipped)
	}
	if len(facts) != 2 {
		t.Fatalf("facts = %v", facts)
	}
	if facts[0].Key() != "average_speed(city1,10)" {
		t.Errorf("fact 0 = %s", facts[0])
	}
	if facts[0].Args[1].Kind != ast.NumberTerm {
		t.Error("numeric object must become a number term")
	}
	if facts[1].Key() != "traffic_light(city1)" {
		t.Errorf("fact 1 = %s", facts[1])
	}
}

func TestToFactsNumericSubject(t *testing.T) {
	ar := Arities{"p": 2}
	facts, _ := ToFacts([]rdf.Triple{{S: "42", P: "p", O: "high"}}, ar)
	if facts[0].Args[0].Kind != ast.NumberTerm || facts[0].Args[0].Num != 42 {
		t.Errorf("subject term = %v", facts[0].Args[0])
	}
	if facts[0].Args[1].Kind != ast.SymbolTerm {
		t.Errorf("object term = %v", facts[0].Args[1])
	}
}

func TestFromAtoms(t *testing.T) {
	atoms := []ast.Atom{
		ast.NewAtom("give_notification", ast.Sym("dangan")),
		ast.NewAtom("car_fire", ast.Sym("dangan")),
		ast.NewAtom("link", ast.Sym("a"), ast.Sym("b")),
		ast.NewAtom("flag"),
		ast.NewAtom("wide", ast.Sym("s"), ast.Num(1), ast.Num(2)),
	}
	triples := FromAtoms(atoms)
	want := []rdf.Triple{
		{S: "dangan", P: "give_notification", O: "true"},
		{S: "dangan", P: "car_fire", O: "true"},
		{S: "a", P: "link", O: "b"},
		{S: "flag", P: "flag", O: "true"},
		{S: "s", P: "wide", O: "1,2"},
	}
	if len(triples) != len(want) {
		t.Fatalf("got %v", triples)
	}
	for i := range want {
		if triples[i] != want[i] {
			t.Errorf("triple %d = %v, want %v", i, triples[i], want[i])
		}
	}
}

func TestRoundTripWindow(t *testing.T) {
	prog, err := parser.Parse(programP)
	if err != nil {
		t.Fatal(err)
	}
	ar, err := InferArities(prog, inpreP)
	if err != nil {
		t.Fatal(err)
	}
	window := []rdf.Triple{
		{S: "city1", P: "average_speed", O: "10"},
		{S: "car1", P: "car_location", O: "dangan"},
	}
	facts, skipped := ToFacts(window, ar)
	if skipped != 0 {
		t.Fatalf("skipped = %d", skipped)
	}
	back := FromAtoms(facts)
	for i := range window {
		if back[i] != window[i] {
			t.Errorf("round trip %d: %v vs %v", i, back[i], window[i])
		}
	}
}

func TestInternFactsMatchesToFacts(t *testing.T) {
	tab := intern.NewTable()
	ar := Arities{"p": 2, "q": 1}
	window := []rdf.Triple{
		{S: "a", P: "p", O: "5"},
		{S: "a", P: "p", O: "+5"},                   // '+'-signed decimal is numeric
		{S: "b", P: "p", O: "4611686018427387905"},  // 2^62+1: outside the inline code range
		{S: "c", P: "p", O: "-9223372036854775808"}, // int64 min
		{S: "007", P: "q", O: ""},                   // leading zeros normalize
		{S: "12x", P: "q", O: ""},                   // not a number: symbol
		{S: "x", P: "unknown", O: "y"},              // skipped
	}
	ids, skipped := InternFacts(tab, window, ar, nil)
	atoms, skippedRef := ToFacts(window, ar)
	if skipped != skippedRef {
		t.Fatalf("skipped = %d, want %d", skipped, skippedRef)
	}
	if len(ids) != len(atoms) {
		t.Fatalf("ids = %d, atoms = %d", len(ids), len(atoms))
	}
	for i, a := range atoms {
		// Interning the ToFacts atom must land on the ID InternFacts chose:
		// the two conversion paths agree on every encoding edge case.
		if want := tab.InternAtom(a); ids[i] != want {
			t.Errorf("triple %d: InternFacts id %d materializes %s, ToFacts atom %s interns to %d",
				i, ids[i], tab.Atom(ids[i]), a, want)
		}
	}
	// "+5" and "5" must coincide, as they do under ToFacts.
	if ids[0] != ids[1] {
		t.Errorf("p(a,5) and p(a,+5) interned to %d and %d", ids[0], ids[1])
	}
}
