// Package atomdep implements the extension the paper sketches as future
// work (§VI): input dependency analysis at the ATOM level.
//
// The predicate-level input dependency graph can only produce as many
// partitions as it has components — program P yields two, capping the
// parallelism at 2. But inside a component, ground atoms interact only
// through shared entities: traffic_jam(X) joins very_slow_speed(X),
// many_cars(X), and not traffic_light(X) on the same city X, so atoms about
// different cities never co-fire a rule. When such a join key exists, each
// predicate-level partition can safely be hash-split into m sub-partitions
// by key value, multiplying the parallelism while preserving exactness.
//
// KeyAnalysis finds, per input-graph component, an argument position for
// every predicate in the component's derivation ancestry such that
//
//   - every rule with two or more (possibly negated) body atoms from the
//     ancestry has one variable occupying the key position of every such
//     body atom, and
//   - whenever a derived head atom feeds later joins of the same component,
//     the key variable survives into the head at its key position.
//
// If the constraints are unsatisfiable for a component (as they are for the
// merged component of program P', where the join car_fire(X), many_cars(X)
// switches keys from the car C to the city X), the component is marked
// non-splittable and callers fall back to predicate-level partitioning for
// it — the analysis degrades gracefully, never unsoundly.
package atomdep

import (
	"fmt"
	"hash/fnv"
	"sort"

	"streamrule/internal/asp/ast"
	"streamrule/internal/core"
)

// ComponentKeys is the result of the analysis for one predicate-level
// community: Splittable reports whether hash-splitting is sound, and Key
// maps every predicate of the community's derivation ancestry to the
// argument position holding the join key.
type ComponentKeys struct {
	Community  int
	Splittable bool
	// Key maps predicate name -> key argument position (valid only when
	// Splittable).
	Key map[string]int
	// Reason explains why the component is not splittable.
	Reason string
}

// Analysis holds the per-community key assignments for a program and plan.
type Analysis struct {
	Components []ComponentKeys
}

// KeysFor returns the key table of a community, or nil when the community
// is not atom-splittable.
func (a *Analysis) KeysFor(community int) map[string]int {
	for _, c := range a.Components {
		if c.Community == community {
			if c.Splittable {
				return c.Key
			}
			return nil
		}
	}
	return nil
}

// Analyze runs the atom-level key analysis for every community of the plan.
func Analyze(p *ast.Program, plan *core.Plan) *Analysis {
	out := &Analysis{}
	for ci := range plan.Communities {
		out.Components = append(out.Components, analyzeComponent(p, plan, ci))
	}
	return out
}

// ancestry computes the set of predicates whose derivations depend on the
// community's input predicates: the inputs plus every head reachable from
// them through rule bodies.
func ancestry(p *ast.Program, inputs map[string]bool) map[string]bool {
	anc := make(map[string]bool, len(inputs))
	for pred := range inputs {
		anc[pred] = true
	}
	for changed := true; changed; {
		changed = false
		for _, r := range p.Rules {
			touches := false
			for _, l := range r.Body {
				if l.Kind == ast.AtomLiteral && anc[l.Atom.Pred] {
					touches = true
					break
				}
			}
			if !touches {
				continue
			}
			for _, h := range r.Head {
				if !anc[h.Pred] {
					anc[h.Pred] = true
					changed = true
				}
			}
		}
	}
	return anc
}

// varAt returns the variable name at argument position pos of the atom, or
// "" when the position is out of range or not a variable.
func varAt(a ast.Atom, pos int) string {
	if pos < 0 || pos >= len(a.Args) {
		return ""
	}
	if a.Args[pos].Kind == ast.VariableTerm {
		return a.Args[pos].Sym
	}
	return ""
}

// positionsOf returns the argument positions of the variable in the atom.
func positionsOf(a ast.Atom, v string) []int {
	var out []int
	for i, t := range a.Args {
		if t.Kind == ast.VariableTerm && t.Sym == v {
			out = append(out, i)
		}
	}
	return out
}

func analyzeComponent(p *ast.Program, plan *core.Plan, ci int) ComponentKeys {
	res := ComponentKeys{Community: ci, Key: make(map[string]int)}
	inputs := make(map[string]bool)
	for _, pred := range plan.Communities[ci] {
		inputs[pred] = true
	}
	anc := ancestry(p, inputs)

	fail := func(format string, args ...any) ComponentKeys {
		res.Splittable = false
		res.Key = nil
		res.Reason = fmt.Sprintf(format, args...)
		return res
	}

	// Iterate to a fixpoint: multi-atom bodies pin a shared variable; the
	// key position then propagates between heads and bodies.
	assign := func(pred string, pos int) bool {
		if cur, ok := res.Key[pred]; ok {
			return cur == pos
		}
		res.Key[pred] = pos
		return true
	}

	// Aggregates range over the full extension of their condition
	// predicates; a hash split would change every count/sum. Splitting a
	// component whose ancestry feeds an aggregate is only sound when the
	// aggregate's group-by key matches the split key, which this analysis
	// does not prove — stay conservative.
	for _, r := range p.Rules {
		for _, l := range r.Body {
			if l.Kind != ast.AggLiteral {
				continue
			}
			for _, e := range l.Agg.Elems {
				for _, c := range e.Cond {
					if c.Kind == ast.AtomLiteral && anc[c.Atom.Pred] {
						return fail("rule %q aggregates over %s; atom-level splitting could change the aggregate", r, c.Atom.Pred)
					}
				}
			}
		}
	}

	for pass := 0; pass < len(p.Rules)+2; pass++ {
		changed := false
		for _, r := range p.Rules {
			// Body atoms belonging to this component's ancestry.
			var bodyAtoms []ast.Atom
			for _, l := range r.Body {
				if l.Kind == ast.AtomLiteral && anc[l.Atom.Pred] {
					bodyAtoms = append(bodyAtoms, l.Atom)
				}
			}
			if len(bodyAtoms) == 0 {
				continue
			}

			// Candidate key variables for this rule: variables occurring in
			// every ancestry body atom, compatible with assigned positions.
			candidates := sharedVars(bodyAtoms)
			if len(bodyAtoms) >= 2 && len(candidates) == 0 {
				return fail("rule %q has no variable shared by all body atoms of community %d", r, ci)
			}
			candidates = filterCompatible(candidates, bodyAtoms, res.Key)
			if len(bodyAtoms) >= 2 && len(candidates) == 0 {
				return fail("rule %q cannot agree on a key position for community %d", r, ci)
			}
			if len(bodyAtoms) == 1 && len(candidates) == 0 {
				// Single-atom bodies do not constrain co-location; they
				// only propagate assigned keys (handled below).
				candidates = nil
			}

			// Prefer a candidate that also appears in every head (so the
			// key survives derivation); deterministic order.
			sort.Strings(candidates)
			pick := ""
			for _, v := range candidates {
				if inAllHeads(r.Head, v) {
					pick = v
					break
				}
			}
			if pick == "" && len(candidates) > 0 {
				pick = candidates[0]
			}

			if len(bodyAtoms) >= 2 {
				// Commit the pick for all body atoms.
				for _, a := range bodyAtoms {
					pos := positionsOf(a, pick)[0]
					if !assign(a.Pred, pos) {
						return fail("predicate %s needs two key positions (%d and %d)", a.Pred, res.Key[a.Pred], pos)
					}
				}
				// Heads: the key must survive if the head feeds later joins.
				for _, h := range r.Head {
					hp := positionsOf(h, pick)
					if len(hp) == 0 {
						if feedsJoin(p, h.Pred, anc) {
							return fail("key %s lost deriving %s, which feeds later joins", pick, h.Pred)
						}
						continue
					}
					if !assign(h.Pred, hp[0]) {
						return fail("predicate %s needs two key positions", h.Pred)
					}
				}
				changed = true
				continue
			}

			// Single ancestry body atom: propagate an assigned head key back
			// to the body (or vice versa) through their shared variable.
			a := bodyAtoms[0]
			for _, h := range r.Head {
				if pos, ok := res.Key[h.Pred]; ok {
					v := varAt(h, pos)
					if v == "" {
						continue
					}
					bp := positionsOf(a, v)
					if len(bp) == 0 {
						if feedsJoin(p, h.Pred, anc) {
							return fail("key of %s does not reach body atom %s", h.Pred, a)
						}
						continue
					}
					if !assign(a.Pred, bp[0]) {
						return fail("predicate %s needs two key positions", a.Pred)
					}
					changed = true
				}
				if pos, ok := res.Key[a.Pred]; ok {
					v := varAt(a, pos)
					if v == "" {
						continue
					}
					hp := positionsOf(h, v)
					if len(hp) > 0 {
						if !assign(h.Pred, hp[0]) {
							return fail("predicate %s needs two key positions", h.Pred)
						}
						changed = true
					}
				}
			}
		}
		if !changed {
			break
		}
	}

	// Every input predicate must have ended up with a key position;
	// otherwise its atoms cannot be routed.
	for pred := range inputs {
		if _, ok := res.Key[pred]; !ok {
			// A predicate no join ever constrains (isolated input): key by
			// its first argument, any split is sound.
			res.Key[pred] = 0
		}
	}
	res.Splittable = true
	return res
}

// sharedVars returns the variables occurring in every atom.
func sharedVars(atoms []ast.Atom) []string {
	counts := make(map[string]int)
	for _, a := range atoms {
		seen := make(map[string]bool)
		a.CollectVars(seen)
		for v := range seen {
			counts[v]++
		}
	}
	var out []string
	for v, c := range counts {
		if c == len(atoms) {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// filterCompatible keeps candidate variables whose positions agree with the
// already-assigned key positions of the body predicates.
func filterCompatible(cands []string, atoms []ast.Atom, key map[string]int) []string {
	var out []string
	for _, v := range cands {
		ok := true
		for _, a := range atoms {
			pos, assigned := key[a.Pred]
			if !assigned {
				continue
			}
			if varAt(a, pos) != v {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, v)
		}
	}
	return out
}

// inAllHeads reports whether the variable occurs in every head atom.
func inAllHeads(heads []ast.Atom, v string) bool {
	for _, h := range heads {
		if len(positionsOf(h, v)) == 0 {
			return false
		}
	}
	return len(heads) > 0
}

// feedsJoin reports whether pred occurs in a body with at least one other
// ancestry atom somewhere in the program (i.e. whether losing its key
// matters).
func feedsJoin(p *ast.Program, pred string, anc map[string]bool) bool {
	for _, r := range p.Rules {
		n, has := 0, false
		for _, l := range r.Body {
			if l.Kind != ast.AtomLiteral || !anc[l.Atom.Pred] {
				continue
			}
			n++
			if l.Atom.Pred == pred {
				has = true
			}
		}
		if has && n >= 2 {
			return true
		}
	}
	return false
}

// Bucket hashes a ground key term into one of m buckets: FNV-1a over the
// term's textual form, followed by an avalanche finalizer so that the low
// bits are unbiased even for very short keys. Stable across runs.
func Bucket(key string, m int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	x := h.Sum32()
	// fmix32 finalizer (MurmurHash3): spreads entropy into the low bits.
	x ^= x >> 16
	x *= 0x85ebca6b
	x ^= x >> 13
	x *= 0xc2b2ae35
	x ^= x >> 16
	return int(x % uint32(m))
}
