package atomdep

import (
	"math/rand"
	"testing"
	"testing/quick"

	"streamrule/internal/asp/ast"
	"streamrule/internal/asp/parser"
	"streamrule/internal/core"
)

const programP = `
very_slow_speed(X) :- average_speed(X,Y), Y < 20.
many_cars(X) :- car_number(X,Y), Y > 40.
traffic_jam(X) :- very_slow_speed(X), many_cars(X), not traffic_light(X).
car_fire(X) :- car_in_smoke(C, high), car_speed(C, 0), car_location(C, X).
give_notification(X) :- traffic_jam(X).
give_notification(X) :- car_fire(X).
`

const programPPrime = programP + `
traffic_jam(X) :- car_fire(X), many_cars(X).
`

var inpreP = []string{
	"average_speed", "car_number", "traffic_light",
	"car_in_smoke", "car_speed", "car_location",
}

func analyze(t *testing.T, src string) (*ast.Program, *core.Plan, *Analysis) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(prog, inpreP, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return prog, a.Plan, Analyze(prog, a.Plan)
}

// communityOf finds the plan community containing the predicate.
func communityOf(plan *core.Plan, pred string) int {
	return plan.Assign[pred][0]
}

func TestProgramPBothComponentsSplittable(t *testing.T) {
	_, plan, an := analyze(t, programP)
	if len(an.Components) != 2 {
		t.Fatalf("components = %d", len(an.Components))
	}
	traffic := communityOf(plan, "average_speed")
	cars := communityOf(plan, "car_in_smoke")

	tk := an.KeysFor(traffic)
	if tk == nil {
		t.Fatal("traffic component must be splittable")
	}
	// All traffic predicates keyed by the city (argument 0).
	for _, pred := range []string{"average_speed", "car_number", "traffic_light",
		"very_slow_speed", "many_cars", "traffic_jam"} {
		if tk[pred] != 0 {
			t.Errorf("key(%s) = %d, want 0", pred, tk[pred])
		}
	}

	ck := an.KeysFor(cars)
	if ck == nil {
		t.Fatal("car component must be splittable")
	}
	// Car predicates keyed by the car (argument 0); car_fire loses the key
	// but feeds no join in P, so that is allowed.
	for _, pred := range []string{"car_in_smoke", "car_speed", "car_location"} {
		if ck[pred] != 0 {
			t.Errorf("key(%s) = %d, want 0", pred, ck[pred])
		}
	}
}

func TestProgramPPrimeCarComponentNotSplittable(t *testing.T) {
	_, plan, an := analyze(t, programPPrime)
	cars := communityOf(plan, "car_in_smoke")
	if an.KeysFor(cars) != nil {
		t.Error("P': the car component must NOT be splittable (car_fire feeds the r7 join but loses the car key)")
	}
	var comp ComponentKeys
	for _, c := range an.Components {
		if c.Community == cars {
			comp = c
		}
	}
	if comp.Splittable || comp.Reason == "" {
		t.Errorf("expected a reason, got %+v", comp)
	}
	// The traffic community stays splittable: r7 touches it only through
	// many_cars, a single ancestry atom.
	traffic := communityOf(plan, "average_speed")
	if an.KeysFor(traffic) == nil {
		t.Error("P': the traffic component must remain splittable")
	}
}

func TestSelfJoinNotSplittable(t *testing.T) {
	prog, err := parser.Parse(`
reach(X,Y) :- edge(X,Y).
reach(X,Z) :- reach(X,Y), edge(Y,Z).
`)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(prog, []string{"edge"}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	an := Analyze(prog, a.Plan)
	for _, c := range an.Components {
		if c.Splittable {
			t.Errorf("transitive closure must not be atom-splittable: %+v", c)
		}
	}
}

func TestIsolatedInputGetsDefaultKey(t *testing.T) {
	prog, err := parser.Parse(`
out(X) :- sensor(X, V), V > 10.
`)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(prog, []string{"sensor"}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	an := Analyze(prog, a.Plan)
	keys := an.KeysFor(0)
	if keys == nil {
		t.Fatal("single-predicate component must be splittable")
	}
	if keys["sensor"] != 0 {
		t.Errorf("key(sensor) = %d", keys["sensor"])
	}
}

func TestKeyOnSecondArgument(t *testing.T) {
	// The join variable sits at position 1 of q.
	prog, err := parser.Parse(`
joined(K) :- p(K, V), q(V2, K), V < V2.
`)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(prog, []string{"p", "q"}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	an := Analyze(prog, a.Plan)
	keys := an.KeysFor(0)
	if keys == nil {
		t.Fatal("component must be splittable")
	}
	if keys["p"] != 0 || keys["q"] != 1 {
		t.Errorf("keys = %v, want p:0 q:1", keys)
	}
}

func TestNoSharedVariableFails(t *testing.T) {
	prog, err := parser.Parse(`
pair :- p(X), q(Y), X < Y.
`)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(prog, []string{"p", "q"}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	an := Analyze(prog, a.Plan)
	if an.KeysFor(0) != nil {
		t.Error("cross product of p and q must not be splittable")
	}
}

func TestAggregateBlocksAtomSplit(t *testing.T) {
	prog, err := parser.Parse(`
zone(Z) :- request(_, Z).
overload(Z) :- zone(Z), #count{ R : request(R, Z) } >= 3.
`)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(prog, []string{"request"}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	an := Analyze(prog, a.Plan)
	for _, c := range an.Components {
		if c.Splittable {
			t.Errorf("component with an aggregate over its ancestry must not be splittable: %+v", c)
		}
	}
}

func TestBucketDeterministicAndBounded(t *testing.T) {
	if Bucket("city1", 4) != Bucket("city1", 4) {
		t.Error("bucket must be deterministic")
	}
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		b := Bucket(string(rune('a'+i%26))+string(rune('0'+i%10)), 4)
		if b < 0 || b >= 4 {
			t.Fatalf("bucket %d out of range", b)
		}
		seen[b] = true
	}
	if len(seen) != 4 {
		t.Errorf("only %d buckets used", len(seen))
	}
}

// Property: Bucket is always within range for any key and m >= 1.
func TestQuickBucketRange(t *testing.T) {
	f := func(key string, m uint8) bool {
		mm := int(m%16) + 1
		b := Bucket(key, mm)
		return b >= 0 && b < mm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: on random single-key programs (every rule joins on variable K at
// position 0 everywhere), the analysis always finds key position 0.
func TestQuickSingleKeyProgramsSplittable(t *testing.T) {
	preds := []string{"p", "q", "r", "s"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog := &ast.Program{}
		derived := []string{"d0", "d1"}
		for i := 0; i < 1+rng.Intn(4); i++ {
			head := ast.NewAtom(derived[rng.Intn(len(derived))], ast.Var("K"))
			n := 1 + rng.Intn(3)
			var body []ast.Literal
			for j := 0; j < n; j++ {
				body = append(body, ast.Pos(ast.NewAtom(preds[rng.Intn(len(preds))], ast.Var("K"), ast.Var("V"+string(rune('0'+j))))))
			}
			prog.Add(ast.Rule{Head: []ast.Atom{head}, Body: body})
		}
		used := map[string]bool{}
		for _, r := range prog.Rules {
			for _, l := range r.Body {
				used[l.Atom.Pred] = true
			}
		}
		var inpre []string
		for _, p := range preds {
			if used[p] {
				inpre = append(inpre, p)
			}
		}
		a, err := core.Analyze(prog, inpre, 1.0)
		if err != nil {
			return false
		}
		an := Analyze(prog, a.Plan)
		for ci := range a.Plan.Communities {
			keys := an.KeysFor(ci)
			if keys == nil {
				return false
			}
			for _, p := range a.Plan.Communities[ci] {
				if keys[p] != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
