// Package workload generates the synthetic RDF streams of the paper's
// evaluation (§IV): random triples whose predicates range over inpre(P) and
// whose subject/object values are numbers bounded by the window size n.
//
// The paper's generator, taken literally, draws entity values uniformly from
// [0, n), which makes joins between predicates (same city observed by two
// sensors) vanishingly rare at large n and the accuracy comparison vacuous.
// We therefore scale entity domains as n/EntityDivisor with divisor 6 — one
// observation per entity per predicate on average, so joins both happen and
// are genuinely lost when a window is split carelessly. A much larger
// divisor would make every partition re-derive every event independently and
// hide the accuracy loss the paper demonstrates; EXPERIMENTS.md records the
// choice.
package workload

import (
	"fmt"
	"math/rand"

	"streamrule/internal/rdf"
)

// FieldGen produces one subject or object value; n is the window size being
// generated, so domains can scale with the window per the paper.
type FieldGen func(rng *rand.Rand, n int) string

// NumRange returns values uniform in [lo, hi).
func NumRange(lo, hi int64) FieldGen {
	return func(rng *rand.Rand, _ int) string {
		return fmt.Sprintf("%d", lo+rng.Int63n(hi-lo))
	}
}

// Choice returns one of the given values uniformly.
func Choice(values ...string) FieldGen {
	return func(rng *rand.Rand, _ int) string {
		return values[rng.Intn(len(values))]
	}
}

// Entity returns identifiers "<prefix><k>" with k uniform in
// [0, max(1, n/divisor)): an entity pool whose size scales with the window.
func Entity(prefix string, divisor int) FieldGen {
	return func(rng *rand.Rand, n int) string {
		size := n / divisor
		if size < 1 {
			size = 1
		}
		return fmt.Sprintf("%s%d", prefix, rng.Intn(size))
	}
}

// TripleSpec describes how to generate triples of one predicate.
type TripleSpec struct {
	Pred string
	// S and O generate the subject and object. A nil O produces the unary
	// convention object "true" (ignored by the data format processor for
	// arity-1 predicates).
	S, O FieldGen
	// Weight is the relative frequency of the predicate (default 1).
	Weight int
}

// Generator produces windows of synthetic triples. It is deterministic for
// a given seed and sequence of calls.
type Generator struct {
	specs []TripleSpec
	cum   []int
	total int
	rng   *rand.Rand
}

// NewGenerator builds a generator from specs with the given seed.
func NewGenerator(seed int64, specs []TripleSpec) (*Generator, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("no triple specs")
	}
	g := &Generator{specs: specs, rng: rand.New(rand.NewSource(seed))}
	for _, s := range specs {
		if s.Pred == "" || s.S == nil {
			return nil, fmt.Errorf("spec for %q must have a predicate and a subject generator", s.Pred)
		}
		w := s.Weight
		if w <= 0 {
			w = 1
		}
		g.total += w
		g.cum = append(g.cum, g.total)
	}
	return g, nil
}

// Window generates n triples.
func (g *Generator) Window(n int) []rdf.Triple {
	out := make([]rdf.Triple, n)
	for i := range out {
		w := g.rng.Intn(g.total)
		k := 0
		for g.cum[k] <= w {
			k++
		}
		s := g.specs[k]
		t := rdf.Triple{S: s.S(g.rng, n), P: s.Pred, O: "true"}
		if s.O != nil {
			t.O = s.O(g.rng, n)
		}
		out[i] = t
	}
	return out
}

// EntityDivisor is the default ratio between window size and entity-pool
// size used by the paper workload specs: with six uniform predicates, a
// divisor of six yields about one observation per entity per predicate.
const EntityDivisor = 6

// PaperTraffic returns the workload of the paper's evaluation for programs P
// and P' (inpre(P) = inpre(P')): uniform predicate choice over the six input
// predicates, city and car pools scaling with the window, and value ranges
// tuned so that every rule of Listing 1 fires with realistic frequency
// (speeds below 20 about a third of the time, car counts above 40 about half
// the time, a sixth of the cars stopped, smoke levels {high, low, none}).
func PaperTraffic() []TripleSpec {
	city := Entity("city", EntityDivisor)
	car := Entity("car", EntityDivisor)
	return []TripleSpec{
		{Pred: "average_speed", S: city, O: NumRange(0, 60)},
		{Pred: "car_number", S: city, O: NumRange(0, 80)},
		{Pred: "traffic_light", S: city},
		{Pred: "car_in_smoke", S: car, O: Choice("high", "low", "none")},
		{Pred: "car_speed", S: car, O: NumRange(0, 6)},
		{Pred: "car_location", S: car, O: city},
	}
}

// ResidualTraffic is the residual-solver workload: the paper's six input
// predicates, retuned so that the incident-response rules of
// bench.ProgramResidual leave a large residual program for the solver on
// every window, with an adversarial partition skew the paper's uniform mix
// never exhibits.
//
// Two levers differ from PaperTraffic. First, the rates are hostile to the
// stratified fast path: cities are slower and more crowded (more
// traffic_jam atoms), smoke is "high" half the time and cars crawl at 0-2
// (more car_fire atoms), and every jam/fire atom drags its even-loop and
// choice rules into the residual program. Second, the car-cluster
// predicates carry 4x the weight of the city-cluster ones, so a
// dependency-partitioned PR sees one partition receive ~80% of the window —
// the skew stresses the critical-path accounting and the per-partition
// solver exactly where random partitioning would hide it.
func ResidualTraffic() []TripleSpec {
	city := Entity("city", EntityDivisor)
	// A denser car pool (half the entity spread) multiplies the
	// smoke×speed×location joins that feed car_fire.
	car := Entity("car", 2*EntityDivisor)
	return []TripleSpec{
		{Pred: "average_speed", S: city, O: NumRange(0, 40)},
		{Pred: "car_number", S: city, O: NumRange(20, 80)},
		{Pred: "traffic_light", S: city},
		{Pred: "car_in_smoke", S: car, O: Choice("high", "high", "low", "none"), Weight: 4},
		{Pred: "car_speed", S: car, O: NumRange(0, 3), Weight: 4},
		{Pred: "car_location", S: car, O: city, Weight: 4},
	}
}

// CityHeavyTraffic inverts the skew of ResidualTraffic: the city-cluster
// predicates carry 4x the weight of the car-cluster ones, so the OTHER
// community of the residual plan receives ~80% of the window. Played after
// a car-heavy segment it moves the hot spot — the case a design-time
// partitioning can never follow.
func CityHeavyTraffic() []TripleSpec {
	city := Entity("city", EntityDivisor)
	car := Entity("car", 2*EntityDivisor)
	return []TripleSpec{
		{Pred: "average_speed", S: city, O: NumRange(0, 40), Weight: 4},
		{Pred: "car_number", S: city, O: NumRange(20, 80), Weight: 4},
		{Pred: "traffic_light", S: city, Weight: 4},
		{Pred: "car_in_smoke", S: car, O: Choice("high", "high", "low", "none")},
		{Pred: "car_speed", S: car, O: NumRange(0, 3)},
		{Pred: "car_location", S: car, O: city},
	}
}

// TenantTraffic returns the paper workload with tenant-prefixed entity
// vocabularies: tenant "t42" observes cities "t42city3" and cars "t42car7",
// so no two tenants share a single entity symbol. Across N tenants the
// aggregate vocabulary grows with N — the adversarial case for any shared
// interning state, which per-tenant tables must absorb without leaking a
// symbol into the process-wide default table.
func TenantTraffic(tenant string) []TripleSpec {
	city := Entity(tenant+"city", EntityDivisor)
	car := Entity(tenant+"car", EntityDivisor)
	return []TripleSpec{
		{Pred: "average_speed", S: city, O: NumRange(0, 60)},
		{Pred: "car_number", S: city, O: NumRange(0, 80)},
		{Pred: "traffic_light", S: city},
		{Pred: "car_in_smoke", S: car, O: Choice("high", "low", "none")},
		{Pred: "car_speed", S: car, O: NumRange(0, 6)},
		{Pred: "car_location", S: car, O: city},
	}
}

// Phase is one segment of a phased stream: a spec set and how many triples
// to draw from it.
type Phase struct {
	Specs   []TripleSpec
	Triples int
}

// PhasedStream concatenates deterministic segments, one generator per
// phase (seeded seed, seed+1, ...): a stream whose statistical shape — and
// therefore whose partition skew — changes mid-flight. Windowed over the
// result, the phase boundaries become the moments an adaptive layout must
// react to.
func PhasedStream(seed int64, phases []Phase) ([]rdf.Triple, error) {
	var out []rdf.Triple
	for i, ph := range phases {
		g, err := NewGenerator(seed+int64(i), ph.Specs)
		if err != nil {
			return nil, err
		}
		out = append(out, g.Window(ph.Triples)...)
	}
	return out, nil
}

// SkewedBurstyStream is the canned adaptive-rebalancing workload: a long
// car-heavy segment (ResidualTraffic's ~80/20 split), a short burst at
// double the car weight with an even denser car pool, then a city-heavy
// segment that inverts the skew entirely. n is the total stream length;
// the segments take roughly 45%, 10%, and 45% of it.
func SkewedBurstyStream(seed int64, n int) ([]rdf.Triple, error) {
	burst := ResidualTraffic()
	for i := range burst {
		if burst[i].Weight >= 4 {
			burst[i].Weight = 8
			burst[i].S = Entity("car", 4*EntityDivisor)
		}
	}
	long := n * 45 / 100
	return PhasedStream(seed, []Phase{
		{Specs: ResidualTraffic(), Triples: long},
		{Specs: burst, Triples: n - 2*long},
		{Specs: CityHeavyTraffic(), Triples: long},
	})
}
