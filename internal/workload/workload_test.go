package workload

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeneratorDeterministic(t *testing.T) {
	g1, err := NewGenerator(42, PaperTraffic())
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGenerator(42, PaperTraffic())
	if err != nil {
		t.Fatal(err)
	}
	w1 := g1.Window(500)
	w2 := g2.Window(500)
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatalf("windows diverge at %d: %v vs %v", i, w1[i], w2[i])
		}
	}
	g3, err := NewGenerator(43, PaperTraffic())
	if err != nil {
		t.Fatal(err)
	}
	w3 := g3.Window(500)
	same := true
	for i := range w1 {
		if w1[i] != w3[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical windows")
	}
}

func TestPaperTrafficShape(t *testing.T) {
	g, err := NewGenerator(7, PaperTraffic())
	if err != nil {
		t.Fatal(err)
	}
	const n = 6000
	w := g.Window(n)
	if len(w) != n {
		t.Fatalf("window size = %d", len(w))
	}
	counts := make(map[string]int)
	for _, tr := range w {
		counts[tr.P]++
		switch tr.P {
		case "average_speed":
			v, err := strconv.Atoi(tr.O)
			if err != nil || v < 0 || v >= 60 {
				t.Fatalf("bad speed %q", tr.O)
			}
			if !strings.HasPrefix(tr.S, "city") {
				t.Fatalf("bad subject %q", tr.S)
			}
		case "car_in_smoke":
			if tr.O != "high" && tr.O != "low" && tr.O != "none" {
				t.Fatalf("bad smoke level %q", tr.O)
			}
		case "traffic_light":
			if tr.O != "true" {
				t.Fatalf("unary predicate object = %q", tr.O)
			}
		case "car_location":
			if !strings.HasPrefix(tr.S, "car") || !strings.HasPrefix(tr.O, "city") {
				t.Fatalf("bad location triple %v", tr)
			}
		}
	}
	// Uniform over 6 predicates: each ~1000 of 6000; allow wide slack.
	for _, p := range []string{"average_speed", "car_number", "traffic_light",
		"car_in_smoke", "car_speed", "car_location"} {
		if counts[p] < 700 || counts[p] > 1300 {
			t.Errorf("count(%s) = %d, expected ~1000", p, counts[p])
		}
	}
}

func TestEntityPoolScalesWithWindow(t *testing.T) {
	gen := Entity("city", 100)
	rng := rand.New(rand.NewSource(1))
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		seen[gen(rng, 5000)] = true
	}
	// Pool size is 5000/100 = 50.
	if len(seen) > 50 {
		t.Errorf("pool produced %d distinct entities, want <= 50", len(seen))
	}
	if len(seen) < 40 {
		t.Errorf("pool produced only %d distinct entities", len(seen))
	}
	// The paper workload pool: divisor 6 gives one entity per ~6 triples.
	sparse := Entity("city", EntityDivisor)
	seen = make(map[string]bool)
	for i := 0; i < 1000; i++ {
		seen[sparse(rng, 6000)] = true
	}
	if len(seen) < 500 {
		t.Errorf("sparse pool produced only %d distinct entities", len(seen))
	}
	// Tiny windows still have a pool of one.
	if got := gen(rng, 1); got != "city0" {
		t.Errorf("tiny window entity = %q", got)
	}
}

func TestWeights(t *testing.T) {
	specs := []TripleSpec{
		{Pred: "rare", S: NumRange(0, 10), Weight: 1},
		{Pred: "common", S: NumRange(0, 10), Weight: 9},
	}
	g, err := NewGenerator(3, specs)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, tr := range g.Window(5000) {
		counts[tr.P]++
	}
	if counts["common"] < 4*counts["rare"] {
		t.Errorf("weights ignored: %v", counts)
	}
}

func TestNewGeneratorErrors(t *testing.T) {
	if _, err := NewGenerator(1, nil); err == nil {
		t.Error("empty specs must be rejected")
	}
	if _, err := NewGenerator(1, []TripleSpec{{Pred: "", S: NumRange(0, 1)}}); err == nil {
		t.Error("missing predicate must be rejected")
	}
	if _, err := NewGenerator(1, []TripleSpec{{Pred: "p"}}); err == nil {
		t.Error("missing subject generator must be rejected")
	}
}

// Property: every generated window has exactly n triples with predicates
// from the spec set.
func TestQuickWindowWellFormed(t *testing.T) {
	f := func(seed int64, sz uint16) bool {
		n := int(sz%2000) + 1
		g, err := NewGenerator(seed, PaperTraffic())
		if err != nil {
			return false
		}
		valid := map[string]bool{
			"average_speed": true, "car_number": true, "traffic_light": true,
			"car_in_smoke": true, "car_speed": true, "car_location": true,
		}
		w := g.Window(n)
		if len(w) != n {
			return false
		}
		for _, tr := range w {
			if !valid[tr.P] || tr.S == "" || tr.O == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// ResidualTraffic must skew the window adversarially toward the car-cluster
// predicates (~80% of items) while still producing triples of every input
// predicate — the partition-imbalance shape the residual benchmarks stress.
func TestResidualTrafficSkew(t *testing.T) {
	g, err := NewGenerator(3, ResidualTraffic())
	if err != nil {
		t.Fatal(err)
	}
	const n = 30000
	counts := map[string]int{}
	for _, tr := range g.Window(n) {
		counts[tr.P]++
	}
	carCluster := counts["car_in_smoke"] + counts["car_speed"] + counts["car_location"]
	if share := float64(carCluster) / n; share < 0.75 || share > 0.85 {
		t.Errorf("car-cluster share = %.3f, want ~0.8 (weights 4:1)", share)
	}
	for _, pred := range []string{"average_speed", "car_number", "traffic_light",
		"car_in_smoke", "car_speed", "car_location"} {
		if counts[pred] == 0 {
			t.Errorf("predicate %s never generated", pred)
		}
	}
}
