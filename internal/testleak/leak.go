// Package testleak asserts that a test leaves no goroutines behind. It
// snapshots the live goroutines before the code under test runs and, after,
// reports any goroutine started since that has not exited — with a short
// grace period so orderly shutdowns (connection readers, drain loops) get to
// finish. Use it on anything that owns goroutines: servers, worker fleets,
// pipelined engines.
//
//	defer testleak.Check(t)()
package testleak

import (
	"runtime"
	"strings"
	"time"
)

// TB is the subset of testing.TB used here, so the checker works from tests,
// benchmarks, and helpers alike.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
}

// Check snapshots the currently live goroutines and returns a function that
// asserts every goroutine created since has exited. The returned function
// retries for up to two seconds before reporting, then fails the test with
// the full stack of each leaked goroutine.
func Check(t TB) func() {
	t.Helper()
	before := map[string]bool{}
	for _, g := range stacks() {
		before[goid(g)] = true
	}
	return func() {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		var leaked []string
		for {
			leaked = leaked[:0]
			for _, g := range stacks() {
				if !before[goid(g)] && interesting(g) {
					leaked = append(leaked, g)
				}
			}
			if len(leaked) == 0 || time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		for _, g := range leaked {
			t.Errorf("leaked goroutine:\n%s", g)
		}
	}
}

// stacks returns one stack dump per live goroutine.
func stacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	return strings.Split(strings.TrimSpace(string(buf)), "\n\n")
}

// goid extracts the "goroutine N" prefix that identifies a dump.
func goid(g string) string {
	if i := strings.IndexByte(g, '['); i > 0 {
		return strings.TrimSpace(g[:i])
	}
	return g
}

// interesting filters out goroutines the runtime and the testing package own:
// they come and go on their own schedule and are not leaks.
func interesting(g string) bool {
	for _, ignore := range []string{
		"testing.Main(",
		"testing.tRunner(",
		"testing.(*B).run",
		"testing.(*T).Run",
		"runtime.gc",
		"runtime.bgsweep",
		"runtime.bgscavenge",
		"runtime.forcegchelper",
		"runtime.MutexProfile",
		"runtime/trace",
		"os/signal.signal_recv",
		"testleak.Check",
	} {
		if strings.Contains(g, ignore) {
			return false
		}
	}
	return true
}
