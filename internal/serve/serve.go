package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"streamrule/internal/asp/intern"
	"streamrule/internal/asp/parser"
	"streamrule/internal/core"
	"streamrule/internal/dfp"
	"streamrule/internal/rdf"
	"streamrule/internal/reasoner"
	"streamrule/internal/stream"
	"streamrule/internal/transport"
)

// Overflow selects what Push does when a tenant's ingress queue is full.
type Overflow int

const (
	// ShedOldest drops the oldest queued window to admit the new one. Every
	// drop is counted in TenantStats.Shed, and the window that follows the
	// shed one is re-seeded from scratch: its delta was computed relative to
	// the shed window, so replaying it against the engine's actual state
	// would silently corrupt the tenant's incremental grounding.
	ShedOldest Overflow = iota
	// Block makes Push wait for queue room — backpressure to the producer.
	Block
)

// Scheduling and queue defaults, overridable via Config.
const (
	DefaultWorkers    = 4
	DefaultQuantum    = 256
	DefaultQueueDepth = 8
)

// Config sizes the shared fleet.
type Config struct {
	// Workers is the number of fleet executor goroutines shared by all
	// tenants (default DefaultWorkers).
	Workers int
	// Quantum is the deficit round-robin credit, in window items, each
	// backlogged tenant earns per scheduling pass (default DefaultQuantum).
	// A tenant dispatches when its accumulated credit covers its head
	// window's item count, so item-heavy tenants pay proportionally more
	// passes per window.
	Quantum int
	// QueueDepth bounds each tenant's ingress queue in windows (default
	// DefaultQueueDepth) unless the tenant overrides it.
	QueueDepth int
}

// TenantConfig describes one pipeline to multiplex onto the server.
type TenantConfig struct {
	// Program is the tenant's ASP program source. Required.
	Program string
	// Inpre names the input predicates. Required.
	Inpre []string
	// Arities overrides arity inference for input predicates (needed when a
	// declared input predicate does not occur in the program).
	Arities map[string]int
	// OutputPreds restricts answers to these predicates (nil = all derived).
	OutputPreds []string
	// WindowSize is the tuple-based window size. Required.
	WindowSize int
	// WindowStep < WindowSize makes the window sliding.
	WindowStep int
	// MemoryBudget / MemoryBudgetBytes bound the tenant's private intern
	// table exactly as in reasoner.Config. Zero = unbounded, but the table
	// is still private to the tenant.
	MemoryBudget      int
	MemoryBudgetBytes int64
	// QueueDepth overrides the server's per-tenant ingress bound (windows).
	QueueDepth int
	// Overflow selects shed-oldest (default) or blocking backpressure.
	Overflow Overflow
	// Workers, when set, backs this tenant with remote reasoning over these
	// worker addresses (a DPR engine) instead of a local engine. Multiple
	// tenants may share the same addresses.
	Workers []string
	// StragglerTimeout bounds each remote window leg before the tenant
	// falls back locally (0 = the DPR default). Distributed tenants only.
	StragglerTimeout time.Duration
	// HeartbeatInterval sets the idle-probe cadence on the tenant's worker
	// sessions (0 = the DPR default, negative disables). Distributed
	// tenants only.
	HeartbeatInterval time.Duration
	// Dialer overrides how the tenant's DPR reaches its workers (nil =
	// plain TCP). Chaos injectors and custom networks hook in here.
	// Distributed tenants only.
	Dialer transport.DialFunc
	// Breaker tunes the per-worker-session circuit breaker (zero value =
	// the DPR defaults). Distributed tenants only.
	Breaker reasoner.BreakerOptions
	// Handle receives every completed window in order, called from a fleet
	// goroutine (never concurrently for one tenant). Optional.
	Handle func(window []rdf.Triple, out *reasoner.Output)
}

// Sentinel errors returned by tenant operations.
var (
	ErrClosed          = errors.New("serve: server closed")
	ErrUnknownTenant   = errors.New("serve: unknown tenant")
	ErrDuplicateTenant = errors.New("serve: tenant id already registered")
	ErrRemoved         = errors.New("serve: tenant removed")
)

// engine is the per-tenant reasoning surface, satisfied by *reasoner.R and
// *reasoner.DPR.
type engine interface {
	ProcessDelta(window []rdf.Triple, d *reasoner.Delta) (*reasoner.Output, error)
	Stats() reasoner.MemoryStats
}

// queuedWindow is one ready window waiting for a fleet worker.
type queuedWindow struct {
	window   []rdf.Triple
	delta    *reasoner.Delta
	enqueued time.Time
}

// tenant is the server-side state of one pipeline.
type tenant struct {
	id       string
	eng      engine
	w        stream.Windower
	dw       stream.DeltaWindower // w when it maintains deltas, else nil
	handle   func([]rdf.Triple, *reasoner.Output)
	overflow Overflow
	depth    int

	queue   []queuedWindow
	busy    bool // a fleet worker is processing (or quiescing) this tenant
	deficit int  // DRR credit in window items
	reseed  bool // next dispatched window must drop its delta
	removed bool
	seq     int64 // synthetic item clock for count windows

	stats     TenantStats
	latencies latencyRing
}

// Server multiplexes tenants over a shared fleet of executor goroutines.
// All methods are safe for concurrent use.
type Server struct {
	quantum int
	depth   int

	mu      sync.Mutex
	cond    *sync.Cond // work available, queue room, busy/target changes
	tenants map[string]*tenant
	ring    []*tenant // DRR visit order
	rrPos   int
	target  int // desired fleet size
	live    int // running fleet goroutines
	closed  bool
	wg      sync.WaitGroup
}

// NewServer starts the fleet and returns an empty server.
func NewServer(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = DefaultQuantum
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	s := &Server{
		quantum: cfg.Quantum,
		depth:   cfg.QueueDepth,
		tenants: map[string]*tenant{},
		target:  cfg.Workers,
	}
	s.cond = sync.NewCond(&s.mu)
	s.mu.Lock()
	for s.live < s.target {
		s.spawnLocked()
	}
	s.mu.Unlock()
	return s
}

func (s *Server) spawnLocked() {
	s.live++
	s.wg.Add(1)
	go s.workerLoop()
}

// AddTenant admits a new pipeline. The tenant's engine always owns a private
// intern table: budgeted tenants get the rotating table the budget implies,
// and unbudgeted ones get an explicit fresh table — no tenant interns into
// the process-wide default.
func (s *Server) AddTenant(id string, tc TenantConfig) error {
	if tc.WindowSize <= 0 {
		return fmt.Errorf("serve: tenant %s: WindowSize required", id)
	}
	eng, err := buildEngine(tc)
	if err != nil {
		return fmt.Errorf("serve: tenant %s: %w", id, err)
	}
	var w stream.Windower
	if tc.WindowStep > 0 && tc.WindowStep < tc.WindowSize {
		w = &stream.SlidingCountWindow{Size: tc.WindowSize, Step: tc.WindowStep}
	} else {
		w = &stream.CountWindow{Size: tc.WindowSize}
	}
	dw, _ := w.(stream.DeltaWindower)
	depth := tc.QueueDepth
	t := &tenant{
		id: id, eng: eng, w: w, dw: dw,
		handle: tc.Handle, overflow: tc.Overflow, depth: depth,
	}
	t.stats.ID = id

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		closeEngine(eng)
		return ErrClosed
	}
	if _, dup := s.tenants[id]; dup {
		closeEngine(eng)
		return ErrDuplicateTenant
	}
	if t.depth <= 0 {
		t.depth = s.depth
	}
	s.tenants[id] = t
	s.ring = append(s.ring, t)
	return nil
}

func buildEngine(tc TenantConfig) (engine, error) {
	prog, err := parser.Parse(tc.Program)
	if err != nil {
		return nil, err
	}
	cfg := reasoner.Config{
		Program:           prog,
		Inpre:             tc.Inpre,
		Arities:           dfp.Arities(tc.Arities),
		OutputPreds:       tc.OutputPreds,
		MemoryBudget:      tc.MemoryBudget,
		MemoryBudgetBytes: tc.MemoryBudgetBytes,
	}
	if cfg.MemoryBudget == 0 && cfg.MemoryBudgetBytes == 0 {
		cfg.GroundOpts.Intern = intern.NewTable()
	}
	if len(tc.Workers) == 0 {
		return reasoner.NewR(cfg)
	}
	analysis, err := core.Analyze(prog, tc.Inpre, 1.0)
	if err != nil {
		return nil, err
	}
	return reasoner.NewDPR(cfg, reasoner.NewPlanPartitioner(analysis.Plan), reasoner.DPROptions{
		Workers:           tc.Workers,
		ProgramSource:     tc.Program,
		StragglerTimeout:  tc.StragglerTimeout,
		HeartbeatInterval: tc.HeartbeatInterval,
		Dialer:            tc.Dialer,
		Breaker:           tc.Breaker,
	})
}

func closeEngine(e engine) {
	if c, ok := e.(interface{ Close() }); ok {
		c.Close()
	}
}

// Push feeds one triple into the tenant's window operator, enqueueing any
// completed window for the fleet. With Overflow == Block it blocks while the
// tenant's queue is full; with ShedOldest it drops the oldest queued window
// instead (counted in TenantStats.Shed).
func (s *Server) Push(id string, tr rdf.Triple) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, err := s.tenantLocked(id)
	if err != nil {
		return err
	}
	t.seq++
	item := stream.Item{Triple: tr, At: time.Unix(0, t.seq*int64(time.Millisecond))}
	var wd *stream.WindowDelta
	if t.dw != nil {
		wd = t.dw.AddDelta(item)
	} else if win := t.w.Add(item); win != nil {
		wd = &stream.WindowDelta{Window: win, Added: win}
	}
	if wd == nil {
		return nil
	}
	return s.enqueueLocked(t, wd)
}

// enqueueLocked admits one emitted window to the tenant's queue, applying
// the overflow policy.
func (s *Server) enqueueLocked(t *tenant, wd *stream.WindowDelta) error {
	for len(t.queue) >= t.depth {
		if t.overflow == ShedOldest {
			t.queue = t.queue[1:]
			t.stats.Shed++
			// The new head (or, for an emptied queue, the incoming window)
			// carries a delta relative to the shed window: invalidate it.
			if len(t.queue) > 0 {
				t.queue[0].delta = nil
			} else {
				t.reseed = true
			}
			continue
		}
		t.stats.Blocked++
		s.cond.Wait()
		if t.removed {
			return ErrRemoved
		}
		if s.closed {
			return ErrClosed
		}
	}
	var d *reasoner.Delta
	if wd.Incremental {
		d = &reasoner.Delta{Added: wd.Added, Retracted: wd.Retracted}
	}
	t.queue = append(t.queue, queuedWindow{window: wd.Window, delta: d, enqueued: time.Now()})
	s.cond.Broadcast()
	return nil
}

func (s *Server) tenantLocked(id string) (*tenant, error) {
	if s.closed {
		return nil, ErrClosed
	}
	t, ok := s.tenants[id]
	if !ok {
		return nil, ErrUnknownTenant
	}
	return t, nil
}

// Drain flushes the tenant's uncovered window tail (mirroring Pipeline.Run,
// so a drained tenant has handled exactly the windows a solo pipeline run
// would) and blocks until its queue is empty and no window is in flight.
// The tenant stays registered; a subsequent Push starts a fresh window.
func (s *Server) Drain(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, err := s.tenantLocked(id)
	if err != nil {
		return err
	}
	if rest := t.w.Flush(); len(rest) > 0 {
		// The tail bypasses the overflow policy: draining must not drop it.
		t.queue = append(t.queue, queuedWindow{window: rest, enqueued: time.Now()})
		// Whatever the windower emits after a flush is not delta-consistent
		// with what preceded it.
		t.reseed = true
		s.cond.Broadcast()
	}
	for (len(t.queue) > 0 || t.busy) && !t.removed && !s.closed {
		s.cond.Wait()
	}
	if t.removed {
		return ErrRemoved
	}
	if s.closed {
		return ErrClosed
	}
	return nil
}

// Sync blocks until the tenant's queue is empty and no window is in flight,
// without flushing the windower tail. Unlike Drain, a Push after Sync
// continues the sliding window exactly where it left off, so mid-stream
// checkpoints (stats snapshots, phased tests) do not perturb windowing.
func (s *Server) Sync(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, err := s.tenantLocked(id)
	if err != nil {
		return err
	}
	for (len(t.queue) > 0 || t.busy) && !t.removed && !s.closed {
		s.cond.Wait()
	}
	if t.removed {
		return ErrRemoved
	}
	if s.closed {
		return ErrClosed
	}
	return nil
}

// DrainAll drains every registered tenant.
func (s *Server) DrainAll() error {
	s.mu.Lock()
	ids := make([]string, 0, len(s.tenants))
	for id := range s.tenants {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	for _, id := range ids {
		if err := s.Drain(id); err != nil && !errors.Is(err, ErrRemoved) {
			return err
		}
	}
	return nil
}

// RemoveTenant evicts a tenant: its in-flight window (if any) completes and
// is delivered, queued windows are discarded (counted in TenantStats.Shed),
// and its engine is released. Neighbors are untouched.
func (s *Server) RemoveTenant(id string) error {
	s.mu.Lock()
	t, err := s.tenantLocked(id)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	t.removed = true
	t.stats.Shed += uint64(len(t.queue))
	t.queue = nil
	for t.busy {
		s.cond.Wait()
	}
	delete(s.tenants, id)
	for i, rt := range s.ring {
		if rt == t {
			s.ring = append(s.ring[:i], s.ring[i+1:]...)
			if s.rrPos > i {
				s.rrPos--
			}
			break
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	closeEngine(t.eng)
	return nil
}

// Resize grows or shrinks the fleet to n executor goroutines. Shrinking
// takes effect as workers finish their current window.
func (s *Server) Resize(n int) {
	if n < 1 {
		n = 1
	}
	s.mu.Lock()
	s.target = n
	for s.live < s.target {
		s.spawnLocked()
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Workers returns the current fleet target.
func (s *Server) Workers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.target
}

// AddWorker joins a remote worker to every tenant backed by remote workers,
// quiescing each tenant (waiting out its in-flight window) before the
// elastic join. Tenants with local engines are unaffected.
func (s *Server) AddWorker(addr string) error {
	return s.eachDPR(func(d *reasoner.DPR) error { return d.AddWorker(addr) })
}

// RemoveWorker removes a remote worker from every remote-backed tenant,
// with the same quiescing. A tenant whose last worker would be removed
// reports an error; the sweep continues and the first error is returned.
func (s *Server) RemoveWorker(addr string) error {
	return s.eachDPR(func(d *reasoner.DPR) error { return d.RemoveWorker(addr) })
}

// TenantTransportStats returns the wire metrics of a remote-backed
// tenant's engine (ok=false for unknown or locally-backed tenants). The
// tenant is quiesced exactly like AddWorker — no window of it is in flight
// while the counters are read — so the snapshot is consistent.
func (s *Server) TenantTransportStats(id string) (reasoner.TransportStats, bool) {
	s.mu.Lock()
	t, ok := s.tenants[id]
	if !ok {
		s.mu.Unlock()
		return reasoner.TransportStats{}, false
	}
	d, ok := t.eng.(*reasoner.DPR)
	if !ok {
		s.mu.Unlock()
		return reasoner.TransportStats{}, false
	}
	for t.busy && !t.removed && !s.closed {
		s.cond.Wait()
	}
	if t.removed {
		s.mu.Unlock()
		return reasoner.TransportStats{}, false
	}
	t.busy = true // keep the scheduler off this tenant during the read
	s.mu.Unlock()
	ts := d.TransportStats()
	s.mu.Lock()
	t.busy = false
	s.cond.Broadcast()
	s.mu.Unlock()
	return ts, true
}

func (s *Server) eachDPR(op func(*reasoner.DPR) error) error {
	s.mu.Lock()
	tenants := make([]*tenant, len(s.ring))
	copy(tenants, s.ring)
	var firstErr error
	for _, t := range tenants {
		d, ok := t.eng.(*reasoner.DPR)
		if !ok {
			continue
		}
		for t.busy && !t.removed && !s.closed {
			s.cond.Wait()
		}
		if t.removed || s.closed {
			continue
		}
		t.busy = true // keep the scheduler off this tenant during the op
		s.mu.Unlock()
		err := op(d)
		s.mu.Lock()
		t.busy = false
		s.cond.Broadcast()
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.mu.Unlock()
	return firstErr
}

// Close stops the fleet: in-flight windows complete, queued windows are
// discarded, and every tenant engine is released. The server must not be
// used afterwards.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	s.mu.Lock()
	engines := make([]engine, 0, len(s.tenants))
	for _, t := range s.tenants {
		engines = append(engines, t.eng)
	}
	s.tenants = map[string]*tenant{}
	s.ring = nil
	s.mu.Unlock()
	for _, e := range engines {
		closeEngine(e)
	}
}

// workerLoop is one fleet executor: pick a ready window under DRR, process
// it outside the lock, deliver, repeat.
func (s *Server) workerLoop() {
	defer s.wg.Done()
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed || s.live > s.target {
			s.live--
			s.cond.Broadcast()
			return
		}
		t, qw, ok := s.pickLocked()
		if !ok {
			s.cond.Wait()
			continue
		}
		t.busy = true
		s.cond.Broadcast() // queue room may have opened for a blocked Push
		s.mu.Unlock()

		out, err := t.eng.ProcessDelta(qw.window, qw.delta)
		if err == nil && t.handle != nil {
			t.handle(qw.window, out)
		}
		lat := time.Since(qw.enqueued)

		s.mu.Lock()
		t.busy = false
		t.note(qw, out, err, lat)
		s.cond.Broadcast()
	}
}

// pickLocked runs the deficit round-robin: each backlogged, idle tenant
// earns quantum items of credit per pass and dispatches its head window once
// the credit covers the window's item count. Returns false when no tenant
// has a dispatchable window.
func (s *Server) pickLocked() (*tenant, queuedWindow, bool) {
	n := len(s.ring)
	ready := false
	for _, t := range s.ring {
		if !t.busy && len(t.queue) > 0 {
			ready = true
			break
		}
	}
	if !ready {
		return nil, queuedWindow{}, false
	}
	// Some tenant is dispatchable and earns quantum every pass, so the loop
	// terminates in at most ceil(maxWindowItems/quantum) passes.
	for {
		for i := 0; i < n; i++ {
			t := s.ring[(s.rrPos+i)%n]
			if len(t.queue) == 0 {
				t.deficit = 0 // no banking credit while idle
				continue
			}
			if t.busy {
				continue
			}
			cost := len(t.queue[0].window)
			if cost == 0 {
				cost = 1
			}
			t.deficit += s.quantum
			if t.deficit < cost {
				continue
			}
			t.deficit -= cost
			qw := t.queue[0]
			t.queue = t.queue[1:]
			if len(t.queue) == 0 {
				t.deficit = 0
			}
			if t.reseed {
				qw.delta = nil
				t.reseed = false
			}
			s.rrPos = (s.rrPos + i + 1) % n
			return t, qw, true
		}
	}
}

// note records one processed window's outcome. Called with the server lock
// held and the tenant idle, so reading the engine's table stats is safe.
func (t *tenant) note(qw queuedWindow, out *reasoner.Output, err error, lat time.Duration) {
	t.stats.Windows++
	if err != nil {
		t.stats.Errors++
		// The engine's incremental state is suspect; the next window
		// re-seeds from scratch.
		t.reseed = true
		return
	}
	if qw.delta != nil && !out.Incremental {
		t.stats.Fallbacks++
	}
	t.stats.LiveAtoms = t.eng.Stats().Table.Atoms
	t.latencies.add(lat)
}
