package serve

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"streamrule/internal/asp/intern"
	"streamrule/internal/asp/parser"
	"streamrule/internal/dfp"
	"streamrule/internal/progen"
	"streamrule/internal/rdf"
	"streamrule/internal/reasoner"
	"streamrule/internal/stream"
	"streamrule/internal/testleak"
	"streamrule/internal/transport"
)

// sigOf renders one window's answers in canonical comparable form.
func sigOf(out *reasoner.Output) string {
	sigs := make([]string, len(out.Answers))
	for i, a := range out.Answers {
		keys := a.Keys()
		sort.Strings(keys)
		sigs[i] = fmt.Sprint(keys)
	}
	sort.Strings(sigs)
	return fmt.Sprint(sigs)
}

// collector gathers a tenant's outputs in handled order.
type collector struct {
	mu   sync.Mutex
	sigs []string
}

func (c *collector) handle(_ []rdf.Triple, out *reasoner.Output) {
	c.mu.Lock()
	c.sigs = append(c.sigs, sigOf(out))
	c.mu.Unlock()
}

func (c *collector) snapshot() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.sigs...)
}

// soloRun is the oracle: the same program over the same stream, alone — the
// exact windowing and delta semantics the server applies, driven through a
// plain single-tenant reasoner.
func soloRun(t *testing.T, tc TenantConfig, triples []rdf.Triple) []string {
	t.Helper()
	prog, err := parser.Parse(tc.Program)
	if err != nil {
		t.Fatal(err)
	}
	cfg := reasoner.Config{
		Program: prog, Inpre: tc.Inpre, Arities: dfp.Arities(tc.Arities),
		OutputPreds:  tc.OutputPreds,
		MemoryBudget: tc.MemoryBudget, MemoryBudgetBytes: tc.MemoryBudgetBytes,
	}
	if cfg.MemoryBudget == 0 && cfg.MemoryBudgetBytes == 0 {
		cfg.GroundOpts.Intern = intern.NewTable()
	}
	r, err := reasoner.NewR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var w stream.Windower
	if tc.WindowStep > 0 && tc.WindowStep < tc.WindowSize {
		w = &stream.SlidingCountWindow{Size: tc.WindowSize, Step: tc.WindowStep}
	} else {
		w = &stream.CountWindow{Size: tc.WindowSize}
	}
	dw, _ := w.(stream.DeltaWindower)
	var sigs []string
	process := func(win []rdf.Triple, d *reasoner.Delta) {
		out, err := r.ProcessDelta(win, d)
		if err != nil {
			t.Fatalf("solo run: %v", err)
		}
		sigs = append(sigs, sigOf(out))
	}
	for i, tr := range triples {
		item := stream.Item{Triple: tr, At: timeAt(i)}
		if dw != nil {
			if wd := dw.AddDelta(item); wd != nil {
				var d *reasoner.Delta
				if wd.Incremental {
					d = &reasoner.Delta{Added: wd.Added, Retracted: wd.Retracted}
				}
				process(wd.Window, d)
			}
		} else if win := w.Add(item); win != nil {
			process(win, nil)
		}
	}
	if rest := w.Flush(); len(rest) > 0 {
		process(rest, nil)
	}
	return sigs
}

func timeAt(i int) time.Time {
	return time.Unix(0, int64(i)*int64(time.Millisecond))
}

// TestMultiTenantDifferential is the tentpole correctness gate: N concurrent
// tenants — progen programs × window shapes, local and budgeted — over one
// shared fleet must each produce exactly the answers of the same tenant run
// alone, with zero growth of the process-wide default intern table.
func TestMultiTenantDifferential(t *testing.T) {
	defer testleak.Check(t)()

	type shape struct{ size, step int }
	shapes := []shape{{30, 6}, {24, 24}, {20, 5}, {16, 4}}
	classes := []progen.Config{
		{Derived: 3},
		{Derived: 5, UnaryInputs: 2, BinaryInputs: 2},
		{Derived: 3, Recursion: true, Consts: 4},
		{Derived: 3, Fresh: 0.6},
	}

	srv := NewServer(Config{Workers: 4, QueueDepth: 64})
	defer srv.Close()

	defaultBefore := intern.Default().Stats()

	type tenantRun struct {
		id      string
		tc      TenantConfig
		triples []rdf.Triple
		col     *collector
	}
	var runs []*tenantRun
	for ci, cls := range classes {
		for si, sh := range shapes {
			rnd := rand.New(rand.NewSource(int64(4200 + ci*10 + si)))
			gp := progen.New(rnd, cls)
			col := &collector{}
			tc := TenantConfig{
				Program: gp.Src, Inpre: gp.Inpre, Arities: gp.Arities,
				WindowSize: sh.size, WindowStep: sh.step,
				Handle: col.handle,
			}
			if cls.Fresh > 0 {
				tc.MemoryBudget = 96
			}
			tr := &tenantRun{
				id: fmt.Sprintf("tenant-%d-%d", ci, si), tc: tc,
				triples: gp.Stream(rnd, cls, 180), col: col,
			}
			if err := srv.AddTenant(tr.id, tr.tc); err != nil {
				t.Fatalf("%s: %v\n%s", tr.id, err, gp.Src)
			}
			runs = append(runs, tr)
		}
	}

	var wg sync.WaitGroup
	for _, tr := range runs {
		wg.Add(1)
		go func(tr *tenantRun) {
			defer wg.Done()
			for _, triple := range tr.triples {
				if err := srv.Push(tr.id, triple); err != nil {
					t.Errorf("%s: Push: %v", tr.id, err)
					return
				}
			}
		}(tr)
	}
	wg.Wait()
	if err := srv.DrainAll(); err != nil {
		t.Fatal(err)
	}

	for _, tr := range runs {
		want := soloRun(t, tr.tc, tr.triples)
		got := tr.col.snapshot()
		if len(got) != len(want) {
			t.Fatalf("%s: served %d windows, solo run %d\n%s", tr.id, len(got), len(want), tr.tc.Program)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s window %d: served answers diverge from solo run\nserved: %s\nsolo:   %s\n%s",
					tr.id, i, got[i], want[i], tr.tc.Program)
			}
		}
		row, ok := srv.TenantStats(tr.id)
		if !ok || row.Windows != uint64(len(want)) || row.Errors != 0 || row.Shed != 0 {
			t.Fatalf("%s: stats = %+v, want %d clean windows", tr.id, row, len(want))
		}
	}

	defaultAfter := intern.Default().Stats()
	if defaultAfter.Atoms != defaultBefore.Atoms || defaultAfter.Syms != defaultBefore.Syms ||
		defaultAfter.Preds != defaultBefore.Preds || defaultAfter.Terms != defaultBefore.Terms {
		t.Fatalf("multi-tenant run grew the default intern table: %+v -> %+v", defaultBefore, defaultAfter)
	}

	st := srv.Stats()
	if st.Tenants != len(runs) || st.TotalWindows == 0 || st.TotalErrors != 0 {
		t.Fatalf("server stats = %+v", st)
	}
	if st.P99 == 0 {
		t.Fatal("aggregate p99 latency missing")
	}
}

// plugServer returns a 1-worker server whose fleet is occupied by a "plug"
// tenant sitting in its Handle until release() is called — so other tenants'
// windows pile up deterministically.
func plugServer(t *testing.T, depth int) (srv *Server, release func()) {
	t.Helper()
	srv = NewServer(Config{Workers: 1, QueueDepth: depth})
	gate := make(chan struct{})
	err := srv.AddTenant("plug", TenantConfig{
		Program: "p(X) :- q(X).", Inpre: []string{"q"},
		WindowSize: 1,
		Handle:     func([]rdf.Triple, *reasoner.Output) { <-gate },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Push("plug", rdf.Triple{S: "a", P: "q", O: "b"}); err != nil {
		t.Fatal(err)
	}
	// Wait for the (only) fleet worker to actually pick up the plug window,
	// so subsequent pushes deterministically queue.
	srv.mu.Lock()
	for !srv.tenants["plug"].busy {
		srv.cond.Wait()
	}
	srv.mu.Unlock()
	var once sync.Once
	return srv, func() { once.Do(func() { close(gate) }) }
}

const shedProgram = `
seen(X) :- obs(X, Y).
pair(X, Y) :- obs(X, Y), obs(Y, X).
`

func shedTriples(n int) []rdf.Triple {
	out := make([]rdf.Triple, n)
	for i := range out {
		out[i] = rdf.Triple{S: fmt.Sprintf("e%d", i), P: "obs", O: fmt.Sprintf("e%d", (i*7)%n)}
	}
	return out
}

// TestShedOldestBreaksDeltaChainSafely pins the overload path: with the
// fleet plugged, pushes overflow a depth-2 queue and shed the oldest
// windows; the windows that survive must still produce exactly their
// from-scratch answers even though their deltas referenced shed neighbors.
func TestShedOldestBreaksDeltaChainSafely(t *testing.T) {
	defer testleak.Check(t)()
	srv, release := plugServer(t, 2)
	defer srv.Close()

	col := &collector{}
	tc := TenantConfig{
		Program: shedProgram, Inpre: []string{"obs"},
		WindowSize: 12, WindowStep: 3, QueueDepth: 2,
		Overflow: ShedOldest, Handle: col.handle,
	}
	if err := srv.AddTenant("shedder", tc); err != nil {
		t.Fatal(err)
	}
	triples := shedTriples(27) // emits windows at items 12,15,18,21,24,27
	var kept [][]rdf.Triple
	w := &stream.SlidingCountWindow{Size: 12, Step: 3}
	for i, tr := range triples {
		if err := srv.Push("shedder", tr); err != nil {
			t.Fatal(err)
		}
		if win := w.Add(stream.Item{Triple: tr, At: timeAt(i)}); win != nil {
			kept = append(kept, win)
		}
	}
	row, _ := srv.TenantStats("shedder")
	if row.Shed == 0 {
		t.Fatalf("no windows shed: stats %+v", row)
	}
	// Only the last QueueDepth emitted windows survive.
	kept = kept[len(kept)-2:]
	release()
	if err := srv.Drain("shedder"); err != nil {
		t.Fatal(err)
	}

	// Oracle: each surviving window processed from scratch, alone.
	prog, err := parser.Parse(tc.Program)
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for _, win := range kept {
		cfg := reasoner.Config{Program: prog, Inpre: tc.Inpre}
		cfg.GroundOpts.Intern = intern.NewTable()
		r, err := reasoner.NewR(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out, err := r.Process(win)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, sigOf(out))
	}
	got := col.snapshot()
	if len(got) != len(want) {
		t.Fatalf("served %d windows after shedding, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("surviving window %d corrupted by the shed delta chain\nserved: %s\nscratch: %s", i, got[i], want[i])
		}
	}
}

// TestBlockBackpressure pins the blocking policy: with the fleet plugged and
// a depth-1 queue, the overflowing Push must wait (counted) and complete
// only after the fleet frees up.
func TestBlockBackpressure(t *testing.T) {
	defer testleak.Check(t)()
	srv, release := plugServer(t, 1)
	defer srv.Close()

	col := &collector{}
	err := srv.AddTenant("blocker", TenantConfig{
		Program: shedProgram, Inpre: []string{"obs"},
		WindowSize: 4, QueueDepth: 1, Overflow: Block, Handle: col.handle,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, tr := range shedTriples(12) { // 3 windows; queue holds 1
			if err := srv.Push("blocker", tr); err != nil {
				t.Errorf("Push: %v", err)
				return
			}
		}
	}()
	select {
	case <-done:
		t.Fatal("pushes completed although the fleet is plugged and the queue is full")
	default:
	}
	release()
	<-done
	if err := srv.Drain("blocker"); err != nil {
		t.Fatal(err)
	}
	row, _ := srv.TenantStats("blocker")
	if row.Blocked == 0 {
		t.Fatalf("no blocked pushes recorded: %+v", row)
	}
	if row.Shed != 0 {
		t.Fatalf("blocking policy shed windows: %+v", row)
	}
	if got := col.snapshot(); len(got) != 3 {
		t.Fatalf("served %d windows, want all 3", len(got))
	}
}

// TestTenantLifecycle exercises add/remove/drain mid-traffic: removing one
// tenant (with queued windows) must not disturb a neighbor's answers.
func TestTenantLifecycle(t *testing.T) {
	defer testleak.Check(t)()
	srv := NewServer(Config{Workers: 2, QueueDepth: 64})
	defer srv.Close()

	keepCol := &collector{}
	keepTC := TenantConfig{
		Program: shedProgram, Inpre: []string{"obs"},
		WindowSize: 10, WindowStep: 5, Handle: keepCol.handle,
	}
	if err := srv.AddTenant("keeper", keepTC); err != nil {
		t.Fatal(err)
	}
	if err := srv.AddTenant("victim", TenantConfig{
		Program: shedProgram, Inpre: []string{"obs"}, WindowSize: 5,
	}); err != nil {
		t.Fatal(err)
	}
	triples := shedTriples(60)
	for i, tr := range triples[:31] {
		if err := srv.Push("keeper", tr); err != nil {
			t.Fatal(err)
		}
		if err := srv.Push("victim", tr); err != nil {
			t.Fatal(err)
		}
		if i == 30 {
			if err := srv.RemoveTenant("victim"); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := srv.Push("victim", triples[31]); err != ErrUnknownTenant {
		t.Fatalf("push to removed tenant: err = %v", err)
	}
	// Re-adding under the same id works, and the keeper is undisturbed.
	if err := srv.AddTenant("victim", TenantConfig{
		Program: shedProgram, Inpre: []string{"obs"}, WindowSize: 5,
	}); err != nil {
		t.Fatal(err)
	}
	for _, tr := range triples[31:] {
		if err := srv.Push("keeper", tr); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.DrainAll(); err != nil {
		t.Fatal(err)
	}
	want := soloRun(t, keepTC, triples)
	got := keepCol.snapshot()
	if len(got) != len(want) {
		t.Fatalf("keeper served %d windows, solo %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("keeper window %d diverged after neighbor removal", i)
		}
	}
}

// TestRemoteTenantsShareWorker runs two remote-backed tenants against one
// shared transport worker (one session per tenant partition on the same
// process) and checks both against their solo-run oracles.
func TestRemoteTenantsShareWorker(t *testing.T) {
	defer testleak.Check(t)()
	ws, err := transport.NewServer("127.0.0.1:0", reasoner.NewWorkerHandler(), transport.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	go ws.Serve()
	defer ws.Close()

	srv := NewServer(Config{Workers: 2, QueueDepth: 64})
	defer srv.Close()

	var runs []*struct {
		id      string
		tc      TenantConfig
		triples []rdf.Triple
		col     *collector
	}
	for i := 0; i < 2; i++ {
		rnd := rand.New(rand.NewSource(int64(7700 + i)))
		gp := progen.New(rnd, progen.Config{Derived: 3, UnaryInputs: 2, BinaryInputs: 2})
		col := &collector{}
		tc := TenantConfig{
			Program: gp.Src, Inpre: gp.Inpre, Arities: gp.Arities,
			WindowSize: 20, WindowStep: 5,
			Workers: []string{ws.Addr()},
			Handle:  col.handle,
		}
		id := fmt.Sprintf("remote-%d", i)
		if err := srv.AddTenant(id, tc); err != nil {
			t.Fatalf("%s: %v\n%s", id, err, gp.Src)
		}
		runs = append(runs, &struct {
			id      string
			tc      TenantConfig
			triples []rdf.Triple
			col     *collector
		}{id, tc, gp.Stream(rnd, progen.Config{Derived: 3, UnaryInputs: 2, BinaryInputs: 2}, 100), col})
	}
	for _, tr := range runs {
		for _, triple := range tr.triples {
			if err := srv.Push(tr.id, triple); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := srv.DrainAll(); err != nil {
		t.Fatal(err)
	}
	for _, tr := range runs {
		solo := tr.tc
		solo.Workers = nil // oracle runs locally; DPR ≡ R is the invariant
		want := soloRun(t, solo, tr.triples)
		got := tr.col.snapshot()
		if len(got) != len(want) {
			t.Fatalf("%s: served %d windows, solo %d", tr.id, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s window %d: remote-served answers diverge from solo run", tr.id, i)
			}
		}
	}
}

// TestServerDrainLeavesNoGoroutines is the dedicated leak gate: a full
// add/push/drain/close cycle must leave zero fleet goroutines behind.
func TestServerDrainLeavesNoGoroutines(t *testing.T) {
	check := testleak.Check(t)
	srv := NewServer(Config{Workers: 6})
	if err := srv.AddTenant("a", TenantConfig{
		Program: shedProgram, Inpre: []string{"obs"}, WindowSize: 8,
	}); err != nil {
		t.Fatal(err)
	}
	for _, tr := range shedTriples(40) {
		if err := srv.Push("a", tr); err != nil {
			t.Fatal(err)
		}
	}
	srv.Resize(2) // shrink mid-run
	if err := srv.DrainAll(); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	check()
}

// TestResizeGrowsAndShrinks pins the elastic fleet bookkeeping.
func TestResizeGrowsAndShrinks(t *testing.T) {
	defer testleak.Check(t)()
	srv := NewServer(Config{Workers: 2})
	defer srv.Close()
	if got := srv.Workers(); got != 2 {
		t.Fatalf("workers = %d", got)
	}
	srv.Resize(8)
	if got := srv.Workers(); got != 8 {
		t.Fatalf("workers after grow = %d", got)
	}
	srv.Resize(1)
	if got := srv.Workers(); got != 1 {
		t.Fatalf("workers after shrink = %d", got)
	}
}
