package serve

import (
	"sort"
	"time"
)

// latencySamples bounds the per-tenant latency ring: enough for stable p99
// estimates at modest memory (1k tenants × 256 samples × 8 B = 2 MB).
const latencySamples = 256

// latencyRing keeps the last latencySamples window latencies of one tenant.
type latencyRing struct {
	buf [latencySamples]time.Duration
	n   uint64 // total samples ever added
}

func (r *latencyRing) add(d time.Duration) {
	r.buf[r.n%latencySamples] = d
	r.n++
}

// samples returns the valid samples, unordered.
func (r *latencyRing) samples() []time.Duration {
	n := r.n
	if n > latencySamples {
		n = latencySamples
	}
	out := make([]time.Duration, n)
	copy(out, r.buf[:n])
	return out
}

// percentile returns the p-th percentile (0 < p <= 100) of sorted samples.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(float64(len(sorted))*p/100+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// TenantStats is one tenant's serving metrics. Latencies are measured
// enqueue-to-delivered, so they include queueing under contention.
type TenantStats struct {
	// ID is the tenant identifier.
	ID string
	// Windows counts processed windows (including errored ones).
	Windows uint64
	// Errors counts windows whose reasoning failed.
	Errors uint64
	// Fallbacks counts windows that had a delta but were re-grounded from
	// scratch by the engine.
	Fallbacks uint64
	// Shed counts windows dropped by the ShedOldest overflow policy plus
	// windows discarded by RemoveTenant.
	Shed uint64
	// Blocked counts Push calls that had to wait for queue room.
	Blocked uint64
	// QueueLen is the current ingress queue length in windows.
	QueueLen int
	// LiveAtoms is the tenant's private intern-table population after its
	// most recent window.
	LiveAtoms int
	// P50 and P99 are window-latency percentiles over the recent sample
	// ring (up to latencySamples windows).
	P50, P99 time.Duration
}

// ServerStats aggregates the fleet: per-tenant rows plus totals.
type ServerStats struct {
	// Workers is the fleet size (executor goroutines).
	Workers int
	// Tenants is the number of registered tenants.
	Tenants int
	// TotalWindows, TotalShed, TotalErrors, TotalFallbacks sum the
	// corresponding per-tenant counters.
	TotalWindows   uint64
	TotalShed      uint64
	TotalErrors    uint64
	TotalFallbacks uint64
	// LiveAtoms sums the tenants' private intern-table populations — the
	// fleet's aggregate reasoning footprint.
	LiveAtoms int
	// P50 and P99 are window-latency percentiles across every tenant's
	// recent samples.
	P50, P99 time.Duration
	// PerTenant holds one row per tenant, ordered by ID.
	PerTenant []TenantStats
}

// Stats snapshots the server's serving metrics.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := ServerStats{Workers: s.target, Tenants: len(s.tenants)}
	var all []time.Duration
	for _, t := range s.ring {
		row := t.stats
		row.QueueLen = len(t.queue)
		samples := t.latencies.samples()
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		row.P50 = percentile(samples, 50)
		row.P99 = percentile(samples, 99)
		all = append(all, samples...)
		st.TotalWindows += row.Windows
		st.TotalShed += row.Shed
		st.TotalErrors += row.Errors
		st.TotalFallbacks += row.Fallbacks
		st.LiveAtoms += row.LiveAtoms
		st.PerTenant = append(st.PerTenant, row)
	}
	sort.Slice(st.PerTenant, func(i, j int) bool { return st.PerTenant[i].ID < st.PerTenant[j].ID })
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	st.P50 = percentile(all, 50)
	st.P99 = percentile(all, 99)
	return st
}

// TenantStats returns one tenant's row (ok=false for unknown tenants).
func (s *Server) TenantStats(id string) (TenantStats, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[id]
	if !ok {
		return TenantStats{}, false
	}
	row := t.stats
	row.QueueLen = len(t.queue)
	samples := t.latencies.samples()
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	row.P50 = percentile(samples, 50)
	row.P99 = percentile(samples, 99)
	return row, true
}
