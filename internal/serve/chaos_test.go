package serve

// Chaos differential for the serving layer: a remote-backed tenant on a
// shared fleet, with the deterministic fault injector between its DPR and
// the worker, must deliver exactly the solo local oracle's answers on every
// window — and after the injector heals, recover to fallback-free remote
// serving.

import (
	"math/rand"
	"testing"
	"time"

	"streamrule/internal/chaos"
	"streamrule/internal/progen"
	"streamrule/internal/reasoner"
	"streamrule/internal/testleak"
	"streamrule/internal/transport"
)

func TestRemoteTenantUnderChaos(t *testing.T) {
	defer testleak.Check(t)()
	ws, err := transport.NewServer("127.0.0.1:0", reasoner.NewWorkerHandler(), transport.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	go ws.Serve()
	defer ws.Close()

	inj := chaos.New(chaos.Config{
		Seed:      606,
		Reset:     0.03,
		Corrupt:   0.05,
		Duplicate: 0.02,
		Delay:     0.2,
		DelayFor:  time.Millisecond,
	})

	rnd := rand.New(rand.NewSource(7700))
	pcfg := progen.Config{Derived: 3, UnaryInputs: 2, BinaryInputs: 2}
	gp := progen.New(rnd, pcfg)
	triples := gp.Stream(rnd, pcfg, 150)

	col := &collector{}
	tc := TenantConfig{
		Program: gp.Src, Inpre: gp.Inpre, Arities: gp.Arities,
		WindowSize: 20, WindowStep: 5,
		Workers:           []string{ws.Addr()},
		Dialer:            inj.Dial,
		StragglerTimeout:  250 * time.Millisecond,
		HeartbeatInterval: time.Millisecond,
		Breaker: reasoner.BreakerOptions{
			Threshold: 2,
			BaseDelay: 30 * time.Millisecond,
			MaxDelay:  150 * time.Millisecond,
		},
		Handle: col.handle,
	}
	srv := NewServer(Config{Workers: 2, QueueDepth: 64})
	defer srv.Close()
	// The injector may reset the very handshake that admits the tenant;
	// retry, exactly as an operator redeploying against a flaky link would.
	added := false
	for attempt := 0; attempt < 25 && !added; attempt++ {
		switch err := srv.AddTenant("stormy", tc); {
		case err == nil:
			added = true
		case attempt == 24:
			t.Fatalf("AddTenant: %v\n%s", err, gp.Src)
		}
	}

	// Phase 1: two thirds of the stream under live faults.
	cut := 2 * len(triples) / 3
	for _, tr := range triples[:cut] {
		if err := srv.Push("stormy", tr); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Sync("stormy"); err != nil {
		t.Fatal(err)
	}
	if inj.Stats().Fired() == 0 {
		t.Fatalf("fault schedule never fired: %+v", inj.Stats())
	}

	// Phase 2: heal, let every quarantine (MaxDelay 150ms + jitter) expire,
	// settle over two windows, then demand fallback-free remote serving.
	inj.Heal()
	time.Sleep(250 * time.Millisecond)
	settle := cut + 2*tc.WindowStep
	for _, tr := range triples[cut:settle] {
		if err := srv.Push("stormy", tr); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Sync("stormy"); err != nil {
		t.Fatal(err)
	}
	mid, ok := srv.TenantTransportStats("stormy")
	if !ok {
		t.Fatal("no transport stats for a remote-backed tenant")
	}
	for _, tr := range triples[settle:] {
		if err := srv.Push("stormy", tr); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Drain("stormy"); err != nil {
		t.Fatal(err)
	}
	final, _ := srv.TenantTransportStats("stormy")
	if n := final.LocalFallbacks - mid.LocalFallbacks; n != 0 {
		t.Errorf("%d local fallback(s) after heal+settle; recovery incomplete", n)
	}
	if final.RemoteWindows <= mid.RemoteWindows {
		t.Errorf("no remote windows after heal (remote %d -> %d)", mid.RemoteWindows, final.RemoteWindows)
	}

	// Every window — faulted, settling, healed — must equal the solo local
	// oracle.
	solo := tc
	solo.Workers = nil
	want := soloRun(t, solo, triples)
	got := col.snapshot()
	if len(got) != len(want) {
		row, _ := srv.TenantStats("stormy")
		t.Fatalf("served %d windows, solo %d (stats %+v)", len(got), len(want), row)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("window %d: chaos-served answers diverge from solo run", i)
		}
	}
}
