// Package serve multiplexes many independent stream-reasoning pipelines —
// tenants — over one shared fleet of executor workers. It is the
// multi-tenant serving layer of the reproduction: "millions of users" is not
// one big window but many programs × many streams in one process.
//
// Each tenant owns a full pipeline: its own ASP program, its own window
// operator, its own reasoner with a PRIVATE intern table (budgeted tenants
// rotate it; unbudgeted tenants still get their own, so no tenant ever
// interns into the process-wide default table), and a bounded ingress queue.
// The fleet is a fixed set of goroutines — resizable at runtime — that pull
// ready windows off tenant queues under a deficit round-robin scheduler, so
// one hot tenant cannot starve the rest: every backlogged tenant earns
// Quantum items of credit per scheduling pass and dispatches when its credit
// covers its head window.
//
// Backpressure is per tenant. When a stream outruns its budget the ingress
// queue fills, and Push either sheds the oldest queued window (counted, and
// the successor window is re-seeded from scratch because its delta was
// relative to the shed one) or blocks the producer until the fleet catches
// up.
//
// Tenants backed by remote workers (TenantConfig.Workers) run their windows
// through a distributed DPR engine instead of a local one; several tenants
// can name the same worker addresses — the transport layer hosts one session
// per tenant partition on a shared worker process.
package serve
