package ast

import (
	"fmt"
	"sort"
	"strings"
)

// This file holds the language extensions beyond plain disjunctive rules:
// string and function terms, constant intervals, #show declarations, choice
// rules, and aggregate literals. The paper's programs do not need them, but
// a credible ASP substrate does.

// Additional term kinds (continuing the TermKind enumeration in ast.go).
const (
	// StringTerm is a quoted string constant, ordered after symbols.
	StringTerm TermKind = iota + 10
	// FuncTerm is an uninterpreted function term f(t1,...,tn), ordered
	// after strings; Sym is the functor, FArgs the arguments.
	FuncTerm
	// IntervalTerm is a constant integer interval lo..hi expanded by the
	// grounder; L and R hold the bounds.
	IntervalTerm
)

// Str returns a string term.
func Str(v string) Term { return Term{Kind: StringTerm, Sym: v} }

// Func returns a function term f(args...).
func Func(name string, args ...Term) Term {
	return Term{Kind: FuncTerm, Sym: name, FArgs: args}
}

// Interval returns the interval term lo..hi.
func Interval(lo, hi Term) Term {
	return Term{Kind: IntervalTerm, L: &lo, R: &hi}
}

// ShowDecl is a "#show name/arity." declaration.
type ShowDecl struct {
	Pred  string
	Arity int
}

func (s ShowDecl) String() string {
	return fmt.Sprintf("#show %s/%d.", s.Pred, s.Arity)
}

// AggFunc is an aggregate function.
type AggFunc uint8

// Aggregate functions.
const (
	AggCount AggFunc = iota
	AggSum
	AggMin
	AggMax
)

func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "#count"
	case AggSum:
		return "#sum"
	case AggMin:
		return "#min"
	case AggMax:
		return "#max"
	default:
		return "#?"
	}
}

// AggElem is one element of an aggregate: a tuple of terms qualified by a
// conjunction of (atom or comparison) literals.
type AggElem struct {
	Terms []Term
	Cond  []Literal
}

func (e AggElem) String() string {
	var b strings.Builder
	for i, t := range e.Terms {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(t.String())
	}
	if len(e.Cond) > 0 {
		b.WriteString(" : ")
		for i, l := range e.Cond {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(l.String())
		}
	}
	return b.String()
}

// Aggregate is an aggregate literal such as
//
//	N = #count{ C : car_location(C, X) }
//	#sum{ W, T : task(T), weight(T, W) } > 10
//
// The guard comparison is normalized so the aggregate value is on the left
// of GuardOp ("3 < #count{...}" parses as "#count{...} > 3"); a CmpEq guard
// against a plain variable acts as an assignment that binds the variable
// during grounding.
type Aggregate struct {
	Func     AggFunc
	Elems    []AggElem
	GuardOp  CompOp
	GuardRHS Term
}

func (a Aggregate) String() string {
	var b strings.Builder
	b.WriteString(a.Func.String())
	b.WriteByte('{')
	for i, e := range a.Elems {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(e.String())
	}
	b.WriteByte('}')
	b.WriteString(a.GuardOp.String())
	b.WriteString(a.GuardRHS.String())
	return b.String()
}

// GlobalVars returns the sorted variables of the aggregate that also occur
// in the given outer variable set — the variables that must be bound before
// the aggregate can be evaluated. Variables local to the aggregate's
// elements are enumerated by the grounder instead.
func (a Aggregate) GlobalVars(outer map[string]bool) []string {
	inner := make(map[string]bool)
	for _, e := range a.Elems {
		for _, t := range e.Terms {
			t.CollectVars(inner)
		}
		for _, l := range e.Cond {
			l.CollectVars(inner)
		}
	}
	var out []string
	for v := range inner {
		if outer[v] {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// CollectLocalVars adds all variables appearing anywhere in the aggregate.
func (a Aggregate) CollectVars(vars map[string]bool) {
	for _, e := range a.Elems {
		for _, t := range e.Terms {
			t.CollectVars(vars)
		}
		for _, l := range e.Cond {
			l.CollectVars(vars)
		}
	}
	a.GuardRHS.CollectVars(vars)
}

// Apply substitutes bound variables throughout the aggregate.
func (a Aggregate) Apply(s Subst) Aggregate {
	out := Aggregate{Func: a.Func, GuardOp: a.GuardOp, GuardRHS: a.GuardRHS.Apply(s)}
	out.Elems = make([]AggElem, len(a.Elems))
	for i, e := range a.Elems {
		ne := AggElem{Terms: make([]Term, len(e.Terms)), Cond: make([]Literal, len(e.Cond))}
		for j, t := range e.Terms {
			ne.Terms[j] = t.Apply(s)
		}
		for j, l := range e.Cond {
			ne.Cond[j] = l.Apply(s)
		}
		out.Elems[i] = ne
	}
	return out
}

const (
	// AggLiteral marks a body literal carrying an aggregate (continuing the
	// LiteralKind enumeration in ast.go).
	AggLiteral LiteralKind = iota + 10
)

// AggLit wraps an aggregate into a body literal.
func AggLit(a Aggregate) Literal { return Literal{Kind: AggLiteral, Agg: &a} }

// UnboundedChoice marks a missing choice bound.
const UnboundedChoice = -1
