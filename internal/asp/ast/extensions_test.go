package ast

import (
	"testing"
)

func TestNewTermKinds(t *testing.T) {
	s := Str("hello world")
	if s.Kind != StringTerm || s.String() != `"hello world"` {
		t.Errorf("string term = %v %q", s.Kind, s.String())
	}
	f := Func("f", Var("X"), Num(1))
	if f.Kind != FuncTerm || f.String() != "f(X,1)" {
		t.Errorf("func term = %q", f.String())
	}
	if f.IsGround() {
		t.Error("f(X,1) is not ground")
	}
	g := Func("f", Sym("a"), Num(1))
	if !g.IsGround() {
		t.Error("f(a,1) is ground")
	}
	iv := Interval(Num(1), Num(3))
	if iv.Kind != IntervalTerm || iv.String() != "1..3" {
		t.Errorf("interval = %q", iv.String())
	}
	if iv.IsGround() {
		t.Error("intervals are never ground (they denote sets)")
	}
}

func TestFuncTermEqualityAndCompare(t *testing.T) {
	a := Func("f", Sym("a"), Num(1))
	b := Func("f", Sym("a"), Num(1))
	c := Func("f", Sym("a"), Num(2))
	d := Func("g", Sym("a"), Num(1))
	if !a.Equal(b) || a.Equal(c) || a.Equal(d) {
		t.Error("function term equality wrong")
	}
	// Ordering: numbers < symbols < strings < functions.
	if Num(99).Compare(a) >= 0 || Sym("zzz").Compare(a) >= 0 || Str("zzz").Compare(a) >= 0 {
		t.Error("functions must order last")
	}
	if a.Compare(c) >= 0 {
		t.Error("f(a,1) < f(a,2)")
	}
	if a.Compare(d) >= 0 {
		t.Error("f(...) < g(...)")
	}
	short := Func("f", Sym("a"))
	if short.Compare(a) >= 0 {
		t.Error("smaller arity orders first")
	}
}

func TestFuncTermApplyAndVars(t *testing.T) {
	f := Func("f", Var("X"), Func("g", Var("Y")))
	vars := map[string]bool{}
	f.CollectVars(vars)
	if !vars["X"] || !vars["Y"] || len(vars) != 2 {
		t.Errorf("vars = %v", vars)
	}
	applied := f.Apply(Subst{"X": Num(1), "Y": Sym("a")})
	if applied.String() != "f(1,g(a))" {
		t.Errorf("applied = %q", applied.String())
	}
	if !applied.IsGround() {
		t.Error("fully substituted func term must be ground")
	}
}

func TestStringCompareAndHolds(t *testing.T) {
	if Str("a").Compare(Str("b")) >= 0 || Str("b").Compare(Str("b")) != 0 {
		t.Error("string ordering wrong")
	}
	if Sym("zzz").Compare(Str("aaa")) >= 0 {
		t.Error("symbols order before strings")
	}
	if !CmpNeq.Holds(Str("x"), Sym("x")) {
		t.Error(`"x" and x are distinct terms`)
	}
}

func TestChoiceRuleString(t *testing.T) {
	r := ChoiceRule([]Atom{NewAtom("a"), NewAtom("b")}, Pos(NewAtom("c")))
	if got := r.String(); got != "{a; b} :- c." {
		t.Errorf("String = %q", got)
	}
	r.Lower, r.Upper = 1, 2
	if got := r.String(); got != "1 {a; b} 2 :- c." {
		t.Errorf("String = %q", got)
	}
	if r.IsFact() || r.IsConstraint() {
		t.Error("choice rules are neither facts nor constraints")
	}
	applied := r.Apply(Subst{})
	if !applied.Choice || applied.Lower != 1 || applied.Upper != 2 {
		t.Errorf("Apply lost choice metadata: %+v", applied)
	}
}

func TestShowDeclString(t *testing.T) {
	s := ShowDecl{Pred: "give_notification", Arity: 1}
	if s.String() != "#show give_notification/1." {
		t.Errorf("String = %q", s.String())
	}
	p := &Program{Shows: []ShowDecl{s}}
	p.Add(Fact(NewAtom("x")))
	if p.String() != "x.\n#show give_notification/1.\n" {
		t.Errorf("program = %q", p.String())
	}
	clone := p.Clone()
	clone.Shows = append(clone.Shows, ShowDecl{Pred: "y", Arity: 0})
	if len(p.Shows) != 1 {
		t.Error("Clone must copy Shows")
	}
}

func TestAggregateHelpers(t *testing.T) {
	agg := Aggregate{
		Func: AggCount,
		Elems: []AggElem{{
			Terms: []Term{Var("C")},
			Cond:  []Literal{Pos(NewAtom("car_location", Var("C"), Var("X")))},
		}},
		GuardOp:  CmpGt,
		GuardRHS: Num(3),
	}
	if agg.String() != "#count{C : car_location(C,X)}>3" {
		t.Errorf("String = %q", agg.String())
	}
	outer := map[string]bool{"X": true, "Z": true}
	globals := agg.GlobalVars(outer)
	if len(globals) != 1 || globals[0] != "X" {
		t.Errorf("globals = %v", globals)
	}
	vars := map[string]bool{}
	agg.CollectVars(vars)
	if !vars["C"] || !vars["X"] {
		t.Errorf("vars = %v", vars)
	}
	applied := agg.Apply(Subst{"X": Sym("city1")})
	if applied.String() != "#count{C : car_location(C,city1)}>3" {
		t.Errorf("applied = %q", applied.String())
	}
	lit := AggLit(agg)
	if lit.Kind != AggLiteral || lit.IsGround() {
		t.Errorf("literal = %+v", lit)
	}
	groundAgg := agg.Apply(Subst{"X": Sym("c"), "C": Sym("q")})
	if !AggLit(groundAgg).IsGround() {
		t.Error("fully substituted aggregate literal must be ground")
	}
}

func TestAggFuncStrings(t *testing.T) {
	want := map[AggFunc]string{AggCount: "#count", AggSum: "#sum", AggMin: "#min", AggMax: "#max"}
	for f, s := range want {
		if f.String() != s {
			t.Errorf("%v = %q, want %q", f, f.String(), s)
		}
	}
}
