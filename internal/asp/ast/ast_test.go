package ast

import (
	"testing"
	"testing/quick"
)

func TestTermString(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{Sym("newcastle"), "newcastle"},
		{Num(42), "42"},
		{Num(-7), "-7"},
		{Var("X"), "X"},
		{Arith(OpAdd, Var("X"), Num(1)), "(X+1)"},
		{Arith(OpMul, Num(2), Arith(OpSub, Var("Y"), Num(3))), "(2*(Y-3))"},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.term, got, c.want)
		}
	}
}

func TestTermIsGround(t *testing.T) {
	if !Sym("a").IsGround() || !Num(1).IsGround() {
		t.Error("constants must be ground")
	}
	if Var("X").IsGround() {
		t.Error("variables must not be ground")
	}
	if Arith(OpAdd, Var("X"), Num(1)).IsGround() {
		t.Error("arith with variable must not be ground")
	}
	if !Arith(OpAdd, Num(2), Num(1)).IsGround() {
		t.Error("arith over numbers must be ground")
	}
}

func TestTermCompare(t *testing.T) {
	cases := []struct {
		a, b Term
		want int
	}{
		{Num(1), Num(2), -1},
		{Num(2), Num(2), 0},
		{Num(3), Num(2), 1},
		{Num(5), Sym("a"), -1}, // numbers order before symbols
		{Sym("a"), Num(5), 1},
		{Sym("a"), Sym("b"), -1},
		{Sym("b"), Sym("b"), 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%s, %s) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestTermEval(t *testing.T) {
	s := Subst{"X": Num(10), "Y": Num(3)}
	got, err := Arith(OpAdd, Var("X"), Arith(OpMul, Var("Y"), Num(2))).Eval(s)
	if err != nil {
		t.Fatal(err)
	}
	if got.Num != 16 {
		t.Errorf("X + Y*2 = %d, want 16", got.Num)
	}
	if _, err := Var("Z").Eval(s); err == nil {
		t.Error("evaluating unbound variable should fail")
	}
	if _, err := Arith(OpDiv, Num(1), Num(0)).Eval(nil); err == nil {
		t.Error("division by zero should fail")
	}
	if _, err := Arith(OpMod, Num(1), Num(0)).Eval(nil); err == nil {
		t.Error("modulo by zero should fail")
	}
	if _, err := Arith(OpAdd, Sym("a"), Num(1)).Eval(nil); err == nil {
		t.Error("arithmetic on symbol should fail")
	}
}

func TestTermApplyFoldsArith(t *testing.T) {
	s := Subst{"X": Num(4)}
	got := Arith(OpMul, Var("X"), Num(5)).Apply(s)
	if got.Kind != NumberTerm || got.Num != 20 {
		t.Errorf("Apply should fold ground arithmetic, got %s", got)
	}
	// Unbound variable stays.
	got = Arith(OpMul, Var("Q"), Num(5)).Apply(s)
	if got.Kind != ArithTerm {
		t.Errorf("Apply must keep non-ground arithmetic, got %s", got)
	}
}

func TestAtomBasics(t *testing.T) {
	a := NewAtom("average_speed", Sym("newcastle"), Num(10))
	if a.String() != "average_speed(newcastle,10)" {
		t.Errorf("String = %q", a.String())
	}
	if a.PredKey() != "average_speed/2" {
		t.Errorf("PredKey = %q", a.PredKey())
	}
	if !a.IsGround() {
		t.Error("atom should be ground")
	}
	b := NewAtom("average_speed", Var("X"), Var("Y"))
	if b.IsGround() {
		t.Error("atom with vars should not be ground")
	}
	s := Subst{"X": Sym("newcastle"), "Y": Num(10)}
	if got := b.Apply(s); !got.Equal(a) {
		t.Errorf("Apply = %s, want %s", got, a)
	}
	z := NewAtom("p")
	if z.String() != "p" || z.PredKey() != "p/0" {
		t.Errorf("zero-arity atom: %q %q", z.String(), z.PredKey())
	}
}

func TestCompOpHolds(t *testing.T) {
	cases := []struct {
		op   CompOp
		l, r Term
		want bool
	}{
		{CmpLt, Num(10), Num(20), true},
		{CmpLt, Num(20), Num(20), false},
		{CmpLeq, Num(20), Num(20), true},
		{CmpGt, Num(55), Num(40), true},
		{CmpGeq, Num(40), Num(40), true},
		{CmpEq, Sym("a"), Sym("a"), true},
		{CmpNeq, Sym("a"), Sym("b"), true},
		{CmpEq, Num(1), Sym("a"), false},
	}
	for _, c := range cases {
		if got := c.op.Holds(c.l, c.r); got != c.want {
			t.Errorf("%s %s %s = %v, want %v", c.l, c.op, c.r, got, c.want)
		}
	}
}

func TestRuleString(t *testing.T) {
	r := NewRule(
		NewAtom("traffic_jam", Var("X")),
		Pos(NewAtom("very_slow_speed", Var("X"))),
		Pos(NewAtom("many_cars", Var("X"))),
		Not(NewAtom("traffic_light", Var("X"))),
	)
	want := "traffic_jam(X) :- very_slow_speed(X), many_cars(X), not traffic_light(X)."
	if got := r.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	f := Fact(NewAtom("p", Num(1)))
	if f.String() != "p(1)." || !f.IsFact() {
		t.Errorf("fact: %q", f.String())
	}
	c := Constraint(Pos(NewAtom("p", Var("X"))), Not(NewAtom("q", Var("X"))))
	if c.String() != ":- p(X), not q(X)." || !c.IsConstraint() {
		t.Errorf("constraint: %q", c.String())
	}
	d := Rule{Head: []Atom{NewAtom("a"), NewAtom("b")}}
	if d.String() != "a | b." {
		t.Errorf("disjunction: %q", d.String())
	}
}

func TestRuleVarsAndBodyPartition(t *testing.T) {
	r := NewRule(
		NewAtom("very_slow_speed", Var("X")),
		Pos(NewAtom("average_speed", Var("X"), Var("Y"))),
		Cmp(CmpLt, Var("Y"), Num(20)),
		Not(NewAtom("blocked", Var("X"))),
	)
	vars := r.Vars()
	if len(vars) != 2 || vars[0] != "X" || vars[1] != "Y" {
		t.Errorf("Vars = %v", vars)
	}
	if got := len(r.PositiveBody()); got != 1 {
		t.Errorf("PositiveBody len = %d", got)
	}
	if got := len(r.NegativeBody()); got != 1 {
		t.Errorf("NegativeBody len = %d", got)
	}
}

func TestCheckSafety(t *testing.T) {
	safe := NewRule(
		NewAtom("p", Var("X")),
		Pos(NewAtom("q", Var("X"))),
	)
	if err := safe.CheckSafety(); err != nil {
		t.Errorf("safe rule flagged: %v", err)
	}
	unsafeHead := NewRule(NewAtom("p", Var("X")))
	if err := unsafeHead.CheckSafety(); err == nil {
		t.Error("head variable without body should be unsafe")
	}
	unsafeNeg := NewRule(
		NewAtom("p"),
		Not(NewAtom("q", Var("X"))),
	)
	if err := unsafeNeg.CheckSafety(); err == nil {
		t.Error("variable only in negative body should be unsafe")
	}
	unsafeCmp := NewRule(
		NewAtom("p"),
		Cmp(CmpLt, Var("Y"), Num(3)),
	)
	err := unsafeCmp.CheckSafety()
	if err == nil {
		t.Fatal("variable only in comparison should be unsafe")
	}
	var se *SafetyError
	if !asSafetyError(err, &se) || se.Var != "Y" {
		t.Errorf("expected SafetyError on Y, got %v", err)
	}
}

func asSafetyError(err error, target **SafetyError) bool {
	se, ok := err.(*SafetyError)
	if ok {
		*target = se
	}
	return ok
}

func TestProgramPredicateSets(t *testing.T) {
	p := &Program{}
	p.Add(
		NewRule(NewAtom("very_slow_speed", Var("X")),
			Pos(NewAtom("average_speed", Var("X"), Var("Y"))),
			Cmp(CmpLt, Var("Y"), Num(20))),
		NewRule(NewAtom("traffic_jam", Var("X")),
			Pos(NewAtom("very_slow_speed", Var("X"))),
			Not(NewAtom("traffic_light", Var("X")))),
	)
	preds := p.Predicates()
	want := []string{"average_speed/2", "traffic_jam/1", "traffic_light/1", "very_slow_speed/1"}
	if len(preds) != len(want) {
		t.Fatalf("Predicates = %v, want %v", preds, want)
	}
	for i := range want {
		if preds[i] != want[i] {
			t.Fatalf("Predicates = %v, want %v", preds, want)
		}
	}
	heads := p.HeadPredicates()
	if len(heads) != 2 || heads[0] != "traffic_jam/1" || heads[1] != "very_slow_speed/1" {
		t.Errorf("HeadPredicates = %v", heads)
	}
	edb := p.BodyOnlyPredicates()
	if len(edb) != 2 || edb[0] != "average_speed/2" || edb[1] != "traffic_light/1" {
		t.Errorf("BodyOnlyPredicates = %v", edb)
	}
}

func TestProgramClone(t *testing.T) {
	p := &Program{}
	p.Add(Fact(NewAtom("a")))
	q := p.Clone()
	q.Add(Fact(NewAtom("b")))
	if len(p.Rules) != 1 || len(q.Rules) != 2 {
		t.Errorf("clone not independent: %d %d", len(p.Rules), len(q.Rules))
	}
}

// Property: Apply with a complete numeric substitution always grounds an
// atom, and the key of the result is stable under double application.
func TestQuickApplyGrounds(t *testing.T) {
	f := func(a, b int64, s1, s2 uint8) bool {
		v1 := "V" + string(rune('A'+s1%26))
		v2 := "V" + string(rune('A'+s2%26))
		atom := NewAtom("p", Var(v1), Var(v2), Num(a))
		sub := Subst{v1: Num(a), v2: Num(b)}
		g := atom.Apply(sub)
		if !g.IsGround() {
			return false
		}
		return g.Apply(sub).Key() == g.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Compare is antisymmetric and reflexive over ground terms.
func TestQuickCompareAntisymmetric(t *testing.T) {
	gen := func(n int64, sym uint8, useNum bool) Term {
		if useNum {
			return Num(n % 50)
		}
		return Sym(string(rune('a' + sym%6)))
	}
	f := func(n1, n2 int64, s1, s2 uint8, u1, u2 bool) bool {
		a, b := gen(n1, s1, u1), gen(n2, s2, u2)
		if a.Compare(a) != 0 || b.Compare(b) != 0 {
			return false
		}
		return a.Compare(b) == -b.Compare(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
