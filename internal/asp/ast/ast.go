// Package ast defines the abstract syntax of answer set programs: terms,
// atoms, body literals, rules, and programs. The representation is shared by
// the lexer/parser, the grounder, and the solver.
//
// A rule has the form
//
//	q1 | ... | qn :- p1, ..., pk, not pk+1, ..., not pm.
//
// where the head is a (possibly empty) disjunction of atoms and the body is a
// conjunction of positive literals, default-negated literals, and built-in
// comparison literals. A rule with an empty head is an integrity constraint;
// a rule with an empty body is a fact.
package ast

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// TermKind discriminates the variants of Term.
type TermKind uint8

// Term kinds.
const (
	// SymbolTerm is a constant symbol such as newcastle or high.
	SymbolTerm TermKind = iota
	// NumberTerm is an integer constant.
	NumberTerm
	// VariableTerm is a first-order variable (identifier starting with an
	// upper-case letter or underscore).
	VariableTerm
	// ArithTerm is a binary arithmetic expression over two sub-terms. It is
	// evaluated to a NumberTerm during grounding once both operands are bound.
	ArithTerm
)

// ArithOp is the operator of an ArithTerm.
type ArithOp uint8

// Arithmetic operators.
const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
)

func (op ArithOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "\\"
	default:
		return "?"
	}
}

// Term is a first-order term. The zero value is the symbol term with an empty
// name, which never occurs in parsed programs.
type Term struct {
	Kind TermKind
	// Sym holds the symbol name for SymbolTerm and the variable name for
	// VariableTerm.
	Sym string
	// Num holds the value of a NumberTerm.
	Num int64
	// L, R are the operands of an ArithTerm or the bounds of an
	// IntervalTerm.
	L, R *Term
	// Op is the operator of an ArithTerm.
	Op ArithOp
	// FArgs are the arguments of a FuncTerm.
	FArgs []Term
}

// Sym returns a symbol term with the given name.
func Sym(name string) Term { return Term{Kind: SymbolTerm, Sym: name} }

// Num returns a number term with the given value.
func Num(v int64) Term { return Term{Kind: NumberTerm, Num: v} }

// Var returns a variable term with the given name.
func Var(name string) Term { return Term{Kind: VariableTerm, Sym: name} }

// Arith returns the arithmetic term l op r.
func Arith(op ArithOp, l, r Term) Term {
	return Term{Kind: ArithTerm, Op: op, L: &l, R: &r}
}

// IsGround reports whether the term contains no variables. Interval terms
// are not ground even with constant bounds: they denote a set of values and
// must be expanded by the grounder before atoms are stored.
func (t Term) IsGround() bool {
	switch t.Kind {
	case VariableTerm, IntervalTerm:
		return false
	case ArithTerm:
		return t.L.IsGround() && t.R.IsGround()
	case FuncTerm:
		for _, a := range t.FArgs {
			if !a.IsGround() {
				return false
			}
		}
		return true
	default:
		return true
	}
}

// String renders the term in ASP surface syntax.
func (t Term) String() string {
	switch t.Kind {
	case SymbolTerm, VariableTerm:
		// The common constant/variable case needs no allocation at all.
		return t.Sym
	case NumberTerm:
		return strconv.FormatInt(t.Num, 10)
	default:
		return string(t.AppendString(nil))
	}
}

// AppendString appends the term's ASP surface syntax to dst and returns the
// extended slice, rendering without intermediate allocations. It is the
// builder behind String and the interning layer's key cache.
func (t Term) AppendString(dst []byte) []byte {
	switch t.Kind {
	case SymbolTerm, VariableTerm:
		return append(dst, t.Sym...)
	case NumberTerm:
		return strconv.AppendInt(dst, t.Num, 10)
	case ArithTerm:
		dst = append(dst, '(')
		dst = t.L.AppendString(dst)
		dst = append(dst, t.Op.String()...)
		dst = t.R.AppendString(dst)
		return append(dst, ')')
	case StringTerm:
		return strconv.AppendQuote(dst, t.Sym)
	case FuncTerm:
		dst = append(dst, t.Sym...)
		dst = append(dst, '(')
		for i, a := range t.FArgs {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = a.AppendString(dst)
		}
		return append(dst, ')')
	case IntervalTerm:
		dst = t.L.AppendString(dst)
		dst = append(dst, ".."...)
		return t.R.AppendString(dst)
	default:
		return append(dst, '?')
	}
}

// Equal reports structural equality of two terms.
func (t Term) Equal(u Term) bool {
	if t.Kind != u.Kind {
		return false
	}
	switch t.Kind {
	case SymbolTerm, VariableTerm, StringTerm:
		return t.Sym == u.Sym
	case NumberTerm:
		return t.Num == u.Num
	case ArithTerm:
		return t.Op == u.Op && t.L.Equal(*u.L) && t.R.Equal(*u.R)
	case IntervalTerm:
		return t.L.Equal(*u.L) && t.R.Equal(*u.R)
	case FuncTerm:
		if t.Sym != u.Sym || len(t.FArgs) != len(u.FArgs) {
			return false
		}
		for i := range t.FArgs {
			if !t.FArgs[i].Equal(u.FArgs[i]) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Compare orders ground terms the clingo way: numbers < symbols < strings <
// function terms; numbers by value, symbols and strings lexicographically,
// function terms by functor, then arity, then arguments. It is the ordering
// used by built-in comparison literals and #min/#max. Comparing non-ground
// terms is undefined but total (variables compare by name last).
func (t Term) Compare(u Term) int {
	rank := func(k TermKind) int {
		switch k {
		case NumberTerm:
			return 0
		case SymbolTerm:
			return 1
		case StringTerm:
			return 2
		case FuncTerm:
			return 3
		default:
			return 4
		}
	}
	if r1, r2 := rank(t.Kind), rank(u.Kind); r1 != r2 {
		if r1 < r2 {
			return -1
		}
		return 1
	}
	switch t.Kind {
	case NumberTerm:
		switch {
		case t.Num < u.Num:
			return -1
		case t.Num > u.Num:
			return 1
		}
		return 0
	case FuncTerm:
		if c := strings.Compare(t.Sym, u.Sym); c != 0 {
			return c
		}
		if len(t.FArgs) != len(u.FArgs) {
			if len(t.FArgs) < len(u.FArgs) {
				return -1
			}
			return 1
		}
		for i := range t.FArgs {
			if c := t.FArgs[i].Compare(u.FArgs[i]); c != 0 {
				return c
			}
		}
		return 0
	default:
		return strings.Compare(t.Sym, u.Sym)
	}
}

// Eval reduces the term to a constant under the substitution. It fails if a
// variable remains unbound or an arithmetic operand is not a number (or a
// division by zero occurs).
func (t Term) Eval(s Subst) (Term, error) {
	switch t.Kind {
	case SymbolTerm, NumberTerm, StringTerm:
		return t, nil
	case FuncTerm:
		if !t.IsGround() {
			return Term{}, fmt.Errorf("function term %s is not ground", t)
		}
		return t.Apply(s), nil
	case VariableTerm:
		if v, ok := s[t.Sym]; ok {
			return v.Eval(s)
		}
		return Term{}, fmt.Errorf("unbound variable %s", t.Sym)
	case ArithTerm:
		l, err := t.L.Eval(s)
		if err != nil {
			return Term{}, err
		}
		r, err := t.R.Eval(s)
		if err != nil {
			return Term{}, err
		}
		if l.Kind != NumberTerm || r.Kind != NumberTerm {
			return Term{}, fmt.Errorf("arithmetic on non-numeric terms %s %s %s", l, t.Op, r)
		}
		switch t.Op {
		case OpAdd:
			return Num(l.Num + r.Num), nil
		case OpSub:
			return Num(l.Num - r.Num), nil
		case OpMul:
			return Num(l.Num * r.Num), nil
		case OpDiv:
			if r.Num == 0 {
				return Term{}, fmt.Errorf("division by zero")
			}
			return Num(l.Num / r.Num), nil
		case OpMod:
			if r.Num == 0 {
				return Term{}, fmt.Errorf("modulo by zero")
			}
			return Num(l.Num % r.Num), nil
		}
	}
	return Term{}, fmt.Errorf("cannot evaluate term %s", t)
}

// CollectVars appends the names of all variables in t to vars.
func (t Term) CollectVars(vars map[string]bool) {
	switch t.Kind {
	case VariableTerm:
		vars[t.Sym] = true
	case ArithTerm, IntervalTerm:
		t.L.CollectVars(vars)
		t.R.CollectVars(vars)
	case FuncTerm:
		for _, a := range t.FArgs {
			a.CollectVars(vars)
		}
	}
}

// Apply substitutes bound variables in the term; unbound variables are left
// intact, and ground arithmetic sub-terms are folded to numbers.
func (t Term) Apply(s Subst) Term {
	switch t.Kind {
	case VariableTerm:
		if v, ok := s[t.Sym]; ok {
			return v
		}
		return t
	case ArithTerm:
		l := t.L.Apply(s)
		r := t.R.Apply(s)
		folded := Term{Kind: ArithTerm, Op: t.Op, L: &l, R: &r}
		if l.IsGround() && r.IsGround() {
			if v, err := folded.Eval(nil); err == nil {
				return v
			}
		}
		return folded
	case IntervalTerm:
		l := t.L.Apply(s)
		r := t.R.Apply(s)
		return Term{Kind: IntervalTerm, L: &l, R: &r}
	case FuncTerm:
		args := make([]Term, len(t.FArgs))
		for i, a := range t.FArgs {
			args[i] = a.Apply(s)
		}
		return Term{Kind: FuncTerm, Sym: t.Sym, FArgs: args}
	default:
		return t
	}
}

// Subst is a variable binding environment.
type Subst map[string]Term

// Clone returns an independent copy of the substitution.
func (s Subst) Clone() Subst {
	c := make(Subst, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// Atom is a predicate applied to a list of terms.
type Atom struct {
	Pred string
	Args []Term
}

// NewAtom builds an atom.
func NewAtom(pred string, args ...Term) Atom { return Atom{Pred: pred, Args: args} }

// Arity returns the number of arguments.
func (a Atom) Arity() int { return len(a.Args) }

// PredKey returns the "name/arity" key identifying the predicate.
func (a Atom) PredKey() string { return a.Pred + "/" + strconv.Itoa(len(a.Args)) }

// IsGround reports whether all arguments are ground.
func (a Atom) IsGround() bool {
	for _, t := range a.Args {
		if !t.IsGround() {
			return false
		}
	}
	return true
}

// String renders the atom in ASP surface syntax.
func (a Atom) String() string {
	if len(a.Args) == 0 {
		return a.Pred
	}
	return string(a.AppendString(nil))
}

// AppendString appends the atom's ASP surface syntax to dst and returns the
// extended slice.
func (a Atom) AppendString(dst []byte) []byte {
	dst = append(dst, a.Pred...)
	if len(a.Args) == 0 {
		return dst
	}
	dst = append(dst, '(')
	for i, t := range a.Args {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = t.AppendString(dst)
	}
	return append(dst, ')')
}

// Key returns a canonical string key for a ground atom, used for
// deduplication and set membership. It coincides with String for ground atoms.
func (a Atom) Key() string { return a.String() }

// Equal reports structural equality.
func (a Atom) Equal(b Atom) bool {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if !a.Args[i].Equal(b.Args[i]) {
			return false
		}
	}
	return true
}

// Apply substitutes variables throughout the atom.
func (a Atom) Apply(s Subst) Atom {
	if len(a.Args) == 0 {
		return a
	}
	args := make([]Term, len(a.Args))
	for i, t := range a.Args {
		args[i] = t.Apply(s)
	}
	return Atom{Pred: a.Pred, Args: args}
}

// CollectVars adds the atom's variables to vars.
func (a Atom) CollectVars(vars map[string]bool) {
	for _, t := range a.Args {
		t.CollectVars(vars)
	}
}

// CompOp is a built-in comparison operator.
type CompOp uint8

// Comparison operators.
const (
	CmpEq CompOp = iota
	CmpNeq
	CmpLt
	CmpLeq
	CmpGt
	CmpGeq
)

func (op CompOp) String() string {
	switch op {
	case CmpEq:
		return "="
	case CmpNeq:
		return "!="
	case CmpLt:
		return "<"
	case CmpLeq:
		return "<="
	case CmpGt:
		return ">"
	case CmpGeq:
		return ">="
	default:
		return "?"
	}
}

// Holds evaluates the comparison over two ground terms.
func (op CompOp) Holds(l, r Term) bool {
	c := l.Compare(r)
	switch op {
	case CmpEq:
		return c == 0
	case CmpNeq:
		return c != 0
	case CmpLt:
		return c < 0
	case CmpLeq:
		return c <= 0
	case CmpGt:
		return c > 0
	case CmpGeq:
		return c >= 0
	default:
		return false
	}
}

// LiteralKind discriminates body literal variants.
type LiteralKind uint8

// Body literal kinds.
const (
	// AtomLiteral is a (possibly default-negated) predicate atom.
	AtomLiteral LiteralKind = iota
	// CompLiteral is a built-in comparison between two terms.
	CompLiteral
)

// Literal is one conjunct of a rule body.
type Literal struct {
	Kind LiteralKind
	// Neg marks default negation (not a) on an AtomLiteral.
	Neg  bool
	Atom Atom
	// Op, Lhs, Rhs describe a CompLiteral.
	Op       CompOp
	Lhs, Rhs Term
	// Agg describes an AggLiteral.
	Agg *Aggregate
}

// Pos returns a positive atom literal.
func Pos(a Atom) Literal { return Literal{Kind: AtomLiteral, Atom: a} }

// Not returns a default-negated atom literal.
func Not(a Atom) Literal { return Literal{Kind: AtomLiteral, Neg: true, Atom: a} }

// Cmp returns a comparison literal.
func Cmp(op CompOp, l, r Term) Literal {
	return Literal{Kind: CompLiteral, Op: op, Lhs: l, Rhs: r}
}

// String renders the literal in ASP surface syntax.
func (l Literal) String() string {
	switch l.Kind {
	case CompLiteral:
		return fmt.Sprintf("%s%s%s", l.Lhs, l.Op, l.Rhs)
	case AggLiteral:
		return l.Agg.String()
	default:
		if l.Neg {
			return "not " + l.Atom.String()
		}
		return l.Atom.String()
	}
}

// Apply substitutes variables throughout the literal.
func (l Literal) Apply(s Subst) Literal {
	switch l.Kind {
	case CompLiteral:
		return Literal{Kind: CompLiteral, Op: l.Op, Lhs: l.Lhs.Apply(s), Rhs: l.Rhs.Apply(s)}
	case AggLiteral:
		agg := l.Agg.Apply(s)
		return Literal{Kind: AggLiteral, Agg: &agg}
	default:
		return Literal{Kind: AtomLiteral, Neg: l.Neg, Atom: l.Atom.Apply(s)}
	}
}

// CollectVars adds the literal's variables to vars.
func (l Literal) CollectVars(vars map[string]bool) {
	switch l.Kind {
	case CompLiteral:
		l.Lhs.CollectVars(vars)
		l.Rhs.CollectVars(vars)
	case AggLiteral:
		l.Agg.CollectVars(vars)
	default:
		l.Atom.CollectVars(vars)
	}
}

// IsGround reports whether the literal contains no variables.
func (l Literal) IsGround() bool {
	switch l.Kind {
	case CompLiteral:
		return l.Lhs.IsGround() && l.Rhs.IsGround()
	case AggLiteral:
		vars := make(map[string]bool)
		l.Agg.CollectVars(vars)
		return len(vars) == 0
	default:
		return l.Atom.IsGround()
	}
}

// Rule is a disjunctive rule, a fact (empty body), an integrity constraint
// (empty head), or — when Choice is set — a choice rule
//
//	lo { a1 ; ... ; an } hi :- body.
//
// whose head atoms may each independently be chosen true when the body
// holds, subject to the cardinality bounds (UnboundedChoice disables a
// bound).
type Rule struct {
	Head []Atom
	Body []Literal
	// Choice marks a choice rule; Lower/Upper are its cardinality bounds
	// (use UnboundedChoice for an absent bound).
	Choice       bool
	Lower, Upper int
}

// ChoiceRule builds an unbounded choice rule { heads } :- body.
func ChoiceRule(heads []Atom, body ...Literal) Rule {
	return Rule{Head: heads, Body: body, Choice: true, Lower: UnboundedChoice, Upper: UnboundedChoice}
}

// Fact builds a rule with only a head atom.
func Fact(a Atom) Rule { return Rule{Head: []Atom{a}} }

// NewRule builds a rule from a single head atom and body literals.
func NewRule(head Atom, body ...Literal) Rule {
	return Rule{Head: []Atom{head}, Body: body}
}

// Constraint builds an integrity constraint from body literals.
func Constraint(body ...Literal) Rule { return Rule{Body: body} }

// IsFact reports whether the rule is a non-choice rule with an empty body
// and a single head atom.
func (r Rule) IsFact() bool { return len(r.Body) == 0 && len(r.Head) == 1 && !r.Choice }

// IsConstraint reports whether the rule has an empty head (and is not a
// choice rule).
func (r Rule) IsConstraint() bool { return len(r.Head) == 0 && !r.Choice }

// IsGround reports whether head and body contain no variables.
func (r Rule) IsGround() bool {
	for _, a := range r.Head {
		if !a.IsGround() {
			return false
		}
	}
	for _, l := range r.Body {
		if !l.IsGround() {
			return false
		}
	}
	return true
}

// String renders the rule in ASP surface syntax, terminated by a period.
func (r Rule) String() string {
	var b strings.Builder
	if r.Choice {
		if r.Lower != UnboundedChoice {
			fmt.Fprintf(&b, "%d ", r.Lower)
		}
		b.WriteByte('{')
		for i, a := range r.Head {
			if i > 0 {
				b.WriteString("; ")
			}
			b.WriteString(a.String())
		}
		b.WriteByte('}')
		if r.Upper != UnboundedChoice {
			fmt.Fprintf(&b, " %d", r.Upper)
		}
	} else {
		for i, a := range r.Head {
			if i > 0 {
				b.WriteString(" | ")
			}
			b.WriteString(a.String())
		}
	}
	if len(r.Body) > 0 {
		if len(r.Head) > 0 || r.Choice {
			b.WriteByte(' ')
		}
		b.WriteString(":- ")
		for i, l := range r.Body {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(l.String())
		}
	}
	b.WriteByte('.')
	return b.String()
}

// Apply substitutes variables throughout the rule.
func (r Rule) Apply(s Subst) Rule {
	out := Rule{Choice: r.Choice, Lower: r.Lower, Upper: r.Upper}
	if len(r.Head) > 0 {
		out.Head = make([]Atom, len(r.Head))
		for i, a := range r.Head {
			out.Head[i] = a.Apply(s)
		}
	}
	if len(r.Body) > 0 {
		out.Body = make([]Literal, len(r.Body))
		for i, l := range r.Body {
			out.Body[i] = l.Apply(s)
		}
	}
	return out
}

// Vars returns the sorted names of all variables in the rule.
func (r Rule) Vars() []string {
	set := make(map[string]bool)
	for _, a := range r.Head {
		a.CollectVars(set)
	}
	for _, l := range r.Body {
		l.CollectVars(set)
	}
	names := make([]string, 0, len(set))
	for v := range set {
		names = append(names, v)
	}
	sort.Strings(names)
	return names
}

// PositiveBody returns the positive atom literals of the body.
func (r Rule) PositiveBody() []Literal {
	var out []Literal
	for _, l := range r.Body {
		if l.Kind == AtomLiteral && !l.Neg {
			out = append(out, l)
		}
	}
	return out
}

// NegativeBody returns the default-negated atom literals of the body.
func (r Rule) NegativeBody() []Literal {
	var out []Literal
	for _, l := range r.Body {
		if l.Kind == AtomLiteral && l.Neg {
			out = append(out, l)
		}
	}
	return out
}

// SafetyError describes an unsafe rule: a variable that does not occur in any
// positive body atom but appears in the head, a negated literal, or a
// comparison.
type SafetyError struct {
	Rule Rule
	Var  string
}

func (e *SafetyError) Error() string {
	return fmt.Sprintf("unsafe rule %q: variable %s does not occur in any positive body atom", e.Rule, e.Var)
}

// CheckSafety verifies the ASP safety condition for the rule: every variable
// must occur in a positive body atom, be bound by an equality comparison
// V = expr (or expr = V) whose other side only uses safe variables, or be
// bound by an assignment aggregate V = #agg{...} whose global variables are
// safe. Variables local to an aggregate's elements are bound by the
// element conditions and are exempt.
func (r Rule) CheckSafety() error {
	safe := make(map[string]bool)
	for _, l := range r.Body {
		if l.Kind == AtomLiteral && !l.Neg {
			l.Atom.CollectVars(safe)
		}
	}
	// Variables occurring outside aggregate elements; aggregate-local
	// variables are bound by the element join, not by the rule.
	outer := make(map[string]bool)
	for _, a := range r.Head {
		a.CollectVars(outer)
	}
	for _, l := range r.Body {
		switch l.Kind {
		case AggLiteral:
			l.Agg.GuardRHS.CollectVars(outer)
		default:
			l.CollectVars(outer)
		}
	}

	// Propagate binding equalities and assignment aggregates to a fixpoint.
	for progress := true; progress; {
		progress = false
		allSafe := func(t Term) bool {
			vars := make(map[string]bool)
			t.CollectVars(vars)
			for name := range vars {
				if !safe[name] {
					return false
				}
			}
			return true
		}
		for _, l := range r.Body {
			switch {
			case l.Kind == CompLiteral && l.Op == CmpEq:
				if l.Lhs.Kind == VariableTerm && !safe[l.Lhs.Sym] && allSafe(l.Rhs) {
					safe[l.Lhs.Sym] = true
					progress = true
				}
				if l.Rhs.Kind == VariableTerm && !safe[l.Rhs.Sym] && allSafe(l.Lhs) {
					safe[l.Rhs.Sym] = true
					progress = true
				}
			case l.Kind == AggLiteral && l.Agg.GuardOp == CmpEq && l.Agg.GuardRHS.Kind == VariableTerm:
				v := l.Agg.GuardRHS.Sym
				if safe[v] {
					continue
				}
				globalsSafe := true
				for _, g := range l.Agg.GlobalVars(outer) {
					if !safe[g] {
						globalsSafe = false
						break
					}
				}
				if globalsSafe {
					safe[v] = true
					progress = true
				}
			}
		}
	}

	var unsafe []string
	for v := range outer {
		if !safe[v] {
			unsafe = append(unsafe, v)
		}
	}
	// Aggregate global variables must be safe too.
	for _, l := range r.Body {
		if l.Kind != AggLiteral {
			continue
		}
		for _, g := range l.Agg.GlobalVars(outer) {
			if !safe[g] {
				unsafe = append(unsafe, g)
			}
		}
	}
	if len(unsafe) == 0 {
		return nil
	}
	sort.Strings(unsafe)
	return &SafetyError{Rule: r, Var: unsafe[0]}
}

// Program is an ordered collection of rules plus #show declarations.
type Program struct {
	Rules []Rule
	// Shows lists the #show declarations; empty means show everything.
	Shows []ShowDecl
}

// Add appends rules to the program.
func (p *Program) Add(rules ...Rule) { p.Rules = append(p.Rules, rules...) }

// String renders the program one rule per line, #show directives last.
func (p *Program) String() string {
	var b strings.Builder
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	for _, s := range p.Shows {
		b.WriteString(s.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// CheckSafety verifies every rule of the program.
func (p *Program) CheckSafety() error {
	for _, r := range p.Rules {
		if err := r.CheckSafety(); err != nil {
			return err
		}
	}
	return nil
}

// Predicates returns the sorted set of "name/arity" keys occurring anywhere
// in the program (pre(P) in the paper).
func (p *Program) Predicates() []string {
	set := make(map[string]bool)
	for _, r := range p.Rules {
		for _, a := range r.Head {
			set[a.PredKey()] = true
		}
		for _, l := range r.Body {
			switch l.Kind {
			case AtomLiteral:
				set[l.Atom.PredKey()] = true
			case AggLiteral:
				for _, e := range l.Agg.Elems {
					for _, c := range e.Cond {
						if c.Kind == AtomLiteral {
							set[c.Atom.PredKey()] = true
						}
					}
				}
			}
		}
	}
	return sortedKeys(set)
}

// HeadPredicates returns the sorted set of predicate keys occurring in some
// rule head (the IDB predicates of the program).
func (p *Program) HeadPredicates() []string {
	set := make(map[string]bool)
	for _, r := range p.Rules {
		for _, a := range r.Head {
			set[a.PredKey()] = true
		}
	}
	return sortedKeys(set)
}

// BodyOnlyPredicates returns the sorted set of predicate keys that occur only
// in rule bodies (the EDB predicates of the program).
func (p *Program) BodyOnlyPredicates() []string {
	heads := make(map[string]bool)
	for _, r := range p.Rules {
		for _, a := range r.Head {
			heads[a.PredKey()] = true
		}
	}
	set := make(map[string]bool)
	for _, r := range p.Rules {
		for _, l := range r.Body {
			if l.Kind == AtomLiteral && !heads[l.Atom.PredKey()] {
				set[l.Atom.PredKey()] = true
			}
		}
	}
	return sortedKeys(set)
}

// Clone returns a deep-enough copy of the program: rule slices are copied so
// the clone can be extended independently. Terms are immutable by convention
// and shared.
func (p *Program) Clone() *Program {
	rules := make([]Rule, len(p.Rules))
	copy(rules, p.Rules)
	shows := make([]ShowDecl, len(p.Shows))
	copy(shows, p.Shows)
	return &Program{Rules: rules, Shows: shows}
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
