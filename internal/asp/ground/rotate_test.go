package ground

import (
	"fmt"
	"slices"
	"testing"

	"streamrule/internal/asp/ast"
	"streamrule/internal/asp/intern"
	"streamrule/internal/asp/parser"
)

// TestInstantiatorSurvivesRotation interleaves incremental updates with
// table rotations and checks every window's certain set against a fresh
// from-scratch oracle: eviction must be invisible to the grounding.
func TestInstantiatorSurvivesRotation(t *testing.T) {
	src := `seed(0).
a(X) :- b(X).
c(X) :- b(X), not d(X).
e(X) :- a(X), c(X).`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	tab := intern.NewTable()
	inst, err := NewInstantiator(prog, Options{Intern: tab})
	if err != nil {
		t.Fatal(err)
	}
	if !inst.SupportsIncremental() {
		t.Fatal("program should be incremental-eligible")
	}

	// Fresh constants per window: window w holds b(w..w+3) and d(w+1).
	window := func(w int) (facts []ast.Atom) {
		for i := w; i < w+4; i++ {
			facts = append(facts, ast.NewAtom("b", ast.Sym(fmt.Sprintf("u%d", i))))
		}
		facts = append(facts, ast.NewAtom("d", ast.Sym(fmt.Sprintf("u%d", w+1))))
		return facts
	}
	intern1 := func(facts []ast.Atom) []intern.AtomID {
		ids, err := inst.InternFacts(facts)
		if err != nil {
			t.Fatal(err)
		}
		return ids
	}

	prev := window(0)
	gp, err := inst.GroundIncremental(intern1(prev))
	if err != nil {
		t.Fatal(err)
	}
	for w := 1; w <= 12; w++ {
		cur := window(w)
		// Fact-level delta: previous window's facts minus current ones.
		var added, retracted []ast.Atom
		for _, f := range cur {
			if !slices.ContainsFunc(prev, f.Equal) {
				added = append(added, f)
			}
		}
		for _, f := range prev {
			if !slices.ContainsFunc(cur, f.Equal) {
				retracted = append(retracted, f)
			}
		}
		gp, err = inst.Update(intern1(added), intern1(retracted))
		if err != nil {
			t.Fatalf("window %d: Update: %v", w, err)
		}

		// Oracle: a fresh instantiator on its own table.
		oracle, err := Ground(prog, cur, Options{Intern: intern.NewTable()})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := certainKeys(gp), certainKeys(oracle); !slices.Equal(got, want) {
			t.Fatalf("window %d: certain sets diverge\ngot:  %v\nwant: %v", w, got, want)
		}

		// Every third window: rotate the table to the grounder's live set
		// and remap. The next Update must behave as if nothing happened.
		if w%3 == 0 {
			tab.AdvanceEpoch()
			rm, err := tab.Rotate(inst.LiveAtomIDs(nil))
			if err != nil {
				t.Fatalf("window %d: Rotate: %v", w, err)
			}
			if inst.Remap(rm) {
				t.Fatalf("window %d: remap reported a reseed despite a complete live set", w)
			}
			if !inst.IncrementalReady() {
				t.Fatalf("window %d: incremental state lost by rotation", w)
			}
			if rm.Stats.AtomsAfter >= rm.Stats.AtomsBefore && w > 3 {
				t.Errorf("window %d: rotation evicted nothing (%d -> %d) on a fresh-constant stream",
					w, rm.Stats.AtomsBefore, rm.Stats.AtomsAfter)
			}
		}
		prev = cur
	}

	// A rotation that ignores the live set must degrade safely: the
	// instantiator drops its state and reports the reseed.
	tab.AdvanceEpoch()
	tab.AdvanceEpoch() // nothing touched in the newest epoch
	rm, err := tab.Rotate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !inst.Remap(rm) {
		t.Fatal("remap after a state-dropping rotation must report reseed")
	}
	if inst.IncrementalReady() {
		t.Fatal("incremental state must be invalidated")
	}
	// Re-seeding works on the rotated table, program facts included.
	gp, err = inst.GroundIncremental(intern1(prev))
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := Ground(prog, prev, Options{Intern: intern.NewTable()})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := certainKeys(gp), certainKeys(oracle); !slices.Equal(got, want) {
		t.Fatalf("post-reseed certain sets diverge\ngot:  %v\nwant: %v", got, want)
	}
}
