package ground

import (
	"fmt"
	"sort"
	"strings"

	"streamrule/internal/asp/ast"
	"streamrule/internal/asp/intern"
)

// Aggregate evaluation. The grounder supports STRATIFIED aggregates: every
// predicate inside an aggregate's element conditions must be fully evaluated
// (a strictly earlier component) and deterministic (no possible-but-uncertain
// atoms) when the aggregate is instantiated. This covers the standard stream
// patterns (counting readings per entity, summing weights) and matches what
// bottom-up grounders evaluate natively; aggregates through negation cycles
// or disjunction are rejected with ErrUnstratifiedAggregate.

// ErrUnstratifiedAggregate reports an aggregate over a predicate whose
// extension is not fully decided at instantiation time.
type ErrUnstratifiedAggregate struct {
	Pred string
	Rule ast.Rule
}

func (e *ErrUnstratifiedAggregate) Error() string {
	return fmt.Sprintf("aggregate in rule %q ranges over %s, which is not fully evaluated before the rule's component (unstratified aggregate)", e.Rule, e.Pred)
}

// aggDeterministic verifies that pred's extension is decided: its component
// is strictly earlier than the current one (or it has no rules at all) and
// no uncertain atoms exist.
func (g *grounder) aggDeterministic(pred intern.PredID) bool {
	if ci, declared := g.compOf[pred]; declared && ci >= g.curComp {
		return false
	}
	if st := g.storeAt(pred); st != nil && st.uncertain > 0 {
		return false
	}
	return true
}

// evalAggregate computes the aggregate under the substitution (all global
// variables bound). It returns:
//   - bind != nil: the guard is an assignment to an unbound variable; bind
//     holds the computed value to be bound by the caller.
//   - holds: whether the (non-assignment) guard is satisfied.
func (g *grounder) evalAggregate(r ast.Rule, agg *ast.Aggregate, subst ast.Subst) (holds bool, bindVar string, bindVal ast.Term, err error) {
	applied := agg.Apply(subst)

	// Collect the distinct element tuples.
	tuples := make(map[string][]ast.Term)
	for _, elem := range applied.Elems {
		if err := g.enumElem(r, elem, ast.Subst{}, 0, func(s ast.Subst) error {
			vals := make([]ast.Term, len(elem.Terms))
			for i, t := range elem.Terms {
				v, err := t.Eval(s)
				if err != nil {
					return fmt.Errorf("aggregate tuple in rule %q: %w", r, err)
				}
				vals[i] = v
			}
			var sb strings.Builder
			for i, v := range vals {
				if i > 0 {
					sb.WriteByte('\x00')
				}
				sb.WriteString(v.String())
			}
			tuples[sb.String()] = vals
			return nil
		}); err != nil {
			return false, "", ast.Term{}, err
		}
	}

	// Apply the aggregate function.
	var value ast.Term
	switch applied.Func {
	case ast.AggCount:
		value = ast.Num(int64(len(tuples)))
	case ast.AggSum:
		var sum int64
		for _, vals := range tuples {
			if len(vals) == 0 || vals[0].Kind != ast.NumberTerm {
				return false, "", ast.Term{}, fmt.Errorf("#sum in rule %q over non-numeric tuple", r)
			}
			sum += vals[0].Num
		}
		value = ast.Num(sum)
	case ast.AggMin, ast.AggMax:
		if len(tuples) == 0 {
			return false, "", ast.Term{}, nil // empty set: #min/#max guard fails
		}
		keys := make([]string, 0, len(tuples))
		for k := range tuples {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		value = tuples[keys[0]][0]
		for _, k := range keys[1:] {
			v := tuples[k][0]
			if applied.Func == ast.AggMin && v.Compare(value) < 0 {
				value = v
			}
			if applied.Func == ast.AggMax && v.Compare(value) > 0 {
				value = v
			}
		}
	}

	// Guard: assignment or comparison.
	guard := applied.GuardRHS
	if applied.GuardOp == ast.CmpEq && guard.Kind == ast.VariableTerm {
		return true, guard.Sym, value, nil
	}
	gv, err := guard.Eval(nil)
	if err != nil {
		return false, "", ast.Term{}, fmt.Errorf("aggregate guard in rule %q: %w", r, err)
	}
	return applied.GuardOp.Holds(value, gv), "", ast.Term{}, nil
}

// enumElem joins the element's condition literals over certain atoms,
// calling yield with each satisfying extension of the substitution.
func (g *grounder) enumElem(r ast.Rule, elem ast.AggElem, subst ast.Subst, i int, yield func(ast.Subst) error) error {
	// Defer comparisons until their variables are bound; iterate atoms in
	// order (element conditions are small).
	if i == len(elem.Cond) {
		return yield(subst)
	}
	l := elem.Cond[i].Apply(subst)
	switch l.Kind {
	case ast.CompLiteral:
		if !l.Lhs.IsGround() || !l.Rhs.IsGround() {
			// Rotate the deferred comparison to the end.
			if allComparisons(elem.Cond[i:]) {
				return fmt.Errorf("aggregate condition in rule %q has an unbound comparison", r)
			}
			rest := append(append([]ast.Literal{}, elem.Cond[i+1:]...), elem.Cond[i])
			return g.enumElem(r, ast.AggElem{Terms: elem.Terms, Cond: rest}, subst, 0, func(s ast.Subst) error {
				return yield(s)
			})
		}
		lv, err := l.Lhs.Eval(nil)
		if err != nil {
			return err
		}
		rv, err := l.Rhs.Eval(nil)
		if err != nil {
			return err
		}
		if !l.Op.Holds(lv, rv) {
			return nil
		}
		return g.enumElem(r, elem, subst, i+1, yield)
	case ast.AtomLiteral:
		pred := g.pid(l.Atom)
		if !g.aggDeterministic(pred) {
			return &ErrUnstratifiedAggregate{Pred: l.Atom.Pred, Rule: r}
		}
		st := g.storeAt(pred)
		if l.Neg {
			if !l.Atom.IsGround() {
				return fmt.Errorf("aggregate condition in rule %q: negated literal %s has unbound variables", r, l)
			}
			if id, ok := g.tab.LookupAtom(l.Atom); ok {
				if _, present := st.lookup(id); present {
					return nil
				}
			}
			return g.enumElem(r, elem, subst, i+1, yield)
		}
		if st == nil {
			return nil
		}
		pattern := make([]ast.Term, len(l.Atom.Args))
		copy(pattern, l.Atom.Args)
		for _, pos := range st.candidates(g.tab, pattern) {
			atom := st.atoms[pos]
			s2 := subst.Clone()
			if unifySimple(pattern, atom.Args, s2) {
				if err := g.enumElem(r, elem, s2, i+1, yield); err != nil {
					return err
				}
			}
		}
		return nil
	default:
		return fmt.Errorf("unsupported literal %s inside aggregate", l)
	}
}

func allComparisons(lits []ast.Literal) bool {
	for _, l := range lits {
		if l.Kind != ast.CompLiteral {
			return false
		}
	}
	return true
}

// unifySimple matches pattern terms against ground terms, binding variables
// into subst (which the caller owns).
func unifySimple(pattern, grnd []ast.Term, subst ast.Subst) bool {
	for i, p := range pattern {
		p = p.Apply(subst)
		switch {
		case p.Kind == ast.VariableTerm:
			subst[p.Sym] = grnd[i]
		case p.IsGround():
			pv, err := p.Eval(nil)
			if err != nil || !pv.Equal(grnd[i]) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// expandIntervalAtoms expands every constant interval occurring in the atoms
// into the cartesian product of its values. It is applied to ground heads
// and to facts; a non-numeric or non-ground interval is an error.
func expandIntervalAtoms(atoms []ast.Atom) ([][]ast.Atom, error) {
	// Find the first interval occurrence.
	for ai, a := range atoms {
		for ti, t := range a.Args {
			if t.Kind != ast.IntervalTerm {
				continue
			}
			lo, err := t.L.Eval(nil)
			if err != nil {
				return nil, fmt.Errorf("interval lower bound %s: %w", t.L, err)
			}
			hi, err := t.R.Eval(nil)
			if err != nil {
				return nil, fmt.Errorf("interval upper bound %s: %w", t.R, err)
			}
			if lo.Kind != ast.NumberTerm || hi.Kind != ast.NumberTerm {
				return nil, fmt.Errorf("interval %s has non-numeric bounds", t)
			}
			var out [][]ast.Atom
			for v := lo.Num; v <= hi.Num; v++ {
				clone := make([]ast.Atom, len(atoms))
				copy(clone, atoms)
				args := make([]ast.Term, len(a.Args))
				copy(args, a.Args)
				args[ti] = ast.Num(v)
				clone[ai] = ast.Atom{Pred: a.Pred, Args: args}
				expanded, err := expandIntervalAtoms(clone)
				if err != nil {
					return nil, err
				}
				out = append(out, expanded...)
			}
			return out, nil
		}
	}
	return [][]ast.Atom{atoms}, nil
}

// isGroundOrInterval reports whether every argument of the atom is ground or
// a constant interval (expandable fact head).
func isGroundOrInterval(a ast.Atom) bool {
	for _, t := range a.Args {
		if t.Kind == ast.IntervalTerm {
			if !t.L.IsGround() || !t.R.IsGround() {
				return false
			}
			continue
		}
		if !t.IsGround() {
			return false
		}
	}
	return true
}

// hasInterval reports whether any term of the literal contains an interval.
func hasInterval(l ast.Literal) bool {
	var found bool
	var walk func(t ast.Term)
	walk = func(t ast.Term) {
		switch t.Kind {
		case ast.IntervalTerm:
			found = true
		case ast.ArithTerm:
			walk(*t.L)
			walk(*t.R)
		case ast.FuncTerm:
			for _, a := range t.FArgs {
				walk(a)
			}
		}
	}
	switch l.Kind {
	case ast.AtomLiteral:
		for _, t := range l.Atom.Args {
			walk(t)
		}
	case ast.CompLiteral:
		walk(l.Lhs)
		walk(l.Rhs)
	}
	return found
}
