package ground

import (
	"fmt"
	"slices"
	"testing"

	"streamrule/internal/asp/ast"
	"streamrule/internal/asp/intern"
	"streamrule/internal/asp/parser"
)

// fuzzPrograms are the fixed programs the fuzzer drives add/retract
// sequences against; together they cover layered negation, comparisons,
// positive recursion, constraints, program facts, and interval heads.
var fuzzPrograms = []string{
	`a(X) :- b(X).
c(X) :- b(X), not d(X).`,
	`slow(X) :- speed(X, Y), Y < 20.
jam(X) :- slow(X), cars(X), not light(X).`,
	`path(X, Y) :- edge(X, Y).
path(X, Z) :- edge(X, Y), path(Y, Z).
cyc(X) :- path(X, X).
safe(X) :- probe(X), not cyc(X).`,
	`hot(X) :- temp(X, Y), Y > 30.
:- hot(X), critical(X).`,
	`zone(1..2).
level(X, Y) :- reading(X, Y), zone(X).
alert(X) :- level(X, Y), Y > 5.`,
}

// fuzzUniverse builds the (deterministic) atom universe of a program index:
// a small pool of input facts the ops bytes select from.
func fuzzUniverse(progSel int, tab *intern.Table) []intern.AtomID {
	var atoms []ast.Atom
	mk := func(pred string, args ...ast.Term) {
		atoms = append(atoms, ast.NewAtom(pred, args...))
	}
	switch progSel {
	case 0:
		for i := 0; i < 4; i++ {
			mk("b", ast.Num(int64(i)))
			mk("d", ast.Num(int64(i)))
		}
	case 1:
		for i := 0; i < 3; i++ {
			s := ast.Sym(fmt.Sprintf("l%d", i))
			for _, v := range []int64{10, 30} {
				mk("speed", s, ast.Num(v))
			}
			mk("cars", s)
			mk("light", s)
		}
	case 2:
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				mk("edge", ast.Num(int64(i)), ast.Num(int64(j)))
			}
			mk("probe", ast.Num(int64(i)))
		}
	case 3:
		for i := 0; i < 3; i++ {
			s := ast.Sym(fmt.Sprintf("z%d", i))
			for _, v := range []int64{20, 40} {
				mk("temp", s, ast.Num(v))
			}
			mk("critical", s)
		}
	default:
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				mk("reading", ast.Num(int64(i)), ast.Num(int64(j*4)))
			}
		}
	}
	ids := make([]intern.AtomID, len(atoms))
	for i, a := range atoms {
		ids[i] = tab.InternAtom(a)
	}
	return ids
}

// fuzzIncremental interprets ops as an add/retract sequence over the atom
// universe, applied in small batches, and checks the incrementally
// maintained grounding against a from-scratch oracle after every batch.
func fuzzIncremental(t *testing.T, progSel byte, ops []byte) {
	sel := int(progSel) % len(fuzzPrograms)
	prog, err := parser.Parse(fuzzPrograms[sel])
	if err != nil {
		t.Fatalf("fuzz program %d does not parse: %v", sel, err)
	}
	tab := intern.NewTable()
	opts := Options{Intern: tab}
	inc, err := NewInstantiator(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !inc.SupportsIncremental() {
		t.Fatalf("fuzz program %d must be incremental-eligible", sel)
	}
	oracle, err := NewInstantiator(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	universe := fuzzUniverse(sel, tab)
	if len(ops) > 96 {
		ops = ops[:96]
	}

	ref := map[intern.AtomID]int{}
	var facts []intern.AtomID
	check := func(got *Program) {
		t.Helper()
		want, err := oracle.Ground(facts)
		if err != nil {
			t.Fatalf("oracle: %v", err)
		}
		if got.Inconsistent != want.Inconsistent {
			t.Fatalf("Inconsistent = %v, oracle %v (facts %v)", got.Inconsistent, want.Inconsistent, renderIDs(tab, facts))
		}
		if got.Inconsistent {
			return
		}
		g := slices.Clone(got.CertainIDs)
		w := slices.Clone(want.CertainIDs)
		slices.Sort(g)
		slices.Sort(w)
		if !slices.Equal(g, w) {
			t.Fatalf("certain atoms diverge\nincremental: %v\noracle:      %v",
				renderIDs(tab, g), renderIDs(tab, w))
		}
	}

	gp, err := inc.GroundIncremental(nil)
	if err != nil {
		t.Fatalf("seed: %v", err)
	}
	check(gp)

	var added, retracted []intern.AtomID
	flush := func() {
		if len(added)+len(retracted) == 0 {
			return
		}
		gp, err := inc.Update(added, retracted)
		if err != nil {
			t.Fatalf("update(add=%v, retract=%v): %v", renderIDs(tab, added), renderIDs(tab, retracted), err)
		}
		added, retracted = added[:0], retracted[:0]
		check(gp)
	}
	for i, op := range ops {
		id := universe[int(op&0x7f)%len(universe)]
		if op&0x80 == 0 {
			facts = append(facts, id)
			ref[id]++
			if ref[id] == 1 {
				added = append(added, id)
			}
			// An atom added and retracted in the same batch must net out;
			// keep batches transition-clean by dropping the pending retract.
			if k := slices.Index(retracted, id); k >= 0 {
				retracted = slices.Delete(retracted, k, k+1)
				added = added[:len(added)-1]
			}
		} else if ref[id] > 0 {
			ref[id]--
			k := slices.Index(facts, id)
			facts = slices.Delete(facts, k, k+1)
			if ref[id] == 0 {
				retracted = append(retracted, id)
				if k := slices.Index(added, id); k >= 0 {
					added = slices.Delete(added, k, k+1)
					retracted = retracted[:len(retracted)-1]
				}
			}
		}
		if i%3 == 2 {
			flush()
		}
	}
	flush()
}

// FuzzIncrementalGround fuzzes random add/retract sequences through the
// incremental grounding path against the from-scratch oracle. The seed
// corpus under testdata/fuzz covers every fixed program and mixed
// add/retract batches.
func FuzzIncrementalGround(f *testing.F) {
	f.Add(byte(0), []byte{0x00, 0x01, 0x80, 0x02, 0x81, 0x82})
	f.Add(byte(1), []byte{0x00, 0x02, 0x04, 0x06, 0x80, 0x84, 0x01, 0x03})
	f.Add(byte(2), []byte{0x00, 0x04, 0x08, 0x01, 0x80, 0x88, 0x05, 0x09, 0x84})
	f.Add(byte(3), []byte{0x01, 0x03, 0x05, 0x81, 0x02, 0x83, 0x04})
	f.Add(byte(4), []byte{0x00, 0x01, 0x02, 0x03, 0x80, 0x81, 0x04, 0x05, 0x82, 0x83})
	f.Fuzz(fuzzIncremental)
}
