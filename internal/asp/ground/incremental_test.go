package ground

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"streamrule/internal/asp/ast"
	"streamrule/internal/asp/intern"
	"streamrule/internal/asp/parser"
)

// factGen produces random input facts for a program's input predicates.
type factGen func(r *rand.Rand) ast.Atom

// incrementalHarness drives an incremental instantiator through a random
// add/retract sequence and checks every step against a from-scratch oracle
// sharing the same interning table.
func incrementalHarness(t *testing.T, src string, gen factGen, steps, churn int, seed int64) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	tab := intern.NewTable()
	opts := Options{Intern: tab}
	inc, err := NewInstantiator(prog, opts)
	if err != nil {
		t.Fatalf("instantiator: %v", err)
	}
	if !inc.SupportsIncremental() {
		t.Fatalf("program unexpectedly ineligible for incremental grounding:\n%s", src)
	}
	oracle, err := NewInstantiator(prog, opts)
	if err != nil {
		t.Fatal(err)
	}

	rnd := rand.New(rand.NewSource(seed))
	var facts []intern.AtomID // current window, as a multiset
	ref := map[intern.AtomID]int{}

	check := func(step int, got *Program) {
		t.Helper()
		want, err := oracle.Ground(facts)
		if err != nil {
			t.Fatalf("step %d: oracle: %v", step, err)
		}
		if got.Inconsistent != want.Inconsistent {
			t.Fatalf("step %d: Inconsistent = %v, oracle %v", step, got.Inconsistent, want.Inconsistent)
		}
		if got.Inconsistent {
			return
		}
		g := slices.Clone(got.CertainIDs)
		w := slices.Clone(want.CertainIDs)
		slices.Sort(g)
		slices.Sort(w)
		if !slices.Equal(g, w) {
			t.Fatalf("step %d: certain atoms diverge:\nincremental: %v\noracle:      %v",
				step, renderIDs(tab, g), renderIDs(tab, w))
		}
		if len(got.Rules) != 0 {
			t.Fatalf("step %d: incremental program has %d residual rules", step, len(got.Rules))
		}
	}

	// Seed window.
	for i := 0; i < churn*2; i++ {
		id := tab.InternAtom(gen(rnd))
		facts = append(facts, id)
		ref[id]++
	}
	gp, err := inc.GroundIncremental(facts)
	if err != nil {
		t.Fatalf("seed: %v", err)
	}
	check(0, gp)

	for step := 1; step <= steps; step++ {
		var added, retracted []intern.AtomID
		nRem := rnd.Intn(churn + 1)
		for i := 0; i < nRem && len(facts) > 0; i++ {
			k := rnd.Intn(len(facts))
			id := facts[k]
			facts[k] = facts[len(facts)-1]
			facts = facts[:len(facts)-1]
			ref[id]--
			if ref[id] == 0 {
				retracted = append(retracted, id)
			}
		}
		nAdd := rnd.Intn(churn + 1)
		for i := 0; i < nAdd; i++ {
			id := tab.InternAtom(gen(rnd))
			facts = append(facts, id)
			ref[id]++
			if ref[id] == 1 {
				added = append(added, id)
			}
		}
		gp, err := inc.Update(added, retracted)
		if err != nil {
			t.Fatalf("step %d: update: %v", step, err)
		}
		check(step, gp)
	}
}

func renderIDs(tab *intern.Table, ids []intern.AtomID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = tab.KeyOf(id)
	}
	return out
}

// genFromPool draws facts from a fixed pool of shapes.
func genFromPool(shapes []func(r *rand.Rand) ast.Atom) factGen {
	return func(r *rand.Rand) ast.Atom {
		return shapes[r.Intn(len(shapes))](r)
	}
}

func sym(prefix string, r *rand.Rand, n int) ast.Term {
	return ast.Sym(fmt.Sprintf("%s%d", prefix, r.Intn(n)))
}

func TestIncrementalLayeredNegation(t *testing.T) {
	src := `
slow(X) :- speed(X, Y), Y < 20.
busy(X) :- cars(X, Y), Y > 40.
jam(X) :- slow(X), busy(X), not light(X).
notify(X) :- jam(X).
notify(X) :- fire(X).
`
	gen := genFromPool([]func(r *rand.Rand) ast.Atom{
		func(r *rand.Rand) ast.Atom { return ast.NewAtom("speed", sym("l", r, 6), ast.Num(int64(r.Intn(60)))) },
		func(r *rand.Rand) ast.Atom { return ast.NewAtom("cars", sym("l", r, 6), ast.Num(int64(r.Intn(80)))) },
		func(r *rand.Rand) ast.Atom { return ast.NewAtom("light", sym("l", r, 6)) },
		func(r *rand.Rand) ast.Atom { return ast.NewAtom("fire", sym("l", r, 6)) },
	})
	incrementalHarness(t, src, gen, 60, 8, 1)
}

func TestIncrementalRecursiveReachability(t *testing.T) {
	src := `
path(X, Y) :- edge(X, Y).
path(X, Z) :- edge(X, Y), path(Y, Z).
cut(X) :- blocked(X), not path(X, X).
`
	gen := genFromPool([]func(r *rand.Rand) ast.Atom{
		func(r *rand.Rand) ast.Atom { return ast.NewAtom("edge", sym("n", r, 5), sym("n", r, 5)) },
		func(r *rand.Rand) ast.Atom { return ast.NewAtom("blocked", sym("n", r, 5)) },
	})
	incrementalHarness(t, src, gen, 50, 5, 2)
}

func TestIncrementalConstraints(t *testing.T) {
	src := `
hot(X) :- temp(X, Y), Y > 30.
:- hot(X), critical(X).
`
	gen := genFromPool([]func(r *rand.Rand) ast.Atom{
		func(r *rand.Rand) ast.Atom { return ast.NewAtom("temp", sym("z", r, 4), ast.Num(int64(r.Intn(40)))) },
		func(r *rand.Rand) ast.Atom { return ast.NewAtom("critical", sym("z", r, 4)) },
	})
	incrementalHarness(t, src, gen, 60, 4, 3)
}

func TestIncrementalProgramFactsAndIntervals(t *testing.T) {
	src := `
zone(1..3).
level(X, Y) :- reading(X, Y), zone(X).
alert(X) :- level(X, Y), Y > 5, not muted(X).
`
	gen := genFromPool([]func(r *rand.Rand) ast.Atom{
		func(r *rand.Rand) ast.Atom {
			return ast.NewAtom("reading", ast.Num(int64(r.Intn(5))), ast.Num(int64(r.Intn(10))))
		},
		func(r *rand.Rand) ast.Atom { return ast.NewAtom("muted", ast.Num(int64(r.Intn(5)))) },
	})
	incrementalHarness(t, src, gen, 50, 5, 4)
}

// Derived predicates that are also input predicates exercise the combined
// EDB+IDB liveness accounting.
func TestIncrementalInputAlsoDerived(t *testing.T) {
	src := `
warm(X) :- temp(X, Y), Y > 10.
warm(X) :- neighbor(X, Z), warm(Z).
report(X) :- warm(X).
`
	// warm/1 facts can arrive directly from the stream too.
	gen := genFromPool([]func(r *rand.Rand) ast.Atom{
		func(r *rand.Rand) ast.Atom { return ast.NewAtom("temp", sym("r", r, 4), ast.Num(int64(r.Intn(20)))) },
		func(r *rand.Rand) ast.Atom { return ast.NewAtom("neighbor", sym("r", r, 4), sym("r", r, 4)) },
		func(r *rand.Rand) ast.Atom { return ast.NewAtom("warm", sym("r", r, 4)) },
	})
	incrementalHarness(t, src, gen, 50, 5, 5)
}

func TestIncrementalEligibility(t *testing.T) {
	cases := []struct {
		name     string
		src      string
		eligible bool
	}{
		{"stratified", "a(X) :- b(X), not c(X).", true},
		{"constraint", "a(X) :- b(X).\n:- a(X), c(X).", true},
		{"recursive", "t(X,Y) :- e(X,Y).\nt(X,Z) :- e(X,Y), t(Y,Z).", true},
		{"choice", "{ a(X) } :- b(X).", false},
		{"disjunction", "a(X) ; c(X) :- b(X).", false},
		{"unstratified", "a(X) :- b(X), not c(X).\nc(X) :- b(X), not a(X).", false},
		{"aggregate", "n(C) :- C = #count { X : b(X) }, d.", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := parser.Parse(tc.src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			inst, err := NewInstantiator(prog, Options{Intern: intern.NewTable()})
			if err != nil {
				t.Fatalf("instantiator: %v", err)
			}
			if got := inst.SupportsIncremental(); got != tc.eligible {
				t.Errorf("SupportsIncremental = %v, want %v", got, tc.eligible)
			}
		})
	}
}

// Update must refuse to run without live state, and a plain Ground must
// invalidate previously seeded state.
func TestIncrementalStateLifecycle(t *testing.T) {
	prog, err := parser.Parse("a(X) :- b(X).")
	if err != nil {
		t.Fatal(err)
	}
	tab := intern.NewTable()
	inst, err := NewInstantiator(prog, Options{Intern: tab})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Update(nil, nil); err == nil {
		t.Fatal("Update without seeding must fail")
	}
	id := tab.InternAtom(ast.NewAtom("b", ast.Sym("x")))
	if _, err := inst.GroundIncremental([]intern.AtomID{id}); err != nil {
		t.Fatal(err)
	}
	if !inst.IncrementalReady() {
		t.Fatal("expected ready state after GroundIncremental")
	}
	if _, err := inst.Ground([]intern.AtomID{id}); err != nil {
		t.Fatal(err)
	}
	if inst.IncrementalReady() {
		t.Fatal("plain Ground must invalidate incremental state")
	}
	if _, err := inst.Update(nil, nil); err == nil {
		t.Fatal("Update after plain Ground must fail")
	}
}

// The atom limit must abort an update and leave the state marked invalid.
func TestIncrementalAtomLimit(t *testing.T) {
	prog, err := parser.Parse("a(X) :- b(X).")
	if err != nil {
		t.Fatal(err)
	}
	tab := intern.NewTable()
	inst, err := NewInstantiator(prog, Options{Intern: tab, MaxAtoms: 6})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(i int) intern.AtomID {
		return tab.InternAtom(ast.NewAtom("b", ast.Num(int64(i))))
	}
	if _, err := inst.GroundIncremental([]intern.AtomID{mk(0), mk(1)}); err != nil {
		t.Fatal(err)
	}
	// Each added fact derives one atom: 3 more facts blow the limit of 6.
	_, err = inst.Update([]intern.AtomID{mk(2), mk(3), mk(4)}, nil)
	if err == nil {
		t.Fatal("expected atom-limit error")
	}
	var lim *ErrAtomLimit
	if !asErrAtomLimit(err, &lim) {
		t.Fatalf("error = %v, want ErrAtomLimit", err)
	}
	if inst.IncrementalReady() {
		t.Fatal("state must be invalid after a failed update")
	}
}

func asErrAtomLimit(err error, out **ErrAtomLimit) bool {
	e, ok := err.(*ErrAtomLimit)
	if ok {
		*out = e
	}
	return ok
}
