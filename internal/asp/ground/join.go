package ground

import (
	"encoding/binary"
	"fmt"
	"math"

	"streamrule/internal/asp/ast"
	"streamrule/internal/asp/intern"
)

// joinRule enumerates all substitutions that satisfy the positive body
// literals and comparisons of r against the current stores, calling emitFn
// for each complete match. Negative literals are left to emit-time
// simplification. When g.deltaOcc >= 0, the positive literal at that body
// position only ranges over the atoms recorded in g.delta (semi-naive pass).
func (g *grounder) joinRule(r ast.Rule, emitFn func(ast.Subst) error) error {
	type entry struct {
		lit  ast.Literal
		idx  int
		pred intern.PredID // predicate of an AtomLiteral
		done bool
		// pattern is the reusable substituted-argument buffer; only valid
		// while the entry is the current join candidate (done == true).
		pattern []ast.Term
	}
	var entries []*entry
	for i, l := range r.Body {
		switch {
		case l.Kind == ast.CompLiteral:
			entries = append(entries, &entry{lit: l, idx: i})
		case l.Kind == ast.AtomLiteral && !l.Neg:
			entries = append(entries, &entry{lit: l, idx: i, pred: g.pid(l.Atom)})
		case l.Kind == ast.AtomLiteral && l.Neg && g.incCtx != nil:
			// Incremental delta joins resolve negative literals during the
			// join (against the body-position-dependent view) instead of at
			// emit time; the delta occurrence may itself be negative.
			entries = append(entries, &entry{lit: l, idx: i, pred: g.pid(l.Atom)})
		case l.Kind == ast.AggLiteral:
			entries = append(entries, &entry{lit: l, idx: i})
		}
	}
	// Variables occurring outside aggregate elements: an aggregate is ready
	// once all of its global variables (those shared with the rest of the
	// rule) are bound.
	outer := make(map[string]bool)
	for _, a := range r.Head {
		a.CollectVars(outer)
	}
	for _, l := range r.Body {
		switch l.Kind {
		case ast.AggLiteral:
			l.Agg.GuardRHS.CollectVars(outer)
		default:
			l.CollectVars(outer)
		}
	}
	subst := ast.Subst{}
	// bindStack records variable bindings made by candidate unification;
	// each recursion level pops back to its mark (closure-free undo).
	var bindStack []string

	// bind records a variable binding and returns an undo function (used by
	// the low-frequency comparison/aggregate bindings).
	bind := func(v string, t ast.Term) func() {
		subst[v] = t
		return func() { delete(subst, v) }
	}

	var rec func() error
	rec = func() error {
		// Evaluate every decidable comparison; CmpEq may bind a variable.
		var undos []func()
		defer func() {
			for i := len(undos) - 1; i >= 0; i-- {
				undos[i]()
			}
		}()
		for progress := true; progress; {
			progress = false
			for _, e := range entries {
				if e.done {
					continue
				}
				if e.lit.Kind == ast.AggLiteral {
					ready := true
					for _, v := range e.lit.Agg.GlobalVars(outer) {
						if _, ok := subst[v]; !ok {
							ready = false
							break
						}
					}
					if !ready {
						continue
					}
					holds, bindVar, bindVal, err := g.evalAggregate(r, e.lit.Agg, subst)
					if err != nil {
						return err
					}
					if bindVar != "" {
						undos = append(undos, bind(bindVar, bindVal))
					} else if !holds {
						return nil // pruned
					}
					e.done = true
					undos = append(undos, func() { e.done = false })
					progress = true
					continue
				}
				if e.lit.Kind == ast.AtomLiteral && e.lit.Neg {
					// Incremental join: a negative non-delta literal is
					// decided once all of its variables are bound.
					if g.incCtx == nil || e.idx == g.incCtx.deltaIdx {
						continue
					}
					a := e.lit.Atom.Apply(subst)
					if !a.IsGround() {
						continue
					}
					if g.negHoldsInView(a, e.idx) {
						return nil // atom present in this view: pruned
					}
					e.done = true
					undos = append(undos, func() { e.done = false })
					progress = true
					continue
				}
				if e.lit.Kind != ast.CompLiteral {
					continue
				}
				l := e.lit.Apply(subst)
				switch {
				case l.Lhs.IsGround() && l.Rhs.IsGround():
					lv, err := l.Lhs.Eval(nil)
					if err != nil {
						return err
					}
					rv, err := l.Rhs.Eval(nil)
					if err != nil {
						return err
					}
					if !l.Op.Holds(lv, rv) {
						return nil // pruned
					}
					e.done = true
					undos = append(undos, func() { e.done = false })
					progress = true
				case l.Op == ast.CmpEq && l.Lhs.Kind == ast.VariableTerm && l.Rhs.IsGround():
					rv, err := l.Rhs.Eval(nil)
					if err != nil {
						return err
					}
					undos = append(undos, bind(l.Lhs.Sym, rv))
					e.done = true
					undos = append(undos, func() { e.done = false })
					progress = true
				case l.Op == ast.CmpEq && l.Rhs.Kind == ast.VariableTerm && l.Lhs.IsGround():
					lv, err := l.Lhs.Eval(nil)
					if err != nil {
						return err
					}
					undos = append(undos, bind(l.Rhs.Sym, lv))
					e.done = true
					undos = append(undos, func() { e.done = false })
					progress = true
				}
			}
		}

		// Choose the next positive literal: among ready entries (no argument
		// is an unresolved arithmetic term), prefer the one with the most
		// ground arguments, then the smaller relation. In an incremental
		// delta join the delta occurrence (which may be a negative literal)
		// joins against its single delta atom and binds first when ready.
		var best *entry
		var bestPattern []ast.Term
		bestScore := math.MinInt
		pending := 0
		for _, e := range entries {
			if e.done {
				continue
			}
			if e.lit.Kind != ast.AtomLiteral {
				pending++
				continue
			}
			isDelta := g.incCtx != nil && e.idx == g.incCtx.deltaIdx
			if e.lit.Neg && !isDelta {
				pending++
				continue
			}
			pending++
			if cap(e.pattern) < len(e.lit.Atom.Args) {
				e.pattern = make([]ast.Term, len(e.lit.Atom.Args))
			}
			pattern := e.pattern[:len(e.lit.Atom.Args)]
			ready := true
			ground := 0
			for i, t := range e.lit.Atom.Args {
				pattern[i] = t.Apply(subst)
				switch {
				case pattern[i].IsGround():
					ground++
				case pattern[i].Kind == ast.ArithTerm:
					ready = false
				}
			}
			if !ready {
				continue
			}
			score := ground * 1_000_000
			if isDelta {
				score -= len(g.incCtx.deltaPos)
			} else if st := g.storeAt(e.pred); st != nil {
				score -= len(st.atoms)
			}
			if score > bestScore {
				bestScore = score
				best = e
				bestPattern = pattern
			}
		}
		if pending == 0 {
			return emitFn(subst)
		}
		if best == nil {
			// Only blocked entries remain: comparisons or arithmetic
			// patterns over unbound variables. Safety should prevent this.
			return fmt.Errorf("cannot instantiate rule %q: unresolved variables", r)
		}

		best.done = true
		defer func() { best.done = false }()
		st := g.storeAt(best.pred)
		var cands []int32
		isDeltaEntry := false
		switch {
		case g.incCtx != nil && best.idx == g.incCtx.deltaIdx:
			// Signed delta join: this occurrence ranges over exactly the
			// changed atoms (live or tombstoned), no view filtering.
			cands = g.incCtx.deltaPos
			isDeltaEntry = true
		case best.idx == g.deltaOcc:
			for pos := range g.delta[best.pred] {
				cands = append(cands, pos)
			}
		default:
			cands = st.candidates(g.tab, bestPattern)
		}
		for _, pos := range cands {
			if !isDeltaEntry && g.counting && !g.inViewAt(st, pos, best.idx) {
				continue
			}
			atom := st.atoms[pos]
			mark := len(bindStack)
			ok := unifyArgs(bestPattern, atom.Args, subst, &bindStack)
			var err error
			if ok {
				err = rec()
			}
			for len(bindStack) > mark {
				delete(subst, bindStack[len(bindStack)-1])
				bindStack = bindStack[:len(bindStack)-1]
			}
			if err != nil {
				return err
			}
		}
		return nil
	}
	return rec()
}

// unifyArgs matches a substituted pattern against a ground argument list,
// binding pattern variables in subst and appending their names to *bound
// (the caller pops back to its mark to undo). Closure-free: this is the
// hottest path of every join.
func unifyArgs(pattern, ground []ast.Term, subst ast.Subst, bound *[]string) bool {
	for i, p := range pattern {
		if !unifyTerm(p, ground[i], subst, bound) {
			return false
		}
	}
	return true
}

// unifyTerm matches one pattern term against one ground term, descending
// into function terms structurally. Non-ground arithmetic patterns cannot be
// inverted and fail the match. Partial bindings of a failed match stay in
// subst and *bound; the caller rewinds to its mark.
func unifyTerm(p, gt ast.Term, subst ast.Subst, bound *[]string) bool {
	switch {
	case p.Kind == ast.VariableTerm:
		if b, ok := subst[p.Sym]; ok {
			return b.Equal(gt)
		}
		subst[p.Sym] = gt
		*bound = append(*bound, p.Sym)
		return true
	case p.Kind == ast.FuncTerm:
		if gt.Kind != ast.FuncTerm || gt.Sym != p.Sym || len(gt.FArgs) != len(p.FArgs) {
			return false
		}
		for i := range p.FArgs {
			if !unifyTerm(p.FArgs[i].Apply(subst), gt.FArgs[i], subst, bound) {
				return false
			}
		}
		return true
	case p.IsGround():
		pv, err := p.Eval(nil)
		return err == nil && pv.Equal(gt)
	default:
		return false
	}
}

// addDerived interns a derived ground atom and inserts it into its store,
// enforcing the atom limit and notifying the semi-naive delta recorder for
// new atoms. It returns the atom's interned ID.
func (g *grounder) addDerived(a ast.Atom, certain bool) (intern.AtomID, error) {
	if g.counting {
		if !certain {
			// The eligibility analysis guarantees fully evaluated output;
			// an uncertain derivation means a residual rule slipped through.
			return 0, errIncResidual
		}
		return g.incDerive(a, 1)
	}
	id := g.tab.InternAtom(a)
	p := g.tab.AtomPred(id)
	st := g.store(p, len(a.Args))
	pos, isNew, _ := st.add(id, a, g.tab.ArgCodes(id), certain)
	if isNew {
		g.totalAtom++
		if g.opts.MaxAtoms > 0 && g.totalAtom > g.opts.MaxAtoms {
			return id, &ErrAtomLimit{Limit: g.opts.MaxAtoms}
		}
		if g.onNewAtom != nil {
			g.onNewAtom(p, pos)
		}
	}
	return id, nil
}

// emit builds the simplified ground instance of r under the substitution and
// either records a certain fact, an inconsistency, or a residual ground rule.
func (g *grounder) emit(r ast.Rule, s ast.Subst) error {
	gr := r.Apply(s)
	var body []ast.Literal
	var posIDs, negIDs []intern.AtomID
	for _, l := range gr.Body {
		switch l.Kind {
		case ast.AggLiteral:
			// Aggregates were fully evaluated (and pruned on) during the
			// join; nothing remains to check.
			continue
		case ast.CompLiteral:
			lv, err := l.Lhs.Eval(nil)
			if err != nil {
				return err
			}
			rv, err := l.Rhs.Eval(nil)
			if err != nil {
				return err
			}
			if !l.Op.Holds(lv, rv) {
				return nil
			}
		case ast.AtomLiteral:
			id := g.tab.InternAtom(l.Atom)
			p := g.tab.AtomPred(id)
			st := g.storeAt(p)
			pos, known := st.lookup(id)
			if known && g.counting && !st.certain[pos] {
				known = false // dead tombstone: not derivable
			}
			if !l.Neg {
				// Matched positive literal: always present in the store.
				if known && st.certain[pos] {
					continue // certainly true: drop
				}
				body = append(body, l)
				posIDs = append(posIDs, id)
				continue
			}
			// Default-negated literal.
			if known && st.certain[pos] {
				return nil // certainly true atom: rule can never fire
			}
			ci, declared := g.compOf[p]
			fullyEvaluated := !declared || ci < g.curComp
			if fullyEvaluated && !known {
				continue // atom can never be derived: not l holds, drop
			}
			body = append(body, l)
			negIDs = append(negIDs, id)
		}
	}

	// Expand constant intervals in the head into a conjunction of rules
	// (p(1..3) :- B derives p(1), p(2), p(3); for choice rules the expanded
	// atoms all join one choice head).
	headSets, err := expandIntervalAtoms(gr.Head)
	if err != nil {
		return fmt.Errorf("rule %q: %w", r, err)
	}
	if gr.Choice && len(headSets) > 1 {
		// A choice head with intervals pools into a single ground rule.
		merged := make([]ast.Atom, 0, len(headSets))
		seen := make(map[intern.AtomID]bool)
		for _, hs := range headSets {
			for _, a := range hs {
				if id := g.tab.InternAtom(a); !seen[id] {
					seen[id] = true
					merged = append(merged, a)
				}
			}
		}
		headSets = [][]ast.Atom{merged}
	}

	for _, heads := range headSets {
		if err := g.emitGround(heads, body, posIDs, negIDs, gr); err != nil {
			return err
		}
	}
	return nil
}

// emitGround records one simplified ground rule (or fact, or inconsistency).
func (g *grounder) emitGround(heads []ast.Atom, body []ast.Literal, posIDs, negIDs []intern.AtomID, gr ast.Rule) error {
	switch {
	case gr.Choice:
		// Choice heads are never certain, even with an empty body.
	case len(heads) == 0 && len(body) == 0:
		g.out.Inconsistent = true
		if g.counting {
			g.inc.violations[g.constraintIdx]++
		}
		return nil
	case len(heads) == 1 && len(body) == 0:
		_, err := g.addDerived(heads[0], true)
		return err
	}

	ir := IRule{Pos: posIDs, Neg: negIDs, Choice: gr.Choice, Lower: gr.Lower, Upper: gr.Upper}
	for _, h := range heads {
		ir.Head = append(ir.Head, g.tab.InternAtom(h))
	}
	if g.seenRule(ir) {
		return nil
	}
	g.out.Rules = append(g.out.Rules, ast.Rule{Head: heads, Body: body, Choice: gr.Choice, Lower: gr.Lower, Upper: gr.Upper})
	g.out.RuleIDs = append(g.out.RuleIDs, ir)
	for _, h := range heads {
		if _, err := g.addDerived(h, false); err != nil {
			return err
		}
	}
	return nil
}

// seenRule dedups ground rules by a compact binary signature over interned
// IDs — the ID-age replacement for keying on Rule.String().
func (g *grounder) seenRule(ir IRule) bool {
	buf := g.sigBuf[:0]
	if ir.Choice {
		buf = append(buf, 1)
		buf = binary.AppendVarint(buf, int64(ir.Lower))
		buf = binary.AppendVarint(buf, int64(ir.Upper))
	} else {
		buf = append(buf, 0)
	}
	for _, id := range ir.Head {
		buf = binary.AppendUvarint(buf, uint64(id))
	}
	buf = append(buf, 0xFF)
	for _, id := range ir.Pos {
		buf = binary.AppendUvarint(buf, uint64(id))
	}
	buf = append(buf, 0xFF)
	for _, id := range ir.Neg {
		buf = binary.AppendUvarint(buf, uint64(id))
	}
	g.sigBuf = buf
	if g.seen[string(buf)] {
		return true
	}
	g.seen[string(buf)] = true
	return false
}
