package ground

import (
	"errors"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"streamrule/internal/asp/ast"
	"streamrule/internal/asp/parser"
)

const programP = `
very_slow_speed(X) :- average_speed(X,Y), Y < 20.
many_cars(X) :- car_number(X,Y), Y > 40.
traffic_jam(X) :- very_slow_speed(X), many_cars(X), not traffic_light(X).
car_fire(X) :- car_in_smoke(C, high), car_speed(C, 0), car_location(C, X).
give_notification(X) :- traffic_jam(X).
give_notification(X) :- car_fire(X).
`

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustAtoms(t *testing.T, srcs ...string) []ast.Atom {
	t.Helper()
	out := make([]ast.Atom, len(srcs))
	for i, s := range srcs {
		a, err := parser.ParseAtom(s)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = a
	}
	return out
}

func certainKeys(gp *Program) []string {
	out := make([]string, len(gp.Certain))
	for i, a := range gp.Certain {
		out[i] = a.Key()
	}
	return out
}

func hasCertain(gp *Program, key string) bool {
	for _, a := range gp.Certain {
		if a.Key() == key {
			return true
		}
	}
	return false
}

// TestPaperWindow replays the motivating example of §II-A: the full window W
// must derive car_fire(dangan) and give_notification(dangan), and must NOT
// derive traffic_jam(newcastle) because traffic_light(newcastle) is present.
func TestPaperWindow(t *testing.T) {
	prog := mustParse(t, programP)
	w := mustAtoms(t,
		"average_speed(newcastle, 10)",
		"car_number(newcastle, 55)",
		"traffic_light(newcastle)",
		"car_in_smoke(car1, high)",
		"car_speed(car1, 0)",
		"car_location(car1, dangan)",
	)
	gp, err := Ground(prog, w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"car_fire(dangan)", "give_notification(dangan)",
		"very_slow_speed(newcastle)", "many_cars(newcastle)",
	} {
		if !hasCertain(gp, want) {
			t.Errorf("missing certain atom %s; have %v", want, certainKeys(gp))
		}
	}
	if hasCertain(gp, "traffic_jam(newcastle)") {
		t.Error("traffic_jam(newcastle) must not be derived when the light is on")
	}
	if hasCertain(gp, "give_notification(newcastle)") {
		t.Error("give_notification(newcastle) must not be derived")
	}
	// The program is stratified against this window, so no residual rules.
	if len(gp.Rules) != 0 {
		t.Errorf("expected no residual rules, got %v", gp.Rules)
	}
}

// TestPaperWindowNoLight flips the example: without the traffic light fact
// the jam must be detected.
func TestPaperWindowNoLight(t *testing.T) {
	prog := mustParse(t, programP)
	w := mustAtoms(t,
		"average_speed(newcastle, 10)",
		"car_number(newcastle, 55)",
	)
	gp, err := Ground(prog, w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"traffic_jam(newcastle)", "give_notification(newcastle)"} {
		if !hasCertain(gp, want) {
			t.Errorf("missing %s; have %v", want, certainKeys(gp))
		}
	}
}

func TestComparisonsGateDerivation(t *testing.T) {
	prog := mustParse(t, programP)
	w := mustAtoms(t,
		"average_speed(a, 20)", // not < 20
		"average_speed(b, 19)", // < 20
		"car_number(a, 40)",    // not > 40
		"car_number(b, 41)",    // > 40
	)
	gp, err := Ground(prog, w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if hasCertain(gp, "very_slow_speed(a)") || !hasCertain(gp, "very_slow_speed(b)") {
		t.Errorf("comparison gating wrong: %v", certainKeys(gp))
	}
	if hasCertain(gp, "many_cars(a)") || !hasCertain(gp, "many_cars(b)") {
		t.Errorf("comparison gating wrong: %v", certainKeys(gp))
	}
	if !hasCertain(gp, "traffic_jam(b)") {
		t.Errorf("traffic_jam(b) missing: %v", certainKeys(gp))
	}
}

func TestRecursiveTransitiveClosure(t *testing.T) {
	prog := mustParse(t, `
reach(X,Y) :- edge(X,Y).
reach(X,Z) :- reach(X,Y), edge(Y,Z).
`)
	var facts []ast.Atom
	// Chain 1 -> 2 -> ... -> 20.
	for i := 1; i < 20; i++ {
		facts = append(facts, ast.NewAtom("edge", ast.Num(int64(i)), ast.Num(int64(i+1))))
	}
	gp, err := Ground(prog, facts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Expect 19+18+...+1 = 190 reach atoms, all certain.
	reach := 0
	for _, a := range gp.Certain {
		if a.Pred == "reach" {
			reach++
		}
	}
	if reach != 190 {
		t.Errorf("reach atoms = %d, want 190", reach)
	}
	if !hasCertain(gp, "reach(1,20)") {
		t.Error("reach(1,20) missing")
	}
	if gp.Stats.Iterations < 2 {
		t.Errorf("expected semi-naive iterations, got %d", gp.Stats.Iterations)
	}
}

func TestNonStratifiedKeepsRules(t *testing.T) {
	prog := mustParse(t, `
p :- not q.
q :- not p.
`)
	gp, err := Ground(prog, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(gp.Certain) != 0 {
		t.Errorf("no atom should be certain: %v", certainKeys(gp))
	}
	if len(gp.Rules) != 2 {
		t.Errorf("expected 2 residual rules, got %v", gp.Rules)
	}
}

func TestNegationOnUnderivableAtomIsDropped(t *testing.T) {
	prog := mustParse(t, `
p :- not q.
`)
	gp, err := Ground(prog, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !hasCertain(gp, "p") {
		t.Errorf("p should be certain (q can never hold): %v", certainKeys(gp))
	}
	if len(gp.Rules) != 0 {
		t.Errorf("expected no residual rules, got %v", gp.Rules)
	}
}

func TestNegationOnCertainAtomKillsRule(t *testing.T) {
	prog := mustParse(t, `
q.
p :- not q.
`)
	gp, err := Ground(prog, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if hasCertain(gp, "p") {
		t.Error("p must not be derived")
	}
	if len(gp.Rules) != 0 {
		t.Errorf("rule should have been killed, got %v", gp.Rules)
	}
}

func TestConstraintViolation(t *testing.T) {
	prog := mustParse(t, `
p.
:- p.
`)
	gp, err := Ground(prog, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !gp.Inconsistent {
		t.Error("program should be inconsistent")
	}
}

func TestConstraintResidual(t *testing.T) {
	prog := mustParse(t, `
a :- not b.
b :- not a.
:- a.
`)
	gp, err := Ground(prog, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if gp.Inconsistent {
		t.Error("not decidable at grounding time")
	}
	found := false
	for _, r := range gp.Rules {
		if r.IsConstraint() {
			found = true
		}
	}
	if !found {
		t.Errorf("expected residual constraint, got %v", gp.Rules)
	}
}

func TestDisjunctiveHeads(t *testing.T) {
	prog := mustParse(t, `
a | b.
c :- a.
`)
	gp, err := Ground(prog, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(gp.Certain) != 0 {
		t.Errorf("nothing certain for a disjunctive program: %v", certainKeys(gp))
	}
	joined := ""
	for _, r := range gp.Rules {
		joined += r.String() + "\n"
	}
	if !strings.Contains(joined, "a | b.") || !strings.Contains(joined, "c :- a.") {
		t.Errorf("rules = %q", joined)
	}
}

func TestBindingEquality(t *testing.T) {
	prog := mustParse(t, `
succ(X, Y) :- num(X), Y = X + 1.
`)
	gp, err := Ground(prog, mustAtoms(t, "num(1)", "num(5)"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !hasCertain(gp, "succ(1,2)") || !hasCertain(gp, "succ(5,6)") {
		t.Errorf("binding equality failed: %v", certainKeys(gp))
	}
}

func TestArithmeticInHead(t *testing.T) {
	prog := mustParse(t, `
double(X, X * 2) :- num(X).
`)
	gp, err := Ground(prog, mustAtoms(t, "num(3)"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !hasCertain(gp, "double(3,6)") {
		t.Errorf("head arithmetic not folded: %v", certainKeys(gp))
	}
}

func TestFactsInProgramText(t *testing.T) {
	prog := mustParse(t, `
edge(1, 2).
edge(2, 3).
reach(X,Y) :- edge(X,Y).
reach(X,Z) :- reach(X,Y), edge(Y,Z).
`)
	gp, err := Ground(prog, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !hasCertain(gp, "reach(1,3)") {
		t.Errorf("got %v", certainKeys(gp))
	}
}

func TestMaxAtomsLimit(t *testing.T) {
	prog := mustParse(t, `
n(X + 1) :- n(X).
n(0).
`)
	_, err := Ground(prog, nil, Options{MaxAtoms: 100})
	if err == nil {
		t.Fatal("expected atom limit error")
	}
	if _, ok := err.(*ErrAtomLimit); !ok {
		t.Errorf("expected *ErrAtomLimit, got %T: %v", err, err)
	}
}

func TestNonGroundFactRejected(t *testing.T) {
	prog := mustParse(t, "p :- q(a).")
	_, err := Ground(prog, []ast.Atom{ast.NewAtom("q", ast.Var("X"))}, Options{})
	if err == nil {
		t.Error("non-ground input fact must be rejected")
	}
}

func TestIndexAndNoIndexAgree(t *testing.T) {
	prog := mustParse(t, programP)
	rng := rand.New(rand.NewSource(7))
	var facts []ast.Atom
	for i := 0; i < 300; i++ {
		switch rng.Intn(6) {
		case 0:
			facts = append(facts, ast.NewAtom("average_speed", ast.Num(int64(rng.Intn(30))), ast.Num(int64(rng.Intn(60)))))
		case 1:
			facts = append(facts, ast.NewAtom("car_number", ast.Num(int64(rng.Intn(30))), ast.Num(int64(rng.Intn(80)))))
		case 2:
			facts = append(facts, ast.NewAtom("traffic_light", ast.Num(int64(rng.Intn(30)))))
		case 3:
			facts = append(facts, ast.NewAtom("car_in_smoke", ast.Num(int64(rng.Intn(50))), ast.Sym("high")))
		case 4:
			facts = append(facts, ast.NewAtom("car_speed", ast.Num(int64(rng.Intn(50))), ast.Num(int64(rng.Intn(2)))))
		default:
			facts = append(facts, ast.NewAtom("car_location", ast.Num(int64(rng.Intn(50))), ast.Num(int64(rng.Intn(30)))))
		}
	}
	a, err := Ground(prog, facts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Ground(prog, facts, Options{NoIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	ka, kb := certainKeys(a), certainKeys(b)
	if len(ka) != len(kb) {
		t.Fatalf("indexed %d certain vs unindexed %d", len(ka), len(kb))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("mismatch at %d: %s vs %s", i, ka[i], kb[i])
		}
	}
}

// naiveDatalog computes the least model of a negation-free,
// comparison-free program by brute-force iteration, used as an oracle.
func naiveDatalog(p *ast.Program, facts []ast.Atom) map[string]bool {
	model := make(map[string]bool)
	var atoms []ast.Atom
	for _, f := range facts {
		if !model[f.Key()] {
			model[f.Key()] = true
			atoms = append(atoms, f)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, r := range p.Rules {
			var match func(s ast.Subst, i int)
			match = func(s ast.Subst, i int) {
				if i == len(r.Body) {
					h := r.Head[0].Apply(s)
					if !model[h.Key()] {
						model[h.Key()] = true
						atoms = append(atoms, h)
						changed = true
					}
					return
				}
				pat := r.Body[i].Atom.Apply(s)
				for _, a := range atoms {
					if a.Pred != pat.Pred || len(a.Args) != len(pat.Args) {
						continue
					}
					s2 := s.Clone()
					ok := true
					for j, pt := range pat.Args {
						pt = pt.Apply(s2)
						if pt.Kind == ast.VariableTerm {
							s2[pt.Sym] = a.Args[j]
						} else if !pt.Equal(a.Args[j]) {
							ok = false
							break
						}
					}
					if ok {
						match(s2, i+1)
					}
				}
			}
			match(ast.Subst{}, 0)
		}
	}
	return model
}

// Property: on random negation-free Datalog programs the grounder's certain
// set equals the naive least model.
func TestQuickGrounderMatchesNaiveDatalog(t *testing.T) {
	preds := []string{"p", "q", "r"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog := &ast.Program{}
		nRules := 1 + rng.Intn(4)
		for i := 0; i < nRules; i++ {
			head := ast.NewAtom(preds[rng.Intn(len(preds))], ast.Var("X"), ast.Var("Y"))
			nBody := 1 + rng.Intn(2)
			var body []ast.Literal
			vars := []string{"X", "Y", "Z"}
			for j := 0; j < nBody; j++ {
				v1 := vars[rng.Intn(len(vars))]
				v2 := vars[rng.Intn(len(vars))]
				body = append(body, ast.Pos(ast.NewAtom(preds[rng.Intn(len(preds))], ast.Var(v1), ast.Var(v2))))
			}
			// Ensure safety: force the head vars into the first body atom.
			body[0] = ast.Pos(ast.NewAtom(body[0].Atom.Pred, ast.Var("X"), ast.Var("Y")))
			prog.Add(ast.Rule{Head: []ast.Atom{head}, Body: body})
		}
		var facts []ast.Atom
		nFacts := 1 + rng.Intn(6)
		for i := 0; i < nFacts; i++ {
			facts = append(facts, ast.NewAtom(preds[rng.Intn(len(preds))],
				ast.Num(int64(rng.Intn(3))), ast.Num(int64(rng.Intn(3)))))
		}
		gp, err := Ground(prog, facts, Options{MaxAtoms: 10000})
		if err != nil {
			return false
		}
		want := naiveDatalog(prog, facts)
		got := make(map[string]bool)
		for _, a := range gp.Certain {
			got[a.Key()] = true
		}
		if len(got) != len(want) {
			return false
		}
		for k := range want {
			if !got[k] {
				return false
			}
		}
		return len(gp.Rules) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestStatsPopulated(t *testing.T) {
	prog := mustParse(t, programP)
	w := mustAtoms(t, "average_speed(newcastle, 10)", "car_number(newcastle, 55)")
	gp, err := Ground(prog, w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if gp.Stats.Atoms == 0 || gp.Stats.CertainFacts == 0 || gp.Stats.Iterations == 0 {
		t.Errorf("stats not populated: %+v", gp.Stats)
	}
}

func TestCertainOutputSorted(t *testing.T) {
	prog := mustParse(t, programP)
	w := mustAtoms(t,
		"average_speed(z, 10)", "car_number(z, 55)",
		"average_speed(a, 10)", "car_number(a, 55)",
	)
	gp, err := Ground(prog, w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	keys := certainKeys(gp)
	if !sort.StringsAreSorted(keys) {
		t.Errorf("certain atoms not sorted: %v", keys)
	}
}

func TestMaxAtomsCountsDistinctProgramFacts(t *testing.T) {
	// 150 distinct atoms stated via overlapping intervals (201 statements):
	// the limit must count distinct atoms, not duplicated fact statements.
	prog := mustParse(t, "p(1..100). p(50..150).")
	if _, err := Ground(prog, nil, Options{MaxAtoms: 150}); err != nil {
		t.Fatalf("150 distinct atoms within limit 150: %v", err)
	}
	_, err := Ground(prog, nil, Options{MaxAtoms: 149})
	var lim *ErrAtomLimit
	if !errors.As(err, &lim) {
		t.Fatalf("limit 149 must trip ErrAtomLimit, got %v", err)
	}
}
