// Incremental grounding for overlapping windows.
//
// Consecutive sliding windows share most of their items, so re-grounding
// every window from scratch re-derives mostly known atoms — the bottleneck
// the paper attributes to ASP stream reasoners. This file maintains the
// grounding of the previous window under a fact delta instead:
//
//   - GroundIncremental grounds a window from scratch while seeding, per
//     stored atom, a support count (how many rule derivations currently
//     derive it) and an EDB reference count (window facts, program facts).
//     An atom is live iff either count is positive.
//   - Update applies an (added, retracted) fact delta. Non-recursive
//     components are maintained exactly by signed semi-naive delta joins:
//     for each body occurrence of a changed predicate, the rule is joined
//     with that occurrence bound to the changed atoms, occurrences left of
//     it against the NEW state and occurrences right of it against the OLD
//     state, and every complete substitution adjusts the head atom's
//     support by +1/-1 (inverted for negative occurrences). Support
//     counting is too coarse for recursive components (cyclic derivations),
//     so components with positive recursion are re-derived from scratch at
//     stratum level and diffed. Constraints keep a violation tally per
//     constraint; the program is inconsistent while any tally is positive.
//
// Retracted atoms stay in their stores as dead tombstones until compaction,
// because delta joins against the OLD state must still reach them. Per-update
// transition marks record each touched atom's pre-update liveness, so the net
// delta of a predicate (consumed by higher strata, which run strictly later
// in topological order) can be read off the marks at any point.
//
// Eligibility is static (analyzeIncremental): stratified negation, no choice
// rules, no disjunctive heads, no aggregates — exactly the programs that
// ground to a fully evaluated (rule-free) program on every input, so the set
// of live atoms is the unique answer set. Everything else, and any dynamic
// invariant violation (atom limit, accounting errors), falls back to
// from-scratch grounding at the caller.
package ground

import (
	"errors"

	"streamrule/internal/asp/ast"
	"streamrule/internal/asp/intern"
)

// ErrNotIncremental is returned by Update when the instantiator has no live
// incremental state (never seeded, invalidated by a plain Ground, or the
// program is statically ineligible). The caller should fall back to
// GroundIncremental or Ground.
var ErrNotIncremental = errors.New("ground: no live incremental state")

// errIncResidual reports that an allegedly eligible program produced residual
// ground rules, so support counts do not capture its semantics.
var errIncResidual = errors.New("ground: incremental grounding produced residual rules")

// errIncInternal reports a support/reference accounting violation (a
// retraction of an unknown atom, a count below zero). The incremental state
// is invalid; the caller must re-seed.
var errIncInternal = errors.New("ground: incremental support accounting violated")

// incState is the cross-window incremental bookkeeping of an Instantiator.
type incState struct {
	// ready is true while the store contents, support counts, and violation
	// tallies describe the last window exactly; any error flips it off.
	ready bool
	// violations[k] counts the derivations currently violating constraint k.
	violations []int
	// liveAtoms counts live atoms across all stores (the MaxAtoms measure).
	liveAtoms int
	// deltaCache memoizes the net per-predicate delta of the current
	// update. Safe because consumers run strictly after producers in
	// topological order, so a predicate's net delta is final when first
	// consumed.
	deltaCache map[intern.PredID]predDelta
	// Scratch reused across updates; the returned Program aliases it and is
	// valid until the next call on the instantiator.
	certScratch []ast.Atom
	idScratch   []intern.AtomID

	// The live atom set sorted by atom key, maintained across updates by
	// merging each update's net delta — re-sorting the full set every
	// window would dominate small-delta updates. sortedKeys is aligned
	// with sortedIDs/sortedAtoms; merge* are the ping-pong buffers.
	sortedIDs   []intern.AtomID
	sortedAtoms []ast.Atom
	sortedKeys  []string
	mergeIDs    []intern.AtomID
	mergeAtoms  []ast.Atom
	mergeKeys   []string
	deadSet     map[intern.AtomID]bool
	freshIDs    []intern.AtomID
	freshKeys   []string
}

// predDelta is the net liveness delta of one predicate over one update, as
// store positions (stable within the update; compaction runs after).
type predDelta struct {
	fresh, dead []int32
}

// incJoinCtx turns joinRule into a signed delta join: the body literal at
// deltaIdx (positive or negative) ranges over exactly the changed atoms
// (deltaPos, positions in its predicate's store), body positions left of
// deltaIdx see the NEW store state, and positions right of it see the OLD
// (pre-update) state.
type incJoinCtx struct {
	deltaIdx int
	deltaPos []int32
}

// SupportsIncremental reports whether the program is statically eligible for
// incremental maintenance via GroundIncremental/Update.
func (inst *Instantiator) SupportsIncremental() bool { return inst.incEligible }

// IncrementalReady reports whether Update can be applied right now.
func (inst *Instantiator) IncrementalReady() bool {
	return inst.inc != nil && inst.inc.ready
}

// GroundIncremental grounds one window from scratch like Ground, but seeds
// the support-counting state that enables Update on subsequent windows. The
// returned Program (like Update's) is valid until the next call on this
// instantiator.
func (inst *Instantiator) GroundIncremental(factIDs []intern.AtomID) (*Program, error) {
	if !inst.incEligible {
		return nil, ErrNotIncremental
	}
	if inst.inc == nil {
		inst.inc = &incState{deltaCache: make(map[intern.PredID]predDelta)}
	}
	inst.inc.ready = false
	if cap(inst.inc.violations) < len(inst.constraints) {
		inst.inc.violations = make([]int, len(inst.constraints))
	}
	inst.inc.violations = inst.inc.violations[:len(inst.constraints)]
	clear(inst.inc.violations)
	gp, err := inst.ground(factIDs, true)
	if err != nil {
		return nil, err
	}
	inst.inc.captureSorted(inst.tab, gp)
	return gp, nil
}

// captureSorted snapshots the (key-sorted) certain atoms of a fresh seeding
// into the incrementally maintained sorted set.
func (s *incState) captureSorted(tab *intern.Table, gp *Program) {
	s.sortedIDs = append(s.sortedIDs[:0], gp.CertainIDs...)
	s.sortedAtoms = append(s.sortedAtoms[:0], gp.Certain...)
	s.sortedKeys = s.sortedKeys[:0]
	for _, id := range s.sortedIDs {
		s.sortedKeys = append(s.sortedKeys, tab.KeyOf(id))
	}
}

// Update applies a fact delta to the grounding of the previous window:
// retracted lists facts that left the window (their EDB reference drops to
// zero), added lists facts that entered it. Both must be 0<->1 transitions of
// the window's fact multiset — the caller keeps the multiset reference
// counts. On any error the incremental state is invalid and the caller must
// re-seed with GroundIncremental.
func (inst *Instantiator) Update(added, retracted []intern.AtomID) (*Program, error) {
	if inst.inc == nil || !inst.inc.ready {
		return nil, ErrNotIncremental
	}
	inst.inc.ready = false
	clear(inst.inc.deltaCache)
	g := &grounder{
		Instantiator: inst,
		out:          &Program{Table: inst.tab},
		deltaOcc:     -1,
		counting:     true,
		inUpdate:     true,
		totalAtom:    inst.inc.liveAtoms,
	}

	// Phase 1: EDB transitions. Retractions first, so an atom that moves in
	// the same update nets out without a transient death.
	for _, id := range retracted {
		if err := g.edbDelta(id, -1); err != nil {
			return nil, err
		}
	}
	for _, id := range added {
		if err := g.edbDelta(id, +1); err != nil {
			return nil, err
		}
	}

	// Phase 2: components in topological order. A component whose body
	// predicates saw no net change is skipped outright — the steady-state
	// win for small deltas.
	for ci := range inst.plans {
		plan := &inst.plans[ci]
		if len(plan.rules) == 0 {
			continue
		}
		g.curComp = ci
		if !g.depsChanged(plan.bodyPreds) {
			continue
		}
		g.out.Stats.Iterations++
		var err error
		if len(plan.rec) > 0 {
			err = g.rebuildComp(plan)
		} else {
			err = g.deltaComp(plan)
		}
		if err != nil {
			return nil, err
		}
	}

	// Phase 3: constraints, via signed violation tallies.
	g.curComp = len(inst.plans)
	for k, r := range inst.constraints {
		if !g.depsChanged(inst.constraintDeps[k]) {
			continue
		}
		g.constraintIdx = k
		if err := g.deltaRule(r, func(s ast.Subst, sign int32) error {
			inst.inc.violations[k] += int(sign)
			return nil
		}); err != nil {
			return nil, err
		}
	}
	for _, v := range inst.inc.violations {
		if v < 0 {
			return nil, errIncInternal
		}
		if v > 0 {
			g.out.Inconsistent = true
		}
	}

	// Phase 4: output by merging the net delta into the maintained sorted
	// atom set, then mark clearing and tombstone compaction.
	if err := g.finishMerge(); err != nil {
		return nil, err
	}
	for _, st := range inst.stores {
		if st != nil && len(st.touched) > 0 {
			st.clearMarks()
			st.compact(inst.tab)
		}
	}
	inst.inc.liveAtoms = g.totalAtom
	inst.inc.ready = true
	return g.out, nil
}

// finishMerge builds the update's output Program: the previous window's
// key-sorted certain atoms minus the net-dead atoms plus the net-fresh ones
// (sorted by key and merged in — O(live + delta log delta) instead of a full
// re-sort).
func (g *grounder) finishMerge() error {
	s := g.inc
	fresh := s.freshIDs[:0]
	keys := s.freshKeys[:0]
	if s.deadSet == nil {
		s.deadSet = make(map[intern.AtomID]bool)
	}
	clear(s.deadSet)
	var freshPos, deadPos []int32
	for _, st := range g.stores {
		if st == nil || len(st.touched) == 0 {
			continue
		}
		freshPos, deadPos = st.netDelta(freshPos[:0], deadPos[:0])
		for _, pos := range freshPos {
			fresh = append(fresh, st.ids[pos])
			keys = append(keys, g.tab.KeyOf(st.ids[pos]))
		}
		for _, pos := range deadPos {
			s.deadSet[st.ids[pos]] = true
		}
	}
	intern.SortByKey(keys, func(i, j int) {
		fresh[i], fresh[j] = fresh[j], fresh[i]
		keys[i], keys[j] = keys[j], keys[i]
	})
	s.freshIDs, s.freshKeys = fresh, keys

	outIDs := s.mergeIDs[:0]
	outAtoms := s.mergeAtoms[:0]
	outKeys := s.mergeKeys[:0]
	fi := 0
	for i, id := range s.sortedIDs {
		if s.deadSet[id] {
			continue
		}
		for fi < len(fresh) && keys[fi] <= s.sortedKeys[i] {
			outIDs = append(outIDs, fresh[fi])
			outAtoms = append(outAtoms, g.tab.Atom(fresh[fi]))
			outKeys = append(outKeys, keys[fi])
			fi++
		}
		outIDs = append(outIDs, id)
		outAtoms = append(outAtoms, s.sortedAtoms[i])
		outKeys = append(outKeys, s.sortedKeys[i])
	}
	for ; fi < len(fresh); fi++ {
		outIDs = append(outIDs, fresh[fi])
		outAtoms = append(outAtoms, g.tab.Atom(fresh[fi]))
		outKeys = append(outKeys, keys[fi])
	}
	// Ping-pong: the merged arrays become the maintained set; the previous
	// ones become the next merge buffers.
	s.mergeIDs, s.sortedIDs = s.sortedIDs, outIDs
	s.mergeAtoms, s.sortedAtoms = s.sortedAtoms, outAtoms
	s.mergeKeys, s.sortedKeys = s.sortedKeys, outKeys
	if len(outIDs) != g.totalAtom {
		// The sorted set and the live-atom count drifted apart: the
		// incremental state cannot be trusted.
		return errIncInternal
	}
	g.out.Certain = outAtoms
	g.out.CertainIDs = outIDs
	g.out.Stats.Atoms = g.totalAtom
	g.out.Stats.Rules = 0
	g.out.Stats.CertainFacts = len(outIDs)
	return nil
}

// edbDelta applies one external fact transition.
func (g *grounder) edbDelta(id intern.AtomID, sign int32) error {
	return g.incApply(id, g.tab.Atom(id), 0, sign)
}

// incDerive interns a derived atom and applies one signed derivation to it.
func (g *grounder) incDerive(a ast.Atom, sign int32) (intern.AtomID, error) {
	id := g.tab.InternAtom(a)
	return id, g.incApply(id, a, sign, 0)
}

// incApply adjusts an atom's support count (dSup) and EDB reference count
// (dEdb), maintaining liveness, transition marks, the live-atom limit, and
// the semi-naive delta notification.
func (g *grounder) incApply(id intern.AtomID, a ast.Atom, dSup, dEdb int32) error {
	p := g.tab.AtomPred(id)
	st := g.store(p, len(a.Args))
	pos, known := st.pos[id]
	if !known {
		if dSup < 0 || dEdb < 0 {
			return errIncInternal
		}
		pos, _, _ = st.add(id, a, g.tab.ArgCodes(id), false)
	}
	if g.inUpdate {
		st.touchIfFirst(pos)
	}
	st.support[pos] += dSup
	st.edbRef[pos] += dEdb
	if st.support[pos] < 0 || st.edbRef[pos] < 0 {
		return errIncInternal
	}
	live := st.support[pos] > 0 || st.edbRef[pos] > 0
	switch {
	case live && !st.certain[pos]:
		st.certain[pos] = true
		st.liveCnt++
		g.totalAtom++
		if g.opts.MaxAtoms > 0 && g.totalAtom > g.opts.MaxAtoms {
			return &ErrAtomLimit{Limit: g.opts.MaxAtoms}
		}
		if g.onNewAtom != nil {
			g.onNewAtom(p, pos)
		}
	case !live && st.certain[pos]:
		st.certain[pos] = false
		st.liveCnt--
		g.totalAtom--
	}
	return nil
}

// netDeltaOf returns (memoized) the net liveness delta of a predicate. Only
// call for predicates whose producers have already run this update.
func (g *grounder) netDeltaOf(p intern.PredID) predDelta {
	if d, ok := g.inc.deltaCache[p]; ok {
		return d
	}
	var d predDelta
	if st := g.storeAt(p); st != nil {
		d.fresh, d.dead = st.netDelta(nil, nil)
	}
	g.inc.deltaCache[p] = d
	return d
}

// depsChanged reports whether any of the predicates saw a net liveness
// change this update. It does not populate the delta cache: for recursive
// components the head predicates are among the dependencies and their delta
// is not final until the rebuild ran.
func (g *grounder) depsChanged(preds []intern.PredID) bool {
	for _, p := range preds {
		if st := g.storeAt(p); st != nil && st.hasNetDelta() {
			return true
		}
	}
	return false
}

// deltaComp maintains one non-recursive component exactly: every rule is
// delta-joined against the net change of each changed body predicate, and
// every derivation found adjusts its head atom's support.
func (g *grounder) deltaComp(plan *compPlan) error {
	for _, r := range plan.rules {
		rule := r
		headInterval := false
		for _, t := range rule.Head[0].Args {
			if t.Kind == ast.IntervalTerm {
				headInterval = true
			}
		}
		if err := g.deltaRule(rule, func(s ast.Subst, sign int32) error {
			h := rule.Head[0].Apply(s)
			if !headInterval {
				_, err := g.incDerive(h, sign)
				return err
			}
			headSets, err := expandIntervalAtoms([]ast.Atom{h})
			if err != nil {
				return err
			}
			for _, hs := range headSets {
				if _, err := g.incDerive(hs[0], sign); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}

// deltaRule runs the signed delta joins of one rule: for every body
// occurrence of a changed predicate, once against the freshly live atoms and
// once against the freshly dead ones. A positive occurrence contributes
// +1/-1 derivations for fresh/dead atoms; a negative occurrence inverts the
// signs (a newly present atom kills derivations that relied on its absence).
func (g *grounder) deltaRule(r ast.Rule, emit func(ast.Subst, int32) error) error {
	for j, l := range r.Body {
		if l.Kind != ast.AtomLiteral {
			continue
		}
		d := g.netDeltaOf(g.pid(l.Atom))
		if len(d.fresh)+len(d.dead) == 0 {
			continue
		}
		freshSign, deadSign := int32(1), int32(-1)
		if l.Neg {
			freshSign, deadSign = -1, 1
		}
		if err := g.deltaOccJoin(r, j, d.fresh, freshSign, emit); err != nil {
			return err
		}
		if err := g.deltaOccJoin(r, j, d.dead, deadSign, emit); err != nil {
			return err
		}
	}
	return nil
}

// deltaOccJoin joins the rule once with body position j ranging over the
// changed atoms.
func (g *grounder) deltaOccJoin(r ast.Rule, j int, pos []int32, sign int32, emit func(ast.Subst, int32) error) error {
	if len(pos) == 0 {
		return nil
	}
	g.incCtx = &incJoinCtx{deltaIdx: j, deltaPos: pos}
	err := g.joinRule(r, func(s ast.Subst) error { return emit(s, sign) })
	g.incCtx = nil
	return err
}

// rebuildComp re-derives a recursive component from scratch at stratum
// level: all currently live derived atoms of its head predicates are
// tombstoned (keeping EDB-referenced ones alive), then the component is
// re-evaluated bottom-up against the NEW state of the lower strata. The
// transition marks capture the old/new diff for downstream consumers.
func (g *grounder) rebuildComp(plan *compPlan) error {
	for _, hp := range plan.headPreds {
		st := g.store(hp.pid, hp.arity)
		for i := range st.atoms {
			pos := int32(i)
			if !st.certain[pos] {
				st.support[pos] = 0 // stale tombstone
				continue
			}
			st.touchIfFirst(pos)
			st.support[pos] = 0
			if st.edbRef[pos] == 0 {
				st.certain[pos] = false
				st.liveCnt--
				g.totalAtom--
			}
		}
	}
	return g.evalComponent(plan)
}

// inViewAt reports whether a stored atom is visible to the body literal at
// bodyIdx of the current (possibly delta) join. Outside a delta join, the
// counting engine sees exactly the live atoms; inside one, positions left of
// the delta occurrence see the NEW state and positions right of it the OLD.
func (g *grounder) inViewAt(st *predStore, pos int32, bodyIdx int) bool {
	if g.incCtx == nil || bodyIdx < g.incCtx.deltaIdx {
		return st.certain[pos]
	}
	return st.preLive(pos)
}

// negHoldsInView reports whether the (ground) atom of a negative literal is
// present in the view of the given body position.
func (g *grounder) negHoldsInView(a ast.Atom, bodyIdx int) bool {
	id, ok := g.tab.LookupAtom(a)
	if !ok {
		return false
	}
	st := g.storeAt(g.tab.AtomPred(id))
	pos, known := st.lookup(id)
	if !known {
		return false
	}
	return g.inViewAt(st, pos, bodyIdx)
}
