// Package ground implements the instantiation (grounding) phase of ASP
// computation: it turns a program with variables plus a set of input facts
// into an equivalent variable-free program.
//
// The grounder follows the classic bottom-up architecture of DLV/Clingo
// instantiators ([6], [18] in the paper): the predicate dependency graph is
// decomposed into strongly connected components, components are instantiated
// in topological order, and recursive components are evaluated with
// semi-naive iteration. Ground rules are simplified on the fly against the
// sets of certainly-true and possibly-true atoms, so stratified programs
// ground directly to their (unique) answer set.
//
// Like those instantiators, the grounder runs on interned atom IDs
// (internal/asp/intern): atom stores, per-argument-position indexes, the
// semi-naive delta, and the seen-rule set are all keyed by dense integers,
// and the emitted ground program carries its rules in ID form for the
// solver. An Instantiator is built once per program (dependency analysis,
// component order) and reused across windows, keeping its interned symbols
// and store capacity warm — sliding windows overlap heavily, so the steady
// state re-derives mostly known atoms.
package ground

import (
	"fmt"

	"streamrule/internal/asp/ast"
	"streamrule/internal/asp/intern"
	"streamrule/internal/graph"
)

// Options configures the grounder.
type Options struct {
	// NoIndex disables the per-argument-position atom indexes and forces
	// full scans when matching body literals. Used by the index ablation
	// benchmark; keep the default (false) otherwise.
	NoIndex bool
	// MaxAtoms aborts grounding when the number of distinct ground atoms
	// exceeds the limit (0 means no limit). A guard against non-terminating
	// arithmetic recursion.
	MaxAtoms int
	// Intern is the interning table shared with the rest of the engine. Nil
	// selects the process-wide default table.
	Intern *intern.Table
}

// Stats reports work done by a grounding run.
type Stats struct {
	// Atoms is the number of distinct ground atoms derived (certain or
	// possible), including the input facts.
	Atoms int
	// Rules is the number of simplified ground rules emitted.
	Rules int
	// CertainFacts is the number of atoms proven unconditionally true.
	CertainFacts int
	// Iterations is the total number of semi-naive passes over recursive
	// components.
	Iterations int
}

// IRule is a ground rule over interned atom IDs: the disjunctive head, the
// positive body, and the negative body. It mirrors the ast.Rule at the same
// index of Program.Rules.
type IRule struct {
	Head []intern.AtomID
	Pos  []intern.AtomID
	Neg  []intern.AtomID
	// Choice marks a choice rule with cardinality bounds Lower..Upper
	// (ast.UnboundedChoice disables a bound).
	Choice       bool
	Lower, Upper int
}

// Program is the result of grounding: a variable-free program partially
// evaluated against the input facts.
type Program struct {
	// Certain lists atoms that hold in every answer set; for stratified
	// programs this is the full answer set. Sorted by atom key.
	Certain []ast.Atom
	// CertainIDs holds the interned IDs of Certain, aligned by index.
	CertainIDs []intern.AtomID
	// Rules lists the remaining ground rules (bodies reference only atoms
	// whose truth is undecided, heads may be disjunctive, empty heads are
	// integrity constraints).
	Rules []ast.Rule
	// RuleIDs holds the ID form of Rules, aligned by index.
	RuleIDs []IRule
	// Table is the interning table the IDs refer to.
	Table *intern.Table
	// Inconsistent is set when an integrity constraint was violated by
	// certain atoms alone; such a program has no answer sets.
	Inconsistent bool
	// Stats describes the grounding run.
	Stats Stats
}

// ErrAtomLimit is returned when Options.MaxAtoms is exceeded.
type ErrAtomLimit struct{ Limit int }

func (e *ErrAtomLimit) Error() string {
	return fmt.Sprintf("grounding exceeded the configured limit of %d atoms", e.Limit)
}

// predStore holds the ground atoms of one predicate together with optional
// per-argument-position indexes. Atoms are identified by interned IDs; the
// materialized forms are kept alongside for variable unification during
// joins.
type predStore struct {
	arity int
	ids   []intern.AtomID
	atoms []ast.Atom
	pos   map[intern.AtomID]int32
	// certain marks atoms proven unconditionally true.
	certain []bool
	index   []map[intern.Code][]int32 // index[pos][argCode] -> atom positions
	// uncertain counts atoms currently stored as possible-but-not-certain;
	// aggregates require it to be zero for their condition predicates.
	uncertain int
}

func newPredStore(arity int, indexed bool) *predStore {
	st := &predStore{arity: arity, pos: make(map[intern.AtomID]int32)}
	if indexed && arity > 0 {
		st.index = make([]map[intern.Code][]int32, arity)
		for i := range st.index {
			st.index[i] = make(map[intern.Code][]int32)
		}
	}
	return st
}

// reset clears the store contents while keeping allocated capacity for the
// next window.
func (st *predStore) reset() {
	st.ids = st.ids[:0]
	st.atoms = st.atoms[:0]
	st.certain = st.certain[:0]
	st.uncertain = 0
	clear(st.pos)
	for _, m := range st.index {
		clear(m)
	}
}

// add inserts the ground atom, returning its position, whether it is new,
// and whether an existing atom's certainty was upgraded.
func (st *predStore) add(id intern.AtomID, a ast.Atom, codes []intern.Code, certain bool) (pos int32, isNew, upgraded bool) {
	if i, ok := st.pos[id]; ok {
		if certain && !st.certain[i] {
			st.certain[i] = true
			st.uncertain--
			return i, false, true
		}
		return i, false, false
	}
	i := int32(len(st.atoms))
	st.ids = append(st.ids, id)
	st.atoms = append(st.atoms, a)
	st.certain = append(st.certain, certain)
	if !certain {
		st.uncertain++
	}
	st.pos[id] = i
	for p := range st.index {
		st.index[p][codes[p]] = append(st.index[p][codes[p]], i)
	}
	return i, true, false
}

// lookup finds the store position of an interned atom.
func (st *predStore) lookup(id intern.AtomID) (pos int32, ok bool) {
	if st == nil {
		return 0, false
	}
	pos, ok = st.pos[id]
	return pos, ok
}

// candidates returns the positions of atoms that could match the pattern
// (args already substituted). With indexes enabled it uses the smallest
// bucket over the pattern's ground argument positions.
func (st *predStore) candidates(tab *intern.Table, pattern []ast.Term) []int32 {
	if st == nil {
		return nil
	}
	if st.index != nil {
		best := -1
		var bucket []int32
		for p, t := range pattern {
			if !t.IsGround() {
				continue
			}
			code, ok := tab.LookupCode(t)
			if !ok {
				return nil // the constant was never interned: no atom matches
			}
			b := st.index[p][code]
			if best == -1 || len(b) < best {
				best = len(b)
				bucket = b
			}
			if best == 0 {
				return nil
			}
		}
		if best >= 0 {
			return bucket
		}
	}
	all := make([]int32, len(st.atoms))
	for i := range all {
		all[i] = int32(i)
	}
	return all
}

// recRule is a rule with recursive positive body occurrences (body positions
// whose predicate belongs to the rule's own component).
type recRule struct {
	rule ast.Rule
	occ  []int
}

// compPlan is the precompiled evaluation plan of one strongly connected
// component: its rules and the recursive ones among them.
type compPlan struct {
	rules []ast.Rule
	rec   []recRule
}

// Instantiator is a reusable grounder for a fixed program: the dependency
// analysis, component order, and program-text facts are computed once at
// construction, and the atom stores are reused (reset, not reallocated)
// across windows. An Instantiator is not safe for concurrent use; the
// parallel reasoner gives each partition its own copy, all sharing one
// interning table.
type Instantiator struct {
	opts Options
	tab  *intern.Table

	plans       []compPlan
	constraints []ast.Rule
	compOf      map[intern.PredID]int
	// progFacts are the ground facts appearing in the program text
	// (intervals pre-expanded), re-seeded into every window.
	progFacts []intern.AtomID

	// Scratch reused across windows.
	stores   []*predStore // indexed by PredID
	seen     map[string]bool
	sigBuf   []byte
	keybuf   []string
	totalCap int
}

// NewInstantiator analyzes the program (safety, dependency components,
// program-text facts) and returns a grounder reusable across windows.
func NewInstantiator(p *ast.Program, opts Options) (*Instantiator, error) {
	if err := p.CheckSafety(); err != nil {
		return nil, err
	}
	tab := opts.Intern
	if tab == nil {
		tab = intern.Default()
	}
	inst := &Instantiator{
		opts:   opts,
		tab:    tab,
		compOf: make(map[intern.PredID]int),
		seen:   make(map[string]bool),
	}

	// Ground facts appearing as rules in the program text; intervals in
	// fact arguments (num(1..100).) expand here. Intervals anywhere else in
	// a body are unsupported. Duplicate facts (repeated statements,
	// overlapping intervals) collapse, so the atom limit counts distinct
	// atoms exactly as the per-window stores do.
	factSeen := make(map[intern.AtomID]bool)
	rest := make([]ast.Rule, 0, len(p.Rules))
	for _, r := range p.Rules {
		for _, l := range r.Body {
			if l.Kind != ast.AggLiteral && hasInterval(l) {
				return nil, fmt.Errorf("rule %q: intervals are only supported in facts and rule heads", r)
			}
		}
		if r.IsFact() && isGroundOrInterval(r.Head[0]) {
			heads, err := expandIntervalAtoms([]ast.Atom{r.Head[0].Apply(nil)})
			if err != nil {
				return nil, fmt.Errorf("fact %q: %w", r, err)
			}
			for _, hs := range heads {
				id := tab.InternAtom(hs[0])
				if factSeen[id] {
					continue
				}
				factSeen[id] = true
				inst.progFacts = append(inst.progFacts, id)
				if opts.MaxAtoms > 0 && len(inst.progFacts) > opts.MaxAtoms {
					return nil, &ErrAtomLimit{Limit: opts.MaxAtoms}
				}
			}
			continue
		}
		rest = append(rest, r)
	}

	// Predicate dependency graph: body -> head, plus mutual edges between
	// the head predicates of a disjunctive rule so they land in one SCC.
	dep := graph.NewDirected()
	pid := func(a ast.Atom) intern.PredID { return tab.Pred(a.Pred, len(a.Args)) }
	pidOf := make(map[string]intern.PredID)
	node := func(a ast.Atom) string {
		k := a.PredKey()
		if _, ok := pidOf[k]; !ok {
			pidOf[k] = pid(a)
		}
		return k
	}
	for _, r := range rest {
		for _, h := range r.Head {
			dep.AddNode(node(h))
		}
		var bodyPreds []string
		for _, l := range r.Body {
			switch l.Kind {
			case ast.AtomLiteral:
				bodyPreds = append(bodyPreds, node(l.Atom))
			case ast.AggLiteral:
				for _, e := range l.Agg.Elems {
					for _, c := range e.Cond {
						if c.Kind == ast.AtomLiteral {
							bodyPreds = append(bodyPreds, node(c.Atom))
						}
					}
				}
			}
		}
		for _, bp := range bodyPreds {
			dep.AddNode(bp)
			for _, h := range r.Head {
				dep.AddEdge(bp, node(h))
			}
		}
		for i := 0; i < len(r.Head); i++ {
			for j := i + 1; j < len(r.Head); j++ {
				dep.AddEdge(node(r.Head[i]), node(r.Head[j]))
				dep.AddEdge(node(r.Head[j]), node(r.Head[i]))
			}
		}
		if r.IsConstraint() {
			inst.constraints = append(inst.constraints, r)
		}
	}
	comps := dep.TopoComponents()
	for i, comp := range comps {
		for _, pred := range comp {
			inst.compOf[pidOf[pred]] = i
		}
	}

	// Assign non-constraint rules to the component of their head predicate,
	// and precompute the recursive occurrences for semi-naive iteration.
	inst.plans = make([]compPlan, len(comps))
	for _, r := range rest {
		if r.IsConstraint() {
			continue
		}
		ci := inst.compOf[pid(r.Head[0])]
		inst.plans[ci].rules = append(inst.plans[ci].rules, r)
	}
	for ci, comp := range comps {
		inComp := make(map[intern.PredID]bool, len(comp))
		for _, pk := range comp {
			inComp[pidOf[pk]] = true
		}
		for _, r := range inst.plans[ci].rules {
			var occ []int
			for i, l := range r.Body {
				if l.Kind == ast.AtomLiteral && !l.Neg && inComp[pid(l.Atom)] {
					occ = append(occ, i)
				}
			}
			if len(occ) > 0 {
				inst.plans[ci].rec = append(inst.plans[ci].rec, recRule{r, occ})
			}
		}
	}
	return inst, nil
}

// Table returns the interning table the instantiator grounds into.
func (inst *Instantiator) Table() *intern.Table { return inst.tab }

// InternFacts interns a slice of input facts, validating that they are
// ground. The result can be passed to Ground.
func (inst *Instantiator) InternFacts(facts []ast.Atom) ([]intern.AtomID, error) {
	ids := make([]intern.AtomID, len(facts))
	for i, f := range facts {
		if !f.IsGround() {
			return nil, fmt.Errorf("input fact %s is not ground", f)
		}
		ids[i] = inst.tab.InternAtom(f)
	}
	return ids, nil
}

// Ground instantiates the program against one window of input facts (given
// as interned atom IDs), reusing the instantiator's scratch stores.
func (inst *Instantiator) Ground(factIDs []intern.AtomID) (*Program, error) {
	for _, st := range inst.stores {
		if st != nil {
			st.reset()
		}
	}
	clear(inst.seen)
	g := &grounder{
		Instantiator: inst,
		out:          &Program{Table: inst.tab},
		deltaOcc:     -1,
	}

	for _, seed := range [2][]intern.AtomID{factIDs, inst.progFacts} {
		for _, id := range seed {
			a := inst.tab.Atom(id)
			st := g.store(inst.tab.AtomPred(id), len(a.Args))
			_, isNew, _ := st.add(id, a, inst.tab.ArgCodes(id), true)
			if isNew {
				g.totalAtom++
				if inst.opts.MaxAtoms > 0 && g.totalAtom > inst.opts.MaxAtoms {
					return nil, &ErrAtomLimit{Limit: inst.opts.MaxAtoms}
				}
			}
		}
	}

	for ci := range inst.plans {
		g.curComp = ci
		if err := g.evalComponent(&inst.plans[ci]); err != nil {
			return nil, err
		}
	}

	// Constraints are evaluated last against the full stores.
	g.curComp = len(inst.plans)
	for _, r := range inst.constraints {
		if err := g.joinRule(r, func(s ast.Subst) error {
			return g.emit(r, s)
		}); err != nil {
			return nil, err
		}
	}

	g.finish()
	return g.out, nil
}

// Ground instantiates the program against the input facts with a one-shot
// instantiator. Long-lived reasoners should build an Instantiator once and
// reuse it per window.
func Ground(p *ast.Program, facts []ast.Atom, opts Options) (*Program, error) {
	inst, err := NewInstantiator(p, opts)
	if err != nil {
		return nil, err
	}
	ids, err := inst.InternFacts(facts)
	if err != nil {
		return nil, err
	}
	return inst.Ground(ids)
}

// grounder is the per-window evaluation state layered over the reusable
// Instantiator.
type grounder struct {
	*Instantiator
	out       *Program
	curComp   int
	totalAtom int
	// delta for the semi-naive pass currently running: predicate ->
	// set of atom positions considered "new". Nil means no restriction.
	delta map[intern.PredID]map[int32]bool
	// deltaOcc is the body position whose literal ranges over delta; -1
	// disables the restriction.
	deltaOcc int
	// onNewAtom is notified whenever a new ground atom enters a store.
	onNewAtom func(pred intern.PredID, pos int32)
}

// pid returns the interned predicate of an atom.
func (g *grounder) pid(a ast.Atom) intern.PredID { return g.tab.Pred(a.Pred, len(a.Args)) }

// storeAt returns the store of a predicate, or nil if none exists yet.
func (g *grounder) storeAt(p intern.PredID) *predStore {
	if int(p) >= len(g.stores) {
		return nil
	}
	return g.stores[p]
}

// store returns the store of a predicate, creating it if needed.
func (g *grounder) store(p intern.PredID, arity int) *predStore {
	for int(p) >= len(g.stores) {
		g.stores = append(g.stores, nil)
	}
	st := g.stores[p]
	if st == nil {
		st = newPredStore(arity, !g.opts.NoIndex)
		g.stores[p] = st
	}
	return st
}

// evalComponent instantiates the rules of one SCC with semi-naive iteration.
func (g *grounder) evalComponent(plan *compPlan) error {
	if len(plan.rules) == 0 {
		return nil
	}

	// newAtoms collects atoms derived during the current pass, keyed by
	// predicate; they seed the next pass's delta.
	newAtoms := make(map[intern.PredID]map[int32]bool)
	record := func(pred intern.PredID, pos int32) {
		set := newAtoms[pred]
		if set == nil {
			set = make(map[int32]bool)
			newAtoms[pred] = set
		}
		set[pos] = true
	}
	g.onNewAtom = record

	// First pass: every rule against the full stores.
	g.out.Stats.Iterations++
	for _, r := range plan.rules {
		if err := g.joinRule(r, func(s ast.Subst) error {
			return g.emit(r, s)
		}); err != nil {
			return err
		}
	}

	// Semi-naive iteration for recursive rules.
	for len(plan.rec) > 0 && len(newAtoms) > 0 {
		delta := newAtoms
		newAtoms = make(map[intern.PredID]map[int32]bool)
		g.onNewAtom = record
		g.out.Stats.Iterations++
		progressed := false
		for _, rr := range plan.rec {
			for _, occ := range rr.occ {
				pred := g.pid(rr.rule.Body[occ].Atom)
				if len(delta[pred]) == 0 {
					continue
				}
				g.delta = map[intern.PredID]map[int32]bool{pred: delta[pred]}
				g.deltaOcc = occ
				err := g.joinRule(rr.rule, func(s ast.Subst) error {
					return g.emit(rr.rule, s)
				})
				g.delta = nil
				g.deltaOcc = -1
				if err != nil {
					return err
				}
			}
		}
		for _, set := range newAtoms {
			if len(set) > 0 {
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	g.onNewAtom = nil
	return nil
}

func (g *grounder) finish() {
	for _, st := range g.stores {
		if st == nil {
			continue
		}
		for i := range st.atoms {
			if st.certain[i] {
				g.out.Certain = append(g.out.Certain, st.atoms[i])
				g.out.CertainIDs = append(g.out.CertainIDs, st.ids[i])
			}
		}
	}
	// Sort by atom key, comparing cached key strings (rendered once per
	// distinct atom across the lifetime of the table).
	keys := g.keybuf[:0]
	for _, id := range g.out.CertainIDs {
		keys = append(keys, g.tab.KeyOf(id))
	}
	g.keybuf = keys[:0]
	certain, certainIDs := g.out.Certain, g.out.CertainIDs
	intern.SortByKey(keys, func(i, j int) {
		certain[i], certain[j] = certain[j], certain[i]
		certainIDs[i], certainIDs[j] = certainIDs[j], certainIDs[i]
		keys[i], keys[j] = keys[j], keys[i]
	})
	atoms := 0
	for _, st := range g.stores {
		if st != nil {
			atoms += len(st.atoms)
		}
	}
	g.out.Stats.Atoms = atoms
	g.out.Stats.Rules = len(g.out.Rules)
	g.out.Stats.CertainFacts = len(g.out.Certain)
}
