// Package ground implements the instantiation (grounding) phase of ASP
// computation: it turns a program with variables plus a set of input facts
// into an equivalent variable-free program.
//
// The grounder follows the classic bottom-up architecture of DLV/Clingo
// instantiators ([6], [18] in the paper): the predicate dependency graph is
// decomposed into strongly connected components, components are instantiated
// in topological order, and recursive components are evaluated with
// semi-naive iteration. Ground rules are simplified on the fly against the
// sets of certainly-true and possibly-true atoms, so stratified programs
// ground directly to their (unique) answer set.
package ground

import (
	"fmt"
	"sort"

	"streamrule/internal/asp/ast"
	"streamrule/internal/graph"
)

// Options configures the grounder.
type Options struct {
	// NoIndex disables the per-argument-position atom indexes and forces
	// full scans when matching body literals. Used by the index ablation
	// benchmark; keep the default (false) otherwise.
	NoIndex bool
	// MaxAtoms aborts grounding when the number of distinct ground atoms
	// exceeds the limit (0 means no limit). A guard against non-terminating
	// arithmetic recursion.
	MaxAtoms int
}

// Stats reports work done by a grounding run.
type Stats struct {
	// Atoms is the number of distinct ground atoms derived (certain or
	// possible), including the input facts.
	Atoms int
	// Rules is the number of simplified ground rules emitted.
	Rules int
	// CertainFacts is the number of atoms proven unconditionally true.
	CertainFacts int
	// Iterations is the total number of semi-naive passes over recursive
	// components.
	Iterations int
}

// Program is the result of grounding: a variable-free program partially
// evaluated against the input facts.
type Program struct {
	// Certain lists atoms that hold in every answer set; for stratified
	// programs this is the full answer set.
	Certain []ast.Atom
	// Rules lists the remaining ground rules (bodies reference only atoms
	// whose truth is undecided, heads may be disjunctive, empty heads are
	// integrity constraints).
	Rules []ast.Rule
	// Inconsistent is set when an integrity constraint was violated by
	// certain atoms alone; such a program has no answer sets.
	Inconsistent bool
	// Stats describes the grounding run.
	Stats Stats
}

// ErrAtomLimit is returned when Options.MaxAtoms is exceeded.
type ErrAtomLimit struct{ Limit int }

func (e *ErrAtomLimit) Error() string {
	return fmt.Sprintf("grounding exceeded the configured limit of %d atoms", e.Limit)
}

// predStore holds the ground atoms of one predicate together with optional
// per-argument-position indexes.
type predStore struct {
	arity   int
	atoms   []ast.Atom
	keyIdx  map[string]int
	certain []bool
	index   []map[string][]int // index[pos][termKey] -> atom positions
	// uncertain counts atoms currently stored as possible-but-not-certain;
	// aggregates require it to be zero for their condition predicates.
	uncertain int
}

func newPredStore(arity int, indexed bool) *predStore {
	st := &predStore{arity: arity, keyIdx: make(map[string]int)}
	if indexed && arity > 0 {
		st.index = make([]map[string][]int, arity)
		for i := range st.index {
			st.index[i] = make(map[string][]int)
		}
	}
	return st
}

// add inserts the ground atom, returning its position, whether it is new,
// and whether an existing atom's certainty was upgraded.
func (st *predStore) add(a ast.Atom, certain bool) (pos int, isNew, upgraded bool) {
	key := a.Key()
	if i, ok := st.keyIdx[key]; ok {
		if certain && !st.certain[i] {
			st.certain[i] = true
			st.uncertain--
			return i, false, true
		}
		return i, false, false
	}
	i := len(st.atoms)
	st.atoms = append(st.atoms, a)
	st.certain = append(st.certain, certain)
	if !certain {
		st.uncertain++
	}
	st.keyIdx[key] = i
	for p := range st.index {
		k := a.Args[p].String()
		st.index[p][k] = append(st.index[p][k], i)
	}
	return i, true, false
}

func (st *predStore) lookup(a ast.Atom) (pos int, ok bool) {
	if st == nil {
		return 0, false
	}
	pos, ok = st.keyIdx[a.Key()]
	return pos, ok
}

// candidates returns the positions of atoms that could match the pattern
// (args already substituted). With indexes enabled it uses the smallest
// bucket over the pattern's ground argument positions.
func (st *predStore) candidates(pattern []ast.Term) []int {
	if st == nil {
		return nil
	}
	if st.index != nil {
		best := -1
		var bucket []int
		for p, t := range pattern {
			if !t.IsGround() {
				continue
			}
			b := st.index[p][t.String()]
			if best == -1 || len(b) < best {
				best = len(b)
				bucket = b
			}
			if best == 0 {
				return nil
			}
		}
		if best >= 0 {
			return bucket
		}
	}
	all := make([]int, len(st.atoms))
	for i := range all {
		all[i] = i
	}
	return all
}

type grounder struct {
	opts      Options
	stores    map[string]*predStore
	compOf    map[string]int // predicate key -> component index
	seenRules map[string]bool
	out       *Program
	curComp   int
	totalAtom int
	// delta for the semi-naive pass currently running: predicate key ->
	// set of atom positions considered "new". Nil means no restriction.
	delta map[string]map[int]bool
	// deltaOcc is the body position whose literal ranges over delta; -1
	// disables the restriction.
	deltaOcc int
	// onNewAtom is notified whenever a new ground atom enters a store.
	onNewAtom func(predKey string, pos int)
}

// Ground instantiates the program against the input facts.
func Ground(p *ast.Program, facts []ast.Atom, opts Options) (*Program, error) {
	if err := p.CheckSafety(); err != nil {
		return nil, err
	}
	g := &grounder{
		opts:      opts,
		stores:    make(map[string]*predStore),
		compOf:    make(map[string]int),
		seenRules: make(map[string]bool),
		out:       &Program{},
		deltaOcc:  -1,
	}

	for _, f := range facts {
		if !f.IsGround() {
			return nil, fmt.Errorf("input fact %s is not ground", f)
		}
		_, isNew, _ := g.store(f.PredKey(), f.Arity()).add(f, true)
		if isNew {
			g.totalAtom++
		}
	}

	// Ground facts appearing as rules in the program text; intervals in
	// fact arguments (num(1..100).) expand here. Intervals anywhere else in
	// a body are unsupported.
	rest := make([]ast.Rule, 0, len(p.Rules))
	for _, r := range p.Rules {
		for _, l := range r.Body {
			if l.Kind != ast.AggLiteral && hasInterval(l) {
				return nil, fmt.Errorf("rule %q: intervals are only supported in facts and rule heads", r)
			}
		}
		if r.IsFact() && isGroundOrInterval(r.Head[0]) {
			heads, err := expandIntervalAtoms([]ast.Atom{r.Head[0].Apply(nil)})
			if err != nil {
				return nil, fmt.Errorf("fact %q: %w", r, err)
			}
			for _, hs := range heads {
				a := hs[0]
				_, isNew, _ := g.store(a.PredKey(), a.Arity()).add(a, true)
				if isNew {
					g.totalAtom++
					if opts.MaxAtoms > 0 && g.totalAtom > opts.MaxAtoms {
						return nil, &ErrAtomLimit{Limit: opts.MaxAtoms}
					}
				}
			}
			continue
		}
		rest = append(rest, r)
	}

	// Predicate dependency graph: body -> head, plus mutual edges between
	// the head predicates of a disjunctive rule so they land in one SCC.
	dep := graph.NewDirected()
	var constraints []ast.Rule
	for _, r := range rest {
		for _, h := range r.Head {
			dep.AddNode(h.PredKey())
		}
		var bodyPreds []string
		for _, l := range r.Body {
			switch l.Kind {
			case ast.AtomLiteral:
				bodyPreds = append(bodyPreds, l.Atom.PredKey())
			case ast.AggLiteral:
				for _, e := range l.Agg.Elems {
					for _, c := range e.Cond {
						if c.Kind == ast.AtomLiteral {
							bodyPreds = append(bodyPreds, c.Atom.PredKey())
						}
					}
				}
			}
		}
		for _, bp := range bodyPreds {
			dep.AddNode(bp)
			for _, h := range r.Head {
				dep.AddEdge(bp, h.PredKey())
			}
		}
		for i := 0; i < len(r.Head); i++ {
			for j := i + 1; j < len(r.Head); j++ {
				dep.AddEdge(r.Head[i].PredKey(), r.Head[j].PredKey())
				dep.AddEdge(r.Head[j].PredKey(), r.Head[i].PredKey())
			}
		}
		if r.IsConstraint() {
			constraints = append(constraints, r)
		}
	}
	comps := dep.TopoComponents()
	for i, comp := range comps {
		for _, pred := range comp {
			g.compOf[pred] = i
		}
	}

	// Assign non-constraint rules to the component of their head predicate.
	rulesOf := make(map[int][]ast.Rule)
	for _, r := range rest {
		if r.IsConstraint() {
			continue
		}
		ci := g.compOf[r.Head[0].PredKey()]
		rulesOf[ci] = append(rulesOf[ci], r)
	}

	for ci, comp := range comps {
		g.curComp = ci
		if err := g.evalComponent(comp, rulesOf[ci]); err != nil {
			return nil, err
		}
	}

	// Constraints are evaluated last against the full stores.
	g.curComp = len(comps)
	for _, r := range constraints {
		if err := g.joinRule(r, func(s ast.Subst) error {
			return g.emit(r, s)
		}); err != nil {
			return nil, err
		}
	}

	g.finish()
	return g.out, nil
}

func (g *grounder) store(predKey string, arity int) *predStore {
	st, ok := g.stores[predKey]
	if !ok {
		st = newPredStore(arity, !g.opts.NoIndex)
		g.stores[predKey] = st
	}
	return st
}

// recursive reports whether the rule has a positive body literal whose
// predicate belongs to the component being evaluated.
func (g *grounder) recursive(r ast.Rule, comp map[string]bool) []int {
	var occ []int
	for i, l := range r.Body {
		if l.Kind == ast.AtomLiteral && !l.Neg && comp[l.Atom.PredKey()] {
			occ = append(occ, i)
		}
	}
	return occ
}

// evalComponent instantiates the rules of one SCC with semi-naive iteration.
func (g *grounder) evalComponent(comp []string, rules []ast.Rule) error {
	if len(rules) == 0 {
		return nil
	}
	inComp := make(map[string]bool, len(comp))
	for _, p := range comp {
		inComp[p] = true
	}

	// newAtoms collects atoms derived during the current pass, keyed by
	// predicate; they seed the next pass's delta.
	newAtoms := make(map[string]map[int]bool)
	record := func(pred string, pos int) {
		set := newAtoms[pred]
		if set == nil {
			set = make(map[int]bool)
			newAtoms[pred] = set
		}
		set[pos] = true
	}
	g.onNewAtom = record

	// First pass: every rule against the full stores.
	g.out.Stats.Iterations++
	for _, r := range rules {
		if err := g.joinRule(r, func(s ast.Subst) error {
			return g.emit(r, s)
		}); err != nil {
			return err
		}
	}

	// Semi-naive iteration for recursive rules.
	type recRule struct {
		rule ast.Rule
		occ  []int
	}
	var recRules []recRule
	for _, r := range rules {
		if occ := g.recursive(r, inComp); len(occ) > 0 {
			recRules = append(recRules, recRule{r, occ})
		}
	}
	for len(recRules) > 0 && len(newAtoms) > 0 {
		delta := newAtoms
		newAtoms = make(map[string]map[int]bool)
		g.onNewAtom = record
		g.out.Stats.Iterations++
		progressed := false
		for _, rr := range recRules {
			for _, occ := range rr.occ {
				pred := rr.rule.Body[occ].Atom.PredKey()
				if len(delta[pred]) == 0 {
					continue
				}
				g.delta = map[string]map[int]bool{pred: delta[pred]}
				g.deltaOcc = occ
				err := g.joinRule(rr.rule, func(s ast.Subst) error {
					return g.emit(rr.rule, s)
				})
				g.delta = nil
				g.deltaOcc = -1
				if err != nil {
					return err
				}
			}
		}
		for _, set := range newAtoms {
			if len(set) > 0 {
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	g.onNewAtom = nil
	return nil
}

func (g *grounder) finish() {
	for _, st := range g.stores {
		for i, a := range st.atoms {
			if st.certain[i] {
				g.out.Certain = append(g.out.Certain, a)
			}
		}
	}
	sort.Slice(g.out.Certain, func(i, j int) bool {
		return g.out.Certain[i].Key() < g.out.Certain[j].Key()
	})
	atoms := 0
	for _, st := range g.stores {
		atoms += len(st.atoms)
	}
	g.out.Stats.Atoms = atoms
	g.out.Stats.Rules = len(g.out.Rules)
	g.out.Stats.CertainFacts = len(g.out.Certain)
}
