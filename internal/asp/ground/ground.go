// Package ground implements the instantiation (grounding) phase of ASP
// computation: it turns a program with variables plus a set of input facts
// into an equivalent variable-free program.
//
// The grounder follows the classic bottom-up architecture of DLV/Clingo
// instantiators ([6], [18] in the paper): the predicate dependency graph is
// decomposed into strongly connected components, components are instantiated
// in topological order, and recursive components are evaluated with
// semi-naive iteration. Ground rules are simplified on the fly against the
// sets of certainly-true and possibly-true atoms, so stratified programs
// ground directly to their (unique) answer set.
//
// Like those instantiators, the grounder runs on interned atom IDs
// (internal/asp/intern): atom stores, per-argument-position indexes, the
// semi-naive delta, and the seen-rule set are all keyed by dense integers,
// and the emitted ground program carries its rules in ID form for the
// solver. An Instantiator is built once per program (dependency analysis,
// component order) and reused across windows, keeping its interned symbols
// and store capacity warm — sliding windows overlap heavily, so the steady
// state re-derives mostly known atoms.
package ground

import (
	"fmt"

	"streamrule/internal/asp/ast"
	"streamrule/internal/asp/intern"
	"streamrule/internal/graph"
)

// Options configures the grounder.
type Options struct {
	// NoIndex disables the per-argument-position atom indexes and forces
	// full scans when matching body literals. Used by the index ablation
	// benchmark; keep the default (false) otherwise.
	NoIndex bool
	// MaxAtoms aborts grounding when the number of distinct ground atoms
	// exceeds the limit (0 means no limit). A guard against non-terminating
	// arithmetic recursion.
	MaxAtoms int
	// Intern is the interning table shared with the rest of the engine. Nil
	// selects the process-wide default table.
	Intern *intern.Table
}

// Stats reports work done by a grounding run.
type Stats struct {
	// Atoms is the number of distinct ground atoms derived (certain or
	// possible), including the input facts.
	Atoms int
	// Rules is the number of simplified ground rules emitted.
	Rules int
	// CertainFacts is the number of atoms proven unconditionally true.
	CertainFacts int
	// Iterations is the total number of semi-naive passes over recursive
	// components.
	Iterations int
}

// IRule is a ground rule over interned atom IDs: the disjunctive head, the
// positive body, and the negative body. It mirrors the ast.Rule at the same
// index of Program.Rules.
type IRule struct {
	Head []intern.AtomID
	Pos  []intern.AtomID
	Neg  []intern.AtomID
	// Choice marks a choice rule with cardinality bounds Lower..Upper
	// (ast.UnboundedChoice disables a bound).
	Choice       bool
	Lower, Upper int
}

// Program is the result of grounding: a variable-free program partially
// evaluated against the input facts.
type Program struct {
	// Certain lists atoms that hold in every answer set; for stratified
	// programs this is the full answer set. Sorted by atom key.
	Certain []ast.Atom
	// CertainIDs holds the interned IDs of Certain, aligned by index.
	CertainIDs []intern.AtomID
	// Rules lists the remaining ground rules (bodies reference only atoms
	// whose truth is undecided, heads may be disjunctive, empty heads are
	// integrity constraints).
	Rules []ast.Rule
	// RuleIDs holds the ID form of Rules, aligned by index.
	RuleIDs []IRule
	// Table is the interning table the IDs refer to.
	Table *intern.Table
	// Inconsistent is set when an integrity constraint was violated by
	// certain atoms alone; such a program has no answer sets.
	Inconsistent bool
	// Stats describes the grounding run.
	Stats Stats
}

// ErrAtomLimit is returned when Options.MaxAtoms is exceeded.
type ErrAtomLimit struct{ Limit int }

func (e *ErrAtomLimit) Error() string {
	return fmt.Sprintf("grounding exceeded the configured limit of %d atoms", e.Limit)
}

// bucketArena pools the []int32 index buckets freed when a store's maps are
// cleared (per-window resets, tombstone compaction), so the steady state of a
// long-lived instantiator re-seeds its indexes without reallocating buckets.
type bucketArena struct {
	free [][]int32
}

// put returns a bucket to the pool. Tiny buckets are not worth tracking.
func (a *bucketArena) put(b []int32) {
	if a == nil || cap(b) < 4 {
		return
	}
	a.free = append(a.free, b[:0])
}

// get returns an empty bucket with whatever capacity the pool has spare.
func (a *bucketArena) get() []int32 {
	if a == nil || len(a.free) == 0 {
		return nil
	}
	b := a.free[len(a.free)-1]
	a.free = a.free[:len(a.free)-1]
	return b
}

// Per-update transition marks of incremental maintenance. An atom touched
// during an update records its pre-update liveness on first touch, so the net
// transition (fresh, dead, or no change) can be read off at any later point
// of the same update.
const (
	markTouched uint8 = 1 << iota
	markPreLive
)

// predStore holds the ground atoms of one predicate together with optional
// per-argument-position indexes. Atoms are identified by interned IDs; the
// materialized forms are kept alongside for variable unification during
// joins.
type predStore struct {
	arity int
	ids   []intern.AtomID
	atoms []ast.Atom
	pos   map[intern.AtomID]int32
	// certain marks atoms proven unconditionally true. In incremental mode
	// it doubles as the liveness flag: stored atoms that are no longer
	// derivable keep their position as dead tombstones (certain == false)
	// until compaction.
	certain []bool
	index   []map[intern.Code][]int32 // index[pos][argCode] -> atom positions
	// uncertain counts atoms currently stored as possible-but-not-certain;
	// aggregates require it to be zero for their condition predicates.
	uncertain int

	arena *bucketArena // shared index-bucket pool (nil disables pooling)

	// Incremental-maintenance state, allocated only when the owning
	// instantiator runs in incremental mode; the slices stay aligned with
	// atoms. An atom is live iff support > 0 or edbRef > 0.
	inc     bool
	support []int32 // number of rule derivations currently deriving the atom
	edbRef  []int32 // external references (window facts, program facts)
	marks   []uint8 // per-update transition marks
	touched []int32 // positions marked during the current update
	liveCnt int     // number of live atoms
}

func newPredStore(arity int, indexed bool, arena *bucketArena) *predStore {
	st := &predStore{arity: arity, pos: make(map[intern.AtomID]int32), arena: arena}
	if indexed && arity > 0 {
		st.index = make([]map[intern.Code][]int32, arity)
		for i := range st.index {
			st.index[i] = make(map[intern.Code][]int32)
		}
	}
	return st
}

// reset clears the store contents while keeping allocated capacity for the
// next window. Freed index buckets are returned to the arena.
func (st *predStore) reset() {
	st.ids = st.ids[:0]
	st.atoms = st.atoms[:0]
	st.certain = st.certain[:0]
	st.uncertain = 0
	clear(st.pos)
	for _, m := range st.index {
		for k, b := range m {
			st.arena.put(b)
			delete(m, k)
		}
	}
	st.support = st.support[:0]
	st.edbRef = st.edbRef[:0]
	st.marks = st.marks[:0]
	st.touched = st.touched[:0]
	st.liveCnt = 0
}

// add inserts the ground atom, returning its position, whether it is new,
// and whether an existing atom's certainty was upgraded.
func (st *predStore) add(id intern.AtomID, a ast.Atom, codes []intern.Code, certain bool) (pos int32, isNew, upgraded bool) {
	if i, ok := st.pos[id]; ok {
		if certain && !st.certain[i] {
			st.certain[i] = true
			if !st.inc {
				st.uncertain--
			}
			return i, false, true
		}
		return i, false, false
	}
	i := int32(len(st.atoms))
	st.ids = append(st.ids, id)
	st.atoms = append(st.atoms, a)
	st.certain = append(st.certain, certain)
	if !certain && !st.inc {
		st.uncertain++
	}
	st.pos[id] = i
	for p := range st.index {
		b, ok := st.index[p][codes[p]]
		if !ok {
			b = st.arena.get()
		}
		st.index[p][codes[p]] = append(b, i)
	}
	if st.inc {
		st.support = append(st.support, 0)
		st.edbRef = append(st.edbRef, 0)
		st.marks = append(st.marks, 0)
	}
	return i, true, false
}

// touchIfFirst records the atom's pre-update liveness on its first touch of
// the current update.
func (st *predStore) touchIfFirst(pos int32) {
	if st.marks[pos]&markTouched != 0 {
		return
	}
	m := markTouched
	if st.certain[pos] {
		m |= markPreLive
	}
	st.marks[pos] = m
	st.touched = append(st.touched, pos)
}

// preLive reports whether the atom was live at the start of the current
// update (the OLD view of incremental delta joins).
func (st *predStore) preLive(pos int32) bool {
	if st.marks[pos]&markTouched != 0 {
		return st.marks[pos]&markPreLive != 0
	}
	return st.certain[pos]
}

// netDelta appends the store positions of atoms whose liveness changed over
// the current update to fresh (dead -> live) and dead (live -> dead).
func (st *predStore) netDelta(fresh, dead []int32) (f, d []int32) {
	for _, pos := range st.touched {
		pre := st.marks[pos]&markPreLive != 0
		if pre == st.certain[pos] {
			continue
		}
		if st.certain[pos] {
			fresh = append(fresh, pos)
		} else {
			dead = append(dead, pos)
		}
	}
	return fresh, dead
}

// hasNetDelta reports whether any atom's liveness changed this update.
func (st *predStore) hasNetDelta() bool {
	for _, pos := range st.touched {
		if (st.marks[pos]&markPreLive != 0) != st.certain[pos] {
			return true
		}
	}
	return false
}

// clearMarks resets the per-update transition marks.
func (st *predStore) clearMarks() {
	for _, pos := range st.touched {
		st.marks[pos] = 0
	}
	st.touched = st.touched[:0]
}

// compact drops dead tombstones once they outnumber the live atoms,
// rebuilding the position map and indexes. Positions are only stable within
// one update, so compaction runs between updates (after marks are cleared).
func (st *predStore) compact(tab *intern.Table) {
	dead := len(st.atoms) - st.liveCnt
	if dead <= 64 || dead <= st.liveCnt {
		return
	}
	w := int32(0)
	clear(st.pos)
	for _, m := range st.index {
		for k, b := range m {
			st.arena.put(b)
			delete(m, k)
		}
	}
	for r := range st.atoms {
		if !st.certain[r] {
			continue
		}
		st.ids[w] = st.ids[r]
		st.atoms[w] = st.atoms[r]
		st.certain[w] = true
		st.support[w] = st.support[r]
		st.edbRef[w] = st.edbRef[r]
		st.marks[w] = 0
		st.pos[st.ids[w]] = w
		if st.index != nil {
			codes := tab.ArgCodes(st.ids[w])
			for p := range st.index {
				b, ok := st.index[p][codes[p]]
				if !ok {
					b = st.arena.get()
				}
				st.index[p][codes[p]] = append(b, w)
			}
		}
		w++
	}
	st.ids = st.ids[:w]
	st.atoms = st.atoms[:w]
	st.certain = st.certain[:w]
	st.support = st.support[:w]
	st.edbRef = st.edbRef[:w]
	st.marks = st.marks[:w]
}

// lookup finds the store position of an interned atom.
func (st *predStore) lookup(id intern.AtomID) (pos int32, ok bool) {
	if st == nil {
		return 0, false
	}
	pos, ok = st.pos[id]
	return pos, ok
}

// candidates returns the positions of atoms that could match the pattern
// (args already substituted). With indexes enabled it uses the smallest
// bucket over the pattern's ground argument positions.
func (st *predStore) candidates(tab *intern.Table, pattern []ast.Term) []int32 {
	if st == nil {
		return nil
	}
	if st.index != nil {
		best := -1
		var bucket []int32
		for p, t := range pattern {
			if !t.IsGround() {
				continue
			}
			code, ok := tab.LookupCode(t)
			if !ok {
				return nil // the constant was never interned: no atom matches
			}
			b := st.index[p][code]
			if best == -1 || len(b) < best {
				best = len(b)
				bucket = b
			}
			if best == 0 {
				return nil
			}
		}
		if best >= 0 {
			return bucket
		}
	}
	all := make([]int32, len(st.atoms))
	for i := range all {
		all[i] = int32(i)
	}
	return all
}

// recRule is a rule with recursive positive body occurrences (body positions
// whose predicate belongs to the rule's own component).
type recRule struct {
	rule ast.Rule
	occ  []int
}

// predArity pairs a predicate with its arity (for store creation).
type predArity struct {
	pid   intern.PredID
	arity int
}

// compPlan is the precompiled evaluation plan of one strongly connected
// component: its rules and the recursive ones among them. For incremental
// maintenance it also records the distinct head and body predicates.
type compPlan struct {
	rules []ast.Rule
	rec   []recRule
	// headPreds / bodyPreds are filled only for incremental-eligible
	// programs: the distinct predicates of the component's rule heads, and
	// of all (positive and negative) body literals.
	headPreds []predArity
	bodyPreds []intern.PredID
}

// Instantiator is a reusable grounder for a fixed program: the dependency
// analysis, component order, and program-text facts are computed once at
// construction, and the atom stores are reused (reset, not reallocated)
// across windows. An Instantiator is not safe for concurrent use; the
// parallel reasoner gives each partition its own copy, all sharing one
// interning table.
type Instantiator struct {
	opts Options
	tab  *intern.Table

	plans       []compPlan
	constraints []ast.Rule
	compOf      map[intern.PredID]int
	// progFacts are the ground facts appearing in the program text
	// (intervals pre-expanded), re-seeded into every window. progFactAtoms
	// retains their materialized forms so the IDs can be re-interned after a
	// table rotation (rotate.go).
	progFacts     []intern.AtomID
	progFactAtoms []ast.Atom

	// Scratch reused across windows.
	stores   []*predStore // indexed by PredID
	seen     map[string]bool
	sigBuf   []byte
	keybuf   []string
	totalCap int
	arena    bucketArena

	// Incremental maintenance (see incremental.go). incEligible is decided
	// statically at construction; inc holds the live support-counting state
	// once GroundIncremental has seeded it.
	incEligible    bool
	constraintDeps [][]intern.PredID
	inc            *incState
}

// NewInstantiator analyzes the program (safety, dependency components,
// program-text facts) and returns a grounder reusable across windows.
func NewInstantiator(p *ast.Program, opts Options) (*Instantiator, error) {
	if err := p.CheckSafety(); err != nil {
		return nil, err
	}
	tab := opts.Intern
	if tab == nil {
		tab = intern.Default()
	}
	inst := &Instantiator{
		opts:   opts,
		tab:    tab,
		compOf: make(map[intern.PredID]int),
		seen:   make(map[string]bool),
	}

	// Ground facts appearing as rules in the program text; intervals in
	// fact arguments (num(1..100).) expand here. Intervals anywhere else in
	// a body are unsupported. Duplicate facts (repeated statements,
	// overlapping intervals) collapse, so the atom limit counts distinct
	// atoms exactly as the per-window stores do.
	factSeen := make(map[intern.AtomID]bool)
	rest := make([]ast.Rule, 0, len(p.Rules))
	for _, r := range p.Rules {
		for _, l := range r.Body {
			if l.Kind != ast.AggLiteral && hasInterval(l) {
				return nil, fmt.Errorf("rule %q: intervals are only supported in facts and rule heads", r)
			}
		}
		if r.IsFact() && isGroundOrInterval(r.Head[0]) {
			heads, err := expandIntervalAtoms([]ast.Atom{r.Head[0].Apply(nil)})
			if err != nil {
				return nil, fmt.Errorf("fact %q: %w", r, err)
			}
			for _, hs := range heads {
				id := tab.InternAtom(hs[0])
				if factSeen[id] {
					continue
				}
				factSeen[id] = true
				inst.progFacts = append(inst.progFacts, id)
				inst.progFactAtoms = append(inst.progFactAtoms, hs[0])
				if opts.MaxAtoms > 0 && len(inst.progFacts) > opts.MaxAtoms {
					return nil, &ErrAtomLimit{Limit: opts.MaxAtoms}
				}
			}
			continue
		}
		rest = append(rest, r)
	}

	// Predicate dependency graph: body -> head, plus mutual edges between
	// the head predicates of a disjunctive rule so they land in one SCC.
	dep := graph.NewDirected()
	pid := func(a ast.Atom) intern.PredID { return tab.Pred(a.Pred, len(a.Args)) }
	pidOf := make(map[string]intern.PredID)
	node := func(a ast.Atom) string {
		k := a.PredKey()
		if _, ok := pidOf[k]; !ok {
			pidOf[k] = pid(a)
		}
		return k
	}
	for _, r := range rest {
		for _, h := range r.Head {
			dep.AddNode(node(h))
		}
		var bodyPreds []string
		for _, l := range r.Body {
			switch l.Kind {
			case ast.AtomLiteral:
				bodyPreds = append(bodyPreds, node(l.Atom))
			case ast.AggLiteral:
				for _, e := range l.Agg.Elems {
					for _, c := range e.Cond {
						if c.Kind == ast.AtomLiteral {
							bodyPreds = append(bodyPreds, node(c.Atom))
						}
					}
				}
			}
		}
		for _, bp := range bodyPreds {
			dep.AddNode(bp)
			for _, h := range r.Head {
				dep.AddEdge(bp, node(h))
			}
		}
		for i := 0; i < len(r.Head); i++ {
			for j := i + 1; j < len(r.Head); j++ {
				dep.AddEdge(node(r.Head[i]), node(r.Head[j]))
				dep.AddEdge(node(r.Head[j]), node(r.Head[i]))
			}
		}
		if r.IsConstraint() {
			inst.constraints = append(inst.constraints, r)
		}
	}
	comps := dep.TopoComponents()
	for i, comp := range comps {
		for _, pred := range comp {
			inst.compOf[pidOf[pred]] = i
		}
	}

	// Assign non-constraint rules to the component of their head predicate,
	// and precompute the recursive occurrences for semi-naive iteration.
	inst.plans = make([]compPlan, len(comps))
	for _, r := range rest {
		if r.IsConstraint() {
			continue
		}
		ci := inst.compOf[pid(r.Head[0])]
		inst.plans[ci].rules = append(inst.plans[ci].rules, r)
	}
	for ci, comp := range comps {
		inComp := make(map[intern.PredID]bool, len(comp))
		for _, pk := range comp {
			inComp[pidOf[pk]] = true
		}
		for _, r := range inst.plans[ci].rules {
			var occ []int
			for i, l := range r.Body {
				if l.Kind == ast.AtomLiteral && !l.Neg && inComp[pid(l.Atom)] {
					occ = append(occ, i)
				}
			}
			if len(occ) > 0 {
				inst.plans[ci].rec = append(inst.plans[ci].rec, recRule{r, occ})
			}
		}
	}
	inst.analyzeIncremental(rest)
	return inst, nil
}

// analyzeIncremental decides static eligibility for incremental maintenance
// and precomputes the per-component predicate metadata the Update path needs.
// Eligible programs ground to a fully evaluated (rule-free) program on every
// input: stratified negation, no choice rules, no disjunctive heads, no
// aggregates. Anything else falls back to from-scratch grounding.
func (inst *Instantiator) analyzeIncremental(rules []ast.Rule) {
	pid := func(a ast.Atom) intern.PredID { return inst.tab.Pred(a.Pred, len(a.Args)) }
	for _, r := range rules {
		if r.Choice || len(r.Head) > 1 {
			return
		}
		for _, l := range r.Body {
			if l.Kind == ast.AggLiteral {
				return
			}
			if l.Kind == ast.AtomLiteral && l.Neg && len(r.Head) == 1 {
				// Stratification: a negated predicate must live in a
				// strictly lower component than the rule head.
				nc, declared := inst.compOf[pid(l.Atom)]
				if declared && nc >= inst.compOf[pid(r.Head[0])] {
					return
				}
			}
		}
	}
	// Per-component head/body predicate sets.
	for ci := range inst.plans {
		plan := &inst.plans[ci]
		seenHead := make(map[intern.PredID]bool)
		seenBody := make(map[intern.PredID]bool)
		for _, r := range plan.rules {
			for _, h := range r.Head {
				p := pid(h)
				if !seenHead[p] {
					seenHead[p] = true
					plan.headPreds = append(plan.headPreds, predArity{p, len(h.Args)})
				}
			}
			for _, l := range r.Body {
				if l.Kind != ast.AtomLiteral {
					continue
				}
				p := pid(l.Atom)
				if !seenBody[p] {
					seenBody[p] = true
					plan.bodyPreds = append(plan.bodyPreds, p)
				}
			}
		}
	}
	inst.constraintDeps = make([][]intern.PredID, len(inst.constraints))
	for k, r := range inst.constraints {
		seenBody := make(map[intern.PredID]bool)
		for _, l := range r.Body {
			if l.Kind != ast.AtomLiteral {
				continue
			}
			p := pid(l.Atom)
			if !seenBody[p] {
				seenBody[p] = true
				inst.constraintDeps[k] = append(inst.constraintDeps[k], p)
			}
		}
	}
	inst.incEligible = true
}

// Table returns the interning table the instantiator grounds into.
func (inst *Instantiator) Table() *intern.Table { return inst.tab }

// InternFacts interns a slice of input facts, validating that they are
// ground. The result can be passed to Ground.
func (inst *Instantiator) InternFacts(facts []ast.Atom) ([]intern.AtomID, error) {
	ids := make([]intern.AtomID, len(facts))
	for i, f := range facts {
		if !f.IsGround() {
			return nil, fmt.Errorf("input fact %s is not ground", f)
		}
		ids[i] = inst.tab.InternAtom(f)
	}
	return ids, nil
}

// Ground instantiates the program against one window of input facts (given
// as interned atom IDs), reusing the instantiator's scratch stores. A plain
// Ground invalidates any incremental state a prior GroundIncremental seeded.
func (inst *Instantiator) Ground(factIDs []intern.AtomID) (*Program, error) {
	if inst.inc != nil {
		inst.inc.ready = false
	}
	return inst.ground(factIDs, false)
}

// ground is the shared from-scratch grounding core. With counting set it
// additionally seeds the support counts, EDB references, and constraint
// violation tallies that Update maintains incrementally.
func (inst *Instantiator) ground(factIDs []intern.AtomID, counting bool) (*Program, error) {
	for _, st := range inst.stores {
		if st != nil {
			st.inc = counting
			st.reset()
		}
	}
	clear(inst.seen)
	g := &grounder{
		Instantiator: inst,
		out:          &Program{Table: inst.tab},
		deltaOcc:     -1,
		counting:     counting,
	}

	for si, seed := range [2][]intern.AtomID{factIDs, inst.progFacts} {
		isWindow := si == 0
		for _, id := range seed {
			a := inst.tab.Atom(id)
			st := g.store(inst.tab.AtomPred(id), len(a.Args))
			if counting {
				// One EDB reference per distinct window fact (the caller
				// reports 0<->1 multiset transitions to Update), plus one
				// per program fact (deduplicated at construction).
				if isWindow {
					if pos, ok := st.pos[id]; ok && st.edbRef[pos] > 0 {
						continue
					}
				}
				if err := g.incApply(id, a, 0, 1); err != nil {
					return nil, err
				}
				continue
			}
			_, isNew, _ := st.add(id, a, inst.tab.ArgCodes(id), true)
			if isNew {
				g.totalAtom++
				if inst.opts.MaxAtoms > 0 && g.totalAtom > inst.opts.MaxAtoms {
					return nil, &ErrAtomLimit{Limit: inst.opts.MaxAtoms}
				}
			}
		}
	}

	for ci := range inst.plans {
		g.curComp = ci
		if err := g.evalComponent(&inst.plans[ci]); err != nil {
			return nil, err
		}
	}

	// Constraints are evaluated last against the full stores.
	g.curComp = len(inst.plans)
	for k, r := range inst.constraints {
		g.constraintIdx = k
		if err := g.joinRule(r, func(s ast.Subst) error {
			return g.emit(r, s)
		}); err != nil {
			return nil, err
		}
	}

	g.finish()
	if counting {
		if len(g.out.Rules) > 0 {
			// The eligibility analysis promised a fully evaluated program;
			// a residual rule means the support counts are meaningless.
			return nil, errIncResidual
		}
		inst.inc.liveAtoms = g.totalAtom
		inst.inc.ready = true
	}
	return g.out, nil
}

// Ground instantiates the program against the input facts with a one-shot
// instantiator. Long-lived reasoners should build an Instantiator once and
// reuse it per window.
func Ground(p *ast.Program, facts []ast.Atom, opts Options) (*Program, error) {
	inst, err := NewInstantiator(p, opts)
	if err != nil {
		return nil, err
	}
	ids, err := inst.InternFacts(facts)
	if err != nil {
		return nil, err
	}
	return inst.Ground(ids)
}

// grounder is the per-window evaluation state layered over the reusable
// Instantiator.
type grounder struct {
	*Instantiator
	out     *Program
	curComp int
	// totalAtom counts distinct ground atoms this run; in counting mode it
	// tracks the number of LIVE atoms (tombstones excluded) and persists
	// across updates via incState.liveAtoms.
	totalAtom int
	// delta for the semi-naive pass currently running: predicate ->
	// set of atom positions considered "new". Nil means no restriction.
	delta map[intern.PredID]map[int32]bool
	// deltaOcc is the body position whose literal ranges over delta; -1
	// disables the restriction.
	deltaOcc int
	// onNewAtom is notified whenever a new ground atom enters a store.
	onNewAtom func(pred intern.PredID, pos int32)

	// Incremental mode (see incremental.go). counting enables support
	// bookkeeping: every derivation adjusts the head atom's support count
	// instead of being deduplicated, joins skip dead tombstones, and
	// negative literals are decided against liveness. inUpdate additionally
	// records per-update transition marks. constraintIdx is the index of
	// the constraint currently being evaluated. incCtx, when non-nil, turns
	// joinRule into an incremental delta join (see incremental.go).
	counting      bool
	inUpdate      bool
	constraintIdx int
	incCtx        *incJoinCtx
}

// pid returns the interned predicate of an atom.
func (g *grounder) pid(a ast.Atom) intern.PredID { return g.tab.Pred(a.Pred, len(a.Args)) }

// storeAt returns the store of a predicate, or nil if none exists yet.
func (g *grounder) storeAt(p intern.PredID) *predStore {
	if int(p) >= len(g.stores) {
		return nil
	}
	return g.stores[p]
}

// store returns the store of a predicate, creating it if needed.
func (g *grounder) store(p intern.PredID, arity int) *predStore {
	for int(p) >= len(g.stores) {
		g.stores = append(g.stores, nil)
	}
	st := g.stores[p]
	if st == nil {
		st = newPredStore(arity, !g.opts.NoIndex, &g.arena)
		st.inc = g.counting
		g.stores[p] = st
	}
	return st
}

// evalComponent instantiates the rules of one SCC with semi-naive iteration.
func (g *grounder) evalComponent(plan *compPlan) error {
	if len(plan.rules) == 0 {
		return nil
	}

	// newAtoms collects atoms derived during the current pass, keyed by
	// predicate; they seed the next pass's delta.
	newAtoms := make(map[intern.PredID]map[int32]bool)
	record := func(pred intern.PredID, pos int32) {
		set := newAtoms[pred]
		if set == nil {
			set = make(map[int32]bool)
			newAtoms[pred] = set
		}
		set[pos] = true
	}
	g.onNewAtom = record

	// First pass: every rule against the full stores.
	g.out.Stats.Iterations++
	for _, r := range plan.rules {
		if err := g.joinRule(r, func(s ast.Subst) error {
			return g.emit(r, s)
		}); err != nil {
			return err
		}
	}

	// Semi-naive iteration for recursive rules.
	for len(plan.rec) > 0 && len(newAtoms) > 0 {
		delta := newAtoms
		newAtoms = make(map[intern.PredID]map[int32]bool)
		g.onNewAtom = record
		g.out.Stats.Iterations++
		progressed := false
		for _, rr := range plan.rec {
			for _, occ := range rr.occ {
				pred := g.pid(rr.rule.Body[occ].Atom)
				if len(delta[pred]) == 0 {
					continue
				}
				g.delta = map[intern.PredID]map[int32]bool{pred: delta[pred]}
				g.deltaOcc = occ
				err := g.joinRule(rr.rule, func(s ast.Subst) error {
					return g.emit(rr.rule, s)
				})
				g.delta = nil
				g.deltaOcc = -1
				if err != nil {
					return err
				}
			}
		}
		for _, set := range newAtoms {
			if len(set) > 0 {
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	g.onNewAtom = nil
	return nil
}

func (g *grounder) finish() {
	if g.counting && g.inc != nil {
		// Incremental programs are rebuilt every window; reuse the scratch
		// (the Program is documented valid until the next call).
		g.out.Certain = g.inc.certScratch[:0]
		g.out.CertainIDs = g.inc.idScratch[:0]
	}
	for _, st := range g.stores {
		if st == nil {
			continue
		}
		for i := range st.atoms {
			if st.certain[i] {
				g.out.Certain = append(g.out.Certain, st.atoms[i])
				g.out.CertainIDs = append(g.out.CertainIDs, st.ids[i])
			}
		}
	}
	if g.counting && g.inc != nil {
		g.inc.certScratch = g.out.Certain[:0]
		g.inc.idScratch = g.out.CertainIDs[:0]
	}
	// Sort by atom key, comparing cached key strings (rendered once per
	// distinct atom across the lifetime of the table).
	keys := g.keybuf[:0]
	for _, id := range g.out.CertainIDs {
		keys = append(keys, g.tab.KeyOf(id))
	}
	g.keybuf = keys[:0]
	certain, certainIDs := g.out.Certain, g.out.CertainIDs
	intern.SortByKey(keys, func(i, j int) {
		certain[i], certain[j] = certain[j], certain[i]
		certainIDs[i], certainIDs[j] = certainIDs[j], certainIDs[i]
		keys[i], keys[j] = keys[j], keys[i]
	})
	atoms := 0
	for _, st := range g.stores {
		if st == nil {
			continue
		}
		if st.inc {
			atoms += st.liveCnt
		} else {
			atoms += len(st.atoms)
		}
	}
	g.out.Stats.Atoms = atoms
	g.out.Stats.Rules = len(g.out.Rules)
	g.out.Stats.CertainFacts = len(g.out.Certain)
}
