package ground

import (
	"strings"
	"testing"

	"streamrule/internal/asp/ast"
)

func TestIntervalFacts(t *testing.T) {
	gp, err := Ground(mustParse(t, `
num(1..5).
even(X) :- num(X), X \ 2 = 0.
`), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if !hasCertain(gp, "num("+string(rune('0'+i))+")") {
			t.Errorf("num(%d) missing", i)
		}
	}
	if !hasCertain(gp, "even(2)") || !hasCertain(gp, "even(4)") || hasCertain(gp, "even(3)") {
		t.Errorf("evens wrong: %v", certainKeys(gp))
	}
}

func TestIntervalInRuleHead(t *testing.T) {
	gp, err := Ground(mustParse(t, `
base(10).
slot(1..3) :- base(X), X > 5.
`), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"slot(1)", "slot(2)", "slot(3)"} {
		if !hasCertain(gp, want) {
			t.Errorf("%s missing: %v", want, certainKeys(gp))
		}
	}
}

func TestIntervalWithVariableBound(t *testing.T) {
	gp, err := Ground(mustParse(t, `
n(3).
slot(1..X) :- n(X).
`), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"slot(1)", "slot(2)", "slot(3)"} {
		if !hasCertain(gp, want) {
			t.Errorf("%s missing: %v", want, certainKeys(gp))
		}
	}
}

func TestIntervalInBodyRejected(t *testing.T) {
	_, err := Ground(mustParse(t, `
p :- q(1..3).
q(2).
`), nil, Options{})
	if err == nil || !strings.Contains(err.Error(), "intervals") {
		t.Errorf("expected interval error, got %v", err)
	}
}

func TestCrossProductIntervals(t *testing.T) {
	gp, err := Ground(mustParse(t, "cell(1..3, 1..2)."), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, a := range gp.Certain {
		if a.Pred == "cell" {
			count++
		}
	}
	if count != 6 {
		t.Errorf("cells = %d, want 6", count)
	}
}

func TestFunctionTermsGroundAndJoin(t *testing.T) {
	gp, err := Ground(mustParse(t, `
edge(pair(a, b)).
edge(pair(b, c)).
rev(pair(Y, X)) :- edge(pair(X, Y)).
both(P) :- edge(P), rev(P).
`), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !hasCertain(gp, "rev(pair(b,a))") {
		t.Errorf("rev missing: %v", certainKeys(gp))
	}
	if hasCertain(gp, "both(pair(a,b))") {
		t.Error("both should not hold (rev(pair(a,b)) underivable)")
	}
}

func TestChoiceRuleGrounding(t *testing.T) {
	gp, err := Ground(mustParse(t, `
item(a). item(b).
{ pick(X) } :- item(X).
`), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// pick atoms must be possible but not certain.
	for _, a := range gp.Certain {
		if a.Pred == "pick" {
			t.Errorf("choice head %s must not be certain", a)
		}
	}
	choice := 0
	for _, r := range gp.Rules {
		if r.Choice {
			choice++
			if len(r.Body) != 0 {
				t.Errorf("body should be simplified away (item is certain): %v", r)
			}
		}
	}
	if choice != 2 {
		t.Errorf("choice rules = %d, want 2", choice)
	}
}

func TestChoiceBoundsSurviveGrounding(t *testing.T) {
	gp, err := Ground(mustParse(t, "1 { a ; b ; c } 2."), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(gp.Rules) != 1 || !gp.Rules[0].Choice {
		t.Fatalf("rules = %v", gp.Rules)
	}
	if gp.Rules[0].Lower != 1 || gp.Rules[0].Upper != 2 {
		t.Errorf("bounds = %d..%d", gp.Rules[0].Lower, gp.Rules[0].Upper)
	}
}

func TestChoiceHeadInterval(t *testing.T) {
	gp, err := Ground(mustParse(t, "{ slot(1..3) } 1."), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(gp.Rules) != 1 {
		t.Fatalf("rules = %v", gp.Rules)
	}
	if len(gp.Rules[0].Head) != 3 {
		t.Errorf("choice heads = %v (interval should pool)", gp.Rules[0].Head)
	}
}

func TestAggregateCount(t *testing.T) {
	gp, err := Ground(mustParse(t, `
car_location(c1, city1). car_location(c2, city1). car_location(c3, city1).
car_location(c4, city2).
city(city1). city(city2).
busy(X) :- city(X), #count{ C : car_location(C, X) } > 2.
n(X, N) :- city(X), N = #count{ C : car_location(C, X) }.
`), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !hasCertain(gp, "busy(city1)") || hasCertain(gp, "busy(city2)") {
		t.Errorf("busy wrong: %v", certainKeys(gp))
	}
	if !hasCertain(gp, "n(city1,3)") || !hasCertain(gp, "n(city2,1)") {
		t.Errorf("counts wrong: %v", certainKeys(gp))
	}
}

func TestAggregateSumMinMax(t *testing.T) {
	gp, err := Ground(mustParse(t, `
weight(t1, 3). weight(t2, 5). weight(t3, 3).
total(S) :- S = #sum{ W, T : weight(T, W) }.
lightest(M) :- M = #min{ W : weight(T, W) }.
heaviest(M) :- M = #max{ W : weight(T, W) }.
`), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Sum is over the SET of tuples (W,T): 3+5+3 = 11.
	if !hasCertain(gp, "total(11)") {
		t.Errorf("total wrong: %v", certainKeys(gp))
	}
	if !hasCertain(gp, "lightest(3)") || !hasCertain(gp, "heaviest(5)") {
		t.Errorf("min/max wrong: %v", certainKeys(gp))
	}
}

func TestAggregateSetSemantics(t *testing.T) {
	// Identical tuples collapse: sum over {W : ...} with duplicate weights
	// counts each distinct W once.
	gp, err := Ground(mustParse(t, `
weight(t1, 3). weight(t2, 3).
distinct_sum(S) :- S = #sum{ W : weight(T, W) }.
`), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !hasCertain(gp, "distinct_sum(3)") {
		t.Errorf("set semantics violated: %v", certainKeys(gp))
	}
}

func TestAggregateEmptySet(t *testing.T) {
	gp, err := Ground(mustParse(t, `
nothing :- #count{ X : missing(X) } = 0.
no_min :- #min{ X : missing(X) } < 100.
p :- nothing.
q(X) :- r(X), missing(X).
r(1).
`), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !hasCertain(gp, "nothing") || !hasCertain(gp, "p") {
		t.Errorf("#count over empty set should be 0: %v", certainKeys(gp))
	}
	if hasCertain(gp, "no_min") {
		t.Error("#min over the empty set must fail the guard")
	}
}

func TestAggregateNegatedCondition(t *testing.T) {
	gp, err := Ground(mustParse(t, `
node(1..3).
marked(2).
unmarked(N) :- N = #count{ X : node(X), not marked(X) }.
`), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !hasCertain(gp, "unmarked(2)") {
		t.Errorf("got %v", certainKeys(gp))
	}
}

func TestAggregateComparisonCondition(t *testing.T) {
	gp, err := Ground(mustParse(t, `
speed(a, 10). speed(b, 30). speed(c, 50).
slow(N) :- N = #count{ X : speed(X, V), V < 40 }.
`), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !hasCertain(gp, "slow(2)") {
		t.Errorf("got %v", certainKeys(gp))
	}
}

func TestUnstratifiedAggregateRejected(t *testing.T) {
	_, err := Ground(mustParse(t, `
a :- not b.
b :- not a.
n(N) :- N = #count{ X : sel(X) }.
sel(1) :- a.
`), nil, Options{})
	if err == nil {
		t.Fatal("aggregate over a non-deterministic predicate must be rejected")
	}
	if _, ok := err.(*ErrUnstratifiedAggregate); !ok {
		t.Errorf("expected ErrUnstratifiedAggregate, got %T: %v", err, err)
	}
}

func TestAggregateGlobalVariableGrouping(t *testing.T) {
	// The canonical stream-reasoning use: counting readings per entity,
	// with the entity variable global to the rule.
	gp, err := Ground(mustParse(t, `
reading(s1, 1). reading(s1, 2). reading(s2, 7).
sensor(s1). sensor(s2).
active(S) :- sensor(S), #count{ V : reading(S, V) } >= 2.
`), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !hasCertain(gp, "active(s1)") || hasCertain(gp, "active(s2)") {
		t.Errorf("grouping wrong: %v", certainKeys(gp))
	}
}

func TestStringsInFactsAndRules(t *testing.T) {
	prog := &ast.Program{}
	prog.Add(ast.Fact(ast.NewAtom("label", ast.Sym("n1"), ast.Str("hello"))))
	prog.Add(ast.NewRule(
		ast.NewAtom("named", ast.Var("X")),
		ast.Pos(ast.NewAtom("label", ast.Var("X"), ast.Var("L"))),
		ast.Cmp(ast.CmpNeq, ast.Var("L"), ast.Str("")),
	))
	gp, err := Ground(prog, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !hasCertain(gp, "named(n1)") {
		t.Errorf("got %v", certainKeys(gp))
	}
}
