// Table-rotation support: surviving intern.Table.Rotate with the
// instantiator's cross-window state intact.
//
// The instantiator holds interned IDs across windows in two places: the
// program-text facts (re-seeded into every window) and, when incremental
// maintenance is live, the atom stores with their support/EDB counts and the
// key-sorted certain set. LiveAtomIDs reports those IDs so the rotating
// caller can pass them to Rotate; Remap then rewrites them to the rotated
// IDs. Dead tombstones are deliberately not kept alive: a rotation doubles
// as an unconditional store compaction. When a live ID is missing from the
// remap (a caller rotated without consulting LiveAtomIDs), Remap falls back
// to dropping the incremental state entirely — the next window re-seeds from
// scratch, trading latency for correctness.
package ground

import "streamrule/internal/asp/intern"

// LiveAtomIDs appends every interned atom ID the instantiator needs to stay
// valid across a table rotation: the program-text facts and, when
// incremental state is live, every live atom of the maintained stores
// (tombstones excluded — Remap drops them).
func (inst *Instantiator) LiveAtomIDs(dst []intern.AtomID) []intern.AtomID {
	dst = append(dst, inst.progFacts...)
	if inst.IncrementalReady() {
		for _, st := range inst.stores {
			if st == nil {
				continue
			}
			for i, live := range st.certain {
				if live {
					dst = append(dst, st.ids[i])
				}
			}
		}
	}
	return dst
}

// Remap rewrites the instantiator's interned IDs after a table rotation.
// It reports whether the incremental state had to be dropped (reseeded):
// the caller must then treat the grounding as cold and re-seed with
// GroundIncremental before the next Update.
func (inst *Instantiator) Remap(rm *intern.Remap) (reseeded bool) {
	// Program facts are re-interned from their retained materialized forms:
	// correct even for a rotation that dropped them.
	for i, a := range inst.progFactAtoms {
		inst.progFacts[i] = inst.tab.InternAtom(a)
	}
	if !inst.IncrementalReady() {
		// No live cross-window state, but the scratch stores' position maps
		// and indexes hold stale IDs; clear them rather than trust the
		// per-window reset to run first.
		inst.resetStores()
		return false
	}
	for _, st := range inst.stores {
		if st == nil {
			continue
		}
		if !st.remapLive(inst.tab, rm) {
			inst.dropIncremental()
			return true
		}
	}
	s := inst.inc
	for i, id := range s.sortedIDs {
		nid, ok := rm.Atom(id)
		if !ok {
			inst.dropIncremental()
			return true
		}
		s.sortedIDs[i] = nid
	}
	clear(s.deltaCache)
	return false
}

// resetStores clears every scratch store (keeping capacity) and the
// seen-rule set.
func (inst *Instantiator) resetStores() {
	for _, st := range inst.stores {
		if st != nil {
			st.reset()
		}
	}
	clear(inst.seen)
}

// dropIncremental invalidates the incremental state after a failed remap.
func (inst *Instantiator) dropIncremental() {
	inst.resetStores()
	if inst.inc != nil {
		inst.inc.ready = false
	}
}

// remapLive compacts the store to its live atoms under a table remap:
// tombstones are dropped, positions and indexes are rebuilt with the rotated
// IDs and argument codes, and the support/EDB counts follow their atoms. It
// reports false when a live atom is missing from the remap or an update is
// in flight (touched marks pending) — the caller then resets wholesale.
func (st *predStore) remapLive(tab *intern.Table, rm *intern.Remap) bool {
	if len(st.touched) > 0 || !st.inc {
		return false
	}
	clear(st.pos)
	for _, m := range st.index {
		for k, b := range m {
			st.arena.put(b)
			delete(m, k)
		}
	}
	w := int32(0)
	for r := range st.atoms {
		if !st.certain[r] {
			continue
		}
		nid, ok := rm.Atom(st.ids[r])
		if !ok {
			return false
		}
		st.ids[w] = nid
		st.atoms[w] = st.atoms[r]
		st.certain[w] = true
		st.support[w] = st.support[r]
		st.edbRef[w] = st.edbRef[r]
		st.marks[w] = 0
		st.pos[nid] = w
		if st.index != nil {
			codes := tab.ArgCodes(nid)
			for p := range st.index {
				b, ok := st.index[p][codes[p]]
				if !ok {
					b = st.arena.get()
				}
				st.index[p][codes[p]] = append(b, w)
			}
		}
		w++
	}
	st.ids = st.ids[:w]
	st.atoms = st.atoms[:w]
	st.certain = st.certain[:w]
	st.support = st.support[:w]
	st.edbRef = st.edbRef[:w]
	st.marks = st.marks[:w]
	st.liveCnt = int(w)
	return true
}
