// The legacy rescan-to-fixpoint propagator, kept compiled in behind
// Options.NaivePropagation as the differential-test oracle and the
// benchmark baseline the counter/worklist engine (propagate.go) is measured
// against. It recomputes every rule's full state on every pass and
// re-derives support by scanning every atom × head occurrence — O(rules ×
// body) per pass — which is exactly the cost profile the event-driven
// engine eliminates.
package solve

// posState / negState report the truth of a positive / negated body
// literal over atom a under the current assignment.
func (s *solver) posState(a int) int8 { return s.assign[a] }
func (s *solver) negState(a int) int8 {
	switch s.assign[a] {
	case tru:
		return fls
	case fls:
		return tru
	default:
		return undef
	}
}

// ruleState summarizes a rule body: satisfied (all literals true),
// falsified (some literal false), or the single undecided literal.
type ruleState struct {
	bodySat    bool
	bodyFalse  bool
	undecided  int // count of undecided body literals
	lastPos    int // local index of an undecided positive literal (if any)
	lastNeg    int // local index of an undecided negative literal (if any)
	lastIsPos  bool
	headTrue   int // count of true head atoms
	headFalse  int // count of false head atoms
	headUndef  int
	lastHeadUn int // local index of an undecided head atom (if any)
}

func (s *solver) state(r irule) ruleState {
	s.out.Stats.RuleVisits++
	st := ruleState{bodySat: true}
	for _, a := range r.pos {
		switch s.posState(a) {
		case fls:
			st.bodyFalse = true
			st.bodySat = false
		case undef:
			st.bodySat = false
			st.undecided++
			st.lastPos = a
			st.lastIsPos = true
		}
	}
	for _, a := range r.neg {
		switch s.negState(a) {
		case fls:
			st.bodyFalse = true
			st.bodySat = false
		case undef:
			st.bodySat = false
			st.undecided++
			st.lastNeg = a
			st.lastIsPos = false
		}
	}
	for _, h := range r.head {
		switch s.assign[h] {
		case tru:
			st.headTrue++
		case fls:
			st.headFalse++
		default:
			st.headUndef++
			st.lastHeadUn = h
		}
	}
	return st
}

// propagateNaive applies the propagation rules to a fixpoint by rescanning
// every rule and every atom until nothing changes. It returns false on
// conflict.
func (s *solver) propagateNaive() bool {
	for changed := true; changed; {
		changed = false
		for _, r := range s.rules {
			st := s.state(r)
			if r.choice {
				// Choice rules never force heads on their own; the
				// cardinality bounds conflict — or pin the undecided heads —
				// once the body holds.
				if st.bodySat {
					if r.hi >= 0 && st.headTrue > r.hi {
						return false
					}
					if r.lo > 0 && st.headTrue+st.headUndef < r.lo {
						return false
					}
					if r.hi >= 0 && st.headTrue == r.hi && st.headUndef > 0 {
						// Upper bound reached: remaining heads are false.
						for _, h := range r.head {
							if s.assign[h] == undef {
								if !s.set(h, fls) {
									return false
								}
								s.out.Stats.Propagations++
								changed = true
							}
						}
					} else if r.lo > 0 && st.headTrue+st.headUndef == r.lo && st.headUndef > 0 {
						// Lower bound tight: remaining heads are true.
						for _, h := range r.head {
							if s.assign[h] == undef {
								if !s.set(h, tru) {
									return false
								}
								s.out.Stats.Propagations++
								changed = true
							}
						}
					}
				}
				continue
			}
			switch {
			case st.bodySat && st.headTrue == 0:
				// Body holds: some head atom must hold.
				if st.headUndef == 0 {
					return false // constraint violated or all heads false
				}
				if st.headUndef == 1 {
					if !s.set(st.lastHeadUn, tru) {
						return false
					}
					s.out.Stats.Propagations++
					changed = true
				}
			case st.headTrue == 0 && st.headUndef == 0 && !st.bodyFalse && st.undecided == 1:
				// All heads false and the body is one literal away from
				// firing: falsify that literal (contraposition).
				var ok bool
				if st.lastIsPos {
					ok = s.set(st.lastPos, fls)
				} else {
					// Falsifying the literal "not a" means making a true.
					ok = s.set(st.lastNeg, tru)
				}
				if !ok {
					return false
				}
				s.out.Stats.Propagations++
				changed = true
			}
		}
		// Support propagation: an undecided or true atom with no rule able
		// to support it must be false (true -> conflict).
		for a := range s.ids {
			if s.assign[a] == fls {
				continue
			}
			supported := false
			for _, ri := range s.occHead.of(a) {
				r := s.rules[ri]
				st := s.state(r)
				if st.bodyFalse {
					continue
				}
				if r.choice {
					// A choice rule supports any of its heads.
					supported = true
					break
				}
				// A disjunctive rule supports a only if no other head atom
				// is true.
				otherTrue := false
				for _, h := range r.head {
					if h != a && s.assign[h] == tru {
						otherTrue = true
						break
					}
				}
				if !otherTrue {
					supported = true
					break
				}
			}
			if !supported {
				if s.assign[a] == tru {
					return false
				}
				if !s.set(a, fls) {
					return false
				}
				s.out.Stats.Propagations++
				changed = true
			}
		}
	}
	return true
}
