package solve

import (
	"fmt"
	"testing"

	"streamrule/internal/asp/ast"
	"streamrule/internal/asp/intern"
)

// TestNewAnswerSetInThreadsTable pins the table-threading constructor.
func TestNewAnswerSetInThreadsTable(t *testing.T) {
	tab := intern.NewTable()
	s := NewAnswerSetIn(tab, []ast.Atom{atom("r", "x"), atom("r", "x")})
	if s.Table() != tab {
		t.Fatal("NewAnswerSetIn ignored the caller's table")
	}
	if s.Len() != 1 {
		t.Fatalf("got %d atoms, want 1 (dedup)", s.Len())
	}
	if got := fmt.Sprint(s); got != "{r(x)}" {
		t.Fatalf("got %s", got)
	}
}

// TestNewAnswerSetDelegatesToDefault pins the compatibility wrapper: the
// atom-slice constructor still lands on the default table for one-shot
// CLI/test use.
func TestNewAnswerSetDelegatesToDefault(t *testing.T) {
	s := NewAnswerSet([]ast.Atom{atom("compat_pred", "compat_const")})
	if s.Table() != intern.Default() {
		t.Fatal("NewAnswerSet no longer uses the default table")
	}
	if s.Len() != 1 {
		t.Fatalf("got %d atoms, want 1", s.Len())
	}
}
