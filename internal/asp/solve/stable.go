// The reduct test: every total assignment the search reaches is verified
// stable before it is emitted as an answer set. Both propagators (counter
// engine and naive baseline) funnel their candidates through this one
// check, which is why their answer sets are identical by construction.
//
// The check runs once per candidate, so its scratch (candidate bitmap,
// reduct buffer, least-model counters and occurrence index) lives on the
// solver and is reused across candidates, and the least model of a normal
// reduct is computed by the same counter/worklist technique as the
// propagator — one pass to build rule counters, then each derived atom
// decrements the rules it feeds — instead of rescanning the reduct to a
// fixpoint.
package solve

// prule is a reduct rule: a (possibly disjunctive) head and the positive
// body that survived the reduct.
type prule struct {
	head []int
	pos  []int
}

// stableScratch is the per-solver scratch reused by every stable() call.
type stableScratch struct {
	model     []bool
	least     []bool
	reduct    []prule
	headArena []int // backing store for choice-derived singleton heads
	cnt       []int32
	occOff    []int32
	occDat    []int32
	queue     []int32
}

// stable verifies the candidate total assignment against the reduct: the
// true atoms must form a minimal model of the reduct of the residual rules.
func (s *solver) stable() bool {
	n := len(s.ids)
	st := &s.st
	if st.model == nil {
		st.model = make([]bool, n)
		st.least = make([]bool, n)
		arena := 0
		for _, r := range s.rules {
			if r.choice {
				arena += len(r.head)
			}
		}
		st.headArena = make([]int, 0, arena)
	}
	model := st.model
	for a := 0; a < n; a++ {
		model[a] = s.assign[a] == tru
	}
	// Build the reduct: drop rules with a true negative atom; drop negative
	// literals otherwise. A choice rule {H} :- B contributes, for every head
	// atom in the candidate, the definite rule a :- B+ (the "not not a" part
	// of its definition is satisfied when a is in the candidate); its
	// cardinality bounds are checked directly against the candidate. The
	// head slices alias the solver's rules (or the preallocated arena for
	// choice-derived singletons) — nothing is copied.
	st.reduct = st.reduct[:0]
	st.headArena = st.headArena[:0]
	disjunctive := false
	for i := range s.rules {
		r := &s.rules[i]
		blocked := false
		for _, a := range r.neg {
			if model[a] {
				blocked = true
				break
			}
		}
		if blocked {
			continue
		}
		if r.choice {
			bodySat := true
			for _, a := range r.pos {
				if !model[a] {
					bodySat = false
					break
				}
			}
			if bodySat {
				inM := 0
				for _, h := range r.head {
					if model[h] {
						inM++
					}
				}
				if r.lo >= 0 && inM < r.lo {
					return false
				}
				if r.hi >= 0 && inM > r.hi {
					return false
				}
			}
			for _, h := range r.head {
				if model[h] {
					st.headArena = append(st.headArena, h)
					hd := st.headArena[len(st.headArena)-1:]
					st.reduct = append(st.reduct, prule{head: hd[:1:1], pos: r.pos})
				}
			}
			continue
		}
		st.reduct = append(st.reduct, prule{head: r.head, pos: r.pos})
		if len(r.head) > 1 {
			disjunctive = true
		}
	}
	reduct := st.reduct

	// Every candidate must at least be a model of the reduct.
	for _, r := range reduct {
		bodySat := true
		for _, a := range r.pos {
			if !model[a] {
				bodySat = false
				break
			}
		}
		if !bodySat {
			continue
		}
		headSat := false
		for _, h := range r.head {
			if model[h] {
				headSat = true
				break
			}
		}
		if !headSat {
			return false
		}
	}

	if !disjunctive {
		return s.leastModelMatches(model)
	}
	return s.minimalAmongSubsets(model)
}

// leastModelMatches computes the least model of the (normal) reduct with a
// counter worklist — cnt[i] counts the positive body atoms of reduct rule i
// not yet derived; a rule fires when it hits 0 — and compares it to the
// candidate.
func (s *solver) leastModelMatches(model []bool) bool {
	n := len(s.ids)
	st := &s.st
	reduct := st.reduct
	m := len(reduct)
	if cap(st.cnt) < m {
		st.cnt = make([]int32, m)
	}
	cnt := st.cnt[:m]
	if cap(st.occOff) < n+1 {
		st.occOff = make([]int32, n+1)
	}
	occOff := st.occOff[:n+1]
	for a := range occOff {
		occOff[a] = 0
	}
	least := st.least
	for a := 0; a < n; a++ {
		least[a] = false
	}
	// Only single-head rules drive the least model (constraints were already
	// checked above); CSR-index their positive bodies by atom.
	total := int32(0)
	for i := range reduct {
		if len(reduct[i].head) != 1 {
			continue
		}
		for _, a := range reduct[i].pos {
			occOff[a+1]++
			total++
		}
	}
	for a := 0; a < n; a++ {
		occOff[a+1] += occOff[a]
	}
	if cap(st.occDat) < int(total) {
		st.occDat = make([]int32, total)
	}
	occDat := st.occDat[:total]
	fill := st.queue[:0]
	if cap(fill) < n {
		fill = make([]int32, 0, max(n, m))
	}
	next := fill[:n]
	copy(next, occOff[:n])
	for i := range reduct {
		if len(reduct[i].head) != 1 {
			continue
		}
		for _, a := range reduct[i].pos {
			occDat[next[a]] = int32(i)
			next[a]++
		}
	}
	queue := next[:0]
	for i := range reduct {
		if len(reduct[i].head) != 1 {
			continue
		}
		cnt[i] = int32(len(reduct[i].pos))
		if cnt[i] == 0 {
			queue = append(queue, int32(i))
		}
	}
	for len(queue) > 0 {
		ri := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		h := reduct[ri].head[0]
		if least[h] {
			continue
		}
		least[h] = true
		for _, fed := range occDat[occOff[h]:occOff[h+1]] {
			if cnt[fed]--; cnt[fed] == 0 {
				queue = append(queue, fed)
			}
		}
	}
	st.queue = queue[:0]
	for a := 0; a < n; a++ {
		if model[a] != least[a] {
			return false
		}
	}
	return true
}

// minimalAmongSubsets handles the disjunctive case: search for a model of
// the reduct that is a proper subset of the candidate. If none exists the
// candidate is a minimal model of the reduct, hence an answer set.
func (s *solver) minimalAmongSubsets(model []bool) bool {
	reduct := s.st.reduct
	var inM []int
	for a := range model {
		if model[a] {
			inM = append(inM, a)
		}
	}
	val := make(map[int]int8, len(inM))
	var smaller func(i int) bool
	consistent := func() (ok, complete, proper bool) {
		complete, proper = true, false
		for _, a := range inM {
			switch val[a] {
			case undef:
				complete = false
			case fls:
				proper = true
			}
		}
		for _, r := range reduct {
			bodyTrue, bodyUndecided := true, false
			for _, a := range r.pos {
				if !model[a] {
					bodyTrue = false
					break // atom outside M is false in any submodel
				}
				switch val[a] {
				case fls:
					bodyTrue = false
				case undef:
					bodyUndecided = true
				}
				if !bodyTrue {
					break
				}
			}
			if !bodyTrue {
				continue
			}
			headOK, headUndecided := false, false
			for _, h := range r.head {
				if !model[h] {
					continue
				}
				switch val[h] {
				case tru:
					headOK = true
				case undef:
					headUndecided = true
				}
			}
			if !headOK && !bodyUndecided && !headUndecided {
				return false, complete, proper
			}
		}
		return true, complete, proper
	}
	smaller = func(i int) bool {
		ok, complete, proper := consistent()
		if !ok {
			return false
		}
		if i == len(inM) {
			return complete && proper
		}
		a := inM[i]
		for _, v := range []int8{fls, tru} {
			val[a] = v
			if smaller(i + 1) {
				val[a] = undef
				return true
			}
		}
		val[a] = undef
		return false
	}
	return !smaller(0)
}
