package solve

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"streamrule/internal/asp/ast"
	"streamrule/internal/asp/ground"
	"streamrule/internal/asp/parser"
)

func groundSrc(t *testing.T, src string) *ground.Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	gp, err := ground.Ground(prog, nil, ground.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return gp
}

func modelKeys(res *Result) [][]string {
	out := make([][]string, len(res.Models))
	for i, m := range res.Models {
		out[i] = m.Keys()
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return out
}

func wantModels(t *testing.T, res *Result, want [][]string) {
	t.Helper()
	got := modelKeys(res)
	if len(got) != len(want) {
		t.Fatalf("got %d models %v, want %d %v", len(got), got, len(want), want)
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("model %d = %v, want %v", i, got[i], want[i])
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("model %d = %v, want %v", i, got[i], want[i])
			}
		}
	}
}

func TestFastPathStratified(t *testing.T) {
	gp := groundSrc(t, `
p(1). p(2).
q(X) :- p(X), not r(X).
`)
	res, err := Solve(gp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.FastPath {
		t.Error("stratified program should take the fast path")
	}
	wantModels(t, res, [][]string{{"p(1)", "p(2)", "q(1)", "q(2)"}})
}

func TestEvenLoopTwoModels(t *testing.T) {
	gp := groundSrc(t, `
a :- not b.
b :- not a.
`)
	res, err := Solve(gp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantModels(t, res, [][]string{{"a"}, {"b"}})
	if res.Stats.FastPath {
		t.Error("non-stratified program must not take the fast path")
	}
}

func TestOddLoopNoModels(t *testing.T) {
	gp := groundSrc(t, `p :- not p.`)
	res, err := Solve(gp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) != 0 {
		t.Errorf("odd loop has no answer sets, got %v", modelKeys(res))
	}
}

func TestConstraintFiltersModels(t *testing.T) {
	gp := groundSrc(t, `
a :- not b.
b :- not a.
:- a.
`)
	res, err := Solve(gp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantModels(t, res, [][]string{{"b"}})
}

func TestInconsistentGroundProgram(t *testing.T) {
	gp := groundSrc(t, `
p.
:- p.
`)
	res, err := Solve(gp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) != 0 {
		t.Errorf("expected no models, got %v", modelKeys(res))
	}
}

func TestDisjunctionMinimality(t *testing.T) {
	gp := groundSrc(t, `a | b.`)
	res, err := Solve(gp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantModels(t, res, [][]string{{"a"}, {"b"}})
}

func TestDisjunctionWithCycle(t *testing.T) {
	// The classic example where {a,b} is the single (minimal) answer set.
	gp := groundSrc(t, `
a | b.
a :- b.
b :- a.
`)
	res, err := Solve(gp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantModels(t, res, [][]string{{"a", "b"}})
}

func TestDisjunctionNoAnswerSet(t *testing.T) {
	// Constraints force both a and b, but {a,b} is not a minimal model of
	// the reduct {a | b.} — no answer set.
	gp := groundSrc(t, `
a | b.
:- not a.
:- not b.
`)
	res, err := Solve(gp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) != 0 {
		t.Errorf("expected no models, got %v", modelKeys(res))
	}
}

func TestSupportedness(t *testing.T) {
	// c has no rule: it must be false; positive loop p :- q, q :- p is
	// unfounded and both must be false.
	gp := groundSrc(t, `
p :- q.
q :- p.
a :- not b.
b :- not a.
`)
	res, err := Solve(gp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantModels(t, res, [][]string{{"a"}, {"b"}})
}

func TestChoiceViaEvenLoops(t *testing.T) {
	// Two independent choices -> 4 models.
	gp := groundSrc(t, `
a :- not na.
na :- not a.
b :- not nb.
nb :- not b.
`)
	res, err := Solve(gp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) != 4 {
		t.Errorf("expected 4 models, got %v", modelKeys(res))
	}
}

func TestMaxModels(t *testing.T) {
	gp := groundSrc(t, `
a :- not na.
na :- not a.
b :- not nb.
nb :- not b.
`)
	for _, naive := range []bool{false, true} {
		res, err := Solve(gp, Options{MaxModels: 2, NaivePropagation: naive})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Models) != 2 {
			t.Errorf("naive=%v: expected 2 models, got %d", naive, len(res.Models))
		}
	}
}

// TestMaxModelsRootPropagation is the regression test for the hoisted
// MaxModels cutoff: the cap must be honored on the root-level
// propagate/emit path too — a program whose first (and only) model falls
// out of pure propagation, with no branching at all, must still respect
// MaxModels=1 and must not search beyond it.
func TestMaxModelsRootPropagation(t *testing.T) {
	gp := groundSrc(t, `
a :- not b.
b :- not a.
:- b.
`)
	for _, naive := range []bool{false, true} {
		res, err := Solve(gp, Options{MaxModels: 1, NaivePropagation: naive})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Models) != 1 {
			t.Fatalf("naive=%v: expected exactly 1 model, got %d", naive, len(res.Models))
		}
		if !res.Models[0].Contains("a") || res.Models[0].Contains("b") {
			t.Errorf("naive=%v: model = %v", naive, res.Models[0])
		}
		if res.Stats.Choices != 0 {
			t.Errorf("naive=%v: propagation-complete program branched %d times", naive, res.Stats.Choices)
		}
		if res.Stats.StabilityChecks != 1 {
			t.Errorf("naive=%v: %d stability checks, want 1", naive, res.Stats.StabilityChecks)
		}
	}
}

// The two propagation engines must reach identical fixpoints: same models
// and — because every propagation-consistent total assignment is submitted
// to the same reduct test — the same number of stability checks.
func TestEnginesAgreeOnWorkProfile(t *testing.T) {
	gp := groundSrc(t, `
p(1). p(2). p(3).
q(X) :- p(X), not r(X).
r(X) :- p(X), not q(X).
:- r(2).
go :- not halt.
halt :- not go.
s(X) :- q(X), go.
`)
	ev, err := Solve(gp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	nv, err := Solve(gp, Options{NaivePropagation: true})
	if err != nil {
		t.Fatal(err)
	}
	evKeys, nvKeys := modelKeys(ev), modelKeys(nv)
	if len(evKeys) != len(nvKeys) {
		t.Fatalf("models: event %v, naive %v", evKeys, nvKeys)
	}
	for i := range evKeys {
		if !slicesEqual(evKeys[i], nvKeys[i]) {
			t.Fatalf("model %d: event %v, naive %v", i, evKeys[i], nvKeys[i])
		}
	}
	if ev.Stats.StabilityChecks != nv.Stats.StabilityChecks {
		t.Errorf("stability checks: event %d, naive %d", ev.Stats.StabilityChecks, nv.Stats.StabilityChecks)
	}
	if nv.Stats.QueuePushes != 0 || nv.Stats.SourceRepairs != 0 {
		t.Errorf("naive mode used counter-engine queues: pushes=%d repairs=%d",
			nv.Stats.QueuePushes, nv.Stats.SourceRepairs)
	}
	if ev.Stats.QueuePushes == 0 {
		t.Error("event mode reported no queue pushes")
	}
}

func slicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCertainAtomsIncludedInModels(t *testing.T) {
	gp := groundSrc(t, `
f(1).
a :- not b.
b :- not a.
`)
	res, err := Solve(gp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Models {
		if !m.Contains("f(1)") {
			t.Errorf("model %v missing certain atom", m)
		}
	}
}

func TestAnswerSetOps(t *testing.T) {
	a1, _ := parser.ParseAtom("p(1)")
	a2, _ := parser.ParseAtom("p(2)")
	a3, _ := parser.ParseAtom("q(1)")
	s1 := NewAnswerSet([]ast.Atom{a1, a2, a1}) // dedup
	s2 := NewAnswerSet([]ast.Atom{a2, a3})
	if s1.Len() != 2 {
		t.Errorf("dedup failed: %v", s1)
	}
	u := s1.Union(s2)
	if u.Len() != 3 || !u.Contains("q(1)") {
		t.Errorf("union = %v", u)
	}
	if got := s1.IntersectCount(s2); got != 1 {
		t.Errorf("intersect = %d", got)
	}
	if !s1.Equal(NewAnswerSet([]ast.Atom{a2, a1})) {
		t.Error("Equal should be order-insensitive")
	}
	if s1.Equal(s2) {
		t.Error("distinct sets reported equal")
	}
	if s1.String() != "{p(1), p(2)}" {
		t.Errorf("String = %q", s1.String())
	}
	keys := u.Keys()
	if !sort.StringsAreSorted(keys) {
		t.Errorf("keys not sorted: %v", keys)
	}
}

// bruteForce enumerates answer sets of a residual ground program by
// definition: M is an answer set iff M is a minimal model of the reduct.
func bruteForce(gp *ground.Program) [][]string {
	type prule struct {
		head, pos, neg []int
	}
	var atoms []string
	id := map[string]int{}
	intern := func(k string) int {
		if i, ok := id[k]; ok {
			return i
		}
		id[k] = len(atoms)
		atoms = append(atoms, k)
		return id[k]
	}
	var rules []prule
	for _, r := range gp.Rules {
		var pr prule
		for _, h := range r.Head {
			pr.head = append(pr.head, intern(h.Key()))
		}
		for _, l := range r.Body {
			if l.Kind != ast.AtomLiteral {
				continue
			}
			if l.Neg {
				pr.neg = append(pr.neg, intern(l.Atom.Key()))
			} else {
				pr.pos = append(pr.pos, intern(l.Atom.Key()))
			}
		}
		rules = append(rules, pr)
	}
	n := len(atoms)
	isModelOfReduct := func(m, world uint64) bool {
		// world defines the reduct; m is the candidate model.
		for _, r := range rules {
			blocked := false
			for _, a := range r.neg {
				if world&(1<<a) != 0 {
					blocked = true
					break
				}
			}
			if blocked {
				continue
			}
			bodySat := true
			for _, a := range r.pos {
				if m&(1<<a) == 0 {
					bodySat = false
					break
				}
			}
			if !bodySat {
				continue
			}
			headSat := false
			for _, h := range r.head {
				if m&(1<<h) != 0 {
					headSat = true
					break
				}
			}
			if !headSat {
				return false
			}
		}
		return true
	}
	var out [][]string
	for m := uint64(0); m < 1<<n; m++ {
		if !isModelOfReduct(m, m) {
			continue
		}
		minimal := true
		for sub := (m - 1) & m; ; sub = (sub - 1) & m {
			if isModelOfReduct(sub, m) {
				minimal = false
				break
			}
			if sub == 0 {
				break
			}
		}
		if m == 0 {
			minimal = true // no proper subsets
		}
		if minimal {
			var keys []string
			for a := 0; a < n; a++ {
				if m&(1<<a) != 0 {
					keys = append(keys, atoms[a])
				}
			}
			sort.Strings(keys)
			out = append(out, keys)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return out
}

// Property: the solver agrees with brute-force enumeration on random small
// propositional programs with negation and disjunction.
func TestQuickSolverMatchesBruteForce(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gp := &ground.Program{}
		nRules := 1 + rng.Intn(5)
		for i := 0; i < nRules; i++ {
			var r ast.Rule
			nHead := rng.Intn(3) // 0 = constraint
			for j := 0; j < nHead; j++ {
				r.Head = append(r.Head, ast.NewAtom(names[rng.Intn(len(names))]))
			}
			nBody := rng.Intn(3)
			if nHead == 0 && nBody == 0 {
				nBody = 1
			}
			for j := 0; j < nBody; j++ {
				a := ast.NewAtom(names[rng.Intn(len(names))])
				if rng.Intn(2) == 0 {
					r.Body = append(r.Body, ast.Pos(a))
				} else {
					r.Body = append(r.Body, ast.Not(a))
				}
			}
			gp.Rules = append(gp.Rules, r)
		}
		want := bruteForce(gp)
		for _, naive := range []bool{false, true} {
			res, err := Solve(gp, Options{NaivePropagation: naive})
			if err != nil {
				return false
			}
			got := modelKeys(res)
			if len(got) != len(want) {
				return false
			}
			for i := range want {
				if len(got[i]) != len(want[i]) {
					return false
				}
				for j := range want[i] {
					if got[i][j] != want[i][j] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestEndToEndProgramP(t *testing.T) {
	prog, err := parser.Parse(`
very_slow_speed(X) :- average_speed(X,Y), Y < 20.
many_cars(X) :- car_number(X,Y), Y > 40.
traffic_jam(X) :- very_slow_speed(X), many_cars(X), not traffic_light(X).
car_fire(X) :- car_in_smoke(C, high), car_speed(C, 0), car_location(C, X).
give_notification(X) :- traffic_jam(X).
give_notification(X) :- car_fire(X).
`)
	if err != nil {
		t.Fatal(err)
	}
	atoms := []string{
		"average_speed(newcastle, 10)",
		"car_number(newcastle, 55)",
		"traffic_light(newcastle)",
		"car_in_smoke(car1, high)",
		"car_speed(car1, 0)",
		"car_location(car1, dangan)",
	}
	var facts []ast.Atom
	for _, s := range atoms {
		a, err := parser.ParseAtom(s)
		if err != nil {
			t.Fatal(err)
		}
		facts = append(facts, a)
	}
	gp, err := ground.Ground(prog, facts, ground.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(gp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) != 1 {
		t.Fatalf("expected 1 model, got %d", len(res.Models))
	}
	m := res.Models[0]
	if !m.Contains("car_fire(dangan)") || !m.Contains("give_notification(dangan)") {
		t.Errorf("model = %v", m)
	}
	if m.Contains("traffic_jam(newcastle)") {
		t.Error("spurious traffic jam")
	}
}

// An inconsistent ground program engages no search: it must report the fast
// path (so work-profile consumers don't count it as a residual window).
func TestInconsistentProgramIsFastPath(t *testing.T) {
	gp := groundSrc(t, `
p.
:- p.
`)
	res, err := Solve(gp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) != 0 || !res.Stats.FastPath {
		t.Errorf("models=%d fastpath=%v, want 0/true", len(res.Models), res.Stats.FastPath)
	}
}
