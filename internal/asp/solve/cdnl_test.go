package solve

import (
	"math/rand"
	"testing"
	"testing/quick"

	"streamrule/internal/asp/ast"
	"streamrule/internal/asp/ground"
	"streamrule/internal/asp/intern"
)

// cdnlKeys solves with the CDNL engine and returns sorted model key sets.
func cdnlKeys(t *testing.T, gp *ground.Program, carry *CarryState) ([][]string, *Result) {
	t.Helper()
	res, err := SolveCarry(gp, Options{CDNL: true}, carry)
	if err != nil {
		t.Fatal(err)
	}
	return modelKeys(res), res
}

func sameModels(a, b [][]string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !slicesEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// TestCDNLMatchesWorklist pins the CDNL engine to the default engine on the
// deterministic programs the rest of the suite exercises.
func TestCDNLMatchesWorklist(t *testing.T) {
	srcs := map[string]string{
		"even loop":      "a :- not b.\nb :- not a.",
		"odd loop":       "p :- not p.",
		"constraint":     "a :- not b.\nb :- not a.\n:- a.",
		"disjunction":    "a | b.",
		"disj cycle":     "a | b.\na :- b.\nb :- a.",
		"choice":         "{a; b} :- not c.\nc :- not d.\nd :- not c.",
		"positive loop":  "a :- not b.\nb :- not a.\np :- q, a.\nq :- p, a.\np :- not a.",
		"three loops":    "a :- not b.\nb :- not a.\nc :- not d.\nd :- not c.\ne :- not f.\nf :- not e.\n:- a, c, e.",
		"supportedness":  "a :- not b.\nb :- not a.\nx :- a.\nx :- b.\n:- not x.",
		"deep negation":  "a :- not b.\nb :- not c.\nc :- not d.\nd :- not a.",
		"guarded choice": "g :- not h.\nh :- not g.\n1 {a; b; c} 2 :- g.\n:- a, c.",
	}
	for name, src := range srcs {
		t.Run(name, func(t *testing.T) {
			gp := groundSrc(t, src)
			want, err := Solve(gp, Options{})
			if err != nil {
				t.Fatal(err)
			}
			got, _ := cdnlKeys(t, gp, nil)
			if !sameModels(got, modelKeys(want)) {
				t.Fatalf("CDNL models %v, worklist %v", got, modelKeys(want))
			}
		})
	}
}

func TestCDNLMaxModels(t *testing.T) {
	gp := groundSrc(t, "a :- not b.\nb :- not a.\nc :- not d.\nd :- not c.")
	res, err := Solve(gp, Options{CDNL: true, MaxModels: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) != 2 {
		t.Fatalf("MaxModels=2 returned %d models", len(res.Models))
	}
}

// randChoiceProgram mirrors the TestQuickChoiceMatchesBruteForce generator but
// over a slightly wider universe, mixing normal, disjunctive, constraint, and
// bounded choice rules.
func randChoiceProgram(rng *rand.Rand, names []string, maxRules int) *ground.Program {
	gp := &ground.Program{}
	nRules := 1 + rng.Intn(maxRules)
	for i := 0; i < nRules; i++ {
		gp.Rules = append(gp.Rules, randChoiceRule(rng, names))
	}
	return gp
}

func randChoiceRule(rng *rand.Rand, names []string) ast.Rule {
	var r ast.Rule
	kind := rng.Intn(3) // 0 constraint-ish, 1 normal/disjunctive, 2 choice
	switch kind {
	case 2:
		r.Choice = true
		nHead := 1 + rng.Intn(2)
		for j := 0; j < nHead; j++ {
			r.Head = append(r.Head, ast.NewAtom(names[rng.Intn(len(names))]))
		}
		r.Lower, r.Upper = ast.UnboundedChoice, ast.UnboundedChoice
		if rng.Intn(2) == 0 {
			r.Lower = rng.Intn(2)
		}
		if rng.Intn(2) == 0 {
			r.Upper = r.Lower
			if r.Upper < 0 {
				r.Upper = rng.Intn(2)
			}
			r.Upper += rng.Intn(2)
		}
	default:
		nHead := rng.Intn(2 + kind)
		for j := 0; j < nHead; j++ {
			r.Head = append(r.Head, ast.NewAtom(names[rng.Intn(len(names))]))
		}
	}
	nBody := rng.Intn(3)
	if len(r.Head) == 0 && nBody == 0 {
		nBody = 1
	}
	for j := 0; j < nBody; j++ {
		a := ast.NewAtom(names[rng.Intn(len(names))])
		if rng.Intn(2) == 0 {
			r.Body = append(r.Body, ast.Pos(a))
		} else {
			r.Body = append(r.Body, ast.Not(a))
		}
	}
	return r
}

// Property: the CDNL engine agrees with brute force (and hence with the other
// two engines, which have their own brute-force gates) on random programs.
func TestQuickCDNLMatchesBruteForce(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gp := randChoiceProgram(rng, names, 6)
		res, err := Solve(gp, Options{CDNL: true})
		if err != nil {
			return false
		}
		return sameModels(modelKeys(res), bruteForceChoice(gp))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: carrying learned state across solves — of the same program and of
// a mutated one — never changes the answer sets. The repeat solve is the
// maximal-reuse case (every premise still holds); the mutated solve exercises
// premise invalidation (head sets and rule sets change under the carry).
func TestQuickCDNLCarrySound(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gp := randChoiceProgram(rng, names, 5)
		carry := &CarryState{}
		for step := 0; step < 3; step++ {
			res, err := SolveCarry(gp, Options{CDNL: true}, carry)
			if err != nil {
				return false
			}
			if !sameModels(modelKeys(res), bruteForceChoice(gp)) {
				return false
			}
			if step == 1 {
				// Mutate both ways: adding a rule can flip root implications
				// (nonmonotonicity), removing one invalidates premises.
				mut := &ground.Program{Rules: append([]ast.Rule(nil), gp.Rules...)}
				if rng.Intn(2) == 0 && len(mut.Rules) > 1 {
					i := rng.Intn(len(mut.Rules))
					mut.Rules = append(mut.Rules[:i], mut.Rules[i+1:]...)
				} else {
					mut.Rules = append(mut.Rules, randChoiceRule(rng, names))
				}
				gp = mut
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestCDNLUnfoundedSkipsStabilityChecks pins the tentpole perf property on a
// positive-loop program: the worklist engine completes candidates with
// loop-supported atoms and pays a reduct test to reject them, while CDNL
// falsifies the loop during propagation and never runs a stability check.
func TestCDNLUnfoundedSkipsStabilityChecks(t *testing.T) {
	src := `
a :- not b.
b :- not a.
p :- q, a.
q :- p, a.
p :- not a.
`
	gp := groundSrc(t, src)
	wl, err := Solve(gp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, res := cdnlKeys(t, gp, nil)
	if !sameModels(got, modelKeys(wl)) {
		t.Fatalf("CDNL models %v, worklist %v", got, modelKeys(wl))
	}
	if res.Stats.StabilityChecks != 0 {
		t.Errorf("CDNL ran %d stability checks on a non-disjunctive program, want 0", res.Stats.StabilityChecks)
	}
	if wl.Stats.StabilityChecks == 0 {
		t.Fatal("worklist oracle ran no stability checks; program no longer exercises the loop")
	}
	if res.Stats.StabilityChecks >= wl.Stats.StabilityChecks {
		t.Errorf("StabilityChecks: CDNL %d, worklist %d; want a strict drop",
			res.Stats.StabilityChecks, wl.Stats.StabilityChecks)
	}
	if res.Stats.LoopNogoods == 0 {
		t.Error("expected loop nogoods to be learned on a positive-loop program")
	}
}

// TestCDNLBackjumps crafts a conflict whose asserting clause only involves the
// first and third decisions, so resolution must jump over the second decision
// level — the non-chronological move the worklist engine cannot make. The
// decision order u1, u2, u3 is pinned through carried activity.
func TestCDNLBackjumps(t *testing.T) {
	src := `
u1 :- not v1.
v1 :- not u1.
u2 :- not v2.
v2 :- not u2.
u3 :- not v3.
v3 :- not u3.
p :- u1, u3.
:- u3, p.
`
	gp := groundSrc(t, src)
	want, err := Solve(gp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tab, _, _ := idForm(gp)
	carry := &CarryState{act: map[intern.AtomID]float64{
		tab.InternAtom(ast.NewAtom("u1")): 3,
		tab.InternAtom(ast.NewAtom("u2")): 2,
		tab.InternAtom(ast.NewAtom("u3")): 1,
	}}
	res, err := SolveCarry(gp, Options{CDNL: true}, carry)
	if err != nil {
		t.Fatal(err)
	}
	got := modelKeys(res)
	if !sameModels(got, modelKeys(want)) {
		t.Fatalf("CDNL models %v, worklist %v", got, modelKeys(want))
	}
	if res.Stats.Conflicts == 0 || res.Stats.Learned == 0 {
		t.Fatalf("expected conflicts and learned clauses, got %+v", res.Stats)
	}
	if res.Stats.Backjumps == 0 {
		t.Errorf("expected a non-chronological backjump, got %+v", res.Stats)
	}
}

// TestCDNLClauseCarryReuse pins the cross-window contract at the solver level:
// a repeat solve under the same carry replays learned clauses (ReusedClauses
// rises, conflicts vanish), and Reset drops them again.
func TestCDNLClauseCarryReuse(t *testing.T) {
	src := `
a :- not b.
b :- not a.
c :- a.
d :- a.
:- a, c.
`
	gp := groundSrc(t, src)
	carry := &CarryState{}
	got1, res1 := cdnlKeys(t, gp, carry)
	if res1.Stats.Conflicts == 0 {
		t.Fatalf("first solve should conflict on the a-branch, got %+v", res1.Stats)
	}
	if carry.Clauses() == 0 {
		t.Fatal("first solve carried no clauses")
	}
	got2, res2 := cdnlKeys(t, gp, carry)
	if !sameModels(got1, got2) {
		t.Fatalf("answers changed under carry: %v vs %v", got1, got2)
	}
	if res2.Stats.ReusedClauses == 0 {
		t.Errorf("repeat solve reused no clauses: %+v", res2.Stats)
	}
	if res2.Stats.Conflicts != 0 {
		t.Errorf("carried unit clause should preempt the conflict, got %d conflicts", res2.Stats.Conflicts)
	}
	carry.Reset()
	got3, res3 := cdnlKeys(t, gp, carry)
	if !sameModels(got1, got3) {
		t.Fatalf("answers changed after reset: %v vs %v", got1, got3)
	}
	if res3.Stats.ReusedClauses != 0 {
		t.Errorf("reset carry still reused %d clauses", res3.Stats.ReusedClauses)
	}
}

// TestCDNLCarryRootDropSound pins the subtlest premise-tracking obligation:
// conflict analysis elides root-level literals from learned clauses, so the
// clause's validity additionally depends on whatever forced those literals at
// the root. Here c has no rules in the first program — it is falsified at the
// root and dropped from the a-branch conflict clause — and the second program
// gives c a choice rule while keeping every resolved rule intact. A carry
// that fails to record the dropped literal's derivation replays a clause that
// wrongly prunes the a-models.
func TestCDNLCarryRootDropSound(t *testing.T) {
	rules1 := []ast.Rule{
		{Head: []ast.Atom{ast.NewAtom("a")}, Body: []ast.Literal{ast.Not(ast.NewAtom("b"))}},
		{Head: []ast.Atom{ast.NewAtom("b")}, Body: []ast.Literal{ast.Not(ast.NewAtom("a"))}},
		{Head: []ast.Atom{ast.NewAtom("x")}, Body: []ast.Literal{ast.Pos(ast.NewAtom("a")), ast.Not(ast.NewAtom("c"))}},
		{Body: []ast.Literal{ast.Pos(ast.NewAtom("x")), ast.Pos(ast.NewAtom("a"))}},
	}
	gp1 := &ground.Program{Rules: rules1}
	carry := &CarryState{}
	got1, _ := cdnlKeys(t, gp1, carry)
	if want := bruteForceChoice(gp1); !sameModels(got1, want) {
		t.Fatalf("first solve diverges from brute force: %v vs %v", got1, want)
	}
	choice := ast.Rule{Head: []ast.Atom{ast.NewAtom("c")}, Choice: true,
		Lower: ast.UnboundedChoice, Upper: ast.UnboundedChoice}
	gp2 := &ground.Program{Rules: append(append([]ast.Rule(nil), rules1...), choice)}
	got2, _ := cdnlKeys(t, gp2, carry)
	if want := bruteForceChoice(gp2); !sameModels(got2, want) {
		t.Fatalf("carried clause over a dropped root literal changed the answers: %v vs %v", got2, want)
	}
}
