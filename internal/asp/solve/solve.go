// Package solve computes the stable models (answer sets) of ground programs
// produced by the grounder.
//
// Because the grounder fully evaluates stratified programs, the common case
// is a ground program with no residual rules, whose unique answer set is the
// set of certain atoms (fast path). Residual rules — produced by negation
// cycles, choice rules, or disjunctive heads — are handled by a DPLL-style
// search whose propagation is event-driven: every rule carries incrementally
// maintained counters (undecided body literals, false body literals,
// true/undecided head atoms) that assignments update through per-atom
// occurrence lists, and a worklist re-examines only the rules whose counters
// crossed an inference threshold. Support is tracked by source pointers —
// each non-false atom remembers one rule that can still support it, and only
// atoms whose source dies are re-examined — instead of rescanning every
// atom. The legacy rescan-to-fixpoint propagator is retained behind
// Options.NaivePropagation as the differential/benchmark baseline. Every
// total assignment is verified stable by the reduct test (least-model
// comparison for normal programs, a minimal model search for disjunctive
// ones), so both propagators produce identical answer sets.
//
// The solver runs entirely on interned atom IDs: the ground program's ID
// rules are mapped onto a dense local index space for the search, and answer
// sets are sorted ID sets that materialize textual atoms lazily, only when
// an API consumer asks for them.
package solve

import (
	"slices"
	"strings"
	"sync"

	"streamrule/internal/asp/ast"
	"streamrule/internal/asp/ground"
	"streamrule/internal/asp/intern"
)

// Options configures the solver.
type Options struct {
	// MaxModels limits the number of answer sets returned (0 = all).
	MaxModels int
	// NaivePropagation selects the legacy propagator, which rescans every
	// rule to a fixpoint on each propagation pass and re-derives support by
	// scanning all atoms, instead of the counter/worklist engine. It exists
	// as the differential-test oracle and benchmark baseline; the full
	// answer-set enumeration is identical either way, only the work profile
	// differs. Under a MaxModels cap the engines may return different
	// subsets of that enumeration: they branch in different orders (local
	// index vs activity), so the cap can bite on different prefixes.
	NaivePropagation bool
	// CDNL selects the conflict-driven nogood-learning engine: 1UIP clause
	// learning with non-chronological backjumping, VSIDS-style decision
	// activity with decay, and source-pointer unfounded-set detection that
	// turns positive loops into loop nogoods during propagation instead of
	// discovering them at the stability check. Answer-set enumeration is
	// identical to the other engines (enforced by the differential and fuzz
	// oracles); only the work profile differs, and under a MaxModels cap
	// the enumerated prefix may differ because decisions follow dynamic
	// activity. Ignored when NaivePropagation is set — the naive engine is
	// the oracle and stays untouched. Pair with SolveCarry to reuse learned
	// clauses and activity across overlapping windows.
	CDNL bool
}

// Stats reports work done by a solving run.
type Stats struct {
	// FastPath is true when the run never engaged the search: the ground
	// program had no residual rules and the answer set was read off the
	// certain atoms directly, or the grounder had already proven the
	// program inconsistent.
	FastPath bool
	// Choices counts branching decisions.
	Choices int
	// Propagations counts atom assignments made by propagation.
	Propagations int
	// StabilityChecks counts candidate models submitted to the reduct test.
	StabilityChecks int
	// RuleVisits counts rule examinations by the propagator: per-rule state
	// recomputations for the naive propagator, worklist pops plus
	// source-candidate checks for the counter engine. The ratio between the
	// two modes is the headline win of event-driven propagation.
	RuleVisits int
	// QueuePushes counts rules enqueued on the propagation worklist
	// (counter engine only; 0 under NaivePropagation).
	QueuePushes int
	// SourceRepairs counts atoms whose support source pointer died and had
	// to be re-derived by scanning the atom's head occurrences (counter
	// engine only; 0 under NaivePropagation).
	SourceRepairs int
	// Conflicts counts propagation conflicts analyzed by the CDNL engine
	// (0 for the other engines, which count failed branches nowhere).
	Conflicts int
	// Learned counts clauses learned by 1UIP conflict analysis (CDNL only).
	Learned int
	// Backjumps counts non-chronological backjumps: conflict analyses whose
	// asserting clause jumped past at least one decision level instead of
	// undoing just the deepest one (CDNL only).
	Backjumps int
	// LoopNogoods counts loop nogoods materialized by unfounded-set
	// detection — positive loops refuted during propagation rather than at
	// the stability check (CDNL only).
	LoopNogoods int
	// ReusedClauses counts clauses replayed from a previous window's
	// CarryState whose premises were still intact (CDNL only; 0 on the
	// first window and after a carry reset).
	ReusedClauses int
}

// Add accumulates another run's counters into s (every numeric field).
// FastPath is deliberately left alone — it is a property of one run, and
// aggregators (a partitioned reasoner, a CLI total) combine it with
// whatever rule fits their semantics.
func (s *Stats) Add(o Stats) {
	s.Choices += o.Choices
	s.Propagations += o.Propagations
	s.StabilityChecks += o.StabilityChecks
	s.RuleVisits += o.RuleVisits
	s.QueuePushes += o.QueuePushes
	s.SourceRepairs += o.SourceRepairs
	s.Conflicts += o.Conflicts
	s.Learned += o.Learned
	s.Backjumps += o.Backjumps
	s.LoopNogoods += o.LoopNogoods
	s.ReusedClauses += o.ReusedClauses
}

// Result is the outcome of a solving run.
type Result struct {
	Models []*AnswerSet
	Stats  Stats
}

// AnswerSet is a set of ground atoms, held as a sorted slice of interned
// atom IDs. Set operations (Union, Equal, IntersectCount) run on the IDs;
// the textual atoms and keys are materialized lazily at the API boundary
// and cached. An AnswerSet is immutable and safe for concurrent use.
type AnswerSet struct {
	tab *intern.Table
	ids []intern.AtomID // sorted ascending, deduplicated

	mat     sync.Once
	atoms   []ast.Atom // sorted by key
	keys    []string   // aligned with atoms
	keysOne sync.Once
	keySet  map[string]bool
}

// NewAnswerSet builds an answer set from atoms (deduplicated). The atoms are
// interned into the process-wide default table — acceptable for one-shot
// CLI/test use only. Engines with private (budgeted, rotatable) tables must
// use NewAnswerSetIn instead: the default table refuses rotation, so every
// atom leaked into it stays resident for the life of the process.
func NewAnswerSet(atoms []ast.Atom) *AnswerSet {
	return NewAnswerSetIn(intern.Default(), atoms)
}

// NewAnswerSetIn builds an answer set from atoms (deduplicated), interning
// them into the caller's table — the table-threading constructor that keeps
// multi-tenant and budgeted engines out of the shared default table.
func NewAnswerSetIn(tab *intern.Table, atoms []ast.Atom) *AnswerSet {
	ids := make([]intern.AtomID, len(atoms))
	for i, a := range atoms {
		ids[i] = tab.InternAtom(a)
	}
	return FromIDs(tab, ids)
}

// FromIDs builds an answer set from interned atom IDs. It takes ownership of
// the slice (sorting and deduplicating it in place).
func FromIDs(tab *intern.Table, ids []intern.AtomID) *AnswerSet {
	slices.Sort(ids)
	ids = slices.Compact(ids)
	return &AnswerSet{tab: tab, ids: ids}
}

// IDs returns the sorted interned atom IDs. The slice must not be modified.
func (s *AnswerSet) IDs() []intern.AtomID { return s.ids }

// Remap rewrites the set's IDs through a table rotation's remap and
// re-sorts them. It reports false when an atom was evicted (the set then
// holds a partially remapped prefix and must be discarded). Remap is the one
// exception to the set's immutability: only the producing reasoner may call
// it, after rotating the table the IDs refer to and before any concurrent
// use of the set. Already materialized atoms and keys stay valid — rotation
// changes IDs, not renderings.
func (s *AnswerSet) Remap(rm *intern.Remap) bool {
	for i, id := range s.ids {
		nid, ok := rm.Atom(id)
		if !ok {
			return false
		}
		s.ids[i] = nid
	}
	slices.Sort(s.ids)
	return true
}

// Table returns the interning table the IDs refer to.
func (s *AnswerSet) Table() *intern.Table { return s.tab }

// materialize renders the atoms and keys, sorted by key, once.
func (s *AnswerSet) materialize() {
	s.mat.Do(func() {
		atoms := make([]ast.Atom, len(s.ids))
		keys := make([]string, len(s.ids))
		for i, id := range s.ids {
			atoms[i] = s.tab.Atom(id)
			keys[i] = s.tab.KeyOf(id)
		}
		intern.SortByKey(keys, func(i, j int) {
			atoms[i], atoms[j] = atoms[j], atoms[i]
			keys[i], keys[j] = keys[j], keys[i]
		})
		s.atoms, s.keys = atoms, keys
	})
}

// Atoms returns the atoms in key order. The slice must not be modified.
func (s *AnswerSet) Atoms() []ast.Atom {
	s.materialize()
	return s.atoms
}

// Len returns the number of atoms.
func (s *AnswerSet) Len() int { return len(s.ids) }

// Contains reports membership by atom key.
func (s *AnswerSet) Contains(key string) bool {
	s.keysOne.Do(func() {
		s.materialize()
		s.keySet = make(map[string]bool, len(s.keys))
		for _, k := range s.keys {
			s.keySet[k] = true
		}
	})
	return s.keySet[key]
}

// Keys returns the sorted atom keys.
func (s *AnswerSet) Keys() []string {
	s.materialize()
	return s.keys
}

// Equal reports whether two answer sets contain the same atoms.
func (s *AnswerSet) Equal(o *AnswerSet) bool {
	if s.tab == o.tab {
		return slices.Equal(s.ids, o.ids)
	}
	if s.Len() != o.Len() {
		return false
	}
	for _, k := range s.Keys() {
		if !o.Contains(k) {
			return false
		}
	}
	return true
}

// Union returns a new answer set with the atoms of both sets. Sets on the
// same table merge on the ID fast path; a cross-table union materializes
// into the RECEIVER's table (never the process-wide default), so unions of
// per-tenant answer sets stay inside tables their owners can rotate.
func (s *AnswerSet) Union(o *AnswerSet) *AnswerSet {
	if s.tab != o.tab {
		merged := make([]ast.Atom, 0, s.Len()+o.Len())
		merged = append(merged, s.Atoms()...)
		merged = append(merged, o.Atoms()...)
		return NewAnswerSetIn(s.tab, merged)
	}
	merged := make([]intern.AtomID, 0, s.Len()+o.Len())
	i, j := 0, 0
	for i < len(s.ids) && j < len(o.ids) {
		switch {
		case s.ids[i] < o.ids[j]:
			merged = append(merged, s.ids[i])
			i++
		case s.ids[i] > o.ids[j]:
			merged = append(merged, o.ids[j])
			j++
		default:
			merged = append(merged, s.ids[i])
			i++
			j++
		}
	}
	merged = append(merged, s.ids[i:]...)
	merged = append(merged, o.ids[j:]...)
	return &AnswerSet{tab: s.tab, ids: merged}
}

// IntersectCount returns the number of atoms shared with o.
func (s *AnswerSet) IntersectCount(o *AnswerSet) int {
	if s.tab != o.tab {
		n := 0
		for _, k := range s.Keys() {
			if o.Contains(k) {
				n++
			}
		}
		return n
	}
	n := 0
	i, j := 0, 0
	for i < len(s.ids) && j < len(o.ids) {
		switch {
		case s.ids[i] < o.ids[j]:
			i++
		case s.ids[i] > o.ids[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// String renders the answer set as {a1, a2, ...}.
func (s *AnswerSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range s.Keys() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(k)
	}
	b.WriteByte('}')
	return b.String()
}

// Solve computes the answer sets of the ground program.
func Solve(gp *ground.Program, opts Options) (*Result, error) {
	return SolveCarry(gp, opts, nil)
}

// SolveCarry computes the answer sets of the ground program, reusing and
// refreshing cross-window solver state. With Options.CDNL set and a non-nil
// carry, learned clauses from earlier windows whose premises (the exact
// ground rules their derivations relied on) still hold in gp are replayed
// before the search starts, and the clauses and branching activity learned
// on gp are written back for the next window. A nil carry (or a non-CDNL
// engine) makes SolveCarry identical to Solve. The carry is owned by one
// solving sequence: it must not be shared across concurrent solves.
func SolveCarry(gp *ground.Program, opts Options, carry *CarryState) (*Result, error) {
	res := &Result{}
	if gp.Inconsistent {
		// The grounder proved the certain atoms violate a constraint: no
		// answer sets, and no search was engaged.
		res.Stats.FastPath = true
		return res, nil
	}
	tab, certainIDs, ruleIDs := idForm(gp)
	if len(ruleIDs) == 0 {
		ids := make([]intern.AtomID, len(certainIDs))
		copy(ids, certainIDs)
		res.Models = []*AnswerSet{FromIDs(tab, ids)}
		res.Stats.FastPath = true
		return res, nil
	}

	s := &solver{opts: opts, naive: opts.NaivePropagation, tab: tab, certain: certainIDs, out: res}
	// Atom IDs are dense table indices, so the ID -> local-index mapping is
	// a plain slice lookup rather than a map.
	local := make([]int32, tab.NumAtoms())
	for i := range local {
		local[i] = -1
	}
	idx := func(id intern.AtomID) int {
		if i := local[id]; i >= 0 {
			return int(i)
		}
		i := len(s.ids)
		local[id] = int32(i)
		s.ids = append(s.ids, id)
		return i
	}
	// All rule literal lists share one backing arena (sized by a counting
	// pass) instead of three allocations per rule.
	lits := 0
	for _, r := range ruleIDs {
		lits += len(r.Head) + len(r.Pos) + len(r.Neg)
	}
	arena := make([]int, 0, lits)
	grab := func(ids []intern.AtomID) []int {
		start := len(arena)
		for _, id := range ids {
			arena = append(arena, idx(id))
		}
		return arena[start:len(arena):len(arena)]
	}
	// Duplicate occurrences of an atom within one list are collapsed: a
	// duplicated body literal or disjunctive head is semantically redundant
	// (a ∨ a = a, b ∧ b = b) but would skew the per-occurrence counters the
	// propagation engine maintains (e.g. "no other head atom is true" on
	// a | a). Choice-rule heads are left untouched — their cardinality
	// bounds count occurrences, exactly as the stability check does.
	dedup := func(l []int) []int {
		slices.Sort(l)
		return slices.Compact(l)
	}
	s.rules = make([]irule, 0, len(ruleIDs))
	for _, r := range ruleIDs {
		ir := irule{choice: r.Choice, lo: r.Lower, hi: r.Upper}
		ir.head = grab(r.Head)
		ir.pos = grab(r.Pos)
		ir.neg = grab(r.Neg)
		if !ir.choice {
			ir.head = dedup(ir.head)
		}
		ir.pos, ir.neg = dedup(ir.pos), dedup(ir.neg)
		s.rules = append(s.rules, ir)
	}
	s.init(len(s.ids))
	if opts.CDNL && !opts.NaivePropagation {
		s.cd = newCDNL(s)
		s.cd.prepare(carry, ruleIDs, local)
		s.searchCDNL()
		if carry != nil {
			s.cd.carryOut(carry)
		}
		return res, nil
	}
	s.search(0)
	return res, nil
}

// idForm returns the ground program's interned form, interning it on the fly
// when the ID form is absent or incomplete. The fallback interns into the
// program's OWN table whenever it has one — falling back to the process-wide
// default only for table-less programs (hand-constructed in tests) — so a
// budgeted or per-tenant engine never leaks atoms into the shared,
// rotation-refusing default table.
func idForm(gp *ground.Program) (*intern.Table, []intern.AtomID, []ground.IRule) {
	if gp.Table != nil && len(gp.RuleIDs) == len(gp.Rules) && len(gp.CertainIDs) == len(gp.Certain) {
		return gp.Table, gp.CertainIDs, gp.RuleIDs
	}
	tab := gp.Table
	if tab == nil {
		tab = intern.Default()
	}
	certain := make([]intern.AtomID, len(gp.Certain))
	for i, a := range gp.Certain {
		certain[i] = tab.InternAtom(a)
	}
	rules := make([]ground.IRule, len(gp.Rules))
	for i, r := range gp.Rules {
		ir := ground.IRule{Choice: r.Choice, Lower: r.Lower, Upper: r.Upper}
		for _, h := range r.Head {
			ir.Head = append(ir.Head, tab.InternAtom(h))
		}
		for _, l := range r.Body {
			if l.Kind != ast.AtomLiteral {
				continue // comparisons were evaluated by the grounder
			}
			id := tab.InternAtom(l.Atom)
			if l.Neg {
				ir.Neg = append(ir.Neg, id)
			} else {
				ir.Pos = append(ir.Pos, id)
			}
		}
		rules[i] = ir
	}
	return tab, certain, rules
}
