// Package solve computes the stable models (answer sets) of ground programs
// produced by the grounder.
//
// Because the grounder fully evaluates stratified programs, the common case
// is a ground program with no residual rules, whose unique answer set is the
// set of certain atoms (fast path). Residual rules — produced by negation
// cycles or disjunctive heads — are handled by a DPLL-style search:
// propagation interleaves forward rule firing, contraposition, and
// support-based falsification; every total assignment is verified stable by
// the reduct test (least-model comparison for normal programs, a minimal
// model search for disjunctive ones).
//
// The solver runs entirely on interned atom IDs: the ground program's ID
// rules are mapped onto a dense local index space for the search, and answer
// sets are sorted ID sets that materialize textual atoms lazily, only when
// an API consumer asks for them.
package solve

import (
	"slices"
	"strings"
	"sync"

	"streamrule/internal/asp/ast"
	"streamrule/internal/asp/ground"
	"streamrule/internal/asp/intern"
)

// Options configures the solver.
type Options struct {
	// MaxModels limits the number of answer sets returned (0 = all).
	MaxModels int
}

// Stats reports work done by a solving run.
type Stats struct {
	// FastPath is true when the ground program had no residual rules and
	// the answer set was read off the certain atoms directly.
	FastPath bool
	// Choices counts branching decisions.
	Choices int
	// Propagations counts atom assignments made by propagation.
	Propagations int
	// StabilityChecks counts candidate models submitted to the reduct test.
	StabilityChecks int
}

// Result is the outcome of a solving run.
type Result struct {
	Models []*AnswerSet
	Stats  Stats
}

// AnswerSet is a set of ground atoms, held as a sorted slice of interned
// atom IDs. Set operations (Union, Equal, IntersectCount) run on the IDs;
// the textual atoms and keys are materialized lazily at the API boundary
// and cached. An AnswerSet is immutable and safe for concurrent use.
type AnswerSet struct {
	tab *intern.Table
	ids []intern.AtomID // sorted ascending, deduplicated

	mat     sync.Once
	atoms   []ast.Atom // sorted by key
	keys    []string   // aligned with atoms
	keysOne sync.Once
	keySet  map[string]bool
}

// NewAnswerSet builds an answer set from atoms (deduplicated). The atoms are
// interned into the process-wide default table.
func NewAnswerSet(atoms []ast.Atom) *AnswerSet {
	tab := intern.Default()
	ids := make([]intern.AtomID, len(atoms))
	for i, a := range atoms {
		ids[i] = tab.InternAtom(a)
	}
	return FromIDs(tab, ids)
}

// FromIDs builds an answer set from interned atom IDs. It takes ownership of
// the slice (sorting and deduplicating it in place).
func FromIDs(tab *intern.Table, ids []intern.AtomID) *AnswerSet {
	slices.Sort(ids)
	ids = slices.Compact(ids)
	return &AnswerSet{tab: tab, ids: ids}
}

// IDs returns the sorted interned atom IDs. The slice must not be modified.
func (s *AnswerSet) IDs() []intern.AtomID { return s.ids }

// Remap rewrites the set's IDs through a table rotation's remap and
// re-sorts them. It reports false when an atom was evicted (the set then
// holds a partially remapped prefix and must be discarded). Remap is the one
// exception to the set's immutability: only the producing reasoner may call
// it, after rotating the table the IDs refer to and before any concurrent
// use of the set. Already materialized atoms and keys stay valid — rotation
// changes IDs, not renderings.
func (s *AnswerSet) Remap(rm *intern.Remap) bool {
	for i, id := range s.ids {
		nid, ok := rm.Atom(id)
		if !ok {
			return false
		}
		s.ids[i] = nid
	}
	slices.Sort(s.ids)
	return true
}

// Table returns the interning table the IDs refer to.
func (s *AnswerSet) Table() *intern.Table { return s.tab }

// materialize renders the atoms and keys, sorted by key, once.
func (s *AnswerSet) materialize() {
	s.mat.Do(func() {
		atoms := make([]ast.Atom, len(s.ids))
		keys := make([]string, len(s.ids))
		for i, id := range s.ids {
			atoms[i] = s.tab.Atom(id)
			keys[i] = s.tab.KeyOf(id)
		}
		intern.SortByKey(keys, func(i, j int) {
			atoms[i], atoms[j] = atoms[j], atoms[i]
			keys[i], keys[j] = keys[j], keys[i]
		})
		s.atoms, s.keys = atoms, keys
	})
}

// Atoms returns the atoms in key order. The slice must not be modified.
func (s *AnswerSet) Atoms() []ast.Atom {
	s.materialize()
	return s.atoms
}

// Len returns the number of atoms.
func (s *AnswerSet) Len() int { return len(s.ids) }

// Contains reports membership by atom key.
func (s *AnswerSet) Contains(key string) bool {
	s.keysOne.Do(func() {
		s.materialize()
		s.keySet = make(map[string]bool, len(s.keys))
		for _, k := range s.keys {
			s.keySet[k] = true
		}
	})
	return s.keySet[key]
}

// Keys returns the sorted atom keys.
func (s *AnswerSet) Keys() []string {
	s.materialize()
	return s.keys
}

// Equal reports whether two answer sets contain the same atoms.
func (s *AnswerSet) Equal(o *AnswerSet) bool {
	if s.tab == o.tab {
		return slices.Equal(s.ids, o.ids)
	}
	if s.Len() != o.Len() {
		return false
	}
	for _, k := range s.Keys() {
		if !o.Contains(k) {
			return false
		}
	}
	return true
}

// Union returns a new answer set with the atoms of both sets.
func (s *AnswerSet) Union(o *AnswerSet) *AnswerSet {
	if s.tab != o.tab {
		merged := make([]ast.Atom, 0, s.Len()+o.Len())
		merged = append(merged, s.Atoms()...)
		merged = append(merged, o.Atoms()...)
		return NewAnswerSet(merged)
	}
	merged := make([]intern.AtomID, 0, s.Len()+o.Len())
	i, j := 0, 0
	for i < len(s.ids) && j < len(o.ids) {
		switch {
		case s.ids[i] < o.ids[j]:
			merged = append(merged, s.ids[i])
			i++
		case s.ids[i] > o.ids[j]:
			merged = append(merged, o.ids[j])
			j++
		default:
			merged = append(merged, s.ids[i])
			i++
			j++
		}
	}
	merged = append(merged, s.ids[i:]...)
	merged = append(merged, o.ids[j:]...)
	return &AnswerSet{tab: s.tab, ids: merged}
}

// IntersectCount returns the number of atoms shared with o.
func (s *AnswerSet) IntersectCount(o *AnswerSet) int {
	if s.tab != o.tab {
		n := 0
		for _, k := range s.Keys() {
			if o.Contains(k) {
				n++
			}
		}
		return n
	}
	n := 0
	i, j := 0, 0
	for i < len(s.ids) && j < len(o.ids) {
		switch {
		case s.ids[i] < o.ids[j]:
			i++
		case s.ids[i] > o.ids[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// String renders the answer set as {a1, a2, ...}.
func (s *AnswerSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range s.Keys() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(k)
	}
	b.WriteByte('}')
	return b.String()
}

// truth values of the search assignment.
const (
	undef int8 = 0
	tru   int8 = 1
	fls   int8 = -1
)

// irule is a ground rule over dense local atom indices.
type irule struct {
	head []int
	pos  []int
	neg  []int
	// choice marks a choice rule with cardinality bounds lo..hi
	// (ast.UnboundedChoice disables a bound).
	choice bool
	lo, hi int
}

type solver struct {
	opts Options
	// ids maps dense local indices back to interned atom IDs.
	ids   []intern.AtomID
	rules []irule
	// occurrence lists: rule indices per local atom index
	occHead [][]int
	occPos  [][]int
	occNeg  [][]int

	assign []int8
	trail  []int

	tab     *intern.Table
	certain []intern.AtomID
	out     *Result
}

// Solve computes the answer sets of the ground program.
func Solve(gp *ground.Program, opts Options) (*Result, error) {
	res := &Result{}
	if gp.Inconsistent {
		return res, nil
	}
	tab, certainIDs, ruleIDs := idForm(gp)
	if len(ruleIDs) == 0 {
		ids := make([]intern.AtomID, len(certainIDs))
		copy(ids, certainIDs)
		res.Models = []*AnswerSet{FromIDs(tab, ids)}
		res.Stats.FastPath = true
		return res, nil
	}

	s := &solver{opts: opts, tab: tab, certain: certainIDs, out: res}
	local := make(map[intern.AtomID]int)
	idx := func(id intern.AtomID) int {
		if i, ok := local[id]; ok {
			return i
		}
		i := len(s.ids)
		local[id] = i
		s.ids = append(s.ids, id)
		return i
	}
	for _, r := range ruleIDs {
		ir := irule{choice: r.Choice, lo: r.Lower, hi: r.Upper}
		for _, h := range r.Head {
			ir.head = append(ir.head, idx(h))
		}
		for _, a := range r.Pos {
			ir.pos = append(ir.pos, idx(a))
		}
		for _, a := range r.Neg {
			ir.neg = append(ir.neg, idx(a))
		}
		s.rules = append(s.rules, ir)
	}
	n := len(s.ids)
	s.occHead = make([][]int, n)
	s.occPos = make([][]int, n)
	s.occNeg = make([][]int, n)
	for ri, r := range s.rules {
		for _, a := range r.head {
			s.occHead[a] = append(s.occHead[a], ri)
		}
		for _, a := range r.pos {
			s.occPos[a] = append(s.occPos[a], ri)
		}
		for _, a := range r.neg {
			s.occNeg[a] = append(s.occNeg[a], ri)
		}
	}
	s.assign = make([]int8, n)
	s.search()
	return res, nil
}

// idForm returns the ground program's interned form, interning it on the fly
// for programs built without a table (hand-constructed in tests).
func idForm(gp *ground.Program) (*intern.Table, []intern.AtomID, []ground.IRule) {
	if gp.Table != nil && len(gp.RuleIDs) == len(gp.Rules) && len(gp.CertainIDs) == len(gp.Certain) {
		return gp.Table, gp.CertainIDs, gp.RuleIDs
	}
	tab := intern.Default()
	certain := make([]intern.AtomID, len(gp.Certain))
	for i, a := range gp.Certain {
		certain[i] = tab.InternAtom(a)
	}
	rules := make([]ground.IRule, len(gp.Rules))
	for i, r := range gp.Rules {
		ir := ground.IRule{Choice: r.Choice, Lower: r.Lower, Upper: r.Upper}
		for _, h := range r.Head {
			ir.Head = append(ir.Head, tab.InternAtom(h))
		}
		for _, l := range r.Body {
			if l.Kind != ast.AtomLiteral {
				continue // comparisons were evaluated by the grounder
			}
			id := tab.InternAtom(l.Atom)
			if l.Neg {
				ir.Neg = append(ir.Neg, id)
			} else {
				ir.Pos = append(ir.Pos, id)
			}
		}
		rules[i] = ir
	}
	return tab, certain, rules
}

// set assigns a truth value, returns false on conflict with an existing
// assignment.
func (s *solver) set(atom int, v int8) bool {
	cur := s.assign[atom]
	if cur != undef {
		return cur == v
	}
	s.assign[atom] = v
	s.trail = append(s.trail, atom)
	return true
}

// undoTo unwinds the trail to the given mark.
func (s *solver) undoTo(mark int) {
	for len(s.trail) > mark {
		a := s.trail[len(s.trail)-1]
		s.trail = s.trail[:len(s.trail)-1]
		s.assign[a] = undef
	}
}

// litTrue / litFalse report the state of body literals.
func (s *solver) posState(a int) int8 { return s.assign[a] }
func (s *solver) negState(a int) int8 {
	switch s.assign[a] {
	case tru:
		return fls
	case fls:
		return tru
	default:
		return undef
	}
}

// ruleState summarizes a rule body: satisfied (all literals true),
// falsified (some literal false), or the single undecided literal.
type ruleState struct {
	bodySat    bool
	bodyFalse  bool
	undecided  int // count of undecided body literals
	lastPos    int // local index of an undecided positive literal (if any)
	lastNeg    int // local index of an undecided negative literal (if any)
	lastIsPos  bool
	headTrue   int // count of true head atoms
	headFalse  int // count of false head atoms
	headUndef  int
	lastHeadUn int // local index of an undecided head atom (if any)
}

func (s *solver) state(r irule) ruleState {
	st := ruleState{bodySat: true}
	for _, a := range r.pos {
		switch s.posState(a) {
		case fls:
			st.bodyFalse = true
			st.bodySat = false
		case undef:
			st.bodySat = false
			st.undecided++
			st.lastPos = a
			st.lastIsPos = true
		}
	}
	for _, a := range r.neg {
		switch s.negState(a) {
		case fls:
			st.bodyFalse = true
			st.bodySat = false
		case undef:
			st.bodySat = false
			st.undecided++
			st.lastNeg = a
			st.lastIsPos = false
		}
	}
	for _, h := range r.head {
		switch s.assign[h] {
		case tru:
			st.headTrue++
		case fls:
			st.headFalse++
		default:
			st.headUndef++
			st.lastHeadUn = h
		}
	}
	return st
}

// propagate applies the propagation rules to a fixpoint. It returns false on
// conflict.
func (s *solver) propagate() bool {
	for changed := true; changed; {
		changed = false
		for _, r := range s.rules {
			st := s.state(r)
			if r.choice {
				// Choice rules never force heads on their own; the
				// cardinality bounds conflict — or pin the undecided heads —
				// once the body holds.
				if st.bodySat {
					if r.hi >= 0 && st.headTrue > r.hi {
						return false
					}
					if r.lo > 0 && st.headTrue+st.headUndef < r.lo {
						return false
					}
					if r.hi >= 0 && st.headTrue == r.hi && st.headUndef > 0 {
						// Upper bound reached: remaining heads are false.
						for _, h := range r.head {
							if s.assign[h] == undef {
								if !s.set(h, fls) {
									return false
								}
								s.out.Stats.Propagations++
								changed = true
							}
						}
					} else if r.lo > 0 && st.headTrue+st.headUndef == r.lo && st.headUndef > 0 {
						// Lower bound tight: remaining heads are true.
						for _, h := range r.head {
							if s.assign[h] == undef {
								if !s.set(h, tru) {
									return false
								}
								s.out.Stats.Propagations++
								changed = true
							}
						}
					}
				}
				continue
			}
			switch {
			case st.bodySat && st.headTrue == 0:
				// Body holds: some head atom must hold.
				if st.headUndef == 0 {
					return false // constraint violated or all heads false
				}
				if st.headUndef == 1 {
					if !s.set(st.lastHeadUn, tru) {
						return false
					}
					s.out.Stats.Propagations++
					changed = true
				}
			case st.headTrue == 0 && st.headUndef == 0 && !st.bodyFalse && st.undecided == 1:
				// All heads false and the body is one literal away from
				// firing: falsify that literal (contraposition).
				var ok bool
				if st.lastIsPos {
					ok = s.set(st.lastPos, fls)
				} else {
					// Falsifying the literal "not a" means making a true.
					ok = s.set(st.lastNeg, tru)
				}
				if !ok {
					return false
				}
				s.out.Stats.Propagations++
				changed = true
			}
		}
		// Support propagation: an undecided or true atom with no rule able
		// to support it must be false (true -> conflict).
		for a := range s.ids {
			if s.assign[a] == fls {
				continue
			}
			supported := false
			for _, ri := range s.occHead[a] {
				r := s.rules[ri]
				st := s.state(r)
				if st.bodyFalse {
					continue
				}
				if r.choice {
					// A choice rule supports any of its heads.
					supported = true
					break
				}
				// A disjunctive rule supports a only if no other head atom
				// is true.
				otherTrue := false
				for _, h := range r.head {
					if h != a && s.assign[h] == tru {
						otherTrue = true
						break
					}
				}
				if !otherTrue {
					supported = true
					break
				}
			}
			if !supported {
				if s.assign[a] == tru {
					return false
				}
				if !s.set(a, fls) {
					return false
				}
				s.out.Stats.Propagations++
				changed = true
			}
		}
	}
	return true
}

func (s *solver) search() {
	if !s.propagate() {
		return
	}
	// Find an unassigned atom to branch on.
	branch := -1
	for a := range s.assign {
		if s.assign[a] == undef {
			branch = a
			break
		}
	}
	if branch == -1 {
		s.out.Stats.StabilityChecks++
		if s.stable() {
			s.emitModel()
		}
		return
	}
	s.out.Stats.Choices++
	for _, v := range []int8{tru, fls} {
		if s.opts.MaxModels > 0 && len(s.out.Models) >= s.opts.MaxModels {
			return
		}
		mark := len(s.trail)
		if s.set(branch, v) {
			s.search()
		}
		s.undoTo(mark)
	}
}

func (s *solver) emitModel() {
	ids := make([]intern.AtomID, 0, len(s.certain)+len(s.trail))
	ids = append(ids, s.certain...)
	for a := range s.ids {
		if s.assign[a] == tru {
			ids = append(ids, s.ids[a])
		}
	}
	s.out.Models = append(s.out.Models, FromIDs(s.tab, ids))
}

// stable verifies the candidate total assignment against the reduct: the
// true atoms must form a minimal model of the reduct of the residual rules.
func (s *solver) stable() bool {
	// Collect the candidate model over residual atoms.
	model := make([]bool, len(s.ids))
	for a := range s.ids {
		if s.assign[a] == tru {
			model[a] = true
		}
	}
	// Build the reduct: drop rules with a true negative atom; drop negative
	// literals otherwise. A choice rule {H} :- B contributes, for every head
	// atom in the candidate, the definite rule a :- B+ (the "not not a" part
	// of its definition is satisfied when a is in the candidate); its
	// cardinality bounds are checked directly against the candidate.
	type prule struct {
		head []int
		pos  []int
	}
	var reduct []prule
	disjunctive := false
	for _, r := range s.rules {
		blocked := false
		for _, a := range r.neg {
			if model[a] {
				blocked = true
				break
			}
		}
		if blocked {
			continue
		}
		if r.choice {
			bodySat := true
			for _, a := range r.pos {
				if !model[a] {
					bodySat = false
					break
				}
			}
			if bodySat {
				inM := 0
				for _, h := range r.head {
					if model[h] {
						inM++
					}
				}
				if r.lo >= 0 && inM < r.lo {
					return false
				}
				if r.hi >= 0 && inM > r.hi {
					return false
				}
			}
			for _, h := range r.head {
				if model[h] {
					reduct = append(reduct, prule{head: []int{h}, pos: r.pos})
				}
			}
			continue
		}
		reduct = append(reduct, prule{head: r.head, pos: r.pos})
		if len(r.head) > 1 {
			disjunctive = true
		}
	}

	// Every candidate must at least be a model of the reduct.
	for _, r := range reduct {
		bodySat := true
		for _, a := range r.pos {
			if !model[a] {
				bodySat = false
				break
			}
		}
		if !bodySat {
			continue
		}
		headSat := false
		for _, h := range r.head {
			if model[h] {
				headSat = true
				break
			}
		}
		if !headSat {
			return false
		}
	}

	if !disjunctive {
		// Normal program: compare against the least model of the reduct.
		least := make([]bool, len(s.ids))
		for changed := true; changed; {
			changed = false
			for _, r := range reduct {
				if len(r.head) != 1 || least[r.head[0]] {
					continue
				}
				fire := true
				for _, a := range r.pos {
					if !least[a] {
						fire = false
						break
					}
				}
				if fire {
					least[r.head[0]] = true
					changed = true
				}
			}
		}
		for a := range model {
			if model[a] != least[a] {
				return false
			}
		}
		return true
	}

	// Disjunctive program: search for a model of the reduct that is a
	// proper subset of the candidate. If none exists the candidate is a
	// minimal model of the reduct, hence an answer set.
	var inM []int
	for a := range model {
		if model[a] {
			inM = append(inM, a)
		}
	}
	val := make(map[int]int8, len(inM))
	var smaller func(i int) bool
	consistent := func() (ok, complete, proper bool) {
		complete, proper = true, false
		for _, a := range inM {
			switch val[a] {
			case undef:
				complete = false
			case fls:
				proper = true
			}
		}
		for _, r := range reduct {
			bodyTrue, bodyUndecided := true, false
			for _, a := range r.pos {
				if !model[a] {
					bodyTrue = false
					break // atom outside M is false in any submodel
				}
				switch val[a] {
				case fls:
					bodyTrue = false
				case undef:
					bodyUndecided = true
				}
				if !bodyTrue {
					break
				}
			}
			if !bodyTrue {
				continue
			}
			headOK, headUndecided := false, false
			for _, h := range r.head {
				if !model[h] {
					continue
				}
				switch val[h] {
				case tru:
					headOK = true
				case undef:
					headUndecided = true
				}
			}
			if !headOK && !bodyUndecided && !headUndecided {
				return false, complete, proper
			}
		}
		return true, complete, proper
	}
	smaller = func(i int) bool {
		ok, complete, proper := consistent()
		if !ok {
			return false
		}
		if i == len(inM) {
			return complete && proper
		}
		a := inM[i]
		for _, v := range []int8{fls, tru} {
			val[a] = v
			if smaller(i + 1) {
				val[a] = undef
				return true
			}
		}
		val[a] = undef
		return false
	}
	return !smaller(0)
}
