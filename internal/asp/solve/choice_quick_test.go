package solve

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"streamrule/internal/asp/ast"
	"streamrule/internal/asp/ground"
)

// bruteForceChoice enumerates answer sets of a ground program that may
// contain choice rules, directly from the definition: M is an answer set iff
// (a) M satisfies every cardinality bound whose body M satisfies, and (b) M
// is a minimal model of the reduct, where a choice rule contributes a :- B+
// for every head atom a in M (unless a negative body atom is in M).
func bruteForceChoice(gp *ground.Program) [][]string {
	type prule struct {
		head, pos, neg []int
		choice         bool
		lo, hi         int
	}
	var atoms []string
	id := map[string]int{}
	intern := func(k string) int {
		if i, ok := id[k]; ok {
			return i
		}
		id[k] = len(atoms)
		atoms = append(atoms, k)
		return id[k]
	}
	var rules []prule
	for _, r := range gp.Rules {
		pr := prule{choice: r.Choice, lo: r.Lower, hi: r.Upper}
		for _, h := range r.Head {
			pr.head = append(pr.head, intern(h.Key()))
		}
		for _, l := range r.Body {
			if l.Kind != ast.AtomLiteral {
				continue
			}
			if l.Neg {
				pr.neg = append(pr.neg, intern(l.Atom.Key()))
			} else {
				pr.pos = append(pr.pos, intern(l.Atom.Key()))
			}
		}
		rules = append(rules, pr)
	}
	n := len(atoms)

	bodySat := func(r prule, world uint64) bool {
		for _, a := range r.pos {
			if world&(1<<a) == 0 {
				return false
			}
		}
		for _, a := range r.neg {
			if world&(1<<a) != 0 {
				return false
			}
		}
		return true
	}
	boundsOK := func(world uint64) bool {
		for _, r := range rules {
			if !r.choice || !bodySat(r, world) {
				continue
			}
			in := 0
			for _, h := range r.head {
				if world&(1<<h) != 0 {
					in++
				}
			}
			if r.lo >= 0 && in < r.lo {
				return false
			}
			if r.hi >= 0 && in > r.hi {
				return false
			}
		}
		return true
	}
	isModelOfReduct := func(m, world uint64) bool {
		for _, r := range rules {
			blocked := false
			for _, a := range r.neg {
				if world&(1<<a) != 0 {
					blocked = true
					break
				}
			}
			if blocked {
				continue
			}
			posSat := true
			for _, a := range r.pos {
				if m&(1<<a) == 0 {
					posSat = false
					break
				}
			}
			if !posSat {
				continue
			}
			if r.choice {
				// For every head in the WORLD, the reduct contains a :- B+.
				for _, h := range r.head {
					if world&(1<<h) != 0 && m&(1<<h) == 0 {
						return false
					}
				}
				continue
			}
			headSat := false
			for _, h := range r.head {
				if m&(1<<h) != 0 {
					headSat = true
					break
				}
			}
			if !headSat {
				return false
			}
		}
		return true
	}

	var out [][]string
	for m := uint64(0); m < 1<<n; m++ {
		if !boundsOK(m) || !isModelOfReduct(m, m) {
			continue
		}
		minimal := true
		if m > 0 {
			for sub := (m - 1) & m; ; sub = (sub - 1) & m {
				if isModelOfReduct(sub, m) {
					minimal = false
					break
				}
				if sub == 0 {
					break
				}
			}
		}
		if minimal {
			var keys []string
			for a := 0; a < n; a++ {
				if m&(1<<a) != 0 {
					keys = append(keys, atoms[a])
				}
			}
			sort.Strings(keys)
			out = append(out, keys)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return out
}

// Property: the solver agrees with brute force on random propositional
// programs mixing normal, disjunctive, and bounded choice rules.
func TestQuickChoiceMatchesBruteForce(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gp := &ground.Program{}
		nRules := 1 + rng.Intn(4)
		for i := 0; i < nRules; i++ {
			var r ast.Rule
			kind := rng.Intn(3) // 0 normal, 1 disjunctive/constraint, 2 choice
			switch kind {
			case 2:
				r.Choice = true
				nHead := 1 + rng.Intn(2)
				for j := 0; j < nHead; j++ {
					r.Head = append(r.Head, ast.NewAtom(names[rng.Intn(len(names))]))
				}
				r.Lower, r.Upper = ast.UnboundedChoice, ast.UnboundedChoice
				if rng.Intn(2) == 0 {
					r.Lower = rng.Intn(2)
				}
				if rng.Intn(2) == 0 {
					r.Upper = r.Lower
					if r.Upper < 0 {
						r.Upper = rng.Intn(2)
					}
					r.Upper += rng.Intn(2)
				}
			default:
				nHead := kind // 0 -> constraint possible below, 1 -> up to 2
				nHead = rng.Intn(2 + kind)
				for j := 0; j < nHead; j++ {
					r.Head = append(r.Head, ast.NewAtom(names[rng.Intn(len(names))]))
				}
			}
			nBody := rng.Intn(3)
			if len(r.Head) == 0 && nBody == 0 {
				nBody = 1
			}
			for j := 0; j < nBody; j++ {
				a := ast.NewAtom(names[rng.Intn(len(names))])
				if rng.Intn(2) == 0 {
					r.Body = append(r.Body, ast.Pos(a))
				} else {
					r.Body = append(r.Body, ast.Not(a))
				}
			}
			gp.Rules = append(gp.Rules, r)
		}
		res, err := Solve(gp, Options{})
		if err != nil {
			return false
		}
		got := modelKeys(res)
		want := bruteForceChoice(gp)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if len(got[i]) != len(want[i]) {
				return false
			}
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
