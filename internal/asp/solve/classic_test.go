package solve

// Classic ASP benchmark programs run end-to-end through parser, grounder,
// and solver — integration checks that the engine computes known solution
// counts for problems a credible ASP system must handle.

import (
	"fmt"
	"testing"
)

func TestNQueens(t *testing.T) {
	// Known solution counts for the n-queens problem.
	counts := map[int]int{4: 2, 5: 10}
	for n, want := range counts {
		// Choice elements with ": col(C)" conditions inside braces are not
		// supported, so the per-row choices are expanded explicitly.
		src := fmt.Sprintf("row(1..%d).\ncol(1..%d).\n", n, n)
		for r := 1; r <= n; r++ {
			src += "1 { "
			for c := 1; c <= n; c++ {
				if c > 1 {
					src += " ; "
				}
				src += fmt.Sprintf("q(%d, %d)", r, c)
			}
			src += " } 1.\n"
		}
		src += `
:- q(R1, C), q(R2, C), R1 < R2.
:- q(R1, C1), q(R2, C2), R1 < R2, C1 - C2 = R1 - R2.
:- q(R1, C1), q(R2, C2), R1 < R2, C2 - C1 = R1 - R2.
`
		gp := groundSrc(t, src)
		res, err := Solve(gp, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Models) != want {
			t.Errorf("%d-queens: %d solutions, want %d", n, len(res.Models), want)
		}
		for _, m := range res.Models {
			queens := 0
			for _, a := range m.Atoms() {
				if a.Pred == "q" {
					queens++
				}
			}
			if queens != n {
				t.Errorf("%d-queens model has %d queens: %v", n, queens, m)
			}
		}
	}
}

func TestThreeColoringCycle(t *testing.T) {
	// A cycle of length 5 with 3 colors: chromatic polynomial gives
	// (k-1)^n + (-1)^n (k-1) = 2^5 - 2 = 30 proper colorings.
	src := `
node(1..5).
edge(1,2). edge(2,3). edge(3,4). edge(4,5). edge(5,1).
1 { color(N, r) ; color(N, g) ; color(N, b) } 1 :- node(N).
:- edge(A, B), color(A, C), color(B, C).
`
	gp := groundSrc(t, src)
	res, err := Solve(gp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) != 30 {
		t.Errorf("colorings = %d, want 30", len(res.Models))
	}
}

func TestIndependentSets(t *testing.T) {
	// Independent sets of a path 1-2-3-4: F(6) = 8 (Fibonacci).
	src := `
node(1..4).
edge(1,2). edge(2,3). edge(3,4).
{ in(N) } :- node(N).
:- edge(A, B), in(A), in(B).
`
	gp := groundSrc(t, src)
	res, err := Solve(gp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) != 8 {
		t.Errorf("independent sets = %d, want 8", len(res.Models))
	}
}

func TestHamiltonianCycleTriangle(t *testing.T) {
	// Directed triangle 1->2->3->1 plus reverse edges: exactly 2
	// Hamiltonian cycles (clockwise and counter-clockwise).
	src := `
node(1..3).
edge(1,2). edge(2,3). edge(3,1).
edge(2,1). edge(3,2). edge(1,3).
{ in(A, B) } :- edge(A, B).
:- in(A, B), in(A, C), B < C.
:- in(A, C), in(B, C), A < B.
outdeg(A) :- in(A, B).
indeg(B) :- in(A, B).
:- node(A), not outdeg(A).
:- node(A), not indeg(A).
reach(1).
reach(B) :- reach(A), in(A, B).
:- node(A), not reach(A).
`
	gp := groundSrc(t, src)
	res, err := Solve(gp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) != 2 {
		t.Errorf("hamiltonian cycles = %d, want 2: %v", len(res.Models), modelKeys(res))
	}
}

func TestVertexCoverComplement(t *testing.T) {
	// Covers of the path 1-2-3: subsets S with every edge incident to S.
	// All subsets containing vertex 2 (4) plus {1,3} = 5 covers.
	src := `
node(1..3).
edge(1,2). edge(2,3).
{ cover(N) } :- node(N).
:- edge(A, B), not cover(A), not cover(B).
`
	gp := groundSrc(t, src)
	res, err := Solve(gp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) != 5 {
		t.Errorf("vertex covers = %d, want 5: %v", len(res.Models), modelKeys(res))
	}
}
