// Conflict analysis: 1UIP resolution over the trail.
//
// Reasons are not stored as materialized clauses. Each implied atom records
// only the kind and index of what forced it (rule, cardinality bound, support
// loss, or clause), and the antecedent literals are reconstructed on demand
// when analysis actually resolves the atom. Reconstruction is sound because
// the trail only grows between an implication and the conflict that analyzes
// it, so the antecedents that held at implication time are recovered by
// filtering on trail position. Each reconstruction also reports its premises
// (the ground rules or atom completions the implication relied on) into the
// analysis scratch, so the learned clause knows exactly which parts of the
// program its validity depends on — the information cross-window carry needs
// (clausedb.go).
package solve

// antecedents appends the antecedent literals — all false, all assigned
// before trail position p — of an implication of atom a with reason (k, i),
// and records the reason's premises into cd.prem. The implied literal itself
// is excluded.
func (cd *cdnl) antecedents(k uint8, i int32, a int, p int32, buf []int32) []int32 {
	s := cd.s
	switch k {
	case rkRule:
		cd.prem.addRule(i)
		return cd.ruleClause(i, a, buf)
	case rkChoice:
		cd.prem.addRule(i)
		r := &s.rules[i]
		for _, b := range r.pos {
			buf = append(buf, mkLit(b, false))
		}
		for _, c := range r.neg {
			buf = append(buf, mkLit(c, true))
		}
		if s.assign[a] != tru {
			// Upper bound reached: the heads true at implication time.
			for _, h := range r.head {
				if h != a && s.assign[h] == tru && cd.posIn[h] < p {
					buf = append(buf, mkLit(h, false))
				}
			}
		} else {
			// Lower bound tight: the heads false at implication time.
			for _, h := range r.head {
				if h != a && s.assign[h] == fls && cd.posIn[h] < p {
					buf = append(buf, mkLit(h, true))
				}
			}
		}
		return buf
	case rkSupport:
		cd.prem.addComp(int32(a))
		for _, ri := range s.occHead.of(a) {
			buf = cd.appendKiller(ri, a, p, buf)
		}
		return buf
	case rkClause:
		c := &cd.db[i]
		cd.prem.addClausePrem(c)
		cd.bumpCla(i)
		for _, q := range c.lits {
			if litAtom(q) != a {
				buf = append(buf, q)
			}
		}
		return buf
	}
	return buf
}

// analyze performs 1UIP resolution starting from the conflict clause in
// cd.cLits (premises pre-seeded in cd.prem). It returns the asserting clause
// — learnt[0] is the asserting literal, learnt[1] the highest-level other
// literal — and the backjump level. The caller must already be at the level
// of the deepest conflict literal.
func (cd *cdnl) analyze() (learnt []int32, bj int32) {
	s := cd.s
	cur := cd.curLevel()
	cd.rootEpoch++
	learnt = append(cd.outLearnt[:0], 0) // slot 0: asserting literal
	counter := 0
	idx := len(s.trail) - 1
	c := cd.cLits
	for {
		for _, q := range c {
			qa := litAtom(q)
			if !cd.seen[qa] && cd.level[qa] > 0 {
				cd.seen[qa] = true
				cd.bumpVar(qa)
				if cd.level[qa] == cur {
					counter++
				} else {
					learnt = append(learnt, q)
				}
			} else if !cd.seen[qa] && cd.level[qa] == 0 {
				// Elided root-level literal: the clause's validity silently
				// depends on whatever forced it, so that derivation's
				// premises must be recorded too (or, when the derivation
				// involves enumeration state, the clause tainted).
				if cd.atomTaint[qa] {
					cd.prem.taint = true
				} else {
					cd.rootPremises(qa)
				}
			}
		}
		for !cd.seen[s.trail[idx]] {
			idx--
		}
		a := int(s.trail[idx])
		idx--
		cd.seen[a] = false
		counter--
		if counter == 0 {
			learnt[0] = mkLit(a, s.assign[a] != tru)
			break
		}
		cd.rbuf = cd.antecedents(cd.reasonK[a], cd.reasonI[a], a, cd.posIn[a], cd.rbuf[:0])
		c = cd.rbuf
	}
	for _, q := range learnt[1:] {
		cd.seen[litAtom(q)] = false
	}
	// Backjump level: the highest level among the non-asserting literals;
	// swap that literal into slot 1 so the watches straddle the backjump.
	bj = 0
	for i := 1; i < len(learnt); i++ {
		if l := cd.level[litAtom(learnt[i])]; l > bj {
			bj = l
			learnt[1], learnt[i] = learnt[i], learnt[1]
		}
	}
	cd.outLearnt = learnt
	return learnt, bj
}

// rootPremises records, transitively, the premises of a root-level
// assignment that analysis elides from a learned clause. Root assignments
// are always implications (there are no decisions at level 0), so the walk
// follows recorded reasons; every antecedent it meets is itself at the root.
// The epoch stamp dedups work within one analyze call only — premise scratch
// is per-clause, so atoms must be revisited for the next learned clause.
func (cd *cdnl) rootPremises(a int) {
	cd.rootStack = append(cd.rootStack[:0], int32(a))
	for len(cd.rootStack) > 0 {
		a := int(cd.rootStack[len(cd.rootStack)-1])
		cd.rootStack = cd.rootStack[:len(cd.rootStack)-1]
		if cd.rootStamp[a] == cd.rootEpoch {
			continue
		}
		cd.rootStamp[a] = cd.rootEpoch
		cd.rootBuf = cd.antecedents(cd.reasonK[a], cd.reasonI[a], a, cd.posIn[a], cd.rootBuf[:0])
		for _, q := range cd.rootBuf {
			cd.rootStack = append(cd.rootStack, int32(litAtom(q)))
		}
	}
}

// computeLBD returns the number of distinct decision levels among the
// clause's literals — the standard "literal blocks distance" quality metric.
func (cd *cdnl) computeLBD(lits []int32) int32 {
	cd.lbdEpoch++
	var n int32
	for _, q := range lits {
		l := cd.level[litAtom(q)]
		if cd.lbdStamp[l] != cd.lbdEpoch {
			cd.lbdStamp[l] = cd.lbdEpoch
			n++
		}
	}
	return n
}

// resolveConflict analyzes the conflict recorded in cd.cLits, learns the
// asserting clause, backjumps, and asserts. It returns false when the
// conflict is at (or entirely below) the root level: the enumeration is done.
func (cd *cdnl) resolveConflict() bool {
	s := cd.s
	// A lazily reconstructed conflict may sit entirely below the current
	// level; analysis requires the deepest conflict literal to be at the
	// current level, so fall back first.
	var m int32
	for _, q := range cd.cLits {
		if l := cd.level[litAtom(q)]; l > m {
			m = l
		}
	}
	if m == 0 {
		return false
	}
	if m < cd.curLevel() {
		cd.cancelUntil(m)
	}
	learnt, bj := cd.analyze()
	if bj < cd.curLevel()-1 {
		s.out.Stats.Backjumps++
	}
	cd.cancelUntil(bj)
	flags := fLearned
	if cd.prem.taint {
		flags |= fTaint
	}
	ci := cd.addClauseFromScratch(learnt, flags)
	s.out.Stats.Learned++
	cd.learnedLive++
	cd.imply(cd.db[ci].lits[0], rkClause, ci)
	cd.decayActivities()
	if cd.learnedLive > cd.maxLearned {
		cd.reduceDB()
	}
	return true
}
