package solve

import (
	"slices"
	"testing"

	"streamrule/internal/asp/ast"
	"streamrule/internal/asp/ground"
)

// fuzzAtomNames is the atom universe of the fuzzed residual programs: small
// enough that the brute-force oracle stays cheap and the default interning
// table stays bounded across fuzz iterations.
var fuzzAtomNames = []string{"a", "b", "c", "d", "e", "f"}

// decodeResidualProgram turns fuzz bytes into a small residual ground
// program: a stream of rule records, each selecting a kind (normal /
// disjunctive / constraint / bounded choice) and drawing head and body
// atoms from a fixed universe. Every byte string decodes to a valid
// program, so the fuzzer explores program space rather than parser space.
// It returns nil when the input encodes no rule at all.
func decodeResidualProgram(data []byte) (*ground.Program, bool) {
	next := func() (byte, bool) {
		if len(data) == 0 {
			return 0, false
		}
		b := data[0]
		data = data[1:]
		return b, true
	}
	atom := func(b byte) ast.Atom { return ast.NewAtom(fuzzAtomNames[int(b)%len(fuzzAtomNames)]) }

	gp := &ground.Program{}
	hasChoice := false
	for len(gp.Rules) < 8 {
		kind, ok := next()
		if !ok {
			break
		}
		var r ast.Rule
		switch kind % 4 {
		case 0: // normal rule, one head
			h, ok := next()
			if !ok {
				return gp, hasChoice
			}
			r.Head = append(r.Head, atom(h))
		case 1: // disjunctive rule, two heads
			h1, ok1 := next()
			h2, ok2 := next()
			if !ok1 || !ok2 {
				return gp, hasChoice
			}
			r.Head = append(r.Head, atom(h1), atom(h2))
		case 2: // integrity constraint (empty head, forced body below)
		case 3: // choice rule with bounds drawn from the data
			r.Choice = true
			hasChoice = true
			h, ok := next()
			if !ok {
				return gp, hasChoice
			}
			r.Head = append(r.Head, atom(h))
			if b, ok := next(); ok && b%2 == 0 {
				r.Head = append(r.Head, atom(b/2))
			}
			r.Lower, r.Upper = ast.UnboundedChoice, ast.UnboundedChoice
			if b, ok := next(); ok {
				switch b % 3 {
				case 0:
					r.Lower = int(b/3) % (len(r.Head) + 1)
				case 1:
					r.Upper = int(b/3) % (len(r.Head) + 1)
				default:
					r.Lower = int(b/3) % (len(r.Head) + 1)
					r.Upper = r.Lower
				}
			}
		}
		nBody, ok := next()
		if !ok {
			return gp, hasChoice
		}
		n := int(nBody) % 4
		if len(r.Head) == 0 && n == 0 {
			n = 1 // a constraint with an empty body is statically absurd
		}
		for j := 0; j < n; j++ {
			b, ok := next()
			if !ok {
				return gp, hasChoice
			}
			a := atom(b)
			if b&0x80 != 0 {
				r.Body = append(r.Body, ast.Not(a))
			} else {
				r.Body = append(r.Body, ast.Pos(a))
			}
		}
		gp.Rules = append(gp.Rules, r)
	}
	return gp, hasChoice
}

// FuzzSolveResidual feeds random residual ground programs to both
// propagation engines and requires identical answer sets (as sorted key
// multisets) and identical stability verdicts — every candidate both
// engines submit passes or fails the same reduct test, pinned by equal
// model AND stability-check counts. Choice-free programs are additionally
// checked against the brute-force enumeration oracle.
func FuzzSolveResidual(f *testing.F) {
	// Seeds covering each rule kind and the classic solver shapes: an even
	// loop, an odd loop (no models), a pinned loop, a disjunctive pair, a
	// bounded choice, and a support loop.
	f.Add([]byte{0, 0, 1, 0x80 | 1, 0, 1, 1, 0x80})          // a :- not b.  b :- not a.
	f.Add([]byte{0, 0, 1, 0x80})                             // a :- not a. (odd loop)
	f.Add([]byte{0, 0, 1, 0x80 | 1, 0, 1, 1, 0x80, 2, 1, 1}) // even loop + :- b.
	f.Add([]byte{1, 0, 1, 0})                                // a | b.
	f.Add([]byte{3, 0, 2, 5, 0, 0, 0, 1, 0x80 | 2})          // bounded choice + body
	f.Add([]byte{0, 0, 1, 1, 0, 1, 1, 0, 0, 2, 1, 0x80 | 3}) // positive loop (unfounded)
	f.Fuzz(func(t *testing.T, data []byte) {
		gp, hasChoice := decodeResidualProgram(data)
		if len(gp.Rules) == 0 {
			t.Skip()
		}
		ev, err := Solve(gp, Options{})
		if err != nil {
			t.Fatalf("event engine: %v", err)
		}
		nv, err := Solve(gp, Options{NaivePropagation: true})
		if err != nil {
			t.Fatalf("naive engine: %v", err)
		}
		evKeys, nvKeys := modelKeys(ev), modelKeys(nv)
		if len(evKeys) != len(nvKeys) {
			t.Fatalf("model count: event %v, naive %v\nrules: %v", evKeys, nvKeys, gp.Rules)
		}
		for i := range evKeys {
			if !slices.Equal(evKeys[i], nvKeys[i]) {
				t.Fatalf("model %d: event %v, naive %v\nrules: %v", i, evKeys[i], nvKeys[i], gp.Rules)
			}
		}
		// Both engines enumerate the same propagation-consistent total
		// assignments, so their stable() verdicts must agree candidate for
		// candidate: equal models (above) AND equal candidate counts.
		if ev.Stats.StabilityChecks != nv.Stats.StabilityChecks {
			t.Fatalf("stability checks: event %d, naive %d\nrules: %v",
				ev.Stats.StabilityChecks, nv.Stats.StabilityChecks, gp.Rules)
		}
		if !hasChoice {
			want := bruteForce(gp)
			if len(evKeys) != len(want) {
				t.Fatalf("vs brute force: got %v, want %v\nrules: %v", evKeys, want, gp.Rules)
			}
			for i := range want {
				if !slices.Equal(evKeys[i], want[i]) {
					t.Fatalf("model %d: got %v, brute force %v\nrules: %v", i, evKeys[i], want[i], gp.Rules)
				}
			}
		}
	})
}
