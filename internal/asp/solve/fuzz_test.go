package solve

import (
	"slices"
	"testing"

	"streamrule/internal/asp/ast"
	"streamrule/internal/asp/ground"
)

// fuzzAtomNames is the atom universe of the fuzzed residual programs: small
// enough that the brute-force oracle stays cheap (well under its ~16-atom
// practicality bound) and the default interning table stays bounded across
// fuzz iterations.
var fuzzAtomNames = []string{"a", "b", "c", "d", "e", "f", "g", "h"}

// decodeResidualProgram turns fuzz bytes into a small residual ground
// program: a stream of rule records, each selecting a kind (normal /
// disjunctive / constraint / bounded choice / deep negation chain /
// guarded positive loop) and drawing head and body atoms from a fixed
// universe. The chain and loop kinds emit several coupled rules at once —
// the shapes that stress unfounded-set detection interleaved with even and
// odd negation cycles. Every byte string decodes to a valid program, so
// the fuzzer explores program space rather than parser space.
func decodeResidualProgram(data []byte) *ground.Program {
	next := func() (byte, bool) {
		if len(data) == 0 {
			return 0, false
		}
		b := data[0]
		data = data[1:]
		return b, true
	}
	atom := func(b byte) ast.Atom { return ast.NewAtom(fuzzAtomNames[int(b)%len(fuzzAtomNames)]) }

	gp := &ground.Program{}
	for len(gp.Rules) < 12 {
		kind, ok := next()
		if !ok {
			break
		}
		var r ast.Rule
		switch kind % 6 {
		case 0: // normal rule, one head
			h, ok := next()
			if !ok {
				return gp
			}
			r.Head = append(r.Head, atom(h))
		case 1: // disjunctive rule, two heads
			h1, ok1 := next()
			h2, ok2 := next()
			if !ok1 || !ok2 {
				return gp
			}
			r.Head = append(r.Head, atom(h1), atom(h2))
		case 2: // integrity constraint (empty head, forced body below)
		case 3: // choice rule with bounds drawn from the data
			r.Choice = true
			h, ok := next()
			if !ok {
				return gp
			}
			r.Head = append(r.Head, atom(h))
			if b, ok := next(); ok && b%2 == 0 {
				r.Head = append(r.Head, atom(b/2))
			}
			r.Lower, r.Upper = ast.UnboundedChoice, ast.UnboundedChoice
			if b, ok := next(); ok {
				switch b % 3 {
				case 0:
					r.Lower = int(b/3) % (len(r.Head) + 1)
				case 1:
					r.Upper = int(b/3) % (len(r.Head) + 1)
				default:
					r.Lower = int(b/3) % (len(r.Head) + 1)
					r.Upper = r.Lower
				}
			}
		case 4: // deep negation chain: a_i :- not a_{i+1}, cyclic
			s, ok1 := next()
			k, ok2 := next()
			if !ok1 || !ok2 {
				return gp
			}
			depth := 2 + int(k)%5 // 2..6: even depths are loops, odd are absurd
			for i := 0; i < depth; i++ {
				gp.Rules = append(gp.Rules, ast.Rule{
					Head: []ast.Atom{atom(s + byte(i))},
					Body: []ast.Literal{ast.Not(atom(s + byte(i+1)%byte(depth)))},
				})
			}
			continue
		case 5: // positive loop with an external escape, guarded by g
			pb, ok1 := next()
			qb, ok2 := next()
			gb, ok3 := next()
			if !ok1 || !ok2 || !ok3 {
				return gp
			}
			p, q, g := atom(pb), atom(qb), atom(gb)
			gp.Rules = append(gp.Rules,
				ast.Rule{Head: []ast.Atom{p}, Body: []ast.Literal{ast.Pos(q), ast.Pos(g)}},
				ast.Rule{Head: []ast.Atom{q}, Body: []ast.Literal{ast.Pos(p), ast.Pos(g)}},
				ast.Rule{Head: []ast.Atom{p}, Body: []ast.Literal{ast.Not(g)}},
			)
			continue
		}
		nBody, ok := next()
		if !ok {
			return gp
		}
		n := int(nBody) % 4
		if len(r.Head) == 0 && n == 0 {
			n = 1 // a constraint with an empty body is statically absurd
		}
		for j := 0; j < n; j++ {
			b, ok := next()
			if !ok {
				return gp
			}
			a := atom(b)
			if b&0x80 != 0 {
				r.Body = append(r.Body, ast.Not(a))
			} else {
				r.Body = append(r.Body, ast.Pos(a))
			}
		}
		gp.Rules = append(gp.Rules, r)
	}
	return gp
}

// FuzzSolveResidual feeds random residual ground programs to all three
// propagation engines and requires identical answer sets (as sorted key
// multisets). The worklist and naive engines must additionally agree on
// stability verdicts — every candidate both submit passes or fails the same
// reduct test, pinned by equal model AND stability-check counts; the CDNL
// engine is exempt from that count (skipping those checks is its contract)
// but is solved twice under one CarryState, so clause carry is fuzzed too.
// Every program — bounded choice rules included — is checked against the
// brute-force reduct-minimality oracle.
func FuzzSolveResidual(f *testing.F) {
	// Seeds covering each rule kind and the classic solver shapes: an even
	// loop, an odd loop (no models), a pinned loop, a disjunctive pair, a
	// bounded choice, a support loop, deep even/odd negation chains, and a
	// guarded positive loop interleaved with a chain.
	f.Add([]byte{0, 0, 1, 0x80 | 1, 0, 1, 1, 0x80})          // a :- not b.  b :- not a.
	f.Add([]byte{0, 0, 1, 0x80})                             // a :- not a. (odd loop)
	f.Add([]byte{0, 0, 1, 0x80 | 1, 0, 1, 1, 0x80, 2, 1, 1}) // even loop + :- b.
	f.Add([]byte{1, 0, 1, 0})                                // a | b.
	f.Add([]byte{3, 0, 2, 5, 0, 0, 0, 1, 0x80 | 2})          // bounded choice + body
	f.Add([]byte{0, 0, 1, 1, 0, 1, 1, 0, 0, 2, 1, 0x80 | 3}) // positive loop (unfounded)
	f.Add([]byte{4, 0, 2})                                   // 4-deep even negation chain
	f.Add([]byte{4, 0, 3})                                   // 5-deep odd negation chain
	f.Add([]byte{5, 0, 1, 6})                                // guarded positive loop
	f.Add([]byte{4, 2, 1, 5, 0, 1, 4})                       // odd chain + positive loop, sharing atoms
	f.Fuzz(func(t *testing.T, data []byte) {
		gp := decodeResidualProgram(data)
		if len(gp.Rules) == 0 {
			t.Skip()
		}
		ev, err := Solve(gp, Options{})
		if err != nil {
			t.Fatalf("event engine: %v", err)
		}
		nv, err := Solve(gp, Options{NaivePropagation: true})
		if err != nil {
			t.Fatalf("naive engine: %v", err)
		}
		evKeys, nvKeys := modelKeys(ev), modelKeys(nv)
		if len(evKeys) != len(nvKeys) {
			t.Fatalf("model count: event %v, naive %v\nrules: %v", evKeys, nvKeys, gp.Rules)
		}
		for i := range evKeys {
			if !slices.Equal(evKeys[i], nvKeys[i]) {
				t.Fatalf("model %d: event %v, naive %v\nrules: %v", i, evKeys[i], nvKeys[i], gp.Rules)
			}
		}
		// Both engines enumerate the same propagation-consistent total
		// assignments, so their stable() verdicts must agree candidate for
		// candidate: equal models (above) AND equal candidate counts.
		if ev.Stats.StabilityChecks != nv.Stats.StabilityChecks {
			t.Fatalf("stability checks: event %d, naive %d\nrules: %v",
				ev.Stats.StabilityChecks, nv.Stats.StabilityChecks, gp.Rules)
		}
		// CDNL, twice under one carry: the repeat replays whatever the first
		// pass learned, so an unsound carried clause diverges here.
		carry := &CarryState{}
		for pass := 0; pass < 2; pass++ {
			cdl, err := SolveCarry(gp, Options{CDNL: true}, carry)
			if err != nil {
				t.Fatalf("CDNL engine (pass %d): %v", pass, err)
			}
			cdKeys := modelKeys(cdl)
			if len(cdKeys) != len(evKeys) {
				t.Fatalf("CDNL pass %d model count: %v, worklist %v\nrules: %v", pass, cdKeys, evKeys, gp.Rules)
			}
			for i := range evKeys {
				if !slices.Equal(cdKeys[i], evKeys[i]) {
					t.Fatalf("CDNL pass %d model %d: %v, worklist %v\nrules: %v", pass, i, cdKeys[i], evKeys[i], gp.Rules)
				}
			}
		}
		want := bruteForceChoice(gp)
		if len(evKeys) != len(want) {
			t.Fatalf("vs brute force: got %v, want %v\nrules: %v", evKeys, want, gp.Rules)
		}
		for i := range want {
			if !slices.Equal(evKeys[i], want[i]) {
				t.Fatalf("model %d: got %v, brute force %v\nrules: %v", i, evKeys[i], want[i], gp.Rules)
			}
		}
	})
}
