package solve

import (
	"testing"
)

func TestChoiceFreeGeneratesAllSubsets(t *testing.T) {
	gp := groundSrc(t, `{ a ; b }.`)
	res, err := Solve(gp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Unbounded choice over two atoms: {}, {a}, {b}, {a,b}.
	if len(res.Models) != 4 {
		t.Fatalf("models = %v", modelKeys(res))
	}
}

func TestChoiceExactlyOne(t *testing.T) {
	gp := groundSrc(t, `1 { a ; b ; c } 1.`)
	res, err := Solve(gp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantModels(t, res, [][]string{{"a"}, {"b"}, {"c"}})
}

func TestChoiceBounds(t *testing.T) {
	gp := groundSrc(t, `2 { a ; b ; c } 2.`)
	res, err := Solve(gp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) != 3 {
		t.Fatalf("models = %v", modelKeys(res))
	}
	for _, m := range res.Models {
		if m.Len() != 2 {
			t.Errorf("model %v has %d atoms, want 2", m, m.Len())
		}
	}
}

func TestChoiceLowerBoundOnly(t *testing.T) {
	gp := groundSrc(t, `2 { a ; b ; c }.`)
	res, err := Solve(gp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Subsets of size >= 2: 3 pairs + 1 triple.
	if len(res.Models) != 4 {
		t.Fatalf("models = %v", modelKeys(res))
	}
}

func TestChoiceWithBodyAndConstraint(t *testing.T) {
	gp := groundSrc(t, `
item(x). item(y).
{ pick(X) } :- item(X).
:- pick(x), pick(y).
picked :- pick(x).
picked :- pick(y).
`)
	res, err := Solve(gp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// {}, {pick(x)}, {pick(y)} — never both.
	if len(res.Models) != 3 {
		t.Fatalf("models = %v", modelKeys(res))
	}
	for _, m := range res.Models {
		if m.Contains("pick(x)") && m.Contains("pick(y)") {
			t.Errorf("constraint violated: %v", m)
		}
		if (m.Contains("pick(x)") || m.Contains("pick(y)")) != m.Contains("picked") {
			t.Errorf("picked wrong in %v", m)
		}
	}
}

func TestChoiceStability(t *testing.T) {
	// A choice atom must not support itself through a positive loop:
	// { a } :- b.  b :- a.  Without a both are false; choosing a needs b,
	// which needs a — but a is self-supported by the choice when b holds.
	// Stable models: {} and {a, b}.
	gp := groundSrc(t, `
{ a } :- b.
b :- a.
a :- not c.
c :- not a.
`)
	res, err := Solve(gp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// a :- not c chooses between a-worlds and c-worlds:
	//   a true (c false): b from a; choice {a}:-b satisfied (a in it). -> {a,b}
	//   c true (a false): b false. -> {c}
	wantModels(t, res, [][]string{{"a", "b"}, {"c"}})
}

func TestChoiceGraphColoring(t *testing.T) {
	// Classic encoding: exactly one color per node, adjacent nodes differ.
	gp := groundSrc(t, `
node(1..3).
edge(1,2). edge(2,3).
1 { color(N, red) ; color(N, green) } 1 :- node(N).
:- edge(A, B), color(A, C), color(B, C).
`)
	res, err := Solve(gp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Path of 3 nodes, 2 colors: color(2) determines 1 and 3 -> 2 solutions.
	if len(res.Models) != 2 {
		t.Fatalf("models = %v", modelKeys(res))
	}
	for _, m := range res.Models {
		colors := 0
		for _, a := range m.Atoms() {
			if a.Pred == "color" {
				colors++
			}
		}
		if colors != 3 {
			t.Errorf("model %v assigns %d colors", m, colors)
		}
	}
}

func TestChoiceUnsatBounds(t *testing.T) {
	gp := groundSrc(t, `3 { a ; b } .`)
	res, err := Solve(gp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) != 0 {
		t.Errorf("lower bound 3 over 2 atoms must be unsatisfiable: %v", modelKeys(res))
	}
}

func TestChoiceInteractsWithAggregateGrounding(t *testing.T) {
	// Aggregate counts a deterministic lower stratum; the choice above it
	// stays free.
	gp := groundSrc(t, `
obs(1..4).
n(N) :- N = #count{ X : obs(X) }.
{ alarm } :- n(N), N >= 4.
`)
	res, err := Solve(gp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) != 2 {
		t.Fatalf("models = %v", modelKeys(res))
	}
	withAlarm := 0
	for _, m := range res.Models {
		if m.Contains("alarm") {
			withAlarm++
		}
		if !m.Contains("n(4)") {
			t.Errorf("model %v missing count", m)
		}
	}
	if withAlarm != 1 {
		t.Errorf("alarm chosen in %d models, want 1", withAlarm)
	}
}
