// Event-driven propagation: the solver core.
//
// The naive propagator (naive.go) recomputes every rule's full state on
// every fixpoint pass — O(rules × body) per pass, re-deriving facts it
// already knew. The engine here inverts that: each rule carries counters
// (undecided body literals, false body literals, true/undecided head atoms)
// that solver.set updates incrementally through per-atom occurrence lists,
// and only rules whose counters crossed an inference threshold are pushed
// onto a worklist and re-examined. Support propagation keeps a source
// pointer per atom — one rule whose body is not false and (for non-choice
// rules) no other head of which is true; only atoms whose source dies are
// re-examined, instead of rescanning every atom × occurrence each pass.
//
// Backtracking reverses the counter deltas from the trail (undoTo is
// O(trail), like the assignment undo). Source pointers need no undo at all:
// validity is monotone under retraction — removing assignments can only
// un-falsify body literals and un-true heads — so any pointer recorded
// after the mark is also valid at the restored state, and the restored
// state was itself a propagation fixpoint.
package solve

import (
	"slices"

	"streamrule/internal/asp/intern"
)

// truth values of the search assignment.
const (
	undef int8 = 0
	tru   int8 = 1
	fls   int8 = -1
)

// irule is a ground rule over dense local atom indices.
type irule struct {
	head []int
	pos  []int
	neg  []int
	// choice marks a choice rule with cardinality bounds lo..hi
	// (ast.UnboundedChoice disables a bound).
	choice bool
	lo, hi int
}

// occList is a CSR-packed occurrence index: the rule indices touching atom a
// are data[off[a]:off[a+1]].
type occList struct {
	off  []int32
	data []int32
}

func (o *occList) of(a int) []int32 { return o.data[o.off[a]:o.off[a+1]] }

// buildOcc packs one occurrence list (head, positive-body, or negative-body,
// selected by sel) for n atoms.
func buildOcc(n int, rules []irule, sel func(*irule) []int) occList {
	off := make([]int32, n+1)
	for i := range rules {
		for _, a := range sel(&rules[i]) {
			off[a+1]++
		}
	}
	for a := 0; a < n; a++ {
		off[a+1] += off[a]
	}
	data := make([]int32, off[n])
	next := make([]int32, n)
	copy(next, off[:n])
	for i := range rules {
		for _, a := range sel(&rules[i]) {
			data[next[a]] = int32(i)
			next[a]++
		}
	}
	return occList{off: off, data: data}
}

type solver struct {
	opts  Options
	naive bool
	// ids maps dense local indices back to interned atom IDs.
	ids   []intern.AtomID
	rules []irule
	// occurrence lists: rule indices per local atom index
	occHead occList
	occPos  occList
	occNeg  occList

	assign []int8
	trail  []int32

	// Per-rule counters (counter engine only): undecided body literals,
	// false body literals, true head atoms, undecided head atoms. Duplicated
	// literals count per occurrence, exactly as the naive state scan does.
	und []int32
	bf  []int32
	ht  []int32
	hu  []int32
	// ruleQ is the propagation worklist; inRuleQ dedups membership.
	ruleQ   []int32
	inRuleQ []bool
	// source[a] is the rule currently supporting atom a (-1 = none yet).
	// srcQ holds atoms whose source died and must be repaired.
	source []int32
	srcQ   []int32
	inSrcQ []bool

	// order is the branching order: atoms sorted by descending activity
	// (occurrence count) for the counter engine, local index order for the
	// naive baseline. search resumes its scan cursor down the recursion.
	order []int32

	tab     *intern.Table
	certain []intern.AtomID
	// certainSorted and byID are built lazily on the first emitted model:
	// the certain set sorted by ID, and the local atom indices sorted by
	// their interned ID. Walking byID yields each model's true atoms
	// already ID-sorted, so emitting is two linear merges with no per-model
	// sort at all.
	certainSorted []intern.AtomID
	byID          []int32
	out           *Result

	// stable() scratch, reused across candidates (see stable.go).
	st stableScratch

	// cd is the conflict-driven engine state (cdnl.go); nil for the
	// worklist and naive engines, whose hot paths pay only a nil check.
	cd *cdnl
}

// init sizes the assignment, occurrence lists, and — for the counter
// engine — the counters, queues, source pointers, and branch order, seeding
// the worklists so the first propagate call establishes the initial fixpoint
// (rules that fire with an empty body, atoms with no possible support).
func (s *solver) init(n int) {
	s.assign = make([]int8, n)
	s.occHead = buildOcc(n, s.rules, func(r *irule) []int { return r.head })
	s.occPos = buildOcc(n, s.rules, func(r *irule) []int { return r.pos })
	s.occNeg = buildOcc(n, s.rules, func(r *irule) []int { return r.neg })
	s.order = make([]int32, n)
	for a := range s.order {
		s.order[a] = int32(a)
	}
	if s.naive {
		return
	}
	m := len(s.rules)
	s.und = make([]int32, m)
	s.bf = make([]int32, m)
	s.ht = make([]int32, m)
	s.hu = make([]int32, m)
	s.inRuleQ = make([]bool, m)
	for i := range s.rules {
		r := &s.rules[i]
		s.und[i] = int32(len(r.pos) + len(r.neg))
		s.hu[i] = int32(len(r.head))
	}
	s.source = make([]int32, n)
	s.inSrcQ = make([]bool, n)
	s.srcQ = make([]int32, 0, n)
	for a := n - 1; a >= 0; a-- {
		s.source[a] = -1
		s.inSrcQ[a] = true
		s.srcQ = append(s.srcQ, int32(a))
	}
	for i := range s.rules {
		s.bumpRule(int32(i))
	}
	// Activity order: atoms occurring in more rules first, ties by index.
	// Higher-occurrence atoms prune more of the search per decision, and a
	// fixed order keeps enumeration deterministic.
	act := make([]int32, n)
	for a := 0; a < n; a++ {
		act[a] = int32(len(s.occHead.of(a)) + len(s.occPos.of(a)) + len(s.occNeg.of(a)))
	}
	slices.SortStableFunc(s.order, func(x, y int32) int {
		if act[x] != act[y] {
			return int(act[y] - act[x])
		}
		return int(x - y)
	})
}

// set assigns a truth value, returns false on conflict with an existing
// assignment. In counter mode it also applies the counter deltas to every
// rule the atom occurs in and enqueues the rules and source repairs those
// deltas triggered.
func (s *solver) set(atom int, v int8) bool {
	cur := s.assign[atom]
	if cur != undef {
		if cur == v {
			return true
		}
		if s.cd != nil {
			s.cd.noteClashConflict(atom, v)
		}
		return false
	}
	s.assign[atom] = v
	s.trail = append(s.trail, int32(atom))
	if s.cd != nil {
		s.cd.onAssign(atom)
	}
	if !s.naive {
		s.applyDeltas(atom, v)
	}
	return true
}

// undoTo unwinds the trail to the given mark, reversing counter deltas.
// Source pointers are left alone (see the file comment: validity is
// monotone under retraction), and no queue entries are generated — the
// restored state was a propagation fixpoint already.
func (s *solver) undoTo(mark int) {
	for len(s.trail) > mark {
		a := int(s.trail[len(s.trail)-1])
		s.trail = s.trail[:len(s.trail)-1]
		v := s.assign[a]
		s.assign[a] = undef
		if s.cd != nil {
			s.cd.onUnassign(a, v)
		}
		if !s.naive {
			s.revertDeltas(a, v)
		}
	}
	if s.cd != nil {
		s.cd.onUndone()
	}
}

// applyDeltas updates the counters of every rule atom a occurs in after a
// was assigned v, enqueueing rules that crossed an inference threshold and
// atoms whose support source died.
func (s *solver) applyDeltas(a int, v int8) {
	if v == tru {
		for _, ri := range s.occPos.of(a) {
			s.und[ri]--
			s.bumpRule(ri)
		}
		for _, ri := range s.occNeg.of(a) {
			s.und[ri]--
			if s.bf[ri]++; s.bf[ri] == 1 {
				s.sourceDiedBody(ri)
			}
		}
		for _, ri := range s.occHead.of(a) {
			s.hu[ri]--
			s.ht[ri]++
			s.bumpRule(ri)
			if !s.rules[ri].choice {
				s.sourceDiedHead(ri, a)
			}
		}
	} else {
		for _, ri := range s.occPos.of(a) {
			s.und[ri]--
			if s.bf[ri]++; s.bf[ri] == 1 {
				s.sourceDiedBody(ri)
			}
		}
		for _, ri := range s.occNeg.of(a) {
			s.und[ri]--
			s.bumpRule(ri)
		}
		for _, ri := range s.occHead.of(a) {
			s.hu[ri]--
			s.bumpRule(ri)
		}
	}
}

// revertDeltas is the exact inverse of applyDeltas, without any queueing.
func (s *solver) revertDeltas(a int, v int8) {
	if v == tru {
		for _, ri := range s.occPos.of(a) {
			s.und[ri]++
		}
		for _, ri := range s.occNeg.of(a) {
			s.und[ri]++
			s.bf[ri]--
		}
		for _, ri := range s.occHead.of(a) {
			s.hu[ri]++
			s.ht[ri]--
		}
	} else {
		for _, ri := range s.occPos.of(a) {
			s.und[ri]++
			s.bf[ri]--
		}
		for _, ri := range s.occNeg.of(a) {
			s.und[ri]++
		}
		for _, ri := range s.occHead.of(a) {
			s.hu[ri]++
		}
	}
}

// triggered reports whether the rule's counters cross an inference
// threshold: for a choice rule a satisfied body (cardinality bounds become
// checkable), for a normal rule a satisfied body with at most one head
// undecided (forward firing or conflict) or a single undecided body literal
// with every head false (contraposition). Rules with a false body literal or
// (non-choice) a true head can infer nothing and are never enqueued.
func (s *solver) triggered(ri int32) bool {
	if s.bf[ri] > 0 {
		return false
	}
	r := &s.rules[ri]
	if r.choice {
		return s.und[ri] == 0
	}
	if s.ht[ri] > 0 {
		return false
	}
	return (s.und[ri] == 0 && s.hu[ri] <= 1) || (s.und[ri] == 1 && s.hu[ri] == 0)
}

// bumpRule enqueues a rule for examination when its counters trigger.
func (s *solver) bumpRule(ri int32) {
	if s.inRuleQ[ri] || !s.triggered(ri) {
		return
	}
	s.inRuleQ[ri] = true
	s.ruleQ = append(s.ruleQ, ri)
	s.out.Stats.QueuePushes++
}

// sourceDiedBody queues repairs for every head atom using ri as its support
// source, after ri's body acquired its first false literal.
func (s *solver) sourceDiedBody(ri int32) {
	if s.cd != nil {
		s.cd.markRuleDirty(ri)
	}
	for _, h := range s.rules[ri].head {
		if s.source[h] == ri {
			s.pushSrc(h)
		}
	}
}

// sourceDiedHead queues repairs for the other head atoms using ri as their
// source, after head atom newTrue became true (a non-choice rule supports an
// atom only while no other head atom is true).
func (s *solver) sourceDiedHead(ri int32, newTrue int) {
	for _, h := range s.rules[ri].head {
		if h != newTrue && s.source[h] == ri {
			s.pushSrc(h)
		}
	}
}

func (s *solver) pushSrc(a int) {
	if s.inSrcQ[a] {
		return
	}
	s.inSrcQ[a] = true
	s.srcQ = append(s.srcQ, int32(a))
}

// clearQueues empties both worklists (resetting membership flags) after a
// conflict: the caller is about to undo the trail back to a state that was
// already a fixpoint, so no pending work survives.
func (s *solver) clearQueues() {
	for _, ri := range s.ruleQ {
		s.inRuleQ[ri] = false
	}
	s.ruleQ = s.ruleQ[:0]
	for _, a := range s.srcQ {
		s.inSrcQ[a] = false
	}
	s.srcQ = s.srcQ[:0]
}

// propagate applies the propagation rules to a fixpoint. It returns false
// on conflict.
func (s *solver) propagate() bool {
	if s.naive {
		return s.propagateNaive()
	}
	for len(s.ruleQ) > 0 || len(s.srcQ) > 0 {
		// Rule inferences first: they are cheaper per pop and may spare a
		// repair scan by falsifying the atom outright.
		for len(s.ruleQ) > 0 {
			ri := s.ruleQ[len(s.ruleQ)-1]
			s.ruleQ = s.ruleQ[:len(s.ruleQ)-1]
			s.inRuleQ[ri] = false
			if !s.examine(ri) {
				s.clearQueues()
				return false
			}
		}
		for len(s.srcQ) > 0 && len(s.ruleQ) == 0 {
			a := int(s.srcQ[len(s.srcQ)-1])
			s.srcQ = s.srcQ[:len(s.srcQ)-1]
			s.inSrcQ[a] = false
			if !s.repairSource(a) {
				s.clearQueues()
				return false
			}
		}
	}
	return true
}

// examine applies the inference a rule's counters license. It returns false
// on conflict.
func (s *solver) examine(ri int32) bool {
	s.out.Stats.RuleVisits++
	if s.bf[ri] > 0 {
		return true // body already false: nothing to infer
	}
	r := &s.rules[ri]
	if r.choice {
		if s.und[ri] > 0 {
			return true
		}
		// Body holds: the cardinality bounds conflict — or pin the
		// undecided heads — exactly as in the naive propagator.
		ht, hu := int(s.ht[ri]), int(s.hu[ri])
		if r.hi >= 0 && ht > r.hi {
			if s.cd != nil {
				s.cd.noteChoiceConflict(ri, true)
			}
			return false
		}
		if r.lo > 0 && ht+hu < r.lo {
			if s.cd != nil {
				s.cd.noteChoiceConflict(ri, false)
			}
			return false
		}
		switch {
		case r.hi >= 0 && ht == r.hi && hu > 0:
			// Upper bound reached: remaining heads are false.
			if s.cd != nil {
				s.cd.pend(rkChoice, ri)
			}
			for _, h := range r.head {
				if s.assign[h] == undef {
					if !s.set(h, fls) {
						return false
					}
					s.out.Stats.Propagations++
				}
			}
		case r.lo > 0 && ht+hu == r.lo && hu > 0:
			// Lower bound tight: remaining heads are true.
			if s.cd != nil {
				s.cd.pend(rkChoice, ri)
			}
			for _, h := range r.head {
				if s.assign[h] == undef {
					if !s.set(h, tru) {
						return false
					}
					s.out.Stats.Propagations++
				}
			}
		}
		return true
	}
	if s.ht[ri] > 0 {
		return true // satisfied
	}
	switch {
	case s.und[ri] == 0 && s.hu[ri] == 0:
		// Constraint violated or all heads false.
		if s.cd != nil {
			s.cd.noteRuleConflict(ri)
		}
		return false
	case s.und[ri] == 0 && s.hu[ri] == 1:
		// Body holds and one head is left undecided: it must hold.
		if s.cd != nil {
			s.cd.pend(rkRule, ri)
		}
		for _, h := range r.head {
			if s.assign[h] == undef {
				if !s.set(h, tru) {
					return false
				}
				s.out.Stats.Propagations++
				break
			}
		}
	case s.und[ri] == 1 && s.hu[ri] == 0:
		// All heads false and the body is one literal away from firing:
		// falsify that literal (contraposition).
		if s.cd != nil {
			s.cd.pend(rkRule, ri)
		}
		for _, a := range r.pos {
			if s.assign[a] == undef {
				if !s.set(a, fls) {
					return false
				}
				s.out.Stats.Propagations++
				return true
			}
		}
		for _, a := range r.neg {
			if s.assign[a] == undef {
				// Falsifying the literal "not a" means making a true.
				if !s.set(a, tru) {
					return false
				}
				s.out.Stats.Propagations++
				return true
			}
		}
	}
	return true
}

// sourceValid reports whether rule ri can still support atom a: its body
// has no false literal and — unless it is a choice rule — no head atom
// other than a is true.
func (s *solver) sourceValid(a int, ri int32) bool {
	if ri < 0 || s.bf[ri] > 0 {
		return false
	}
	if s.rules[ri].choice {
		return true
	}
	ht := s.ht[ri]
	if s.assign[a] == tru {
		ht-- // a's own truth does not block its support
	}
	return ht == 0
}

// repairSource re-derives the support source of an atom whose source died.
// An atom with no candidate left must be false (true -> conflict).
func (s *solver) repairSource(a int) bool {
	if s.assign[a] == fls {
		return true
	}
	if s.sourceValid(a, s.source[a]) {
		return true
	}
	s.out.Stats.SourceRepairs++
	for _, ri := range s.occHead.of(a) {
		s.out.Stats.RuleVisits++
		if s.sourceValid(a, ri) {
			s.source[a] = ri
			return true
		}
	}
	if s.assign[a] == tru {
		if s.cd != nil {
			s.cd.noteSupportConflict(a)
		}
		return false
	}
	if s.cd != nil {
		s.cd.pend(rkSupport, int32(a))
	}
	if !s.set(a, fls) {
		return false
	}
	s.out.Stats.Propagations++
	return true
}

// search enumerates the answer sets. cursor is the resumable position in the
// branch order: every atom at an earlier position was already assigned when
// this level was entered and stays assigned throughout it, so each level
// resumes the scan where its parent stopped instead of restarting at 0.
func (s *solver) search(cursor int) {
	if s.opts.MaxModels > 0 && len(s.out.Models) >= s.opts.MaxModels {
		return
	}
	if !s.propagate() {
		return
	}
	branch := -1
	for cursor < len(s.order) {
		if s.assign[s.order[cursor]] == undef {
			branch = int(s.order[cursor])
			break
		}
		cursor++
	}
	if branch == -1 {
		s.out.Stats.StabilityChecks++
		if s.stable() {
			s.emitModel()
		}
		return
	}
	s.out.Stats.Choices++
	for _, v := range [2]int8{tru, fls} {
		if s.opts.MaxModels > 0 && len(s.out.Models) >= s.opts.MaxModels {
			return
		}
		mark := len(s.trail)
		if s.set(branch, v) {
			s.search(cursor + 1)
		}
		s.undoTo(mark)
	}
}

// emitModel materializes the current total assignment as an answer set:
// the certain atoms plus the residual atoms assigned true. The certain set
// is sorted once per solving run, and walking the ID-sorted local index
// (byID) yields the true residual atoms already sorted, so each of the
// enumerated models costs two linear merges — no per-model sort.
func (s *solver) emitModel() {
	if s.certainSorted == nil {
		s.certainSorted = make([]intern.AtomID, len(s.certain))
		copy(s.certainSorted, s.certain)
		slices.Sort(s.certainSorted)
		s.certainSorted = slices.Compact(s.certainSorted)
		s.byID = make([]int32, len(s.ids))
		for a := range s.byID {
			s.byID[a] = int32(a)
		}
		slices.SortFunc(s.byID, func(x, y int32) int {
			return int(s.ids[x]) - int(s.ids[y])
		})
	}
	cs := s.certainSorted
	ids := make([]intern.AtomID, 0, len(cs)+len(s.trail))
	i := 0
	for _, a := range s.byID {
		if s.assign[a] != tru {
			continue
		}
		id := s.ids[a]
		for i < len(cs) && cs[i] < id {
			ids = append(ids, cs[i])
			i++
		}
		if i < len(cs) && cs[i] == id {
			i++ // an atom both certain and residual-true appears once
		}
		ids = append(ids, id)
	}
	ids = append(ids, cs[i:]...)
	s.out.Models = append(s.out.Models, &AnswerSet{tab: s.tab, ids: ids})
}
