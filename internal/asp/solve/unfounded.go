// Unfounded-set detection: positive loops refuted during propagation.
//
// The worklist engine's source pointers catch atoms with no supporting rule
// at all, but an atom supported only through a positive cycle keeps a "valid"
// source and survives to the stability check, which then rejects the whole
// candidate — after the search has paid for completing it. This pass closes
// that gap for non-disjunctive programs: at each propagation fixpoint, every
// dirty strongly connected component of the positive dependency graph is
// checked for foundedness. An atom is founded when some rule with a non-false
// body supports it with all of its same-SCC positive body atoms founded;
// whatever remains non-false and unfounded is an unfounded set U and is
// falsified with materialized loop nogoods:
//
//	¬a  ∨  killer(r₁) ∨ … ∨ killer(rₖ)   for each a ∈ U,
//
// where r₁..rₖ are the external rules of U (head in U, positive body disjoint
// from U) and killer(rᵢ) is a currently-false body literal of rᵢ. Every
// external rule has one — if its body were non-false, its head would have
// been founded. The clause is entailed under stable-model semantics: a true
// atom of U needs a well-founded derivation, whose first rule outside U is
// external and has a satisfied body, contradicting every killer being false.
// (For disjunctive programs that argument breaks, so the engine skips this
// pass and verifies candidates with the reduct test instead.) The premises of
// a loop nogood are the completions of the atoms of U: as long as every atom
// of U keeps exactly the same head rules, the external-rule set and the
// killer correspondence are unchanged, so the clause may be carried across
// windows.
//
// Dirtiness is event-driven: a component is re-examined only after a rule
// with a head in it lost its body (bf 0→1, hooked in sourceDiedBody) —
// exactly the transition that can turn a founded atom unfounded. Backtracking
// needs no hook: retraction only un-falsifies bodies, which can only grow the
// founded set, and every restored state was itself checked at its fixpoint.
package solve

// buildSCCs computes the nontrivial strongly connected components of the
// positive dependency graph (edge head -> positive body atom, for every
// rule). A component is nontrivial when it has more than one atom or a
// self-loop. Trivial atoms keep sccID -1 and are fully handled by the
// source-pointer repair in propagate.go.
func (cd *cdnl) buildSCCs() {
	s := cd.s
	n := cd.n
	cd.sccID = make([]int32, n)
	for a := range cd.sccID {
		cd.sccID[a] = -1
	}
	// Iterative Tarjan.
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for a := range index {
		index[a] = unvisited
	}
	var stack []int32
	var next int32
	type frame struct {
		a  int32
		ri int // cursor into occHead.of(a)
		bi int // cursor into rule's pos list
	}
	var frames []frame
	selfLoop := make([]bool, n)
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames = append(frames[:0], frame{a: int32(root)})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, int32(root))
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			a := int(f.a)
			advanced := false
			heads := s.occHead.of(a)
			for f.ri < len(heads) {
				pos := s.rules[heads[f.ri]].pos
				if f.bi >= len(pos) {
					f.ri++
					f.bi = 0
					continue
				}
				b := pos[f.bi]
				f.bi++
				if b == a {
					selfLoop[a] = true
					continue
				}
				if index[b] == unvisited {
					index[b] = next
					low[b] = next
					next++
					stack = append(stack, int32(b))
					onStack[b] = true
					frames = append(frames, frame{a: int32(b)})
					advanced = true
					break
				}
				if onStack[b] && index[b] < low[a] {
					low[a] = index[b]
				}
			}
			if advanced {
				continue
			}
			// a is finished.
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := int(frames[len(frames)-1].a)
				if low[a] < low[p] {
					low[p] = low[a]
				}
			}
			if low[a] == index[a] {
				// Pop the component.
				start := len(stack)
				for stack[start-1] != int32(a) {
					start--
				}
				comp := stack[start-1:]
				if len(comp) > 1 || selfLoop[a] {
					id := int32(len(cd.sccAtoms))
					atoms := make([]int32, len(comp))
					copy(atoms, comp)
					cd.sccAtoms = append(cd.sccAtoms, atoms)
					for _, x := range comp {
						cd.sccID[x] = id
						onStack[x] = false
					}
				} else {
					onStack[a] = false
				}
				stack = stack[:start-1]
			}
		}
	}
	cd.sccDirty = make([]bool, len(cd.sccAtoms))
	cd.hasLoopHead = make([]bool, len(s.rules))
	for ri := range s.rules {
		for _, h := range s.rules[ri].head {
			if cd.sccID[h] >= 0 {
				cd.hasLoopHead[ri] = true
				break
			}
		}
	}
	// Every nontrivial component starts dirty: the initial fixpoint must
	// falsify loops with no external support at all.
	for i := range cd.sccAtoms {
		cd.sccDirty[i] = true
		cd.dirtyQ = append(cd.dirtyQ, int32(i))
	}
}

// unfoundedPass re-examines the dirty components. It falsifies unfounded
// atoms with loop-nogood reasons, returning progress=true when it assigned
// anything and ok=false on conflict (a true atom turned out unfounded).
func (cd *cdnl) unfoundedPass() (progress, ok bool) {
	for len(cd.dirtyQ) > 0 {
		scc := cd.dirtyQ[len(cd.dirtyQ)-1]
		cd.dirtyQ = cd.dirtyQ[:len(cd.dirtyQ)-1]
		cd.sccDirty[scc] = false
		p, o := cd.checkSCC(scc)
		progress = progress || p
		if !o {
			return progress, false
		}
		if p {
			// Falsifications may dirty other components (via the bf hooks);
			// the outer propagate loop re-enters before the next decision.
			return progress, true
		}
	}
	return progress, true
}

// checkSCC runs the founded fixpoint on one component and falsifies the
// unfounded remainder.
func (cd *cdnl) checkSCC(scc int32) (progress, ok bool) {
	s := cd.s
	atoms := cd.sccAtoms[scc]
	cd.fEpoch++
	ep := cd.fEpoch
	// Seed: rules whose body is non-false and whose in-SCC positive atoms
	// are all already founded (initially: none in-SCC, i.e. external).
	q := cd.uQ[:0]
	found := func(a int32) {
		if cd.fStamp[a] != ep && s.assign[a] != fls {
			cd.fStamp[a] = ep
			q = append(q, a)
		}
	}
	for _, a := range atoms {
		if s.assign[a] == fls {
			continue
		}
		// Stamp every candidate rule (no early break): a multi-head choice
		// rule reached through one head must stay usable for the others.
		for _, ri := range s.occHead.of(int(a)) {
			if s.bf[ri] > 0 {
				continue
			}
			if cd.rStamp[ri] != ep {
				cd.rStamp[ri] = ep
				var need int32
				for _, b := range s.rules[ri].pos {
					if cd.sccID[b] == scc {
						need++
					}
				}
				cd.needPos[ri] = need
			}
			if cd.needPos[ri] == 0 {
				found(a)
			}
		}
	}
	for len(q) > 0 {
		a := q[len(q)-1]
		q = q[:len(q)-1]
		for _, ri := range s.occPos.of(int(a)) {
			if s.bf[ri] > 0 || cd.rStamp[ri] != ep {
				continue
			}
			if cd.needPos[ri]--; cd.needPos[ri] > 0 {
				continue
			}
			for _, h := range s.rules[ri].head {
				if cd.sccID[h] == scc {
					found(int32(h))
				}
			}
		}
	}
	cd.uQ = q[:0]
	u := cd.uSet[:0]
	for _, a := range atoms {
		if s.assign[a] != fls && cd.fStamp[a] != ep {
			u = append(u, a)
		}
	}
	cd.uSet = u
	if len(u) == 0 {
		return false, true
	}
	// Killer tail: one false body literal per external rule of U.
	cd.fEpoch++
	ep2 := cd.fEpoch
	tail := cd.tail[:0]
	inU := func(b int) bool {
		return cd.sccID[b] == scc && s.assign[b] != fls && cd.fStamp[b] != ep
	}
	for _, a := range u {
		for _, ri := range s.occHead.of(int(a)) {
			if cd.rStamp[ri] == ep2 {
				continue
			}
			cd.rStamp[ri] = ep2
			internal := false
			for _, b := range s.rules[ri].pos {
				if inU(b) {
					internal = true
					break
				}
			}
			if internal {
				continue
			}
			before := len(tail)
			tail = cd.appendKiller(ri, -1, int32(len(s.trail)), tail)
			if len(tail) == before {
				// No witness for a dead support: a broken invariant.
				// Disable the loop machinery for this run and let the
				// reduct test carry correctness instead of risking an
				// unsound clause.
				cd.disableLoops()
				return false, true
			}
		}
	}
	cd.tail = tail
	progress = true
	for _, a := range u {
		lits := make([]int32, 0, 1+len(tail))
		lits = append(lits, mkLit(int(a), false))
		lits = append(lits, tail...)
		// Watch order: slot 1 holds the deepest-level killer so the watch
		// pair straddles any future backjump.
		for i := 2; i < len(lits); i++ {
			if cd.level[litAtom(lits[i])] > cd.level[litAtom(lits[1])] {
				lits[1], lits[i] = lits[i], lits[1]
			}
		}
		cd.prem.reset()
		for _, x := range u {
			cd.prem.addComp(x)
		}
		ci := cd.addClauseFromScratch(lits, fLoop)
		s.out.Stats.LoopNogoods++
		if s.assign[a] == tru {
			cd.noteClauseConflict(ci)
			return progress, false
		}
		cd.imply(mkLit(int(a), false), rkClause, ci)
	}
	return progress, true
}

// disableLoops turns off unfounded detection for the rest of the run after a
// broken invariant, falling back to per-candidate reduct tests.
func (cd *cdnl) disableLoops() {
	cd.checkStability = true
	cd.sccID = nil
	cd.dirtyQ = nil
}
