package solve

import (
	"testing"

	"streamrule/internal/asp/ast"
	"streamrule/internal/asp/intern"
)

// defaultSizes snapshots the entry counts of the process-wide default table.
func defaultSizes() (syms, preds, terms, atoms int) {
	st := intern.Default().Stats()
	return st.Syms, st.Preds, st.Terms, st.Atoms
}

func atom(pred string, args ...string) ast.Atom {
	a := ast.Atom{Pred: pred}
	for _, s := range args {
		a.Args = append(a.Args, ast.Term{Kind: ast.SymbolTerm, Sym: s})
	}
	return a
}

// TestCrossTableUnionAvoidsDefaultTable is the regression test for the
// NewAnswerSet leak: unioning answer sets that live on two different private
// tables (the multi-tenant aggregation shape) must materialize into the
// receiver's table, never into the shared, rotation-refusing default table.
func TestCrossTableUnionAvoidsDefaultTable(t *testing.T) {
	tabA, tabB := intern.NewTable(), intern.NewTable()
	a := FromIDs(tabA, []intern.AtomID{tabA.InternAtom(atom("tenant_a_pred", "tenant_a_const_1"))})
	b := FromIDs(tabB, []intern.AtomID{tabB.InternAtom(atom("tenant_b_pred", "tenant_b_const_1"))})

	s0, p0, t0, a0 := defaultSizes()
	u := a.Union(b)
	s1, p1, t1, a1 := defaultSizes()

	if s1 != s0 || p1 != p0 || t1 != t0 || a1 != a0 {
		t.Fatalf("cross-table Union grew the default table: syms %d->%d preds %d->%d terms %d->%d atoms %d->%d",
			s0, s1, p0, p1, t0, t1, a0, a1)
	}
	if u.Table() != tabA {
		t.Fatalf("cross-table Union landed on table %p, want the receiver's %p", u.Table(), tabA)
	}
	if u.Len() != 2 {
		t.Fatalf("union has %d atoms, want 2", u.Len())
	}
	for _, k := range []string{"tenant_a_pred(tenant_a_const_1)", "tenant_b_pred(tenant_b_const_1)"} {
		if !u.Contains(k) {
			t.Fatalf("union %v missing %s", u.Keys(), k)
		}
	}
}

// TestIdFormPrefersProgramTable is the regression test for the idForm leak:
// solving a ground program whose ID form is incomplete but which carries its
// own table must intern the missing IDs into THAT table, not the default.
func TestIdFormPrefersProgramTable(t *testing.T) {
	tab := intern.NewTable()
	gp := groundSrc(t, "p :- not q.\nq :- not p.")
	// Strip the ID form but keep a private table: idForm must rebuild the
	// IDs into gp.Table.
	gp.RuleIDs = nil
	gp.CertainIDs = nil
	gp.Table = tab

	s0, p0, t0, a0 := defaultSizes()
	res, err := Solve(gp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s1, p1, t1, a1 := defaultSizes()
	if s1 != s0 || p1 != p0 || t1 != t0 || a1 != a0 {
		t.Fatalf("idForm interned into the default table: syms %d->%d preds %d->%d terms %d->%d atoms %d->%d",
			s0, s1, p0, p1, t0, t1, a0, a1)
	}
	if len(res.Models) != 2 {
		t.Fatalf("got %d models, want 2", len(res.Models))
	}
	for _, m := range res.Models {
		if m.Table() != tab {
			t.Fatalf("model landed on table %p, want the program's %p", m.Table(), tab)
		}
	}
	if tab.NumAtoms() == 0 {
		t.Fatal("program table gained no atoms; idForm interned elsewhere")
	}
}

// TestIdFormDefaultOnlyForTablelessPrograms pins the remaining (intentional)
// default-table path: a hand-constructed program without any table still
// solves, interning into the default.
func TestIdFormDefaultOnlyForTablelessPrograms(t *testing.T) {
	gp := groundSrc(t, "p :- not q.\nq :- not p.")
	gp.RuleIDs = nil
	gp.CertainIDs = nil
	gp.Table = nil
	res, err := Solve(gp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) != 2 {
		t.Fatalf("got %d models, want 2", len(res.Models))
	}
	for _, m := range res.Models {
		if m.Table() != intern.Default() {
			t.Fatal("table-less program did not solve on the default table")
		}
	}
}
