// Learned-clause DB and cross-window carry.
//
// In-window, clauses (learned, loop, blocking) propagate by the standard
// two-watched-literal scheme — no counters to maintain, nothing to undo on
// backjump — and the learned portion is kept in check by activity-based
// forgetting with size/LBD caps, exactly the lifecycle modern CDCL solvers
// use. Reasons currently on the trail and permanent clauses (blocking, loop)
// are never deleted.
//
// Across windows, a clause survives through CarryState iff its premises
// survive. Every learned clause records which parts of the program its
// derivation relied on, in two forms: rule premises ("this exact ground rule
// exists") and completion premises ("this atom has exactly this set of head
// rules" — what support-based and loop inferences depend on, since a new
// rule for the atom would add a support alternative the clause never
// considered). Premises are stored structurally over interned atom IDs, so
// the PR 3 rotation remap rewrites them in place and drops clauses touching
// evicted atoms. At the next window, SolveCarry re-keys the current ground
// rules and replays exactly the clauses whose premises still hold —
// Stats.ReusedClauses counts them. Clauses whose derivation involved a
// blocking clause (enumeration state, not program consequences) are tainted
// and never carried.
package solve

import (
	"encoding/binary"
	"slices"
	"sort"

	"streamrule/internal/asp/ground"
	"streamrule/internal/asp/intern"
)

// clause flags.
const (
	fLearned  uint8 = 1 << iota // removable, counts against maxLearned
	fLoop                       // loop nogood from unfounded detection
	fBlocking                   // enumeration blocking clause
	fTaint                      // derivation touched enumeration state: never carried
	fDead                       // logically deleted, dropped lazily from watch lists
)

// clause is one stored clause over local literals. premRules and premComps
// are local rule and atom indices — the premises its validity depends on.
type clause struct {
	lits      []int32
	act       float64
	lbd       int32
	flags     uint8
	premRules []int32
	premComps []int32
}

// premScratch accumulates the premises of one derivation with O(1) dedup.
type premScratch struct {
	rules    []int32
	ruleSeen []bool
	comps    []int32
	compSeen []bool
	taint    bool
}

// premCap bounds per-clause premise tracking: a derivation that touched more
// of the program than this is simply not carried (tainted), rather than
// hauling an unbounded premise list around.
const premCap = 48

func (p *premScratch) init(nRules, nAtoms int) {
	p.ruleSeen = make([]bool, nRules)
	p.compSeen = make([]bool, nAtoms)
}

func (p *premScratch) reset() {
	for _, r := range p.rules {
		p.ruleSeen[r] = false
	}
	for _, c := range p.comps {
		p.compSeen[c] = false
	}
	p.rules = p.rules[:0]
	p.comps = p.comps[:0]
	p.taint = false
}

func (p *premScratch) addRule(ri int32) {
	if !p.ruleSeen[ri] {
		p.ruleSeen[ri] = true
		p.rules = append(p.rules, ri)
	}
}

func (p *premScratch) addComp(a int32) {
	if !p.compSeen[a] {
		p.compSeen[a] = true
		p.comps = append(p.comps, a)
	}
}

func (p *premScratch) addClausePrem(c *clause) {
	if c.flags&fTaint != 0 {
		p.taint = true
	}
	for _, r := range c.premRules {
		p.addRule(r)
	}
	for _, a := range c.premComps {
		p.addComp(a)
	}
}

// addClauseFromScratch stores a clause whose premises sit in cd.prem,
// attaching watches on lits[0] and lits[1] (callers order lits[1] to be the
// deepest-level non-asserting literal). Length-1 clauses get no watches; the
// caller asserts them directly.
func (cd *cdnl) addClauseFromScratch(lits []int32, flags uint8) int32 {
	c := clause{
		lits:  slices.Clone(lits),
		act:   cd.claInc,
		lbd:   cd.computeLBD(lits),
		flags: flags,
	}
	if cd.prem.taint {
		c.flags |= fTaint
	}
	if len(cd.prem.rules)+len(cd.prem.comps) > premCap {
		c.flags |= fTaint
	} else if c.flags&fTaint == 0 {
		c.premRules = slices.Clone(cd.prem.rules)
		c.premComps = slices.Clone(cd.prem.comps)
	}
	ci := int32(len(cd.db))
	cd.db = append(cd.db, c)
	if len(c.lits) >= 2 {
		cd.watch[c.lits[0]] = append(cd.watch[c.lits[0]], ci)
		cd.watch[c.lits[1]] = append(cd.watch[c.lits[1]], ci)
	}
	return ci
}

func (cd *cdnl) bumpCla(ci int32) {
	c := &cd.db[ci]
	if c.flags&fLearned == 0 {
		return
	}
	c.act += cd.claInc
	if c.act > 1e20 {
		for i := range cd.db {
			cd.db[i].act *= 1e-20
		}
		cd.claInc *= 1e-20
	}
}

// locked reports whether the clause is the reason of a current assignment.
func (cd *cdnl) locked(ci int32) bool {
	c := &cd.db[ci]
	if len(c.lits) == 0 {
		return false
	}
	a := litAtom(c.lits[0])
	return cd.litTrue(c.lits[0]) && cd.reasonK[a] == rkClause && cd.reasonI[a] == ci
}

// reduceDB forgets the less active half of the removable learned clauses
// (never locked ones, never glue clauses with LBD <= 2), then raises the cap.
func (cd *cdnl) reduceDB() {
	var live []int32
	for ci := range cd.db {
		c := &cd.db[ci]
		if c.flags&fLearned != 0 && c.flags&fDead == 0 {
			live = append(live, int32(ci))
		}
	}
	sort.Slice(live, func(i, j int) bool {
		return cd.db[live[i]].act < cd.db[live[j]].act
	})
	for _, ci := range live[:len(live)/2] {
		c := &cd.db[ci]
		if c.lbd <= 2 || cd.locked(ci) {
			continue
		}
		c.flags |= fDead
		c.lits = nil
		c.premRules, c.premComps = nil, nil
		cd.learnedLive--
	}
	cd.maxLearned += cd.maxLearned / 2
}

// propWatches catches clause propagation up to the trail head. It returns
// false on conflict (recorded via noteClauseConflict).
func (cd *cdnl) propWatches() bool {
	s := cd.s
	for cd.qhead < len(s.trail) {
		a := int(s.trail[cd.qhead])
		cd.qhead++
		// The literal that just became false.
		fl := mkLit(a, s.assign[a] != tru)
		ws := cd.watch[fl]
		j := 0
		for i := 0; i < len(ws); i++ {
			ci := ws[i]
			c := &cd.db[ci]
			if c.flags&fDead != 0 {
				continue // dropped lazily
			}
			if c.lits[0] == fl {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			if cd.litTrue(c.lits[0]) {
				ws[j] = ci
				j++
				continue
			}
			moved := false
			for k := 2; k < len(c.lits); k++ {
				if !cd.litFalse(c.lits[k]) {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					cd.watch[c.lits[1]] = append(cd.watch[c.lits[1]], ci)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			// Unit or conflict: keep watching fl either way.
			ws[j] = ci
			j++
			if cd.litFalse(c.lits[0]) {
				for i++; i < len(ws); i++ {
					ws[j] = ws[i]
					j++
				}
				cd.watch[fl] = ws[:j]
				cd.noteClauseConflict(ci)
				return false
			}
			cd.imply(c.lits[0], rkClause, ci)
		}
		cd.watch[fl] = ws[:j]
	}
	return true
}

// --- cross-window carry -----------------------------------------------------

// premRule is a structural copy of one ground rule in interned-atom space,
// canonically sorted so equal rules serialize to equal keys.
type premRule struct {
	choice         bool
	lo, hi         int
	head, pos, neg []intern.AtomID
}

// carriedClause is one clause in carry form: literals and premises over
// interned atom IDs.
type carriedClause struct {
	lits      []carryLit
	act       float64
	lbd       int32
	loop      bool
	premRules []int32    // CarryState.pool indices: these rules must exist
	premComps []compPrem // these atoms must keep exactly these head rules
}

type carryLit struct {
	atom intern.AtomID
	pos  bool
}

type compPrem struct {
	atom  intern.AtomID
	rules []int32 // CarryState.pool indices
}

// CarryState holds solver state that survives between windows: carried
// clauses with their premises, and branching activity per atom. The zero
// value is ready to use. A CarryState belongs to one solving sequence (one
// reasoner); it must not be shared across concurrent solves.
type CarryState struct {
	pool    []premRule
	clauses []carriedClause
	act     map[intern.AtomID]float64
}

// Reset drops all carried state — used after a fallback or reseed, when the
// continuity the premises assume is gone anyway.
func (cs *CarryState) Reset() { *cs = CarryState{} }

// Clauses reports how many clauses are currently carried.
func (cs *CarryState) Clauses() int { return len(cs.clauses) }

// Remap rewrites the carried state through a table rotation's remap,
// dropping clauses that reference evicted atoms (their premises or literals
// no longer exist).
func (cs *CarryState) Remap(rm *intern.Remap) {
	poolDead := make([]bool, len(cs.pool))
	for i := range cs.pool {
		p := &cs.pool[i]
		for _, list := range [][]intern.AtomID{p.head, p.pos, p.neg} {
			for j, id := range list {
				nid, ok := rm.Atom(id)
				if !ok {
					poolDead[i] = true
					break
				}
				list[j] = nid
			}
			if poolDead[i] {
				break
			}
		}
	}
	kept := cs.clauses[:0]
clauses:
	for _, c := range cs.clauses {
		for i, l := range c.lits {
			nid, ok := rm.Atom(l.atom)
			if !ok {
				continue clauses
			}
			c.lits[i].atom = nid
		}
		for _, pi := range c.premRules {
			if poolDead[pi] {
				continue clauses
			}
		}
		for i := range c.premComps {
			cp := &c.premComps[i]
			nid, ok := rm.Atom(cp.atom)
			if !ok {
				continue clauses
			}
			cp.atom = nid
			for _, pi := range cp.rules {
				if poolDead[pi] {
					continue clauses
				}
			}
		}
		kept = append(kept, c)
	}
	cs.clauses = kept
	if cs.act != nil {
		act := make(map[intern.AtomID]float64, len(cs.act))
		for id, v := range cs.act {
			if nid, ok := rm.Atom(id); ok {
				act[nid] = v
			}
		}
		cs.act = act
	}
}

// ruleKeyOf serializes a premRule canonically (sorted atom lists; choice
// heads keep multiplicity because cardinality bounds count occurrences).
func ruleKeyOf(p *premRule, buf []byte) ([]byte, string) {
	buf = buf[:0]
	if p.choice {
		buf = append(buf, 1)
		buf = binary.AppendVarint(buf, int64(p.lo))
		buf = binary.AppendVarint(buf, int64(p.hi))
	} else {
		buf = append(buf, 0)
	}
	app := func(ids []intern.AtomID) {
		buf = binary.AppendUvarint(buf, uint64(len(ids)))
		for _, id := range ids {
			buf = binary.AppendUvarint(buf, uint64(id))
		}
	}
	app(p.head)
	app(p.pos)
	app(p.neg)
	return buf, string(buf)
}

// canonIDs sorts (and, unless keepDup, dedups) an atom-ID list in place.
func canonIDs(ids []intern.AtomID, keepDup bool) []intern.AtomID {
	slices.Sort(ids)
	if !keepDup {
		ids = slices.Compact(ids)
	}
	return ids
}

// premOfIRule builds the canonical premRule of a ground rule.
func premOfIRule(r *ground.IRule) premRule {
	p := premRule{choice: r.Choice, lo: r.Lower, hi: r.Upper}
	p.head = canonIDs(slices.Clone(r.Head), r.Choice)
	p.pos = canonIDs(slices.Clone(r.Pos), false)
	p.neg = canonIDs(slices.Clone(r.Neg), false)
	return p
}

// premOfLocalRule builds the canonical premRule of a local solver rule.
func (cd *cdnl) premOfLocalRule(ri int32) premRule {
	r := &cd.s.rules[ri]
	conv := func(l []int) []intern.AtomID {
		out := make([]intern.AtomID, len(l))
		for i, a := range l {
			out[i] = cd.s.ids[a]
		}
		return out
	}
	p := premRule{choice: r.choice, lo: r.lo, hi: r.hi}
	p.head = canonIDs(conv(r.head), r.choice)
	p.pos = canonIDs(conv(r.pos), false)
	p.neg = canonIDs(conv(r.neg), false)
	return p
}

// prepare wires the engine for one window: stability mode, SCCs, decision
// activity (seeded from occurrence counts, overridden by carried activity),
// and the replay of carried clauses whose premises still hold.
func (cd *cdnl) prepare(carry *CarryState, ruleIDs []ground.IRule, local []int32) {
	s := cd.s
	cd.localOf = local
	for i := range s.rules {
		r := &s.rules[i]
		if !r.choice && len(r.head) > 1 {
			cd.checkStability = true
			break
		}
	}
	if !cd.checkStability {
		cd.buildSCCs()
	}
	// Base activity mirrors the worklist branch order (occurrence count) at
	// a scale carried activity dominates.
	for a := 0; a < cd.n; a++ {
		occ := len(s.occHead.of(a)) + len(s.occPos.of(a)) + len(s.occNeg.of(a))
		cd.act[a] = float64(occ) * 1e-9
	}
	if carry != nil && carry.act != nil {
		for id, v := range carry.act {
			if int(id) < len(local) && local[id] >= 0 {
				cd.act[local[id]] += v
			}
		}
	}
	for a := 0; a < cd.n; a++ {
		cd.heapPush(int32(a))
	}
	if carry != nil && len(carry.clauses) > 0 {
		cd.carryIn(carry)
	}
}

// carryIn replays carried clauses whose premises survive into this window.
func (cd *cdnl) carryIn(cs *CarryState) {
	s := cd.s
	// Key every current rule; remember one local index per key for premise
	// re-grounding.
	keyToRule := make(map[string]int32, len(s.rules))
	var kb []byte
	for ri := range s.rules {
		p := cd.premOfLocalRule(int32(ri))
		var key string
		kb, key = ruleKeyOf(&p, kb)
		if _, ok := keyToRule[key]; !ok {
			keyToRule[key] = int32(ri)
		}
	}
	poolKey := make([]string, len(cs.pool))
	for i := range cs.pool {
		var key string
		kb, key = ruleKeyOf(&cs.pool[i], kb)
		poolKey[i] = key
	}
	// Current head-rule digest per local atom, built lazily: the sorted key
	// multiset of the atom's head rules.
	headDigest := make(map[int32]string)
	digestOf := func(a int32) string {
		if d, ok := headDigest[a]; ok {
			return d
		}
		keys := make([]string, 0, 4)
		for _, ri := range s.occHead.of(int(a)) {
			p := cd.premOfLocalRule(ri)
			var key string
			kb, key = ruleKeyOf(&p, kb)
			keys = append(keys, key)
		}
		sort.Strings(keys)
		d := ""
		for _, k := range keys {
			d += k
		}
		headDigest[a] = d
		return d
	}
	poolDigest := func(pis []int32) (string, bool) {
		keys := make([]string, 0, len(pis))
		for _, pi := range pis {
			if _, ok := keyToRule[poolKey[pi]]; !ok {
				return "", false
			}
			keys = append(keys, poolKey[pi])
		}
		sort.Strings(keys)
		d := ""
		for _, k := range keys {
			d += k
		}
		return d, true
	}
	local := cd.localOf
clauses:
	for i := range cs.clauses {
		c := &cs.clauses[i]
		cd.prem.reset()
		for _, pi := range c.premRules {
			ri, ok := keyToRule[poolKey[pi]]
			if !ok {
				continue clauses
			}
			cd.prem.addRule(ri)
		}
		for _, cp := range c.premComps {
			if int(cp.atom) >= len(local) || local[cp.atom] < 0 {
				continue clauses
			}
			la := local[cp.atom]
			want, ok := poolDigest(cp.rules)
			if !ok || want != digestOf(la) {
				continue clauses
			}
			cd.prem.addComp(la)
		}
		lits := make([]int32, 0, len(c.lits))
		for _, l := range c.lits {
			if int(l.atom) >= len(local) || local[l.atom] < 0 {
				continue clauses
			}
			lits = append(lits, mkLit(int(local[l.atom]), l.pos))
		}
		flags := fLearned
		if c.loop {
			flags = fLoop
		}
		ci := cd.addClauseFromScratch(lits, flags)
		cd.db[ci].act = c.act
		cd.db[ci].lbd = c.lbd
		if flags&fLearned != 0 {
			cd.learnedLive++
		}
		if len(lits) == 1 {
			cd.units = append(cd.units, ci)
		}
		s.out.Stats.ReusedClauses++
	}
}

// Carry caps: clauses longer or weaker than this are cheaper to relearn than
// to haul across windows.
const (
	carryMaxLen     = 32
	carryMaxLBD     = 8
	carryMaxClauses = 2000
)

// carryOut rebuilds the CarryState from this window's surviving clauses and
// activity.
func (cd *cdnl) carryOut(cs *CarryState) {
	s := cd.s
	type cand struct {
		ci  int32
		act float64
	}
	var cands []cand
	for ci := range cd.db {
		c := &cd.db[ci]
		if c.flags&(fDead|fTaint|fBlocking) != 0 {
			continue
		}
		if c.flags&(fLearned|fLoop) == 0 {
			continue
		}
		if len(c.lits) > carryMaxLen || len(c.lits) == 0 {
			continue
		}
		if c.flags&fLoop == 0 && c.lbd > carryMaxLBD {
			continue
		}
		cands = append(cands, cand{int32(ci), c.act})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].act > cands[j].act })
	if len(cands) > carryMaxClauses {
		cands = cands[:carryMaxClauses]
	}
	var pool []premRule
	poolIdx := make(map[string]int32)
	var kb []byte
	intoPool := func(ri int32) int32 {
		p := cd.premOfLocalRule(ri)
		var key string
		kb, key = ruleKeyOf(&p, kb)
		if i, ok := poolIdx[key]; ok {
			return i
		}
		i := int32(len(pool))
		pool = append(pool, p)
		poolIdx[key] = i
		return i
	}
	clauses := make([]carriedClause, 0, len(cands))
	for _, cn := range cands {
		c := &cd.db[cn.ci]
		cc := carriedClause{
			act:  c.act,
			lbd:  c.lbd,
			loop: c.flags&fLoop != 0,
		}
		cc.lits = make([]carryLit, len(c.lits))
		for i, l := range c.lits {
			cc.lits[i] = carryLit{atom: s.ids[litAtom(l)], pos: litPos(l)}
		}
		for _, ri := range c.premRules {
			cc.premRules = append(cc.premRules, intoPool(ri))
		}
		for _, la := range c.premComps {
			cp := compPrem{atom: s.ids[la]}
			for _, ri := range s.occHead.of(int(la)) {
				cp.rules = append(cp.rules, intoPool(ri))
			}
			cc.premComps = append(cc.premComps, cp)
		}
		clauses = append(clauses, cc)
	}
	act := make(map[intern.AtomID]float64, cd.n)
	inv := 1 / cd.varInc
	for a := 0; a < cd.n; a++ {
		if v := cd.act[a] * inv; v > 1e-12 {
			act[s.ids[a]] = v
		}
	}
	cs.pool = pool
	cs.clauses = clauses
	cs.act = act
}
