package solve

// A table-driven corpus of small programs with their exact answer sets,
// exercising the full parser -> grounder -> solver path across the language:
// negation, recursion, constraints, disjunction, choice, aggregates,
// intervals, arithmetic, strings, and function terms.

import (
	"sort"
	"strings"
	"testing"
)

func TestCorpus(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string // each entry "a b c" = one answer set's sorted atoms
	}{
		{
			name: "facts only",
			src:  "p(1). p(2). q(a).",
			want: []string{"p(1) p(2) q(a)"},
		},
		{
			name: "stratified negation",
			src:  "p(1..3). q(2). r(X) :- p(X), not q(X).",
			want: []string{"p(1) p(2) p(3) q(2) r(1) r(3)"},
		},
		{
			name: "transitive closure with cycle",
			src: `edge(a,b). edge(b,c). edge(c,a).
reach(X,Y) :- edge(X,Y).
reach(X,Z) :- reach(X,Y), edge(Y,Z).`,
			want: []string{"edge(a,b) edge(b,c) edge(c,a) reach(a,a) reach(a,b) reach(a,c) reach(b,a) reach(b,b) reach(b,c) reach(c,a) reach(c,b) reach(c,c)"},
		},
		{
			name: "even loop with constraint",
			src:  "a :- not b. b :- not a. :- b.",
			want: []string{"a"},
		},
		{
			name: "disjunction minimality",
			src:  "a | b | c.",
			want: []string{"a", "b", "c"},
		},
		{
			name: "disjunction with constraint",
			src:  "a | b. :- a.",
			want: []string{"b"},
		},
		{
			name: "choice with implication",
			src:  "{ a }. b :- a. :- b, not a.",
			want: []string{"", "a b"},
		},
		{
			name: "arithmetic chain",
			src:  "n(1). n(X + 1) :- n(X), X < 4. sq(X, X * X) :- n(X).",
			want: []string{"n(1) n(2) n(3) n(4) sq(1,1) sq(2,4) sq(3,9) sq(4,16)"},
		},
		{
			name: "aggregate count guard",
			src: `v(1..5).
big :- #count{ X : v(X) } >= 5.
small :- #count{ X : v(X) } < 5.`,
			want: []string{"big v(1) v(2) v(3) v(4) v(5)"},
		},
		{
			name: "aggregate sum assignment",
			src:  "w(a, 2). w(b, 3). t(S) :- S = #sum{ V, K : w(K, V) }.",
			want: []string{"t(5) w(a,2) w(b,3)"},
		},
		{
			name: "function terms",
			src:  "p(f(1)). p(f(2)). q(X) :- p(f(X)), X > 1.",
			want: []string{"p(f(1)) p(f(2)) q(2)"},
		},
		{
			name: "strings",
			src:  `tag(a, "x y"). tagged(N) :- tag(N, S), S != "".`,
			want: []string{`tag(a,"x y") tagged(a)`},
		},
		{
			name: "negative numbers",
			src:  "t(-3). t(4). pos(X) :- t(X), X > 0.",
			want: []string{"pos(4) t(-3) t(4)"},
		},
		{
			name: "symbol comparison",
			src:  "s(apple). s(pear). first(X) :- s(X), X < pear.",
			want: []string{"first(apple) s(apple) s(pear)"},
		},
		{
			name: "choice bounded by body",
			src:  "go. 1 { x ; y } 1 :- go.",
			want: []string{"go x", "go y"},
		},
		{
			name: "unsatisfiable",
			src:  "a :- not a.",
			want: nil,
		},
		{
			name: "empty program",
			src:  "",
			want: []string{""},
		},
		{
			name: "modulo and division",
			src:  "n(1..6). third(X) :- n(X), X \\ 3 = 0. half(X, X / 2) :- n(X).",
			want: []string{"half(1,0) half(2,1) half(3,1) half(4,2) half(5,2) half(6,3) n(1) n(2) n(3) n(4) n(5) n(6) third(3) third(6)"},
		},
		{
			name: "interval in head driven by body",
			src:  "k(2). span(1..X) :- k(X).",
			want: []string{"k(2) span(1) span(2)"},
		},
		{
			name: "double negation stratified",
			src:  "p. q :- not r. r :- not p.",
			want: []string{"p q"},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			gp := groundSrc(t, c.src)
			res, err := Solve(gp, Options{})
			if err != nil {
				t.Fatal(err)
			}
			var got []string
			for _, m := range res.Models {
				got = append(got, strings.Join(m.Keys(), " "))
			}
			sort.Strings(got)
			want := append([]string(nil), c.want...)
			sort.Strings(want)
			if len(got) != len(want) {
				t.Fatalf("got %d answer sets %q, want %d %q", len(got), got, len(want), want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("answer set %d = %q, want %q", i, got[i], want[i])
				}
			}
		})
	}
}
