// Conflict-driven nogood learning (CDNL): the third solving engine.
//
// The worklist engine (propagate.go) backtracks chronologically and rediscovers
// the same dead ends in every branch; positive loops survive propagation and
// are only refuted by the reduct test after a full candidate has been built.
// The engine here is the classic CDCL loop adapted to answer-set semantics:
//
//   - every implication records a reason (the rule, cardinality bound, support
//     condition, or clause that forced it) and the decision level it was made
//     at;
//   - a conflict is resolved by 1UIP resolution over the trail (conflict.go),
//     yielding an asserting clause and a non-chronological backjump level;
//   - decisions follow VSIDS-style activity (bumped during analysis, decayed
//     per conflict) instead of the static occurrence-count order;
//   - at each propagation fixpoint, source-pointer based unfounded-set
//     detection (unfounded.go) falsifies positive loops and materializes the
//     corresponding loop nogoods, so non-disjunctive candidates are stable by
//     construction and skip the reduct test entirely;
//   - learned clauses live in a managed DB (clausedb.go) with activity-based
//     forgetting and size/LBD caps, and — through CarryState — survive into
//     the next overlapping window when the ground rules their derivations
//     relied on are still present.
//
// Enumeration uses blocking clauses over decision literals: after each total
// assignment the negation of its decisions is added as a permanent (but
// non-carriable) clause and handled like a conflict, which walks the search
// through every candidate exactly once without restarts. Clauses whose
// derivation involved a blocking clause are tainted: they are sound for the
// remainder of the current enumeration (they only exclude already-visited
// candidates) but are never carried to the next window.
package solve

// Reason kinds recorded per implied atom for conflict analysis.
const (
	rkNone     uint8 = iota
	rkDecision       // branching decision, no antecedents
	rkRule           // pi = rule index: forward firing or contraposition
	rkChoice         // pi = rule index: cardinality-bound propagation
	rkSupport        // pi = atom index: no rule can support the atom
	rkClause         // pi = clause index: unit propagation on a clause
)

// lit encodes a literal over local atom indices: atom<<1 | 1 for "atom is
// true", atom<<1 for "atom is false".
func mkLit(a int, pos bool) int32 {
	l := int32(a) << 1
	if pos {
		l |= 1
	}
	return l
}

func litAtom(l int32) int  { return int(l >> 1) }
func litPos(l int32) bool  { return l&1 == 1 }
func litNeg(l int32) int32 { return l ^ 1 }

// litFalse reports whether the literal is false under the current assignment.
func (cd *cdnl) litFalse(l int32) bool {
	v := cd.s.assign[litAtom(l)]
	if litPos(l) {
		return v == fls
	}
	return v == tru
}

// litTrue reports whether the literal is true under the current assignment.
func (cd *cdnl) litTrue(l int32) bool {
	v := cd.s.assign[litAtom(l)]
	if litPos(l) {
		return v == tru
	}
	return v == fls
}

// cdnl is the conflict-driven engine state, attached to a solver when
// Options.CDNL is set.
type cdnl struct {
	s *solver
	n int

	// Per-atom assignment metadata.
	level   []int32 // decision level of the assignment
	reasonK []uint8 // reason kind
	reasonI []int32 // reason payload (rule/atom/clause index)
	posIn   []int32 // trail position of the assignment

	trailLim []int32 // trail length at each decision
	qhead    int     // clause-propagation cursor into the trail

	// Pending reason, consumed by onAssign at the next solver.set.
	pk uint8
	pi int32

	// Conflict description, filled by the note* helpers at detection sites:
	// a clause whose literals are all false, plus its premises.
	cLits []int32

	// VSIDS decision heuristic.
	act    []float64
	varInc float64
	heap   []int32 // binary max-heap of atom indices by activity
	hpos   []int32 // heap position per atom, -1 = not in heap
	phase  []int8  // saved polarity per atom

	// Clause DB (clausedb.go).
	db          []clause
	watch       [][]int32 // per literal: indices of clauses watching it
	units       []int32   // carried unit clauses, asserted at level 0
	learnedLive int
	maxLearned  int
	claInc      float64

	// Stability bypass: disjunctive programs (and, defensively, any state
	// where the unfounded machinery reported a broken invariant) verify
	// every total candidate with the reduct test, like the other engines.
	checkStability bool

	// Unfounded-set machinery (unfounded.go); nil scc arrays when bypassed.
	sccID       []int32   // nontrivial SCC index per atom, -1 = trivial
	sccAtoms    [][]int32 // atoms per nontrivial SCC
	sccDirty    []bool
	dirtyQ      []int32
	hasLoopHead []bool  // per rule: some head atom is in a nontrivial SCC
	fStamp      []int32 // per-atom founded stamp
	rStamp      []int32 // per-rule visited stamp
	needPos     []int32 // per-rule count of in-SCC pos atoms not yet founded
	fEpoch      int32
	uQ          []int32 // founded-propagation worklist scratch
	uSet        []int32 // unfounded set scratch
	tail        []int32 // loop-clause killer tail scratch

	// Enumeration-taint tracking. An assignment is tainted when its
	// derivation (transitively) involved a blocking clause; clauses that
	// silently depend on such assignments — by dropping them as root-level
	// literals during analysis — must never be carried. anyTaint gates the
	// bookkeeping so the pre-enumeration search pays nothing.
	atomTaint []bool
	anyTaint  bool

	// Conflict-analysis scratch (conflict.go).
	seen      []bool
	outLearnt []int32
	rbuf      []int32
	lbdStamp  []int32
	lbdEpoch  int32
	prem      premScratch
	rootStamp []int32 // per-atom epoch stamp for rootPremises
	rootEpoch int32
	rootStack []int32
	rootBuf   []int32

	// Cross-window carry bookkeeping.
	localOf []int32 // AtomID -> local index for this window (shared with Solve)
}

func newCDNL(s *solver) *cdnl {
	n := len(s.ids)
	cd := &cdnl{
		s: s, n: n,
		level:     make([]int32, n),
		reasonK:   make([]uint8, n),
		reasonI:   make([]int32, n),
		posIn:     make([]int32, n),
		act:       make([]float64, n),
		varInc:    1.0,
		claInc:    1.0,
		hpos:      make([]int32, n),
		phase:     make([]int8, n),
		watch:     make([][]int32, 2*n),
		seen:      make([]bool, n),
		fStamp:    make([]int32, n),
		rStamp:    make([]int32, len(s.rules)),
		needPos:   make([]int32, len(s.rules)),
		atomTaint: make([]bool, n),
		lbdStamp:  make([]int32, n+2),
		rootStamp: make([]int32, n),
	}
	cd.maxLearned = len(s.rules)
	if cd.maxLearned < 256 {
		cd.maxLearned = 256
	}
	cd.prem.init(len(s.rules), n)
	for a := 0; a < n; a++ {
		cd.phase[a] = tru
		cd.hpos[a] = -1
	}
	return cd
}

func (cd *cdnl) curLevel() int32 { return int32(len(cd.trailLim)) }

// pend stages the reason for the next assignment.
func (cd *cdnl) pend(k uint8, i int32) {
	cd.pk, cd.pi = k, i
}

// onAssign records level, reason, and trail position for a fresh assignment
// and marks unfounded bookkeeping dirty as needed. Called from solver.set.
func (cd *cdnl) onAssign(a int) {
	cd.level[a] = cd.curLevel()
	cd.reasonK[a] = cd.pk
	cd.reasonI[a] = cd.pi
	cd.posIn[a] = int32(len(cd.s.trail) - 1)
	if cd.pk == rkClause && cd.db[cd.pi].flags&fTaint != 0 {
		cd.atomTaint[a] = true
		cd.anyTaint = true
	} else if cd.anyTaint {
		cd.atomTaint[a] = cd.reasonTainted(cd.pk, cd.pi, a)
	}
}

// reasonTainted reports whether an assignment with the given reason depends
// on an already-tainted assignment. It scans every assigned atom the reason
// mentions — a superset of the true antecedents, so it can only over-taint,
// never under-taint.
func (cd *cdnl) reasonTainted(k uint8, i int32, a int) bool {
	s := cd.s
	scanRule := func(r *irule) bool {
		for _, l := range [3][]int{r.head, r.pos, r.neg} {
			for _, x := range l {
				if x != a && s.assign[x] != undef && cd.atomTaint[x] {
					return true
				}
			}
		}
		return false
	}
	switch k {
	case rkClause:
		for _, q := range cd.db[i].lits {
			if cd.atomTaint[litAtom(q)] {
				return true
			}
		}
	case rkRule, rkChoice:
		return scanRule(&s.rules[i])
	case rkSupport:
		for _, ri := range s.occHead.of(a) {
			if scanRule(&s.rules[ri]) {
				return true
			}
		}
	}
	return false
}

// onUnassign saves the phase and re-inserts the atom into the decision heap.
// Called from solver.undoTo.
func (cd *cdnl) onUnassign(a int, v int8) {
	cd.phase[a] = v
	cd.atomTaint[a] = false
	if cd.hpos[a] < 0 {
		cd.heapPush(int32(a))
	}
}

// onUndone clamps the clause-propagation cursor after a trail unwind.
func (cd *cdnl) onUndone() {
	if cd.qhead > len(cd.s.trail) {
		cd.qhead = len(cd.s.trail)
	}
}

// markRuleDirty flags the SCCs of a rule's loop heads after the rule's body
// acquired its first false literal (its support died). Called from
// solver.sourceDiedBody.
func (cd *cdnl) markRuleDirty(ri int32) {
	if cd.sccID == nil || !cd.hasLoopHead[ri] {
		return
	}
	for _, h := range cd.s.rules[ri].head {
		if c := cd.sccID[h]; c >= 0 && !cd.sccDirty[c] {
			cd.sccDirty[c] = true
			cd.dirtyQ = append(cd.dirtyQ, c)
		}
	}
}

// --- VSIDS heap -------------------------------------------------------------

func (cd *cdnl) heapLess(x, y int32) bool {
	if cd.act[x] != cd.act[y] {
		return cd.act[x] > cd.act[y]
	}
	return x < y // deterministic tie-break
}

func (cd *cdnl) heapPush(a int32) {
	cd.hpos[a] = int32(len(cd.heap))
	cd.heap = append(cd.heap, a)
	cd.heapUp(int(cd.hpos[a]))
}

func (cd *cdnl) heapUp(i int) {
	a := cd.heap[i]
	for i > 0 {
		p := (i - 1) / 2
		if !cd.heapLess(a, cd.heap[p]) {
			break
		}
		cd.heap[i] = cd.heap[p]
		cd.hpos[cd.heap[i]] = int32(i)
		i = p
	}
	cd.heap[i] = a
	cd.hpos[a] = int32(i)
}

func (cd *cdnl) heapDown(i int) {
	a := cd.heap[i]
	n := len(cd.heap)
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && cd.heapLess(cd.heap[c+1], cd.heap[c]) {
			c++
		}
		if !cd.heapLess(cd.heap[c], a) {
			break
		}
		cd.heap[i] = cd.heap[c]
		cd.hpos[cd.heap[i]] = int32(i)
		i = c
	}
	cd.heap[i] = a
	cd.hpos[a] = int32(i)
}

func (cd *cdnl) heapPop() int32 {
	a := cd.heap[0]
	last := len(cd.heap) - 1
	cd.heap[0] = cd.heap[last]
	cd.hpos[cd.heap[0]] = 0
	cd.heap = cd.heap[:last]
	cd.hpos[a] = -1
	if last > 0 {
		cd.heapDown(0)
	}
	return a
}

func (cd *cdnl) bumpVar(a int) {
	cd.act[a] += cd.varInc
	if cd.act[a] > 1e100 {
		for i := range cd.act {
			cd.act[i] *= 1e-100
		}
		cd.varInc *= 1e-100
	}
	if cd.hpos[a] >= 0 {
		cd.heapUp(int(cd.hpos[a]))
	}
}

func (cd *cdnl) decayActivities() {
	cd.varInc *= 1 / 0.95
	cd.claInc *= 1 / 0.999
}

// pickBranch returns the unassigned atom with the highest activity, or -1
// when the assignment is total.
func (cd *cdnl) pickBranch() int {
	for len(cd.heap) > 0 {
		a := cd.heapPop()
		if cd.s.assign[a] == undef {
			return int(a)
		}
	}
	return -1
}

// decide opens a new decision level and assigns the atom its saved phase.
func (cd *cdnl) decide(a int) {
	cd.trailLim = append(cd.trailLim, int32(len(cd.s.trail)))
	cd.pend(rkDecision, 0)
	cd.s.set(a, cd.phase[a])
}

// cancelUntil unwinds the trail back to the given decision level.
func (cd *cdnl) cancelUntil(lvl int32) {
	if cd.curLevel() <= lvl {
		return
	}
	cd.s.undoTo(int(cd.trailLim[lvl]))
	cd.trailLim = cd.trailLim[:lvl]
}

// imply asserts a literal with the given reason.
func (cd *cdnl) imply(l int32, k uint8, i int32) {
	cd.pend(k, i)
	if litPos(l) {
		cd.s.set(litAtom(l), tru)
	} else {
		cd.s.set(litAtom(l), fls)
	}
	cd.s.out.Stats.Propagations++
}

// --- conflict descriptions --------------------------------------------------

// ruleClause appends the clausal form of a non-choice rule — heads positive,
// body literals negated — excluding every literal of atom skip (-1 = none).
func (cd *cdnl) ruleClause(ri int32, skip int, buf []int32) []int32 {
	r := &cd.s.rules[ri]
	for _, h := range r.head {
		if h != skip {
			buf = append(buf, mkLit(h, true))
		}
	}
	for _, b := range r.pos {
		if b != skip {
			buf = append(buf, mkLit(b, false))
		}
	}
	for _, c := range r.neg {
		if c != skip {
			buf = append(buf, mkLit(c, true))
		}
	}
	return buf
}

// noteRuleConflict records a violated non-choice rule (body satisfied, every
// head false) as the conflict clause.
func (cd *cdnl) noteRuleConflict(ri int32) {
	cd.prem.reset()
	cd.prem.addRule(ri)
	cd.cLits = cd.ruleClause(ri, -1, cd.cLits[:0])
}

// noteChoiceConflict records a violated cardinality bound: with the body
// satisfied, either too many heads are already true (upper) or too many are
// already false for the lower bound to remain reachable.
func (cd *cdnl) noteChoiceConflict(ri int32, upper bool) {
	cd.prem.reset()
	cd.prem.addRule(ri)
	s := cd.s
	r := &s.rules[ri]
	buf := cd.cLits[:0]
	for _, b := range r.pos {
		buf = append(buf, mkLit(b, false))
	}
	for _, c := range r.neg {
		buf = append(buf, mkLit(c, true))
	}
	for _, h := range r.head {
		if upper && s.assign[h] == tru {
			buf = append(buf, mkLit(h, false))
		} else if !upper && s.assign[h] == fls {
			buf = append(buf, mkLit(h, true))
		}
	}
	cd.cLits = buf
}

// noteSupportConflict records a true atom that lost every potential support:
// the completion clause ¬a ∨ (some rule of a supports it), with each rule's
// support condition represented by a currently-false killer literal.
func (cd *cdnl) noteSupportConflict(a int) {
	cd.prem.reset()
	cd.prem.addComp(int32(a))
	buf := cd.cLits[:0]
	buf = append(buf, mkLit(a, false))
	for _, ri := range cd.s.occHead.of(a) {
		buf = cd.appendKiller(ri, a, int32(len(cd.s.trail)), buf)
	}
	cd.cLits = buf
}

// noteClauseConflict records a fully falsified clause as the conflict.
func (cd *cdnl) noteClauseConflict(ci int32) {
	cd.prem.reset()
	cd.prem.addClausePrem(&cd.db[ci])
	cd.bumpCla(ci)
	cd.cLits = append(cd.cLits[:0], cd.db[ci].lits...)
}

// noteClashConflict records an implication that contradicted an existing
// assignment: the pending reason's antecedents plus the (now false) implied
// literal. Unreachable for the propagation paths, which check undef before
// setting, but kept so set stays safe for any caller.
func (cd *cdnl) noteClashConflict(a int, v int8) {
	k, i := cd.pk, cd.pi
	cd.prem.reset()
	buf := cd.cLits[:0]
	buf = append(buf, mkLit(a, v == tru))
	cd.cLits = cd.antecedents(k, i, a, int32(len(cd.s.trail)), buf)
}

// appendKiller appends one currently-false literal witnessing that rule ri
// cannot support atom a, considering only assignments made before trail
// position p: a false body literal, or (non-choice) another true head.
func (cd *cdnl) appendKiller(ri int32, a int, p int32, buf []int32) []int32 {
	s := cd.s
	r := &s.rules[ri]
	for _, b := range r.pos {
		if s.assign[b] == fls && cd.posIn[b] < p {
			return append(buf, mkLit(b, true))
		}
	}
	for _, c := range r.neg {
		if s.assign[c] == tru && cd.posIn[c] < p {
			return append(buf, mkLit(c, false))
		}
	}
	if !r.choice {
		for _, h := range r.head {
			if h != a && s.assign[h] == tru && cd.posIn[h] < p {
				return append(buf, mkLit(h, false))
			}
		}
	}
	// Invariant breach: the support died without a witness. Degrade to
	// reduct-test verification, and taint the clause under construction —
	// it is missing a disjunct, so it must never leave this window.
	cd.checkStability = true
	cd.prem.taint = true
	return buf
}

// --- top-level search -------------------------------------------------------

// propagateAll runs rule, support, clause, and unfounded propagation to a
// mutual fixpoint. It returns false on conflict, with the conflict clause in
// cd.cLits and its premises in cd.prem.
func (cd *cdnl) propagateAll() bool {
	s := cd.s
	for _, ci := range cd.units {
		c := &cd.db[ci]
		if cd.litTrue(c.lits[0]) {
			continue
		}
		if cd.litFalse(c.lits[0]) {
			cd.noteClauseConflict(ci)
			s.clearQueues()
			return false
		}
		cd.imply(c.lits[0], rkClause, ci)
	}
	cd.units = cd.units[:0]
	for {
		if !cd.propWatches() {
			s.clearQueues()
			return false
		}
		if len(s.ruleQ) > 0 {
			ri := s.ruleQ[len(s.ruleQ)-1]
			s.ruleQ = s.ruleQ[:len(s.ruleQ)-1]
			s.inRuleQ[ri] = false
			if !s.examine(ri) {
				s.clearQueues()
				return false
			}
			continue
		}
		if cd.qhead < len(s.trail) {
			continue
		}
		if len(s.srcQ) > 0 {
			a := int(s.srcQ[len(s.srcQ)-1])
			s.srcQ = s.srcQ[:len(s.srcQ)-1]
			s.inSrcQ[a] = false
			if !s.repairSource(a) {
				s.clearQueues()
				return false
			}
			continue
		}
		if len(cd.dirtyQ) > 0 {
			progress, ok := cd.unfoundedPass()
			if !ok {
				s.clearQueues()
				return false
			}
			if progress {
				continue
			}
		}
		return true
	}
}

// handleTotal emits the current total assignment (verifying stability only
// when required), then blocks it and flips the deepest decision. It returns
// false when the enumeration is complete or MaxModels is reached.
func (cd *cdnl) handleTotal() bool {
	s := cd.s
	ok := true
	if cd.checkStability {
		s.out.Stats.StabilityChecks++
		ok = s.stable()
	}
	if ok {
		s.emitModel()
	}
	if s.opts.MaxModels > 0 && len(s.out.Models) >= s.opts.MaxModels {
		return false
	}
	lvl := int(cd.curLevel())
	if lvl == 0 {
		return false
	}
	// Blocking clause: the negation of every decision literal, deepest
	// first so the watch order matches the post-backjump levels.
	lits := make([]int32, 0, lvl)
	for L := lvl - 1; L >= 0; L-- {
		d := int(s.trail[cd.trailLim[L]])
		lits = append(lits, mkLit(d, s.assign[d] != tru))
	}
	cd.prem.reset()
	cd.prem.taint = true
	ci := cd.addClauseFromScratch(lits, fBlocking|fTaint)
	cd.cancelUntil(int32(lvl - 1))
	cd.imply(cd.db[ci].lits[0], rkClause, ci)
	return true
}

// searchCDNL is the engine's main loop: propagate, then either resolve the
// conflict, emit-and-block a total assignment, or decide.
func (s *solver) searchCDNL() {
	cd := s.cd
	for {
		if !cd.propagateAll() {
			s.out.Stats.Conflicts++
			if !cd.resolveConflict() {
				return
			}
			continue
		}
		if s.opts.MaxModels > 0 && len(s.out.Models) >= s.opts.MaxModels {
			return
		}
		a := cd.pickBranch()
		if a < 0 {
			if !cd.handleTotal() {
				return
			}
			continue
		}
		s.out.Stats.Choices++
		cd.decide(a)
	}
}
