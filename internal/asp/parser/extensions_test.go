package parser

import (
	"strings"
	"testing"

	"streamrule/internal/asp/ast"
)

func TestParseStrings(t *testing.T) {
	r, err := ParseRule(`label(n1, "hello world").`)
	if err != nil {
		t.Fatal(err)
	}
	arg := r.Head[0].Args[1]
	if arg.Kind != ast.StringTerm || arg.Sym != "hello world" {
		t.Errorf("arg = %#v", arg)
	}
	r2, err := ParseRule(`esc("a\"b\\c\nd").`)
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.Head[0].Args[0].Sym; got != "a\"b\\c\nd" {
		t.Errorf("escapes = %q", got)
	}
	// Round trip through String().
	again, err := ParseRule(r2.String())
	if err != nil {
		t.Fatalf("round trip: %v (src %q)", err, r2.String())
	}
	if !again.Head[0].Equal(r2.Head[0]) {
		t.Error("string round trip mismatch")
	}
}

func TestParseFunctionTerms(t *testing.T) {
	r, err := ParseRule("p(f(X, g(1)), a) :- q(f(X, g(1))).")
	if err != nil {
		t.Fatal(err)
	}
	arg := r.Head[0].Args[0]
	if arg.Kind != ast.FuncTerm || arg.Sym != "f" || len(arg.FArgs) != 2 {
		t.Fatalf("arg = %s", arg)
	}
	if arg.FArgs[1].Kind != ast.FuncTerm || arg.FArgs[1].Sym != "g" {
		t.Errorf("nested = %s", arg.FArgs[1])
	}
	if r.String() != "p(f(X,g(1)),a) :- q(f(X,g(1)))." {
		t.Errorf("String = %q", r.String())
	}
}

func TestParseIntervals(t *testing.T) {
	r, err := ParseRule("num(1..10).")
	if err != nil {
		t.Fatal(err)
	}
	arg := r.Head[0].Args[0]
	if arg.Kind != ast.IntervalTerm {
		t.Fatalf("arg = %#v", arg)
	}
	if arg.L.Num != 1 || arg.R.Num != 10 {
		t.Errorf("bounds = %s..%s", arg.L, arg.R)
	}
	if r.String() != "num(1..10)." {
		t.Errorf("String = %q", r.String())
	}
	// Arithmetic bounds.
	r2, err := ParseRule("num(1..2+3).")
	if err != nil {
		t.Fatal(err)
	}
	if r2.Head[0].Args[0].R.Kind != ast.ArithTerm {
		t.Errorf("hi bound = %s", r2.Head[0].Args[0].R)
	}
}

func TestParseShow(t *testing.T) {
	prog, err := Parse(`
p(X) :- q(X).
#show p/1.
#show give_notification/1.
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Shows) != 2 {
		t.Fatalf("shows = %v", prog.Shows)
	}
	if prog.Shows[0].Pred != "p" || prog.Shows[0].Arity != 1 {
		t.Errorf("show 0 = %v", prog.Shows[0])
	}
	if !strings.Contains(prog.String(), "#show p/1.") {
		t.Errorf("program string: %q", prog.String())
	}
	for _, bad := range []string{"#show.", "#show p.", "#show p/x.", "#show p/1"} {
		if _, err := ParseUnchecked(bad); err == nil {
			t.Errorf("ParseUnchecked(%q) should fail", bad)
		}
	}
}

func TestParseChoiceRules(t *testing.T) {
	r, err := ParseRule("{ a ; b ; c } :- d.")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Choice || len(r.Head) != 3 {
		t.Fatalf("rule = %+v", r)
	}
	if r.Lower != ast.UnboundedChoice || r.Upper != ast.UnboundedChoice {
		t.Errorf("bounds = %d..%d", r.Lower, r.Upper)
	}

	r2, err := ParseRule("1 { p(X) ; q(X) } 2 :- r(X).")
	if err != nil {
		t.Fatal(err)
	}
	if r2.Lower != 1 || r2.Upper != 2 {
		t.Errorf("bounds = %d..%d", r2.Lower, r2.Upper)
	}
	if got := r2.String(); got != "1 {p(X); q(X)} 2 :- r(X)." {
		t.Errorf("String = %q", got)
	}
	// Round trip.
	again, err := ParseRule(r2.String())
	if err != nil {
		t.Fatal(err)
	}
	if again.Lower != 1 || again.Upper != 2 || !again.Choice {
		t.Errorf("round trip = %+v", again)
	}

	// Bare choice fact.
	r3, err := ParseRule("{ a }.")
	if err != nil {
		t.Fatal(err)
	}
	if !r3.Choice || len(r3.Body) != 0 {
		t.Errorf("rule = %+v", r3)
	}

	if _, err := ParseUnchecked("2 { a } 1."); err == nil {
		t.Error("inverted bounds must be rejected")
	}
	if _, err := ParseUnchecked("{ a ."); err == nil {
		t.Error("unclosed brace must be rejected")
	}
}

func TestParseAggregates(t *testing.T) {
	r, err := ParseRule("busy(X) :- city(X), #count{ C : car_location(C, X) } > 3.")
	if err != nil {
		t.Fatal(err)
	}
	l := r.Body[1]
	if l.Kind != ast.AggLiteral {
		t.Fatalf("literal = %v", l)
	}
	agg := l.Agg
	if agg.Func != ast.AggCount || agg.GuardOp != ast.CmpGt || agg.GuardRHS.Num != 3 {
		t.Errorf("agg = %+v", agg)
	}
	if len(agg.Elems) != 1 || len(agg.Elems[0].Terms) != 1 || len(agg.Elems[0].Cond) != 1 {
		t.Errorf("elems = %+v", agg.Elems)
	}

	// Assignment form and left guard form.
	r2, err := ParseRule("n(X, N) :- city(X), N = #count{ C : car_location(C, X) }.")
	if err != nil {
		t.Fatal(err)
	}
	agg2 := r2.Body[1].Agg
	if agg2.GuardOp != ast.CmpEq || agg2.GuardRHS.Kind != ast.VariableTerm || agg2.GuardRHS.Sym != "N" {
		t.Errorf("assignment agg = %+v", agg2)
	}

	r3, err := ParseRule("hot(X) :- city(X), 3 < #count{ C : car_location(C, X) }.")
	if err != nil {
		t.Fatal(err)
	}
	agg3 := r3.Body[1].Agg
	// "3 < agg" normalizes to "agg > 3".
	if agg3.GuardOp != ast.CmpGt || agg3.GuardRHS.Num != 3 {
		t.Errorf("left guard agg = %+v", agg3)
	}

	// Multiple elements and a multi-term tuple.
	r4, err := ParseRule("total(S) :- S = #sum{ W, T : task(T), weight(T, W) ; B : bonus(B) }.")
	if err != nil {
		t.Fatal(err)
	}
	agg4 := r4.Body[0].Agg
	if len(agg4.Elems) != 2 || len(agg4.Elems[0].Terms) != 2 {
		t.Errorf("elems = %+v", agg4.Elems)
	}

	// Round trip.
	for _, rr := range []ast.Rule{r, r2, r3, r4} {
		again, err := ParseRule(rr.String())
		if err != nil {
			t.Fatalf("round trip of %q: %v", rr.String(), err)
		}
		if again.String() != rr.String() {
			t.Errorf("round trip %q != %q", again.String(), rr.String())
		}
	}
}

func TestParseAggregateErrors(t *testing.T) {
	bad := []string{
		"p :- #count{ X : q(X) }.",             // missing guard
		"p :- #count{ X : #sum{Y:r(Y)}>1 }.",   // nested aggregate
		"p :- #avg{ X : q(X) } > 1.",           // unknown function
		"p :- #count{ X : q(X) > 2.",           // unclosed brace
		"p(N) :- N = #count{ C : q(C) }, N>1.", // fine, control case
	}
	for i, src := range bad {
		_, err := ParseUnchecked(src)
		if i == len(bad)-1 {
			if err != nil {
				t.Errorf("control case failed: %v", err)
			}
			continue
		}
		if err == nil {
			t.Errorf("ParseUnchecked(%q) should fail", src)
		}
	}
}

func TestAggregateSafety(t *testing.T) {
	// Local variables (C) are exempt; the global X must be bound by a
	// positive atom; the assignment binds N.
	if _, err := Parse("n(X, N) :- city(X), N = #count{ C : car_location(C, X) }."); err != nil {
		t.Errorf("safe aggregate rejected: %v", err)
	}
	// Global X unbound -> unsafe.
	if _, err := Parse("n(N) :- N = #count{ C : car_location(C, X) }, p(X)."); err != nil {
		t.Errorf("X is bound by p(X): %v", err)
	}
	if _, err := Parse("bad(X) :- #count{ C : car_location(C, X) } > 1."); err == nil {
		t.Error("global X without a binder must be unsafe")
	}
	// Guard variable used without assignment -> unsafe.
	if _, err := Parse("bad(N) :- #count{ C : q(C) } > N."); err == nil {
		t.Error("N in a non-assignment guard must be unsafe")
	}
}

func TestAnonymousVariablesAreDistinct(t *testing.T) {
	r, err := ParseRule("pair :- link(_, _).")
	if err != nil {
		t.Fatal(err)
	}
	a := r.Body[0].Atom
	if a.Args[0].Sym == a.Args[1].Sym {
		t.Errorf("anonymous variables must be distinct, got %s and %s", a.Args[0], a.Args[1])
	}
	// zone(Z) :- request(_, Z) is safe and must parse.
	if _, err := Parse("zone(Z) :- request(_, Z)."); err != nil {
		t.Errorf("anonymous variable in positive body: %v", err)
	}
}

func TestChoiceSafety(t *testing.T) {
	if _, err := Parse("{ p(X) } :- q(X)."); err != nil {
		t.Errorf("safe choice rejected: %v", err)
	}
	if _, err := Parse("{ p(X) }."); err == nil {
		t.Error("unbound choice head variable must be unsafe")
	}
}
