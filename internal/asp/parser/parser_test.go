package parser

import (
	"strings"
	"testing"

	"streamrule/internal/asp/ast"
)

// programP is program P from the paper (Listing 1).
const programP = `
very_slow_speed(X) :- average_speed(X,Y), Y < 20.
many_cars(X) :- car_number(X,Y), Y > 40.
traffic_jam(X) :- very_slow_speed(X), many_cars(X), not traffic_light(X).
car_fire(X) :- car_in_smoke(C, high), car_speed(C, 0), car_location(C, X).
give_notification(X) :- traffic_jam(X).
give_notification(X) :- car_fire(X).
`

func TestParseProgramP(t *testing.T) {
	prog, err := Parse(programP)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 6 {
		t.Fatalf("got %d rules, want 6", len(prog.Rules))
	}
	r3 := prog.Rules[2]
	if r3.Head[0].Pred != "traffic_jam" {
		t.Errorf("rule 3 head = %s", r3.Head[0])
	}
	if len(r3.NegativeBody()) != 1 || r3.NegativeBody()[0].Atom.Pred != "traffic_light" {
		t.Errorf("rule 3 negative body = %v", r3.NegativeBody())
	}
	r1 := prog.Rules[0]
	if len(r1.Body) != 2 || r1.Body[1].Kind != ast.CompLiteral || r1.Body[1].Op != ast.CmpLt {
		t.Errorf("rule 1 body = %v", r1.Body)
	}
	// Round trip: parse(print(p)) == print(p).
	again, err := Parse(prog.String())
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if again.String() != prog.String() {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", prog, again)
	}
}

func TestParseFactsAndConstraints(t *testing.T) {
	prog, err := Parse(`
p(1). p(a). p(foo, 2).
:- p(1), not q.
q.
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 5 {
		t.Fatalf("got %d rules", len(prog.Rules))
	}
	if !prog.Rules[0].IsFact() || !prog.Rules[3].IsConstraint() {
		t.Error("fact/constraint misparsed")
	}
	if prog.Rules[1].Head[0].Args[0].Kind != ast.SymbolTerm {
		t.Error("p(a) argument should be a symbol")
	}
}

func TestParseDisjunction(t *testing.T) {
	for _, src := range []string{"a | b | c.", "a ; b ; c."} {
		prog, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if len(prog.Rules[0].Head) != 3 {
			t.Errorf("head len = %d", len(prog.Rules[0].Head))
		}
	}
}

func TestParseNegativeNumberAndArith(t *testing.T) {
	r, err := ParseRule("p(X) :- q(X, Y), X = Y + 1 * 2.")
	if err != nil {
		t.Fatal(err)
	}
	cmp := r.Body[1]
	if cmp.Kind != ast.CompLiteral || cmp.Op != ast.CmpEq {
		t.Fatalf("expected comparison, got %v", cmp)
	}
	if cmp.Rhs.Kind != ast.ArithTerm || cmp.Rhs.Op != ast.OpAdd {
		t.Fatalf("rhs = %s", cmp.Rhs)
	}
	r2, err := ParseRule("p(-3).")
	if err != nil {
		t.Fatal(err)
	}
	if r2.Head[0].Args[0].Num != -3 {
		t.Errorf("arg = %v", r2.Head[0].Args[0])
	}
}

func TestParseSymbolComparison(t *testing.T) {
	r, err := ParseRule("p :- q(X), X != high.")
	if err != nil {
		t.Fatal(err)
	}
	cmp := r.Body[1]
	if cmp.Kind != ast.CompLiteral || cmp.Rhs.Kind != ast.SymbolTerm || cmp.Rhs.Sym != "high" {
		t.Errorf("comparison = %v", cmp)
	}
	// Leading symbol on the LHS.
	r2, err := ParseRule("p :- q(X), high = X.")
	if err != nil {
		t.Fatal(err)
	}
	if r2.Body[1].Lhs.Sym != "high" {
		t.Errorf("lhs = %v", r2.Body[1].Lhs)
	}
}

func TestParseParenthesizedExpr(t *testing.T) {
	r, err := ParseRule("p(X) :- q(X,Y), X = (Y + 1) * 2.")
	if err != nil {
		t.Fatal(err)
	}
	rhs := r.Body[1].Rhs
	if rhs.Kind != ast.ArithTerm || rhs.Op != ast.OpMul {
		t.Errorf("rhs = %s", rhs)
	}
}

func TestSafetyRejection(t *testing.T) {
	bad := []string{
		"p(X).",
		"p(X) :- not q(X).",
		"p :- X < 3.",
		"p(X) :- q(Y).",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail the safety check", src)
		}
		if _, err := ParseUnchecked(src); err != nil {
			t.Errorf("ParseUnchecked(%q) should succeed: %v", src, err)
		}
	}
}

func TestParseAtom(t *testing.T) {
	a, err := ParseAtom("car_in_smoke(car1, high)")
	if err != nil {
		t.Fatal(err)
	}
	if a.Pred != "car_in_smoke" || len(a.Args) != 2 {
		t.Errorf("atom = %s", a)
	}
	if _, err := ParseAtom("p(1) extra"); err == nil {
		t.Error("trailing input should fail")
	}
	if _, err := ParseAtom("P(1)"); err == nil {
		t.Error("upper-case predicate should fail")
	}
}

func TestSyntaxErrors(t *testing.T) {
	bad := []string{
		"p(",
		"p :-",
		"p :- q",          // missing period
		"p :- , q.",       // empty literal
		":- .",            // empty constraint body
		"p(X) :- q(X) r.", // missing comma
		"p :- q(X) < 3.",  // atom as comparison operand
		"| a.",
	}
	for _, src := range bad {
		if _, err := ParseUnchecked(src); err == nil {
			t.Errorf("ParseUnchecked(%q) should fail", src)
		}
	}
}

func TestErrorsCarryPosition(t *testing.T) {
	_, err := ParseUnchecked("p(a).\nq(b) :- .")
	if err == nil {
		t.Fatal("expected error")
	}
	perr, ok := err.(*Error)
	if !ok {
		t.Fatalf("expected *Error, got %T: %v", err, err)
	}
	if perr.Line != 2 {
		t.Errorf("error line = %d, want 2", perr.Line)
	}
	if !strings.Contains(perr.Error(), "2:") {
		t.Errorf("error string %q should contain position", perr.Error())
	}
}

func TestParseEmptyProgram(t *testing.T) {
	prog, err := Parse("  % only comments\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 0 {
		t.Errorf("got %d rules", len(prog.Rules))
	}
}
