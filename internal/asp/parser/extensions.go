package parser

import (
	"fmt"

	"streamrule/internal/asp/ast"
	"streamrule/internal/asp/lexer"
)

// This file parses the language extensions: #show declarations, choice
// rules with cardinality bounds, aggregates, strings, intervals, and
// function terms (the latter three hook into expr/factor in parser.go).

// showDecl parses "#show name/arity." with the '#show' token consumed.
func (p *parser) showDecl() (ast.ShowDecl, error) {
	id, err := p.expect(lexer.Ident)
	if err != nil {
		return ast.ShowDecl{}, err
	}
	if _, err := p.expect(lexer.Slash); err != nil {
		return ast.ShowDecl{}, err
	}
	n, err := p.expect(lexer.Number)
	if err != nil {
		return ast.ShowDecl{}, err
	}
	if n.Num < 0 {
		return ast.ShowDecl{}, &Error{n.Line, n.Col, "negative arity"}
	}
	if _, err := p.expect(lexer.Period); err != nil {
		return ast.ShowDecl{}, err
	}
	return ast.ShowDecl{Pred: id.Text, Arity: int(n.Num)}, nil
}

// choiceHead parses "lo { a ; b ; ... } hi" with the optional lower bound
// already consumed and passed in (UnboundedChoice when absent). The '{'
// token is the current token.
func (p *parser) choiceHead(lower int) (ast.Rule, error) {
	r := ast.Rule{Choice: true, Lower: lower, Upper: ast.UnboundedChoice}
	if _, err := p.expect(lexer.LBrace); err != nil {
		return r, err
	}
	if p.peek().Kind != lexer.RBrace {
		for {
			a, err := p.atom()
			if err != nil {
				return r, err
			}
			r.Head = append(r.Head, a)
			if !p.accept(lexer.Pipe) && !p.accept(lexer.Comma) {
				break
			}
		}
	}
	if _, err := p.expect(lexer.RBrace); err != nil {
		return r, err
	}
	if p.peek().Kind == lexer.Number {
		n := p.next()
		r.Upper = int(n.Num)
	}
	if r.Lower != ast.UnboundedChoice && r.Upper != ast.UnboundedChoice && r.Lower > r.Upper {
		t := p.peek()
		return r, &Error{t.Line, t.Col, fmt.Sprintf("choice bounds %d > %d", r.Lower, r.Upper)}
	}
	return r, nil
}

var aggFuncs = map[string]ast.AggFunc{
	"#count": ast.AggCount,
	"#sum":   ast.AggSum,
	"#min":   ast.AggMin,
	"#max":   ast.AggMax,
}

// aggregateSet parses "#func { elem ; elem ; ... }" with the Hash token as
// the current token; the guard is attached by the caller.
func (p *parser) aggregateSet() (ast.Aggregate, error) {
	h := p.next()
	fn, ok := aggFuncs[h.Text]
	if !ok {
		return ast.Aggregate{}, &Error{h.Line, h.Col, fmt.Sprintf("%s is not an aggregate function", h.Text)}
	}
	agg := ast.Aggregate{Func: fn}
	if _, err := p.expect(lexer.LBrace); err != nil {
		return agg, err
	}
	if p.peek().Kind != lexer.RBrace {
		for {
			elem, err := p.aggElem()
			if err != nil {
				return agg, err
			}
			agg.Elems = append(agg.Elems, elem)
			if !p.accept(lexer.Pipe) { // ';' separates elements
				break
			}
		}
	}
	if _, err := p.expect(lexer.RBrace); err != nil {
		return agg, err
	}
	return agg, nil
}

// aggElem parses "t1, ..., tn [: lit, ..., litm]".
func (p *parser) aggElem() (ast.AggElem, error) {
	var elem ast.AggElem
	for {
		t, err := p.expr()
		if err != nil {
			return elem, err
		}
		elem.Terms = append(elem.Terms, t)
		if !p.accept(lexer.Comma) {
			break
		}
	}
	if p.accept(lexer.Colon) {
		for {
			l, err := p.condLiteral()
			if err != nil {
				return elem, err
			}
			elem.Cond = append(elem.Cond, l)
			if !p.accept(lexer.Comma) {
				break
			}
		}
	}
	return elem, nil
}

// condLiteral parses a literal inside an aggregate condition: an atom, a
// negated atom, or a comparison — but not a nested aggregate.
func (p *parser) condLiteral() (ast.Literal, error) {
	if p.peek().Kind == lexer.Hash {
		t := p.peek()
		return ast.Literal{}, &Error{t.Line, t.Col, "nested aggregates are not supported"}
	}
	return p.literal()
}

// aggregateLiteral parses a full aggregate literal in one of the forms
//
//	#func{...} op term
//	term op #func{...}
//
// The caller dispatches: leftGuard is the already-parsed guard term for the
// second form (nil pointer semantics via ok flag).
func (p *parser) aggregateLiteralRight() (ast.Literal, error) {
	agg, err := p.aggregateSet()
	if err != nil {
		return ast.Literal{}, err
	}
	t := p.peek()
	op, ok := cmpOps[t.Kind]
	if !ok {
		return ast.Literal{}, &Error{t.Line, t.Col, "aggregate needs a comparison guard"}
	}
	p.next()
	rhs, err := p.expr()
	if err != nil {
		return ast.Literal{}, err
	}
	agg.GuardOp = op
	agg.GuardRHS = rhs
	return ast.AggLit(agg), nil
}

// aggregateLiteralLeft builds "guard op #func{...}", normalizing the guard
// operator so that the aggregate value is on the left of GuardOp
// (e.g. "3 < #count{...}" becomes "#count{...} > 3").
func (p *parser) aggregateLiteralLeft(guard ast.Term, op ast.CompOp) (ast.Literal, error) {
	agg, err := p.aggregateSet()
	if err != nil {
		return ast.Literal{}, err
	}
	agg.GuardOp = flipCmp(op)
	agg.GuardRHS = guard
	return ast.AggLit(agg), nil
}

// flipCmp mirrors a comparison operator across its operands.
func flipCmp(op ast.CompOp) ast.CompOp {
	switch op {
	case ast.CmpLt:
		return ast.CmpGt
	case ast.CmpLeq:
		return ast.CmpGeq
	case ast.CmpGt:
		return ast.CmpLt
	case ast.CmpGeq:
		return ast.CmpLeq
	default:
		return op
	}
}
