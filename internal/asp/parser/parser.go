// Package parser builds ast.Program values from ASP surface syntax.
//
// Grammar (EBNF, ignoring whitespace and '%' comments):
//
//	program   = { rule } .
//	rule      = [ head ] [ ":-" body ] "." .
//	head      = atom { ("|" | ";") atom } .
//	body      = literal { "," literal } .
//	literal   = "not" atom | atom | comparison .
//	comparison= expr cmpop expr .
//	cmpop     = "=" | "==" | "!=" | "<>" | "<" | "<=" | ">" | ">=" .
//	atom      = ident [ "(" expr { "," expr } ")" ] .
//	expr      = term { ("+"|"-") term } .
//	term      = factor { ("*"|"/"|"\") factor } .
//	factor    = ident | variable | number | "-" factor | "(" expr ")" .
//
// A leading identifier followed by a comparison operator is parsed as a
// comparison over a symbol term, matching standard ASP behaviour.
package parser

import (
	"fmt"

	"streamrule/internal/asp/ast"
	"streamrule/internal/asp/lexer"
)

// Error is a syntax error with position information.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string { return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg) }

type parser struct {
	toks []lexer.Token
	pos  int
	// anon numbers anonymous variables: each '_' occurrence becomes a fresh
	// variable so that p(_, _) does not accidentally join its arguments.
	anon int
}

// variable builds the term for a Variable token, renaming '_'.
func (p *parser) variable(text string) ast.Term {
	if text == "_" {
		p.anon++
		return ast.Var(fmt.Sprintf("_Anon%d", p.anon))
	}
	return ast.Var(text)
}

// Parse parses a complete program and verifies rule safety.
func Parse(src string) (*ast.Program, error) {
	prog, err := ParseUnchecked(src)
	if err != nil {
		return nil, err
	}
	if err := prog.CheckSafety(); err != nil {
		return nil, err
	}
	return prog, nil
}

// ParseUnchecked parses a complete program without the safety check. It is
// used by tests that deliberately construct unsafe rules.
func ParseUnchecked(src string) (*ast.Program, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &ast.Program{}
	for !p.atEOF() {
		if t := p.peek(); t.Kind == lexer.Hash && t.Text == "#show" {
			p.next()
			decl, err := p.showDecl()
			if err != nil {
				return nil, err
			}
			prog.Shows = append(prog.Shows, decl)
			continue
		}
		r, err := p.rule()
		if err != nil {
			return nil, err
		}
		prog.Add(r)
	}
	return prog, nil
}

// ParseRule parses a single rule (terminated by '.').
func ParseRule(src string) (ast.Rule, error) {
	prog, err := ParseUnchecked(src)
	if err != nil {
		return ast.Rule{}, err
	}
	if len(prog.Rules) != 1 {
		return ast.Rule{}, fmt.Errorf("expected exactly one rule, got %d", len(prog.Rules))
	}
	return prog.Rules[0], nil
}

// ParseAtom parses a single ground or non-ground atom (no trailing period).
func ParseAtom(src string) (ast.Atom, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return ast.Atom{}, err
	}
	p := &parser{toks: toks}
	a, err := p.atom()
	if err != nil {
		return ast.Atom{}, err
	}
	if !p.atEOF() {
		t := p.peek()
		return ast.Atom{}, &Error{t.Line, t.Col, "trailing input after atom"}
	}
	return a, nil
}

func (p *parser) atEOF() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() lexer.Token {
	if p.atEOF() {
		if len(p.toks) == 0 {
			return lexer.Token{Kind: lexer.EOF, Line: 1, Col: 1}
		}
		last := p.toks[len(p.toks)-1]
		return lexer.Token{Kind: lexer.EOF, Line: last.Line, Col: last.Col + len(last.Text)}
	}
	return p.toks[p.pos]
}

func (p *parser) next() lexer.Token {
	t := p.peek()
	if !p.atEOF() {
		p.pos++
	}
	return t
}

func (p *parser) expect(k lexer.Kind) (lexer.Token, error) {
	t := p.peek()
	if t.Kind != k {
		return t, &Error{t.Line, t.Col, fmt.Sprintf("expected %s, found %s", k, t)}
	}
	return p.next(), nil
}

func (p *parser) accept(k lexer.Kind) bool {
	if p.peek().Kind == k {
		p.next()
		return true
	}
	return false
}

func (p *parser) rule() (ast.Rule, error) {
	var r ast.Rule
	switch {
	case p.peek().Kind == lexer.LBrace:
		var err error
		r, err = p.choiceHead(ast.UnboundedChoice)
		if err != nil {
			return r, err
		}
	case p.peek().Kind == lexer.Number && p.pos+1 < len(p.toks) && p.toks[p.pos+1].Kind == lexer.LBrace:
		lo := p.next()
		var err error
		r, err = p.choiceHead(int(lo.Num))
		if err != nil {
			return r, err
		}
	case p.peek().Kind != lexer.If:
		// Parse head disjunction.
		for {
			a, err := p.atom()
			if err != nil {
				return r, err
			}
			r.Head = append(r.Head, a)
			if !p.accept(lexer.Pipe) {
				break
			}
		}
	}
	if p.accept(lexer.If) {
		for {
			l, err := p.literal()
			if err != nil {
				return r, err
			}
			r.Body = append(r.Body, l)
			if !p.accept(lexer.Comma) {
				break
			}
		}
	}
	if _, err := p.expect(lexer.Period); err != nil {
		return r, err
	}
	return r, nil
}

var cmpOps = map[lexer.Kind]ast.CompOp{
	lexer.Eq: ast.CmpEq, lexer.Neq: ast.CmpNeq,
	lexer.Lt: ast.CmpLt, lexer.Leq: ast.CmpLeq,
	lexer.Gt: ast.CmpGt, lexer.Geq: ast.CmpGeq,
}

func (p *parser) literal() (ast.Literal, error) {
	if p.accept(lexer.Not) {
		a, err := p.atom()
		if err != nil {
			return ast.Literal{}, err
		}
		return ast.Not(a), nil
	}
	if p.peek().Kind == lexer.Hash {
		return p.aggregateLiteralRight()
	}
	// Could be an atom or a comparison. An atom starts with an identifier;
	// if what follows the full atom-shaped prefix is a comparison operator,
	// re-parse as an expression comparison (e.g. "f(X) ..." is always an
	// atom, but "X < 3" and "cost = 4" are comparisons).
	start := p.pos
	if p.peek().Kind == lexer.Ident {
		a, err := p.atom()
		if err != nil {
			return ast.Literal{}, err
		}
		if op, ok := cmpOps[p.peek().Kind]; ok && len(a.Args) == 0 {
			// "ident cmp expr": treat the identifier as a symbol term.
			p.next()
			if p.peek().Kind == lexer.Hash {
				return p.aggregateLiteralLeft(ast.Sym(a.Pred), op)
			}
			rhs, err := p.expr()
			if err != nil {
				return ast.Literal{}, err
			}
			return ast.Cmp(op, ast.Sym(a.Pred), rhs), nil
		}
		if _, ok := cmpOps[p.peek().Kind]; ok && len(a.Args) > 0 {
			t := p.peek()
			return ast.Literal{}, &Error{t.Line, t.Col, "comparison operand must be a term, not an atom"}
		}
		return ast.Pos(a), nil
	}
	// Expression comparison starting with a variable, number, '-' or '('.
	p.pos = start
	lhs, err := p.expr()
	if err != nil {
		return ast.Literal{}, err
	}
	t := p.peek()
	op, ok := cmpOps[t.Kind]
	if !ok {
		return ast.Literal{}, &Error{t.Line, t.Col, fmt.Sprintf("expected comparison operator, found %s", t)}
	}
	p.next()
	if p.peek().Kind == lexer.Hash {
		return p.aggregateLiteralLeft(lhs, op)
	}
	rhs, err := p.expr()
	if err != nil {
		return ast.Literal{}, err
	}
	return ast.Cmp(op, lhs, rhs), nil
}

func (p *parser) atom() (ast.Atom, error) {
	id, err := p.expect(lexer.Ident)
	if err != nil {
		return ast.Atom{}, err
	}
	a := ast.Atom{Pred: id.Text}
	if p.accept(lexer.LParen) {
		for {
			arg, err := p.expr()
			if err != nil {
				return ast.Atom{}, err
			}
			a.Args = append(a.Args, arg)
			if !p.accept(lexer.Comma) {
				break
			}
		}
		if _, err := p.expect(lexer.RParen); err != nil {
			return ast.Atom{}, err
		}
	}
	return a, nil
}

func (p *parser) expr() (ast.Term, error) {
	t, err := p.sumExpr()
	if err != nil {
		return ast.Term{}, err
	}
	// Intervals bind loosest: "lo .. hi".
	if p.accept(lexer.Dots) {
		hi, err := p.sumExpr()
		if err != nil {
			return ast.Term{}, err
		}
		return ast.Interval(t, hi), nil
	}
	return t, nil
}

func (p *parser) sumExpr() (ast.Term, error) {
	t, err := p.termExpr()
	if err != nil {
		return ast.Term{}, err
	}
	for {
		switch p.peek().Kind {
		case lexer.Plus:
			p.next()
			rhs, err := p.termExpr()
			if err != nil {
				return ast.Term{}, err
			}
			t = ast.Arith(ast.OpAdd, t, rhs)
		case lexer.Minus:
			p.next()
			rhs, err := p.termExpr()
			if err != nil {
				return ast.Term{}, err
			}
			t = ast.Arith(ast.OpSub, t, rhs)
		default:
			return t, nil
		}
	}
}

func (p *parser) termExpr() (ast.Term, error) {
	t, err := p.factor()
	if err != nil {
		return ast.Term{}, err
	}
	for {
		var op ast.ArithOp
		switch p.peek().Kind {
		case lexer.Star:
			op = ast.OpMul
		case lexer.Slash:
			op = ast.OpDiv
		case lexer.Mod:
			op = ast.OpMod
		default:
			return t, nil
		}
		p.next()
		rhs, err := p.factor()
		if err != nil {
			return ast.Term{}, err
		}
		t = ast.Arith(op, t, rhs)
	}
}

func (p *parser) factor() (ast.Term, error) {
	t := p.peek()
	switch t.Kind {
	case lexer.Ident:
		p.next()
		// A '(' directly after the identifier makes it a function term.
		if p.peek().Kind == lexer.LParen {
			p.next()
			var args []ast.Term
			for {
				arg, err := p.expr()
				if err != nil {
					return ast.Term{}, err
				}
				args = append(args, arg)
				if !p.accept(lexer.Comma) {
					break
				}
			}
			if _, err := p.expect(lexer.RParen); err != nil {
				return ast.Term{}, err
			}
			return ast.Func(t.Text, args...), nil
		}
		return ast.Sym(t.Text), nil
	case lexer.Str:
		p.next()
		return ast.Str(t.Text), nil
	case lexer.Variable:
		p.next()
		return p.variable(t.Text), nil
	case lexer.Number:
		p.next()
		return ast.Num(t.Num), nil
	case lexer.Minus:
		p.next()
		inner, err := p.factor()
		if err != nil {
			return ast.Term{}, err
		}
		if inner.Kind == ast.NumberTerm {
			return ast.Num(-inner.Num), nil
		}
		return ast.Arith(ast.OpSub, ast.Num(0), inner), nil
	case lexer.LParen:
		p.next()
		inner, err := p.expr()
		if err != nil {
			return ast.Term{}, err
		}
		if _, err := p.expect(lexer.RParen); err != nil {
			return ast.Term{}, err
		}
		return inner, nil
	default:
		return ast.Term{}, &Error{t.Line, t.Col, fmt.Sprintf("expected term, found %s", t)}
	}
}
