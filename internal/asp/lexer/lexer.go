// Package lexer tokenizes answer set programs in ASP surface syntax.
//
// The token inventory covers the language used throughout this repository:
// identifiers (lower-case initial), variables (upper-case initial or '_'),
// integers, the rule operator ':-', disjunction '|' (and ';' as a synonym in
// heads), comparison operators, arithmetic operators, parentheses, commas,
// periods, and the keyword 'not'. Comments run from '%' to end of line.
package lexer

import (
	"fmt"
	"strconv"
	"unicode"
)

// Kind identifies a token class.
type Kind uint8

// Token kinds.
const (
	EOF Kind = iota
	Ident
	Variable
	Number
	Not    // keyword not
	If     // :-
	Period // .
	Comma  // ,
	Pipe   // | or ;
	LParen // (
	RParen // )
	Eq     // = or ==
	Neq    // != or <>
	Lt     // <
	Leq    // <=
	Gt     // >
	Geq    // >=
	Plus   // +
	Minus  // -
	Star   // *
	Slash  // /
	Mod    // backslash
	Str    // "quoted string"
	Dots   // ..
	LBrace // {
	RBrace // }
	Colon  // :
	Hash   // #show, #count, #sum, #min, #max (Text holds the word)
)

var kindNames = map[Kind]string{
	EOF: "EOF", Ident: "identifier", Variable: "variable", Number: "number",
	Not: "'not'", If: "':-'", Period: "'.'", Comma: "','", Pipe: "'|'",
	LParen: "'('", RParen: "')'", Eq: "'='", Neq: "'!='", Lt: "'<'",
	Leq: "'<='", Gt: "'>'", Geq: "'>='", Plus: "'+'", Minus: "'-'",
	Star: "'*'", Slash: "'/'", Mod: "'\\'", Str: "string",
	Dots: "'..'", LBrace: "'{'", RBrace: "'}'", Colon: "':'",
	Hash: "directive",
}

// String returns a human-readable name of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Token is a lexeme with position information (1-based line and column).
type Token struct {
	Kind Kind
	Text string
	Num  int64
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case Ident, Variable:
		return t.Text
	case Number:
		return strconv.FormatInt(t.Num, 10)
	default:
		return t.Kind.String()
	}
}

// Error is a lexical error with position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

// Lexer scans an input string into tokens.
type Lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: []rune(src), line: 1, col: 1}
}

// Tokenize scans the entire input and returns all tokens, excluding EOF.
func Tokenize(src string) ([]Token, error) {
	lx := New(src)
	var out []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == EOF {
			return out, nil
		}
		out = append(out, t)
	}
}

func (l *Lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() rune {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		r := l.peek()
		switch {
		case unicode.IsSpace(r):
			l.advance()
		case r == '%':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool { return unicode.IsLower(r) }
func isVarStart(r rune) bool   { return unicode.IsUpper(r) || r == '_' }
func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

// Next returns the next token, or an EOF token at end of input.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return Token{Kind: EOF, Line: line, Col: col}, nil
	}
	r := l.peek()
	switch {
	case isIdentStart(r) || isVarStart(r):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.peek()) {
			l.advance()
		}
		text := string(l.src[start:l.pos])
		if text == "not" {
			return Token{Kind: Not, Text: text, Line: line, Col: col}, nil
		}
		kind := Ident
		if isVarStart(r) {
			kind = Variable
		}
		return Token{Kind: kind, Text: text, Line: line, Col: col}, nil
	case unicode.IsDigit(r):
		start := l.pos
		for l.pos < len(l.src) && unicode.IsDigit(l.peek()) {
			l.advance()
		}
		text := string(l.src[start:l.pos])
		n, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return Token{}, &Error{line, col, "integer literal out of range: " + text}
		}
		return Token{Kind: Number, Num: n, Line: line, Col: col}, nil
	}
	mk := func(k Kind, n int) (Token, error) {
		text := string(l.src[l.pos : l.pos+n])
		for i := 0; i < n; i++ {
			l.advance()
		}
		return Token{Kind: k, Text: text, Line: line, Col: col}, nil
	}
	switch r {
	case '"':
		l.advance()
		var sb []rune
		for {
			if l.pos >= len(l.src) {
				return Token{}, &Error{line, col, "unterminated string"}
			}
			c := l.advance()
			if c == '"' {
				return Token{Kind: Str, Text: string(sb), Line: line, Col: col}, nil
			}
			if c == '\\' {
				if l.pos >= len(l.src) {
					return Token{}, &Error{line, col, "unterminated string escape"}
				}
				e := l.advance()
				switch e {
				case 'n':
					sb = append(sb, '\n')
				case 't':
					sb = append(sb, '\t')
				case '"', '\\':
					sb = append(sb, e)
				default:
					return Token{}, &Error{line, col, fmt.Sprintf("unknown string escape %q", e)}
				}
				continue
			}
			sb = append(sb, c)
		}
	case '#':
		l.advance()
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.peek()) {
			l.advance()
		}
		word := string(l.src[start:l.pos])
		switch word {
		case "show", "count", "sum", "min", "max":
			return Token{Kind: Hash, Text: "#" + word, Line: line, Col: col}, nil
		}
		return Token{}, &Error{line, col, fmt.Sprintf("unknown directive #%s", word)}
	case ':':
		if l.peek2() == '-' {
			return mk(If, 2)
		}
		return mk(Colon, 1)
	case '{':
		return mk(LBrace, 1)
	case '}':
		return mk(RBrace, 1)
	case '.':
		if l.peek2() == '.' {
			return mk(Dots, 2)
		}
		return mk(Period, 1)
	case ',':
		return mk(Comma, 1)
	case '|', ';':
		return mk(Pipe, 1)
	case '(':
		return mk(LParen, 1)
	case ')':
		return mk(RParen, 1)
	case '=':
		if l.peek2() == '=' {
			return mk(Eq, 2)
		}
		return mk(Eq, 1)
	case '!':
		if l.peek2() == '=' {
			return mk(Neq, 2)
		}
		return Token{}, &Error{line, col, "expected '!='"}
	case '<':
		switch l.peek2() {
		case '=':
			return mk(Leq, 2)
		case '>':
			return mk(Neq, 2)
		}
		return mk(Lt, 1)
	case '>':
		if l.peek2() == '=' {
			return mk(Geq, 2)
		}
		return mk(Gt, 1)
	case '+':
		return mk(Plus, 1)
	case '-':
		return mk(Minus, 1)
	case '*':
		return mk(Star, 1)
	case '/':
		return mk(Slash, 1)
	case '\\':
		return mk(Mod, 1)
	}
	return Token{}, &Error{line, col, fmt.Sprintf("unexpected character %q", r)}
}
