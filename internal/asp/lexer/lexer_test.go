package lexer

import "testing"

func kinds(t *testing.T, src string) []Kind {
	t.Helper()
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatalf("Tokenize(%q): %v", src, err)
	}
	out := make([]Kind, len(toks))
	for i, tok := range toks {
		out[i] = tok.Kind
	}
	return out
}

func TestTokenizeRule(t *testing.T) {
	src := "traffic_jam(X) :- very_slow_speed(X), many_cars(X), not traffic_light(X)."
	got := kinds(t, src)
	want := []Kind{
		Ident, LParen, Variable, RParen, If,
		Ident, LParen, Variable, RParen, Comma,
		Ident, LParen, Variable, RParen, Comma,
		Not, Ident, LParen, Variable, RParen, Period,
	}
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestTokenizeComparisons(t *testing.T) {
	src := "Y < 20 , Y <= 2, Y > 40, Y >= 4, X = Y, X == Y, X != Y, X <> Y"
	got := kinds(t, src)
	want := []Kind{
		Variable, Lt, Number, Comma,
		Variable, Leq, Number, Comma,
		Variable, Gt, Number, Comma,
		Variable, Geq, Number, Comma,
		Variable, Eq, Variable, Comma,
		Variable, Eq, Variable, Comma,
		Variable, Neq, Variable, Comma,
		Variable, Neq, Variable,
	}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestTokenizeArithAndDisjunction(t *testing.T) {
	got := kinds(t, "a | b ; c :- X + 1 * 2 - 3 / 4 \\ 5.")
	want := []Kind{
		Ident, Pipe, Ident, Pipe, Ident, If,
		Variable, Plus, Number, Star, Number, Minus, Number, Slash, Number, Mod, Number, Period,
	}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := "% a comment line\n  p(a). % trailing\n% final"
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 5 {
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	if toks[0].Line != 2 {
		t.Errorf("first token line = %d, want 2", toks[0].Line)
	}
}

func TestVariablesAndIdentifiers(t *testing.T) {
	toks, err := Tokenize("Foo _bar baz notation")
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := []Kind{Variable, Variable, Ident, Ident}
	wantText := []string{"Foo", "_bar", "baz", "notation"}
	for i := range wantKinds {
		if toks[i].Kind != wantKinds[i] || toks[i].Text != wantText[i] {
			t.Errorf("token %d = %v %q", i, toks[i].Kind, toks[i].Text)
		}
	}
}

func TestNotIsKeywordOnly(t *testing.T) {
	toks, err := Tokenize("not not_a_keyword")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != Not || toks[1].Kind != Ident {
		t.Errorf("got %v %v", toks[0].Kind, toks[1].Kind)
	}
}

func TestNumbers(t *testing.T) {
	toks, err := Tokenize("0 42 1000000")
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 42, 1000000}
	for i, w := range want {
		if toks[i].Kind != Number || toks[i].Num != w {
			t.Errorf("token %d = %v", i, toks[i])
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"p :@ q", "p ! q", "p #nope q", `p "unterminated`, `"bad \q escape"`, "99999999999999999999999"} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q) should fail", src)
		}
	}
}

func TestPositions(t *testing.T) {
	toks, err := Tokenize("p(a).\nq(b).")
	if err != nil {
		t.Fatal(err)
	}
	last := toks[len(toks)-1]
	if last.Line != 2 {
		t.Errorf("last token line = %d, want 2", last.Line)
	}
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("first token at %d:%d, want 1:1", toks[0].Line, toks[0].Col)
	}
}
