package intern

import (
	"fmt"
	"sync"
	"testing"

	"streamrule/internal/asp/ast"
)

func TestSymRoundTrip(t *testing.T) {
	tab := NewTable()
	a := tab.Sym("alpha")
	b := tab.Sym("beta")
	if a == b {
		t.Fatal("distinct symbols share an ID")
	}
	if tab.Sym("alpha") != a {
		t.Error("re-interning changed the ID")
	}
	if tab.SymName(a) != "alpha" || tab.SymName(b) != "beta" {
		t.Error("SymName mismatch")
	}
	if _, ok := tab.LookupSym("gamma"); ok {
		t.Error("LookupSym must not intern")
	}
}

func TestPredInterning(t *testing.T) {
	tab := NewTable()
	p1 := tab.Pred("p", 1)
	p2 := tab.Pred("p", 2)
	if p1 == p2 {
		t.Fatal("same name, different arity must get distinct PredIDs")
	}
	if tab.PredName(p1) != "p" || tab.PredArity(p2) != 2 {
		t.Error("pred metadata mismatch")
	}
	if tab.PredNameSym(p1) != tab.PredNameSym(p2) {
		t.Error("both arities share the name symbol")
	}
	if tab.NumPreds() != 2 {
		t.Errorf("NumPreds = %d", tab.NumPreds())
	}
}

func TestCodeRoundTrip(t *testing.T) {
	tab := NewTable()
	terms := []ast.Term{
		ast.Num(0),
		ast.Num(42),
		ast.Num(-7),
		ast.Num(1<<61 - 1),
		ast.Num(-(1 << 61)),
		ast.Sym("newcastle"),
		ast.Str("hello world"),
		ast.Func("f", ast.Num(1), ast.Sym("a")),
	}
	for _, term := range terms {
		c, ok := tab.CodeOf(term)
		if !ok {
			t.Fatalf("CodeOf(%s) failed", term)
		}
		got := tab.TermOf(c)
		if !got.Equal(term) {
			t.Errorf("round trip %s -> %s", term, got)
		}
		c2, ok := tab.LookupCode(term)
		if !ok || c2 != c {
			t.Errorf("LookupCode(%s) = %v, %v; want %v", term, c2, ok, c)
		}
	}
}

func TestCodeOutOfRangeNumber(t *testing.T) {
	tab := NewTable()
	big := ast.Num(1 << 62)
	c, ok := tab.CodeOf(big)
	if !ok {
		t.Fatal("out-of-range number must intern through the side table")
	}
	if got := tab.TermOf(c); !got.Equal(big) {
		t.Errorf("round trip = %s", got)
	}
}

func TestCodeNonGround(t *testing.T) {
	tab := NewTable()
	if _, ok := tab.CodeOf(ast.Var("X")); ok {
		t.Error("variables have no code")
	}
	if _, ok := tab.LookupCode(ast.Func("f", ast.Var("X"))); ok {
		t.Error("non-ground function terms have no code")
	}
}

func TestSymbolsAndStringsDistinct(t *testing.T) {
	tab := NewTable()
	cs, _ := tab.CodeOf(ast.Sym("x"))
	cq, _ := tab.CodeOf(ast.Str("x"))
	if cs == cq {
		t.Error(`symbol x and string "x" must have distinct codes`)
	}
}

func TestInternAtom(t *testing.T) {
	tab := NewTable()
	atoms := []ast.Atom{
		ast.NewAtom("zero"),
		ast.NewAtom("speed", ast.Sym("car1"), ast.Num(80)),
		ast.NewAtom("loc", ast.Sym("car1")),
		ast.NewAtom("wide", ast.Num(1), ast.Num(2), ast.Num(3), ast.Num(4)),
	}
	ids := make([]AtomID, len(atoms))
	for i, a := range atoms {
		ids[i] = tab.InternAtom(a)
		if int(ids[i]) != i {
			t.Errorf("IDs must be dense: atom %d got %d", i, ids[i])
		}
	}
	for i, a := range atoms {
		if got := tab.InternAtom(a); got != ids[i] {
			t.Errorf("re-interning %s changed the ID: %d != %d", a, got, ids[i])
		}
		id, ok := tab.LookupAtom(a)
		if !ok || id != ids[i] {
			t.Errorf("LookupAtom(%s) = %d, %v", a, id, ok)
		}
		mat := tab.Atom(ids[i])
		if !mat.Equal(a) {
			t.Errorf("materialized %s != %s", mat, a)
		}
		if tab.KeyOf(ids[i]) != a.Key() {
			t.Errorf("KeyOf = %q, want %q", tab.KeyOf(ids[i]), a.Key())
		}
		if tab.PredName(tab.AtomPred(ids[i])) != a.Pred {
			t.Errorf("AtomPred name mismatch for %s", a)
		}
		if len(tab.ArgCodes(ids[i])) != len(a.Args) {
			t.Errorf("ArgCodes arity mismatch for %s", a)
		}
	}
	if tab.NumAtoms() != len(atoms) {
		t.Errorf("NumAtoms = %d", tab.NumAtoms())
	}
	if _, ok := tab.LookupAtom(ast.NewAtom("speed", ast.Sym("car2"), ast.Num(80))); ok {
		t.Error("LookupAtom must not find un-interned atoms")
	}
}

func TestInternAtomByCodes(t *testing.T) {
	tab := NewTable()
	p := tab.Pred("speed", 2)
	c0, _ := tab.CodeOf(ast.Sym("car1"))
	c1, _ := CodeNum(55)
	id := tab.InternAtom2(p, c0, c1)
	want := ast.NewAtom("speed", ast.Sym("car1"), ast.Num(55))
	if !tab.Atom(id).Equal(want) {
		t.Errorf("materialized = %s, want %s", tab.Atom(id), want)
	}
	// The same atom interned from its ast form must map to the same ID.
	if got := tab.InternAtom(want); got != id {
		t.Errorf("InternAtom = %d, want %d", got, id)
	}
	u := tab.InternAtom1(tab.Pred("u", 1), c0)
	if !tab.Atom(u).Equal(ast.NewAtom("u", ast.Sym("car1"))) {
		t.Errorf("unary materialization = %s", tab.Atom(u))
	}
	z := tab.InternAtom0(tab.Pred("z", 0))
	if !tab.Atom(z).Equal(ast.NewAtom("z")) {
		t.Errorf("zero-ary materialization = %s", tab.Atom(z))
	}
}

func TestArithFoldsToNumber(t *testing.T) {
	tab := NewTable()
	c1, ok := tab.CodeOf(ast.Arith(ast.OpAdd, ast.Num(1), ast.Num(2)))
	if !ok {
		t.Fatal("ground arithmetic must encode")
	}
	c2, _ := CodeNum(3)
	if c1 != c2 {
		t.Error("(1+2) and 3 must share a code")
	}
}

func TestConcurrentIntern(t *testing.T) {
	tab := NewTable()
	const goroutines = 8
	const atoms = 500
	var wg sync.WaitGroup
	idsOf := make([][]AtomID, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			ids := make([]AtomID, atoms)
			for i := 0; i < atoms; i++ {
				ids[i] = tab.InternAtom(ast.NewAtom("p", ast.Sym(fmt.Sprintf("c%d", i)), ast.Num(int64(i))))
			}
			idsOf[gi] = ids
		}(gi)
	}
	wg.Wait()
	for gi := 1; gi < goroutines; gi++ {
		for i := range idsOf[gi] {
			if idsOf[gi][i] != idsOf[0][i] {
				t.Fatalf("goroutine %d atom %d: ID %d != %d", gi, i, idsOf[gi][i], idsOf[0][i])
			}
		}
	}
	if tab.NumAtoms() != atoms {
		t.Errorf("NumAtoms = %d, want %d", tab.NumAtoms(), atoms)
	}
}

func BenchmarkInternHit(b *testing.B) {
	b.ReportAllocs()
	tab := NewTable()
	a := ast.NewAtom("speed", ast.Sym("car1"), ast.Num(80))
	tab.InternAtom(a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.InternAtom(a)
	}
}
