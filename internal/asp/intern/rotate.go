// Epoch-based eviction: table rotation with dense ID remapping.
//
// Streams that mint fresh constants every window (timestamps, unique event
// IDs) make a monotonically growing table fatal for long-running reasoners.
// Rotation converts "fast until it OOMs" into "fast forever": the engine
// advances the table's epoch once per window, collects the atom IDs its
// cross-window state still references, and calls Rotate when the table
// exceeds its memory budget. Rotate compacts the table in place — keeping
// the live atoms, every entry touched in the current epoch (a safety net for
// in-flight references), all predicates (bounded by the program text), and
// the symbols/terms the kept atoms reference — and returns a Remap that the
// holders of interned IDs (grounder stores, fact refcounts, answer sets)
// apply. The *Table pointer is stable across rotations, so identity-keyed
// consumers (answer-set combination, Equal fast paths) stay valid.

package intern

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"

	"streamrule/internal/asp/ast"
)

// AdvanceEpoch starts a new epoch and returns it. Engines call it once per
// window so "touched in the current epoch" means "referenced by the window
// being processed". Safe to call concurrently with any table operation.
func (t *Table) AdvanceEpoch() uint32 { return atomic.AddUint32(&t.epoch, 1) }

// Epoch returns the current epoch.
func (t *Table) Epoch() uint32 { return t.curEpoch() }

// TableStats is a snapshot of a table's size and rotation history.
type TableStats struct {
	// Syms/Preds/Terms/Atoms are the current (live) entry counts.
	Syms, Preds, Terms, Atoms int
	// PeakAtoms is the largest atom count the table ever held, across
	// rotations.
	PeakAtoms int
	// Epoch is the current epoch.
	Epoch uint32
	// Rotations counts completed Rotate calls.
	Rotations int
	// EvictedAtoms is the total number of atoms dropped by all rotations.
	EvictedAtoms int64
	// RemapTime is the cumulative wall-clock time spent inside Rotate.
	RemapTime time.Duration
	// Bytes is the approximate heap retained by the table's entries (see
	// Table.ApproxBytes) — the quantity byte-based memory budgets bound.
	Bytes int64
	// Shrinks counts rotations that additionally rebuilt the backing maps
	// and slices because the live entry count had fallen far below the
	// peak since the last rebuild (Go maps never shrink on their own).
	Shrinks int
}

// Stats returns a snapshot of the table's size and rotation history.
func (t *Table) Stats() TableStats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return TableStats{
		Syms:         len(t.symNames),
		Preds:        len(t.predInfo),
		Terms:        len(t.termList),
		Atoms:        len(t.atoms),
		PeakAtoms:    t.peakAtoms,
		Epoch:        t.curEpoch(),
		Rotations:    t.rotations,
		EvictedAtoms: t.evictedAtoms,
		RemapTime:    time.Duration(t.remapTime),
		Bytes:        t.approxBytes,
		Shrinks:      t.shrinks,
	}
}

// Remap is the dense old→new ID mapping produced by one rotation. Predicate
// IDs are stable (predicates are never evicted), so only atoms and symbols
// need remapping by callers.
type Remap struct {
	atoms []AtomID
	syms  []SymID
	terms []int32
	// Stats describes the rotation that produced this remap.
	Stats RotateStats
}

// RotateStats describes a single rotation.
type RotateStats struct {
	AtomsBefore, AtomsAfter int
	SymsBefore, SymsAfter   int
	TermsBefore, TermsAfter int
	// Took is the wall-clock duration of the Rotate call.
	Took time.Duration
}

// Atom maps an old atom ID to its post-rotation ID. ok is false when the
// atom was evicted.
func (rm *Remap) Atom(old AtomID) (AtomID, bool) {
	if old < 0 || int(old) >= len(rm.atoms) || rm.atoms[old] < 0 {
		return 0, false
	}
	return rm.atoms[old], true
}

// Sym maps an old symbol ID to its post-rotation ID. ok is false when the
// symbol was evicted.
func (rm *Remap) Sym(old SymID) (SymID, bool) {
	if old < 0 || int(old) >= len(rm.syms) || rm.syms[old] < 0 {
		return 0, false
	}
	return rm.syms[old], true
}

// NumLiveAtoms returns the number of atoms that survived the rotation.
func (rm *Remap) NumLiveAtoms() int { return rm.Stats.AtomsAfter }

// remapCode rewrites one argument code through the symbol/term remaps. Kept
// atoms reference only kept symbols/terms, so the mapped IDs are valid.
func (rm *Remap) remapCode(c Code) Code {
	payload := c & payloadMask
	switch c & codeTagMask {
	case tagSym:
		return tagSym | Code(rm.syms[payload])
	case tagStr:
		return tagStr | Code(rm.syms[payload])
	case tagTerm:
		return tagTerm | Code(rm.terms[payload])
	default: // tagNum: inline, table-independent
		return c
	}
}

// Rotate compacts the table to the entries still in use and returns the
// old→new remapping. Kept are: the atoms listed in live, every entry touched
// in the current epoch, all predicates and their name symbols, and the
// symbols/terms referenced by a kept atom's arguments. Everything else is
// dropped; re-interning a dropped atom later simply assigns a fresh ID.
// Call AdvanceEpoch at least once before rotating: epoch 0 means epoch
// tracking was off, every entry counts as current, and nothing is evicted
// (budgeted engines advance the epoch every window).
//
// The caller must guarantee that no other goroutine holds interned IDs it
// will use after the call without applying the remap — in the engine,
// rotation runs between windows after all partition reasoners have
// quiesced. The process-wide Default table is refused: it is shared by
// every component that did not configure its own table, and rotating it
// would invalidate IDs the rotating caller cannot see.
func (t *Table) Rotate(live []AtomID) (*Remap, error) {
	if t == defaultTable {
		return nil, fmt.Errorf("intern: refusing to rotate the process-wide default table; configure a private table (ground.Options.Intern)")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	start := time.Now()
	cur := t.curEpoch()

	nAtoms := len(t.atoms)
	keepAtom := make([]bool, nAtoms)
	for _, id := range live {
		if id < 0 || int(id) >= nAtoms {
			return nil, fmt.Errorf("intern: live atom id %d out of range [0,%d)", id, nAtoms)
		}
		keepAtom[id] = true
	}
	for i, e := range t.atomEpochs {
		if e == cur {
			keepAtom[i] = true
		}
	}

	// Symbols/terms: keep what the kept atoms reference, what was touched
	// this epoch, and every predicate-name symbol (predicates are pinned).
	keepSym := make([]bool, len(t.symNames))
	for i, e := range t.symEpochs {
		if e == cur {
			keepSym[i] = true
		}
	}
	for _, pi := range t.predInfo {
		keepSym[pi.nameSym] = true
	}
	keepTerm := make([]bool, len(t.termList))
	for i, e := range t.termEpochs {
		if e == cur {
			keepTerm[i] = true
		}
	}
	for i, keep := range keepAtom {
		if !keep {
			continue
		}
		e := t.atoms[i]
		for _, c := range t.args[e.off : e.off+e.n] {
			payload := c & payloadMask
			switch c & codeTagMask {
			case tagSym, tagStr:
				keepSym[payload] = true
			case tagTerm:
				keepTerm[payload] = true
			}
		}
	}

	rm := &Remap{
		atoms: make([]AtomID, nAtoms),
		syms:  make([]SymID, len(t.symNames)),
		terms: make([]int32, len(t.termList)),
		Stats: RotateStats{
			AtomsBefore: nAtoms,
			SymsBefore:  len(t.symNames),
			TermsBefore: len(t.termList),
		},
	}

	// Compact symbols in place and rebuild the string index.
	w := 0
	for i, keep := range keepSym {
		if !keep {
			rm.syms[i] = -1
			continue
		}
		rm.syms[i] = SymID(w)
		t.symNames[w] = t.symNames[i]
		t.symEpochs[w] = t.symEpochs[i]
		w++
	}
	t.symNames = t.symNames[:w]
	t.symEpochs = t.symEpochs[:w]
	clear(t.syms)
	for i, name := range t.symNames {
		t.syms[name] = SymID(i)
	}

	// Compact the structured-term side table.
	w = 0
	for i, keep := range keepTerm {
		if !keep {
			rm.terms[i] = -1
			continue
		}
		rm.terms[i] = int32(w)
		t.termList[w] = t.termList[i]
		t.termEpochs[w] = t.termEpochs[i]
		w++
	}
	t.termList = t.termList[:w]
	t.termEpochs = t.termEpochs[:w]
	clear(t.terms)
	for i, term := range t.termList {
		t.terms[term.String()] = uint32(i)
	}

	// Predicates keep their IDs; only the name-symbol reference moves.
	for i := range t.predInfo {
		t.predInfo[i].nameSym = rm.syms[t.predInfo[i].nameSym]
	}

	// Compact atoms: rewrite the argument arena with remapped codes and
	// rebuild the key maps. Writes trail reads (entries only shrink), so the
	// in-place compaction never clobbers an unread entry.
	clear(t.atoms0)
	clear(t.atoms1)
	clear(t.atoms2)
	clear(t.atomsN)
	wAtom := 0
	wArg := uint32(0)
	var nbuf [128]byte
	for i, keep := range keepAtom {
		if !keep {
			rm.atoms[i] = -1
			continue
		}
		e := t.atoms[i]
		id := AtomID(wAtom)
		rm.atoms[i] = id
		off := wArg
		for _, c := range t.args[e.off : e.off+e.n] {
			t.args[wArg] = rm.remapCode(c)
			wArg++
		}
		cs := t.args[off:wArg]
		t.atoms[wAtom] = atomEntry{pred: e.pred, off: off, n: e.n, atom: e.atom}
		t.keys[wAtom] = t.keys[i]
		t.atomEpochs[wAtom] = t.atomEpochs[i]
		switch len(cs) {
		case 0:
			t.atoms0[e.pred] = id
		case 1:
			t.atoms1[key1{e.pred, cs[0]}] = id
		case 2:
			t.atoms2[key2{e.pred, cs[0], cs[1]}] = id
		default:
			key := binary.AppendUvarint(nbuf[:0], uint64(e.pred))
			for _, c := range cs {
				key = binary.AppendUvarint(key, uint64(c))
			}
			t.atomsN[string(key)] = id
		}
		wAtom++
	}
	t.atoms = t.atoms[:wAtom]
	t.keys = t.keys[:wAtom]
	t.atomEpochs = t.atomEpochs[:wAtom]
	t.args = t.args[:wArg]

	t.maybeShrinkLocked()
	t.approxBytes = t.recomputeBytesLocked()

	rm.Stats.AtomsAfter = wAtom
	rm.Stats.SymsAfter = len(t.symNames)
	rm.Stats.TermsAfter = len(t.termList)
	rm.Stats.Took = time.Since(start)
	t.rotations++
	t.evictedAtoms += int64(nAtoms - wAtom)
	t.remapTime += int64(rm.Stats.Took)
	return rm, nil
}

// shrinkFloor is the atom-count peak below which rotation never bothers
// rebuilding the backing containers — at this size the retained buckets are
// noise.
const shrinkFloor = 1024

// maybeShrinkLocked right-sizes the table's maps and slices after a
// compaction that left the live set far below the peak since the last
// rebuild. Go maps only ever grow their bucket arrays, and the in-place
// compaction keeps slice capacity, so a table that once absorbed a burst
// otherwise retains burst-sized backing storage forever — live *entries*
// were bounded by the budget, heap was not. Rebuilding at < ¼ of peak keeps
// the amortized cost trivial (a shrink can only follow 4× growth).
func (t *Table) maybeShrinkLocked() {
	if t.peakShrink < shrinkFloor || len(t.atoms)*4 >= t.peakShrink {
		return
	}
	syms := make(map[string]SymID, len(t.symNames))
	for name, id := range t.syms {
		syms[name] = id
	}
	t.syms = syms
	terms := make(map[string]uint32, len(t.termList))
	for k, i := range t.terms {
		terms[k] = i
	}
	t.terms = terms
	atoms0 := make(map[PredID]AtomID, len(t.atoms0))
	for k, id := range t.atoms0 {
		atoms0[k] = id
	}
	t.atoms0 = atoms0
	atoms1 := make(map[key1]AtomID, len(t.atoms1))
	for k, id := range t.atoms1 {
		atoms1[k] = id
	}
	t.atoms1 = atoms1
	atoms2 := make(map[key2]AtomID, len(t.atoms2))
	for k, id := range t.atoms2 {
		atoms2[k] = id
	}
	t.atoms2 = atoms2
	atomsN := make(map[string]AtomID, len(t.atomsN))
	for k, id := range t.atomsN {
		atomsN[k] = id
	}
	t.atomsN = atomsN

	t.symNames = append(make([]string, 0, len(t.symNames)), t.symNames...)
	t.symEpochs = append(make([]uint32, 0, len(t.symEpochs)), t.symEpochs...)
	t.termList = append(make([]ast.Term, 0, len(t.termList)), t.termList...)
	t.termEpochs = append(make([]uint32, 0, len(t.termEpochs)), t.termEpochs...)
	t.atoms = append(make([]atomEntry, 0, len(t.atoms)), t.atoms...)
	t.keys = append(make([]string, 0, len(t.keys)), t.keys...)
	t.atomEpochs = append(make([]uint32, 0, len(t.atomEpochs)), t.atomEpochs...)
	t.args = append(make([]Code, 0, len(t.args)), t.args...)

	t.peakShrink = len(t.atoms)
	t.shrinks++
}

// recomputeBytesLocked re-derives the approximate retained bytes from the
// surviving entries, resetting any drift the incremental counter picked up
// (dropped entries are never decremented outside rotation).
func (t *Table) recomputeBytesLocked() int64 {
	var b int64
	for _, name := range t.symNames {
		b += int64(len(name)) + symBytes
	}
	for _, pi := range t.predInfo {
		b += int64(len(pi.name)) + predBytes
	}
	for key := range t.terms {
		b += int64(len(key)) + termBytes
	}
	b += atomBytes*int64(len(t.atoms)) + codeBytes*int64(len(t.args))
	for _, k := range t.keys {
		b += int64(len(k))
	}
	return b
}
