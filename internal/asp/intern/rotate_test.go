package intern

import (
	"fmt"
	"testing"

	"streamrule/internal/asp/ast"
)

func TestRotateKeepsLiveDropsRest(t *testing.T) {
	tab := NewTable()
	var ids []AtomID
	var atoms []ast.Atom
	for i := 0; i < 20; i++ {
		a := ast.NewAtom("p", ast.Sym(fmt.Sprintf("c%d", i)), ast.Num(int64(i)))
		atoms = append(atoms, a)
		ids = append(ids, tab.InternAtom(a))
	}
	strs := make([]string, len(ids))
	for i, id := range ids {
		strs[i] = tab.Atom(id).String()
	}

	// New epoch so nothing is protected by the touched-this-epoch net.
	tab.AdvanceEpoch()
	live := []AtomID{ids[1], ids[4], ids[19]}
	rm, err := tab.Rotate(live)
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.NumAtoms(); got != len(live) {
		t.Fatalf("NumAtoms after rotate = %d, want %d", got, len(live))
	}
	if rm.NumLiveAtoms() != len(live) {
		t.Fatalf("NumLiveAtoms = %d", rm.NumLiveAtoms())
	}
	seen := map[AtomID]bool{}
	for _, old := range live {
		nid, ok := rm.Atom(old)
		if !ok {
			t.Fatalf("live atom %d reported evicted", old)
		}
		if seen[nid] {
			t.Fatalf("remap not injective: new id %d twice", nid)
		}
		seen[nid] = true
		if got := tab.Atom(nid).String(); got != strs[old] {
			t.Errorf("atom %d renders %q after rotation, want %q", old, got, strs[old])
		}
	}
	for i, id := range ids {
		wantLive := id == ids[1] || id == ids[4] || id == ids[19]
		if _, ok := rm.Atom(id); ok != wantLive {
			t.Errorf("rm.Atom(%d) live = %v, want %v", id, ok, wantLive)
		}
		// Round-trip: re-interning yields the remapped ID for survivors and
		// a fresh ID (beyond the compacted range) for evicted atoms.
		nid := tab.InternAtom(atoms[i])
		if wantLive {
			if want, _ := rm.Atom(id); nid != want {
				t.Errorf("re-intern of live atom %d = %d, want %d", id, nid, want)
			}
		} else if int(nid) < len(live) {
			t.Errorf("re-intern of evicted atom %d landed on surviving id %d", id, nid)
		}
		if got := tab.Atom(nid).String(); got != strs[i] {
			t.Errorf("re-interned atom renders %q, want %q", got, strs[i])
		}
	}
}

func TestRotateCurrentEpochSafetyNet(t *testing.T) {
	tab := NewTable()
	old := tab.InternAtom(ast.NewAtom("p", ast.Sym("stale")))
	tab.AdvanceEpoch()
	cur := tab.InternAtom(ast.NewAtom("p", ast.Sym("current")))
	rm, err := tab.Rotate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rm.Atom(old); ok {
		t.Error("stale atom survived an empty live set")
	}
	if nid, ok := rm.Atom(cur); !ok || tab.Atom(nid).String() != "p(current)" {
		t.Errorf("atom touched in the current epoch must survive (ok=%v)", ok)
	}
}

func TestRotatePinsPredicatesAndNameSymbols(t *testing.T) {
	tab := NewTable()
	p2 := tab.Pred("edge", 2)
	p1 := tab.Pred("node", 1)
	id := tab.InternAtom(ast.NewAtom("edge", ast.Sym("a"), ast.Sym("b")))
	tab.AdvanceEpoch()
	rm, err := tab.Rotate([]AtomID{id})
	if err != nil {
		t.Fatal(err)
	}
	// Predicate IDs are stable and their names resolve via the remapped
	// name symbols.
	if got := tab.PredName(p2); got != "edge" {
		t.Errorf("PredName(p2) = %q", got)
	}
	if got := tab.PredName(p1); got != "node" {
		t.Errorf("PredName(p1) = %q", got)
	}
	if got := tab.SymName(tab.PredNameSym(p1)); got != "node" {
		t.Errorf("name sym of node resolves to %q", got)
	}
	nid, _ := rm.Atom(id)
	if tab.AtomPred(nid) != p2 {
		t.Errorf("rotated atom changed predicate: %d != %d", tab.AtomPred(nid), p2)
	}
}

func TestRotateStructuredTerms(t *testing.T) {
	tab := NewTable()
	// An out-of-inline-range integer goes through the structured-term side
	// table.
	big := ast.Num(1 << 62)
	keep := ast.NewAtom("m", big, ast.Sym("x"))
	drop := ast.NewAtom("m", ast.Num((1<<62)+1), ast.Sym("y"))
	keepID := tab.InternAtom(keep)
	tab.InternAtom(drop)
	tab.AdvanceEpoch()
	rm, err := tab.Rotate([]AtomID{keepID})
	if err != nil {
		t.Fatal(err)
	}
	if st := tab.Stats(); st.Terms != 1 {
		t.Errorf("structured terms after rotation = %d, want 1", st.Terms)
	}
	nid, _ := rm.Atom(keepID)
	if got := tab.Atom(nid).String(); got != keep.String() {
		t.Errorf("structured atom renders %q, want %q", got, keep.String())
	}
	if again := tab.InternAtom(keep); again != nid {
		t.Errorf("re-intern of structured atom = %d, want %d", again, nid)
	}
}

func TestRotateRefusesDefaultTable(t *testing.T) {
	if _, err := Default().Rotate(nil); err == nil {
		t.Fatal("rotating the process-wide default table must be refused")
	}
}

func TestRotateStats(t *testing.T) {
	tab := NewTable()
	var live []AtomID
	for i := 0; i < 10; i++ {
		id := tab.InternAtom(ast.NewAtom("q", ast.Num(int64(i))))
		if i < 3 {
			live = append(live, id)
		}
	}
	tab.AdvanceEpoch()
	rm, err := tab.Rotate(live)
	if err != nil {
		t.Fatal(err)
	}
	if rm.Stats.AtomsBefore != 10 || rm.Stats.AtomsAfter != 3 {
		t.Errorf("rotate stats = %+v", rm.Stats)
	}
	st := tab.Stats()
	if st.Rotations != 1 || st.EvictedAtoms != 7 || st.Atoms != 3 || st.PeakAtoms != 10 {
		t.Errorf("table stats = %+v", st)
	}
	if st.Epoch != 1 {
		t.Errorf("epoch = %d", st.Epoch)
	}
}

func TestApproxBytesGrowsAndRecomputes(t *testing.T) {
	tab := NewTable()
	if got := tab.ApproxBytes(); got != 0 {
		t.Fatalf("fresh table ApproxBytes = %d, want 0", got)
	}
	var ids []AtomID
	for i := 0; i < 200; i++ {
		a := ast.NewAtom("pred", ast.Sym(fmt.Sprintf("some-long-constant-%d", i)), ast.Num(int64(i)))
		ids = append(ids, tab.InternAtom(a))
	}
	grown := tab.ApproxBytes()
	if grown <= 0 {
		t.Fatalf("ApproxBytes after interning = %d, want > 0", grown)
	}
	// Re-interning existing atoms must not inflate the estimate.
	for i := 0; i < 200; i++ {
		tab.InternAtom(ast.NewAtom("pred", ast.Sym(fmt.Sprintf("some-long-constant-%d", i)), ast.Num(int64(i))))
	}
	if again := tab.ApproxBytes(); again != grown {
		t.Fatalf("ApproxBytes changed on duplicate interning: %d -> %d", grown, again)
	}
	if st := tab.Stats(); st.Bytes != grown {
		t.Fatalf("Stats().Bytes = %d, want %d", st.Bytes, grown)
	}

	// Rotation recomputes from live state: keeping a small suffix must
	// drop the estimate substantially, and the recomputed value should be
	// consistent with interning the survivors into a fresh table.
	tab.AdvanceEpoch()
	live := ids[:10]
	if _, err := tab.Rotate(live); err != nil {
		t.Fatal(err)
	}
	after := tab.ApproxBytes()
	if after <= 0 || after >= grown {
		t.Fatalf("ApproxBytes after rotate = %d, want in (0, %d)", after, grown)
	}
	fresh := NewTable()
	for i := 0; i < 10; i++ {
		fresh.InternAtom(ast.NewAtom("pred", ast.Sym(fmt.Sprintf("some-long-constant-%d", i)), ast.Num(int64(i))))
	}
	// The rotated table may retain extra interned terms/symbols beyond the
	// live atoms' (keys cache etc.), but the same-order estimate should be
	// within a small factor of a from-scratch build.
	if after > 4*fresh.ApproxBytes()+4096 {
		t.Fatalf("rotated ApproxBytes = %d, fresh rebuild = %d: recompute drifting", after, fresh.ApproxBytes())
	}
}

func TestRotateShrinksPeakSizedContainers(t *testing.T) {
	tab := NewTable()
	const peak = 5000 // comfortably past shrinkFloor
	var ids []AtomID
	for i := 0; i < peak; i++ {
		ids = append(ids, tab.InternAtom(ast.NewAtom("q", ast.Sym(fmt.Sprintf("burst-%d", i)), ast.Num(int64(i)))))
	}
	beforeBytes := tab.ApproxBytes()

	// Rotate keeping ~1% of peak: live << peak/4, so the maps and slices
	// must be rebuilt at live size.
	tab.AdvanceEpoch()
	live := ids[:peak/100]
	rm, err := tab.Rotate(live)
	if err != nil {
		t.Fatal(err)
	}
	st := tab.Stats()
	if st.Shrinks < 1 {
		t.Fatalf("Stats().Shrinks = %d after live<<peak rotation, want >= 1", st.Shrinks)
	}
	if st.Bytes >= beforeBytes/10 {
		t.Fatalf("Stats().Bytes = %d after shrink, want < %d", st.Bytes, beforeBytes/10)
	}
	// Survivors still resolve and render correctly through the remap.
	for i, old := range live {
		nid, ok := rm.Atom(old)
		if !ok {
			t.Fatalf("live atom %d evicted by shrinking rotation", old)
		}
		want := fmt.Sprintf("q(burst-%d,%d)", i, i)
		if got := tab.Atom(nid).String(); got != want {
			t.Fatalf("atom %d renders %q after shrink, want %q", old, got, want)
		}
	}
	// And the table keeps working: fresh interning after a shrink.
	id2 := tab.InternAtom(ast.NewAtom("q", ast.Sym("post-shrink"), ast.Num(1)))
	if got := tab.Atom(id2).String(); got != "q(post-shrink,1)" {
		t.Fatalf("post-shrink intern renders %q", got)
	}

	// A rotation that keeps most of the peak must NOT shrink.
	tab2 := NewTable()
	ids = ids[:0]
	for i := 0; i < peak; i++ {
		ids = append(ids, tab2.InternAtom(ast.NewAtom("q", ast.Sym(fmt.Sprintf("warm-%d", i)), ast.Num(int64(i)))))
	}
	tab2.AdvanceEpoch()
	if _, err := tab2.Rotate(ids[:peak/2]); err != nil {
		t.Fatal(err)
	}
	if got := tab2.Stats().Shrinks; got != 0 {
		t.Fatalf("Shrinks = %d after keeping half of peak, want 0", got)
	}
}
