package intern

import (
	"fmt"
	"testing"
)

// FuzzWireDeltaRoundTrip drives the request-path wire dictionary (BeginRaw/
// RawSym/Flush on the encoder, Apply/SymName on the decoder) through
// arbitrary window sequences and checks the session contract: every encoded
// symbol decodes back to the exact string, the mirrored dictionary tracks
// the encoder's size and generation — including across forced generation
// resets under a tiny MaxEntries — and replaying a non-empty delta is
// detected as a desync instead of decoding garbage.
func FuzzWireDeltaRoundTrip(f *testing.F) {
	f.Add([]byte("\x00\x05\x01\x02\x03\x04\x05\x03\x01\x02\x06"))
	f.Add([]byte("\x07aaaabbbbccccdddd\x04eeee\x04ffff"))
	f.Add([]byte{3, 2, 200, 201, 2, 200, 202, 2, 203, 204, 1, 205})
	f.Add([]byte("\x01\x0c repeating vocabulary repeating"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		enc := NewWireEncoder()
		// Byte 0 selects the dictionary bound: 0 keeps the default, anything
		// else forces a tiny bound so generation resets actually happen.
		if sel := data[0]; sel != 0 {
			enc.MaxEntries = int(sel)%24 + 2
		}
		data = data[1:]
		dec := NewWireDecoder(nil)

		lastGen := uint32(0)
		var lastDelta DictDelta
		for len(data) > 0 {
			n := int(data[0])%12 + 1
			data = data[1:]
			if n > len(data) {
				n = len(data)
			}
			names := make([]string, n)
			for i := 0; i < n; i++ {
				names[i] = fmt.Sprintf("s%d", data[i])
			}
			data = data[n:]

			enc.BeginRaw()
			words := make([]uint64, n)
			for i, name := range names {
				words[i] = uint64(enc.RawSym(name))
			}
			delta := enc.Flush()
			if delta.Gen < lastGen {
				t.Fatalf("generation went backwards: %d after %d", delta.Gen, lastGen)
			}
			lastGen = delta.Gen
			if err := dec.Apply(&delta); err != nil {
				t.Fatalf("honest delta rejected: %v", err)
			}
			if dec.Entries() != enc.Entries() {
				t.Fatalf("mirror holds %d entries, encoder %d", dec.Entries(), enc.Entries())
			}
			for i, w := range words {
				got, err := dec.SymName(w)
				if err != nil {
					t.Fatalf("SymName(%d): %v", w, err)
				}
				if got != names[i] {
					t.Fatalf("word %d decoded to %q, want %q", w, got, names[i])
				}
			}
			// Out-of-range indexes must error, never alias.
			if _, err := dec.SymName(uint64(dec.Entries())); err == nil {
				t.Fatal("SymName accepted an index past the mirror")
			}
			lastDelta = delta
		}
		if enc.Shipped() > enc.Refs() {
			t.Fatalf("shipped %d entries on %d references", enc.Shipped(), enc.Refs())
		}
		// A duplicated (replayed) non-empty delta no longer matches the
		// mirror's base sizes: the decoder must flag the desync.
		if !lastDelta.Empty() {
			if err := dec.Apply(&lastDelta); err == nil {
				t.Fatal("replayed delta was accepted; desync undetected")
			}
		}
	})
}
