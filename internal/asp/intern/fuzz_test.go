package intern

import (
	"fmt"
	"testing"

	"streamrule/internal/asp/ast"
)

// fuzzBuildAtoms decodes the first part of data into a table population:
// atoms over three predicates (arities 1, 2, 3) with arguments drawn from
// numbers, symbols, strings, and out-of-inline-range integers (which
// exercise the structured-term side table). It returns the distinct interned
// IDs in intern order, their source atoms, and the unconsumed tail.
func fuzzBuildAtoms(tab *Table, data []byte) (ids []AtomID, atoms map[AtomID]ast.Atom, rest []byte) {
	atoms = make(map[AtomID]ast.Atom)
	if len(data) == 0 {
		return nil, atoms, nil
	}
	n := int(data[0])%48 + 1
	data = data[1:]
	arg := func(b byte) ast.Term {
		switch b % 4 {
		case 0:
			return ast.Num(int64(b))
		case 1:
			return ast.Sym(fmt.Sprintf("s%d", b%8))
		case 2:
			return ast.Str(fmt.Sprintf("t%d", b%5))
		default:
			return ast.Num(int64(1)<<62 + int64(b%7))
		}
	}
	for i := 0; i < n && len(data) > 0; i++ {
		arity := int(data[0])%3 + 1
		pred := fmt.Sprintf("p%d", arity)
		data = data[1:]
		if len(data) < arity {
			break
		}
		args := make([]ast.Term, arity)
		for k := 0; k < arity; k++ {
			args[k] = arg(data[k])
		}
		data = data[arity:]
		a := ast.Atom{Pred: pred, Args: args}
		id := tab.InternAtom(a)
		if _, seen := atoms[id]; !seen {
			ids = append(ids, id)
			atoms[id] = a
		}
	}
	return ids, atoms, data
}

// FuzzRotateRemap drives random table contents and live sets through Rotate
// and checks the remap contract: the mapping is a bijection from the live
// IDs onto the compacted dense range, every surviving atom re-renders
// identically, and re-interning any original atom round-trips (to the
// remapped ID for survivors, to a fresh ID for evicted atoms).
func FuzzRotateRemap(f *testing.F) {
	f.Add([]byte("\x10\x01\x02\x03\x02\x04\x05\x06\x01\x07\x03\x08\x09\x0a\xff\x55"))
	f.Add([]byte("\x30aaaabbbbccccddddeeeeffffgggghhhh\xaa\xbb\xcc"))
	f.Add([]byte("\x05\x03\x03\x07\x0b\x03\x0f\x13\x17\x01\x02\x00"))
	f.Add([]byte{2, 1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		tab := NewTable()
		ids, atoms, rest := fuzzBuildAtoms(tab, data)
		if len(ids) == 0 {
			return
		}
		strs := make(map[AtomID]string, len(ids))
		keys := make(map[AtomID]string, len(ids))
		for _, id := range ids {
			strs[id] = tab.Atom(id).String()
			keys[id] = tab.KeyOf(id)
		}

		// The remaining bytes select the live subset; a new epoch makes the
		// selection exact (nothing is protected as touched-this-epoch).
		tab.AdvanceEpoch()
		liveSet := make(map[AtomID]bool)
		var live []AtomID
		for i, id := range ids {
			bit := false
			if len(rest) > 0 {
				bit = rest[i/8%len(rest)]&(1<<(i%8)) != 0
			}
			if bit {
				liveSet[id] = true
				live = append(live, id)
				if i%3 == 0 {
					live = append(live, id) // duplicates must be tolerated
				}
			}
		}

		rm, err := tab.Rotate(live)
		if err != nil {
			t.Fatalf("Rotate: %v", err)
		}
		if got := tab.NumAtoms(); got != len(liveSet) {
			t.Fatalf("NumAtoms = %d, want %d live", got, len(liveSet))
		}
		if rm.NumLiveAtoms() != len(liveSet) {
			t.Fatalf("NumLiveAtoms = %d, want %d", rm.NumLiveAtoms(), len(liveSet))
		}

		// Bijection: live IDs map injectively onto [0, numLive).
		seen := make(map[AtomID]bool, len(liveSet))
		for old := range liveSet {
			nid, ok := rm.Atom(old)
			if !ok {
				t.Fatalf("live atom %d reported evicted", old)
			}
			if int(nid) < 0 || int(nid) >= len(liveSet) {
				t.Fatalf("new id %d outside dense range [0,%d)", nid, len(liveSet))
			}
			if seen[nid] {
				t.Fatalf("remap maps two live atoms to %d", nid)
			}
			seen[nid] = true
			if got := tab.Atom(nid).String(); got != strs[old] {
				t.Fatalf("atom %d renders %q after rotation, want %q", old, got, strs[old])
			}
			if got := tab.KeyOf(nid); got != keys[old] {
				t.Fatalf("atom %d key %q after rotation, want %q", old, got, keys[old])
			}
		}

		// Evicted IDs report as such; re-interning round-trips identically.
		for _, id := range ids {
			if _, ok := rm.Atom(id); ok != liveSet[id] {
				t.Fatalf("rm.Atom(%d) live = %v, want %v", id, ok, liveSet[id])
			}
		}
		for _, id := range ids {
			nid := tab.InternAtom(atoms[id])
			if liveSet[id] {
				want, _ := rm.Atom(id)
				if nid != want {
					t.Fatalf("re-intern of live atom %d = %d, want %d", id, nid, want)
				}
			} else if int(nid) < len(liveSet) {
				t.Fatalf("re-intern of evicted atom %d collided with surviving id %d", id, nid)
			}
			if got := tab.Atom(nid).String(); got != strs[id] {
				t.Fatalf("re-interned atom renders %q, want %q", got, strs[id])
			}
		}

		// A second rotation with an empty live set (after advancing the
		// epoch) must drop every atom while predicates survive.
		preds := tab.NumPreds()
		tab.AdvanceEpoch()
		if _, err := tab.Rotate(nil); err != nil {
			t.Fatalf("empty rotate: %v", err)
		}
		if tab.NumAtoms() != 0 {
			t.Fatalf("atoms after empty rotate = %d", tab.NumAtoms())
		}
		if tab.NumPreds() != preds {
			t.Fatalf("predicates changed across rotation: %d != %d", tab.NumPreds(), preds)
		}
	})
}
