// Package intern provides the shared interning layer of the engine: a symbol
// table for predicate/constant strings and a ground-atom table mapping
// pred(args...) tuples to dense AtomIDs.
//
// Production grounders (DLV, Clingo — [6], [18] in the paper) run their whole
// instantiation pipeline over integer atom identifiers and only materialize
// textual atoms at the API boundary. This package gives the Go engine the
// same discipline: the data format processor interns incoming triples
// straight to AtomIDs, the grounder indexes and dedups on IDs, the solver's
// assignments and answer sets are ID sets, and the parallel combiner unions
// sorted ID slices. Strings are rendered once per distinct atom (cached in
// the table) instead of once per use.
//
// A Table is safe for concurrent use: the partitioned reasoner runs k
// grounder/solver copies against one shared table, so answer sets from
// different partitions combine by ID without re-keying. Lookups of already
// interned data take only a read lock, which is the steady state for sliding
// windows whose contents overlap heavily from window to window.
//
// # Eviction
//
// During normal operation a table grows monotonically: memory is bounded by
// the number of DISTINCT symbols and atoms ever seen, not by the live
// window. That is the right trade for the paper's workloads (a bounded
// vocabulary of locations/vehicles recurring across windows), but a stream
// that mints fresh constants every window (timestamps, unique event IDs)
// grows the table without bound. For those streams the table supports
// epoch-based eviction (rotate.go): every entry records the last epoch it
// was interned, and Rotate compacts the table to the entries a caller still
// references (plus everything touched in the current epoch), returning a
// dense old→new ID remapping that the holders of cross-window state apply.
// The per-epoch ground.Options.Intern escape hatch (a dedicated table
// dropped wholesale) remains available for callers that keep no state.
//
// # Wire form
//
// Interned IDs are process-local, so a distributed reasoner cannot ship
// them between nodes. wire.go defines the portable wire form: WireEncoder
// re-keys a table's atoms to per-session dictionary indexes, shipping each
// symbol/predicate/term definition exactly once as a DictDelta, and
// WireDecoder mirrors the dictionary on the receiving side and re-interns
// into its own table through cached index→ID fast paths. Neither side's
// table rotations disturb the session: wire indexes are content-keyed
// identities, not IDs. See the comment in wire.go for the full design.
package intern
