package intern

import (
	"testing"

	"streamrule/internal/asp/ast"
)

// roundTrip encodes the given atoms of src through one response and decodes
// them into dst, returning the decoded IDs.
func roundTrip(t *testing.T, enc *WireEncoder, dec *WireDecoder, src *Table, ids []AtomID) []AtomID {
	t.Helper()
	enc.Begin(src)
	ws := enc.AppendSet(src, ids, nil)
	delta := enc.Flush()
	if err := dec.Apply(&delta); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	got, err := dec.DecodeSet(ws, nil)
	if err != nil {
		t.Fatalf("DecodeSet: %v", err)
	}
	return got
}

func internAll(tab *Table, atoms []ast.Atom) []AtomID {
	ids := make([]AtomID, len(atoms))
	for i, a := range atoms {
		ids[i] = tab.InternAtom(a)
	}
	return ids
}

func testAtoms() []ast.Atom {
	return []ast.Atom{
		{Pred: "alarm"},
		{Pred: "speed", Args: []ast.Term{ast.Sym("l1"), ast.Num(42)}},
		{Pred: "speed", Args: []ast.Term{ast.Sym("l2"), ast.Num(-7)}},
		{Pred: "label", Args: []ast.Term{ast.Str("hello world")}},
		{Pred: "big", Args: []ast.Term{ast.Num(1 << 62)}},
		{Pred: "route", Args: []ast.Term{
			{Kind: ast.FuncTerm, Sym: "leg", FArgs: []ast.Term{ast.Sym("a"), ast.Num(3)}},
			{Kind: ast.FuncTerm, Sym: "pair", FArgs: []ast.Term{
				{Kind: ast.FuncTerm, Sym: "leg", FArgs: []ast.Term{ast.Sym("b"), ast.Num(9)}},
				ast.Str("tag"),
			}},
		}},
		{Pred: "wide", Args: []ast.Term{ast.Sym("a"), ast.Sym("b"), ast.Sym("c"), ast.Sym("d"), ast.Num(5)}},
	}
}

// TestWireRoundTrip ships atoms of every term shape between two independent
// tables and checks the decoded atoms render identically.
func TestWireRoundTrip(t *testing.T) {
	src, dst := NewTable(), NewTable()
	atoms := testAtoms()
	ids := internAll(src, atoms)

	enc, dec := NewWireEncoder(), NewWireDecoder(dst)
	got := roundTrip(t, enc, dec, src, ids)
	if len(got) != len(ids) {
		t.Fatalf("decoded %d atoms, want %d", len(got), len(ids))
	}
	for i, id := range got {
		if want, have := src.KeyOf(ids[i]), dst.KeyOf(id); want != have {
			t.Errorf("atom %d: decoded %q, want %q", i, have, want)
		}
	}

	// Second response with the same atoms: the delta must be empty (every
	// reference is a dictionary hit) and decoding must be stable.
	enc.Begin(src)
	ws := enc.AppendSet(src, ids, nil)
	delta := enc.Flush()
	if !delta.Empty() {
		t.Fatalf("second response shipped %d dictionary entries, want 0", delta.Entries())
	}
	if err := dec.Apply(&delta); err != nil {
		t.Fatal(err)
	}
	again, err := dec.DecodeSet(ws, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != again[i] {
			t.Fatalf("unstable decode: atom %d %d != %d", i, got[i], again[i])
		}
	}
	if dec.Shipped() >= dec.Refs() {
		t.Errorf("shipped %d >= refs %d: dictionary never hit", dec.Shipped(), dec.Refs())
	}
}

// TestWireSurvivesEncoderTableRotation rotates the worker-side table (which
// renumbers its IDs) between responses; the wire form must stay consistent
// because the dictionary is keyed by content, not by local IDs.
func TestWireSurvivesEncoderTableRotation(t *testing.T) {
	src, dst := NewTable(), NewTable()
	atoms := testAtoms()
	ids := internAll(src, atoms)

	enc, dec := NewWireEncoder(), NewWireDecoder(dst)
	first := roundTrip(t, enc, dec, src, ids)

	// Evict everything except two atoms, then re-intern the full set: most
	// atoms get fresh local IDs.
	src.AdvanceEpoch()
	rm, err := src.Rotate([]AtomID{ids[1], ids[5]})
	if err != nil {
		t.Fatal(err)
	}
	if rm.NumLiveAtoms() >= len(ids) {
		t.Fatalf("rotation evicted nothing (live %d)", rm.NumLiveAtoms())
	}
	ids2 := internAll(src, atoms)

	enc.Begin(src)
	ws := enc.AppendSet(src, ids2, nil)
	delta := enc.Flush()
	if !delta.Empty() {
		t.Errorf("post-rotation response re-shipped %d entries; dictionary should be ID-independent", delta.Entries())
	}
	if err := dec.Apply(&delta); err != nil {
		t.Fatal(err)
	}
	got, err := dec.DecodeSet(ws, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i] != got[i] {
			t.Fatalf("atom %d decoded to %d before rotation, %d after", i, first[i], got[i])
		}
	}
}

// TestWireDecoderSurvivesLocalRotation rotates the coordinator-side table;
// InvalidateLocal must let the decoder re-intern from its mirrored strings
// without anything being re-shipped.
func TestWireDecoderSurvivesLocalRotation(t *testing.T) {
	src, dst := NewTable(), NewTable()
	atoms := testAtoms()
	ids := internAll(src, atoms)

	enc, dec := NewWireEncoder(), NewWireDecoder(dst)
	roundTrip(t, enc, dec, src, ids)

	dst.AdvanceEpoch()
	if _, err := dst.Rotate(nil); err != nil {
		t.Fatal(err)
	}
	dec.InvalidateLocal()

	enc.Begin(src)
	ws := enc.AppendSet(src, ids, nil)
	delta := enc.Flush()
	if err := dec.Apply(&delta); err != nil {
		t.Fatal(err)
	}
	got, err := dec.DecodeSet(ws, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range got {
		if want, have := src.KeyOf(ids[i]), dst.KeyOf(id); want != have {
			t.Errorf("atom %d: decoded %q, want %q", i, have, want)
		}
	}
}

// TestWireGenerationReset drives the encoder past MaxEntries; the decoder
// must follow the generation bump and keep decoding correctly.
func TestWireGenerationReset(t *testing.T) {
	src, dst := NewTable(), NewTable()
	enc, dec := NewWireEncoder(), NewWireDecoder(dst)
	enc.MaxEntries = 8

	for round := 0; round < 12; round++ {
		a := ast.Atom{Pred: "ev", Args: []ast.Term{ast.Sym("c" + string(rune('a'+round))), ast.Num(int64(round))}}
		id := src.InternAtom(a)
		got := roundTrip(t, enc, dec, src, []AtomID{id})
		if want, have := src.KeyOf(id), dst.KeyOf(got[0]); want != have {
			t.Fatalf("round %d: decoded %q, want %q", round, have, want)
		}
	}
	if enc.Gen() == 1 {
		t.Fatalf("encoder never reset its dictionary (entries %d, max %d)", enc.Entries(), enc.MaxEntries)
	}
}

// TestWireDesyncDetected feeds a decoder a delta whose base sizes do not
// match its mirror — the replay-after-restart failure mode — and expects a
// hard error rather than silent garbage.
func TestWireDesyncDetected(t *testing.T) {
	src, dst := NewTable(), NewTable()
	id := src.InternAtom(ast.Atom{Pred: "p", Args: []ast.Term{ast.Sym("x")}})

	enc := NewWireEncoder()
	enc.Begin(src)
	enc.AppendAtom(src, id, nil)
	enc.Flush() // shipped to nobody: the response was lost

	enc.Begin(src)
	id2 := src.InternAtom(ast.Atom{Pred: "p", Args: []ast.Term{ast.Sym("y")}})
	enc.AppendAtom(src, id2, nil)
	delta := enc.Flush()

	dec := NewWireDecoder(dst)
	if err := dec.Apply(&delta); err == nil {
		t.Fatal("Apply accepted a delta built against entries the decoder never received")
	}
}

// TestWireDecodeRejectsCorruptSets exercises the bounds checks on malformed
// wire sets (the transport's last line of defense behind frame limits).
func TestWireDecodeRejectsCorruptSets(t *testing.T) {
	src, dst := NewTable(), NewTable()
	id := src.InternAtom(ast.Atom{Pred: "p", Args: []ast.Term{ast.Sym("x"), ast.Num(1)}})
	enc, dec := NewWireEncoder(), NewWireDecoder(dst)
	ws := func() WireSet {
		enc.Begin(src)
		out := enc.AppendAtom(src, id, nil)
		delta := enc.Flush()
		if err := dec.Apply(&delta); err != nil {
			t.Fatal(err)
		}
		return out
	}()

	bad := []struct {
		name string
		ws   WireSet
	}{
		{"truncated header", ws[:1]},
		{"truncated args", ws[:len(ws)-1]},
		{"unknown pred", append(WireSet{99, 0}, ws...)},
		{"arity overrun", WireSet{ws[0], 99}},
		// Indexes that alias onto valid entries after uint32 truncation
		// must still be rejected (full-payload bounds checks).
		{"aliasing pred index", WireSet{ws[0] + (1 << 32), ws[1], ws[2], ws[3]}},
		{"aliasing sym code", WireSet{ws[0], ws[1], ws[2] + (1 << 32), ws[3]}},
	}
	for _, tc := range bad {
		if _, err := dec.DecodeSet(tc.ws, nil); err == nil {
			t.Errorf("%s: decoded without error", tc.name)
		}
	}
}

// TestWireRejectsMaliciousTermDefs pins the Apply-side validation: term
// definitions may reference only entries defined before them, so a
// self-referential (or forward-referencing) definition is rejected up
// front instead of recursing the decoder into a stack overflow.
func TestWireRejectsMaliciousTermDefs(t *testing.T) {
	deltas := []struct {
		name  string
		delta DictDelta
	}{
		{"self-referential term", DictDelta{
			Gen:  1,
			Syms: []string{"f"},
			Terms: []WireTermDef{
				{Func: 0, Args: []uint64{uint64(tagTerm) | 0}},
			},
		}},
		{"forward-referencing term", DictDelta{
			Gen:  1,
			Syms: []string{"f"},
			Terms: []WireTermDef{
				{Func: 0, Args: []uint64{uint64(tagTerm) | 1}},
				{Num: 1, IsNum: true},
			},
		}},
		{"unknown symbol in term args", DictDelta{
			Gen:  1,
			Syms: []string{"f"},
			Terms: []WireTermDef{
				{Func: 0, Args: []uint64{uint64(tagSym) | 7}},
			},
		}},
	}
	for _, tc := range deltas {
		dec := NewWireDecoder(NewTable())
		if err := dec.Apply(&tc.delta); err == nil {
			t.Errorf("%s: Apply accepted the definition", tc.name)
		}
	}
}
