package intern

import (
	"encoding/binary"
	"sort"
	"sync"
	"sync/atomic"

	"streamrule/internal/asp/ast"
)

// SymID identifies an interned constant/predicate-name string.
type SymID int32

// PredID identifies an interned (name, arity) predicate.
type PredID int32

// AtomID identifies an interned ground atom. IDs are dense: the first
// interned atom gets 0, the next 1, and so on.
type AtomID int32

// Code is a 64-bit encoding of a ground term: 2 tag bits plus a 62-bit
// payload (an inline integer, a SymID, or an index into the side table of
// structured terms).
type Code uint64

const (
	codeShift          = 62
	codeTagMask  Code  = 3 << codeShift
	tagNum       Code  = 0 << codeShift
	tagSym       Code  = 1 << codeShift
	tagStr       Code  = 2 << codeShift
	tagTerm      Code  = 3 << codeShift
	payloadMask  Code  = (1 << codeShift) - 1
	maxInlineNum int64 = 1<<61 - 1
	minInlineNum int64 = -(1 << 61)
)

type predKey struct {
	name  string
	arity int
}

type predInfo struct {
	name    string
	nameSym SymID
	arity   int
}

type key1 struct {
	pred PredID
	c0   Code
}

type key2 struct {
	pred PredID
	c0   Code
	c1   Code
}

type atomEntry struct {
	pred PredID
	// off/n locate the argument codes in the args arena.
	off uint32
	n   uint32
	// atom is the materialized form, built once at intern time.
	atom ast.Atom
}

// Table interns symbols, predicates, and ground atoms. The zero value is not
// usable; call NewTable (or use Default).
type Table struct {
	mu sync.RWMutex

	syms     map[string]SymID
	symNames []string

	preds    map[predKey]PredID
	predInfo []predInfo

	// Structured ground terms (function terms, out-of-range integers) that
	// do not fit a Code payload, keyed by their canonical rendering.
	terms    map[string]uint32
	termList []ast.Term

	atoms []atomEntry
	args  []Code
	// keys caches the canonical string key per atom, rendered lazily.
	keys []string

	atoms0 map[PredID]AtomID
	atoms1 map[key1]AtomID
	atoms2 map[key2]AtomID
	atomsN map[string]AtomID

	// Epoch-based eviction state (rotate.go). epoch is read/written
	// atomically (AdvanceEpoch takes no lock); the per-entry epoch slices
	// are aligned with symNames/predInfo/termList/atoms and record the last
	// epoch an entry was interned or re-interned. Under a read lock they are
	// accessed atomically (concurrent readers touch entries); under the
	// write lock plain access is safe.
	epoch      uint32
	symEpochs  []uint32
	predEpochs []uint32
	termEpochs []uint32
	atomEpochs []uint32

	rotations    int
	evictedAtoms int64
	peakAtoms    int
	remapTime    int64 // nanoseconds spent inside Rotate

	// approxBytes approximates the heap retained by the table's entries
	// (strings, argument codes, map/slice overheads). It is maintained
	// incrementally on every insertion under the write lock and recomputed
	// from scratch by Rotate, so drift cannot accumulate across rotations.
	// Byte-based memory budgets trigger on it; see ApproxBytes.
	approxBytes int64
	// peakShrink is the peak atom count since the backing maps and slices
	// were last right-sized. Go maps never shrink, so after a burst a
	// rotated table keeps peak-sized buckets; Rotate rebuilds the
	// containers when the live count falls far enough below this peak.
	peakShrink int
	shrinks    int
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{
		syms:   make(map[string]SymID),
		preds:  make(map[predKey]PredID),
		terms:  make(map[string]uint32),
		atoms0: make(map[PredID]AtomID),
		atoms1: make(map[key1]AtomID),
		atoms2: make(map[key2]AtomID),
		atomsN: make(map[string]AtomID),
	}
}

// Approximate per-entry retained-byte costs: each constant covers the entry's
// struct/slice slot, its epoch word, and its share of the lookup-map buckets.
// The model is deliberately coarse — budgets need proportionality to real
// heap, not exact accounting — but it scales with string length, which the
// entry-count budget cannot (N atoms over long URIs retain far more heap
// than N atoms over short numbers).
const (
	symBytes  = 56  // map bucket share + string header + index + epoch slots
	predBytes = 72  // predKey map share + predInfo entry + epoch slot
	termBytes = 112 // key string share + ast.Term + epoch slot
	atomBytes = 96  // atomEntry + lookup-map share + key/epoch slots
	codeBytes = 8   // one argument Code in the args arena
)

// ApproxBytes returns the approximate heap bytes retained by the table's
// entries. Maintained incrementally (insertions only) and recomputed at every
// rotation; intended for byte-based memory budgets and observability, not for
// exact heap accounting.
func (t *Table) ApproxBytes() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.approxBytes
}

var defaultTable = NewTable()

// Default returns the process-wide shared table. Engines and answer sets use
// it unless configured otherwise, so IDs from independent components are
// directly comparable.
func Default() *Table { return defaultTable }

// curEpoch reads the current epoch. Safe without any lock.
func (t *Table) curEpoch() uint32 { return atomic.LoadUint32(&t.epoch) }

// The touch helpers record the current epoch on an entry. They require at
// least a read lock (so the epoch slices cannot be reallocated underneath)
// and store atomically, since multiple read-lock holders may touch
// concurrently. Epoch 0 means epoch tracking is off (AdvanceEpoch was never
// called — the table will not rotate), so the hot paths of non-rotating
// tables pay a read of a never-written word instead of contended stores.
func (t *Table) touchSym(id SymID) {
	if e := t.curEpoch(); e != 0 {
		atomic.StoreUint32(&t.symEpochs[id], e)
	}
}

func (t *Table) touchPred(id PredID) {
	if e := t.curEpoch(); e != 0 {
		atomic.StoreUint32(&t.predEpochs[id], e)
	}
}

func (t *Table) touchAtom(id AtomID) {
	if e := t.curEpoch(); e != 0 {
		atomic.StoreUint32(&t.atomEpochs[id], e)
	}
}

// touchTerm is the term-side touch helper, same contract as the others.
func (t *Table) touchTerm(i uint32) {
	if e := t.curEpoch(); e != 0 {
		atomic.StoreUint32(&t.termEpochs[i], e)
	}
}

// Sym interns a constant or predicate-name string.
func (t *Table) Sym(name string) SymID {
	t.mu.RLock()
	id, ok := t.syms[name]
	if ok {
		t.touchSym(id)
	}
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.symLocked(name)
}

func (t *Table) symLocked(name string) SymID {
	if id, ok := t.syms[name]; ok {
		t.touchSym(id)
		return id
	}
	id := SymID(len(t.symNames))
	t.symNames = append(t.symNames, name)
	t.symEpochs = append(t.symEpochs, t.curEpoch())
	t.syms[name] = id
	t.approxBytes += int64(len(name)) + symBytes
	return id
}

// SymName returns the string of an interned symbol.
func (t *Table) SymName(id SymID) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.symNames[id]
}

// LookupSym reports the SymID of name without interning it.
func (t *Table) LookupSym(name string) (SymID, bool) {
	t.mu.RLock()
	id, ok := t.syms[name]
	t.mu.RUnlock()
	return id, ok
}

// Pred interns a (name, arity) predicate.
func (t *Table) Pred(name string, arity int) PredID {
	k := predKey{name, arity}
	t.mu.RLock()
	id, ok := t.preds[k]
	if ok {
		t.touchPred(id)
	}
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.predLocked(k)
}

func (t *Table) predLocked(k predKey) PredID {
	if id, ok := t.preds[k]; ok {
		t.touchPred(id)
		return id
	}
	id := PredID(len(t.predInfo))
	t.predInfo = append(t.predInfo, predInfo{name: k.name, nameSym: t.symLocked(k.name), arity: k.arity})
	t.predEpochs = append(t.predEpochs, t.curEpoch())
	t.preds[k] = id
	t.approxBytes += int64(len(k.name)) + predBytes
	return id
}

// LookupPred reports the PredID of (name, arity) without interning it.
func (t *Table) LookupPred(name string, arity int) (PredID, bool) {
	t.mu.RLock()
	id, ok := t.preds[predKey{name, arity}]
	t.mu.RUnlock()
	return id, ok
}

// PredName returns the predicate name.
func (t *Table) PredName(p PredID) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.predInfo[p].name
}

// PredNameSym returns the SymID of the predicate name.
func (t *Table) PredNameSym(p PredID) SymID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.predInfo[p].nameSym
}

// PredArity returns the predicate arity.
func (t *Table) PredArity(p PredID) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.predInfo[p].arity
}

// NumPreds returns the number of interned predicates.
func (t *Table) NumPreds() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.predInfo)
}

// CodeNum encodes an integer inline when it fits the payload.
func CodeNum(n int64) (Code, bool) {
	if n < minInlineNum || n > maxInlineNum {
		return 0, false
	}
	return tagNum | (Code(uint64(n)) & payloadMask), true
}

// CodeSym wraps a SymID as a term code.
func CodeSym(id SymID) Code { return tagSym | Code(id) }

// CodeOf interns a ground term and returns its code. The second result is
// false when the term is not ground.
func (t *Table) CodeOf(term ast.Term) (Code, bool) {
	if c, ok, done := codeInline(term); done {
		return c, ok
	}
	switch term.Kind {
	case ast.SymbolTerm:
		return tagSym | Code(t.Sym(term.Sym)), true
	case ast.StringTerm:
		return tagStr | Code(t.Sym(term.Sym)), true
	}
	return t.codeStructured(term)
}

// codeInline handles the cases that need no table access: inline numbers and
// non-ground terms. done reports whether the case was decided here.
func codeInline(term ast.Term) (c Code, ok, done bool) {
	switch term.Kind {
	case ast.NumberTerm:
		if c, ok := CodeNum(term.Num); ok {
			return c, true, true
		}
		return 0, false, false
	case ast.SymbolTerm, ast.StringTerm:
		return 0, false, false
	case ast.VariableTerm, ast.IntervalTerm:
		return 0, false, true
	default:
		if !term.IsGround() {
			return 0, false, true
		}
		return 0, false, false
	}
}

// codeStructured interns a ground structured term (function term, folded
// arithmetic, out-of-range integer) through the side table.
func (t *Table) codeStructured(term ast.Term) (Code, bool) {
	if term.Kind == ast.ArithTerm {
		v, err := term.Eval(nil)
		if err != nil {
			return 0, false
		}
		return t.CodeOf(v)
	}
	key := term.String()
	t.mu.RLock()
	i, ok := t.terms[key]
	if ok {
		t.touchTerm(i)
	}
	t.mu.RUnlock()
	if ok {
		return tagTerm | Code(i), true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if i, ok := t.terms[key]; ok {
		t.touchTerm(i)
		return tagTerm | Code(i), true
	}
	i = uint32(len(t.termList))
	t.termList = append(t.termList, term)
	t.termEpochs = append(t.termEpochs, t.curEpoch())
	t.terms[key] = i
	t.approxBytes += int64(len(key)) + termBytes
	return tagTerm | Code(i), true
}

// LookupCode returns the code of a ground term without interning anything.
// ok is false when the term is not ground or was never interned (in which
// case no interned atom can contain it).
func (t *Table) LookupCode(term ast.Term) (Code, bool) {
	if c, ok, done := codeInline(term); done {
		return c, ok
	}
	switch term.Kind {
	case ast.SymbolTerm:
		id, ok := t.LookupSym(term.Sym)
		return tagSym | Code(id), ok
	case ast.StringTerm:
		id, ok := t.LookupSym(term.Sym)
		return tagStr | Code(id), ok
	case ast.ArithTerm:
		v, err := term.Eval(nil)
		if err != nil {
			return 0, false
		}
		return t.LookupCode(v)
	}
	key := term.String()
	t.mu.RLock()
	i, ok := t.terms[key]
	t.mu.RUnlock()
	return tagTerm | Code(i), ok
}

// TermOf decodes a code back into a term.
func (t *Table) TermOf(c Code) ast.Term {
	payload := c & payloadMask
	switch c & codeTagMask {
	case tagNum:
		// Sign-extend the 62-bit payload.
		return ast.Num(int64(uint64(payload)<<2) >> 2)
	case tagSym:
		return ast.Sym(t.SymName(SymID(payload)))
	case tagStr:
		return ast.Str(t.SymName(SymID(payload)))
	default:
		t.mu.RLock()
		defer t.mu.RUnlock()
		return t.termList[payload]
	}
}

// InternAtom interns a ground atom, returning its dense ID.
func (t *Table) InternAtom(a ast.Atom) AtomID {
	t.mu.RLock()
	id, ok := t.lookupAtomRLocked(a)
	if ok {
		t.touchAtom(id)
	}
	t.mu.RUnlock()
	if ok {
		return id
	}
	return t.internAtomSlow(a)
}

// LookupAtom reports the ID of a ground atom without interning it.
func (t *Table) LookupAtom(a ast.Atom) (AtomID, bool) {
	t.mu.RLock()
	id, ok := t.lookupAtomRLocked(a)
	t.mu.RUnlock()
	return id, ok
}

// lookupAtomRLocked probes the atom maps under a held read lock. It must not
// intern anything, so unseen symbols or terms report a miss directly.
func (t *Table) lookupAtomRLocked(a ast.Atom) (AtomID, bool) {
	p, ok := t.preds[predKey{a.Pred, len(a.Args)}]
	if !ok {
		return 0, false
	}
	switch len(a.Args) {
	case 0:
		id, ok := t.atoms0[p]
		return id, ok
	case 1:
		c0, ok := t.lookupCodeLocked(a.Args[0])
		if !ok {
			return 0, false
		}
		id, ok := t.atoms1[key1{p, c0}]
		return id, ok
	case 2:
		c0, ok := t.lookupCodeLocked(a.Args[0])
		if !ok {
			return 0, false
		}
		c1, ok := t.lookupCodeLocked(a.Args[1])
		if !ok {
			return 0, false
		}
		id, ok := t.atoms2[key2{p, c0, c1}]
		return id, ok
	default:
		var buf [128]byte
		key, ok := t.atomNKeyLocked(buf[:0], p, a.Args)
		if !ok {
			return 0, false
		}
		id, ok := t.atomsN[string(key)]
		return id, ok
	}
}

// lookupCodeLocked is LookupCode under a held lock.
func (t *Table) lookupCodeLocked(term ast.Term) (Code, bool) {
	if c, ok, done := codeInline(term); done {
		return c, ok
	}
	switch term.Kind {
	case ast.SymbolTerm:
		id, ok := t.syms[term.Sym]
		return tagSym | Code(id), ok
	case ast.StringTerm:
		id, ok := t.syms[term.Sym]
		return tagStr | Code(id), ok
	case ast.ArithTerm:
		v, err := term.Eval(nil)
		if err != nil {
			return 0, false
		}
		return t.lookupCodeLocked(v)
	}
	i, ok := t.terms[term.String()]
	return tagTerm | Code(i), ok
}

func (t *Table) atomNKeyLocked(dst []byte, p PredID, args []ast.Term) ([]byte, bool) {
	dst = binary.AppendUvarint(dst, uint64(p))
	for _, a := range args {
		c, ok := t.lookupCodeLocked(a)
		if !ok {
			return nil, false
		}
		dst = binary.AppendUvarint(dst, uint64(c))
	}
	return dst, true
}

func (t *Table) internAtomSlow(a ast.Atom) AtomID {
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.predLocked(predKey{a.Pred, len(a.Args)})
	var codes [8]Code
	cs := codes[:0]
	for _, arg := range a.Args {
		c, ok := t.codeOfLocked(arg)
		if !ok {
			panic("intern: atom " + a.String() + " is not ground")
		}
		cs = append(cs, c)
	}
	return t.internCodesLocked(p, cs, a)
}

// codeOfLocked is CodeOf under a held write lock.
func (t *Table) codeOfLocked(term ast.Term) (Code, bool) {
	if c, ok, done := codeInline(term); done {
		return c, ok
	}
	switch term.Kind {
	case ast.SymbolTerm:
		return tagSym | Code(t.symLocked(term.Sym)), true
	case ast.StringTerm:
		return tagStr | Code(t.symLocked(term.Sym)), true
	case ast.ArithTerm:
		v, err := term.Eval(nil)
		if err != nil {
			return 0, false
		}
		return t.codeOfLocked(v)
	}
	key := term.String()
	if i, ok := t.terms[key]; ok {
		t.touchTerm(i)
		return tagTerm | Code(i), true
	}
	i := uint32(len(t.termList))
	t.termList = append(t.termList, term)
	t.termEpochs = append(t.termEpochs, t.curEpoch())
	t.terms[key] = i
	t.approxBytes += int64(len(key)) + termBytes
	return tagTerm | Code(i), true
}

// internCodesLocked inserts (or finds) the atom for pred+codes. When mat is
// non-zero it is stored as the materialized form; otherwise the atom is
// decoded from the codes.
func (t *Table) internCodesLocked(p PredID, cs []Code, mat ast.Atom) AtomID {
	switch len(cs) {
	case 0:
		if id, ok := t.atoms0[p]; ok {
			t.touchAtom(id)
			return id
		}
		id := t.addAtomLocked(p, cs, mat)
		t.atoms0[p] = id
		return id
	case 1:
		k := key1{p, cs[0]}
		if id, ok := t.atoms1[k]; ok {
			t.touchAtom(id)
			return id
		}
		id := t.addAtomLocked(p, cs, mat)
		t.atoms1[k] = id
		return id
	case 2:
		k := key2{p, cs[0], cs[1]}
		if id, ok := t.atoms2[k]; ok {
			t.touchAtom(id)
			return id
		}
		id := t.addAtomLocked(p, cs, mat)
		t.atoms2[k] = id
		return id
	default:
		var buf [128]byte
		key := binary.AppendUvarint(buf[:0], uint64(p))
		for _, c := range cs {
			key = binary.AppendUvarint(key, uint64(c))
		}
		if id, ok := t.atomsN[string(key)]; ok {
			t.touchAtom(id)
			return id
		}
		id := t.addAtomLocked(p, cs, mat)
		t.atomsN[string(key)] = id
		return id
	}
}

func (t *Table) addAtomLocked(p PredID, cs []Code, mat ast.Atom) AtomID {
	if mat.Pred == "" {
		mat = t.materializeLocked(p, cs)
	}
	id := AtomID(len(t.atoms))
	off := uint32(len(t.args))
	t.args = append(t.args, cs...)
	t.atoms = append(t.atoms, atomEntry{pred: p, off: off, n: uint32(len(cs)), atom: mat})
	t.keys = append(t.keys, "")
	t.atomEpochs = append(t.atomEpochs, t.curEpoch())
	t.approxBytes += atomBytes + codeBytes*int64(len(cs))
	if len(t.atoms) > t.peakAtoms {
		t.peakAtoms = len(t.atoms)
	}
	if len(t.atoms) > t.peakShrink {
		t.peakShrink = len(t.atoms)
	}
	return id
}

func (t *Table) materializeLocked(p PredID, cs []Code) ast.Atom {
	info := t.predInfo[p]
	if len(cs) == 0 {
		return ast.Atom{Pred: info.name}
	}
	args := make([]ast.Term, len(cs))
	for i, c := range cs {
		args[i] = t.termOfLocked(c)
	}
	return ast.Atom{Pred: info.name, Args: args}
}

func (t *Table) termOfLocked(c Code) ast.Term {
	payload := c & payloadMask
	switch c & codeTagMask {
	case tagNum:
		return ast.Num(int64(uint64(payload)<<2) >> 2)
	case tagSym:
		return ast.Sym(t.symNames[payload])
	case tagStr:
		return ast.Str(t.symNames[payload])
	default:
		return t.termList[payload]
	}
}

// InternAtom0 interns a 0-ary atom by predicate.
func (t *Table) InternAtom0(p PredID) AtomID {
	t.mu.RLock()
	id, ok := t.atoms0[p]
	if ok {
		t.touchAtom(id)
	}
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.internCodesLocked(p, nil, ast.Atom{})
}

// InternAtom1 interns a unary atom from a predicate and an argument code.
func (t *Table) InternAtom1(p PredID, c0 Code) AtomID {
	t.mu.RLock()
	id, ok := t.atoms1[key1{p, c0}]
	if ok {
		t.touchAtom(id)
	}
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.internCodesLocked(p, []Code{c0}, ast.Atom{})
}

// InternAtom2 interns a binary atom from a predicate and argument codes.
func (t *Table) InternAtom2(p PredID, c0, c1 Code) AtomID {
	t.mu.RLock()
	id, ok := t.atoms2[key2{p, c0, c1}]
	if ok {
		t.touchAtom(id)
	}
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.internCodesLocked(p, []Code{c0, c1}, ast.Atom{})
}

// Atom returns the materialized form of an interned atom. The returned value
// shares its argument slice with the table and must not be modified.
func (t *Table) Atom(id AtomID) ast.Atom {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.atoms[id].atom
}

// AtomPred returns the predicate of an interned atom.
func (t *Table) AtomPred(id AtomID) PredID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.atoms[id].pred
}

// ArgCodes returns the argument codes of an interned atom. The slice aliases
// the table's arena and must not be modified.
func (t *Table) ArgCodes(id AtomID) []Code {
	t.mu.RLock()
	defer t.mu.RUnlock()
	e := t.atoms[id]
	return t.args[e.off : e.off+e.n : e.off+e.n]
}

// NumAtoms returns the number of interned atoms.
func (t *Table) NumAtoms() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.atoms)
}

// KeyOf returns the canonical string key of an interned atom (identical to
// ast.Atom.Key), rendered once and cached.
func (t *Table) KeyOf(id AtomID) string {
	t.mu.RLock()
	k := t.keys[id]
	a := t.atoms[id].atom
	t.mu.RUnlock()
	if k != "" {
		return k
	}
	k = a.Key()
	t.mu.Lock()
	if t.keys[id] == "" {
		t.keys[id] = k
		t.approxBytes += int64(len(k))
	} else {
		k = t.keys[id]
	}
	t.mu.Unlock()
	return k
}

// SortByKey sorts parallel slices by the given cached-key slice. swap must
// exchange indices i and j in every aligned slice, including keys itself.
// It backs the key-ordered views of grounder output and answer sets.
func SortByKey(keys []string, swap func(i, j int)) {
	sort.Sort(&keySorter{keys: keys, swap: swap})
}

type keySorter struct {
	keys []string
	swap func(i, j int)
}

func (s *keySorter) Len() int           { return len(s.keys) }
func (s *keySorter) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *keySorter) Swap(i, j int)      { s.swap(i, j) }
