// Portable wire form: stable codes + per-session symbol dictionaries.
//
// Interned IDs are process-local: two tables intern the same atom under
// different AtomIDs, and a budgeted table renumbers its IDs on every
// rotation. When a remote worker ships answer sets to a coordinator it
// therefore cannot send raw IDs. The wire form solves cross-node identity
// with a per-session dictionary: the encoder (worker side) assigns every
// symbol, predicate, and structured term a small stable wire index the first
// time it is referenced, ships the definition once in that response's
// DictDelta, and thereafter refers to it by index alone. The decoder
// (coordinator side) mirrors the dictionary and re-interns through it into
// its own table, caching wire index → local ID so steady-state windows cost
// integer lookups, not string interning. On streams whose vocabulary
// repeats, deltas are empty after the first windows — only new symbols ever
// cross the wire.
//
// Wire codes reuse the Code tag layout (2 tag bits + 62-bit payload):
// inline numbers travel unchanged, while symbol/string/term payloads hold
// dictionary indexes instead of table-local IDs. Wire indexes are assigned
// densely per session and are independent of both tables' IDs, so a worker
// rotating its table under a memory budget (the encoder's caches are
// invalidated, the dictionary itself is keyed by content) and a coordinator
// rotating its own (InvalidateLocal drops the decoder's ID caches, the
// mirrored definitions persist) both keep the session consistent.
//
// The dictionary is the wire-level analogue of the interning table, and it
// gets the analogue of table rotation: when the encoder outgrows
// MaxEntries — only possible on fresh-constant streams — it resets the
// session dictionary wholesale and bumps its generation, exactly as a
// rotation opens a fresh epoch; the decoder observes the new generation,
// resets its mirror, and the next delta re-ships the (small) live
// vocabulary. Every delta also carries the dictionary sizes it was built
// against, so a desynchronized session (a worker restarted behind a kept
// connection, a dropped response) is detected instead of silently decoding
// garbage.

package intern

import (
	"fmt"

	"streamrule/internal/asp/ast"
)

// WireSet is one answer set in wire form: a flat stream of uint64 words,
// [pred, nargs, arg...] per atom, where pred is a dictionary index and each
// arg is a wire code (the Code tag layout with dictionary payloads).
type WireSet []uint64

// DictDelta carries the dictionary entries a response references that the
// session has not shipped before. Entries append in order: the index of
// Syms[i] is BaseSyms+i, and likewise for predicates and terms. A term
// definition may reference symbols and terms of the same delta, as long as
// they precede it.
type DictDelta struct {
	// Gen is the encoder's dictionary generation. A bumped generation tells
	// the decoder the whole dictionary was reset (see WireEncoder.MaxEntries)
	// and the indexes restart from zero.
	Gen uint32
	// BaseSyms/BasePreds/BaseTerms are the dictionary sizes the encoder held
	// before appending this delta's entries — a desync check for the decoder.
	BaseSyms, BasePreds, BaseTerms uint32
	// Syms lists new symbol strings (shared by constants, quoted strings,
	// predicate names, and functors).
	Syms []string
	// Preds lists new predicate definitions.
	Preds []WirePredDef
	// Terms lists new structured-term definitions.
	Terms []WireTermDef
}

// Empty reports whether the delta ships no new entries (the steady state).
func (d *DictDelta) Empty() bool {
	return len(d.Syms) == 0 && len(d.Preds) == 0 && len(d.Terms) == 0
}

// Entries returns the number of dictionary entries the delta ships.
func (d *DictDelta) Entries() int { return len(d.Syms) + len(d.Preds) + len(d.Terms) }

// WirePredDef defines a predicate: a dictionary symbol index for the name
// plus the arity.
type WirePredDef struct {
	Sym   uint32
	Arity int32
}

// WireTermDef defines a structured term that does not fit an inline wire
// code: a function term f(args...) or an integer outside the inline range.
type WireTermDef struct {
	// Func is the dictionary symbol index of the functor. It is meaningful
	// only when IsNum is false.
	Func uint32
	// Args are the argument wire codes of a function term; they may
	// reference only dictionary entries defined before this one.
	Args []uint64
	// Num carries the value of an out-of-inline-range integer when IsNum is
	// set.
	Num   int64
	IsNum bool
}

// DefaultMaxDictEntries bounds a session dictionary before the encoder
// resets it (symbol + predicate + term entries). Only streams that mint
// fresh constants without bound ever reach it.
const DefaultMaxDictEntries = 1 << 20

// WireEncoder translates interned atoms of a local table into the portable
// wire form, maintaining the session dictionary and the pending delta. An
// encoder belongs to one session (one remote peer) and is not safe for
// concurrent use.
type WireEncoder struct {
	gen    uint32
	syms   map[string]uint32
	nSyms  uint32
	preds  map[predKey]uint32
	nPreds uint32
	terms  map[string]uint32 // canonical rendering → index
	nTerms uint32

	pendSyms  []string
	pendPreds []WirePredDef
	pendTerms []WireTermDef

	// Table-local fast paths: local ID → wire index. Valid only for the
	// table and rotation count they were built against; Begin invalidates
	// them, falling back to the content-keyed dictionary above.
	cacheTab  *Table
	cacheRot  int
	symCache  map[SymID]uint32
	predCache map[PredID]uint32
	termCache map[uint32]uint32

	// MaxEntries bounds the dictionary; exceeding it at Begin resets the
	// session (generation bump). 0 means DefaultMaxDictEntries.
	MaxEntries int

	// refs/shipped mirror the decoder-side counters for encoders used on the
	// request path (RawSym), where the hit rate is naturally measured at the
	// encoding end: refs counts symbol references encoded, shipped counts the
	// dictionary entries that had to travel in deltas.
	refs    int64
	shipped int64
}

// NewWireEncoder returns an empty encoder at generation 1.
func NewWireEncoder() *WireEncoder {
	e := &WireEncoder{gen: 1}
	e.reset()
	return e
}

// Gen returns the current dictionary generation.
func (e *WireEncoder) Gen() uint32 { return e.gen }

// Entries returns the current dictionary size.
func (e *WireEncoder) Entries() int { return int(e.nSyms + e.nPreds + e.nTerms) }

func (e *WireEncoder) reset() {
	e.syms = make(map[string]uint32)
	e.preds = make(map[predKey]uint32)
	e.terms = make(map[string]uint32)
	e.nSyms, e.nPreds, e.nTerms = 0, 0, 0
	e.pendSyms, e.pendPreds, e.pendTerms = nil, nil, nil
	e.cacheTab = nil
}

// Begin prepares the encoder for one response against the given table. It
// resets the dictionary (bumping the generation) when MaxEntries is
// exceeded, and invalidates the ID fast paths when the table rotated since
// the last response (the content-keyed dictionary survives rotations — wire
// indexes are stable identities, local IDs are not).
func (e *WireEncoder) Begin(tab *Table) {
	max := e.MaxEntries
	if max <= 0 {
		max = DefaultMaxDictEntries
	}
	if e.Entries() > max {
		e.gen++
		e.reset()
	}
	rot := tab.Stats().Rotations
	if e.cacheTab != tab || e.cacheRot != rot {
		e.cacheTab = tab
		e.cacheRot = rot
		e.symCache = make(map[SymID]uint32)
		e.predCache = make(map[PredID]uint32)
		e.termCache = make(map[uint32]uint32)
	}
}

// BeginRaw prepares the encoder for one raw-symbol message (the request
// path: triples travel as dictionary symbol indexes, no interning table is
// involved). Like Begin it resets the dictionary — bumping the generation —
// when MaxEntries is exceeded; unlike Begin it binds no table, so only
// RawSym may be used until the next Flush.
func (e *WireEncoder) BeginRaw() {
	max := e.MaxEntries
	if max <= 0 {
		max = DefaultMaxDictEntries
	}
	if e.Entries() > max {
		e.gen++
		e.reset()
	}
}

// RawSym interns a bare string into the session dictionary and returns its
// wire index — the request-path encoding primitive (each triple is three
// RawSym indexes). New strings are queued for the next Flush's delta.
func (e *WireEncoder) RawSym(name string) uint32 {
	e.refs++
	return e.wireSym(name)
}

// Refs returns the number of symbol references encoded through RawSym.
func (e *WireEncoder) Refs() int64 { return e.refs }

// Shipped returns the number of dictionary entries flushed into deltas. The
// request-side dictionary hit rate is 1 - Shipped/Refs.
func (e *WireEncoder) Shipped() int64 { return e.shipped }

// wireSym interns a symbol string into the session dictionary.
func (e *WireEncoder) wireSym(name string) uint32 {
	if w, ok := e.syms[name]; ok {
		return w
	}
	w := e.nSyms
	e.nSyms++
	e.syms[name] = w
	e.pendSyms = append(e.pendSyms, name)
	return w
}

func (e *WireEncoder) wirePred(tab *Table, p PredID) uint32 {
	if w, ok := e.predCache[p]; ok {
		return w
	}
	k := predKey{name: tab.PredName(p), arity: tab.PredArity(p)}
	w, ok := e.preds[k]
	if !ok {
		sym := e.wireSym(k.name)
		w = e.nPreds
		e.nPreds++
		e.preds[k] = w
		e.pendPreds = append(e.pendPreds, WirePredDef{Sym: sym, Arity: int32(k.arity)})
	}
	e.predCache[p] = w
	return w
}

// wireCode translates one local argument code. Inline numbers pass through
// unchanged; symbol/string/term payloads are re-keyed to dictionary indexes.
func (e *WireEncoder) wireCode(tab *Table, c Code) uint64 {
	payload := c & payloadMask
	switch c & codeTagMask {
	case tagNum:
		return uint64(c)
	case tagSym, tagStr:
		sid := SymID(payload)
		w, ok := e.symCache[sid]
		if !ok {
			w = e.wireSym(tab.SymName(sid))
			e.symCache[sid] = w
		}
		return uint64(c&codeTagMask) | uint64(w)
	default: // tagTerm
		ti := uint32(payload)
		w, ok := e.termCache[ti]
		if !ok {
			w = e.wireTerm(tab, tab.TermOf(c))
			e.termCache[ti] = w
		}
		return uint64(tagTerm) | uint64(w)
	}
}

// wireTerm interns a structured term definition, recursing through function
// arguments so every definition references only earlier entries.
func (e *WireEncoder) wireTerm(tab *Table, term ast.Term) uint32 {
	key := term.String()
	if w, ok := e.terms[key]; ok {
		return w
	}
	var def WireTermDef
	switch term.Kind {
	case ast.NumberTerm:
		def = WireTermDef{Num: term.Num, IsNum: true}
	default:
		// Function term: encode the functor and each ground argument. Other
		// kinds cannot appear in an interned ground atom's side table.
		args := make([]uint64, len(term.FArgs))
		for i, a := range term.FArgs {
			args[i] = e.wireArgTerm(tab, a)
		}
		def = WireTermDef{Func: e.wireSym(term.Sym), Args: args}
	}
	// Intern after the recursion: children first, then the parent, so the
	// decoder can resolve definitions in delta order.
	w := e.nTerms
	e.nTerms++
	e.terms[key] = w
	e.pendTerms = append(e.pendTerms, def)
	return w
}

// wireArgTerm encodes one function-term argument as a wire code.
func (e *WireEncoder) wireArgTerm(tab *Table, term ast.Term) uint64 {
	switch term.Kind {
	case ast.NumberTerm:
		if c, ok := CodeNum(term.Num); ok {
			return uint64(c)
		}
		return uint64(tagTerm) | uint64(e.wireTerm(tab, term))
	case ast.SymbolTerm:
		return uint64(tagSym) | uint64(e.wireSym(term.Sym))
	case ast.StringTerm:
		return uint64(tagStr) | uint64(e.wireSym(term.Sym))
	default:
		return uint64(tagTerm) | uint64(e.wireTerm(tab, term))
	}
}

// AppendAtom appends one interned atom in wire form. Call Begin once per
// response before the first atom.
func (e *WireEncoder) AppendAtom(tab *Table, id AtomID, dst WireSet) WireSet {
	args := tab.ArgCodes(id)
	dst = append(dst, uint64(e.wirePred(tab, tab.AtomPred(id))), uint64(len(args)))
	for _, c := range args {
		dst = append(dst, e.wireCode(tab, c))
	}
	return dst
}

// AppendSet appends a whole answer set (a sorted ID slice) in wire form.
func (e *WireEncoder) AppendSet(tab *Table, ids []AtomID, dst WireSet) WireSet {
	for _, id := range ids {
		dst = e.AppendAtom(tab, id, dst)
	}
	return dst
}

// Flush returns the delta of dictionary entries added since the previous
// Flush and marks them shipped. The delta must reach the decoder before (or
// with) the wire sets encoded against it — in the transport each response
// carries its own delta.
func (e *WireEncoder) Flush() DictDelta {
	d := DictDelta{
		Gen:       e.gen,
		BaseSyms:  e.nSyms - uint32(len(e.pendSyms)),
		BasePreds: e.nPreds - uint32(len(e.pendPreds)),
		BaseTerms: e.nTerms - uint32(len(e.pendTerms)),
		Syms:      e.pendSyms,
		Preds:     e.pendPreds,
		Terms:     e.pendTerms,
	}
	e.pendSyms, e.pendPreds, e.pendTerms = nil, nil, nil
	e.shipped += int64(d.Entries())
	return d
}

// decSym is one mirrored symbol entry: the authoritative string plus a
// cached local SymID (valid until InvalidateLocal).
type decSym struct {
	name string
	id   SymID
	idOK bool
}

type decPred struct {
	sym   uint32
	arity int32
	pid   PredID
	pidOK bool
}

type decTerm struct {
	def    WireTermDef
	code   Code
	codeOK bool
}

// WireDecoder mirrors one session's dictionary on the coordinator side and
// re-interns wire-form answer sets into a local table. A decoder belongs to
// one session and is not safe for concurrent use.
type WireDecoder struct {
	tab   *Table
	gen   uint32
	syms  []decSym
	preds []decPred
	terms []decTerm

	refs    int64
	shipped int64
}

// NewWireDecoder returns an empty decoder interning into tab.
func NewWireDecoder(tab *Table) *WireDecoder {
	return &WireDecoder{tab: tab}
}

// Refs returns the number of dictionary references resolved so far (symbol,
// predicate, and term lookups while decoding; inline numbers excluded).
func (d *WireDecoder) Refs() int64 { return d.refs }

// Shipped returns the number of dictionary entries received in deltas — the
// references that could not be served from the mirrored dictionary. The
// session's dictionary hit rate is 1 - Shipped/Refs.
func (d *WireDecoder) Shipped() int64 { return d.shipped }

// Entries returns the mirrored dictionary size.
func (d *WireDecoder) Entries() int { return len(d.syms) + len(d.preds) + len(d.terms) }

// InvalidateLocal drops the cached local IDs (after the local table rotated
// and renumbered them) while keeping the mirrored dictionary: the next
// decode re-interns from the authoritative strings and refills the caches.
// Nothing is re-shipped over the wire.
func (d *WireDecoder) InvalidateLocal() {
	for i := range d.syms {
		d.syms[i].idOK = false
	}
	for i := range d.preds {
		d.preds[i].pidOK = false
	}
	for i := range d.terms {
		d.terms[i].codeOK = false
	}
}

// Apply appends a delta's entries to the mirrored dictionary. A generation
// bump resets the mirror first (the encoder rotated its dictionary). A
// mismatch between the delta's base sizes and the mirror indicates a
// desynchronized session; the caller must tear the session down.
func (d *WireDecoder) Apply(delta *DictDelta) error {
	if delta.Gen != d.gen {
		if d.gen != 0 && delta.Gen < d.gen {
			return fmt.Errorf("intern: wire dictionary generation went backwards (%d after %d)", delta.Gen, d.gen)
		}
		d.gen = delta.Gen
		d.syms, d.preds, d.terms = nil, nil, nil
	}
	if int(delta.BaseSyms) != len(d.syms) || int(delta.BasePreds) != len(d.preds) || int(delta.BaseTerms) != len(d.terms) {
		return fmt.Errorf("intern: wire dictionary desync: delta base %d/%d/%d, mirror %d/%d/%d",
			delta.BaseSyms, delta.BasePreds, delta.BaseTerms, len(d.syms), len(d.preds), len(d.terms))
	}
	for _, s := range delta.Syms {
		d.syms = append(d.syms, decSym{name: s})
	}
	for _, p := range delta.Preds {
		if int(p.Sym) >= len(d.syms) {
			return fmt.Errorf("intern: wire predicate references unknown symbol %d", p.Sym)
		}
		d.preds = append(d.preds, decPred{sym: p.Sym, arity: p.Arity})
	}
	for _, t := range delta.Terms {
		if !t.IsNum {
			if int(t.Func) >= len(d.syms) {
				return fmt.Errorf("intern: wire term references unknown functor symbol %d", t.Func)
			}
			// A definition may reference only entries that precede it —
			// the order honest encoders emit. Rejecting self- and
			// forward-references here is what lets termOf recurse without
			// a depth guard.
			for _, a := range t.Args {
				if err := d.checkArgRef(a); err != nil {
					return err
				}
			}
		}
		d.terms = append(d.terms, decTerm{def: t})
	}
	d.shipped += int64(delta.Entries())
	return nil
}

// checkArgRef validates one term-definition argument code against the
// dictionary built so far (full 62-bit payload, no truncation).
func (d *WireDecoder) checkArgRef(a uint64) error {
	payload := uint64(Code(a) & payloadMask)
	switch Code(a) & codeTagMask {
	case tagNum:
		return nil
	case tagSym, tagStr:
		if payload >= uint64(len(d.syms)) {
			return fmt.Errorf("intern: wire term argument references unknown symbol %d", payload)
		}
	default:
		if payload >= uint64(len(d.terms)) {
			return fmt.Errorf("intern: wire term argument references term %d before its definition", payload)
		}
	}
	return nil
}

// SymName resolves a wire symbol index to its authoritative string — the
// request-path decoding primitive, usable on a decoder without a local table
// (NewWireDecoder(nil)): raw triples decode to strings, never to interned
// IDs.
func (d *WireDecoder) SymName(w uint64) (string, error) {
	if w >= uint64(len(d.syms)) {
		return "", fmt.Errorf("intern: wire symbol %d out of range [0,%d)", w, len(d.syms))
	}
	d.refs++
	return d.syms[w].name, nil
}

func (d *WireDecoder) localSym(w uint64) (SymID, error) {
	if w >= uint64(len(d.syms)) {
		return 0, fmt.Errorf("intern: wire symbol %d out of range [0,%d)", w, len(d.syms))
	}
	e := &d.syms[w]
	if !e.idOK {
		e.id = d.tab.Sym(e.name)
		e.idOK = true
	}
	d.refs++
	return e.id, nil
}

func (d *WireDecoder) localPred(w uint64) (PredID, error) {
	if w >= uint64(len(d.preds)) {
		return 0, fmt.Errorf("intern: wire predicate %d out of range [0,%d)", w, len(d.preds))
	}
	e := &d.preds[w]
	if !e.pidOK {
		e.pid = d.tab.Pred(d.syms[e.sym].name, int(e.arity))
		e.pidOK = true
	}
	d.refs++
	return e.pid, nil
}

// localTerm resolves a wire term index to a local structured-term code,
// rebuilding the ast.Term from its definition on a cache miss.
func (d *WireDecoder) localTerm(w uint64) (Code, error) {
	if w >= uint64(len(d.terms)) {
		return 0, fmt.Errorf("intern: wire term %d out of range [0,%d)", w, len(d.terms))
	}
	e := &d.terms[w]
	if !e.codeOK {
		term, err := d.termOf(uint32(w))
		if err != nil {
			return 0, err
		}
		c, ok := d.tab.CodeOf(term)
		if !ok {
			return 0, fmt.Errorf("intern: wire term %d does not intern", w)
		}
		e.code = c
		e.codeOK = true
	}
	d.refs++
	return e.code, nil
}

// termOf rebuilds the ast.Term of a dictionary term entry. Definitions
// reference only earlier entries, so the recursion terminates.
func (d *WireDecoder) termOf(w uint32) (ast.Term, error) {
	def := d.terms[w].def
	if def.IsNum {
		return ast.Num(def.Num), nil
	}
	if int(def.Func) >= len(d.syms) {
		return ast.Term{}, fmt.Errorf("intern: wire term functor %d out of range", def.Func)
	}
	args := make([]ast.Term, len(def.Args))
	for i, c := range def.Args {
		t, err := d.argTermOf(c)
		if err != nil {
			return ast.Term{}, err
		}
		args[i] = t
	}
	return ast.Term{Kind: ast.FuncTerm, Sym: d.syms[def.Func].name, FArgs: args}, nil
}

func (d *WireDecoder) argTermOf(c uint64) (ast.Term, error) {
	payload := Code(c) & payloadMask
	switch Code(c) & codeTagMask {
	case tagNum:
		return ast.Num(int64(uint64(payload)<<2) >> 2), nil
	case tagSym:
		if int(payload) >= len(d.syms) {
			return ast.Term{}, fmt.Errorf("intern: wire symbol %d out of range", payload)
		}
		return ast.Sym(d.syms[payload].name), nil
	case tagStr:
		if int(payload) >= len(d.syms) {
			return ast.Term{}, fmt.Errorf("intern: wire symbol %d out of range", payload)
		}
		return ast.Str(d.syms[payload].name), nil
	default:
		if int(payload) >= len(d.terms) {
			return ast.Term{}, fmt.Errorf("intern: wire term %d out of range", payload)
		}
		return d.termOf(uint32(payload))
	}
}

// localCode resolves one wire argument code to a local table code. Indexes
// are bounds-checked at full payload width — a corrupt high-bit index must
// error, never alias onto a valid entry.
func (d *WireDecoder) localCode(c uint64) (Code, error) {
	payload := uint64(Code(c) & payloadMask)
	switch Code(c) & codeTagMask {
	case tagNum:
		return Code(c), nil
	case tagSym:
		sid, err := d.localSym(payload)
		if err != nil {
			return 0, err
		}
		return tagSym | Code(sid), nil
	case tagStr:
		sid, err := d.localSym(payload)
		if err != nil {
			return 0, err
		}
		return tagStr | Code(sid), nil
	default:
		return d.localTerm(payload)
	}
}

// DecodeSet re-interns one wire-form answer set into the decoder's table,
// appending the local atom IDs to dst.
func (d *WireDecoder) DecodeSet(ws WireSet, dst []AtomID) ([]AtomID, error) {
	var codes [8]Code
	i := 0
	for i < len(ws) {
		if i+2 > len(ws) {
			return nil, fmt.Errorf("intern: truncated wire set")
		}
		pid, err := d.localPred(ws[i])
		if err != nil {
			return nil, err
		}
		n := int(ws[i+1])
		i += 2
		if n < 0 || i+n > len(ws) {
			return nil, fmt.Errorf("intern: wire atom arity %d overruns the set", n)
		}
		if want := d.tab.PredArity(pid); n != want {
			return nil, fmt.Errorf("intern: wire atom has %d args, predicate expects %d", n, want)
		}
		cs := codes[:0]
		for _, w := range ws[i : i+n] {
			c, err := d.localCode(w)
			if err != nil {
				return nil, err
			}
			cs = append(cs, c)
		}
		i += n
		dst = append(dst, d.tab.internAtomCodes(pid, cs))
	}
	return dst, nil
}

// internAtomCodes interns an atom given its predicate and already-local
// argument codes (the decoder's entry point; the materialized form is built
// from the codes on first intern).
func (t *Table) internAtomCodes(p PredID, cs []Code) AtomID {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.internCodesLocked(p, cs, ast.Atom{})
}
