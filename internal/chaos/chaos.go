// Package chaos is a deterministic, seeded fault-injection layer for the
// worker transport. An Injector wraps connection establishment (it is a
// transport.DialFunc) and interposes a frame-aware shim on every
// connection: per a reproducible schedule derived from the seed and the
// configured rates, it refuses dials, resets connections, corrupts frame
// payloads, duplicates frames, delays frames, and stalls responses past the
// straggler deadline — plus scripted worker crash/restart via Crash. The
// chaos differential harness drives distributed runs through an Injector
// and asserts answers stay identical to the local oracle on every window.
//
// Determinism: each connection direction gets its own RNG seeded from
// (Seed, address, per-address dial index, direction), and exactly one draw
// decides each frame's fate. The fault schedule is therefore a pure
// function of the frame index on that connection — independent of
// goroutine interleaving, timing, and the unordered test scheduling around
// it. What the system *observes* can still vary slightly run to run (a
// straggler timeout may cut a connection before its later faults fire),
// which is exactly the nondeterminism the differential oracle must absorb.
package chaos

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// defaultMaxFrame mirrors transport.DefaultMaxFrame without importing the
// package (chaos sits below the transport and must not depend on it).
const defaultMaxFrame = 64 << 20

// frameHeaderSize mirrors the transport's [len | crc32c] header.
const frameHeaderSize = 8

// Config sets the fault schedule. All probabilities are per-frame (or
// per-dial for DialRefuse) in [0, 1]; at most one fault fires per frame,
// tried in the order reset, stall, corrupt, duplicate, delay.
type Config struct {
	// Seed roots every RNG in the injector; the same seed and rates
	// reproduce the same schedule.
	Seed int64
	// DialRefuse is the probability a Dial is refused outright.
	DialRefuse float64
	// Reset closes the underlying connection instead of passing the frame.
	Reset float64
	// Stall sleeps StallFor before serving an inbound frame — the
	// straggler simulation. Stalls apply only to the read direction (a
	// write-side stall would block the submitter, not the awaiter); a
	// stall drawn on the write path downgrades to a delay.
	Stall float64
	// Corrupt flips one payload bit, which the transport's CRC rejects.
	Corrupt float64
	// Duplicate serves the frame twice (the gob/seq layers must reject the
	// replay).
	Duplicate float64
	// Delay sleeps DelayFor before passing the frame — jitter, not
	// failure.
	Delay float64
	// StallFor is the stall duration (0 = 2s); set it beyond the
	// straggler deadline to force fallbacks.
	StallFor time.Duration
	// DelayFor is the delay duration (0 = 2ms).
	DelayFor time.Duration
	// MaxFrame guards the injector's frame parser (0 = the transport
	// default). A stream that does not carry sane frame headers — TLS, or
	// a foreign protocol — flips the connection to transparent
	// pass-through instead of buffering unbounded garbage.
	MaxFrame int
}

// Stats counts injected faults; all counters are cumulative since New.
type Stats struct {
	// Dials counts Dial attempts (refused or not); RefusedDials those
	// rejected by schedule or by a Crash window.
	Dials, RefusedDials int64
	// Frames counts frames that passed through the shim in either
	// direction.
	Frames int64
	// Resets..DelayedFrames count fired faults by class.
	Resets, Stalls, CorruptedFrames, DuplicatedFrames, DelayedFrames int64
	// Crashes counts Crash calls.
	Crashes int64
}

// Fired returns the total number of injected faults across all classes —
// the harness's non-vacuity check.
func (s Stats) Fired() int64 {
	return s.RefusedDials + s.Resets + s.Stalls + s.CorruptedFrames +
		s.DuplicatedFrames + s.DelayedFrames + s.Crashes
}

// Injector owns one fault schedule. Use Dial as the transport's DialFunc;
// Heal ends the experiment (recovery phase); Crash scripts a worker
// crash/restart. Safe for concurrent use.
type Injector struct {
	cfg Config

	mu     sync.Mutex
	healed bool
	heal   chan struct{} // closed on Heal; wakes sleeping delays/stalls
	dials  map[string]int
	crash  map[string]time.Time // dial-refusal windows from Crash
	conns  map[*faultConn]struct{}
	stats  Stats
}

// New builds an injector for the given schedule.
func New(cfg Config) *Injector {
	if cfg.StallFor <= 0 {
		cfg.StallFor = 2 * time.Second
	}
	if cfg.DelayFor <= 0 {
		cfg.DelayFor = 2 * time.Millisecond
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = defaultMaxFrame
	}
	return &Injector{
		cfg:   cfg,
		heal:  make(chan struct{}),
		dials: make(map[string]int),
		crash: make(map[string]time.Time),
		conns: make(map[*faultConn]struct{}),
	}
}

// Dial implements transport.DialFunc: per schedule it refuses outright or
// returns a fault-injecting connection to addr.
func (in *Injector) Dial(addr string, timeout time.Duration) (net.Conn, error) {
	in.mu.Lock()
	idx := in.dials[addr]
	in.dials[addr]++
	in.stats.Dials++
	healed := in.healed
	crashedUntil := in.crash[addr]
	in.mu.Unlock()

	if !healed {
		if !crashedUntil.IsZero() && time.Now().Before(crashedUntil) {
			in.bump(&in.stats.RefusedDials)
			return nil, fmt.Errorf("chaos: dial %s refused: worker crashed", addr)
		}
		rng := rand.New(rand.NewSource(subSeed(in.cfg.Seed, addr, idx, laneDial)))
		if rng.Float64() < in.cfg.DialRefuse {
			in.bump(&in.stats.RefusedDials)
			return nil, fmt.Errorf("chaos: dial %s refused by schedule (dial %d)", addr, idx)
		}
	}

	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	fc := &faultConn{Conn: conn, in: in, addr: addr, done: make(chan struct{})}
	fc.wl.rng = rand.New(rand.NewSource(subSeed(in.cfg.Seed, addr, idx, laneWrite)))
	fc.rl.rng = rand.New(rand.NewSource(subSeed(in.cfg.Seed, addr, idx, laneRead)))
	in.mu.Lock()
	in.conns[fc] = struct{}{}
	in.mu.Unlock()
	return fc, nil
}

// Heal ends the experiment: no further faults fire, Crash windows lift,
// and in-flight delays/stalls wake immediately. Live connections are left
// alone — the system's own recovery machinery (redial, circuit breaker,
// dictionary replay) must bring every session back, and the harness
// asserts it does.
func (in *Injector) Heal() {
	in.mu.Lock()
	if !in.healed {
		in.healed = true
		close(in.heal)
		in.crash = make(map[string]time.Time)
	}
	in.mu.Unlock()
}

// Crash scripts a worker crash/restart: every injected connection to addr
// is severed now, and dials to it are refused for the next down interval.
// In-flight legs see a reset, the next windows see refused dials, and once
// the window passes redials succeed against the still-running server — a
// restart, from the coordinator's point of view.
func (in *Injector) Crash(addr string, down time.Duration) {
	in.mu.Lock()
	in.stats.Crashes++
	in.crash[addr] = time.Now().Add(down)
	victims := make([]*faultConn, 0, len(in.conns))
	for fc := range in.conns {
		if fc.addr == addr {
			victims = append(victims, fc)
		}
	}
	in.mu.Unlock()
	for _, fc := range victims {
		fc.Close()
	}
}

// Stats returns a snapshot of the fault counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

func (in *Injector) bump(counter *int64) {
	in.mu.Lock()
	*counter++
	in.mu.Unlock()
}

func (in *Injector) isHealed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.healed
}

// sleep waits for d, or until the injector heals or the connection closes
// (whichever comes first), so sleeping fault goroutines never outlive the
// experiment.
func (in *Injector) sleep(d time.Duration, done <-chan struct{}) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-in.heal:
	case <-done:
	}
}

// Lane tags for sub-seeding: write/read frame lanes plus the dial-refusal
// draw.
const (
	laneWrite = 0
	laneRead  = 1
	laneDial  = 2
)

// subSeed derives a deterministic per-(addr, dial, lane) seed.
func subSeed(seed int64, addr string, dialIdx, lane int) int64 {
	h := fnv.New64a()
	h.Write([]byte(addr))
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(dialIdx)*4+uint64(lane))
	h.Write(b[:])
	return seed ^ int64(h.Sum64())
}

// fate is one frame's scheduled outcome.
type fate int

const (
	fateDeliver fate = iota
	fateReset
	fateStall
	fateCorrupt
	fateDuplicate
	fateDelay
)

// lane is one direction's frame parser + schedule state.
type lane struct {
	rng         *rand.Rand
	buf         []byte // write lane: bytes of a not-yet-complete frame
	out         []byte // read lane: verified bytes ready to serve
	transparent bool
}

// draw consumes exactly one random number and maps it to this frame's
// fate via cumulative thresholds, so fate depends only on the frame index.
func (l *lane) draw(cfg *Config) fate {
	u := l.rng.Float64()
	for _, c := range [...]struct {
		p float64
		f fate
	}{
		{cfg.Reset, fateReset},
		{cfg.Stall, fateStall},
		{cfg.Corrupt, fateCorrupt},
		{cfg.Duplicate, fateDuplicate},
		{cfg.Delay, fateDelay},
	} {
		if u < c.p {
			return c.f
		}
		u -= c.p
	}
	return fateDeliver
}

// faultConn interposes the fault schedule on one connection. Both
// directions parse the transport's frame structure so faults land on whole
// frames; a stream that stops looking like frames flips to transparent
// pass-through.
type faultConn struct {
	net.Conn
	in   *Injector
	addr string

	wmu sync.Mutex
	wl  lane

	rmu sync.Mutex
	rl  lane

	closeOnce sync.Once
	done      chan struct{}
}

// Write buffers until whole frames are available, then forwards each frame
// through its scheduled fate.
func (fc *faultConn) Write(p []byte) (int, error) {
	fc.wmu.Lock()
	defer fc.wmu.Unlock()
	if fc.wl.transparent {
		return fc.Conn.Write(p)
	}
	fc.wl.buf = append(fc.wl.buf, p...)
	for {
		if len(fc.wl.buf) < frameHeaderSize {
			return len(p), nil
		}
		n := int(binary.BigEndian.Uint32(fc.wl.buf[:4]))
		if n > fc.in.cfg.MaxFrame {
			// Not a frame stream (TLS records, foreign protocol): stop
			// interpreting, flush what we buffered, and pass through.
			fc.wl.transparent = true
			buffered := fc.wl.buf
			fc.wl.buf = nil
			if _, err := fc.Conn.Write(buffered); err != nil {
				return 0, err
			}
			return len(p), nil
		}
		total := frameHeaderSize + n
		if len(fc.wl.buf) < total {
			return len(p), nil
		}
		frame := fc.wl.buf[:total]
		err := fc.writeFrame(frame)
		fc.wl.buf = append(fc.wl.buf[:0], fc.wl.buf[total:]...)
		if err != nil {
			return 0, err
		}
	}
}

// writeFrame applies one outbound frame's fate and forwards it.
func (fc *faultConn) writeFrame(frame []byte) error {
	f := fateDeliver
	if !fc.in.isHealed() {
		f = fc.wl.draw(&fc.in.cfg)
	}
	fc.in.bump(&fc.in.stats.Frames)
	switch f {
	case fateReset:
		fc.in.bump(&fc.in.stats.Resets)
		fc.Conn.Close()
		return fmt.Errorf("chaos: connection to %s reset by schedule (write)", fc.addr)
	case fateStall, fateDelay:
		// A write-side stall would block the submitter rather than
		// simulate a straggler, so both land as a short delay here.
		fc.in.bump(&fc.in.stats.DelayedFrames)
		fc.in.sleep(fc.in.cfg.DelayFor, fc.done)
	case fateCorrupt:
		fc.in.bump(&fc.in.stats.CorruptedFrames)
		corrupt(frame, fc.wl.rng)
	case fateDuplicate:
		fc.in.bump(&fc.in.stats.DuplicatedFrames)
		if _, err := fc.Conn.Write(frame); err != nil {
			return err
		}
	}
	_, err := fc.Conn.Write(frame)
	return err
}

// Read pulls whole inbound frames, applies each frame's fate, and serves
// the resulting bytes.
func (fc *faultConn) Read(p []byte) (int, error) {
	fc.rmu.Lock()
	defer fc.rmu.Unlock()
	for len(fc.rl.out) == 0 {
		if fc.rl.transparent {
			return fc.Conn.Read(p)
		}
		if err := fc.fillRead(); err != nil {
			return 0, err
		}
	}
	n := copy(p, fc.rl.out)
	fc.rl.out = fc.rl.out[n:]
	return n, nil
}

// fillRead reads one frame from the underlying connection and stages its
// post-fate bytes in rl.out.
func (fc *faultConn) fillRead() error {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(fc.Conn, hdr[:]); err != nil {
		return err
	}
	n := int(binary.BigEndian.Uint32(hdr[:4]))
	if n > fc.in.cfg.MaxFrame {
		// Doesn't look like a frame stream: serve the header bytes and
		// pass the rest through untouched.
		fc.rl.transparent = true
		fc.rl.out = append(fc.rl.out[:0], hdr[:]...)
		return nil
	}
	frame := make([]byte, frameHeaderSize+n)
	copy(frame, hdr[:])
	if _, err := io.ReadFull(fc.Conn, frame[frameHeaderSize:]); err != nil {
		return err
	}

	f := fateDeliver
	if !fc.in.isHealed() {
		f = fc.rl.draw(&fc.in.cfg)
	}
	fc.in.bump(&fc.in.stats.Frames)
	switch f {
	case fateReset:
		fc.in.bump(&fc.in.stats.Resets)
		fc.Conn.Close()
		return fmt.Errorf("chaos: connection to %s reset by schedule (read)", fc.addr)
	case fateStall:
		fc.in.bump(&fc.in.stats.Stalls)
		fc.in.sleep(fc.in.cfg.StallFor, fc.done)
	case fateDelay:
		fc.in.bump(&fc.in.stats.DelayedFrames)
		fc.in.sleep(fc.in.cfg.DelayFor, fc.done)
	case fateCorrupt:
		fc.in.bump(&fc.in.stats.CorruptedFrames)
		corrupt(frame, fc.rl.rng)
	case fateDuplicate:
		fc.in.bump(&fc.in.stats.DuplicatedFrames)
		fc.rl.out = append(fc.rl.out[:0], frame...)
		fc.rl.out = append(fc.rl.out, frame...)
		return nil
	}
	fc.rl.out = append(fc.rl.out[:0], frame...)
	return nil
}

// Close severs the connection and unhooks it from the injector.
func (fc *faultConn) Close() error {
	fc.closeOnce.Do(func() {
		close(fc.done)
		fc.in.mu.Lock()
		delete(fc.in.conns, fc)
		fc.in.mu.Unlock()
	})
	return fc.Conn.Close()
}

// corrupt flips one bit: in the payload when there is one, in the CRC
// field otherwise. Either way the transport's checksum must reject the
// frame.
func corrupt(frame []byte, rng *rand.Rand) {
	if n := len(frame) - frameHeaderSize; n > 0 {
		frame[frameHeaderSize+rng.Intn(n)] ^= 1 << uint(rng.Intn(8))
	} else {
		frame[4+rng.Intn(4)] ^= 1 << uint(rng.Intn(8))
	}
}
