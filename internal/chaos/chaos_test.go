package chaos

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"
)

// frame builds one wire frame ([len | crc32c | payload]) as the transport
// writes it.
func frame(payload []byte) []byte {
	out := make([]byte, frameHeaderSize+len(payload))
	binary.BigEndian.PutUint32(out[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(out[4:8], crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli)))
	copy(out[frameHeaderSize:], payload)
	return out
}

// echoServer accepts connections and echoes every byte back.
func echoServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	t.Cleanup(wg.Wait) // LIFO: runs after the listener closes
	t.Cleanup(func() { ln.Close() })
	wg.Add(1) // the accept loop holds the group open, so per-conn Adds are safe
	go func() {
		defer wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer c.Close()
				io.Copy(c, c)
			}()
		}
	}()
	return ln.Addr().String()
}

// drive pushes count frames through one injected connection (echo server
// round trips) and returns each frame's round-trip payload, "" marking a
// transport-level failure from that point on.
func drive(t *testing.T, in *Injector, addr string, count int) []string {
	t.Helper()
	conn, err := in.Dial(addr, time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	results := make([]string, 0, count)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < count; i++ {
		payload := make([]byte, 16+rng.Intn(64))
		rng.Read(payload)
		f := frame(payload)
		if _, err := conn.Write(f); err != nil {
			for len(results) < count {
				results = append(results, "")
			}
			return results
		}
		got := make([]byte, len(f))
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := io.ReadFull(conn, got); err != nil {
			for len(results) < count {
				results = append(results, "")
			}
			return results
		}
		results = append(results, string(got))
	}
	return results
}

// TestDeterministicSchedule: the same seed and rates over the same frame
// sequence must produce the same per-frame outcomes and the same counters.
func TestDeterministicSchedule(t *testing.T) {
	addr := echoServer(t)
	cfg := Config{Seed: 42, Corrupt: 0.2, Delay: 0.3, DelayFor: time.Millisecond}
	runA := drive(t, New(cfg), addr, 40)
	statsA := func() Stats { in := New(cfg); drive(t, in, addr, 40); return in.Stats() }()
	runB := drive(t, New(cfg), addr, 40)
	for i := range runA {
		if runA[i] != runB[i] {
			t.Fatalf("frame %d differs across identical seeds", i)
		}
	}
	in2 := New(cfg)
	drive(t, in2, addr, 40)
	statsB := in2.Stats()
	if statsA != statsB {
		t.Fatalf("counters differ across identical seeds: %+v vs %+v", statsA, statsB)
	}
	if statsB.CorruptedFrames == 0 || statsB.DelayedFrames == 0 {
		t.Fatalf("schedule fired nothing: %+v", statsB)
	}
}

// TestSeedChangesSchedule: a different seed must (at these rates) produce a
// different outcome sequence.
func TestSeedChangesSchedule(t *testing.T) {
	addr := echoServer(t)
	a := drive(t, New(Config{Seed: 1, Corrupt: 0.5}), addr, 30)
	b := drive(t, New(Config{Seed: 2, Corrupt: 0.5}), addr, 30)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical 30-frame schedules at 50% corruption")
	}
}

// TestEveryFaultClassFires: each knob, in isolation, must inject its fault
// class at least once over a modest frame budget.
func TestEveryFaultClassFires(t *testing.T) {
	addr := echoServer(t)
	cases := []struct {
		name string
		cfg  Config
		get  func(Stats) int64
	}{
		{"reset", Config{Seed: 9, Reset: 0.1}, func(s Stats) int64 { return s.Resets }},
		{"corrupt", Config{Seed: 9, Corrupt: 0.1}, func(s Stats) int64 { return s.CorruptedFrames }},
		{"duplicate", Config{Seed: 9, Duplicate: 0.1}, func(s Stats) int64 { return s.DuplicatedFrames }},
		{"delay", Config{Seed: 9, Delay: 0.1, DelayFor: time.Microsecond}, func(s Stats) int64 { return s.DelayedFrames }},
		{"stall", Config{Seed: 9, Stall: 0.1, StallFor: time.Microsecond}, func(s Stats) int64 { return s.Stalls }},
		{"dial-refuse", Config{Seed: 9, DialRefuse: 0.5}, func(s Stats) int64 { return s.RefusedDials }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := New(tc.cfg)
			if tc.name == "dial-refuse" {
				for i := 0; i < 20; i++ {
					if c, err := in.Dial(addr, time.Second); err == nil {
						c.Close()
					}
				}
			} else {
				drive(t, in, addr, 60)
			}
			if tc.get(in.Stats()) == 0 {
				t.Fatalf("%s never fired: %+v", tc.name, in.Stats())
			}
		})
	}
}

// TestCorruptionFlipsExactlyOneBit: a corrupted frame must still be the
// same length with exactly one bit changed — the shape the CRC layer is
// specified against.
func TestCorruptionFlipsExactlyOneBit(t *testing.T) {
	addr := echoServer(t)
	in := New(Config{Seed: 3, Corrupt: 1.0})
	conn, err := in.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	payload := bytes.Repeat([]byte{0xAA}, 32)
	sent := frame(payload)
	if _, err := conn.Write(sent); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(sent))
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	// The echo round trip corrupts twice (once per direction), so compare
	// against the original and demand exactly two flipped bits in total.
	diff := 0
	for i := range got {
		b := got[i] ^ sent[i]
		for ; b != 0; b &= b - 1 {
			diff++
		}
	}
	if diff != 2 {
		t.Fatalf("round trip flipped %d bits, want exactly 2 (one per direction)", diff)
	}
}

// TestDuplicateServesFrameTwice: a duplicated inbound frame arrives twice,
// byte for byte.
func TestDuplicateServesFrameTwice(t *testing.T) {
	addr := echoServer(t)
	// Duplicate only on the read lane draw: rate 1 duplicates write too,
	// so expect 1 write copy -> server echoes 2 copies -> read lane
	// duplicates each -> 4 copies back. Use write-transparent config
	// instead: probability chosen so both directions duplicating is the
	// documented outcome.
	in := New(Config{Seed: 5, Duplicate: 1.0})
	conn, err := in.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	f := frame([]byte("dup me"))
	if _, err := conn.Write(f); err != nil {
		t.Fatal(err)
	}
	// Write duplicates once (2 copies out), echo returns 2, read lane
	// duplicates each (4 copies in).
	got := make([]byte, 4*len(f))
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if !bytes.Equal(got[i*len(f):(i+1)*len(f)], f) {
			t.Fatalf("copy %d corrupted", i)
		}
	}
}

// TestTransparentFallback: a stream that is not framed (a parsed length
// beyond MaxFrame) must pass through unharmed even at 100% fault rates.
func TestTransparentFallback(t *testing.T) {
	addr := echoServer(t)
	in := New(Config{Seed: 11, Corrupt: 1.0, MaxFrame: 1024})
	conn, err := in.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("\xff\xff\xff\xff not a frame, definitely longer than a header")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("transparent mode altered bytes: %q", got)
	}
}

// TestHealStopsFaults: after Heal, frames pass untouched and refused dials
// succeed.
func TestHealStopsFaults(t *testing.T) {
	addr := echoServer(t)
	in := New(Config{Seed: 13, Corrupt: 1.0, DialRefuse: 1.0})
	if _, err := in.Dial(addr, time.Second); err == nil {
		t.Fatal("dial succeeded at 100% refusal")
	}
	in.Heal()
	res := drive(t, in, addr, 10)
	for i, r := range res {
		if r == "" {
			t.Fatalf("frame %d failed after heal", i)
		}
	}
}

// TestCrashSeversAndRefusesThenRecovers: Crash must cut live connections,
// refuse dials during the down window, and allow them after it passes.
func TestCrashSeversAndRefusesThenRecovers(t *testing.T) {
	addr := echoServer(t)
	in := New(Config{Seed: 17})
	conn, err := in.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	in.Crash(addr, 150*time.Millisecond)
	conn.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("read succeeded on a crashed connection")
	}
	if _, err := in.Dial(addr, time.Second); err == nil {
		t.Fatal("dial succeeded during the crash window")
	}
	time.Sleep(200 * time.Millisecond)
	c2, err := in.Dial(addr, time.Second)
	if err != nil {
		t.Fatalf("dial after the crash window: %v", err)
	}
	c2.Close()
	if in.Stats().Crashes != 1 {
		t.Fatalf("crash counter = %d", in.Stats().Crashes)
	}
}
