package transport

import (
	"streamrule/internal/asp/ground"
	"streamrule/internal/asp/intern"
	"streamrule/internal/asp/solve"
)

// ProtocolVersion is bumped on any incompatible change to the message types
// below; a worker refuses a Hello with a version it does not speak.
// Version 2: dictionary-coded request deltas (WindowReq.Dict/Parts replace
// the raw triple window), multi-partition sessions with worker-side combine
// (Hello.Partitions/MaxCombinations), and the Desync response flag.
// Version 3: per-partition stat rows in WindowResp (PartTotalNS/PartItems —
// the rebalancer's load signal) and byte-based memory budgets
// (Hello.MemoryBudgetBytes).
// Version 4: conflict-driven solving on workers (Hello.CDNL) — a v3 worker
// would silently solve with the wrong engine, skewing any ablation, so the
// field rides a version bump.
// Version 5: checksummed frames (an 8-byte [len | crc32c] header replaces
// the bare 4-byte length prefix, so wire corruption is detected before the
// gob decoder sees a byte) and protocol-level heartbeats (WindowReq.Ping —
// the coordinator probes idle sessions between windows, detecting dead
// workers at ping cost instead of a full straggler deadline).
const ProtocolVersion = 5

// Hello opens a session: it carries everything the worker needs to build a
// full reasoner for one partition. Workers are program-agnostic processes —
// the program always travels with the session.
type Hello struct {
	// Version is the coordinator's ProtocolVersion.
	Version int
	// Program is the ASP program source text.
	Program string
	// Inpre lists the input predicate names.
	Inpre []string
	// Arities optionally overrides input-arity inference.
	Arities map[string]int
	// OutputPreds restricts answers to the given predicates (empty: all
	// derived predicates).
	OutputPreds []string
	// IncludeInputFacts keeps input atoms in answers (see reasoner.Config).
	IncludeInputFacts bool
	// MaxModels caps the answer sets computed per window (0 = all).
	MaxModels int
	// NaivePropagation selects the worker solver's legacy rescan propagator
	// (see solve.Options.NaivePropagation), so the ablation covers remote
	// partitions exactly like local ones.
	NaivePropagation bool
	// CDNL selects the worker solver's conflict-driven engine with
	// cross-window clause reuse (see solve.Options.CDNL); each worker
	// partition keeps its own carried state across its windows.
	CDNL bool
	// MaxAtoms aborts grounding beyond this many atoms (0 = no limit).
	MaxAtoms int
	// MemoryBudget bounds the worker's interning table: the worker session
	// rotates its (private) table between windows when the budget is
	// exceeded, exactly like a local budgeted engine.
	MemoryBudget int
	// MemoryBudgetBytes bounds the worker's interning table by approximate
	// retained bytes instead of entry count (0 = no byte budget). When both
	// budgets are set the session rotates when either is exceeded.
	MemoryBudgetBytes int64
	// Partitions is the number of partition reasoners this session hosts
	// (≥ 1; 0 is treated as 1). Every WindowReq ships one PartReq per
	// partition, and the worker combines the partitions' answers before
	// responding — one combined wire set stream per window.
	Partitions int
	// MaxCombinations caps the worker-side answer-set cross product (0 =
	// the reasoner default), matching the coordinator's combine cap.
	MaxCombinations int
}

// HelloAck answers a Hello. An empty Err accepts the session.
type HelloAck struct {
	Err string
}

// WindowReq ships one window (the coordinator-routed sub-windows of this
// session's partitions) to the worker. Triples travel in wire form: the
// coordinator→worker session dictionary assigns every subject/predicate/
// object string a small index the first time it is referenced (Dict carries
// the new entries), and each triple is three such indexes — on repeating
// vocabularies a steady-state request ships indexes only.
type WindowReq struct {
	// Seq numbers requests per session, starting at 1; the response echoes
	// it. A mismatch means the stream desynchronized.
	Seq uint64
	// Ping marks a protocol-level heartbeat: the server echoes an empty
	// response carrying the sequence number without touching the session.
	// All other fields are ignored on a ping.
	Ping bool
	// Scratch forces from-scratch processing (the coordinator's Process
	// path). When false the worker maintains its grounding incrementally
	// across windows.
	Scratch bool
	// Dict is the request-dictionary delta this request's triples decode
	// against (the coordinator→worker mirror of WindowResp.Dict).
	Dict intern.DictDelta
	// Parts holds one entry per session partition, in Hello.Partitions
	// order.
	Parts []PartReq
}

// PartReq is one partition's window payload: either the full sub-window or
// the delta against the previously shipped one.
type PartReq struct {
	// Full marks Added as the complete sub-window (Retracted empty) — the
	// first window of a session, the scratch path, and the fallback when a
	// delta would not be smaller.
	Full bool
	// Added/Retracted are wire-coded triples, three dictionary symbol
	// indexes (subject, predicate, object) per triple.
	Added, Retracted []uint64
	// WindowLen is the expected sub-window size after applying the delta —
	// the consistency check that turns a lost update into a detected desync
	// instead of silently wrong answers.
	WindowLen int
}

// WindowResp returns one window's result. Answer sets travel in portable
// wire form: Dict carries the session-dictionary delta (new symbols only),
// and each element of Answers re-keys through it. For multi-partition
// sessions the answers are the worker-side combination across the session's
// partitions, and the statistics aggregate over them (latency maxima, work
// sums).
type WindowResp struct {
	// Seq echoes the request.
	Seq uint64
	// Err is a worker-side processing error (grounding/solving); the
	// session remains usable unless Desync is also set.
	Err string
	// Desync reports that the request could not be applied consistently
	// (dictionary desync, delta/window-length mismatch): the worker's
	// session state is no longer trustworthy and the coordinator must
	// redial, replaying dictionaries and full windows.
	Desync bool
	// Dict is the dictionary delta this response's wire sets decode against.
	Dict intern.DictDelta
	// Answers holds one wire set per (combined) answer set.
	Answers []intern.WireSet
	// Skipped counts window items outside the input predicates.
	Skipped int
	// Incremental reports that every session partition maintained the
	// window under the previous window's grounding instead of re-grounding.
	Incremental bool
	// ConvertNS/GroundNS/SolveNS/TotalNS are the worker-side phase
	// latencies in nanoseconds — maxima across the session's partitions,
	// which ground and solve in parallel (the coordinator measures the
	// round trip itself; these isolate compute from wire time). CombineNS
	// is the worker-side combine of the partitions' answers.
	ConvertNS, GroundNS, SolveNS, CombineNS, TotalNS int64
	// GroundStats/SolveStats are the worker engine statistics, summed over
	// the session's partitions.
	GroundStats ground.Stats
	SolveStats  solve.Stats
	// LiveAtoms/Rotations snapshot the worker's interning table after the
	// window (observability for budget sizing).
	LiveAtoms int
	Rotations int
	// PartTotalNS/PartItems break the window down per session partition, in
	// Hello.Partitions order: each partition's end-to-end compute time in
	// nanoseconds and its routed input-item count. These rows are the
	// coordinator-side rebalancer's only per-partition load signal.
	PartTotalNS []int64
	PartItems   []int
}
