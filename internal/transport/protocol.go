package transport

import (
	"streamrule/internal/asp/ground"
	"streamrule/internal/asp/intern"
	"streamrule/internal/asp/solve"
	"streamrule/internal/rdf"
)

// ProtocolVersion is bumped on any incompatible change to the message types
// below; a worker refuses a Hello with a version it does not speak.
const ProtocolVersion = 1

// Hello opens a session: it carries everything the worker needs to build a
// full reasoner for one partition. Workers are program-agnostic processes —
// the program always travels with the session.
type Hello struct {
	// Version is the coordinator's ProtocolVersion.
	Version int
	// Program is the ASP program source text.
	Program string
	// Inpre lists the input predicate names.
	Inpre []string
	// Arities optionally overrides input-arity inference.
	Arities map[string]int
	// OutputPreds restricts answers to the given predicates (empty: all
	// derived predicates).
	OutputPreds []string
	// IncludeInputFacts keeps input atoms in answers (see reasoner.Config).
	IncludeInputFacts bool
	// MaxModels caps the answer sets computed per window (0 = all).
	MaxModels int
	// NaivePropagation selects the worker solver's legacy rescan propagator
	// (see solve.Options.NaivePropagation), so the ablation covers remote
	// partitions exactly like local ones.
	NaivePropagation bool
	// MaxAtoms aborts grounding beyond this many atoms (0 = no limit).
	MaxAtoms int
	// MemoryBudget bounds the worker's interning table: the worker reasoner
	// rotates its (private) table between windows when the budget is
	// exceeded, exactly like a local budgeted engine.
	MemoryBudget int
}

// HelloAck answers a Hello. An empty Err accepts the session.
type HelloAck struct {
	Err string
}

// WindowReq ships one window (the coordinator-routed sub-window of this
// session's partition) to the worker.
type WindowReq struct {
	// Seq numbers requests per session, starting at 1; the response echoes
	// it. A mismatch means the stream desynchronized.
	Seq uint64
	// Scratch forces from-scratch processing (the coordinator's Process
	// path). When false the worker maintains its grounding incrementally
	// across windows, deriving the partition-level delta itself.
	Scratch bool
	// Window holds the partition's triples.
	Window []rdf.Triple
}

// WindowResp returns one window's result. Answer sets travel in portable
// wire form: Dict carries the session-dictionary delta (new symbols only),
// and each element of Answers re-keys through it.
type WindowResp struct {
	// Seq echoes the request.
	Seq uint64
	// Err is a worker-side processing error (grounding/solving); the
	// session remains usable.
	Err string
	// Dict is the dictionary delta this response's wire sets decode against.
	Dict intern.DictDelta
	// Answers holds one wire set per answer set.
	Answers []intern.WireSet
	// Skipped counts window items outside the input predicates.
	Skipped int
	// Incremental reports that the worker maintained the window under the
	// previous window's grounding instead of re-grounding.
	Incremental bool
	// ConvertNS/GroundNS/SolveNS/TotalNS are the worker-side phase
	// latencies in nanoseconds (the coordinator measures the round trip
	// itself; these isolate compute from wire time).
	ConvertNS, GroundNS, SolveNS, TotalNS int64
	// GroundStats/SolveStats are the worker engine statistics.
	GroundStats ground.Stats
	SolveStats  solve.Stats
	// LiveAtoms/Rotations snapshot the worker's interning table after the
	// window (observability for budget sizing).
	LiveAtoms int
	Rotations int
}
