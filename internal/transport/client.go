package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync/atomic"
	"time"
)

// ClientOptions configures a coordinator-side session client.
type ClientOptions struct {
	// DialTimeout bounds connection establishment plus the handshake
	// round trip (0 = 5s).
	DialTimeout time.Duration
	// MaxFrame bounds a single protocol frame (0 = DefaultMaxFrame).
	MaxFrame int
}

// RemoteError is a worker-side processing error relayed in a response. The
// session remains usable after one; transport failures do not produce
// RemoteErrors.
type RemoteError struct{ Msg string }

// Error implements error.
func (e *RemoteError) Error() string { return "transport: remote: " + e.Msg }

// Client drives one session against a worker: a handshake at dial time,
// then strictly sequential Round calls (one outstanding window — the
// protocol's backpressure). A Client is not safe for concurrent use; the
// coordinator owns one per partition. After any transport error the client
// is broken for good and the caller redials.
type Client struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	fw   *frameWriter

	seq        uint64
	broken     bool
	sent, recv atomic.Int64
}

// Dial connects to a worker, performs the handshake, and returns a live
// session client. A HelloAck carrying an error fails the dial.
func Dial(addr string, hello *Hello, opts ClientOptions) (*Client, error) {
	dt := opts.DialTimeout
	if dt <= 0 {
		dt = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, dt)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	c := &Client{conn: conn}
	c.fw = newFrameWriter(conn, opts.MaxFrame, &c.sent)
	c.enc = gob.NewEncoder(c.fw)
	c.dec = gob.NewDecoder(newFrameReader(conn, opts.MaxFrame, &c.recv))

	h := *hello
	h.Version = ProtocolVersion
	conn.SetDeadline(time.Now().Add(dt))
	if err := c.send(&h); err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: handshake %s: %w", addr, err)
	}
	var ack HelloAck
	if err := c.dec.Decode(&ack); err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: handshake %s: %w", addr, err)
	}
	conn.SetDeadline(time.Time{})
	if ack.Err != "" {
		conn.Close()
		return nil, fmt.Errorf("transport: %s rejected session: %s", addr, ack.Err)
	}
	return c, nil
}

func (c *Client) send(msg any) error {
	if err := c.enc.Encode(msg); err != nil {
		return err
	}
	return c.fw.Flush()
}

// Round ships one window and blocks for its response, for at most timeout
// (0 = no deadline). Any transport failure — timeout included — breaks the
// client permanently: a late response would desynchronize every following
// round, so the caller must Close and redial instead.
func (c *Client) Round(req *WindowReq, timeout time.Duration) (*WindowResp, error) {
	if c.broken {
		return nil, fmt.Errorf("transport: session is broken; redial")
	}
	c.seq++
	req.Seq = c.seq
	if timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(timeout))
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := c.send(req); err != nil {
		c.broken = true
		return nil, fmt.Errorf("transport: send window %d: %w", req.Seq, err)
	}
	var resp WindowResp
	if err := c.dec.Decode(&resp); err != nil {
		c.broken = true
		return nil, fmt.Errorf("transport: receive window %d: %w", req.Seq, err)
	}
	if resp.Seq != req.Seq {
		c.broken = true
		return nil, fmt.Errorf("transport: response for window %d while awaiting %d", resp.Seq, req.Seq)
	}
	if resp.Err != "" {
		return nil, &RemoteError{Msg: resp.Err}
	}
	return &resp, nil
}

// Broken reports whether the session died on a transport error.
func (c *Client) Broken() bool { return c.broken }

// BytesSent returns the cumulative bytes written to the wire (frames and
// headers) by this client.
func (c *Client) BytesSent() int64 { return c.sent.Load() }

// BytesReceived returns the cumulative bytes read from the wire.
func (c *Client) BytesReceived() int64 { return c.recv.Load() }

// Close tears the session down.
func (c *Client) Close() error { return c.conn.Close() }
