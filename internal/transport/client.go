package transport

import (
	"crypto/tls"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// DialFunc establishes the raw connection for a session, with the semantics
// of net.DialTimeout("tcp", addr, timeout). It is the seam fault-injection
// harnesses (internal/chaos) and custom networking hook into.
type DialFunc func(addr string, timeout time.Duration) (net.Conn, error)

// ClientOptions configures a coordinator-side session client.
type ClientOptions struct {
	// DialTimeout bounds connection establishment plus the handshake
	// round trip (0 = 5s).
	DialTimeout time.Duration
	// MaxFrame bounds a single protocol frame (0 = DefaultMaxFrame).
	MaxFrame int
	// MaxInFlight bounds the number of submitted-but-unanswered windows
	// (0 or 1 = strict request/response lockstep, today's behavior). With
	// depth d the coordinator ships window n+1 while windows n-d+2..n
	// compute remotely; responses are matched to requests by sequence
	// number and surface strictly in submission order.
	MaxInFlight int
	// Dialer overrides how the raw connection is established (nil = plain
	// TCP with TCP_NODELAY).
	Dialer DialFunc
	// TLS, when non-nil, wraps the dialed connection in a TLS client
	// session before the handshake. ServerName defaults to the host part
	// of the dialed address when unset.
	TLS *tls.Config
}

// RemoteError is a worker-side processing error relayed in a response.
// Unless Desync is set the session remains usable after one; transport
// failures do not produce RemoteErrors.
type RemoteError struct {
	Msg string
	// Desync marks a request-consistency failure (dictionary desync,
	// delta mismatch): the session must be torn down and redialed.
	Desync bool
}

// Error implements error.
func (e *RemoteError) Error() string { return "transport: remote: " + e.Msg }

// clientResp is one reader-goroutine delivery: a decoded response or the
// terminal read error.
type clientResp struct {
	resp *WindowResp
	err  error
}

// Client drives one session against a worker: a handshake at dial time,
// then Submit/Await rounds through a bounded-depth pipeline (Round couples
// them for the classic lockstep). A Client is not safe for concurrent use
// by multiple submitters, but Submit and Await may run from different
// goroutines (single producer, single consumer). After any transport error
// the client is broken for good and the caller redials.
type Client struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	fw   *frameWriter

	seq      uint64 // last submitted sequence number
	inflight atomic.Int64

	// sem holds one token per in-flight window; Submit acquires, Await
	// releases. readerDone unblocks a Submit waiting on a full pipeline
	// whose reader has died.
	sem        chan struct{}
	resps      chan clientResp
	readerDone chan struct{}

	mu        sync.Mutex
	broken    bool
	brokenErr error

	sent, recv, crcFails atomic.Int64
}

// Dial connects to a worker, performs the handshake, and returns a live
// session client. A HelloAck carrying an error fails the dial.
func Dial(addr string, hello *Hello, opts ClientOptions) (*Client, error) {
	dt := opts.DialTimeout
	if dt <= 0 {
		dt = 5 * time.Second
	}
	dial := opts.Dialer
	if dial == nil {
		dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	conn, err := dial(addr, dt)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	if opts.TLS != nil {
		cfg := opts.TLS
		if cfg.ServerName == "" && !cfg.InsecureSkipVerify {
			cfg = cfg.Clone()
			if host, _, err := net.SplitHostPort(addr); err == nil {
				cfg.ServerName = host
			}
		}
		conn = tls.Client(conn, cfg)
	}
	c := &Client{conn: conn}
	c.fw = newFrameWriter(conn, opts.MaxFrame, &c.sent)
	c.enc = gob.NewEncoder(c.fw)
	c.dec = gob.NewDecoder(newFrameReader(conn, opts.MaxFrame, &c.recv, &c.crcFails))

	h := *hello
	h.Version = ProtocolVersion
	conn.SetDeadline(time.Now().Add(dt))
	if err := c.send(&h); err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: handshake %s: %w", addr, err)
	}
	var ack HelloAck
	if err := c.dec.Decode(&ack); err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: handshake %s: %w", addr, err)
	}
	conn.SetDeadline(time.Time{})
	if ack.Err != "" {
		conn.Close()
		return nil, fmt.Errorf("transport: %s rejected session: %s", addr, ack.Err)
	}

	depth := opts.MaxInFlight
	if depth < 1 {
		depth = 1
	}
	c.sem = make(chan struct{}, depth)
	c.resps = make(chan clientResp, depth)
	c.readerDone = make(chan struct{})
	go c.readLoop()
	return c, nil
}

// readLoop is the response reader: it decodes responses as they arrive,
// enforces sequence contiguity, and delivers them in order. It exits — and
// closes resps — on the first read error, which Await surfaces.
func (c *Client) readLoop() {
	defer close(c.readerDone)
	defer close(c.resps)
	var expect uint64
	for {
		var resp WindowResp
		if err := c.dec.Decode(&resp); err != nil {
			c.fail(fmt.Errorf("transport: receive window %d: %w", expect+1, err))
			return
		}
		expect++
		if resp.Seq != expect {
			c.fail(fmt.Errorf("transport: response for window %d while awaiting %d", resp.Seq, expect))
			return
		}
		c.resps <- clientResp{resp: &resp}
	}
}

// fail marks the client permanently broken with the given cause (the first
// failure wins).
func (c *Client) fail(err error) {
	c.mu.Lock()
	if !c.broken {
		c.broken = true
		c.brokenErr = err
	}
	c.mu.Unlock()
}

func (c *Client) send(msg any) error {
	if err := c.enc.Encode(msg); err != nil {
		return err
	}
	return c.fw.Flush()
}

// Submit ships one window request without waiting for its response,
// blocking only when MaxInFlight windows are already outstanding (then
// until the oldest is Awaited). timeout bounds the write (0 = none). Any
// transport failure breaks the client permanently.
func (c *Client) Submit(req *WindowReq, timeout time.Duration) error {
	if err := c.err(); err != nil {
		return err
	}
	select {
	case c.sem <- struct{}{}:
	case <-c.readerDone:
		return c.err()
	}
	c.seq++
	req.Seq = c.seq
	if timeout > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(timeout))
		defer c.conn.SetWriteDeadline(time.Time{})
	}
	if err := c.send(req); err != nil {
		err = fmt.Errorf("transport: send window %d: %w", req.Seq, err)
		c.fail(err)
		c.conn.Close() // unblock the reader; Await surfaces the break
		return err
	}
	c.inflight.Add(1)
	return nil
}

// Await blocks for the response to the oldest in-flight window, for at most
// timeout (0 = no deadline). A timeout breaks the client permanently — a
// late response would desynchronize every following round — and the caller
// must Close and redial. A non-nil *RemoteError reports a worker-side
// processing error; the session stays usable unless the error is a Desync.
func (c *Client) Await(timeout time.Duration) (*WindowResp, error) {
	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case cr, ok := <-c.resps:
		if !ok {
			return nil, c.err()
		}
		c.inflight.Add(-1)
		<-c.sem
		if cr.resp.Err != "" {
			if cr.resp.Desync {
				err := fmt.Errorf("transport: session desynchronized: %s", cr.resp.Err)
				c.fail(err)
				c.conn.Close()
				return nil, &RemoteError{Msg: cr.resp.Err, Desync: true}
			}
			return nil, &RemoteError{Msg: cr.resp.Err}
		}
		return cr.resp, nil
	case <-timer:
		err := fmt.Errorf("transport: window response timed out after %v", timeout)
		c.fail(err)
		c.conn.Close() // the reader exits; the session is gone
		return nil, err
	}
}

// Round ships one window and blocks for its response — Submit followed by
// Await, the strict lockstep every pre-pipelining caller uses. It must not
// be mixed with in-flight Submits.
func (c *Client) Round(req *WindowReq, timeout time.Duration) (*WindowResp, error) {
	if err := c.Submit(req, timeout); err != nil {
		return nil, err
	}
	return c.Await(timeout)
}

// Ping performs one protocol-level heartbeat round trip: the worker echoes
// an empty response without touching the session. It must only be called
// with zero windows in flight — a ping while windows are outstanding would
// consume the oldest window's response. A failed or timed-out ping breaks
// the client like any other round.
func (c *Client) Ping(timeout time.Duration) error {
	if err := c.Submit(&WindowReq{Ping: true}, timeout); err != nil {
		return err
	}
	_, err := c.Await(timeout)
	return err
}

// InFlight returns the number of submitted windows still awaiting their
// response.
func (c *Client) InFlight() int { return int(c.inflight.Load()) }

// err returns the terminal failure if the client is broken, nil otherwise.
func (c *Client) err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.broken {
		return nil
	}
	if c.brokenErr != nil {
		return c.brokenErr
	}
	return fmt.Errorf("transport: session is broken; redial")
}

// Broken reports whether the session died on a transport error.
func (c *Client) Broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.broken
}

// BytesSent returns the cumulative bytes written to the wire (frames and
// headers) by this client.
func (c *Client) BytesSent() int64 { return c.sent.Load() }

// BytesReceived returns the cumulative bytes read from the wire.
func (c *Client) BytesReceived() int64 { return c.recv.Load() }

// ChecksumFailures returns how many inbound frames this client rejected on
// a CRC mismatch. The first failure also breaks the session (the decoder
// error propagates through readLoop), so values above zero normally come in
// ones — persistent counts across redials indicate a genuinely dirty link.
func (c *Client) ChecksumFailures() int64 { return c.crcFails.Load() }

// Close tears the session down.
func (c *Client) Close() error { return c.conn.Close() }
