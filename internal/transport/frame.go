package transport

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sync/atomic"
)

// DefaultMaxFrame bounds a single protocol frame (one gob-encoded message).
// A window of triples or a response of answer sets comfortably fits; a
// frame beyond the limit indicates a runaway window or a corrupt peer.
const DefaultMaxFrame = 64 << 20

// frameHeaderSize is the wire overhead per frame: a 4-byte big-endian
// payload length followed by a 4-byte CRC32-C checksum of the payload.
const frameHeaderSize = 8

// ErrFrameTooLarge is returned (wrapped) when a frame exceeds the limit on
// either side of the connection.
var ErrFrameTooLarge = fmt.Errorf("transport: frame exceeds maximum size")

// ErrChecksum is returned (wrapped) when a frame's payload does not match
// its CRC32-C checksum. Corruption is detected before a single payload byte
// reaches the gob decoder, so a flipped bit on the wire degrades to a clean
// connection teardown (and, one level up, a session retire + reship)
// instead of undefined decoder behavior.
var ErrChecksum = fmt.Errorf("transport: frame checksum mismatch")

// crcTable is the Castagnoli polynomial table; crc32c is hardware
// accelerated on amd64/arm64 so the per-frame cost is negligible next to
// gob encoding.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frameWriter buffers the writes of one gob.Encode call and flushes them as
// a single checksummed, length-prefixed frame.
type frameWriter struct {
	w    io.Writer
	buf  []byte
	max  int
	sent *atomic.Int64
}

func newFrameWriter(w io.Writer, max int, sent *atomic.Int64) *frameWriter {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	return &frameWriter{w: w, max: max, sent: sent}
}

// Write implements io.Writer by buffering until Flush.
func (fw *frameWriter) Write(p []byte) (int, error) {
	if len(fw.buf)+len(p) > fw.max {
		return 0, fmt.Errorf("%w (%d buffered + %d)", ErrFrameTooLarge, len(fw.buf), len(p))
	}
	fw.buf = append(fw.buf, p...)
	return len(p), nil
}

// Flush writes the buffered message as one frame: [len | crc32c | payload].
func (fw *frameWriter) Flush() error {
	var hdr [frameHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(fw.buf)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.Checksum(fw.buf, crcTable))
	if _, err := fw.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := fw.w.Write(fw.buf); err != nil {
		return err
	}
	if fw.sent != nil {
		fw.sent.Add(int64(frameHeaderSize + len(fw.buf)))
	}
	fw.buf = fw.buf[:0]
	return nil
}

// frameReader serves a byte stream reassembled from checksummed frames. A
// whole frame is read and CRC-verified before any of its bytes are served:
// streaming verification would hand corrupt bytes to the decoder first and
// only notice at the frame boundary, after the damage is done. The size
// limit is enforced before the payload buffer is grown.
type frameReader struct {
	r        io.Reader
	buf      []byte // current verified frame payload (reused across frames)
	off      int    // read offset into buf
	max      int
	recv     *atomic.Int64
	crcFails *atomic.Int64
}

func newFrameReader(r io.Reader, max int, recv, crcFails *atomic.Int64) *frameReader {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	return &frameReader{r: r, max: max, recv: recv, crcFails: crcFails}
}

// Read implements io.Reader across frame boundaries.
func (fr *frameReader) Read(p []byte) (int, error) {
	for fr.off == len(fr.buf) {
		var hdr [frameHeaderSize]byte
		if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
			return 0, err
		}
		n := int(binary.BigEndian.Uint32(hdr[:4]))
		want := binary.BigEndian.Uint32(hdr[4:])
		if n > fr.max {
			return 0, fmt.Errorf("%w (%d > %d)", ErrFrameTooLarge, n, fr.max)
		}
		if cap(fr.buf) < n {
			fr.buf = make([]byte, n)
		}
		fr.buf = fr.buf[:n]
		fr.off = 0
		if _, err := io.ReadFull(fr.r, fr.buf); err != nil {
			return 0, err
		}
		if got := crc32.Checksum(fr.buf, crcTable); got != want {
			if fr.crcFails != nil {
				fr.crcFails.Add(1)
			}
			fr.buf = fr.buf[:0]
			return 0, fmt.Errorf("%w (crc %08x, want %08x)", ErrChecksum, got, want)
		}
		if fr.recv != nil {
			fr.recv.Add(int64(frameHeaderSize + n))
		}
		// A zero-length frame just loops to the next header.
	}
	n := copy(p, fr.buf[fr.off:])
	fr.off += n
	return n, nil
}
