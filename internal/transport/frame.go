package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync/atomic"
)

// DefaultMaxFrame bounds a single protocol frame (one gob-encoded message).
// A window of triples or a response of answer sets comfortably fits; a
// frame beyond the limit indicates a runaway window or a corrupt peer.
const DefaultMaxFrame = 64 << 20

// ErrFrameTooLarge is returned (wrapped) when a frame exceeds the limit on
// either side of the connection.
var ErrFrameTooLarge = fmt.Errorf("transport: frame exceeds maximum size")

// frameWriter buffers the writes of one gob.Encode call and flushes them as
// a single length-prefixed frame.
type frameWriter struct {
	w    io.Writer
	buf  []byte
	max  int
	sent *atomic.Int64
}

func newFrameWriter(w io.Writer, max int, sent *atomic.Int64) *frameWriter {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	return &frameWriter{w: w, max: max, sent: sent}
}

// Write implements io.Writer by buffering until Flush.
func (fw *frameWriter) Write(p []byte) (int, error) {
	if len(fw.buf)+len(p) > fw.max {
		return 0, fmt.Errorf("%w (%d buffered + %d)", ErrFrameTooLarge, len(fw.buf), len(p))
	}
	fw.buf = append(fw.buf, p...)
	return len(p), nil
}

// Flush writes the buffered message as one frame.
func (fw *frameWriter) Flush() error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(fw.buf)))
	if _, err := fw.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := fw.w.Write(fw.buf); err != nil {
		return err
	}
	if fw.sent != nil {
		fw.sent.Add(int64(4 + len(fw.buf)))
	}
	fw.buf = fw.buf[:0]
	return nil
}

// frameReader serves a byte stream reassembled from length-prefixed frames,
// enforcing the frame size limit before reading a frame's payload.
type frameReader struct {
	r         io.Reader
	remaining int
	max       int
	recv      *atomic.Int64
}

func newFrameReader(r io.Reader, max int, recv *atomic.Int64) *frameReader {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	return &frameReader{r: r, max: max, recv: recv}
}

// Read implements io.Reader across frame boundaries.
func (fr *frameReader) Read(p []byte) (int, error) {
	for fr.remaining == 0 {
		var hdr [4]byte
		if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
			return 0, err
		}
		n := int(binary.BigEndian.Uint32(hdr[:]))
		if n > fr.max {
			return 0, fmt.Errorf("%w (%d > %d)", ErrFrameTooLarge, n, fr.max)
		}
		if fr.recv != nil {
			fr.recv.Add(int64(4 + n))
		}
		fr.remaining = n // a zero-length frame just loops to the next header
	}
	if len(p) > fr.remaining {
		p = p[:fr.remaining]
	}
	n, err := fr.r.Read(p)
	fr.remaining -= n
	return n, err
}
