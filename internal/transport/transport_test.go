package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"streamrule/internal/rdf"
)

// echoSession answers every request with one empty answer set and echoes
// the window size in Skipped (a visible round-trip marker).
type echoSession struct{ closed *atomic.Bool }

func (s echoSession) Window(req *WindowReq) *WindowResp {
	return &WindowResp{Skipped: len(req.Window)}
}
func (s echoSession) Close() {
	if s.closed != nil {
		s.closed.Store(true)
	}
}

type echoHandler struct {
	reject bool
	closed atomic.Bool
}

func (h *echoHandler) NewSession(hello *Hello) (Session, error) {
	if h.reject {
		return nil, fmt.Errorf("no sessions today")
	}
	return echoSession{closed: &h.closed}, nil
}

func startServer(t *testing.T, h Handler, opts ServerOptions) *Server {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0", h, opts)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	fw := newFrameWriter(&buf, 0, nil)
	for _, msg := range []string{"hello", "", "world, again"} {
		if _, err := io.WriteString(fw, msg); err != nil {
			t.Fatal(err)
		}
		if err := fw.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	fr := newFrameReader(&buf, 0, nil)
	got, err := io.ReadAll(fr)
	if err != nil && err != io.EOF {
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatal(err)
		}
	}
	if string(got) != "helloworld, again" {
		t.Fatalf("reassembled %q", got)
	}
}

func TestFrameReaderRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 1<<30)
	buf.Write(hdr[:])
	fr := newFrameReader(&buf, 1024, nil)
	if _, err := fr.Read(make([]byte, 16)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameWriterRejectsOversized(t *testing.T) {
	fw := newFrameWriter(io.Discard, 8, nil)
	if _, err := fw.Write(make([]byte, 9)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
}

func TestClientServerRounds(t *testing.T) {
	h := &echoHandler{}
	srv := startServer(t, h, ServerOptions{})

	c, err := Dial(srv.Addr(), &Hello{Program: "p."}, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 1; i <= 3; i++ {
		resp, err := c.Round(&WindowReq{Window: make([]rdf.Triple, i)}, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Seq != uint64(i) || resp.Skipped != i {
			t.Fatalf("round %d: seq %d skipped %d", i, resp.Seq, resp.Skipped)
		}
	}
	if c.BytesSent() == 0 || c.BytesReceived() == 0 {
		t.Fatal("byte counters never moved")
	}
}

func TestServerRejectsSession(t *testing.T) {
	srv := startServer(t, &echoHandler{reject: true}, ServerOptions{})
	if _, err := Dial(srv.Addr(), &Hello{}, ClientOptions{}); err == nil ||
		!strings.Contains(err.Error(), "no sessions today") {
		t.Fatalf("got %v, want session rejection", err)
	}
}

func TestServerRejectsWrongVersion(t *testing.T) {
	srv := startServer(t, &echoHandler{}, ServerOptions{})
	// Dial overrides Version, so speak the protocol by hand.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fw := newFrameWriter(conn, 0, nil)
	c := &Client{conn: conn, fw: fw}
	c.enc = gob.NewEncoder(fw)
	c.dec = gob.NewDecoder(newFrameReader(conn, 0, nil))
	if err := c.send(&Hello{Version: ProtocolVersion + 1}); err != nil {
		t.Fatal(err)
	}
	var ack HelloAck
	if err := c.dec.Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if ack.Err == "" {
		t.Fatal("worker accepted an unknown protocol version")
	}
}

// TestServerDropsOversizedFrame sends a frame header beyond the server's
// limit; the server must drop the connection rather than allocate.
func TestServerDropsOversizedFrame(t *testing.T) {
	h := &echoHandler{}
	srv := startServer(t, h, ServerOptions{MaxFrame: 4096})

	c, err := Dial(srv.Addr(), &Hello{}, ClientOptions{MaxFrame: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// A huge window encodes past the server's 4 KiB frame cap.
	big := make([]rdf.Triple, 4096)
	for i := range big {
		big[i] = rdf.Triple{S: "subject", P: "predicate", O: "object"}
	}
	if _, err := c.Round(&WindowReq{Window: big}, 2*time.Second); err == nil {
		t.Fatal("oversized frame was accepted")
	}
	if !c.Broken() {
		t.Fatal("client not marked broken after the connection died")
	}
}

// TestClientBreaksOnServerDeath kills the server mid-session: the round
// must fail promptly and the client must refuse further rounds.
func TestClientBreaksOnServerDeath(t *testing.T) {
	h := &echoHandler{}
	srv := startServer(t, h, ServerOptions{})
	c, err := Dial(srv.Addr(), &Hello{}, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Round(&WindowReq{}, time.Second); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, err := c.Round(&WindowReq{}, time.Second); err == nil {
		t.Fatal("round succeeded against a dead server")
	}
	if !c.Broken() {
		t.Fatal("client not marked broken")
	}
	if _, err := c.Round(&WindowReq{}, time.Second); err == nil {
		t.Fatal("broken client accepted another round")
	}
}

// TestSessionCloseOnDisconnect verifies the worker releases the session
// when the coordinator goes away.
func TestSessionCloseOnDisconnect(t *testing.T) {
	h := &echoHandler{}
	srv := startServer(t, h, ServerOptions{})
	c, err := Dial(srv.Addr(), &Hello{}, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Round(&WindowReq{}, time.Second); err != nil {
		t.Fatal(err)
	}
	c.Close()
	deadline := time.Now().Add(2 * time.Second)
	for !h.closed.Load() {
		if time.Now().After(deadline) {
			t.Fatal("session never closed after disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
