package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"streamrule/internal/testleak"
)

// reqWindow builds a request carrying n wire triples in one full partition
// (the payload content is irrelevant to the transport; distinct words keep
// gob from compressing it away).
func reqWindow(n int) *WindowReq {
	words := make([]uint64, 3*n)
	for i := range words {
		words[i] = uint64(i) + 1000
	}
	return &WindowReq{Parts: []PartReq{{Full: true, Added: words, WindowLen: n}}}
}

// echoSession answers every request with an empty response echoing the
// shipped triple count in Skipped (a visible round-trip marker), after an
// optional per-window delay (a stand-in for remote compute).
type echoSession struct {
	closed *atomic.Bool
	delay  time.Duration
}

func (s echoSession) Window(req *WindowReq) *WindowResp {
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	n := 0
	for _, p := range req.Parts {
		n += len(p.Added) / 3
	}
	return &WindowResp{Skipped: n}
}
func (s echoSession) Close() {
	if s.closed != nil {
		s.closed.Store(true)
	}
}

type echoHandler struct {
	reject bool
	delay  time.Duration
	closed atomic.Bool
}

func (h *echoHandler) NewSession(hello *Hello) (Session, error) {
	if h.reject {
		return nil, fmt.Errorf("no sessions today")
	}
	return echoSession{closed: &h.closed, delay: h.delay}, nil
}

func startServer(t *testing.T, h Handler, opts ServerOptions) *Server {
	t.Helper()
	// Registered before the server's own cleanup, so (LIFO) the leak check
	// runs after the server has shut down: every test through this helper
	// asserts its transport goroutines drained.
	t.Cleanup(testleak.Check(t))
	srv, err := NewServer("127.0.0.1:0", h, opts)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	fw := newFrameWriter(&buf, 0, nil)
	for _, msg := range []string{"hello", "", "world, again"} {
		if _, err := io.WriteString(fw, msg); err != nil {
			t.Fatal(err)
		}
		if err := fw.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	fr := newFrameReader(&buf, 0, nil, nil)
	got, err := io.ReadAll(fr)
	if err != nil && err != io.EOF {
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatal(err)
		}
	}
	if string(got) != "helloworld, again" {
		t.Fatalf("reassembled %q", got)
	}
}

func TestFrameReaderRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	var hdr [frameHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[:4], 1<<30)
	buf.Write(hdr[:])
	fr := newFrameReader(&buf, 1024, nil, nil)
	if _, err := fr.Read(make([]byte, 16)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameChecksumCatchesCorruption(t *testing.T) {
	var buf bytes.Buffer
	fw := newFrameWriter(&buf, 0, nil)
	io.WriteString(fw, "payload under test")
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[frameHeaderSize+3] ^= 0x40 // flip one payload bit
	var fails atomic.Int64
	fr := newFrameReader(bytes.NewReader(raw), 0, nil, &fails)
	if _, err := fr.Read(make([]byte, 32)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("got %v, want ErrChecksum", err)
	}
	if fails.Load() != 1 {
		t.Fatalf("crc failure counter = %d, want 1", fails.Load())
	}
}

func TestFrameChecksumCatchesHeaderCorruption(t *testing.T) {
	var buf bytes.Buffer
	fw := newFrameWriter(&buf, 0, nil)
	io.WriteString(fw, "payload under test")
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[5] ^= 0x01 // flip a bit in the CRC field itself
	fr := newFrameReader(bytes.NewReader(raw), 0, nil, nil)
	if _, err := fr.Read(make([]byte, 32)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("got %v, want ErrChecksum", err)
	}
}

func TestFrameWriterRejectsOversized(t *testing.T) {
	fw := newFrameWriter(io.Discard, 8, nil)
	if _, err := fw.Write(make([]byte, 9)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
}

func TestClientServerRounds(t *testing.T) {
	h := &echoHandler{}
	srv := startServer(t, h, ServerOptions{})

	c, err := Dial(srv.Addr(), &Hello{Program: "p."}, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 1; i <= 3; i++ {
		resp, err := c.Round(reqWindow(i), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Seq != uint64(i) || resp.Skipped != i {
			t.Fatalf("round %d: seq %d skipped %d", i, resp.Seq, resp.Skipped)
		}
	}
	if c.BytesSent() == 0 || c.BytesReceived() == 0 {
		t.Fatal("byte counters never moved")
	}
}

// TestClientPipelinedRounds fills a depth-4 pipeline, then drains it: the
// responses must surface strictly in submission order with matching
// payloads, and the in-flight gauge must track the outstanding windows.
func TestClientPipelinedRounds(t *testing.T) {
	h := &echoHandler{delay: 20 * time.Millisecond}
	srv := startServer(t, h, ServerOptions{})

	c, err := Dial(srv.Addr(), &Hello{Program: "p."}, ClientOptions{MaxInFlight: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 1; i <= 4; i++ {
		if err := c.Submit(reqWindow(i), time.Second); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if got := c.InFlight(); got != 4 {
		t.Fatalf("in-flight = %d after 4 submits", got)
	}
	for i := 1; i <= 4; i++ {
		resp, err := c.Await(5 * time.Second)
		if err != nil {
			t.Fatalf("await %d: %v", i, err)
		}
		if resp.Seq != uint64(i) || resp.Skipped != i {
			t.Fatalf("await %d: seq %d skipped %d — responses out of order", i, resp.Seq, resp.Skipped)
		}
	}
	if got := c.InFlight(); got != 0 {
		t.Fatalf("in-flight = %d after drain", got)
	}
}

// TestClientPipelineOverlap shows the point of the pipeline: with compute
// delay d per window, a depth-2 pipeline finishes n windows in ~n*d, not
// n*d plus n round trips — and strictly faster than lockstep on the same
// server. The margin is generous to stay robust on loaded CI machines.
func TestClientPipelineOverlap(t *testing.T) {
	const d = 30 * time.Millisecond
	const n = 6
	h := &echoHandler{delay: d}
	srv := startServer(t, h, ServerOptions{})

	run := func(depth int) time.Duration {
		c, err := Dial(srv.Addr(), &Hello{}, ClientOptions{MaxInFlight: depth})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		start := time.Now()
		if depth == 1 {
			for i := 0; i < n; i++ {
				if _, err := c.Round(reqWindow(8), 5*time.Second); err != nil {
					t.Fatal(err)
				}
			}
			return time.Since(start)
		}
		inFlight := 0
		for i := 0; i < n; i++ {
			if err := c.Submit(reqWindow(8), 5*time.Second); err != nil {
				t.Fatal(err)
			}
			inFlight++
			if inFlight == depth {
				if _, err := c.Await(5 * time.Second); err != nil {
					t.Fatal(err)
				}
				inFlight--
			}
		}
		for ; inFlight > 0; inFlight-- {
			if _, err := c.Await(5 * time.Second); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	pipelined := run(2)
	// The floor is n windows of compute; anything close to it means the
	// ship/compute overlap worked.
	if limit := time.Duration(n)*d + n*d/2; pipelined > limit {
		t.Fatalf("pipelined run took %v, want < %v", pipelined, limit)
	}
}

// TestClientAwaitTimeout breaks the session when a response misses its
// deadline: Await must fail promptly and the client must refuse further
// rounds.
func TestClientAwaitTimeout(t *testing.T) {
	// The delay must dwarf the await timeout but stay inside the leak
	// checker's drain grace, so the sleeping session goroutine can exit.
	h := &echoHandler{delay: time.Second}
	srv := startServer(t, h, ServerOptions{})
	c, err := Dial(srv.Addr(), &Hello{}, ClientOptions{MaxInFlight: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Submit(reqWindow(1), time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Await(50 * time.Millisecond); err == nil {
		t.Fatal("await returned despite the stalled worker")
	}
	if !c.Broken() {
		t.Fatal("client not marked broken after await timeout")
	}
	if err := c.Submit(reqWindow(1), time.Second); err == nil {
		t.Fatal("broken client accepted another submit")
	}
}

func TestServerRejectsSession(t *testing.T) {
	srv := startServer(t, &echoHandler{reject: true}, ServerOptions{})
	if _, err := Dial(srv.Addr(), &Hello{}, ClientOptions{}); err == nil ||
		!strings.Contains(err.Error(), "no sessions today") {
		t.Fatalf("got %v, want session rejection", err)
	}
}

func TestServerRejectsWrongVersion(t *testing.T) {
	srv := startServer(t, &echoHandler{}, ServerOptions{})
	// Dial overrides Version, so speak the protocol by hand.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fw := newFrameWriter(conn, 0, nil)
	c := &Client{conn: conn, fw: fw}
	c.enc = gob.NewEncoder(fw)
	c.dec = gob.NewDecoder(newFrameReader(conn, 0, nil, nil))
	if err := c.send(&Hello{Version: ProtocolVersion + 1}); err != nil {
		t.Fatal(err)
	}
	var ack HelloAck
	if err := c.dec.Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if ack.Err == "" {
		t.Fatal("worker accepted an unknown protocol version")
	}
}

// TestServerDropsOversizedFrame sends a frame header beyond the server's
// limit; the server must drop the connection rather than allocate.
func TestServerDropsOversizedFrame(t *testing.T) {
	h := &echoHandler{}
	srv := startServer(t, h, ServerOptions{MaxFrame: 4096})

	c, err := Dial(srv.Addr(), &Hello{}, ClientOptions{MaxFrame: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// A huge window encodes past the server's 4 KiB frame cap.
	if _, err := c.Round(reqWindow(4096), 2*time.Second); err == nil {
		t.Fatal("oversized frame was accepted")
	}
	if !c.Broken() {
		t.Fatal("client not marked broken after the connection died")
	}
}

// TestClientBreaksOnServerDeath kills the server mid-session: the round
// must fail promptly and the client must refuse further rounds.
func TestClientBreaksOnServerDeath(t *testing.T) {
	h := &echoHandler{}
	srv := startServer(t, h, ServerOptions{})
	c, err := Dial(srv.Addr(), &Hello{}, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Round(&WindowReq{}, time.Second); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, err := c.Round(&WindowReq{}, time.Second); err == nil {
		t.Fatal("round succeeded against a dead server")
	}
	if !c.Broken() {
		t.Fatal("client not marked broken")
	}
	if _, err := c.Round(&WindowReq{}, time.Second); err == nil {
		t.Fatal("broken client accepted another round")
	}
}

// TestSessionCloseOnDisconnect verifies the worker releases the session
// when the coordinator goes away.
func TestSessionCloseOnDisconnect(t *testing.T) {
	h := &echoHandler{}
	srv := startServer(t, h, ServerOptions{})
	c, err := Dial(srv.Addr(), &Hello{}, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Round(&WindowReq{}, time.Second); err != nil {
		t.Fatal(err)
	}
	c.Close()
	deadline := time.Now().Add(2 * time.Second)
	for !h.closed.Load() {
		if time.Now().After(deadline) {
			t.Fatal("session never closed after disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClientPing exercises the protocol-level heartbeat: pings round-trip
// without touching the session, and regular windows keep working afterwards
// (sequence numbers stay contiguous across the mix).
func TestClientPing(t *testing.T) {
	h := &echoHandler{}
	srv := startServer(t, h, ServerOptions{})
	c, err := Dial(srv.Addr(), &Hello{}, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		if err := c.Ping(time.Second); err != nil {
			t.Fatalf("ping %d: %v", i, err)
		}
	}
	resp, err := c.Round(reqWindow(2), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Seq != 4 || resp.Skipped != 2 {
		t.Fatalf("post-ping round: seq %d skipped %d, want 4/2", resp.Seq, resp.Skipped)
	}
}

// TestClientPingDetectsDeadServer: a ping against a dead worker fails
// within its own timeout and breaks the client.
func TestClientPingDetectsDeadServer(t *testing.T) {
	h := &echoHandler{}
	srv := startServer(t, h, ServerOptions{})
	c, err := Dial(srv.Addr(), &Hello{}, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv.Close()
	if err := c.Ping(500 * time.Millisecond); err == nil {
		t.Fatal("ping succeeded against a dead server")
	}
	if !c.Broken() {
		t.Fatal("client not marked broken after failed ping")
	}
}

// TestServerShutdownDrains: Shutdown must let a session mid-window finish
// its request and ship the response, close idle connections immediately,
// and leave no server goroutines behind.
func TestServerShutdownDrains(t *testing.T) {
	h := &echoHandler{delay: 100 * time.Millisecond}
	srv := startServer(t, h, ServerOptions{})
	busy, err := Dial(srv.Addr(), &Hello{}, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer busy.Close()
	idle, err := Dial(srv.Addr(), &Hello{}, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()

	type result struct {
		resp *WindowResp
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := busy.Round(reqWindow(3), 5*time.Second)
		got <- result{resp, err}
	}()
	time.Sleep(30 * time.Millisecond) // let the request reach the session
	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	r := <-got
	if r.err != nil {
		t.Fatalf("in-flight round lost during shutdown: %v", r.err)
	}
	if r.resp.Skipped != 3 {
		t.Fatalf("in-flight round answered %d, want 3", r.resp.Skipped)
	}
	// The drained server serves nothing further on either connection.
	if _, err := busy.Round(reqWindow(1), time.Second); err == nil {
		t.Fatal("round succeeded after shutdown")
	}
	if _, err := idle.Round(reqWindow(1), time.Second); err == nil {
		t.Fatal("idle connection survived shutdown")
	}
	if _, err := Dial(srv.Addr(), &Hello{}, ClientOptions{DialTimeout: 500 * time.Millisecond}); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
}

// TestServerShutdownForceClosesStragglers: a session stuck in compute past
// the grace is force-closed; Shutdown still returns.
func TestServerShutdownForceCloses(t *testing.T) {
	h := &echoHandler{delay: time.Second}
	srv := startServer(t, h, ServerOptions{})
	c, err := Dial(srv.Addr(), &Hello{}, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	go c.Round(reqWindow(1), 5*time.Second)
	time.Sleep(30 * time.Millisecond)
	start := time.Now()
	srv.Shutdown(50 * time.Millisecond)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("shutdown with tiny grace took %v", elapsed)
	}
}
