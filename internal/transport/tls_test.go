package transport

import (
	"crypto/tls"
	"strings"
	"testing"
	"time"

	"streamrule/internal/transport/tlstest"
)

// TestTLSMutualRoundTrip runs full window rounds over loopback mTLS: the
// worker serves TLS requiring a client certificate, the coordinator dials
// with one, and the framed-gob protocol works unchanged above the TLS
// layer.
func TestTLSMutualRoundTrip(t *testing.T) {
	m, err := tlstest.New()
	if err != nil {
		t.Fatal(err)
	}
	h := &echoHandler{}
	srv := startServer(t, h, ServerOptions{TLS: m.ServerTLS})

	c, err := Dial(srv.Addr(), &Hello{Program: "p."}, ClientOptions{TLS: m.ClientTLS})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 1; i <= 3; i++ {
		resp, err := c.Round(reqWindow(i), 2*time.Second)
		if err != nil {
			t.Fatalf("round %d over mTLS: %v", i, err)
		}
		if resp.Seq != uint64(i) || resp.Skipped != i {
			t.Fatalf("round %d: seq %d skipped %d", i, resp.Seq, resp.Skipped)
		}
	}
}

// TestTLSRejectsPlaintextClient: a client that skips TLS against a TLS
// worker must fail the handshake cleanly, not hang or garbage-decode.
func TestTLSRejectsPlaintextClient(t *testing.T) {
	m, err := tlstest.New()
	if err != nil {
		t.Fatal(err)
	}
	srv := startServer(t, &echoHandler{}, ServerOptions{TLS: m.ServerTLS, HandshakeTimeout: time.Second})
	if _, err := Dial(srv.Addr(), &Hello{}, ClientOptions{DialTimeout: 2 * time.Second}); err == nil {
		t.Fatal("plaintext dial succeeded against a TLS server")
	}
}

// TestTLSRejectsClientWithoutCert: mutual TLS means a client without a
// certificate is turned away during or immediately after the handshake.
func TestTLSRejectsClientWithoutCert(t *testing.T) {
	m, err := tlstest.New()
	if err != nil {
		t.Fatal(err)
	}
	srv := startServer(t, &echoHandler{}, ServerOptions{TLS: m.ServerTLS, HandshakeTimeout: time.Second})
	noCert := &tls.Config{MinVersion: tls.VersionTLS12, RootCAs: m.ClientTLS.RootCAs}
	_, err = Dial(srv.Addr(), &Hello{}, ClientOptions{TLS: noCert, DialTimeout: 2 * time.Second})
	if err == nil {
		t.Fatal("certificate-less client was accepted by an mTLS server")
	}
	if !strings.Contains(err.Error(), "transport:") {
		t.Fatalf("unexpected error shape: %v", err)
	}
}
