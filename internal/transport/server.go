package transport

import (
	"crypto/tls"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Session is one live reasoning session on a worker: the per-connection
// state built from a Hello (a full reasoner plus a wire encoder).
type Session interface {
	// Window processes one request and returns the response. Errors that
	// leave the session usable travel in WindowResp.Err.
	Window(req *WindowReq) *WindowResp
	// Close releases the session's resources.
	Close()
}

// Handler builds sessions for incoming connections — the seam between the
// transport and the reasoning layer (internal/reasoner provides the
// production implementation).
type Handler interface {
	NewSession(h *Hello) (Session, error)
}

// ServerOptions configures a worker server.
type ServerOptions struct {
	// MaxFrame bounds a single protocol frame (0 = DefaultMaxFrame).
	MaxFrame int
	// HandshakeTimeout bounds the wait for the Hello on a new connection
	// (0 = 10s). Connections that never speak are shed.
	HandshakeTimeout time.Duration
	// TLS, when non-nil, serves TLS on the listener. A config carrying
	// ClientCAs + RequireAndVerifyClientCert gives mutual TLS; coordinators
	// must then dial with a matching ClientOptions.TLS.
	TLS *tls.Config
}

// Server accepts coordinator connections and hosts one Session per
// connection. Each session is served by its own goroutine; requests within
// a session are strictly sequential (that is the protocol's backpressure).
type Server struct {
	ln   net.Listener
	h    Handler
	opts ServerOptions

	mu     sync.Mutex
	conns  map[net.Conn]bool
	closed bool
	wg     sync.WaitGroup
}

// NewServer listens on addr (host:port; an empty host or port 0 work as
// with net.Listen) and returns a server ready to Serve.
func NewServer(addr string, h Handler, opts ServerOptions) (*Server, error) {
	if h == nil {
		return nil, fmt.Errorf("transport: nil handler")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	if opts.TLS != nil {
		ln = tls.NewListener(ln, opts.TLS)
	}
	return &Server{ln: ln, h: h, opts: opts, conns: make(map[net.Conn]bool)}, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Serve accepts connections until Close. It always returns a non-nil error;
// after Close the error is net.ErrClosed.
func (s *Server) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.wg.Wait()
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			s.wg.Wait()
			return net.ErrClosed
		}
		s.conns[conn] = true
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops accepting and tears down every live connection (sessions see
// a read error and close). Safe to call more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	return err
}

// Shutdown stops accepting and drains live sessions gracefully: idle
// connections (those waiting for the next request) close immediately, a
// session mid-window finishes its current request and ships the response
// before its connection closes. Sessions still alive after grace are
// force-closed. Safe to call more than once and alongside Close.
func (s *Server) Shutdown(grace time.Duration) error {
	s.mu.Lock()
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	// Expiring the read deadline now makes the blocking "next request"
	// decode fail immediately without cutting off an in-progress response
	// write — the drain semantics.
	now := time.Now()
	for _, c := range conns {
		c.SetReadDeadline(now)
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(grace):
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
	}
	return err
}

// serveConn runs one session: handshake, then the request loop.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	fw := newFrameWriter(conn, s.opts.MaxFrame, nil)
	fr := newFrameReader(conn, s.opts.MaxFrame, nil, nil)
	enc := gob.NewEncoder(fw)
	dec := gob.NewDecoder(fr)

	hst := s.opts.HandshakeTimeout
	if hst <= 0 {
		hst = 10 * time.Second
	}
	conn.SetReadDeadline(time.Now().Add(hst))
	var hello Hello
	if err := dec.Decode(&hello); err != nil {
		return
	}
	conn.SetReadDeadline(time.Time{})

	ack := HelloAck{}
	var sess Session
	if hello.Version != ProtocolVersion {
		ack.Err = fmt.Sprintf("protocol version %d not supported (worker speaks %d)", hello.Version, ProtocolVersion)
	} else {
		var err error
		sess, err = s.h.NewSession(&hello)
		if err != nil {
			ack.Err = err.Error()
		}
	}
	ackErr := enc.Encode(&ack)
	if ackErr == nil {
		ackErr = fw.Flush()
	}
	if ackErr != nil || ack.Err != "" || sess == nil {
		if sess != nil {
			sess.Close()
		}
		return
	}
	defer sess.Close()

	for {
		var req WindowReq
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				// Oversized frames and decode corruption also land here; the
				// connection is torn down either way.
				_ = err
			}
			return
		}
		if req.Ping {
			// Protocol-level heartbeat: echo an empty response without
			// touching the session. Sequence numbers still advance — pings
			// share the ordered response stream.
			pong := &WindowResp{Seq: req.Seq}
			if err := enc.Encode(pong); err != nil {
				return
			}
			if err := fw.Flush(); err != nil {
				return
			}
			continue
		}
		resp := sess.Window(&req)
		resp.Seq = req.Seq
		if err := enc.Encode(resp); err != nil {
			return
		}
		if err := fw.Flush(); err != nil {
			return
		}
	}
}
