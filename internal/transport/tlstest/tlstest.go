// Package tlstest generates throwaway mTLS material for loopback tests: a
// self-signed CA plus server and client leaf certificates, returned both as
// ready-to-use tls.Configs and as PEM bytes (for exercising file-loading
// paths such as the CLI's -tls-cert/-tls-key/-tls-ca flags). Nothing here
// is suitable for production use — keys are fresh P-256 pairs with short
// lifetimes and no revocation story.
package tlstest

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"fmt"
	"math/big"
	"net"
	"time"
)

// Material is one disposable PKI: a CA and two leaves signed by it.
type Material struct {
	// CAPEM is the CA certificate, the trust root both sides verify
	// against.
	CAPEM []byte
	// ServerCertPEM/ServerKeyPEM are the worker-side leaf (valid for
	// 127.0.0.1, ::1, and "localhost").
	ServerCertPEM, ServerKeyPEM []byte
	// ClientCertPEM/ClientKeyPEM are the coordinator-side leaf.
	ClientCertPEM, ClientKeyPEM []byte

	// ServerTLS serves mTLS: it presents the server leaf and requires a
	// client certificate signed by the CA.
	ServerTLS *tls.Config
	// ClientTLS dials mTLS: it presents the client leaf and verifies the
	// server against the CA.
	ClientTLS *tls.Config
}

// New generates a fresh CA and signed server/client leaves.
func New() (*Material, error) {
	caKey, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	caTmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "streamrule test CA"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(24 * time.Hour),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
	}
	caDER, err := x509.CreateCertificate(rand.Reader, caTmpl, caTmpl, &caKey.PublicKey, caKey)
	if err != nil {
		return nil, err
	}
	caCert, err := x509.ParseCertificate(caDER)
	if err != nil {
		return nil, err
	}

	m := &Material{CAPEM: pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: caDER})}

	serverCert, serverKey, err := leaf(caCert, caKey, "streamrule test worker", 2)
	if err != nil {
		return nil, err
	}
	clientCert, clientKey, err := leaf(caCert, caKey, "streamrule test coordinator", 3)
	if err != nil {
		return nil, err
	}
	m.ServerCertPEM, m.ServerKeyPEM = serverCert, serverKey
	m.ClientCertPEM, m.ClientKeyPEM = clientCert, clientKey

	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(m.CAPEM) {
		return nil, fmt.Errorf("tlstest: CA PEM did not parse")
	}
	serverPair, err := tls.X509KeyPair(m.ServerCertPEM, m.ServerKeyPEM)
	if err != nil {
		return nil, err
	}
	clientPair, err := tls.X509KeyPair(m.ClientCertPEM, m.ClientKeyPEM)
	if err != nil {
		return nil, err
	}
	m.ServerTLS = &tls.Config{
		MinVersion:   tls.VersionTLS12,
		Certificates: []tls.Certificate{serverPair},
		ClientCAs:    pool,
		ClientAuth:   tls.RequireAndVerifyClientCert,
	}
	m.ClientTLS = &tls.Config{
		MinVersion:   tls.VersionTLS12,
		Certificates: []tls.Certificate{clientPair},
		RootCAs:      pool,
	}
	return m, nil
}

// leaf issues one CA-signed leaf certificate valid for loopback use in
// either role (the extended key usages cover both, so the same helper
// serves server and client).
func leaf(ca *x509.Certificate, caKey *ecdsa.PrivateKey, cn string, serial int64) (certPEM, keyPEM []byte, err error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, nil, err
	}
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(serial),
		Subject:      pkix.Name{CommonName: cn},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(24 * time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth, x509.ExtKeyUsageClientAuth},
		DNSNames:     []string{"localhost"},
		IPAddresses:  []net.IP{net.IPv4(127, 0, 0, 1), net.IPv6loopback},
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, ca, &key.PublicKey, caKey)
	if err != nil {
		return nil, nil, err
	}
	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		return nil, nil, err
	}
	certPEM = pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der})
	keyPEM = pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER})
	return certPEM, keyPEM, nil
}
