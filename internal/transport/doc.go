// Package transport is the worker wire protocol of the distributed reasoner:
// length-prefixed gob frames over plain TCP, a Server that hosts reasoning
// sessions behind a Handler interface, and a Client that drives one session
// with strictly sequential request/response rounds.
//
// # Protocol
//
// A session begins with a handshake: the coordinator sends Hello (protocol
// version, the ASP program source, input/output predicates, solver and
// memory options) and the worker answers HelloAck. The worker builds a full
// reasoner for the session from the Hello — workers are program-agnostic
// processes; the program always travels with the session. After the
// handshake the coordinator sends one WindowReq per window (the sub-window
// routed to this partition) and the worker answers one WindowResp carrying
// the answer sets in portable wire form (intern.WireSet) together with the
// session's dictionary delta (intern.DictDelta) and the worker-side latency
// and engine statistics. Sequence numbers echo back so a desynchronized
// stream is detected instead of mis-attributed.
//
// # Framing
//
// Every message is one gob value encoded into one length-prefixed frame
// (4-byte big-endian length, then the payload). Frames larger than the
// configured maximum are rejected before any allocation on the read side
// and before any write on the send side, so a corrupt peer or a runaway
// window cannot balloon either process. The gob streams (one encoder and
// one decoder per direction, persistent across the connection) see a plain
// byte stream; frame boundaries are invisible to them.
//
// # Backpressure and failure
//
// A client allows exactly one outstanding round per session: Round blocks
// until the response arrives or the deadline passes. The coordinator
// therefore never queues windows behind a slow worker — a straggler makes
// the coordinator fall back to local processing for that partition (see
// internal/reasoner's DPR), and any transport error marks the session
// broken. Broken sessions are redialed with a fresh handshake; the worker
// then rebuilds its reasoner state from scratch (the first window re-seeds)
// and re-ships its dictionary, which is exactly the replay the wire form is
// designed for.
package transport
