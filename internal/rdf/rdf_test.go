package rdf

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseLine(t *testing.T) {
	cases := []struct {
		in   string
		want Triple
	}{
		{"city1 average_speed 10 .", Triple{"city1", "average_speed", "10"}},
		{"city1 average_speed 10", Triple{"city1", "average_speed", "10"}},
		{"  a  b  c  .  ", Triple{"a", "b", "c"}},
	}
	for _, c := range cases {
		got, err := ParseLine(c.in)
		if err != nil {
			t.Errorf("ParseLine(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseLine(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseLineErrors(t *testing.T) {
	for _, in := range []string{"", "a", "a b", "a b c d", "a b c d ."} {
		if _, err := ParseLine(in); err == nil {
			t.Errorf("ParseLine(%q) should fail", in)
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	src := `
# header comment
car1 car_speed 0 .

car1 car_location dangan .
`
	got, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].P != "car_speed" || got[1].O != "dangan" {
		t.Errorf("got %v", got)
	}
}

func TestReadError(t *testing.T) {
	_, err := Read(strings.NewReader("ok ok ok .\nbad line"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("expected line-2 error, got %v", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	in := []Triple{
		{"city1", "average_speed", "10"},
		{"car1", "car_in_smoke", "high"},
	}
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %v", out)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("triple %d = %v, want %v", i, out[i], in[i])
		}
	}
}

// Property: String/ParseLine round-trips for whitespace-free components.
func TestQuickRoundTrip(t *testing.T) {
	clean := func(s string) string {
		if s == "" {
			return "x"
		}
		out := ""
		for _, r := range s {
			if r > ' ' && r < 127 && r != '#' {
				out += string(r)
			}
		}
		if out == "" {
			return "x"
		}
		return out
	}
	f := func(s, p, o string) bool {
		in := Triple{clean(s), clean(p), clean(o)}
		got, err := ParseLine(in.String())
		return err == nil && got == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
