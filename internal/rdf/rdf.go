// Package rdf provides the minimal RDF triple model the StreamRule pipeline
// consumes. The paper's experimental data is synthetic triples <s, p, o>
// whose predicate p ranges over the input predicates of the logic program;
// no IRIs or literals-with-datatypes are needed, so subjects, predicates,
// and objects are plain strings and a line-oriented text codec stands in for
// N-Triples.
package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Triple is an RDF statement <subject, predicate, object>.
type Triple struct {
	S, P, O string
}

// String renders the triple in the line format "s p o .".
func (t Triple) String() string {
	return fmt.Sprintf("%s %s %s .", t.S, t.P, t.O)
}

// ParseLine parses a single "s p o ." (or "s p o") line.
func ParseLine(line string) (Triple, error) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) == 4 && fields[3] == "." {
		fields = fields[:3]
	}
	if len(fields) != 3 {
		return Triple{}, fmt.Errorf("malformed triple line %q", line)
	}
	return Triple{S: fields[0], P: fields[1], O: fields[2]}, nil
}

// Read parses the line-oriented triple stream from r; empty lines and lines
// starting with '#' are skipped.
func Read(r io.Reader) ([]Triple, error) {
	var out []Triple
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := ParseLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out = append(out, t)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Write serializes triples one per line.
func Write(w io.Writer, triples []Triple) error {
	bw := bufio.NewWriter(w)
	for _, t := range triples {
		if _, err := fmt.Fprintln(bw, t.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}
