package core

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"streamrule/internal/asp/ast"
	"streamrule/internal/asp/parser"
)

// programP is Listing 1 of the paper; programPPrime adds rule r7 (§II-B).
const programP = `
very_slow_speed(X) :- average_speed(X,Y), Y < 20.
many_cars(X) :- car_number(X,Y), Y > 40.
traffic_jam(X) :- very_slow_speed(X), many_cars(X), not traffic_light(X).
car_fire(X) :- car_in_smoke(C, high), car_speed(C, 0), car_location(C, X).
give_notification(X) :- traffic_jam(X).
give_notification(X) :- car_fire(X).
`

const programPPrime = programP + `
traffic_jam(X) :- car_fire(X), many_cars(X).
`

// inpreP is inpre(P) = inpre(P') from the paper.
var inpreP = []string{
	"average_speed", "car_number", "traffic_light",
	"car_in_smoke", "car_speed", "car_location",
}

func mustProgram(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestFigure2 checks the structure of the extended dependency graph of P.
func TestFigure2(t *testing.T) {
	eg := BuildExtended(mustProgram(t, programP))

	wantPreds := []string{
		"average_speed", "car_fire", "car_in_smoke", "car_location",
		"car_number", "car_speed", "give_notification", "many_cars",
		"traffic_jam", "traffic_light", "very_slow_speed",
	}
	if strings.Join(eg.Preds, " ") != strings.Join(wantPreds, " ") {
		t.Errorf("Preds = %v", eg.Preds)
	}

	// E2 directed edges (body -> head).
	e2 := [][2]string{
		{"average_speed", "very_slow_speed"},
		{"car_number", "many_cars"},
		{"very_slow_speed", "traffic_jam"},
		{"many_cars", "traffic_jam"},
		{"traffic_light", "traffic_jam"},
		{"car_in_smoke", "car_fire"},
		{"car_speed", "car_fire"},
		{"car_location", "car_fire"},
		{"traffic_jam", "give_notification"},
		{"car_fire", "give_notification"},
	}
	for _, e := range e2 {
		if !eg.E2.HasEdge(e[0], e[1]) {
			t.Errorf("missing E2 edge %s -> %s", e[0], e[1])
		}
	}
	if got := eg.E2.NumEdges(); got != len(e2) {
		t.Errorf("E2 has %d edges, want %d", got, len(e2))
	}

	// E1 undirected edges: r3 body pairs + r4 body pairs + traffic_light
	// self-loop (negated in r3).
	e1 := [][2]string{
		{"many_cars", "very_slow_speed"},
		{"traffic_light", "very_slow_speed"},
		{"many_cars", "traffic_light"},
		{"car_in_smoke", "car_speed"},
		{"car_in_smoke", "car_location"},
		{"car_location", "car_speed"},
		{"traffic_light", "traffic_light"},
	}
	for _, e := range e1 {
		if !eg.E1.HasEdge(e[0], e[1]) {
			t.Errorf("missing E1 edge (%s, %s)", e[0], e[1])
		}
	}
	if got := eg.E1.NumEdges(); got != len(e1) {
		t.Errorf("E1 has %d edges, want %d: %v", got, len(e1), eg.E1.Edges())
	}
	if !eg.E1.SelfLoop("traffic_light") {
		t.Error("traffic_light must have an E1 self-loop (negated body literal)")
	}
}

// TestFigure3 checks the input dependency graph of P: two components
// (traffic vs car-fire) and the self-loop on traffic_light.
func TestFigure3(t *testing.T) {
	eg := BuildExtended(mustProgram(t, programP))
	ig := BuildInput(eg, inpreP)

	want := [][2]string{
		{"average_speed", "car_number"},
		{"average_speed", "traffic_light"},
		{"car_number", "traffic_light"},
		{"traffic_light", "traffic_light"},
		{"car_in_smoke", "car_speed"},
		{"car_in_smoke", "car_location"},
		{"car_location", "car_speed"},
	}
	for _, e := range want {
		if !ig.G.HasEdge(e[0], e[1]) {
			t.Errorf("missing input edge (%s, %s)", e[0], e[1])
		}
	}
	if got := ig.G.NumEdges(); got != len(want) {
		t.Errorf("input graph has %d edges, want %d: %v", got, len(want), ig.G.Edges())
	}

	comps := ig.G.ConnectedComponents()
	if len(comps) != 2 {
		t.Fatalf("expected 2 components, got %v", comps)
	}
	if strings.Join(comps[0], " ") != "average_speed car_number traffic_light" {
		t.Errorf("component 0 = %v", comps[0])
	}
	if strings.Join(comps[1], " ") != "car_in_smoke car_location car_speed" {
		t.Errorf("component 1 = %v", comps[1])
	}

	if !ig.DependOn("average_speed", "car_number") {
		t.Error("average_speed and car_number must depend on each other (Def. 3)")
	}
	if ig.DependOn("average_speed", "car_speed") {
		t.Error("average_speed and car_speed must be independent")
	}
}

// TestFigure4 checks that r7 connects the two components of the input graph
// through car_number.
func TestFigure4(t *testing.T) {
	eg := BuildExtended(mustProgram(t, programPPrime))
	ig := BuildInput(eg, inpreP)

	if !ig.G.IsConnected() {
		t.Fatal("input dependency graph of P' must be connected")
	}
	for _, n := range []string{"car_in_smoke", "car_speed", "car_location"} {
		if !ig.G.HasEdge("car_number", n) {
			t.Errorf("missing bridging edge (car_number, %s)", n)
		}
	}
	// The bridge comes only from car_number: average_speed and
	// traffic_light stay unconnected to the fire clique.
	for _, a := range []string{"average_speed", "traffic_light"} {
		for _, b := range []string{"car_in_smoke", "car_speed", "car_location"} {
			if ig.G.HasEdge(a, b) {
				t.Errorf("unexpected edge (%s, %s)", a, b)
			}
		}
	}
}

// TestFigure5 checks the decomposing process on P': two communities with
// car_number duplicated into both.
func TestFigure5(t *testing.T) {
	a, err := Analyze(mustProgram(t, programPPrime), inpreP, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	plan := a.Plan
	if !plan.Connected {
		t.Error("plan should record that the input graph was connected")
	}
	if plan.NumPartitions() != 2 {
		t.Fatalf("expected 2 partitions, got %v", plan.Communities)
	}
	if len(plan.Duplicated) != 1 || plan.Duplicated[0] != "car_number" {
		t.Fatalf("duplicated = %v, want [car_number]", plan.Duplicated)
	}
	if got := plan.CommunitiesOf("car_number"); len(got) != 2 {
		t.Errorf("car_number communities = %v, want both", got)
	}
	// Every other predicate belongs to exactly one community, and the two
	// cliques are separated.
	for _, p := range inpreP {
		if p == "car_number" {
			continue
		}
		if got := plan.CommunitiesOf(p); len(got) != 1 {
			t.Errorf("%s communities = %v, want one", p, got)
		}
	}
	cid := func(p string) int { return plan.CommunitiesOf(p)[0] }
	if cid("average_speed") != cid("traffic_light") {
		t.Error("traffic clique split")
	}
	if cid("car_in_smoke") != cid("car_speed") || cid("car_speed") != cid("car_location") {
		t.Error("fire clique split")
	}
	if cid("average_speed") == cid("car_in_smoke") {
		t.Error("cliques must be in different partitions")
	}
}

// TestPlanDisconnected checks the plan for P (no duplication needed).
func TestPlanDisconnected(t *testing.T) {
	a, err := Analyze(mustProgram(t, programP), inpreP, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	plan := a.Plan
	if plan.Connected {
		t.Error("input graph of P is disconnected")
	}
	if plan.NumPartitions() != 2 {
		t.Fatalf("partitions = %v", plan.Communities)
	}
	if len(plan.Duplicated) != 0 {
		t.Errorf("no duplication expected, got %v", plan.Duplicated)
	}
}

func TestUnusedInputPredicateIsolated(t *testing.T) {
	eg := BuildExtended(mustProgram(t, programP))
	ig := BuildInput(eg, append([]string{"unused_sensor"}, inpreP...))
	if !ig.G.HasNode("unused_sensor") {
		t.Fatal("unused input predicate must appear as a node")
	}
	if len(ig.G.Neighbors("unused_sensor")) != 0 {
		t.Error("unused input predicate must be isolated")
	}
	plan, err := Decompose(ig, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumPartitions() != 3 {
		t.Errorf("expected 3 partitions (2 cliques + isolated), got %v", plan.Communities)
	}
}

func TestInputPredicateCanBeIDB(t *testing.T) {
	// The paper allows input predicates to be IDB: feed very_slow_speed
	// directly as an input. It reaches traffic_jam, so it depends on
	// car_number and traffic_light.
	eg := BuildExtended(mustProgram(t, programP))
	ig := BuildInput(eg, []string{"very_slow_speed", "car_number", "traffic_light"})
	if !ig.DependOn("very_slow_speed", "car_number") {
		t.Error("IDB input must depend on car_number")
	}
	if !ig.DependOn("very_slow_speed", "traffic_light") {
		t.Error("IDB input must depend on traffic_light")
	}
}

func TestConditionII_MultiHop(t *testing.T) {
	// a -> ... chain of derived predicates whose tips co-occur in one body:
	// d1 :- a(X).   d2 :- d1.   e1 :- b(X).   joint :- d2, e1.
	prog := mustProgram(t, `
d1 :- a(X).
d2 :- d1.
e1 :- b(X).
joint :- d2, e1.
`)
	eg := BuildExtended(prog)
	ig := BuildInput(eg, []string{"a", "b"})
	if !ig.DependOn("a", "b") {
		t.Error("condition (ii): a and b must depend on each other via d2/e1 co-occurrence")
	}
}

func TestConditionIII_InheritedSelfLoop(t *testing.T) {
	// u is negated in some body, so (u,u) in E1; input p derives u, hence p
	// must get a self-loop (condition (iii)).
	prog := mustProgram(t, `
u :- p(X).
q :- r(X), not u.
`)
	eg := BuildExtended(prog)
	ig := BuildInput(eg, []string{"p", "r"})
	if !ig.G.SelfLoop("p") {
		t.Error("p must inherit u's self-loop")
	}
	// And p depends on r via the (r,u) body pair.
	if !ig.DependOn("p", "r") {
		t.Error("p and r must depend on each other")
	}
}

func TestDecomposeSingleCommunityGraph(t *testing.T) {
	// A triangle is one Louvain community: the plan degenerates to a single
	// partition, which is still a valid (if unhelpful) plan.
	prog := mustProgram(t, `
x :- a(X), b(X), c(X).
`)
	a, err := Analyze(prog, []string{"a", "b", "c"}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Plan.NumPartitions() != 1 {
		t.Errorf("partitions = %v", a.Plan.Communities)
	}
	if len(a.Plan.Duplicated) != 0 {
		t.Errorf("duplicated = %v", a.Plan.Duplicated)
	}
}

func TestAggregatesContributeDependencies(t *testing.T) {
	// The aggregate correlates request atoms (through the count) with the
	// blocked predicate in the same rule body: both must land in one
	// partition, and request must carry a self-loop (splitting its atoms
	// changes every count).
	prog := mustProgram(t, `
zone(Z) :- request(_, Z).
overload(Z) :- zone(Z), not blocked(Z), #count{ R : request(R, Z) } >= 3.
`)
	eg := BuildExtended(prog)
	if !eg.E1.SelfLoop("request") {
		t.Error("aggregate condition predicate must get a self-loop")
	}
	ig := BuildInput(eg, []string{"request", "blocked"})
	if !ig.DependOn("request", "blocked") {
		t.Error("request and blocked co-fire the overload rule: they must depend on each other")
	}
	if !ig.G.SelfLoop("request") {
		t.Error("request atoms depend on each other through the count")
	}
	plan, err := Decompose(ig, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	cr := plan.CommunitiesOf("request")
	cb := plan.CommunitiesOf("blocked")
	shared := false
	for _, a := range cr {
		for _, b := range cb {
			if a == b {
				shared = true
			}
		}
	}
	if !shared {
		t.Errorf("request %v and blocked %v must share a partition", cr, cb)
	}
}

func TestStripDuplicates(t *testing.T) {
	a, err := Analyze(mustProgram(t, programPPrime), inpreP, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	stripped := StripDuplicates(a.Plan)
	if len(stripped.Duplicated) != 0 {
		t.Errorf("duplicated = %v", stripped.Duplicated)
	}
	if got := stripped.CommunitiesOf("car_number"); len(got) != 1 {
		t.Errorf("car_number communities = %v, want one", got)
	}
	// Every input predicate is still covered exactly once.
	for _, p := range inpreP {
		if got := stripped.CommunitiesOf(p); len(got) != 1 {
			t.Errorf("%s communities = %v", p, got)
		}
	}
	if stripped.NumPartitions() != a.Plan.NumPartitions() {
		t.Errorf("partitions changed: %d vs %d", stripped.NumPartitions(), a.Plan.NumPartitions())
	}
	// The original plan is untouched.
	if len(a.Plan.Duplicated) != 1 {
		t.Error("StripDuplicates must not mutate its input")
	}
}

func TestDecomposeRejectsBadResolution(t *testing.T) {
	prog := mustProgram(t, `x :- a(X), b(X).`)
	eg := BuildExtended(prog)
	ig := BuildInput(eg, []string{"a", "b"})
	if _, err := Decompose(ig, -1); err == nil {
		t.Error("negative resolution must be rejected")
	}
}

func TestDOTOutputs(t *testing.T) {
	a, err := Analyze(mustProgram(t, programP), inpreP, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	dot := a.Extended.DOT()
	if !strings.Contains(dot, `"average_speed" -> "very_slow_speed";`) {
		t.Errorf("extended DOT missing E2 edge:\n%s", dot)
	}
	if !strings.Contains(dot, "style=dashed") {
		t.Error("extended DOT missing E1 styling")
	}
	idot := a.Input.DOT()
	if !strings.Contains(idot, `"average_speed" -- "car_number";`) {
		t.Errorf("input DOT missing edge:\n%s", idot)
	}
	if !strings.Contains(a.Plan.String(), "partitions: 2") {
		t.Errorf("plan string: %s", a.Plan)
	}
}

// randProgram builds a random program over nIn input predicates and nDer
// derived predicates, for the property tests.
func randProgram(rng *rand.Rand, nIn, nDer int) (*ast.Program, []string) {
	var inpre []string
	for i := 0; i < nIn; i++ {
		inpre = append(inpre, string(rune('a'+i)))
	}
	var derived []string
	for i := 0; i < nDer; i++ {
		derived = append(derived, "d"+string(rune('0'+i)))
	}
	all := append(append([]string{}, inpre...), derived...)
	prog := &ast.Program{}
	nRules := 1 + rng.Intn(6)
	for r := 0; r < nRules; r++ {
		head := ast.NewAtom(derived[rng.Intn(nDer)])
		nBody := 1 + rng.Intn(3)
		var body []ast.Literal
		for b := 0; b < nBody; b++ {
			pred := all[rng.Intn(len(all))]
			a := ast.NewAtom(pred)
			if rng.Intn(5) == 0 {
				body = append(body, ast.Not(a))
			} else {
				body = append(body, ast.Pos(a))
			}
		}
		prog.Add(ast.Rule{Head: []ast.Atom{head}, Body: body})
	}
	return prog, inpre
}

// Property: the input dependency graph's nodes are exactly inpre, and every
// plan covers every input predicate that has atoms to route.
func TestQuickPlanCoversInputs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog, inpre := randProgram(rng, 2+rng.Intn(4), 2+rng.Intn(3))
		a, err := Analyze(prog, inpre, 1.0)
		if err != nil {
			return false
		}
		nodes := a.Input.G.Nodes()
		want := append([]string{}, inpre...)
		sort.Strings(want)
		if strings.Join(nodes, " ") != strings.Join(want, " ") {
			return false
		}
		for _, p := range inpre {
			ids := a.Plan.CommunitiesOf(p)
			if len(ids) == 0 {
				return false
			}
			for _, id := range ids {
				if id < 0 || id >= a.Plan.NumPartitions() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: two input predicates co-occurring in the same rule body always
// depend on each other (condition (i)).
func TestQuickConditionI(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog, inpre := randProgram(rng, 2+rng.Intn(4), 2+rng.Intn(3))
		eg := BuildExtended(prog)
		ig := BuildInput(eg, inpre)
		inSet := make(map[string]bool)
		for _, p := range inpre {
			inSet[p] = true
		}
		for _, r := range prog.Rules {
			var preds []string
			for _, l := range r.Body {
				if l.Kind == ast.AtomLiteral && inSet[l.Atom.Pred] {
					preds = append(preds, l.Atom.Pred)
				}
			}
			for i := 0; i < len(preds); i++ {
				for j := i + 1; j < len(preds); j++ {
					if preds[i] != preds[j] && !ig.DependOn(preds[i], preds[j]) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: dependent predicates are always in a shared partition... more
// precisely, two input predicates connected by an edge in the input graph
// share at least one community OR the edge crosses communities only when one
// endpoint was eligible for duplication. For disconnected graphs (pure
// component plans) connected predicates always share a community.
func TestQuickDisconnectedPlanKeepsEdgesTogether(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog, inpre := randProgram(rng, 2+rng.Intn(4), 2+rng.Intn(3))
		a, err := Analyze(prog, inpre, 1.0)
		if err != nil {
			return false
		}
		if a.Plan.Connected {
			return true // duplication case: edges may legitimately cross
		}
		for _, e := range a.Input.G.Edges() {
			ci := a.Plan.CommunitiesOf(e[0])
			cj := a.Plan.CommunitiesOf(e[1])
			if len(ci) != 1 || len(cj) != 1 || ci[0] != cj[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
