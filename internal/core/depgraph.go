// Package core implements the paper's primary contribution: input dependency
// analysis for a logic program (§II).
//
// Given a program P and its input predicates inpre(P), the package builds
//
//  1. the extended dependency graph G_P (Definition 1): undirected edges E1
//     between predicates co-occurring in a rule body (with a self-loop for
//     predicates occurring under default negation), and directed edges E2
//     from body predicates to head predicates;
//  2. the input dependency graph (Definition 2): an undirected graph over
//     inpre(P) connecting input predicates that can contribute to firing a
//     rule together, obtained by bridging every E1 edge with E2 reachability;
//  3. the partitioning plan (§II-B): the connected components of the input
//     dependency graph, or — when the graph is connected — Louvain
//     communities with the smaller exnodes side duplicated into both
//     communities.
//
// Predicates are identified by name, as in the paper's figures.
package core

import (
	"fmt"
	"sort"
	"strings"

	"streamrule/internal/asp/ast"
	"streamrule/internal/community"
	"streamrule/internal/graph"
)

// ExtendedGraph is the extended dependency graph G_P of Definition 1.
type ExtendedGraph struct {
	// E1 holds the undirected body co-occurrence edges, including the
	// self-loops contributed by negated body literals.
	E1 *graph.Undirected
	// E2 holds the directed body-to-head edges.
	E2 *graph.Directed
	// Preds is the sorted set of predicate names in the program.
	Preds []string
}

// BuildExtended constructs the extended dependency graph of the program.
func BuildExtended(p *ast.Program) *ExtendedGraph {
	eg := &ExtendedGraph{E1: graph.NewUndirected(), E2: graph.NewDirected()}
	predSet := make(map[string]bool)
	add := func(name string) {
		predSet[name] = true
		eg.E1.AddNode(name)
		eg.E2.AddNode(name)
	}
	for _, r := range p.Rules {
		var bodyPreds []string
		for _, l := range r.Body {
			switch l.Kind {
			case ast.AtomLiteral:
				add(l.Atom.Pred)
				bodyPreds = append(bodyPreds, l.Atom.Pred)
				if l.Neg {
					eg.E1.AddEdge(l.Atom.Pred, l.Atom.Pred)
				}
			case ast.AggLiteral:
				// Atoms inside an aggregate's element conditions are body
				// occurrences for dependency purposes: the aggregate value
				// depends on the whole extension of each condition
				// predicate, so they also get a self-loop (splitting their
				// atoms would change the aggregate).
				for _, e := range l.Agg.Elems {
					for _, c := range e.Cond {
						if c.Kind != ast.AtomLiteral {
							continue
						}
						add(c.Atom.Pred)
						bodyPreds = append(bodyPreds, c.Atom.Pred)
						eg.E1.AddEdge(c.Atom.Pred, c.Atom.Pred)
					}
				}
			}
		}
		// E1: every pair of distinct body literal occurrences.
		for i := 0; i < len(bodyPreds); i++ {
			for j := i + 1; j < len(bodyPreds); j++ {
				eg.E1.AddEdge(bodyPreds[i], bodyPreds[j])
			}
		}
		// E2: body -> head.
		for _, h := range r.Head {
			add(h.Pred)
			for _, b := range bodyPreds {
				eg.E2.AddEdge(b, h.Pred)
			}
		}
	}
	for name := range predSet {
		eg.Preds = append(eg.Preds, name)
	}
	sort.Strings(eg.Preds)
	return eg
}

// InputGraph is the input dependency graph of Definition 2, an undirected
// graph (with self-loops) over the input predicates.
type InputGraph struct {
	G *graph.Undirected
	// Inpre is the sorted set of input predicate names.
	Inpre []string
}

// BuildInput derives the input dependency graph of the extended graph with
// respect to the given input predicates.
//
// For every E1 edge (a,b), every input predicate with a directed E2 path to
// a is connected to every input predicate with a directed path to b
// (reachability includes the empty path). This realizes conditions (i) and
// (ii) of Definition 2 and generalizes condition (iii): a self-loop (u,u) in
// E1 induces a self-loop on every input predicate reaching u, which covers
// the paper's direct-father case and its transitive closure.
func BuildInput(eg *ExtendedGraph, inpre []string) *InputGraph {
	ig := &InputGraph{G: graph.NewUndirected()}
	ig.Inpre = append(ig.Inpre, inpre...)
	sort.Strings(ig.Inpre)

	inputSet := make(map[string]bool, len(inpre))
	for _, p := range ig.Inpre {
		inputSet[p] = true
		ig.G.AddNode(p)
	}

	// reachedBy[x] = input predicates with a directed E2 path to x.
	reachedBy := make(map[string][]string)
	for _, p := range ig.Inpre {
		if !eg.E2.HasNode(p) {
			// Input predicate unused by the program: isolated node.
			continue
		}
		for x := range eg.E2.Reachable(p) {
			reachedBy[x] = append(reachedBy[x], p)
		}
	}

	for _, e := range eg.E1.Edges() {
		for _, p := range reachedBy[e[0]] {
			for _, q := range reachedBy[e[1]] {
				ig.G.AddEdge(p, q)
			}
		}
	}
	return ig
}

// DependOn reports whether two input predicates depend on each other
// (Definition 3): there is an edge between them in the input dependency
// graph.
func (ig *InputGraph) DependOn(p, q string) bool { return ig.G.HasEdge(p, q) }

// Plan is the partitioning plan produced by the decomposing process: the
// mapping from input predicates to the communities whose partitions must
// receive their ground atoms.
type Plan struct {
	// Communities lists the sorted member predicates of each community,
	// including duplicated predicates (which appear in several communities).
	Communities [][]string
	// Assign maps each input predicate to the sorted ids of the communities
	// it belongs to.
	Assign map[string][]int
	// Duplicated lists the predicates assigned to more than one community.
	Duplicated []string
	// Connected records whether the input dependency graph was connected
	// (and community detection plus duplication was therefore required).
	Connected bool
	// Resolution is the Louvain resolution used (meaningful when Connected).
	Resolution float64
	// Modularity of the Louvain split (0 when the graph was disconnected).
	Modularity float64
}

// NumPartitions returns the number of communities in the plan.
func (pl *Plan) NumPartitions() int { return len(pl.Communities) }

// CommunitiesOf returns the community ids for a predicate, or nil when the
// predicate is not covered by the plan (Algorithm 1 line 5).
func (pl *Plan) CommunitiesOf(pred string) []int { return pl.Assign[pred] }

// String renders the plan for logs and the depgraph CLI.
func (pl *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "partitions: %d, connected input graph: %v\n", pl.NumPartitions(), pl.Connected)
	for i, c := range pl.Communities {
		fmt.Fprintf(&b, "  C%d: %s\n", i, strings.Join(c, ", "))
	}
	if len(pl.Duplicated) > 0 {
		fmt.Fprintf(&b, "  duplicated: %s\n", strings.Join(pl.Duplicated, ", "))
	}
	return b.String()
}

// Decompose runs the decomposing process of §II-B on an input dependency
// graph: connected components when the graph is disconnected, otherwise
// Louvain communities (at the given resolution) with the smaller exnodes
// side of every community pair duplicated into both.
func Decompose(ig *InputGraph, resolution float64) (*Plan, error) {
	comps := ig.G.ConnectedComponents()
	plan := &Plan{Assign: make(map[string][]int), Resolution: resolution}
	if len(comps) != 1 {
		plan.Communities = comps
		for i, c := range comps {
			for _, p := range c {
				plan.Assign[p] = []int{i}
			}
		}
		return plan, nil
	}

	plan.Connected = true
	cg := community.NewGraph()
	for _, n := range ig.G.Nodes() {
		cg.AddNode(n)
	}
	for _, e := range ig.G.Edges() {
		cg.AddEdge(e[0], e[1], 1)
	}
	res, err := community.Louvain(cg, resolution)
	if err != nil {
		return nil, err
	}
	plan.Modularity = res.Modularity
	members := res.Members()

	// memberSet[i] holds the final (possibly duplicated) membership.
	memberSet := make([]map[string]bool, len(members))
	for i, ms := range members {
		memberSet[i] = make(map[string]bool, len(ms))
		for _, m := range ms {
			memberSet[i][m] = true
		}
	}

	// Pairwise duplication (steps 2-3): for communities with cross edges,
	// copy the smaller exnodes side into the other community. exnodes are
	// computed on the original Louvain membership so that duplication of
	// one pair does not cascade into another.
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			exI := exnodes(ig.G, members[i], members[j])
			exJ := exnodes(ig.G, members[j], members[i])
			if len(exI) == 0 && len(exJ) == 0 {
				continue // no cross edges
			}
			// Duplicate the smaller side; ties prefer the side from the
			// lower-numbered community for determinism.
			if len(exI) <= len(exJ) {
				for _, p := range exI {
					memberSet[j][p] = true
				}
			} else {
				for _, p := range exJ {
					memberSet[i][p] = true
				}
			}
		}
	}

	plan.Communities = make([][]string, len(memberSet))
	counts := make(map[string]int)
	for i, set := range memberSet {
		for p := range set {
			plan.Communities[i] = append(plan.Communities[i], p)
			plan.Assign[p] = append(plan.Assign[p], i)
			counts[p]++
		}
		sort.Strings(plan.Communities[i])
	}
	for _, ids := range plan.Assign {
		sort.Ints(ids)
	}
	for p, n := range counts {
		if n > 1 {
			plan.Duplicated = append(plan.Duplicated, p)
		}
	}
	sort.Strings(plan.Duplicated)
	return plan, nil
}

// StripDuplicates returns a copy of the plan in which every duplicated
// predicate is kept only in its lowest-numbered community. It is the
// "no-duplication" ablation: the plan still partitions the window, but the
// cross-community dependencies the duplication protected are broken, so
// answers may be lost.
func StripDuplicates(pl *Plan) *Plan {
	out := &Plan{
		Assign:     make(map[string][]int, len(pl.Assign)),
		Connected:  pl.Connected,
		Resolution: pl.Resolution,
		Modularity: pl.Modularity,
	}
	out.Communities = make([][]string, len(pl.Communities))
	for p, ids := range pl.Assign {
		keep := ids[0]
		out.Assign[p] = []int{keep}
		out.Communities[keep] = append(out.Communities[keep], p)
	}
	for i := range out.Communities {
		sort.Strings(out.Communities[i])
	}
	return out
}

// exnodes returns the sorted members of community a that have an edge into
// community b (§II-B step 2).
func exnodes(g *graph.Undirected, a, b []string) []string {
	inB := make(map[string]bool, len(b))
	for _, n := range b {
		inB[n] = true
	}
	var out []string
	for _, n := range a {
		for _, m := range g.Neighbors(n) {
			if inB[m] {
				out = append(out, n)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// Analysis bundles the design-time artifacts: the two graphs and the plan.
type Analysis struct {
	Extended *ExtendedGraph
	Input    *InputGraph
	Plan     *Plan
}

// Analyze runs the full design-time pipeline of the extended StreamRule
// framework (Figure 6, upper half): extended graph, input dependency graph,
// decomposing process.
func Analyze(p *ast.Program, inpre []string, resolution float64) (*Analysis, error) {
	eg := BuildExtended(p)
	ig := BuildInput(eg, inpre)
	plan, err := Decompose(ig, resolution)
	if err != nil {
		return nil, err
	}
	return &Analysis{Extended: eg, Input: ig, Plan: plan}, nil
}

// DOT renders the extended dependency graph in Graphviz format (directed E2
// edges as arrows, undirected E1 edges as dashed lines).
func (eg *ExtendedGraph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph extended {\n")
	for _, n := range eg.Preds {
		fmt.Fprintf(&b, "  %q;\n", n)
	}
	for _, e := range eg.E1.Edges() {
		fmt.Fprintf(&b, "  %q -> %q [dir=none, style=dashed];\n", e[0], e[1])
	}
	for _, from := range eg.E2.Nodes() {
		for _, to := range eg.E2.Succ(from) {
			fmt.Fprintf(&b, "  %q -> %q;\n", from, to)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// DOT renders the input dependency graph in Graphviz format.
func (ig *InputGraph) DOT() string {
	var b strings.Builder
	b.WriteString("graph input {\n")
	for _, n := range ig.G.Nodes() {
		fmt.Fprintf(&b, "  %q;\n", n)
	}
	for _, e := range ig.G.Edges() {
		fmt.Fprintf(&b, "  %q -- %q;\n", e[0], e[1])
	}
	b.WriteString("}\n")
	return b.String()
}
