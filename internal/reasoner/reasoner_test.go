package reasoner

import (
	"math/rand"
	"testing"
	"testing/quick"

	"streamrule/internal/asp/ast"
	"streamrule/internal/asp/parser"
	"streamrule/internal/asp/solve"
	"streamrule/internal/core"
	"streamrule/internal/rdf"
	"streamrule/internal/workload"
)

const programP = `
very_slow_speed(X) :- average_speed(X,Y), Y < 20.
many_cars(X) :- car_number(X,Y), Y > 40.
traffic_jam(X) :- very_slow_speed(X), many_cars(X), not traffic_light(X).
car_fire(X) :- car_in_smoke(C, high), car_speed(C, 0), car_location(C, X).
give_notification(X) :- traffic_jam(X).
give_notification(X) :- car_fire(X).
`

const programPPrime = programP + `
traffic_jam(X) :- car_fire(X), many_cars(X).
`

var inpreP = []string{
	"average_speed", "car_number", "traffic_light",
	"car_in_smoke", "car_speed", "car_location",
}

// paperWindow is the motivating window W of §II-A.
var paperWindow = []rdf.Triple{
	{S: "newcastle", P: "average_speed", O: "10"},
	{S: "newcastle", P: "car_number", O: "55"},
	{S: "newcastle", P: "traffic_light", O: "true"},
	{S: "car1", P: "car_in_smoke", O: "high"},
	{S: "car1", P: "car_speed", O: "0"},
	{S: "car1", P: "car_location", O: "dangan"},
}

func configFor(t *testing.T, src string) Config {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return Config{Program: prog, Inpre: inpreP}
}

func planFor(t *testing.T, src string) *core.Plan {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(prog, inpreP, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return a.Plan
}

func TestROnPaperWindow(t *testing.T) {
	r, err := NewR(configFor(t, programP))
	if err != nil {
		t.Fatal(err)
	}
	out, err := r.Process(paperWindow)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Answers) != 1 {
		t.Fatalf("answers = %d, want 1", len(out.Answers))
	}
	ans := out.Answers[0]
	if !ans.Contains("car_fire(dangan)") || !ans.Contains("give_notification(dangan)") {
		t.Errorf("answer = %v", ans)
	}
	if ans.Contains("traffic_jam(newcastle)") {
		t.Error("spurious traffic jam in full-window reasoning")
	}
	// Input facts are filtered from answers by default.
	if ans.Contains("average_speed(newcastle,10)") {
		t.Error("input fact leaked into the answer")
	}
	if out.Latency.Total <= 0 {
		t.Error("latency not measured")
	}
}

func TestIncludeInputFacts(t *testing.T) {
	cfg := configFor(t, programP)
	cfg.IncludeInputFacts = true
	r, err := NewR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := r.Process(paperWindow)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Answers[0].Contains("average_speed(newcastle,10)") {
		t.Error("input fact missing despite IncludeInputFacts")
	}
}

// TestMotivatingExample reproduces §II-A exactly: random partitioning that
// separates traffic_light from the speed/count readings derives the wrong
// traffic_jam event; dependency-based partitioning does not.
func TestMotivatingExample(t *testing.T) {
	cfg := configFor(t, programP)

	// The adversarial split from the paper: W1 gets the readings, W2 the
	// light (plus the car facts split across both).
	w1 := []rdf.Triple{paperWindow[0], paperWindow[1], paperWindow[3]}
	w2 := []rdf.Triple{paperWindow[2], paperWindow[4], paperWindow[5]}

	r, err := NewR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out1, err := r.Process(w1)
	if err != nil {
		t.Fatal(err)
	}
	if !out1.Answers[0].Contains("traffic_jam(newcastle)") {
		t.Error("the adversarial split should derive the spurious jam")
	}
	out2, err := r.Process(w2)
	if err != nil {
		t.Fatal(err)
	}
	combined := Combine([][]*solve.AnswerSet{out1.Answers, out2.Answers}, 16)
	if !combined[0].Contains("give_notification(newcastle)") {
		t.Error("wrong notification should appear under random partitioning")
	}

	// Dependency-based partitioning keeps the newcastle facts together.
	pr, err := NewPR(cfg, NewPlanPartitioner(planFor(t, programP)))
	if err != nil {
		t.Fatal(err)
	}
	out, err := pr.Process(paperWindow)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Answers) != 1 {
		t.Fatalf("answers = %d", len(out.Answers))
	}
	if out.Answers[0].Contains("traffic_jam(newcastle)") {
		t.Error("dependency partitioning must not derive the spurious jam")
	}
	if !out.Answers[0].Contains("car_fire(dangan)") {
		t.Errorf("missing car fire: %v", out.Answers[0])
	}
}

func TestPRDepMatchesROnPaperPrograms(t *testing.T) {
	for _, src := range []string{programP, programPPrime} {
		cfg := configFor(t, src)
		r, err := NewR(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := NewPR(cfg, NewPlanPartitioner(planFor(t, src)))
		if err != nil {
			t.Fatal(err)
		}
		gen, err := workload.NewGenerator(11, workload.PaperTraffic())
		if err != nil {
			t.Fatal(err)
		}
		window := gen.Window(3000)
		ref, err := r.Process(window)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pr.Process(window)
		if err != nil {
			t.Fatal(err)
		}
		if acc := Accuracy(got.Answers, ref.Answers); acc < 0.9999 {
			t.Errorf("PR_Dep accuracy = %v, want 1.0", acc)
		}
		if len(ref.Answers) != 1 || len(got.Answers) != 1 {
			t.Fatalf("expected single answers, got %d vs %d", len(ref.Answers), len(got.Answers))
		}
		if !got.Answers[0].Equal(ref.Answers[0]) {
			t.Errorf("PR_Dep answer differs from R")
		}
	}
}

// outputPreds are the event predicates the paper's scenario reports.
var outputPreds = []string{"traffic_jam", "car_fire", "give_notification"}

func TestPRRandomLosesAccuracy(t *testing.T) {
	cfg := configFor(t, programP)
	cfg.OutputPreds = outputPreds
	r, err := NewR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(13, workload.PaperTraffic())
	if err != nil {
		t.Fatal(err)
	}
	window := gen.Window(6000)
	ref, err := r.Process(window)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Answers[0].Len() == 0 {
		t.Fatal("workload produced no derivations; tune the generator")
	}
	pr, err := NewPR(cfg, NewRandomPartitioner(4, 99))
	if err != nil {
		t.Fatal(err)
	}
	got, err := pr.Process(window)
	if err != nil {
		t.Fatal(err)
	}
	acc := Accuracy(got.Answers, ref.Answers)
	if acc >= 0.95 {
		t.Errorf("random partitioning accuracy = %v, expected a clear loss", acc)
	}
	if acc <= 0 {
		t.Errorf("accuracy = %v, expected partial recovery", acc)
	}
}

func TestPlanPartitionerAlgorithm1(t *testing.T) {
	plan := planFor(t, programP)
	p := NewPlanPartitioner(plan)
	if p.NumPartitions() != 2 {
		t.Fatalf("partitions = %d", p.NumPartitions())
	}
	window := append([]rdf.Triple{{S: "x", P: "alien", O: "y"}}, paperWindow...)
	parts, skipped := p.Partition(window)
	if skipped != 1 {
		t.Errorf("skipped = %d, want 1 (alien predicate)", skipped)
	}
	total := 0
	for _, part := range parts {
		total += len(part)
		// Every partition must be dependency-closed: traffic preds and car
		// preds never mix for program P.
		hasTraffic, hasCar := false, false
		for _, tr := range part {
			switch tr.P {
			case "average_speed", "car_number", "traffic_light":
				hasTraffic = true
			default:
				hasCar = true
			}
		}
		if hasTraffic && hasCar {
			t.Errorf("partition mixes components: %v", part)
		}
	}
	if total != len(paperWindow) {
		t.Errorf("items routed = %d, want %d", total, len(paperWindow))
	}
}

func TestPlanPartitionerDuplicates(t *testing.T) {
	plan := planFor(t, programPPrime)
	p := NewPlanPartitioner(plan)
	window := paperWindow
	parts, _ := p.Partition(window)
	// car_number items must appear in both partitions.
	count := 0
	for _, part := range parts {
		for _, tr := range part {
			if tr.P == "car_number" {
				count++
			}
		}
	}
	if count != 2 {
		t.Errorf("car_number copies = %d, want 2 (duplicated)", count)
	}
}

func TestRandomPartitionerCoversWindow(t *testing.T) {
	p := NewRandomPartitioner(3, 5)
	gen, _ := workload.NewGenerator(1, workload.PaperTraffic())
	window := gen.Window(1000)
	parts, skipped := p.Partition(window)
	if skipped != 0 {
		t.Errorf("skipped = %d", skipped)
	}
	if len(parts) != 3 {
		t.Fatalf("parts = %d", len(parts))
	}
	total := 0
	for _, part := range parts {
		total += len(part)
		if len(part) == 0 {
			t.Error("empty random partition on a 1000-item window is essentially impossible")
		}
	}
	if total != 1000 {
		t.Errorf("total = %d", total)
	}
}

func TestWholeWindowPartitioner(t *testing.T) {
	p := WholeWindowPartitioner{}
	parts, skipped := p.Partition(paperWindow)
	if skipped != 0 || len(parts) != 1 || len(parts[0]) != len(paperWindow) {
		t.Errorf("parts = %v, skipped = %d", parts, skipped)
	}
}

func TestCombineCrossProduct(t *testing.T) {
	mk := func(names ...string) *solve.AnswerSet {
		var atoms []ast.Atom
		for _, n := range names {
			atoms = append(atoms, ast.NewAtom(n))
		}
		return solve.NewAnswerSet(atoms)
	}
	got := Combine([][]*solve.AnswerSet{
		{mk("a1"), mk("a2")},
		{mk("b1"), mk("b2")},
	}, 64)
	if len(got) != 4 {
		t.Fatalf("combinations = %d, want 4", len(got))
	}
	// Empty partition answers collapse the whole combination.
	if got := Combine([][]*solve.AnswerSet{{mk("a")}, nil}, 64); got != nil {
		t.Errorf("expected nil, got %v", got)
	}
	// Cap respected.
	capped := Combine([][]*solve.AnswerSet{
		{mk("a1"), mk("a2"), mk("a3")},
		{mk("b1"), mk("b2"), mk("b3")},
	}, 4)
	if len(capped) > 4 {
		t.Errorf("cap violated: %d", len(capped))
	}
	// Duplicates removed.
	dup := Combine([][]*solve.AnswerSet{{mk("x"), mk("x")}}, 64)
	if len(dup) != 1 {
		t.Errorf("dedup failed: %d", len(dup))
	}
}

func TestAccuracyMetric(t *testing.T) {
	mk := func(names ...string) *solve.AnswerSet {
		var atoms []ast.Atom
		for _, n := range names {
			atoms = append(atoms, ast.NewAtom(n))
		}
		return solve.NewAnswerSet(atoms)
	}
	ref := []*solve.AnswerSet{mk("a", "b", "c", "d")}
	if acc := Accuracy([]*solve.AnswerSet{mk("a", "b")}, ref); acc != 0.5 {
		t.Errorf("accuracy = %v, want 0.5", acc)
	}
	// Extra atoms do not penalize (the paper's metric measures recall).
	if acc := Accuracy([]*solve.AnswerSet{mk("a", "b", "c", "d", "extra")}, ref); acc != 1 {
		t.Errorf("accuracy = %v, want 1", acc)
	}
	// Max over reference answers.
	refs := []*solve.AnswerSet{mk("a", "b"), mk("x", "y", "z", "w")}
	if acc := Accuracy([]*solve.AnswerSet{mk("a", "b")}, refs); acc != 1 {
		t.Errorf("accuracy = %v, want 1 (best reference)", acc)
	}
	// Mean over produced answers.
	got := []*solve.AnswerSet{mk("a", "b"), mk()}
	if acc := Accuracy(got, ref); acc != 0.25 {
		t.Errorf("accuracy = %v, want 0.25", acc)
	}
	// Edge cases.
	if Accuracy(nil, nil) != 1 {
		t.Error("empty/empty should be 1")
	}
	if Accuracy(nil, ref) != 0 {
		t.Error("nothing recovered should be 0")
	}
	if Accuracy(got, nil) != 1 {
		t.Error("empty reference should be 1")
	}
	if Accuracy(nil, []*solve.AnswerSet{mk()}) != 1 {
		t.Error("reference with only empty answers should be 1")
	}
}

func TestDuplicationShare(t *testing.T) {
	cfg := configFor(t, programPPrime)
	pr, err := NewPR(cfg, NewPlanPartitioner(planFor(t, programPPrime)))
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(21, workload.PaperTraffic())
	if err != nil {
		t.Fatal(err)
	}
	window := gen.Window(6000)
	out, err := pr.Process(window)
	if err != nil {
		t.Fatal(err)
	}
	share := out.DuplicationShare(len(window))
	// car_number is 1 of 6 uniform predicates: duplicated copies are
	// ~1/7 ≈ 14% of routed items; the paper reports 25% for its own mix.
	if share < 0.08 || share > 0.25 {
		t.Errorf("duplication share = %v, expected around 1/7", share)
	}
}

func TestNewRValidation(t *testing.T) {
	if _, err := NewR(Config{}); err == nil {
		t.Error("nil program must be rejected")
	}
	prog, _ := parser.Parse("p :- q(X).")
	if _, err := NewR(Config{Program: prog}); err == nil {
		t.Error("empty inpre must be rejected")
	}
	if _, err := NewR(Config{Program: prog, Inpre: []string{"nope"}}); err == nil {
		t.Error("unknown input predicate must be rejected")
	}
	r, err := NewR(Config{Program: prog, Inpre: []string{"q"}})
	if err != nil {
		t.Fatal(err)
	}
	if r == nil {
		t.Fatal("reasoner not built")
	}
	if _, err := NewPR(Config{Program: prog, Inpre: []string{"q"}}, nil); err == nil {
		t.Error("nil partitioner must be rejected")
	}
}

// TestAggregateProgramThroughPR checks that a program whose rules correlate
// inputs through an aggregate stays exact under dependency partitioning:
// the extended graph gives aggregate condition predicates a self-loop and
// body edges, so request and blocked share a partition and counts are never
// split.
func TestAggregateProgramThroughPR(t *testing.T) {
	prog, err := parser.Parse(`
zone(Z) :- request(_, Z).
overload(Z) :- zone(Z), not blocked(Z), #count{ R : request(R, Z) } >= 4.
other(S) :- status(S, up).
`)
	if err != nil {
		t.Fatal(err)
	}
	inpre := []string{"request", "blocked", "status"}
	a, err := core.Analyze(prog, inpre, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Program: prog, Inpre: inpre}
	r, err := NewR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := NewPR(cfg, NewPlanPartitioner(a.Plan))
	if err != nil {
		t.Fatal(err)
	}
	if pr.NumPartitions() != 2 {
		t.Fatalf("partitions = %d, want 2 ({request, blocked} and {status})", pr.NumPartitions())
	}
	specs := []workload.TripleSpec{
		{Pred: "request", S: workload.Entity("req", 1), O: workload.Entity("zone", 40), Weight: 10},
		{Pred: "blocked", S: workload.Entity("zone", 40), Weight: 1},
		{Pred: "status", S: workload.Entity("svc", 10), O: workload.Choice("up", "down"), Weight: 4},
	}
	gen, err := workload.NewGenerator(31, specs)
	if err != nil {
		t.Fatal(err)
	}
	window := gen.Window(2000)
	ref, err := r.Process(window)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pr.Process(window)
	if err != nil {
		t.Fatal(err)
	}
	hasOverload := false
	for _, atom := range ref.Answers[0].Atoms() {
		if atom.Pred == "overload" {
			hasOverload = true
		}
	}
	if !hasOverload {
		t.Fatal("workload produced no overload events; tune the generator")
	}
	if !got.Answers[0].Equal(ref.Answers[0]) {
		t.Errorf("aggregate program must stay exact under PR_Dep: accuracy %v",
			Accuracy(got.Answers, ref.Answers))
	}
}

// Property: for stratified programs, partition answers under the dependency
// plan always combine to exactly the whole-window answer (the correctness
// claim the paper's future work wants to prove).
func TestQuickPlanPartitionLossless(t *testing.T) {
	prog, err := parser.Parse(programP)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(prog, inpreP, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Program: prog, Inpre: inpreP}
	r, err := NewR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := NewPR(cfg, NewPlanPartitioner(a.Plan))
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gen, err := workload.NewGenerator(rng.Int63(), workload.PaperTraffic())
		if err != nil {
			return false
		}
		window := gen.Window(200 + rng.Intn(800))
		ref, err := r.Process(window)
		if err != nil {
			return false
		}
		got, err := pr.Process(window)
		if err != nil {
			return false
		}
		return len(got.Answers) == 1 && len(ref.Answers) == 1 &&
			got.Answers[0].Equal(ref.Answers[0])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
