// AdaptivePartitioner: the mutable sibling of AtomPartitioner. The static
// partitioners fix their layout at construction time; the adaptive one lets
// the rebalancer raise a single community's hash fan-out (or install a finer
// community plan) between windows, so partitioning becomes a runtime
// concern. Routing is identical to AtomPartitioner — Algorithm 1 at the
// community level, a proven key hash at the atom level — so every layout the
// rebalancer can reach is one the static differentials already validate.

package reasoner

import (
	"fmt"

	"streamrule/internal/atomdep"
	"streamrule/internal/core"
	"streamrule/internal/dfp"
	"streamrule/internal/rdf"
)

// AdaptivePartitioner routes by community plan with a per-community,
// mutable hash fan-out. All communities start at fan-out 1 (the plain plan
// partitioner); the rebalancer widens overloaded communities whose
// derivations the atom-level analysis proved splittable. Not safe for
// concurrent mutation — layout changes happen between windows, like every
// other rebalancing action.
type AdaptivePartitioner struct {
	plan    *core.Plan
	keys    *atomdep.Analysis
	arities dfp.Arities
	// base[c] is the first global partition index of community c; width[c]
	// its current fan-out (1 = unsplit).
	base, width []int
	total       int
}

// NewAdaptivePartitioner builds the runtime-adjustable partitioner over a
// community plan and its atom-level key analysis. Every community starts
// with fan-out 1.
func NewAdaptivePartitioner(plan *core.Plan, keys *atomdep.Analysis, arities dfp.Arities) *AdaptivePartitioner {
	p := &AdaptivePartitioner{plan: plan, keys: keys, arities: arities}
	p.width = make([]int, len(plan.Communities))
	for c := range p.width {
		p.width[c] = 1
	}
	p.reindex()
	return p
}

func (p *AdaptivePartitioner) reindex() {
	p.base = p.base[:0]
	p.total = 0
	for _, w := range p.width {
		p.base = append(p.base, p.total)
		p.total += w
	}
}

// NumPartitions implements Partitioner.
func (p *AdaptivePartitioner) NumPartitions() int { return p.total }

// NumCommunities returns the number of plan communities.
func (p *AdaptivePartitioner) NumCommunities() int { return len(p.width) }

// Plan returns the current community plan.
func (p *AdaptivePartitioner) Plan() *core.Plan { return p.plan }

// Fanout returns community c's current hash fan-out.
func (p *AdaptivePartitioner) Fanout(c int) int { return p.width[c] }

// Splittable reports whether the atom-level analysis proved community c
// hash-splittable (a single join key per derivation).
func (p *AdaptivePartitioner) Splittable(c int) bool { return p.keys.KeysFor(c) != nil }

// CommunityOf maps a global partition index back to its community (-1 when
// out of range).
func (p *AdaptivePartitioner) CommunityOf(gp int) int {
	if gp < 0 || gp >= p.total {
		return -1
	}
	for c := len(p.base) - 1; c >= 0; c-- {
		if gp >= p.base[c] {
			return c
		}
	}
	return -1
}

// SetFanout installs fan-out m for community c. m > 1 requires the
// community to be splittable. Partition indexes shift; the caller (the
// rebalancer) must re-layout sessions afterwards.
func (p *AdaptivePartitioner) SetFanout(c, m int) error {
	if c < 0 || c >= len(p.width) {
		return fmt.Errorf("reasoner: community %d of %d", c, len(p.width))
	}
	if m < 1 {
		return fmt.Errorf("reasoner: fan-out %d for community %d", m, c)
	}
	if m > 1 && !p.Splittable(c) {
		return fmt.Errorf("reasoner: community %d is not atom-splittable", c)
	}
	p.width[c] = m
	p.reindex()
	return nil
}

// withFanout returns a candidate copy with community c at fan-out m: it
// shares the immutable plan/analysis but owns its width/base, so the
// rebalancer's cost model can route a window through it without touching
// the live layout.
func (p *AdaptivePartitioner) withFanout(c, m int) *AdaptivePartitioner {
	cand := &AdaptivePartitioner{plan: p.plan, keys: p.keys, arities: p.arities}
	cand.width = append([]int(nil), p.width...)
	cand.width[c] = m
	cand.reindex()
	return cand
}

// setPlan replaces the community plan wholesale (a plan refine): all
// fan-outs reset to 1 under the new, finer community structure.
func (p *AdaptivePartitioner) setPlan(plan *core.Plan, keys *atomdep.Analysis) {
	p.plan, p.keys = plan, keys
	p.width = make([]int, len(plan.Communities))
	for c := range p.width {
		p.width[c] = 1
	}
	p.reindex()
}

// Partition implements Partitioner: identical routing to AtomPartitioner,
// with per-community widths instead of one global fan-out.
func (p *AdaptivePartitioner) Partition(window []rdf.Triple) ([][]rdf.Triple, int) {
	parts := make([][]rdf.Triple, p.total)
	skipped := 0
	for _, t := range window {
		cs := p.plan.CommunitiesOf(t.P)
		if len(cs) == 0 {
			skipped++
			continue
		}
		for _, c := range cs {
			if p.width[c] == 1 {
				parts[p.base[c]] = append(parts[p.base[c]], t)
				continue
			}
			pos, ok := p.keys.KeysFor(c)[t.P]
			if !ok {
				// Predicate without a key in a split community: route to
				// every bucket to stay sound (the analysis assigns every
				// input predicate a key, so this is belt-and-braces).
				for b := 0; b < p.width[c]; b++ {
					parts[p.base[c]+b] = append(parts[p.base[c]+b], t)
				}
				continue
			}
			key := t.S
			if pos == 1 && p.arities[t.P] >= 2 {
				key = t.O
			}
			b := atomdep.Bucket(key, p.width[c])
			parts[p.base[c]+b] = append(parts[p.base[c]+b], t)
		}
	}
	return parts, skipped
}
